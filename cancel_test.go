package hyper

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyper/internal/dataset"
)

// slowBrute is a brute-force how-to with ~8100 combination evaluations on
// german-cont: enough work that cancellation mid-solve is observable.
const slowBrute = `USE German HOWTOUPDATE Status, Savings, Housing, Duration, InstallmentRate TOMAXIMIZE COUNT(Credit = 1)`

func germanContSession(cache *Cache) *Session {
	b, err := dataset.Lookup("german-cont")
	if err != nil {
		panic(err)
	}
	db, model := b.Build(0.3, 7)
	s := NewSessionWithCache(db, model, cache)
	s.SetOptions(Options{Mode: ModeFull, Seed: 7})
	return s
}

// TestHowToCancelMidSolve pins the cancellation satellite: a how-to
// cancelled mid-solve returns promptly (well before its deadline), leaves
// no goroutines behind, and leaves the shared engine cache consistent (the
// same session later computes the exact result a fresh session computes).
func TestHowToCancelMidSolve(t *testing.T) {
	sess := germanContSession(NewCacheBounded(512))
	before := runtime.NumGoroutine()

	// Cancel as soon as the solver reports progress; a generous outer
	// deadline distinguishes "cancel was observed" from "ran to the end".
	const outerDeadline = 60 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), outerDeadline)
	defer cancel()
	var sawProgress atomic.Int64
	progress := func(stage string, done, total int) {
		if sawProgress.Add(1) == 3 { // a few combos in: demonstrably mid-solve
			cancel()
		}
	}
	start := time.Now()
	res, err := sess.HowToBruteForceContext(ctx, slowBrute, progress)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %v), want context.Canceled", err, res)
	}
	if sawProgress.Load() < 3 {
		t.Fatalf("cancelled before the solver made progress (%d reports)", sawProgress.Load())
	}
	// ~8100 combos at ~1ms each would run for seconds; the cancelled solve
	// must return long before the outer deadline.
	if elapsed > outerDeadline/4 {
		t.Errorf("cancelled how-to took %s", elapsed)
	}

	// No goroutine leaks: the engine workers and the scoring pool exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d before, %d after cancelled how-to", before, after)
	}

	// Cache consistency: the cancelled query left no partial artifact that
	// changes results. The same session (same cache) and a fresh cache-less
	// evaluation must agree exactly.
	got, err := sess.HowTo(`USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := germanContSession(nil).HowTo(`USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != want.Objective || got.Base != want.Base || got.String() != want.String() {
		t.Errorf("post-cancel result diverged:\n  got  %v\n  want %v", got, want)
	}
}

// TestWhatIfCancelShardedSolve pins cancellation through the sharded
// evaluation path: a 10000-row what-if runs a 3-shard plan under a worker
// fan-out of 3, cancellation from inside the progress hook stops the shard
// workers at their next stride check, no goroutines are left behind, and a
// subsequent evaluation on the same session reproduces the uncancelled
// result exactly (the per-worker scratch and per-shard partials of the
// cancelled run leaked nothing into the cache).
func TestWhatIfCancelShardedSolve(t *testing.T) {
	b, err := dataset.Lookup("german")
	if err != nil {
		t.Fatal(err)
	}
	db, model := b.Build(2.0, 7) // 10000 rows: a 3-shard plan at the default granularity
	sess := NewSessionWithCache(db, model, NewCacheBounded(512))
	sess.SetOptions(Options{Mode: ModeFull, Seed: 7, Shards: 3})
	const src = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawShards, fired atomic.Bool
	progress := func(stage string, done, total int) {
		if stage == "shards" {
			sawShards.Store(true)
		}
		if stage == "tuples" && done > 0 && done < total {
			fired.Store(true)
			cancel()
		}
	}
	res, err := sess.WhatIfContext(ctx, src, progress)
	if fired.Load() {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v (res %v), want context.Canceled", err, res)
		}
	} else if err != nil {
		// The whole solve fit inside one stride; nothing was cancellable.
		t.Fatalf("uncancelled solve failed: %v", err)
	}

	// No goroutine leaks: the shard workers exit with the evaluation.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d before, %d after cancelled sharded what-if", before, after)
	}

	// Post-cancel consistency across fan-outs: the same session (cache
	// warmed or partially warmed by the cancelled run) and a fresh serial
	// session must agree bit for bit. The full run must also report the
	// "shards" progress stage (the cancelled one usually dies mid-shard).
	var shardsTotal atomic.Int64
	got, err := sess.WhatIfContext(context.Background(), src, func(stage string, done, total int) {
		if stage == "shards" {
			sawShards.Store(true)
			shardsTotal.Store(int64(total))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawShards.Load() || shardsTotal.Load() != 3 {
		t.Errorf("sharded solve reported shards progress = %v (total %d), want 3 shards", sawShards.Load(), shardsTotal.Load())
	}
	if got.ShardPlan != 3 {
		t.Errorf("shard plan = %d, want 3 at 10000 rows", got.ShardPlan)
	}
	fresh := NewSession(db, model)
	fresh.SetOptions(Options{Mode: ModeFull, Seed: 7, Shards: 1})
	want, err := fresh.WhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Sum != want.Sum || got.Count != want.Count {
		t.Errorf("post-cancel sharded result diverged: got %v, want %v", got.Value, want.Value)
	}
}

// TestHowToCancelShardedPool pins cancellation of a how-to whose candidate
// pool runs at a sharded fan-out: the pool and its nested engine workers
// exit promptly and leak no goroutines.
func TestHowToCancelShardedPool(t *testing.T) {
	sess := germanContSession(NewCacheBounded(512))
	o := sess.Options()
	o.Shards = 3
	sess.SetOptions(o)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var sawProgress atomic.Int64
	progress := func(stage string, done, total int) {
		if sawProgress.Add(1) == 3 {
			cancel()
		}
	}
	if _, err := sess.HowToBruteForceContext(ctx, slowBrute, progress); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d before, %d after cancelled sharded how-to", before, after)
	}
}

// TestWhatIfCancelled pins that a what-if with an already-cancelled context
// does no work, and that the IP path observes cancellation too.
func TestWhatIfCancelled(t *testing.T) {
	sess := germanContSession(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.WhatIfContext(ctx, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("whatif err = %v, want context.Canceled", err)
	}
	if _, err := sess.HowToContext(ctx, `USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)`, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("howto err = %v, want context.Canceled", err)
	}
	if _, err := sess.HowToMinimizeCostContext(ctx, `USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)`, 0.9, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("mincost err = %v, want context.Canceled", err)
	}
	if _, err := sess.HowToLexicographicContext(ctx, nil, `USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)`); !errors.Is(err, context.Canceled) {
		t.Errorf("lexicographic err = %v, want context.Canceled", err)
	}
}

// TestWhatIfDeadline pins deadline expiry inside the engine's evaluation.
func TestWhatIfDeadline(t *testing.T) {
	sess := germanContSession(nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sess.WhatIfContext(ctx, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestProgressReporting pins that both engine ("tuples") and how-to
// ("candidates") progress hooks fire with sane counters.
func TestProgressReporting(t *testing.T) {
	b, _ := dataset.Lookup("german")
	db, model := b.Build(1.0, 7) // 5000 rows: above the engine's parallel threshold
	sess := NewSessionWithCache(db, model, NewCacheBounded(512))
	sess.SetOptions(Options{Mode: ModeFull, Seed: 7})

	type report struct {
		stage       string
		done, total int
	}
	var mu sync.Mutex
	var reports []report
	progress := func(stage string, done, total int) {
		mu.Lock()
		reports = append(reports, report{stage, done, total})
		mu.Unlock()
	}
	if _, err := sess.WhatIfContext(context.Background(), `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, progress); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	tuples := len(reports)
	last := reports[len(reports)-1]
	mu.Unlock()
	if tuples == 0 {
		t.Fatal("what-if reported no progress")
	}
	if last.stage != "tuples" || last.done != last.total || last.total != 5000 {
		t.Errorf("final what-if report = %+v, want tuples 5000/5000", last)
	}

	mu.Lock()
	reports = nil
	mu.Unlock()
	if _, err := sess.HowToContext(context.Background(), `USE German HOWTOUPDATE Status, Savings TOMAXIMIZE COUNT(Credit = 1)`, progress); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("how-to reported no progress")
	}
	seen := map[int]bool{}
	for _, r := range reports {
		if r.stage != "candidates" {
			t.Fatalf("how-to stage = %q, want candidates", r.stage)
		}
		if r.done < 1 || r.done > r.total {
			t.Fatalf("inconsistent report %+v", r)
		}
		if seen[r.done] {
			t.Fatalf("duplicate done count %d", r.done)
		}
		seen[r.done] = true
	}
	if !seen[reports[0].total] {
		t.Errorf("how-to never reported full progress (%d candidates)", reports[0].total)
	}
}
