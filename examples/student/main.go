// Student: the two-table Student-Syn scenario (Section 5.1). Grades live in
// the Participation table while attendance lives in the Student table, so
// what-if queries flow through a join view; the how-to query with a budget
// of one update must discover that attendance — whose effect on the grade is
// partly indirect, through discussions, announcements and assignments — is
// the best lever.
package main

import (
	"fmt"
	"log"

	"hyper"
	"hyper/internal/dataset"
)

const studentView = `
USE (SELECT S.SID, S.Age, S.Gender, S.Country, S.Attendance,
            AVG(P.Grade) AS Grade
     FROM Student AS S, Participation AS P
     WHERE S.SID = P.SID
     GROUP BY S.SID, S.Age, S.Gender, S.Country, S.Attendance)`

const participationView = `
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)`

func main() {
	st := dataset.StudentSyn(5000, 5, 11)
	s := hyper.NewSession(st.DB, st.Model)
	s.SetOptions(hyper.Options{Seed: 11})

	fmt.Println("What lifts the average grade the most? (what-if per attribute)")
	fmt.Printf("%-15s %12s %12s\n", "attribute", "HypeR", "truth")
	cases := []struct {
		attr  string
		max   float64
		query string
	}{
		{dataset.StudentAttendance, 9, studentView + ` UPDATE(Attendance) = 9 OUTPUT AVG(POST(Grade))`},
		{dataset.StudentAssignment, 100, participationView + ` UPDATE(Assignment) = 100 OUTPUT AVG(POST(Grade))`},
		{dataset.StudentDiscussion, 10, participationView + ` UPDATE(Discussion) = 10 OUTPUT AVG(POST(Grade))`},
		{dataset.StudentAnnouncements, 10, participationView + ` UPDATE(Announcements) = 10 OUTPUT AVG(POST(Grade))`},
	}
	for _, c := range cases {
		res, err := s.WhatIf(c.query)
		if err != nil {
			log.Fatal(err)
		}
		truth := st.CounterfactualAvgGrade(c.attr, func(float64) float64 { return c.max })
		fmt.Printf("%-15s %12.2f %12.2f\n", c.attr, res.Value, truth)
	}
	fmt.Printf("(observed average grade: %.2f)\n", st.AvgGrade())

	fmt.Println("\nHow to maximize grades with a budget of one attendance change:")
	ht, err := s.HowTo(studentView + `
HOWTOUPDATE Attendance
LIMIT UPDATES <= 1
TOMAXIMIZE AVG(POST(Grade))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", ht)

	fmt.Println("\nWhat if only students who already read announcements attended everything?")
	res, err := s.WhatIf(studentView + `
WHEN Attendance >= 3
UPDATE(Attendance) = 9
OUTPUT AVG(POST(Grade))
FOR PRE(Attendance) >= 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  expected average grade among them: %.2f\n", res.Value)
}
