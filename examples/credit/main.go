// Credit: the German-credit scenario of Section 5. On the German-Syn
// database we (1) measure the causal effect of account status on credit
// standing, showing how the correlation-based Indep baseline overstates it,
// (2) answer a constrained how-to query with the IP engine, and (3) solve a
// preferential two-objective how-to query lexicographically.
package main

import (
	"fmt"
	"log"

	"hyper"
	"hyper/internal/dataset"
	"hyper/internal/prcm"
)

func main() {
	g := dataset.GermanSyn(20000, 7)
	n := float64(g.Rel().Len())

	fmt.Println("What if every account's status were set to its best value?")
	truthRel := g.World.Counterfactual(prcm.Intervention{
		Attr: "Status", Fn: func(float64) float64 { return 3 },
	})
	truth := countGood(truthRel) / n
	for _, mode := range []hyper.Mode{hyper.ModeFull, hyper.ModeNB, hyper.ModeIndep} {
		s := hyper.NewSession(g.DB, g.Model)
		s.SetOptions(hyper.Options{Mode: mode, Seed: 7})
		res, err := s.WhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s frac good credit = %.3f (truth %.3f, backdoor %v)\n",
			mode, res.Value/n, truth, res.Backdoor)
	}

	s := hyper.NewSession(g.DB, g.Model)
	s.SetOptions(hyper.Options{Seed: 7})

	fmt.Println("\nHow to maximize good credit by changing at most two attributes?")
	ht, err := s.HowTo(`
USE German
HOWTOUPDATE Status, Savings, Housing, CreditAmount
LIMIT UPDATES <= 2
TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", ht)

	fmt.Println("\nCheapest way to reach 70% good credit (cost-minimizing how-to):")
	mc, err := s.HowToMinimizeCost(`
USE German
HOWTOUPDATE Status, Savings, Housing, CreditAmount
TOMAXIMIZE COUNT(Credit = 1)`, 0.70*n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", mc)

	fmt.Println("\nLexicographic: first maximize good credit, then prefer high savings:")
	lex, err := s.HowToLexicographic(`
USE German
HOWTOUPDATE Status, Savings
TOMAXIMIZE COUNT(Credit = 1)`, `
USE German
HOWTOUPDATE Status, Savings
TOMAXIMIZE AVG(POST(Savings))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", lex)
}

func countGood(rel *hyper.Relation) float64 {
	ci := rel.Schema().MustIndex("Credit")
	n := 0
	for _, row := range rel.Rows() {
		if row[ci].AsInt() == 1 {
			n++
		}
	}
	return float64(n)
}
