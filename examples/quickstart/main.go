// Quickstart: build the paper's running-example database (Figure 1), attach
// the causal model of Figure 2, and run the what-if query of Figure 4 and
// the how-to query of Figure 5 through the public API.
package main

import (
	"fmt"
	"log"

	"hyper"
)

func main() {
	// Product table: PID is the key; Price, Color and Quality are mutable
	// (hypothetical updates may change them directly or collaterally).
	product := hyper.NewRelation("Product", hyper.MustSchema(
		hyper.Column{Name: "PID", Kind: hyper.KindInt, Key: true},
		hyper.Column{Name: "Category", Kind: hyper.KindString},
		hyper.Column{Name: "Price", Kind: hyper.KindFloat, Mutable: true},
		hyper.Column{Name: "Brand", Kind: hyper.KindString},
		hyper.Column{Name: "Color", Kind: hyper.KindString, Mutable: true},
		hyper.Column{Name: "Quality", Kind: hyper.KindFloat, Mutable: true},
	))
	type p struct {
		pid     int64
		cat     string
		price   float64
		brand   string
		color   string
		quality float64
	}
	for _, r := range []p{
		{1, "Laptop", 999, "Vaio", "Silver", 0.7},
		{2, "Laptop", 529, "Asus", "Black", 0.65},
		{3, "Laptop", 599, "HP", "Silver", 0.5},
		{4, "DSLR Camera", 549, "Canon", "Black", 0.75},
		{5, "Sci Fi eBooks", 15.99, "Fantasy Press", "Blue", 0.4},
	} {
		product.MustInsert(hyper.Int(r.pid), hyper.String(r.cat), hyper.Float(r.price),
			hyper.String(r.brand), hyper.String(r.color), hyper.Float(r.quality))
	}

	review := hyper.NewRelation("Review", hyper.MustSchema(
		hyper.Column{Name: "PID", Kind: hyper.KindInt, Key: true},
		hyper.Column{Name: "ReviewID", Kind: hyper.KindInt, Key: true},
		hyper.Column{Name: "Sentiment", Kind: hyper.KindFloat, Mutable: true},
		hyper.Column{Name: "Rating", Kind: hyper.KindInt, Mutable: true},
	))
	type rv struct {
		pid, rid int64
		senti    float64
		rating   int64
	}
	for _, r := range []rv{
		{1, 1, -0.95, 2}, {2, 2, 0.7, 4}, {2, 3, -0.2, 1},
		{3, 3, 0.23, 3}, {3, 5, 0.95, 5}, {4, 5, 0.7, 4},
	} {
		review.MustInsert(hyper.Int(r.pid), hyper.Int(r.rid), hyper.Float(r.senti), hyper.Int(r.rating))
	}

	db := hyper.NewDatabase()
	db.MustAdd(product)
	db.MustAdd(review)
	if err := db.AddForeignKey(hyper.ForeignKey{
		Child: "Review", ChildCol: "PID", Parent: "Product", ParentCol: "PID"}); err != nil {
		log.Fatal(err)
	}

	// The causal diagram of Figure 2: Quality and Category drive Price;
	// Quality and Price drive Ratings and Sentiments; one product's price
	// affects other products of the same category (cross-tuple edge).
	model := hyper.NewCausalModel()
	model.AddEdge("Product.Brand", "Product.Quality")
	model.AddEdge("Product.Category", "Product.Price")
	model.AddEdge("Product.Quality", "Product.Price")
	model.AddEdge("Product.Quality", "Review.Rating")
	model.AddEdge("Product.Quality", "Review.Sentiment")
	model.AddEdge("Product.Price", "Review.Rating")
	model.AddEdge("Product.Price", "Review.Sentiment")
	model.AddCross(hyper.CrossEdge{FromRel: "Product", FromAttr: "Price",
		ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})

	s := hyper.NewSession(db, model)
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	// Figure 4: "if Asus prices rise 10%, what is the average rating of Asus
	// laptops whose post-update average sentiment stays above 0.5?"
	whatIf := `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
            AVG(Sentiment) AS Senti, AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
WHEN Brand = 'Asus'
UPDATE(Price) = 1.1 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Category) = 'Laptop' AND PRE(Brand) = 'Asus' AND POST(Senti) > 0.5`
	res, err := s.WhatIf(whatIf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 4 what-if: expected avg rating = %.3f\n", res.Value)
	fmt.Printf("  view rows=%d updated=%d blocks=%d backdoor=%v\n",
		res.ViewRows, res.UpdatedRows, res.Blocks, res.Backdoor)

	// Figure 5: "how to maximize the average rating of Asus laptops and
	// cameras by changing price (within [500, 800], at most 400 away) and/or
	// color?"
	howTo := `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Color,
            AVG(Sentiment) AS Senti, AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Color)
WHEN Brand = 'Asus' AND Category = 'Laptop'
HOWTOUPDATE Price, Color
LIMIT 500 <= POST(Price) <= 800 AND L1(PRE(Price), POST(Price)) <= 400
TOMAXIMIZE AVG(POST(Rtng))
FOR (PRE(Category) = 'Laptop' OR PRE(Category) = 'DSLR Camera') AND Brand = 'Asus'`
	ht, err := s.HowTo(howTo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 5 how-to: %s\n", ht)
}
