// Fairness: the Adult-income analysis of Section 5.3. The Adult dataset is
// a staple of the fairness literature; HypeR's what-if queries quantify the
// causal effect of demographic and socio-economic attributes on the
// high-income outcome, reproducing the paper's observations that marital
// status, occupation and education dominate while workclass barely matters —
// and exposing how a correlation-only analysis (Indep) misattributes
// effects.
package main

import (
	"fmt"
	"log"
	"sort"

	"hyper"
	"hyper/internal/dataset"
	"hyper/internal/prcm"
)

func main() {
	a := dataset.AdultSyn(20000, 3)
	n := float64(a.Rel().Len())

	fmt.Println("What fraction would earn >50K under hypothetical updates?")
	fmt.Println("(Figure 7b template: UPDATE(B)=b OUTPUT COUNT(*) FOR POST(Income)=1)")
	s := hyper.NewSession(a.DB, a.Model)
	s.SetOptions(hyper.Options{Seed: 3})
	for _, c := range []struct{ label, src string }{
		{"everyone married", `USE Adult UPDATE(MaritalStatus) = 1 OUTPUT COUNT(*) FOR POST(Income) = 1`},
		{"everyone never-married", `USE Adult UPDATE(MaritalStatus) = 0 OUTPUT COUNT(*) FOR POST(Income) = 1`},
		{"top education for all", `USE Adult UPDATE(Education) = 4 OUTPUT COUNT(*) FOR POST(Income) = 1`},
		{"lowest education for all", `USE Adult UPDATE(Education) = 0 OUTPUT COUNT(*) FOR POST(Income) = 1`},
	} {
		res, err := s.WhatIf(c.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %5.1f%%\n", c.label, 100*res.Value/n)
	}

	fmt.Println("\nAttribute importance (min->max output gap), ranked:")
	type imp struct {
		attr string
		gap  float64
	}
	var imps []imp
	for _, c := range []struct {
		attr     string
		min, max int
	}{
		{"MaritalStatus", 0, 1}, {"Occupation", 0, 5}, {"Education", 0, 4},
		{"HoursPerWeek", 0, 3}, {"Workclass", 0, 3},
	} {
		lo, err := s.WhatIf(fmt.Sprintf(`USE Adult UPDATE(%s) = %d OUTPUT COUNT(Income = 1)`, c.attr, c.min))
		if err != nil {
			log.Fatal(err)
		}
		hi, err := s.WhatIf(fmt.Sprintf(`USE Adult UPDATE(%s) = %d OUTPUT COUNT(Income = 1)`, c.attr, c.max))
		if err != nil {
			log.Fatal(err)
		}
		imps = append(imps, imp{c.attr, (hi.Value - lo.Value) / n})
	}
	sort.Slice(imps, func(i, j int) bool { return imps[i].gap > imps[j].gap })
	for i, im := range imps {
		fmt.Printf("  %d. %-14s %.3f\n", i+1, im.attr, im.gap)
	}

	fmt.Println("\nCausal (HypeR) vs correlational (Indep) effect of marriage, against ground truth:")
	truthRel := a.World.Counterfactual(prcm.Intervention{Attr: "MaritalStatus", Fn: func(float64) float64 { return 1 }})
	ii := truthRel.Schema().MustIndex("Income")
	good := 0
	for _, row := range truthRel.Rows() {
		good += int(row[ii].AsInt())
	}
	truth := float64(good) / n
	for _, mode := range []hyper.Mode{hyper.ModeFull, hyper.ModeIndep} {
		sm := hyper.NewSession(a.DB, a.Model)
		sm.SetOptions(hyper.Options{Mode: mode, Seed: 3})
		res, err := sm.WhatIf(`USE Adult UPDATE(MaritalStatus) = 1 OUTPUT COUNT(Income = 1)`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %.3f (truth %.3f)\n", mode, res.Value/n, truth)
	}

	fmt.Println("\nPlan for the marriage query:")
	plan, err := s.Explain(`USE Adult UPDATE(MaritalStatus) = 1 OUTPUT COUNT(Income = 1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
}
