// Pricing: the Amazon-style scenario from the paper's introduction. On a
// synthetic product/review database with the causal model of Figure 2, we
// ask what proportional price changes do to product ratings, compare the
// HypeR estimate against the exact structural-equation ground truth, and
// rank brands by how much a 20% price cut would lift their average rating.
package main

import (
	"fmt"
	"log"
	"sort"

	"hyper"
	"hyper/internal/dataset"
)

const ratingView = `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)`

func main() {
	am := dataset.AmazonSyn(2000, 15, 42)
	s := hyper.NewSession(am.DB, am.Model)
	s.SetOptions(hyper.Options{Seed: 42})

	fmt.Println("What if all prices moved proportionally?")
	fmt.Printf("%-22s %18s %18s\n", "scenario", "HypeR frac(>=4)", "truth frac(>=4)")
	for _, c := range []struct {
		label string
		f     float64
	}{
		{"prices +20%", 1.2}, {"unchanged", 1.0}, {"prices -20%", 0.8}, {"prices -40%", 0.6},
	} {
		res, err := s.WhatIf(fmt.Sprintf(`%s UPDATE(Price) = %g * PRE(Price) OUTPUT COUNT(POST(Rtng) >= 4)`, ratingView, c.f))
		if err != nil {
			log.Fatal(err)
		}
		_, gt := am.CounterfactualAvgRating(nil, func(p float64) float64 { return c.f * p })
		fmt.Printf("%-22s %17.1f%% %17.1f%%\n", c.label, 100*res.Value/float64(res.ViewRows), 100*gt)
	}

	fmt.Println("\nWhich brand gains the most from a 20% price cut?")
	type lift struct {
		brand string
		delta float64
	}
	var lifts []lift
	for _, brand := range []string{"Apple", "Dell", "Toshiba", "Acer", "Asus", "HP"} {
		q := fmt.Sprintf(`%s WHEN Brand = '%s' UPDATE(Price) = 0.8 * PRE(Price)
OUTPUT AVG(POST(Rtng)) FOR PRE(Brand) = '%s'`, ratingView, brand, brand)
		cut, err := s.WhatIf(q)
		if err != nil {
			log.Fatal(err)
		}
		base, err := s.WhatIf(fmt.Sprintf(`%s WHEN Brand = '%s' UPDATE(Price) = 1 * PRE(Price)
OUTPUT AVG(POST(Rtng)) FOR PRE(Brand) = '%s'`, ratingView, brand, brand))
		if err != nil {
			log.Fatal(err)
		}
		lifts = append(lifts, lift{brand, cut.Value - base.Value})
	}
	sort.Slice(lifts, func(i, j int) bool { return lifts[i].delta > lifts[j].delta })
	for i, l := range lifts {
		fmt.Printf("  %d. %-8s %+.3f stars\n", i+1, l.brand, l.delta)
	}

	fmt.Println("\nHow to lift Asus laptop ratings by repricing (within bounds)?")
	ht, err := s.HowTo(ratingView + `
WHEN Brand = 'Asus' AND Category = 'Laptop'
HOWTOUPDATE Price
LIMIT 300 <= POST(Price) <= 1200
TOMAXIMIZE AVG(POST(Rtng))
FOR PRE(Brand) = 'Asus' AND PRE(Category) = 'Laptop'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", ht)
}
