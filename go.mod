module hyper

go 1.24
