package hyper_test

import (
	"fmt"

	"hyper"
	"hyper/internal/dataset"
)

// ExampleSession_WhatIf runs the paper's Figure 4 query on the Figure 1
// database: the effect of a 10% Asus price increase on average ratings.
func ExampleSession_WhatIf() {
	db, model := dataset.Toy()
	s := hyper.NewSession(db, model)
	res, err := s.WhatIf(`
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
WHEN Brand = 'Asus'
UPDATE(Price) = 1.1 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Category) = 'Laptop'`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("view rows: %d, updated: %d, blocks: %d\n", res.ViewRows, res.UpdatedRows, res.Blocks)
	fmt.Printf("rating in range: %v\n", res.Value >= 1 && res.Value <= 5)
	// Output:
	// view rows: 4, updated: 1, blocks: 3
	// rating in range: true
}

// ExampleSession_HowTo answers a constrained how-to query with the integer
// program of Section 4.3.
func ExampleSession_HowTo() {
	g := dataset.GermanSyn(5000, 7)
	s := hyper.NewSession(g.DB, g.Model)
	s.SetOptions(hyper.Options{Seed: 7})
	res, err := s.HowTo(`
USE German
HOWTOUPDATE Status, Savings
LIMIT UPDATES <= 1
TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	updated := 0
	for _, c := range res.Choices {
		if c.Update != nil {
			updated++
			fmt.Printf("update %s\n", c.Attr)
		}
	}
	fmt.Printf("updates used: %d, improved: %v\n", updated, res.Objective > res.Base)
	// Output:
	// update Status
	// updates used: 1, improved: true
}

// ExampleParse validates and canonicalizes a HypeRQL query without
// evaluating it.
func ExampleParse() {
	canon, err := hyper.Parse(`use T update(P) = 1.5 * pre(P) output count(*)`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(canon)
	// Output:
	// USE T UPDATE(P) = 1.5 * PRE(P) OUTPUT COUNT(*)
}
