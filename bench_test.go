package hyper

// One benchmark per table/figure of the paper's evaluation (Section 5).
// Dataset sizes are scaled down so `go test -bench=.` stays interactive;
// cmd/hyperbench runs the same experiments at arbitrary scale and prints the
// full series. Custom metrics report the quantities the paper plots
// (query-output error, solution quality) alongside ns/op.

import (
	"fmt"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/experiments"
	"hyper/internal/howto"
	"hyper/internal/hyperql"
	"hyper/internal/prcm"
)

const benchGermanRows = 20000

func germanBench(b *testing.B) *dataset.Single {
	b.Helper()
	return dataset.GermanSyn(benchGermanRows, 7)
}

func benchWhatIf(b *testing.B, g *dataset.Single, src string, opts engine.Options) *engine.Result {
	b.Helper()
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		b.Fatal(err)
	}
	var res *engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = engine.Evaluate(g.DB, g.Model, q, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1 measures the Count what-if runtime per mode (Table 1's
// columns) on German-Syn.
func BenchmarkTable1(b *testing.B) {
	g := germanBench(b)
	for _, m := range []engine.Mode{engine.ModeFull, engine.ModeNB, engine.ModeIndep} {
		b.Run(m.String(), func(b *testing.B) {
			benchWhatIf(b, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
				engine.Options{Mode: m, Seed: 7})
		})
	}
}

// BenchmarkTable1Amazon covers Table 1's multi-relation row: the Amazon
// join-view Count query.
func BenchmarkTable1Amazon(b *testing.B) {
	am := dataset.AmazonSyn(1500, 12, 7)
	q, err := hyperql.ParseWhatIf(`
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)
WHEN Category = 'Laptop'
UPDATE(Price) = 0.9 * PRE(Price)
OUTPUT COUNT(POST(Rtng) >= 4)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Evaluate(am.DB, am.Model, q, engine.Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SampleQuality reports the sampled-variant output error per
// sample size (Figure 6a).
func BenchmarkFig6SampleQuality(b *testing.B) {
	g := germanBench(b)
	q, _ := hyperql.ParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	full, err := engine.Evaluate(g.DB, g.Model, q, engine.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1000, 5000, 10000} {
		b.Run(fmt.Sprintf("sample%d", size), func(b *testing.B) {
			var res *engine.Result
			for i := 0; i < b.N; i++ {
				res, err = engine.Evaluate(g.DB, g.Model, q,
					engine.Options{Seed: int64(7 + i), SampleSize: size})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(abs(res.Value-full.Value)/float64(benchGermanRows), "output-err")
		})
	}
}

// BenchmarkFig6SampleTime is Figure 6b: runtime as the training-sample grows.
func BenchmarkFig6SampleTime(b *testing.B) {
	g := germanBench(b)
	for _, size := range []int{2000, 10000, benchGermanRows} {
		b.Run(fmt.Sprintf("sample%d", size), func(b *testing.B) {
			benchWhatIf(b, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
				engine.Options{Seed: 7, SampleSize: size})
		})
	}
}

// BenchmarkFig8AttributeImportance runs the min/max update pair per attribute
// (Figure 8a) on the 21-attribute German stand-in.
func BenchmarkFig8AttributeImportance(b *testing.B) {
	g := dataset.GermanLike(1000, 7)
	for _, attr := range []string{"Status", "CreditHistory", "Housing", "Investment"} {
		b.Run(attr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, v := range []string{"0", "3"} {
					q, err := hyperql.ParseWhatIf("USE German UPDATE(" + attr + ") = " + v + " OUTPUT COUNT(Credit = 1)")
					if err != nil {
						b.Fatal(err)
					}
					if _, err := engine.Evaluate(g.DB, g.Model, q, engine.Options{Seed: 7}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig9Discretization is Figure 9: the how-to IP per bucket count,
// reporting ground-truth solution quality.
func BenchmarkFig9Discretization(b *testing.B) {
	g := dataset.GermanSynContinuous(5000, 7)
	q, err := hyperql.ParseHowTo(`
USE German
HOWTOUPDATE CreditAmount, Duration, InstallmentRate
LIMIT 0 <= POST(CreditAmount) <= 6000 AND 6 <= POST(Duration) <= 48 AND 1 <= POST(InstallmentRate) <= 4
TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		b.Fatal(err)
	}
	gt := func(updates []hyperql.UpdateSpec) float64 {
		var ivs []prcm.Intervention
		for _, u := range updates {
			u := u
			ivs = append(ivs, prcm.Intervention{Attr: u.Attr, Fn: func(pre float64) float64 {
				return u.Apply(Float(pre)).AsFloat()
			}})
		}
		post := g.World.Counterfactual(ivs...)
		ci := post.Schema().MustIndex("Credit")
		n := 0
		for _, row := range post.Rows() {
			if row[ci].AsInt() == 1 {
				n++
			}
		}
		return float64(n)
	}
	fine, err := howto.Candidates(g.DB, q, howto.Options{Buckets: 16})
	if err != nil {
		b.Fatal(err)
	}
	opt, err := howto.BruteForceWith(q, fine, func(u []hyperql.UpdateSpec) (float64, error) { return gt(u), nil })
	if err != nil {
		b.Fatal(err)
	}
	for _, buckets := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("buckets%d", buckets), func(b *testing.B) {
			var res *howto.Result
			for i := 0; i < b.N; i++ {
				res, err = howto.Evaluate(g.DB, g.Model, q,
					howto.Options{Engine: engine.Options{Seed: 7}, Buckets: buckets})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(gt(res.Updates())/opt.Objective, "quality")
		})
	}
}

// BenchmarkFig10Accuracy reports each mode's deviation from the exact
// counterfactual ground truth (Figure 10a).
func BenchmarkFig10Accuracy(b *testing.B) {
	g := germanBench(b)
	post := g.World.Counterfactual(prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }})
	ci := post.Schema().MustIndex("Credit")
	good := 0
	for _, row := range post.Rows() {
		if row[ci].AsInt() == 1 {
			good++
		}
	}
	truth := float64(good) / float64(post.Len())
	for _, m := range []engine.Mode{engine.ModeFull, engine.ModeNB, engine.ModeIndep} {
		b.Run(m.String(), func(b *testing.B) {
			res := benchWhatIf(b, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
				engine.Options{Mode: m, Seed: 7})
			b.ReportMetric(abs(res.Value/float64(benchGermanRows)-truth), "truth-err")
		})
	}
}

// BenchmarkFig11For is Figure 11a: what-if runtime vs FOR attribute count.
func BenchmarkFig11For(b *testing.B) {
	st := dataset.StudentSynWide(3000, 5, 3, 7)
	base := `
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, P.Extra1, P.Extra2, P.Extra3,
            S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)
UPDATE(Assignment) = 95
OUTPUT COUNT(POST(Grade) >= 60)`
	fors := []string{"", " FOR PRE(Age) >= 0 AND PRE(Gender) >= 0 AND PRE(Country) >= 0",
		" FOR PRE(Age) >= 0 AND PRE(Gender) >= 0 AND PRE(Country) >= 0 AND PRE(Attendance) >= 0 AND PRE(Discussion) >= 0 AND PRE(Extra1) >= 0"}
	for i, f := range fors {
		b.Run(fmt.Sprintf("forAttrs%d", i*3), func(b *testing.B) {
			q, err := hyperql.ParseWhatIf(base + f)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for j := 0; j < b.N; j++ {
				if _, err := engine.Evaluate(st.DB, st.Model, q, engine.Options{Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11HowTo is Figure 11b: IP vs brute force per attribute count.
func BenchmarkFig11HowTo(b *testing.B) {
	st := dataset.StudentSynWide(1000, 5, 3, 7)
	for _, k := range []int{2, 3} {
		attrs := []string{"Discussion", "HandRaised", "Announcements"}[:k]
		limits := ""
		for i, a := range attrs {
			if i > 0 {
				limits += " AND "
			}
			limits += "POST(" + a + ") IN (0, 5, 10)"
		}
		src := `
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)
HOWTOUPDATE `
		for i, a := range attrs {
			if i > 0 {
				src += ", "
			}
			src += a
		}
		src += "\nLIMIT " + limits + "\nTOMAXIMIZE AVG(POST(Grade))"
		q, err := hyperql.ParseHowTo(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ip-attrs%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := howto.Evaluate(st.DB, st.Model, q, howto.Options{Engine: engine.Options{Seed: 7}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bruteforce-attrs%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := howto.BruteForce(st.DB, st.Model, q, howto.Options{Engine: engine.Options{Seed: 7}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12WhatIf is Figure 12a: what-if runtime vs dataset size.
func BenchmarkFig12WhatIf(b *testing.B) {
	for _, size := range []int{5000, 20000, 50000} {
		g := dataset.GermanSyn(size, 7)
		for _, m := range []struct {
			name string
			opts engine.Options
		}{
			{"HypeR", engine.Options{Seed: 7}},
			{"HypeR-sampled", engine.Options{Seed: 7, SampleSize: 10000}},
			{"Indep", engine.Options{Mode: engine.ModeIndep, Seed: 7}},
		} {
			b.Run(fmt.Sprintf("%s/rows%d", m.name, size), func(b *testing.B) {
				benchWhatIf(b, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, m.opts)
			})
		}
	}
}

// BenchmarkFig12HowTo is Figure 12b: how-to runtime vs dataset size.
func BenchmarkFig12HowTo(b *testing.B) {
	q, err := hyperql.ParseHowTo(`
USE German
HOWTOUPDATE Status, Savings, Housing, CreditAmount
TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{5000, 20000} {
		g := dataset.GermanSyn(size, 7)
		b.Run(fmt.Sprintf("ip/rows%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := howto.Evaluate(g.DB, g.Model, q, howto.Options{Engine: engine.Options{Seed: 7}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bruteforce/rows%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := howto.BruteForce(g.DB, g.Model, q, howto.Options{Engine: engine.Options{Seed: 7}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackdoorSize is the Section 5.5 backdoor-size study: minimal
// backdoor set vs all-attribute conditioning.
func BenchmarkBackdoorSize(b *testing.B) {
	g := germanBench(b)
	b.Run("minimal", func(b *testing.B) {
		benchWhatIf(b, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, engine.Options{Seed: 7})
	})
	b.Run("all-attrs", func(b *testing.B) {
		benchWhatIf(b, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
			engine.Options{Mode: engine.ModeNB, Seed: 7})
	})
}

// BenchmarkBlocksAblation verifies the block decomposition is a pure
// optimization (DESIGN.md ablation): identical results with and without.
func BenchmarkBlocksAblation(b *testing.B) {
	g := germanBench(b)
	b.Run("with-blocks", func(b *testing.B) {
		benchWhatIf(b, g, `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1)`, engine.Options{Seed: 7})
	})
	b.Run("without-blocks", func(b *testing.B) {
		benchWhatIf(b, g, `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1)`,
			engine.Options{Seed: 7, DisableBlocks: true})
	})
}

// BenchmarkEstimatorAblation compares the three conditional estimators
// (DESIGN.md ablation): exact frequency, boosted forest, linear — on the
// same German-Syn Count query, reporting ground-truth error.
func BenchmarkEstimatorAblation(b *testing.B) {
	g := dataset.GermanSyn(10000, 7)
	post := g.World.Counterfactual(prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }})
	ci := post.Schema().MustIndex("Credit")
	good := 0
	for _, row := range post.Rows() {
		good += int(row[ci].AsInt())
	}
	truth := float64(good) / float64(post.Len())
	for _, e := range []struct {
		name string
		kind engine.EstimatorKind
	}{
		{"freq", engine.EstimatorFreq},
		{"forest", engine.EstimatorForest},
		{"linear", engine.EstimatorLinear},
	} {
		b.Run(e.name, func(b *testing.B) {
			q, _ := hyperql.ParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
			var res *engine.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = engine.Evaluate(g.DB, g.Model, q, engine.Options{Seed: 7, Estimator: e.kind})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(abs(res.Value/10000-truth), "truth-err")
		})
	}
}

// BenchmarkRepeatWhatIf measures the serving-path win of the shared session
// cache: the same what-if query evaluated from scratch every time (a
// cache-less Session) vs. repeated against a warm cache (the hyperd
// configuration), where view materialization and estimator training are
// memoized and only tuple evaluation remains.
func BenchmarkRepeatWhatIf(b *testing.B) {
	g := germanBench(b)
	const src = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`
	b.Run("uncached", func(b *testing.B) {
		s := NewSession(g.DB, g.Model)
		s.SetOptions(Options{Seed: 7})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.WhatIf(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := NewSessionWithCache(g.DB, g.Model, NewCacheBounded(512))
		s.SetOptions(Options{Seed: 7})
		if _, err := s.WhatIf(src); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.WhatIf(src); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := s.Cache().Stats()
		b.ReportMetric(st.HitRate(), "hit-rate")
	})
}

// BenchmarkExperimentHarness exercises the full experiment drivers at tiny
// scale, ensuring the cmd/hyperbench paths stay healthy.
func BenchmarkExperimentHarness(b *testing.B) {
	cfg := experiments.Config{Scale: 0.002, Seed: 7}
	for _, e := range []struct {
		name string
		fn   func(experiments.Config) error
	}{
		{"usecases", experiments.UseCases},
		{"fig8", experiments.Fig8},
		{"backdoor", experiments.BackdoorSize},
	} {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.fn(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
