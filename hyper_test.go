package hyper

import (
	"strings"
	"testing"

	"hyper/internal/dataset"
)

// figure4Query is the exact what-if query of Figure 4 in the paper.
const figure4Query = `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
            AVG(Sentiment) AS Senti, AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
WHEN Brand = 'Asus'
UPDATE(Price) = 1.1 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Category) = 'Laptop' AND PRE(Brand) = 'Asus' AND POST(Senti) > 0.5`

// figure5Query is the how-to query of Figure 5 (with the USE clause of
// Figure 4 inlined).
const figure5Query = `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Color,
            AVG(Sentiment) AS Senti, AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Color)
WHEN Brand = 'Asus' AND Category = 'Laptop'
HOWTOUPDATE Price, Color
LIMIT 500 <= POST(Price) <= 800 AND L1(PRE(Price), POST(Price)) <= 400
TOMAXIMIZE AVG(POST(Rtng))
FOR (PRE(Category) = 'Laptop' OR PRE(Category) = 'DSLR Camera') AND Brand = 'Asus'`

func TestFigure4QueryOnToyDatabase(t *testing.T) {
	db, model := dataset.Toy()
	s := NewSession(db, model)
	if err := s.Validate(); err != nil {
		t.Fatalf("model validation: %v", err)
	}
	res, err := s.WhatIf(figure4Query)
	if err != nil {
		t.Fatalf("what-if: %v", err)
	}
	if res.ViewRows != 4 {
		// One row per product with at least one review (the eBook has none).
		t.Errorf("relevant view should have one row per reviewed product, got %d", res.ViewRows)
	}
	if res.UpdatedRows != 1 {
		t.Errorf("WHEN Brand='Asus' selects 1 product, got %d", res.UpdatedRows)
	}
	if res.Value < 0 || res.Value > 5 {
		t.Errorf("average rating %.3f out of range [0, 5]", res.Value)
	}
	if res.Blocks < 2 {
		t.Errorf("toy database should decompose into >= 2 blocks (laptops+camera, books), got %d", res.Blocks)
	}
}

func TestFigure5QueryOnToyDatabase(t *testing.T) {
	db, model := dataset.Toy()
	s := NewSession(db, model)
	res, err := s.HowTo(figure5Query)
	if err != nil {
		t.Fatalf("how-to: %v", err)
	}
	if len(res.Choices) != 2 {
		t.Fatalf("expected choices for Price and Color, got %v", res.Choices)
	}
	for _, c := range res.Choices {
		if c.Attr == "Price" && c.Update != nil {
			v := c.Update.Const.AsFloat()
			if v < 500 || v > 800 {
				t.Errorf("chosen price %g violates LIMIT [500, 800]", v)
			}
		}
	}
	if res.Objective < res.Base-1e-9 {
		t.Errorf("objective %.3f must not be worse than base %.3f", res.Objective, res.Base)
	}
}

func TestQueryDispatch(t *testing.T) {
	db, model := dataset.Toy()
	s := NewSession(db, model)
	r1, err := s.Query(`USE Product UPDATE(Price) = 500 OUTPUT AVG(POST(Quality))`)
	if err != nil {
		t.Fatalf("what-if dispatch: %v", err)
	}
	if _, ok := r1.(*WhatIfResult); !ok {
		t.Errorf("expected *WhatIfResult, got %T", r1)
	}
	r2, err := s.Query(`USE Product HOWTOUPDATE Price LIMIT 100 <= POST(Price) <= 1000 TOMAXIMIZE AVG(POST(Quality))`)
	if err != nil {
		t.Fatalf("how-to dispatch: %v", err)
	}
	if _, ok := r2.(*HowToResult); !ok {
		t.Errorf("expected *HowToResult, got %T", r2)
	}
}

func TestParseRoundTrip(t *testing.T) {
	canon, err := Parse(figure4Query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, want := range []string{"USE (SELECT", "WHEN", "UPDATE(Price)", "OUTPUT AVG", "FOR"} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical form missing %q: %s", want, canon)
		}
	}
	// The canonical form must itself parse to the same canonical form.
	again, err := Parse(canon)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again != canon {
		t.Errorf("canonical form is not a fixed point:\n%s\n%s", canon, again)
	}
}

func TestSessionModes(t *testing.T) {
	g := dataset.GermanSyn(2000, 5)
	for _, mode := range []Mode{ModeFull, ModeNB, ModeIndep} {
		s := NewSession(g.DB, g.Model)
		s.SetOptions(Options{Mode: mode, Seed: 1})
		res, err := s.WhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if res.Mode != mode {
			t.Errorf("result mode = %s, want %s", res.Mode, mode)
		}
		if res.Value <= 0 || res.Value > float64(g.Rel().Len()) {
			t.Errorf("mode %s: value %.1f out of range", mode, res.Value)
		}
	}
}
