// Package hyper is a Go implementation of HypeR, the probabilistic
// hypothetical-reasoning framework of Galhotra, Gilad, Roy and Salimi
// (SIGMOD 2022): what-if queries ("what happens to average ratings if Asus
// laptop prices rise 10%?") and how-to queries ("how should price and color
// change to maximize ratings?") over relational databases, with the
// collateral effects of updates propagated through a probabilistic
// relational causal model.
//
// A Session binds a database and a causal model; queries are written in
// HypeRQL, the extended SQL of the paper:
//
//	db, model := dataset.Toy()
//	s := hyper.NewSession(db, model)
//	res, err := s.WhatIf(`
//	    USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
//	                AVG(T2.Rating) AS Rtng
//	         FROM Product AS T1, Review AS T2
//	         WHERE T1.PID = T2.PID
//	         GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
//	    WHEN Brand = 'Asus'
//	    UPDATE(Price) = 1.1 * PRE(Price)
//	    OUTPUT AVG(POST(Rtng))
//	    FOR PRE(Category) = 'Laptop'`)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package hyper

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"hyper/internal/causal"
	"hyper/internal/engine"
	"hyper/internal/howto"
	"hyper/internal/hyperql"
	"hyper/internal/plan"
	"hyper/internal/relation"
)

// Re-exported relational building blocks.
type (
	// Value is a typed database value.
	Value = relation.Value
	// Column describes one attribute of a schema.
	Column = relation.Column
	// Schema is an ordered list of columns.
	Schema = relation.Schema
	// Relation is a named table.
	Relation = relation.Relation
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// Database is a collection of relations with foreign keys.
	Database = relation.Database
	// ForeignKey links a child column to a parent column.
	ForeignKey = relation.ForeignKey
	// CausalModel is the attribute-level causal DAG plus cross-tuple edges.
	CausalModel = causal.Model
	// CrossEdge declares a cross-tuple causal dependency.
	CrossEdge = causal.CrossEdge
	// WhatIfResult is the result of a what-if query.
	WhatIfResult = engine.Result
	// HowToResult is the result of a how-to query.
	HowToResult = howto.Result
	// Mode selects the estimation variant (HypeR, HypeR-NB, Indep).
	Mode = engine.Mode
	// Kind is the dynamic type of a Value.
	Kind = relation.Kind
	// Progress receives coarse evaluation progress: stage is "tuples"
	// (engine per-tuple loop), "candidates" (how-to scoring pool) or
	// "combos" (brute-force search); total <= 0 means unknown.
	// Implementations must be safe for concurrent use.
	Progress = engine.ProgressFunc
)

// Value kinds, re-exported for schema declarations.
const (
	KindNull   = relation.KindNull
	KindBool   = relation.KindBool
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
)

// Value constructors and modes, re-exported for convenience.
var (
	Int    = relation.Int
	Float  = relation.Float
	String = relation.String
	Bool   = relation.Bool
	Null   = relation.Null
)

// Engine modes (Section 5 variants).
const (
	ModeFull  = engine.ModeFull
	ModeNB    = engine.ModeNB
	ModeIndep = engine.ModeIndep
)

// Constructors re-exported from the relation package.
var (
	NewDatabase  = relation.NewDatabase
	NewRelation  = relation.NewRelation
	NewSchema    = relation.NewSchema
	MustSchema   = relation.MustSchema
	LoadCSV      = relation.LoadCSV
	ReadCSV      = relation.ReadCSV
	ReadCSVKeyed = relation.ReadCSVKeyed
)

// NewCausalModel returns an empty causal model; add edges with AddEdge
// ("Rel.Attr" qualified names) and cross-tuple edges with AddCross.
func NewCausalModel() *CausalModel { return causal.NewModel() }

// Options configures query evaluation for a Session.
type Options struct {
	// Mode selects HypeR (ModeFull), HypeR-NB (ModeNB) or the Indep
	// baseline (ModeIndep).
	Mode Mode
	// SampleSize > 0 enables the HypeR-sampled variant with the given
	// training-sample size.
	SampleSize int
	// Seed makes evaluation reproducible.
	Seed int64
	// Buckets controls discretization of continuous attributes in how-to
	// candidate enumeration (default 8).
	Buckets int
	// Shards caps the worker fan-out of the shard-parallel evaluation
	// stages (tuple loops, per-shard estimator fitting, how-to candidate
	// scoring): 0 = GOMAXPROCS, 1 = serial. Purely an execution knob —
	// results are bit-identical for every value, because evaluation reduces
	// over a canonical shard plan derived from the data (see ShardRows).
	Shards int
	// ShardRows overrides the rows-per-shard granularity of the canonical
	// plan (default 4096). It is part of evaluation semantics: changing it
	// regroups floating-point reductions, so distinct granularities keep
	// distinct cache artifacts.
	ShardRows int
	// RemoteFit, when non-nil, offloads shard-mergeable estimator fits to a
	// distribution layer (internal/dist provides the implementation). Like
	// Shards it is purely an execution knob: remote and local fits are
	// bit-identical, and any remote failure falls back to the local fit.
	RemoteFit RemoteFitter
}

// RemoteFitter is the hook a distribution layer implements to fit
// shard-mergeable estimators off-process; see engine.RemoteFitter.
type RemoteFitter = engine.RemoteFitter

// WithShards returns a copy of o with the shard fan-out set.
func (o Options) WithShards(n int) Options {
	o.Shards = n
	return o
}

// WithRemoteFit returns a copy of o with the remote fitter set.
func (o Options) WithRemoteFit(f RemoteFitter) Options {
	o.RemoteFit = f
	return o
}

// Session binds a database and causal model for query evaluation.
//
// A Session is safe for concurrent use: each query works on a snapshot of
// the options taken when it starts, and the database and causal model are
// treated as read-only. A session created with NewSessionWithCache shares
// one engine cache across all of its queries (and callers), so repeated
// queries with the same USE/WHEN/FOR clauses reuse the materialized view,
// block decomposition, and trained estimators.
type Session struct {
	db    *Database
	model *CausalModel
	cache *engine.Cache
	plans *plan.Cache

	mu   sync.RWMutex
	opts Options
}

// Cache is the engine-level artifact cache shared by a session's queries.
// See NewCacheBounded for the eviction bound and Cache.Stats for hit/miss
// counters.
type Cache = engine.Cache

// CacheStats reports cache hit/miss/eviction counters.
type CacheStats = engine.CacheStats

// PlanCache is the bounded, fingerprint-keyed compiled-plan cache: repeat
// query shapes skip planning, WHEN predicates push down into columnar
// scans, and results stay bit-identical to unplanned evaluation. See
// internal/plan for the contract.
type PlanCache = plan.Cache

// PlanCacheStats reports plan-cache hit/miss/eviction/compile counters.
type PlanCacheStats = plan.Stats

// NewCache returns an unbounded query-artifact cache.
func NewCache() *Cache { return engine.NewCache() }

// NewCacheBounded returns a cache evicting least-recently-used artifacts
// past max entries (max <= 0 means unbounded).
func NewCacheBounded(max int) *Cache { return engine.NewCacheBounded(max) }

// NewPlanCache returns a compiled-plan cache evicting least-recently-used
// artifacts past max entries (max <= 0 means unbounded).
func NewPlanCache(max int) *PlanCache { return plan.NewCache(max) }

// PlanFingerprint returns the 16-hex shape fingerprint that keys src's
// compiled plan for sessions over db (plan-cache identity is this
// fingerprint computed over the schema signature).
func PlanFingerprint(db *Database, src string) (string, error) {
	q, err := hyperql.Parse(src)
	if err != nil {
		return "", err
	}
	return plan.Fingerprint(db, q), nil
}

// NewSession creates a session. model may be nil, in which case queries run
// in no-background mode (all attributes are treated as potential
// confounders). The session has no shared cache: each query (re)builds its
// artifacts, which keeps results independent of query history; long-lived
// callers should use NewSessionWithCache.
func NewSession(db *Database, model *CausalModel) *Session {
	return &Session{db: db, model: model}
}

// NewSessionWithCache creates a session whose queries share cache, so a
// repeated what-if query is served from memoized artifacts instead of
// rebuilding the view and retraining estimators. A nil cache allocates a
// fresh unbounded one. The cache must not be shared with sessions over a
// different database or causal model.
func NewSessionWithCache(db *Database, model *CausalModel, cache *Cache) *Session {
	if cache == nil {
		cache = engine.NewCache()
	}
	return &Session{db: db, model: model, cache: cache}
}

// Cache returns the session's shared cache (nil for sessions created with
// NewSession).
func (s *Session) Cache() *Cache { return s.cache }

// SetPlanCache attaches a compiled-plan cache shared by the session's
// queries (and by sessions later derived with With). Like the artifact
// cache it must only serve queries against this session's database; drop it
// with the session. A nil argument detaches planning.
func (s *Session) SetPlanCache(p *PlanCache) { s.plans = p }

// PlanCache returns the session's compiled-plan cache (nil when planning is
// not enabled).
func (s *Session) PlanCache() *PlanCache { return s.plans }

// With returns a derived session sharing this session's database, causal
// model and caches, with its own options. It is how a server applies
// per-request overrides (a shard fan-out, a different seed) without touching
// the shared session's state: the derived session is as concurrency-safe as
// the original, and artifacts still flow through the one shared cache.
func (s *Session) With(o Options) *Session {
	d := &Session{db: s.db, model: s.model, cache: s.cache, plans: s.plans}
	d.opts = o
	return d
}

// Version returns the MVCC snapshot version of the session's database: 0
// for an unversioned (bare NewDatabase) instance, otherwise the version set
// at creation plus one per Append.
func (s *Session) Version() int64 { return s.db.Version() }

// Append returns a new immutable session whose database extends this one's
// by the given rows (relation name -> tuples), with the snapshot version
// bumped by one. The receiver is untouched — queries running against it (or
// any earlier version) are never perturbed — and the derived session shares
// the receiver's causal model, caches, and options, so artifacts fitted for
// earlier snapshots keep serving queries pinned to them while the new
// version's cache identity is distinct from the first query on.
//
// Appended tuples are validated under the same rules as building the
// relation row by row (arity, kind coercion, primary-key uniqueness); any
// failure leaves every published version untouched and returns the error.
func (s *Session) Append(rows map[string][]Tuple) (*Session, error) {
	db, err := s.db.Extend(rows)
	if err != nil {
		return nil, err
	}
	d := &Session{db: db, model: s.model, cache: s.cache, plans: s.plans}
	d.opts = s.Options()
	return d, nil
}

// SetOptions replaces the session's evaluation options. Queries already in
// flight keep the options they started with.
func (s *Session) SetOptions(o Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts = o
}

// Options returns the session's evaluation options.
func (s *Session) Options() Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.opts
}

// DB returns the session database.
func (s *Session) DB() *Database { return s.db }

// Model returns the session's causal model (may be nil).
func (s *Session) Model() *CausalModel { return s.model }

// Validate checks the causal model against the database schema.
func (s *Session) Validate() error {
	if s.model == nil {
		return nil
	}
	return s.model.Validate(s.db)
}

// engineOpts snapshots the session options into engine options; the snapshot
// (not the live session state) flows through the whole evaluation, so a
// concurrent SetOptions cannot tear a running query.
func (s *Session) engineOpts() engine.Options {
	return engineOptsFrom(s.Options(), s.cache, s.plans)
}

func engineOptsFrom(o Options, cache *engine.Cache, plans *plan.Cache) engine.Options {
	return engine.Options{
		Mode:       o.Mode,
		SampleSize: o.SampleSize,
		Seed:       o.Seed,
		Shards:     o.Shards,
		ShardRows:  o.ShardRows,
		RemoteFit:  o.RemoteFit,
		Cache:      cache,
		Plans:      plans,
	}
}

// EngineOptions snapshots the session options into the engine's option form
// (including the shared cache). The serving layer hands it to a distribution
// coordinator so locally prepared plans and remote workers agree on the
// semantic options.
func (s *Session) EngineOptions() engine.Options {
	return s.engineOpts()
}

// howtoOpts snapshots the session options into how-to options (one snapshot
// for the whole query, so a concurrent SetOptions cannot mix two option
// versions).
func (s *Session) howtoOpts() howto.Options {
	o := s.Options()
	return howto.Options{
		Engine:  engineOptsFrom(o, s.cache, s.plans),
		Buckets: o.Buckets,
	}
}

// WhatIf parses and evaluates a what-if query.
func (s *Session) WhatIf(src string) (*WhatIfResult, error) {
	return s.WhatIfContext(context.Background(), src, nil)
}

// WhatIfContext is WhatIf with cancellation and observability: ctx is
// observed inside the evaluation pipeline (tuple loop, estimator training),
// so a cancelled or deadline-expired context stops the query mid-solve with
// ctx.Err(); progress, when non-nil, receives tuple-evaluation updates.
func (s *Session) WhatIfContext(ctx context.Context, src string, progress Progress) (*WhatIfResult, error) {
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		return nil, err
	}
	opts := s.engineOpts()
	opts.Progress = progress
	return engine.EvaluateContext(ctx, s.db, s.model, q, opts)
}

// HowTo parses and evaluates a how-to query via the integer-program
// formulation.
func (s *Session) HowTo(src string) (*HowToResult, error) {
	return s.HowToContext(context.Background(), src, nil)
}

// HowToContext is HowTo with cancellation and observability: ctx flows into
// candidate scoring and the IP branch and bound; progress, when non-nil,
// receives one "candidates" update per scored candidate.
func (s *Session) HowToContext(ctx context.Context, src string, progress Progress) (*HowToResult, error) {
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		return nil, err
	}
	opts := s.howtoOpts()
	opts.Progress = progress
	return howto.EvaluateContext(ctx, s.db, s.model, q, opts)
}

// HowToBruteForce evaluates a how-to query with the exhaustive Opt-HowTo
// baseline (exponential in the number of update attributes; for comparison
// and testing).
func (s *Session) HowToBruteForce(src string) (*HowToResult, error) {
	return s.HowToBruteForceContext(context.Background(), src, nil)
}

// HowToBruteForceContext is HowToBruteForce with cancellation and progress
// ("combos" updates, one per evaluated combination).
func (s *Session) HowToBruteForceContext(ctx context.Context, src string, progress Progress) (*HowToResult, error) {
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		return nil, err
	}
	opts := s.howtoOpts()
	opts.Progress = progress
	return howto.BruteForceContext(ctx, s.db, s.model, q, opts)
}

// HowToMinimizeCost solves the alternate how-to formulation (Section 4.3,
// footnote 3): minimize the total normalized L1 update cost subject to the
// query's TOMAXIMIZE aggregate reaching at least target.
func (s *Session) HowToMinimizeCost(src string, target float64) (*HowToResult, error) {
	return s.HowToMinimizeCostContext(context.Background(), src, target, nil)
}

// HowToMinimizeCostContext is HowToMinimizeCost with cancellation and
// candidate-scoring progress.
func (s *Session) HowToMinimizeCostContext(ctx context.Context, src string, target float64, progress Progress) (*HowToResult, error) {
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		return nil, err
	}
	opts := s.howtoOpts()
	opts.Progress = progress
	return howto.MinimizeCostContext(ctx, s.db, s.model, q, target, opts)
}

// HowToLexicographic evaluates a preferential multi-objective how-to query:
// sources are complete how-to queries sharing USE/WHEN/HOWTOUPDATE/LIMIT
// whose objectives are optimized in the given priority order.
func (s *Session) HowToLexicographic(srcs ...string) (*HowToResult, error) {
	return s.HowToLexicographicContext(context.Background(), nil, srcs...)
}

// HowToLexicographicContext is HowToLexicographic with cancellation and
// candidate-scoring progress.
func (s *Session) HowToLexicographicContext(ctx context.Context, progress Progress, srcs ...string) (*HowToResult, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("hyper: no objectives")
	}
	qs := make([]*hyperql.HowTo, len(srcs))
	for i, src := range srcs {
		q, err := hyperql.ParseHowTo(src)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	opts := s.howtoOpts()
	opts.Progress = progress
	return howto.LexicographicContext(ctx, s.db, s.model, qs, opts)
}

// Explain plans a what-if query without evaluating it, returning a
// human-readable description of the relevant view, the block decomposition,
// the FOR normalization, the conditioning (backdoor) set, and the chosen
// estimator.
func (s *Session) Explain(src string) (string, error) {
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		return "", err
	}
	opts := s.engineOpts()
	opts.DryRun = true
	res, err := engine.Evaluate(s.db, s.model, q, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "what-if plan (%s mode)\n", res.Mode)
	fmt.Fprintf(&b, "  relevant view: %d rows (built in %s)\n", res.ViewRows, res.ViewTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  update set S:  %d rows selected by WHEN\n", res.UpdatedRows)
	fmt.Fprintf(&b, "  blocks:        %d independent blocks\n", res.Blocks)
	fmt.Fprintf(&b, "  FOR disjuncts: %d\n", res.Disjuncts)
	fmt.Fprintf(&b, "  backdoor set:  %v\n", res.Backdoor)
	fmt.Fprintf(&b, "  estimator:     %s over %d training rows\n", res.EstimatorUsed, res.SampledRows)
	if res.PlanText != "" {
		fmt.Fprintf(&b, "  compiled plan (cache %s):\n", map[bool]string{true: "hit", false: "miss"}[res.PlanCacheHit])
		for _, line := range strings.Split(strings.TrimRight(res.PlanText, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String(), nil
}

// Query parses src and dispatches to WhatIf or HowTo; the result is either a
// *WhatIfResult or a *HowToResult.
func (s *Session) Query(src string) (any, error) {
	return s.QueryContext(context.Background(), src, nil)
}

// QueryContext is Query with cancellation and progress.
func (s *Session) QueryContext(ctx context.Context, src string, progress Progress) (any, error) {
	q, err := hyperql.Parse(src)
	if err != nil {
		return nil, err
	}
	switch qq := q.(type) {
	case *hyperql.WhatIf:
		opts := s.engineOpts()
		opts.Progress = progress
		return engine.EvaluateContext(ctx, s.db, s.model, qq, opts)
	case *hyperql.HowTo:
		opts := s.howtoOpts()
		opts.Progress = progress
		return howto.EvaluateContext(ctx, s.db, s.model, qq, opts)
	default:
		return nil, fmt.Errorf("hyper: unknown query type %T", q)
	}
}

// Parse parses a HypeRQL query without evaluating it, returning its
// canonical string form; useful for validation and tooling.
func Parse(src string) (string, error) {
	q, err := hyperql.Parse(src)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}
