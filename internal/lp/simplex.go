// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize c·x  subject to  A·x <= b,  x >= 0.
//
// It is the relaxation engine behind HypeR's integer-program solver
// (internal/ip), standing in for the external IP solver the paper uses
// (Section 4.3). Bland's rule guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a linear program: maximize C·x subject to A·x <= B, x >= 0.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d rhs entries", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != len(p.C) {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), len(p.C))
		}
	}
	return nil
}

// Solution holds the result of a solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

const eps = 1e-9

// Solve runs the two-phase simplex method on p.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	m := len(p.A)
	if n == 0 {
		return &Solution{Status: Optimal, X: nil, Obj: 0}, nil
	}

	// Build tableau with slack variables; rows with negative rhs get an
	// artificial variable after negation so the initial basis is feasible.
	// Columns: [x(0..n-1) | slack(0..m-1) | artificials...], then rhs.
	numArt := 0
	neg := make([]bool, m)
	for i, b := range p.B {
		if b < -eps {
			neg[i] = true
			numArt++
		}
	}
	cols := n + m + numArt
	t := newTableau(m, cols)
	basis := make([]int, m)
	art := 0
	for i := 0; i < m; i++ {
		sign := 1.0
		if neg[i] {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * p.A[i][j]
		}
		t.a[i][n+i] = sign // slack
		t.b[i] = sign * p.B[i]
		if neg[i] {
			t.a[i][n+m+art] = 1
			basis[i] = n + m + art
			art++
		} else {
			basis[i] = n + i
		}
	}

	if numArt > 0 {
		// Phase 1: minimize sum of artificials == maximize -(sum art).
		obj := make([]float64, cols)
		for j := n + m; j < cols; j++ {
			obj[j] = -1
		}
		if err := t.run(obj, basis); err != nil {
			return nil, err
		}
		// Check artificials are zero.
		sum := 0.0
		for i, bi := range basis {
			if bi >= n+m {
				sum += t.b[i]
			}
		}
		if sum > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any remaining artificial out of the basis if possible.
		for i, bi := range basis {
			if bi < n+m {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					basis[i] = j
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is redundant; zero it out (keep artificial at 0).
				for j := range t.a[i] {
					t.a[i][j] = 0
				}
				t.b[i] = 0
			}
		}
		// Remove artificial columns.
		t.truncate(n + m)
	}

	// Phase 2: maximize the real objective.
	obj := make([]float64, n+m)
	copy(obj, p.C)
	if err := t.run(obj, basis); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t.b[i]
		}
	}
	objv := 0.0
	for j, c := range p.C {
		objv += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: objv}, nil
}

var errUnbounded = errors.New("lp: unbounded")

type tableau struct {
	a [][]float64
	b []float64
}

func newTableau(m, cols int) *tableau {
	t := &tableau{a: make([][]float64, m), b: make([]float64, m)}
	flat := make([]float64, m*cols)
	for i := range t.a {
		t.a[i] = flat[i*cols : (i+1)*cols]
	}
	return t
}

func (t *tableau) truncate(cols int) {
	for i := range t.a {
		t.a[i] = t.a[i][:cols]
	}
}

// run optimizes maximize obj·x over the current tableau, updating basis in
// place. It uses reduced costs computed from the basis each iteration
// (revised-style but dense) with Bland's rule for anti-cycling.
func (t *tableau) run(obj []float64, basis []int) error {
	m := len(t.a)
	cols := len(t.a[0])
	for iter := 0; ; iter++ {
		if iter > 10000*(cols+m+1) {
			return errors.New("lp: iteration limit exceeded")
		}
		// Compute simplex multipliers implicitly: reduced cost of column j
		// is obj[j] - sum_i objB[i]*a[i][j] where objB is obj at basis vars.
		objB := make([]float64, m)
		for i, bi := range basis {
			if bi < len(obj) {
				objB[i] = obj[bi]
			}
		}
		enter := -1
		for j := 0; j < cols; j++ {
			c := 0.0
			if j < len(obj) {
				c = obj[j]
			}
			for i := 0; i < m; i++ {
				c -= objB[i] * t.a[i][j]
			}
			if c > eps { // Bland: first improving column
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test with Bland tie-break (smallest basis index).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][enter] > eps {
				r := t.b[i] / t.a[i][enter]
				if r < best-eps || (r < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
		basis[leave] = enter
	}
}

// pivot performs a Gauss-Jordan pivot on element (r, c).
func (t *tableau) pivot(r, c int) {
	pv := t.a[r][c]
	row := t.a[r]
	for j := range row {
		row[j] /= pv
	}
	t.b[r] /= pv
	for i := range t.a {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[r]
	}
}
