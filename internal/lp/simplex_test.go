package lp

import (
	"math"
	"testing"
	"testing/quick"

	"hyper/internal/stats"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return s
}

func TestSimplexTextbook(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
	p := &Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	}
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Obj-36) > 1e-9 || math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-6) > 1e-9 {
		t.Errorf("got obj=%g x=%v", s.Obj, s.X)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{0}}
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 (as -x <= -2).
	p := &Problem{C: []float64{1}, A: [][]float64{{1}, {-1}}, B: []float64{1, -2}}
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestSimplexNegativeRHSFeasible(t *testing.T) {
	// x >= 1 (as -x <= -1), x <= 3, maximize -x -> x = 1, obj -1.
	p := &Problem{C: []float64{-1}, A: [][]float64{{-1}, {1}}, B: []float64{-1, 3}}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.X[0]-1) > 1e-9 {
		t.Errorf("got %v x=%v", s.Status, s.X)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex: redundant constraints through the optimum.
	p := &Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{1, 1, 2},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-2) > 1e-9 {
		t.Errorf("degenerate: %v obj=%g", s.Status, s.Obj)
	}
}

func TestSimplexZeroVariables(t *testing.T) {
	s := solveOK(t, &Problem{})
	if s.Status != Optimal || s.Obj != 0 {
		t.Errorf("empty problem: %v", s)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}
	if _, err := Solve(p); err == nil {
		t.Error("dimension mismatch should fail")
	}
	p2 := &Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}
	if _, err := Solve(p2); err == nil {
		t.Error("rhs mismatch should fail")
	}
}

// Property: on random box-constrained problems (0 <= x_i <= u_i) with
// non-negative objective, the simplex optimum equals sum(c_i * u_i) —
// verified analytically.
func TestSimplexBoxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(6)
		p := &Problem{C: make([]float64, n)}
		want := 0.0
		for i := 0; i < n; i++ {
			c := rng.Float64() * 5
			u := rng.Float64()*9 + 1
			p.C[i] = c
			row := make([]float64, n)
			row[i] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, u)
			want += c * u
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		return math.Abs(s.Obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the returned solution is always primal-feasible and its objective
// matches C·X.
func TestSimplexFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := &Problem{C: make([]float64, n)}
		for i := range p.C {
			p.C[i] = rng.Float64()*4 - 2
		}
		for r := 0; r < m; r++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = rng.Float64()*4 - 1
			}
			p.A = append(p.A, row)
			p.B = append(p.B, rng.Float64()*10-2)
		}
		// Add a box so the problem is never unbounded.
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 10)
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return true // infeasible is legitimate for random constraints
		}
		obj := 0.0
		for i, c := range p.C {
			if s.X[i] < -1e-7 {
				return false
			}
			obj += c * s.X[i]
		}
		if math.Abs(obj-s.Obj) > 1e-6 {
			return false
		}
		for r, row := range p.A {
			lhs := 0.0
			for i, a := range row {
				lhs += a * s.X[i]
			}
			if lhs > p.B[r]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
