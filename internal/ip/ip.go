// Package ip implements a 0/1 integer-program model and an exact
// branch-and-bound solver bounded by LP relaxations (internal/lp). HypeR's
// how-to engine compiles each how-to query into such a program (Section 4.3,
// Equations 7-9): one binary indicator per candidate update, SOS-1 rows per
// attribute, and linear side constraints from the LIMIT operator.
package ip

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hyper/internal/lp"
	"hyper/internal/obs"
)

// Model is a 0/1 integer program: maximize Obj·x subject to the linear
// constraints, x_i in {0,1}.
type Model struct {
	names []string
	obj   []float64
	rows  [][]float64
	rhs   []float64
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a binary variable with the given objective coefficient and
// returns its index.
func (m *Model) AddVar(name string, objCoef float64) int {
	m.names = append(m.names, name)
	m.obj = append(m.obj, objCoef)
	for i := range m.rows {
		m.rows[i] = append(m.rows[i], 0)
	}
	return len(m.names) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// VarName returns the name of variable i.
func (m *Model) VarName(i int) string { return m.names[i] }

// AddLE adds a constraint sum(coef_i * x_idx_i) <= rhs.
func (m *Model) AddLE(idx []int, coef []float64, rhs float64) error {
	if len(idx) != len(coef) {
		return fmt.Errorf("ip: %d indexes but %d coefficients", len(idx), len(coef))
	}
	row := make([]float64, len(m.names))
	for k, i := range idx {
		if i < 0 || i >= len(m.names) {
			return fmt.Errorf("ip: variable index %d out of range", i)
		}
		row[i] += coef[k]
	}
	m.rows = append(m.rows, row)
	m.rhs = append(m.rhs, rhs)
	return nil
}

// AddGE adds sum(coef_i * x_i) >= rhs (stored as the negated <= row).
func (m *Model) AddGE(idx []int, coef []float64, rhs float64) error {
	neg := make([]float64, len(coef))
	for i, c := range coef {
		neg[i] = -c
	}
	return m.AddLE(idx, neg, -rhs)
}

// AddEQ adds an equality as a <= and >= pair.
func (m *Model) AddEQ(idx []int, coef []float64, rhs float64) error {
	if err := m.AddLE(idx, coef, rhs); err != nil {
		return err
	}
	return m.AddGE(idx, coef, rhs)
}

// AddAtMostOne adds the SOS-1 row sum(x_idx) <= 1 used for "pick at most one
// update per attribute".
func (m *Model) AddAtMostOne(idx []int) error {
	coef := make([]float64, len(idx))
	for i := range coef {
		coef[i] = 1
	}
	return m.AddLE(idx, coef, 1)
}

// Solution is the result of solving a model.
type Solution struct {
	Status lp.Status
	X      []bool
	Obj    float64
	Nodes  int // branch-and-bound nodes explored
}

// Selected returns the indexes of variables set to 1.
func (s *Solution) Selected() []int {
	var out []int
	for i, v := range s.X {
		if v {
			out = append(out, i)
		}
	}
	return out
}

// Solve runs exact branch and bound with LP-relaxation bounds and returns
// the optimal 0/1 assignment. The relaxation adds x_i <= 1 rows; branching
// fixes the most fractional variable first (depth-first, 1-branch first so
// good incumbents appear early).
func (m *Model) Solve() (*Solution, error) {
	return m.SolveContext(context.Background())
}

// SolveContext is Solve with cancellation: ctx is checked every 64
// branch-and-bound nodes, so a cancelled or deadline-expired context aborts
// the search mid-solve with ctx.Err() instead of exploring the remaining
// tree.
func (m *Model) SolveContext(ctx context.Context) (*Solution, error) {
	n := len(m.names)
	_, sp := obs.Start(ctx, "ip_solve")
	sp.Set("vars", n)
	defer sp.End()
	if n == 0 {
		return &Solution{Status: lp.Optimal}, nil
	}
	best := &Solution{Status: lp.Infeasible, Obj: math.Inf(-1)}
	fixed := make([]int8, n) // -1 free, 0 fixed zero, 1 fixed one
	for i := range fixed {
		fixed[i] = -1
	}
	nodes := 0
	var rec func(fixed []int8) error
	rec = func(fixed []int8) error {
		nodes++
		if nodes > 200000 {
			return fmt.Errorf("ip: node limit exceeded (%d)", nodes)
		}
		if nodes%64 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rel, err := m.relax(fixed)
		if err != nil {
			return err
		}
		sol, err := lp.Solve(rel)
		if err != nil {
			return err
		}
		if sol.Status == lp.Infeasible {
			return nil
		}
		if sol.Status == lp.Unbounded {
			// Binary variables bound every direction; unbounded relaxation
			// means the model is malformed.
			return fmt.Errorf("ip: relaxation unbounded")
		}
		// Map relaxation solution back to full variable space.
		x := make([]float64, n)
		j := 0
		bound := 0.0
		for i := 0; i < n; i++ {
			switch fixed[i] {
			case 1:
				x[i] = 1
				bound += m.obj[i]
			case 0:
				x[i] = 0
			default:
				x[i] = sol.X[j]
				bound += m.obj[i] * sol.X[j]
				j++
			}
		}
		if bound <= best.Obj+1e-9 {
			return nil // prune
		}
		// Find most fractional free variable.
		branch := -1
		bestFrac := -1.0
		for i := 0; i < n; i++ {
			if fixed[i] != -1 {
				continue
			}
			f := math.Abs(x[i] - math.Round(x[i]))
			if f > 1e-6 && f > bestFrac {
				bestFrac = f
				branch = i
			}
		}
		if branch < 0 {
			// Integral: candidate incumbent (verify feasibility exactly).
			bx := make([]bool, n)
			obj := 0.0
			for i := 0; i < n; i++ {
				bx[i] = x[i] > 0.5
				if bx[i] {
					obj += m.obj[i]
				}
			}
			if m.feasible(bx) && obj > best.Obj {
				best = &Solution{Status: lp.Optimal, X: bx, Obj: obj}
			}
			return nil
		}
		for _, v := range []int8{1, 0} {
			fixed[branch] = v
			if err := rec(fixed); err != nil {
				return err
			}
		}
		fixed[branch] = -1
		return nil
	}
	if err := rec(fixed); err != nil {
		return nil, err
	}
	sp.Set("nodes", nodes)
	obs.MeterFromContext(ctx).AddIPNodes(nodes)
	best.Nodes = nodes
	if best.Status == lp.Infeasible {
		return best, nil
	}
	return best, nil
}

// relax builds the LP relaxation over the free variables given the current
// fixing, moving fixed-one contributions into the rhs.
func (m *Model) relax(fixed []int8) (*lp.Problem, error) {
	var free []int
	for i, f := range fixed {
		if f == -1 {
			free = append(free, i)
		}
	}
	nf := len(free)
	p := &lp.Problem{C: make([]float64, nf)}
	for j, i := range free {
		p.C[j] = m.obj[i]
	}
	for r, row := range m.rows {
		rhs := m.rhs[r]
		newRow := make([]float64, nf)
		any := false
		for j, i := range free {
			newRow[j] = row[i]
			if row[i] != 0 {
				any = true
			}
		}
		for i, f := range fixed {
			if f == 1 {
				rhs -= row[i]
			}
		}
		if !any {
			if rhs < -1e-9 {
				// Constraint already violated by the fixing.
				return &lp.Problem{C: p.C, A: [][]float64{make([]float64, nf)}, B: []float64{-1}}, nil
			}
			continue
		}
		p.A = append(p.A, newRow)
		p.B = append(p.B, rhs)
	}
	// 0/1 box: x_j <= 1 rows (x >= 0 is implicit in the simplex form).
	for j := 0; j < nf; j++ {
		row := make([]float64, nf)
		row[j] = 1
		p.A = append(p.A, row)
		p.B = append(p.B, 1)
	}
	return p, nil
}

// feasible checks an integral assignment against all constraints exactly.
func (m *Model) feasible(x []bool) bool {
	for r, row := range m.rows {
		s := 0.0
		for i, v := range x {
			if v {
				s += row[i]
			}
		}
		if s > m.rhs[r]+1e-7 {
			return false
		}
	}
	return true
}

// EnumerateFeasible exhaustively enumerates feasible assignments (used by the
// Opt-HowTo baseline and by tests on small models); it returns the optimum.
// It is exponential in NumVars and refuses models with more than 24
// variables.
func (m *Model) EnumerateFeasible() (*Solution, error) {
	n := len(m.names)
	if n > 24 {
		return nil, fmt.Errorf("ip: enumeration limited to 24 variables, have %d", n)
	}
	best := &Solution{Status: lp.Infeasible, Obj: math.Inf(-1)}
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		obj := 0.0
		for i := 0; i < n; i++ {
			x[i] = mask&(1<<i) != 0
			if x[i] {
				obj += m.obj[i]
			}
		}
		if obj > best.Obj && m.feasible(x) {
			best = &Solution{Status: lp.Optimal, X: append([]bool(nil), x...), Obj: obj}
		}
	}
	return best, nil
}

// String renders the model for debugging.
func (m *Model) String() string {
	s := "maximize"
	order := make([]int, len(m.names))
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, i := range order {
		s += fmt.Sprintf(" %+g*%s", m.obj[i], m.names[i])
	}
	s += "\n"
	for r, row := range m.rows {
		s += "  s.t."
		for i, c := range row {
			if c != 0 {
				s += fmt.Sprintf(" %+g*%s", c, m.names[i])
			}
		}
		s += fmt.Sprintf(" <= %g\n", m.rhs[r])
	}
	return s
}
