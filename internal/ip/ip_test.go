package ip

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"hyper/internal/lp"
	"hyper/internal/stats"
)

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: weights {2,3,4,5}, values {3,4,5,6}, cap 5.
	// Optimum: items 0 and 1 (weight 5, value 7).
	m := NewModel()
	weights := []float64{2, 3, 4, 5}
	values := []float64{3, 4, 5, 6}
	idx := make([]int, 4)
	for i := range weights {
		idx[i] = m.AddVar("x", values[i])
	}
	if err := m.AddLE(idx, weights, 5); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || math.Abs(s.Obj-7) > 1e-9 {
		t.Fatalf("knapsack: %v obj=%g sel=%v", s.Status, s.Obj, s.Selected())
	}
	if !s.X[0] || !s.X[1] || s.X[2] || s.X[3] {
		t.Errorf("selection = %v", s.X)
	}
}

func TestAtMostOneGroups(t *testing.T) {
	// Two SOS-1 groups plus a global budget of 1: pick the single best var.
	m := NewModel()
	g1 := []int{m.AddVar("a1", 2), m.AddVar("a2", 5)}
	g2 := []int{m.AddVar("b1", 4), m.AddVar("b2", 3)}
	if err := m.AddAtMostOne(g1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddAtMostOne(g2); err != nil {
		t.Fatal(err)
	}
	all := append(append([]int{}, g1...), g2...)
	ones := []float64{1, 1, 1, 1}
	if err := m.AddLE(all, ones, 1); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Obj-5) > 1e-9 || !s.X[1] {
		t.Errorf("obj=%g x=%v", s.Obj, s.X)
	}
}

func TestNegativeObjectivePrefersEmpty(t *testing.T) {
	m := NewModel()
	m.AddVar("bad", -3)
	m.AddVar("worse", -5)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obj != 0 || len(s.Selected()) != 0 {
		t.Errorf("empty selection expected, got %v obj=%g", s.Selected(), s.Obj)
	}
}

func TestInfeasibleModel(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1)
	// x >= 1 and x <= 0 simultaneously.
	if err := m.AddGE([]int{x}, []float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLE([]int{x}, []float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// Exactly two of three variables.
	m := NewModel()
	idx := []int{m.AddVar("a", 1), m.AddVar("b", 2), m.AddVar("c", 3)}
	if err := m.AddEQ(idx, []float64{1, 1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Obj-5) > 1e-9 || len(s.Selected()) != 2 {
		t.Errorf("obj=%g selected=%v", s.Obj, s.Selected())
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel()
	m.AddVar("x", 1)
	if err := m.AddLE([]int{0}, []float64{1, 2}, 1); err == nil {
		t.Error("coef/idx mismatch should fail")
	}
	if err := m.AddLE([]int{5}, []float64{1}, 1); err == nil {
		t.Error("out-of-range index should fail")
	}
	if m.NumVars() != 1 || m.VarName(0) != "x" {
		t.Error("var bookkeeping")
	}
	if m.String() == "" {
		t.Error("String should render")
	}
}

// Property: branch-and-bound equals exhaustive enumeration on random small
// models.
func TestBranchAndBoundMatchesEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(8)
		m := NewModel()
		for i := 0; i < n; i++ {
			m.AddVar("v", rng.Float64()*10-3)
		}
		// A few random <= constraints.
		rows := 1 + rng.Intn(4)
		for r := 0; r < rows; r++ {
			idx := []int{}
			coef := []float64{}
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.6 {
					idx = append(idx, i)
					coef = append(coef, rng.Float64()*3)
				}
			}
			if len(idx) == 0 {
				continue
			}
			if err := m.AddLE(idx, coef, rng.Float64()*4); err != nil {
				return false
			}
		}
		bb, err := m.Solve()
		if err != nil {
			return false
		}
		enum, err := m.EnumerateFeasible()
		if err != nil {
			return false
		}
		if bb.Status != enum.Status {
			return false
		}
		if bb.Status == lp.Optimal && math.Abs(bb.Obj-enum.Obj) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnumerationLimit(t *testing.T) {
	m := NewModel()
	for i := 0; i < 25; i++ {
		m.AddVar("v", 1)
	}
	if _, err := m.EnumerateFeasible(); err == nil {
		t.Error("enumeration beyond 24 vars should refuse")
	}
}

func TestSolveContextCancelled(t *testing.T) {
	// A model big enough to take more than one 64-node check interval.
	m := NewModel()
	n := 14
	for i := 0; i < n; i++ {
		m.AddVar(fmt.Sprintf("x%d", i), float64(1+i%3)+0.5)
	}
	for i := 0; i+1 < n; i += 2 {
		if err := m.AddAtMostOne([]int{i, i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	idx := make([]int, n)
	coef := make([]float64, n)
	for i := range idx {
		idx[i] = i
		coef[i] = float64(1 + i%4)
	}
	if err := m.AddLE(idx, coef, float64(n)/1.5); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same model still solves under a live context.
	if _, err := m.Solve(); err != nil {
		t.Fatalf("solve after cancelled attempt: %v", err)
	}
}
