package hyperql

import (
	"fmt"
	"strconv"
	"strings"

	"hyper/internal/relation"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a full HypeR query (what-if or how-to).
func Parse(src string) (Query, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().String())
	}
	return q, nil
}

// ParseWhatIf parses src and requires a what-if query.
func ParseWhatIf(src string) (*WhatIf, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	w, ok := q.(*WhatIf)
	if !ok {
		return nil, fmt.Errorf("hyperql: expected a what-if query, got a how-to query")
	}
	return w, nil
}

// ParseHowTo parses src and requires a how-to query.
func ParseHowTo(src string) (*HowTo, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	h, ok := q.(*HowTo)
	if !ok {
		return nil, fmt.Errorf("hyperql: expected a how-to query, got a what-if query")
	}
	return h, nil
}

// ParseExpr parses a standalone predicate/expression (used by tests and by
// programmatic query construction).
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().String())
	}
	return e, nil
}

func newParser(src string) (*Parser, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, src: src}, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("hyperql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().String())
	}
	return nil
}

func (p *Parser) isOp(op string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == op
}

func (p *Parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, found %q", op, p.peek().String())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %q", t.String())
	}
	p.pos++
	return t.Text, nil
}

// parseQuery dispatches to what-if or how-to based on the clause following
// the optional WHEN.
func (p *Parser) parseQuery() (Query, error) {
	use, err := p.parseUse()
	if err != nil {
		return nil, err
	}
	var when Expr
	if p.acceptKeyword("WHEN") {
		when, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	switch {
	case p.isKeyword("UPDATE"):
		return p.parseWhatIfTail(use, when)
	case p.isKeyword("HOWTOUPDATE"):
		return p.parseHowToTail(use, when)
	default:
		return nil, p.errorf("expected UPDATE or HOWTOUPDATE, found %q", p.peek().String())
	}
}

func (p *Parser) parseUse() (*UseClause, error) {
	if err := p.expectKeyword("USE"); err != nil {
		return nil, err
	}
	if p.acceptOp("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &UseClause{Select: sel}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &UseClause{Table: name}, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr := TableRef{Name: name}
		if p.acceptKeyword("AS") {
			tr.Alias, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		} else if p.peek().Kind == TokIdent {
			tr.Alias = p.next().Text
		}
		s.From = append(s.From, tr)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	if ag, ok, err := p.tryParseAggregate(); err != nil {
		return item, err
	} else if ok {
		item.Expr = ag
	} else {
		c, err := p.parseColRef()
		if err != nil {
			return item, err
		}
		item.Expr = c
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// tryParseAggregate parses AVG/SUM/COUNT '(' (expr | '*') ')' when present.
func (p *Parser) tryParseAggregate() (*Aggregate, bool, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, false, nil
	}
	var fn AggFunc
	switch t.Text {
	case "AVG":
		fn = AggAvg
	case "SUM":
		fn = AggSum
	case "COUNT":
		fn = AggCount
	default:
		return nil, false, nil
	}
	p.pos++
	if err := p.expectOp("("); err != nil {
		return nil, false, err
	}
	ag := &Aggregate{Func: fn}
	if p.acceptOp("*") {
		// COUNT(*)
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		ag.Expr = e
	}
	if err := p.expectOp(")"); err != nil {
		return nil, false, err
	}
	return ag, true, nil
}

func (p *Parser) parseColRef() (*ColRef, error) {
	time := TimeDefault
	if p.acceptKeyword("PRE") {
		time = TimePre
	} else if p.acceptKeyword("POST") {
		time = TimePost
	}
	if time != TimeDefault {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		c, err := p.parseBareColRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		c.Time = time
		return c, nil
	}
	return p.parseBareColRef()
}

func (p *Parser) parseBareColRef() (*ColRef, error) {
	a, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptOp(".") {
		b, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColRef{Table: a, Name: b}, nil
	}
	return &ColRef{Name: a}, nil
}

// Expression grammar, loosest binding first:
//
//	expr    := and { OR and }
//	and     := not { AND not }
//	not     := NOT not | cmp
//	cmp     := add [ (=|!=|<|<=|>|>=) add [ (<|<=|>|>=) add ] | [NOT] IN (...) ]
//	add     := mul { (+|-) mul }
//	mul     := unary { (*|/) unary }
//	unary   := - unary | primary
//	primary := literal | colref | PRE(colref) | POST(colref) | AGG(...) | ( expr )
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// IN / NOT IN
	neg := false
	if p.isKeyword("NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "IN" {
		p.pos += 2
		neg = true
	} else if p.acceptKeyword("IN") {
	} else {
		op, ok := p.peekCmpOp()
		if !ok {
			return l, nil
		}
		p.pos++
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		cmp := &Binary{Op: op, L: l, R: r}
		// Chained comparison: a <= x <= b desugars to (a <= x) AND (x <= b).
		if op2, ok2 := p.peekCmpOp(); ok2 {
			p.pos++
			r2, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: "AND", L: cmp, R: &Binary{Op: op2, L: r, R: r2}}, nil
		}
		return cmp, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &InList{X: l, Neg: neg}
	for {
		v, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		in.Vals = append(in.Vals, v)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) peekCmpOp() (string, bool) {
	t := p.peek()
	if t.Kind != TokOp {
		return "", false
	}
	switch t.Text {
	case "=", "!=", "<", "<=", ">", ">=":
		return t.Text, true
	}
	return "", false
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok && lit.Val.Kind().Numeric() {
			if lit.Val.Kind() == relation.KindInt {
				return &Literal{Val: relation.Int(-lit.Val.AsInt())}, nil
			}
			return &Literal{Val: relation.Float(-lit.Val.AsFloat())}, nil
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", t.Text, err)
			}
			return &Literal{Val: relation.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", t.Text, err)
		}
		return &Literal{Val: relation.Int(i)}, nil
	case TokString:
		p.pos++
		return &Literal{Val: relation.String(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.pos++
			return &Literal{Val: relation.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: relation.Bool(false)}, nil
		case "NULL":
			p.pos++
			return &Literal{Val: relation.Null}, nil
		case "PRE", "POST":
			return p.parseColRef()
		case "AVG", "SUM", "COUNT":
			ag, _, err := p.tryParseAggregate()
			return ag, err
		case "L1":
			return p.parseL1()
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		return p.parseBareColRef()
	case TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.String())
}

// parseL1 parses L1(PRE(A), POST(A)).
func (p *Parser) parseL1() (Expr, error) {
	if err := p.expectKeyword("L1"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	a, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	b, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if a.Name != b.Name {
		return nil, p.errorf("L1 operands must name the same attribute, got %s and %s", a.Name, b.Name)
	}
	return &L1Dist{Attr: a.Name}, nil
}

// parseWhatIfTail parses UPDATE...OUTPUT...FOR after USE/WHEN.
func (p *Parser) parseWhatIfTail(use *UseClause, when Expr) (*WhatIf, error) {
	q := &WhatIf{Use: use, When: when}
	for {
		u, err := p.parseUpdateSpec()
		if err != nil {
			return nil, err
		}
		q.Updates = append(q.Updates, *u)
		if p.isKeyword("AND") && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "UPDATE" {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKeyword("OUTPUT"); err != nil {
		return nil, err
	}
	ag, ok, err := p.tryParseAggregate()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, p.errorf("OUTPUT requires an aggregate (AVG/SUM/COUNT), found %q", p.peek().String())
	}
	q.Output = ag
	if p.acceptKeyword("FOR") {
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.For = f
	}
	return q, nil
}

// parseUpdateSpec parses UPDATE(B) = const | const*PRE(B) | const+PRE(B)
// (also accepting the commuted PRE(B)*const / PRE(B)+const forms).
func (p *Parser) parseUpdateSpec() (*UpdateSpec, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	attr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return classifyUpdate(attr, rhs)
}

// classifyUpdate maps the parsed RHS expression onto one of the three update
// forms of Definition 2.
func classifyUpdate(attr string, rhs Expr) (*UpdateSpec, error) {
	bad := fmt.Errorf("hyperql: UPDATE(%s) right-hand side must be <const>, <const>*PRE(%s), or <const>+PRE(%s), got %s", attr, attr, attr, rhs)
	switch x := rhs.(type) {
	case *Literal:
		return &UpdateSpec{Attr: attr, Form: UpdateSet, Const: x.Val}, nil
	case *Binary:
		var form UpdateForm
		switch x.Op {
		case "*":
			form = UpdateScale
		case "+":
			form = UpdateShift
		default:
			return nil, bad
		}
		lit, col := x.L, x.R
		if _, ok := lit.(*Literal); !ok {
			lit, col = x.R, x.L
		}
		l, ok := lit.(*Literal)
		if !ok {
			return nil, bad
		}
		c, ok := col.(*ColRef)
		if !ok || c.Time == TimePost {
			return nil, bad
		}
		if c.Name != attr {
			return nil, fmt.Errorf("hyperql: UPDATE(%s) references PRE(%s); the update function must be over the updated attribute", attr, c.Name)
		}
		return &UpdateSpec{Attr: attr, Form: form, Const: l.Val}, nil
	default:
		return nil, bad
	}
}

// parseHowToTail parses HOWTOUPDATE...LIMIT...TOMAXIMIZE/TOMINIMIZE...FOR.
func (p *Parser) parseHowToTail(use *UseClause, when Expr) (*HowTo, error) {
	if err := p.expectKeyword("HOWTOUPDATE"); err != nil {
		return nil, err
	}
	q := &HowTo{Use: use, When: when}
	for {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.Attrs = append(q.Attrs, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		for {
			spec, err := p.parseLimitSpec()
			if err != nil {
				return nil, err
			}
			q.Limits = append(q.Limits, *spec)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	switch {
	case p.acceptKeyword("TOMAXIMIZE"):
		q.Maximize = true
	case p.acceptKeyword("TOMINIMIZE"):
		q.Maximize = false
	default:
		return nil, p.errorf("expected TOMAXIMIZE or TOMINIMIZE, found %q", p.peek().String())
	}
	ag, ok, err := p.tryParseAggregate()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, p.errorf("objective requires an aggregate (AVG/SUM/COUNT), found %q", p.peek().String())
	}
	q.Obj = ag
	if p.acceptKeyword("FOR") {
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.For = f
	}
	return q, nil
}

// parseLimitSpec parses one constraint of the LIMIT clause.
func (p *Parser) parseLimitSpec() (*LimitSpec, error) {
	// L1(PRE(A), POST(A)) <= theta
	if p.isKeyword("L1") {
		l1e, err := p.parseL1()
		if err != nil {
			return nil, err
		}
		l1 := l1e.(*L1Dist)
		if !p.acceptOp("<=") && !p.acceptOp("<") {
			return nil, p.errorf("L1 constraint requires <= bound")
		}
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &LimitSpec{Kind: LimitL1, Attr: l1.Attr, Theta: v.AsFloat()}, nil
	}
	// UPDATES <= k
	if p.acceptKeyword("UPDATES") {
		if !p.acceptOp("<=") && !p.acceptOp("<") {
			return nil, p.errorf("UPDATES constraint requires <= bound")
		}
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &LimitSpec{Kind: LimitBudget, K: int(v.AsInt())}, nil
	}
	// lo <= POST(A) [<= hi]
	if p.peek().Kind == TokNumber || (p.isOp("-") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokNumber) {
		lo, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		op1 := p.peek().Text
		if !p.acceptOp("<=") && !p.acceptOp("<") {
			return nil, p.errorf("expected <= after range lower bound, found %q", op1)
		}
		attr, err := p.parsePostAttr()
		if err != nil {
			return nil, err
		}
		spec := &LimitSpec{Kind: LimitRange, Attr: attr, Lo: lo, Hi: relation.Null}
		if p.acceptOp("<=") || p.acceptOp("<") {
			hi, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			spec.Hi = hi
		}
		return spec, nil
	}
	// POST(A) <= hi | POST(A) >= lo | POST(A) IN (...)
	attr, err := p.parsePostAttr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptOp("<="), p.acceptOp("<"):
		hi, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &LimitSpec{Kind: LimitRange, Attr: attr, Lo: relation.Null, Hi: hi}, nil
	case p.acceptOp(">="), p.acceptOp(">"):
		lo, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &LimitSpec{Kind: LimitRange, Attr: attr, Lo: lo, Hi: relation.Null}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		spec := &LimitSpec{Kind: LimitIn, Attr: attr}
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			spec.Vals = append(spec.Vals, v)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return spec, nil
	default:
		return nil, p.errorf("expected <=, >=, or IN in LIMIT constraint, found %q", p.peek().String())
	}
}

// parsePostAttr parses POST(A) (or a bare attribute, treated as POST).
func (p *Parser) parsePostAttr() (string, error) {
	c, err := p.parseColRef()
	if err != nil {
		return "", err
	}
	if c.Time == TimePre {
		return "", p.errorf("LIMIT constrains post-update values; use POST(%s)", c.Name)
	}
	return c.Name, nil
}

// parseLiteralValue parses a literal (with optional leading minus).
func (p *Parser) parseLiteralValue() (relation.Value, error) {
	e, err := p.parseUnary()
	if err != nil {
		return relation.Null, err
	}
	lit, ok := e.(*Literal)
	if !ok {
		return relation.Null, p.errorf("expected a literal value, found %s", e)
	}
	return lit.Val, nil
}
