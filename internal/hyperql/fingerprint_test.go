package hyperql

import (
	"regexp"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// TestShapeStripsLiterals pins the normalization contract: two queries that
// differ only in constants share a Shape (and therefore a Fingerprint),
// and no literal survives into the rendered shape.
func TestShapeStripsLiterals(t *testing.T) {
	a := mustParse(t, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	b := mustParse(t, `USE German UPDATE(Status) = 4 OUTPUT COUNT(Credit = 0)`)
	if Shape(a) != Shape(b) {
		t.Errorf("shapes differ:\n  %s\n  %s", Shape(a), Shape(b))
	}
	if Fingerprint("sig", a) != Fingerprint("sig", b) {
		t.Error("fingerprints differ for literal-only variation")
	}
	if s := Shape(a); strings.ContainsAny(s, "0123456789") {
		t.Errorf("shape leaks literals: %s", s)
	}
	if !strings.Contains(Shape(a), "?") {
		t.Errorf("shape has no placeholders: %s", Shape(a))
	}
}

// TestShapeIsStructural pins that structural differences — an extra clause,
// a different attribute, a different IN-list arity — change the shape.
func TestShapeIsStructural(t *testing.T) {
	base := `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`
	variants := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		`USE German UPDATE(Savings) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German WHEN Age IN (1, 2) UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German WHEN Age IN (1, 2, 3) UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Status) = 3 OUTPUT AVG(POST(Credit))`,
	}
	q0 := mustParse(t, base)
	seen := map[string]string{Shape(q0): base}
	for _, v := range variants {
		s := Shape(mustParse(t, v))
		if prev, dup := seen[s]; dup {
			t.Errorf("shape collision between %q and %q: %s", prev, v, s)
		}
		seen[s] = v
	}
	// IN-list arity is structural, but the values inside are not.
	x := mustParse(t, `USE German WHEN Age IN (1, 2) UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	y := mustParse(t, `USE German WHEN Age IN (7, 9) UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	if Shape(x) != Shape(y) {
		t.Error("IN-list values should not be structural")
	}
}

// TestFingerprintSchemaAndKind pins the other two fingerprint components:
// the schema signature passed as extra, and the query kind (a what-if and a
// how-to can never share a fingerprint, whatever their text).
func TestFingerprintSchemaAndKind(t *testing.T) {
	wi := mustParse(t, `USE T UPDATE(A) = 3 OUTPUT COUNT(Y = 1)`)
	ht := mustParse(t, `USE T HOWTOUPDATE A LIMIT POST(A) >= 3 AND POST(A) <= 9 TOMINIMIZE SUM(POST(Y))`)

	if Fingerprint("schema1", wi) == Fingerprint("schema2", wi) {
		t.Error("schema signature should change the fingerprint")
	}
	if Fingerprint("s", wi) == Fingerprint("s", ht) {
		t.Error("what-if and how-to should never collide")
	}

	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, q := range []Query{wi, ht} {
		if fp := Fingerprint("s", q); !hex16.MatchString(fp) {
			t.Errorf("fingerprint %q is not 16 hex digits", fp)
		}
	}

	// How-to shapes normalize their limits too.
	if s := Shape(ht); strings.ContainsAny(s, "39") {
		t.Errorf("how-to shape leaks limit literals: %s", s)
	}
}

// TestFingerprintDeterministic pins that fingerprints are stable across
// repeated parses of the same text (the property the usage table and a
// future plan cache rely on).
func TestFingerprintDeterministic(t *testing.T) {
	const src = `USE German WHEN Age IN (1, 2) UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`
	fp := Fingerprint("sig", mustParse(t, src))
	for i := 0; i < 3; i++ {
		if got := Fingerprint("sig", mustParse(t, src)); got != fp {
			t.Fatalf("fingerprint changed across parses: %s vs %s", got, fp)
		}
	}
}
