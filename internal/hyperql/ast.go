package hyperql

import (
	"fmt"
	"strings"

	"hyper/internal/relation"
)

// Temporal marks whether a column reference reads the pre-update value (the
// database instance D) or the post-update value (the possible world I). The
// default resolves per clause: WHEN and USE read Pre; OUTPUT and the
// objective read Post; FOR defaults to Pre per the paper.
type Temporal int

// Temporal markers.
const (
	TimeDefault Temporal = iota
	TimePre
	TimePost
)

func (t Temporal) String() string {
	switch t {
	case TimePre:
		return "PRE"
	case TimePost:
		return "POST"
	default:
		return ""
	}
}

// Expr is any expression node.
type Expr interface {
	String() string
}

// ColRef references a column, optionally qualified by a table alias and
// wrapped in PRE()/POST().
type ColRef struct {
	Table string
	Name  string
	Time  Temporal
}

func (c *ColRef) String() string {
	n := c.Name
	if c.Table != "" {
		n = c.Table + "." + n
	}
	if c.Time != TimeDefault {
		return fmt.Sprintf("%s(%s)", c.Time, n)
	}
	return n
}

// Literal holds a constant value.
type Literal struct{ Val relation.Value }

func (l *Literal) String() string {
	if l.Val.Kind() == relation.KindString {
		return "'" + strings.ReplaceAll(l.Val.AsString(), "'", "''") + "'"
	}
	return l.Val.String()
}

// Binary is a binary operation. Op is one of: OR AND = != < <= > >= + - * /.
type Binary struct {
	Op   string
	L, R Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.X)
	}
	return fmt.Sprintf("(%s%s)", u.Op, u.X)
}

// InList is x IN (v1, v2, ...) or x NOT IN (...).
type InList struct {
	X    Expr
	Vals []Expr
	Neg  bool
}

func (i *InList) String() string {
	parts := make([]string, len(i.Vals))
	for k, v := range i.Vals {
		parts[k] = v.String()
	}
	op := "IN"
	if i.Neg {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", i.X, op, strings.Join(parts, ", "))
}

// L1Dist is the L1(PRE(A), POST(A)) distance operator of the LIMIT clause.
type L1Dist struct {
	Attr string
}

func (l *L1Dist) String() string {
	return fmt.Sprintf("L1(PRE(%s), POST(%s))", l.Attr, l.Attr)
}

// AggFunc names an aggregate.
type AggFunc string

// Supported aggregates (the decomposable functions of Definition 6).
const (
	AggAvg   AggFunc = "AVG"
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
)

// Valid reports whether the aggregate is supported.
func (a AggFunc) Valid() bool { return a == AggAvg || a == AggSum || a == AggCount }

// Aggregate is AGG(expr) in a SELECT item or OUTPUT/objective clause. For
// COUNT, Expr may be nil (COUNT(*)) or a Boolean condition
// (COUNT(Credit = 'Good') counts tuples satisfying the condition, the form
// used by the paper's Figure 7 queries).
type Aggregate struct {
	Func AggFunc
	Expr Expr // nil means *
}

func (a *Aggregate) String() string {
	if a.Expr == nil {
		return string(a.Func) + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Expr)
}

// SelectItem is one projection of the USE sub-select.
type SelectItem struct {
	Expr  Expr // ColRef or *Aggregate
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// TableRef is FROM table [AS alias].
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// SelectStmt is the SQL query allowed inside USE: select with optional
// joins (via WHERE equality), filtering, and group-by with aggregates.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr
	GroupBy []*ColRef
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	return b.String()
}

// UseClause is either a bare table name or a sub-select defining the
// relevant view.
type UseClause struct {
	Table  string      // non-empty for USE <table>
	Select *SelectStmt // non-nil for USE ( SELECT ... )
}

func (u *UseClause) String() string {
	if u.Select != nil {
		return "USE (" + u.Select.String() + ")"
	}
	return "USE " + u.Table
}

// UpdateForm classifies the hypothetical update function f of Definition 2.
type UpdateForm int

// The three forms the paper supports: f(b)=const, f(b)=const*b, f(b)=const+b.
const (
	UpdateSet UpdateForm = iota
	UpdateScale
	UpdateShift
)

func (f UpdateForm) String() string {
	switch f {
	case UpdateScale:
		return "scale"
	case UpdateShift:
		return "shift"
	default:
		return "set"
	}
}

// UpdateSpec is one UPDATE(B) = f(PRE(B)) assignment.
type UpdateSpec struct {
	Attr  string
	Form  UpdateForm
	Const relation.Value
}

func (u UpdateSpec) String() string {
	switch u.Form {
	case UpdateScale:
		return fmt.Sprintf("UPDATE(%s) = %s * PRE(%s)", u.Attr, u.Const, u.Attr)
	case UpdateShift:
		return fmt.Sprintf("UPDATE(%s) = %s + PRE(%s)", u.Attr, u.Const, u.Attr)
	default:
		lit := &Literal{Val: u.Const}
		return fmt.Sprintf("UPDATE(%s) = %s", u.Attr, lit)
	}
}

// Apply computes f(v) for the update.
func (u UpdateSpec) Apply(v relation.Value) relation.Value {
	switch u.Form {
	case UpdateScale:
		return v.Mul(u.Const)
	case UpdateShift:
		return v.Add(u.Const)
	default:
		return u.Const
	}
}

// WhatIf is a parsed what-if query (Section 3.1).
type WhatIf struct {
	Use     *UseClause
	When    Expr // nil means S = R
	Updates []UpdateSpec
	Output  *Aggregate
	For     Expr // nil means all tuples
}

func (q *WhatIf) String() string {
	var b strings.Builder
	b.WriteString(q.Use.String())
	if q.When != nil {
		b.WriteString(" WHEN ")
		b.WriteString(q.When.String())
	}
	for i, u := range q.Updates {
		if i == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(u.String())
	}
	b.WriteString(" OUTPUT ")
	b.WriteString(q.Output.String())
	if q.For != nil {
		b.WriteString(" FOR ")
		b.WriteString(q.For.String())
	}
	return b.String()
}

// LimitKind classifies one LIMIT constraint.
type LimitKind int

// Constraint kinds of the LIMIT operator (Section 4.1).
const (
	LimitRange  LimitKind = iota // lo <= POST(A) <= hi (either side optional)
	LimitL1                      // L1(PRE(A), POST(A)) <= theta
	LimitIn                      // POST(A) IN (v1, ...)
	LimitBudget                  // UPDATES <= k (at most k attributes change)
)

// LimitSpec is one constraint of the LIMIT clause.
type LimitSpec struct {
	Kind   LimitKind
	Attr   string           // for Range/L1/In
	Lo, Hi relation.Value   // for Range (Null means unbounded)
	Theta  float64          // for L1
	Vals   []relation.Value // for In
	K      int              // for Budget
}

func (l LimitSpec) String() string {
	switch l.Kind {
	case LimitL1:
		return fmt.Sprintf("L1(PRE(%s), POST(%s)) <= %g", l.Attr, l.Attr, l.Theta)
	case LimitIn:
		parts := make([]string, len(l.Vals))
		for i, v := range l.Vals {
			parts[i] = (&Literal{Val: v}).String()
		}
		return fmt.Sprintf("POST(%s) IN (%s)", l.Attr, strings.Join(parts, ", "))
	case LimitBudget:
		return fmt.Sprintf("UPDATES <= %d", l.K)
	default:
		switch {
		case l.Lo.IsNull():
			return fmt.Sprintf("POST(%s) <= %s", l.Attr, l.Hi)
		case l.Hi.IsNull():
			return fmt.Sprintf("%s <= POST(%s)", l.Lo, l.Attr)
		default:
			return fmt.Sprintf("%s <= POST(%s) <= %s", l.Lo, l.Attr, l.Hi)
		}
	}
}

// HowTo is a parsed how-to query (Section 4.1).
type HowTo struct {
	Use      *UseClause
	When     Expr
	Attrs    []string // HOWTOUPDATE attributes
	Limits   []LimitSpec
	Maximize bool
	Obj      *Aggregate
	For      Expr
}

func (q *HowTo) String() string {
	var b strings.Builder
	b.WriteString(q.Use.String())
	if q.When != nil {
		b.WriteString(" WHEN ")
		b.WriteString(q.When.String())
	}
	b.WriteString(" HOWTOUPDATE ")
	b.WriteString(strings.Join(q.Attrs, ", "))
	if len(q.Limits) > 0 {
		b.WriteString(" LIMIT ")
		for i, l := range q.Limits {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(l.String())
		}
	}
	if q.Maximize {
		b.WriteString(" TOMAXIMIZE ")
	} else {
		b.WriteString(" TOMINIMIZE ")
	}
	b.WriteString(q.Obj.String())
	if q.For != nil {
		b.WriteString(" FOR ")
		b.WriteString(q.For.String())
	}
	return b.String()
}

// Query is either a *WhatIf or a *HowTo.
type Query interface {
	String() string
	isQuery()
}

func (*WhatIf) isQuery() {}
func (*HowTo) isQuery()  {}

// Walk visits e and all sub-expressions in depth-first order. The visitor
// returns false to stop descending.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *Binary:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Unary:
		Walk(x.X, visit)
	case *InList:
		Walk(x.X, visit)
		for _, v := range x.Vals {
			Walk(v, visit)
		}
	case *Aggregate:
		Walk(x.Expr, visit)
	}
}

// ColRefs returns every column reference in e.
func ColRefs(e Expr) []*ColRef {
	var out []*ColRef
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// HasPost reports whether e references any POST() value.
func HasPost(e Expr) bool {
	for _, c := range ColRefs(e) {
		if c.Time == TimePost {
			return true
		}
	}
	return false
}
