package hyperql

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Shape renders the normalized structural form of a parsed query: the
// canonical clause layout with every literal constant replaced by '?'
// (prepared-statement style — an IN list keeps one '?' per value, so list
// arity stays structural, because arity drives the DNF expansion a planner
// would care about). Two queries share a Shape exactly when they differ only
// in constants, which is the identity a plan cache can key artifacts by and
// the identity the usage table aggregates cost vectors under.
func Shape(q Query) string {
	var b strings.Builder
	switch x := q.(type) {
	case *WhatIf:
		shapeUse(&b, x.Use)
		if x.When != nil {
			b.WriteString(" WHEN ")
			shapeExpr(&b, x.When)
		}
		for i, u := range x.Updates {
			if i == 0 {
				b.WriteString(" ")
			} else {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "UPDATE(%s) %s ?", u.Attr, u.Form)
		}
		b.WriteString(" OUTPUT ")
		shapeExpr(&b, x.Output)
		if x.For != nil {
			b.WriteString(" FOR ")
			shapeExpr(&b, x.For)
		}
	case *HowTo:
		shapeUse(&b, x.Use)
		if x.When != nil {
			b.WriteString(" WHEN ")
			shapeExpr(&b, x.When)
		}
		b.WriteString(" HOWTOUPDATE ")
		b.WriteString(strings.Join(x.Attrs, ", "))
		for i, l := range x.Limits {
			if i == 0 {
				b.WriteString(" LIMIT ")
			} else {
				b.WriteString(" AND ")
			}
			shapeLimit(&b, l)
		}
		if x.Maximize {
			b.WriteString(" TOMAXIMIZE ")
		} else {
			b.WriteString(" TOMINIMIZE ")
		}
		shapeExpr(&b, x.Obj)
		if x.For != nil {
			b.WriteString(" FOR ")
			shapeExpr(&b, x.For)
		}
	default:
		fmt.Fprintf(&b, "query(%T)", q)
	}
	return b.String()
}

// Fingerprint hashes extra (the serving layer passes the session-schema
// component) together with the query kind and Shape into the 16-hex-digit
// shape fingerprint the usage table and a future plan cache key by.
func Fingerprint(extra string, q Query) string {
	h := fnv.New64a()
	h.Write([]byte(extra))
	h.Write([]byte{0})
	switch q.(type) {
	case *WhatIf:
		h.Write([]byte("whatif"))
	case *HowTo:
		h.Write([]byte("howto"))
	}
	h.Write([]byte{0})
	h.Write([]byte(Shape(q)))
	return fmt.Sprintf("%016x", h.Sum64())
}

func shapeUse(b *strings.Builder, u *UseClause) {
	if u == nil {
		b.WriteString("USE ?")
		return
	}
	if u.Select == nil {
		b.WriteString("USE " + u.Table)
		return
	}
	s := u.Select
	b.WriteString("USE (SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		shapeExpr(b, it.Expr)
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		shapeExpr(b, s.Where)
	}
	for i, g := range s.GroupBy {
		if i == 0 {
			b.WriteString(" GROUP BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(g.String())
	}
	b.WriteString(")")
}

// shapeExpr mirrors the Expr String() renderings with every Literal as '?'.
// SelectStmt internals and list values are traversed here explicitly — Walk
// does not descend into them.
func shapeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("*")
	case *Literal:
		b.WriteString("?")
	case *ColRef:
		b.WriteString(x.String())
	case *Binary:
		b.WriteString("(")
		shapeExpr(b, x.L)
		b.WriteString(" " + x.Op + " ")
		shapeExpr(b, x.R)
		b.WriteString(")")
	case *Unary:
		if x.Op == "NOT" {
			b.WriteString("(NOT ")
			shapeExpr(b, x.X)
			b.WriteString(")")
		} else {
			b.WriteString("(" + x.Op)
			shapeExpr(b, x.X)
			b.WriteString(")")
		}
	case *InList:
		b.WriteString("(")
		shapeExpr(b, x.X)
		if x.Neg {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		for i := range x.Vals {
			if i > 0 {
				b.WriteString(", ")
			}
			shapeExpr(b, x.Vals[i])
		}
		b.WriteString("))")
	case *Aggregate:
		b.WriteString(string(x.Func) + "(")
		shapeExpr(b, x.Expr)
		b.WriteString(")")
	case *L1Dist:
		b.WriteString(x.String())
	default:
		b.WriteString(fmt.Sprintf("expr(%T)", e))
	}
}

func shapeLimit(b *strings.Builder, l LimitSpec) {
	switch l.Kind {
	case LimitL1:
		fmt.Fprintf(b, "L1(PRE(%s), POST(%s)) <= ?", l.Attr, l.Attr)
	case LimitIn:
		fmt.Fprintf(b, "POST(%s) IN (%s)", l.Attr,
			strings.TrimSuffix(strings.Repeat("?, ", len(l.Vals)), ", "))
	case LimitBudget:
		b.WriteString("UPDATES <= ?")
	default:
		switch {
		case l.Lo.IsNull():
			fmt.Fprintf(b, "POST(%s) <= ?", l.Attr)
		case l.Hi.IsNull():
			fmt.Fprintf(b, "? <= POST(%s)", l.Attr)
		default:
			fmt.Fprintf(b, "? <= POST(%s) <= ?", l.Attr)
		}
	}
}
