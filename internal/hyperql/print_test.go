package hyperql

import (
	"strings"
	"testing"

	"hyper/internal/relation"
)

func TestLimitSpecString(t *testing.T) {
	cases := []struct {
		spec LimitSpec
		want string
	}{
		{LimitSpec{Kind: LimitRange, Attr: "P", Lo: relation.Int(1), Hi: relation.Int(9)}, "1 <= POST(P) <= 9"},
		{LimitSpec{Kind: LimitRange, Attr: "P", Lo: relation.Null, Hi: relation.Int(9)}, "POST(P) <= 9"},
		{LimitSpec{Kind: LimitRange, Attr: "P", Lo: relation.Int(1), Hi: relation.Null}, "1 <= POST(P)"},
		{LimitSpec{Kind: LimitL1, Attr: "P", Theta: 40}, "L1(PRE(P), POST(P)) <= 40"},
		{LimitSpec{Kind: LimitIn, Attr: "C", Vals: []relation.Value{relation.String("a"), relation.Int(2)}}, "POST(C) IN ('a', 2)"},
		{LimitSpec{Kind: LimitBudget, K: 3}, "UPDATES <= 3"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Errorf("LimitSpec.String() = %q, want %q", got, c.want)
		}
	}
}

func TestTemporalAndFormStrings(t *testing.T) {
	if TimePre.String() != "PRE" || TimePost.String() != "POST" || TimeDefault.String() != "" {
		t.Error("Temporal strings")
	}
	if UpdateSet.String() != "set" || UpdateScale.String() != "scale" || UpdateShift.String() != "shift" {
		t.Error("UpdateForm strings")
	}
	if !AggAvg.Valid() || AggFunc("MEDIAN").Valid() {
		t.Error("AggFunc.Valid")
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct{ src, want string }{
		{`NOT a`, "(NOT a)"},
		{`-a`, "(-a)"},
		{`a NOT IN (1)`, "(a NOT IN (1))"},
		{`'it''s'`, "'it''s'"},
		{`T.Col`, "T.Col"},
		{`PRE(a)`, "PRE(a)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if e.String() != c.want {
			t.Errorf("String(%q) = %q, want %q", c.src, e.String(), c.want)
		}
	}
}

func TestHowToStringContainsAllClauses(t *testing.T) {
	q, err := ParseHowTo(`
USE (SELECT K, AVG(V) AS M FROM T GROUP BY K)
WHEN K = 1
HOWTOUPDATE A, B
LIMIT 0 <= POST(A) <= 5 AND UPDATES <= 1
TOMINIMIZE SUM(POST(M))
FOR PRE(K) > 0`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"USE (SELECT", "WHEN", "HOWTOUPDATE A, B", "LIMIT", "UPDATES <= 1", "TOMINIMIZE", "FOR"} {
		if !strings.Contains(s, want) {
			t.Errorf("HowTo.String() missing %q: %s", want, s)
		}
	}
}

func TestSelectItemAndTableRefStrings(t *testing.T) {
	item := SelectItem{Expr: &Aggregate{Func: AggCount}, Alias: "N"}
	if item.String() != "COUNT(*) AS N" {
		t.Errorf("SelectItem = %q", item.String())
	}
	tr := TableRef{Name: "T", Alias: "X"}
	if tr.String() != "T AS X" {
		t.Errorf("TableRef = %q", tr.String())
	}
	if (TableRef{Name: "T"}).String() != "T" {
		t.Error("bare TableRef")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: TokEOF}).String() != "<eof>" {
		t.Error("EOF token string")
	}
	if (Token{Kind: TokString, Text: "x"}).String() != `"x"` {
		t.Error("string token string")
	}
}
