package hyperql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer tokenizes HypeRQL source text. Identifiers may be quoted with double
// quotes; string literals use single quotes with ” as the escape.
type Lexer struct {
	src []rune
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: []rune(src)} }

// Tokens lexes the whole input and returns an error on the first invalid
// token.
func (l *Lexer) Tokens() ([]Token, error) {
	var out []Token
	for {
		t := l.Next()
		if t.Kind == TokError {
			return nil, fmt.Errorf("hyperql: lex error at offset %d: %s", t.Pos, t.Text)
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(c) || c == '_':
		return l.lexWord(start)
	case unicode.IsDigit(c):
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '"':
		return l.lexQuotedIdent(start)
	}
	// Operators.
	two := ""
	if l.pos+1 < len(l.src) {
		two = string(l.src[l.pos : l.pos+2])
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		if two == "<>" {
			two = "!="
		}
		return Token{Kind: TokOp, Text: two, Pos: start}
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}
	}
	return Token{Kind: TokError, Text: fmt.Sprintf("unexpected character %q", string(c)), Pos: start}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsSpace(c) {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		// /* block comments */
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
			continue
		}
		return
	}
}

func (l *Lexer) lexWord(start int) Token {
	for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
		l.pos++
	}
	word := string(l.src[start:l.pos])
	if IsKeyword(strings.ToUpper(word)) {
		return Token{Kind: TokKeyword, Text: strings.ToUpper(word), Pos: start}
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}
}

func (l *Lexer) lexNumber(start int) Token {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]) {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			nxt := l.src[l.pos+1]
			if unicode.IsDigit(nxt) {
				l.pos += 2
				continue
			}
			if (nxt == '+' || nxt == '-') && l.pos+2 < len(l.src) && unicode.IsDigit(l.src[l.pos+2]) {
				l.pos += 3
				continue
			}
		}
		break
	}
	return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Pos: start}
}

func (l *Lexer) lexString(start int) Token {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteRune('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}
		}
		b.WriteRune(c)
		l.pos++
	}
	return Token{Kind: TokError, Text: "unterminated string literal", Pos: start}
}

func (l *Lexer) lexQuotedIdent(start int) Token {
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return Token{Kind: TokIdent, Text: b.String(), Pos: start}
		}
		b.WriteRune(c)
		l.pos++
	}
	return Token{Kind: TokError, Text: "unterminated quoted identifier", Pos: start}
}
