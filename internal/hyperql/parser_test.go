package hyperql

import (
	"strings"
	"testing"
	"testing/quick"

	"hyper/internal/relation"
)

func TestLexerBasics(t *testing.T) {
	toks, err := NewLexer(`USE Tbl WHEN a = 'it''s' AND b >= 2.5 -- comment
UPDATE(Price) = 1.1 * PRE(Price) /* block */ OUTPUT COUNT(*)`).Tokens()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "USE" || kinds[0] != TokKeyword {
		t.Errorf("first token = %v", toks[0])
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string literal not lexed")
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, "a @ b"} {
		if _, err := NewLexer(bad).Tokens(); err == nil {
			t.Errorf("lexing %q should fail", bad)
		}
	}
}

func TestLexerCaseInsensitiveKeywords(t *testing.T) {
	toks, err := NewLexer("use Select fOr").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"USE", "SELECT", "FOR"} {
		if toks[i].Kind != TokKeyword || toks[i].Text != want {
			t.Errorf("token %d = %v", i, toks[i])
		}
	}
}

func TestParseWhatIfFull(t *testing.T) {
	q, err := ParseWhatIf(`
USE (SELECT T1.PID, T1.Price, AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Price)
WHEN Brand = 'Asus'
UPDATE(Price) = 1.1 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Category) = 'Laptop' AND POST(Senti) > 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Use.Select == nil || len(q.Use.Select.Items) != 3 {
		t.Fatalf("use = %v", q.Use)
	}
	if len(q.Use.Select.GroupBy) != 2 {
		t.Errorf("group by = %v", q.Use.Select.GroupBy)
	}
	if q.When == nil {
		t.Error("WHEN missing")
	}
	if len(q.Updates) != 1 || q.Updates[0].Form != UpdateScale || q.Updates[0].Const.AsFloat() != 1.1 {
		t.Errorf("updates = %v", q.Updates)
	}
	if q.Output.Func != AggAvg {
		t.Errorf("output = %v", q.Output)
	}
	if !HasPost(q.For) {
		t.Error("FOR should contain a POST reference")
	}
}

func TestParseUpdateForms(t *testing.T) {
	cases := []struct {
		src  string
		form UpdateForm
		c    float64
	}{
		{`UPDATE(P) = 500`, UpdateSet, 500},
		{`UPDATE(P) = 1.1 * PRE(P)`, UpdateScale, 1.1},
		{`UPDATE(P) = PRE(P) * 2`, UpdateScale, 2},
		{`UPDATE(P) = 100 + PRE(P)`, UpdateShift, 100},
		{`UPDATE(P) = PRE(P) + 100`, UpdateShift, 100},
		{`UPDATE(P) = -50 + PRE(P)`, UpdateShift, -50},
	}
	for _, c := range cases {
		q, err := ParseWhatIf("USE T " + c.src + " OUTPUT COUNT(*)")
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		u := q.Updates[0]
		if u.Form != c.form || u.Const.AsFloat() != c.c {
			t.Errorf("%s parsed to %v", c.src, u)
		}
	}
	// Invalid forms.
	for _, bad := range []string{
		`UPDATE(P) = PRE(Q) * 2`,      // different attribute
		`UPDATE(P) = POST(P) * 2`,     // POST in update
		`UPDATE(P) = PRE(P) * PRE(P)`, // no constant
	} {
		if _, err := ParseWhatIf("USE T " + bad + " OUTPUT COUNT(*)"); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParseMultiUpdate(t *testing.T) {
	q, err := ParseWhatIf(`USE T UPDATE(A) = 1 AND UPDATE(B) = 'Red' OUTPUT COUNT(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Updates) != 2 || q.Updates[1].Const.AsString() != "Red" {
		t.Errorf("updates = %v", q.Updates)
	}
}

func TestParseUpdateApply(t *testing.T) {
	set := UpdateSpec{Attr: "P", Form: UpdateSet, Const: relation.Int(5)}
	if set.Apply(relation.Int(1)).AsInt() != 5 {
		t.Error("set")
	}
	scale := UpdateSpec{Attr: "P", Form: UpdateScale, Const: relation.Float(2)}
	if scale.Apply(relation.Float(3)).AsFloat() != 6 {
		t.Error("scale")
	}
	shift := UpdateSpec{Attr: "P", Form: UpdateShift, Const: relation.Int(10)}
	if shift.Apply(relation.Int(3)).AsInt() != 13 {
		t.Error("shift")
	}
}

func TestParseHowToFull(t *testing.T) {
	q, err := ParseHowTo(`
USE Tbl
WHEN Brand = 'Asus'
HOWTOUPDATE Price, Color
LIMIT 500 <= POST(Price) <= 800 AND L1(PRE(Price), POST(Price)) <= 400
  AND POST(Color) IN ('Red', 'Blue') AND UPDATES <= 2
TOMAXIMIZE AVG(POST(Rtng))
FOR Brand = 'Asus'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Attrs) != 2 || q.Attrs[1] != "Color" {
		t.Errorf("attrs = %v", q.Attrs)
	}
	if len(q.Limits) != 4 {
		t.Fatalf("limits = %v", q.Limits)
	}
	if q.Limits[0].Kind != LimitRange || q.Limits[0].Lo.AsFloat() != 500 || q.Limits[0].Hi.AsFloat() != 800 {
		t.Errorf("range = %v", q.Limits[0])
	}
	if q.Limits[1].Kind != LimitL1 || q.Limits[1].Theta != 400 {
		t.Errorf("l1 = %v", q.Limits[1])
	}
	if q.Limits[2].Kind != LimitIn || len(q.Limits[2].Vals) != 2 {
		t.Errorf("in = %v", q.Limits[2])
	}
	if q.Limits[3].Kind != LimitBudget || q.Limits[3].K != 2 {
		t.Errorf("budget = %v", q.Limits[3])
	}
	if !q.Maximize {
		t.Error("maximize")
	}
}

func TestParseHowToMinimizeAndSingleBounds(t *testing.T) {
	q, err := ParseHowTo(`USE T HOWTOUPDATE A LIMIT POST(A) >= 3 AND POST(A) <= 9 TOMINIMIZE SUM(POST(Y))`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Maximize {
		t.Error("should be minimize")
	}
	if q.Limits[0].Lo.AsFloat() != 3 || !q.Limits[0].Hi.IsNull() {
		t.Errorf("lower bound = %v", q.Limits[0])
	}
	if !q.Limits[1].Lo.IsNull() || q.Limits[1].Hi.AsFloat() != 9 {
		t.Errorf("upper bound = %v", q.Limits[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`USE`,
		`USE T`,
		`USE T OUTPUT COUNT(*)`,            // no UPDATE
		`USE T UPDATE(P) = 5`,              // no OUTPUT
		`USE T UPDATE(P) = 5 OUTPUT P`,     // output not aggregate
		`USE T HOWTOUPDATE P TOMAXIMIZE P`, // objective not aggregate
		`USE T HOWTOUPDATE P LIMIT PRE(P) <= 5 TOMAXIMIZE AVG(POST(Y))`, // PRE in LIMIT
		`USE (SELECT FROM T) UPDATE(P) = 5 OUTPUT COUNT(*)`,
		`USE T UPDATE(P) = 5 OUTPUT COUNT(*) FOR`,
		`USE T UPDATE(P) = 5 OUTPUT COUNT(*) trailing`,
		`USE T HOWTOUPDATE P LIMIT L1(PRE(A), POST(B)) <= 4 TOMAXIMIZE AVG(POST(Y))`, // L1 attr mismatch
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`a + b * c = d OR NOT e AND f < 2`)
	if err != nil {
		t.Fatal(err)
	}
	// OR binds loosest: ((a + (b*c)) = d) OR ((NOT e) AND (f < 2))
	or, ok := e.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", e)
	}
	if !strings.Contains(or.String(), "(b * c)") {
		t.Errorf("mul precedence: %s", or)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %v", or.R)
	}
}

func TestParseChainedComparison(t *testing.T) {
	e, err := ParseExpr(`1 <= x <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	want := "((1 <= x) AND (x <= 5))"
	if e.String() != want {
		t.Errorf("chained = %s, want %s", e, want)
	}
}

func TestParseInList(t *testing.T) {
	e, err := ParseExpr(`x IN (1, 2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	in, ok := e.(*InList)
	if !ok || len(in.Vals) != 3 || in.Neg {
		t.Errorf("in = %v", e)
	}
	e2, err := ParseExpr(`x NOT IN ('a')`)
	if err != nil {
		t.Fatal(err)
	}
	if in2 := e2.(*InList); !in2.Neg {
		t.Error("NOT IN lost negation")
	}
}

func TestWhatIfStringFixedPoint(t *testing.T) {
	srcs := []string{
		`USE T UPDATE(P) = 5 OUTPUT COUNT(*)`,
		`USE T WHEN a = 1 UPDATE(P) = 1.5 * PRE(P) OUTPUT SUM(POST(Y)) FOR PRE(b) IN (1, 2)`,
		`USE T HOWTOUPDATE A, B LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Y = 1)`,
		`USE (SELECT K, AVG(V) AS M FROM T GROUP BY K) UPDATE(K) = 2 OUTPUT AVG(POST(M))`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Errorf("reparse %q: %v", canon, err)
			continue
		}
		if q2.String() != canon {
			t.Errorf("not a fixed point:\n  %s\n  %s", canon, q2.String())
		}
	}
}

// Property: any generated small what-if query's canonical form is a parse
// fixed point.
func TestCanonicalFixedPointProperty(t *testing.T) {
	forms := []string{"= 3", "= 1.5 * PRE(P)", "= 2 + PRE(P)"}
	aggs := []string{"COUNT(*)", "AVG(POST(Y))", "SUM(POST(Y))", "COUNT(Y = 1)"}
	f := func(fi, ai uint8, hasWhen, hasFor bool) bool {
		src := "USE T "
		if hasWhen {
			src += "WHEN a = 1 "
		}
		src += "UPDATE(P) " + forms[int(fi)%len(forms)] + " OUTPUT " + aggs[int(ai)%len(aggs)]
		if hasFor {
			src += " FOR PRE(b) > 0"
		}
		q, err := Parse(src)
		if err != nil {
			return false
		}
		canon := q.String()
		q2, err := Parse(canon)
		return err == nil && q2.String() == canon
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWalkAndColRefs(t *testing.T) {
	e, err := ParseExpr(`PRE(a) = 1 AND (POST(b) > 2 OR c IN (1, d))`)
	if err != nil {
		t.Fatal(err)
	}
	refs := ColRefs(e)
	if len(refs) != 4 {
		t.Fatalf("refs = %v", refs)
	}
	times := map[string]Temporal{}
	for _, r := range refs {
		times[r.Name] = r.Time
	}
	if times["a"] != TimePre || times["b"] != TimePost || times["c"] != TimeDefault {
		t.Errorf("times = %v", times)
	}
	count := 0
	Walk(e, func(Expr) bool { count++; return true })
	if count < 8 {
		t.Errorf("walk visited %d nodes", count)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	q, err := ParseWhatIf(`USE "Weird Table" UPDATE("Odd Col") = 5 OUTPUT COUNT(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Use.Table != "Weird Table" || q.Updates[0].Attr != "Odd Col" {
		t.Errorf("quoted idents = %v %v", q.Use.Table, q.Updates[0].Attr)
	}
}
