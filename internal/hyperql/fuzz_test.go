package hyperql

import (
	"strings"
	"testing"
)

// FuzzParse drives arbitrary input through the parser and checks the
// canonicalization contract on everything that parses: String() must be a
// fixpoint (re-parsing the canonical form reproduces it exactly), and the
// shape fingerprint — the plan-cache key — must be stable across the
// round-trip. CI runs this as a 30s smoke in the fuzz job; locally:
//
//	go test -fuzz=FuzzParse -fuzztime=30s ./internal/hyperql
func FuzzParse(f *testing.F) {
	seeds := []string{
		"USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)",
		"USE German WHEN Age = 2 UPDATE(Status) = 1 + PRE(Status) OUTPUT AVG(POST(Credit)) FOR PRE(Sex) = 0",
		"USE German WHEN Age IN (0, 2) AND Savings > 1 UPDATE(Savings) = 2 OUTPUT SUM(POST(Credit))",
		"USE German WHEN NOT (Housing = 1) UPDATE(Housing) = 0 OUTPUT COUNT(Credit = 1) FOR POST(Credit) = 1 OR PRE(Age) = 0",
		`USE (SELECT T1.PID, T1.Price, AVG(T2.Rating) AS Rtng
		      FROM Product AS T1, Review AS T2 WHERE T1.PID = T2.PID
		      GROUP BY T1.PID, T1.Price)
		 WHEN Brand = 'Asus' UPDATE(Price) = 1.1 * PRE(Price) OUTPUT AVG(POST(Rtng)) FOR PRE(Category) = 'Laptop'`,
		"USE German HOWTOUPDATE Status, Savings LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)",
		"USE German WHEN Age != 3 HOWTOUPDATE Housing TOMAXIMIZE AVG(POST(Credit))",
		"USE German UPDATE(CreditAmount) = -2.5 OUTPUT COUNT(Credit = 1) FOR PRE(Age) IN (0, 1, 2)",
		"", "USE", "USE German", "WHEN OUTPUT", "USE German UPDATE() = OUTPUT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; not crashing is the property
		}
		canonical := q.String()
		q2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form does not re-parse:\n input %q\n canonical %q\n err %v", src, canonical, err)
		}
		if again := q2.String(); again != canonical {
			t.Fatalf("String() is not a fixpoint:\n input %q\n first %q\n second %q", src, canonical, again)
		}
		if fp, fp2 := Fingerprint("fuzz", q), Fingerprint("fuzz", q2); fp != fp2 {
			t.Fatalf("fingerprint unstable across round-trip: %s vs %s for %q", fp, fp2, canonical)
		}
		if len(strings.TrimSpace(canonical)) == 0 {
			t.Fatalf("parsed query %q canonicalizes to whitespace", src)
		}
	})
}
