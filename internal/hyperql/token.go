// Package hyperql implements the declarative query language of HypeR: the
// extended SQL syntax of Sections 3.1 and 4.1 with the USE / WHEN / UPDATE /
// OUTPUT / FOR operators for what-if queries and HOWTOUPDATE / LIMIT /
// TOMAXIMIZE / TOMINIMIZE for how-to queries, plus the PRE()/POST() temporal
// value accessors and the L1() distance operator. It provides a lexer, an
// AST, a recursive-descent parser, and a pretty-printer.
package hyperql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // operators: = != < <= > >= + - * / ( ) , .
	TokError
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// keywords of the language, stored upper-case; the lexer upper-cases
// identifier candidates to check membership, so keywords are
// case-insensitive while identifiers preserve their case.
var keywords = map[string]bool{
	"USE": true, "AS": true, "SELECT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "AVG": true, "SUM": true, "COUNT": true,
	"WHEN": true, "UPDATE": true, "OUTPUT": true, "FOR": true,
	"PRE": true, "POST": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "HOWTOUPDATE": true, "LIMIT": true, "TOMAXIMIZE": true,
	"TOMINIMIZE": true, "L1": true, "TRUE": true, "FALSE": true,
	"NULL": true, "UPDATES": true,
}

// IsKeyword reports whether the upper-cased word is a language keyword.
func IsKeyword(word string) bool { return keywords[word] }
