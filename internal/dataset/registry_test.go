package dataset

import "testing"

// Every registry entry must build a database whose causal model validates
// against it, at a small scale so the whole sweep stays fast.
func TestRegistryBuildersValidate(t *testing.T) {
	for _, b := range Registry() {
		t.Run(b.Name, func(t *testing.T) {
			db, model := b.Build(0.05, 7)
			if db == nil {
				t.Fatal("nil database")
			}
			if db.TotalRows() == 0 {
				t.Fatal("empty database")
			}
			if model == nil {
				t.Fatal("nil model")
			}
			if err := model.Validate(db); err != nil {
				t.Fatalf("model does not validate: %v", err)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	b, err := Lookup("german")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "german" {
		t.Errorf("Lookup returned %q", b.Name)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown name should fail")
	}
	if len(Names()) != len(Registry()) {
		t.Error("Names and Registry disagree on length")
	}
}
