package dataset

import (
	"fmt"
	"sort"

	"hyper/internal/causal"
	"hyper/internal/relation"
)

// Builder is a named dataset constructor for the serving layer: cmd/hyperd
// creates sessions from registry names, and hyperbench's serving benchmark
// picks its workload here. Scale multiplies the default row counts (1.0
// reproduces the sizes used throughout the tests; serving sessions usually
// want less).
type Builder struct {
	Name        string
	Description string
	Build       func(scale float64, seed int64) (*relation.Database, *causal.Model)
}

// scaled returns n*scale clamped to at least lo.
func scaled(n int, scale float64, lo int) int {
	if scale <= 0 {
		scale = 1
	}
	out := int(float64(n) * scale)
	if out < lo {
		out = lo
	}
	return out
}

// builders lists every named dataset in registry order.
var builders = []Builder{
	{
		Name:        "toy",
		Description: "the 5-product/6-review Amazon database of Figure 1 with the causal diagram of Figure 2",
		Build: func(_ float64, _ int64) (*relation.Database, *causal.Model) {
			return Toy()
		},
	},
	{
		Name:        "german",
		Description: "German-Syn credit dataset (discrete; 5k rows at scale 1)",
		Build: func(scale float64, seed int64) (*relation.Database, *causal.Model) {
			g := GermanSyn(scaled(5000, scale, 100), seed)
			return g.DB, g.Model
		},
	},
	{
		Name:        "german-cont",
		Description: "German-Syn with continuous CreditAmount (5k rows at scale 1)",
		Build: func(scale float64, seed int64) (*relation.Database, *causal.Model) {
			g := GermanSynContinuous(scaled(5000, scale, 100), seed)
			return g.DB, g.Model
		},
	},
	{
		Name:        "adult",
		Description: "Adult-Syn income dataset (8k rows at scale 1)",
		Build: func(scale float64, seed int64) (*relation.Database, *causal.Model) {
			a := AdultSyn(scaled(8000, scale, 100), seed)
			return a.DB, a.Model
		},
	},
	{
		Name:        "amazon",
		Description: "Amazon-Syn product/review pair with the cross-tuple price channel (1.5k products at scale 1)",
		Build: func(scale float64, seed int64) (*relation.Database, *causal.Model) {
			a := AmazonSyn(scaled(1500, scale, 50), 12, seed)
			return a.DB, a.Model
		},
	},
	{
		Name:        "student",
		Description: "Student-Syn participation dataset (500 students at scale 1)",
		Build: func(scale float64, seed int64) (*relation.Database, *causal.Model) {
			s := StudentSyn(scaled(500, scale, 20), 4, seed)
			return s.DB, s.Model
		},
	},
}

// Registry returns the named dataset builders in a stable order.
func Registry() []Builder {
	return append([]Builder(nil), builders...)
}

// Names returns the sorted registry names.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}

// Lookup finds a builder by name.
func Lookup(name string) (Builder, error) {
	for _, b := range builders {
		if b.Name == name {
			return b, nil
		}
	}
	return Builder{}, fmt.Errorf("dataset: unknown dataset %q (known: %v)", name, Names())
}
