// Package dataset provides the synthetic datasets of the paper's evaluation
// (Section 5.1) together with their causal models and exact ground truth.
// The real UCI/Amazon datasets are not redistributable offline, so each is
// replaced by a generator that implements the causal structure the paper
// describes for it; the experiments measure estimation accuracy against a
// known causal process and runtime scaling, both of which these generators
// preserve (see DESIGN.md, "Substitutions").
package dataset

import (
	"math"

	"hyper/internal/causal"
	"hyper/internal/prcm"
	"hyper/internal/relation"
	"hyper/internal/stats"
)

// Single is a generated single-table dataset: the database, the causal
// model, and the SEM world enabling exact counterfactual ground truth.
type Single struct {
	DB    *relation.Database
	Model *causal.Model
	World *prcm.World
}

// Rel returns the dataset's single relation.
func (s *Single) Rel() *relation.Relation { return s.World.Rel }

// germanSEM is the German-Syn structural model: Age and Sex are root
// confounders; Status, Savings, Housing and CreditAmount depend only on them
// (mutually independent given the roots, as the how-to syntax requires); the
// binary Credit outcome depends on everything. The direct Age/Sex -> Credit
// edges create the confounding that separates HypeR from the Indep baseline
// in Figure 10a.
func germanSEM(continuousAmount bool) *prcm.SEM {
	logit := func(s float64) float64 { return 1 / (1 + math.Exp(-s)) }
	attrs := []prcm.Attr{
		{Name: "Age", Card: 4, Noise: stats.Uniform{Lo: 0, Hi: 4},
			Fn: func(_ map[string]float64, nz float64) float64 { return math.Floor(nz) }},
		{Name: "Sex", Card: 2, Noise: stats.Bernoulli{P: 0.5},
			Fn: func(_ map[string]float64, nz float64) float64 { return nz }},
		{Name: "Status", Card: 4, Mutable: true, Noise: stats.Normal{Sigma: 0.9},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.75*p["Age"] + 0.4*p["Sex"] + nz)
			}},
		{Name: "Savings", Card: 4, Mutable: true, Noise: stats.Normal{Sigma: 1.0},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.55*p["Age"] + 0.2*p["Sex"] + nz)
			}},
		{Name: "Housing", Card: 3, Mutable: true, Noise: stats.Normal{Sigma: 0.8},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.45*p["Age"] + nz)
			}},
	}
	if continuousAmount {
		attrs = append(attrs, prcm.Attr{
			Name: "CreditAmount", Mutable: true, Noise: stats.Normal{Sigma: 900},
			Fn: func(p map[string]float64, nz float64) float64 {
				return 1500 + 850*p["Age"] + nz
			}})
		// Two further continuous attributes so the discretization experiment
		// (Figure 9) has a multi-dimensional bucket grid.
		attrs = append(attrs, prcm.Attr{
			Name: "Duration", Mutable: true, Noise: stats.Normal{Sigma: 8},
			Fn: func(p map[string]float64, nz float64) float64 {
				return 24 + 4*p["Age"] + nz
			}})
		attrs = append(attrs, prcm.Attr{
			Name: "InstallmentRate", Mutable: true, Noise: stats.Normal{Sigma: 1.0},
			Fn: func(p map[string]float64, nz float64) float64 {
				return 2.5 + 0.3*p["Age"] + nz
			}})
	} else {
		attrs = append(attrs, prcm.Attr{
			Name: "CreditAmount", Card: 4, Mutable: true, Noise: stats.Normal{Sigma: 0.9},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.5*p["Age"] + nz)
			}})
	}
	amountScale := 1.0
	if continuousAmount {
		amountScale = 1.0 / 1700.0 // put the continuous amount on a code-like scale
	}
	creditParents := []string{"Age", "Sex", "Status", "Savings", "Housing", "CreditAmount"}
	if continuousAmount {
		creditParents = append(creditParents, "Duration", "InstallmentRate")
	}
	attrs = append(attrs, prcm.Attr{
		Name: "Credit", Card: 2, Mutable: true, Noise: stats.Uniform{Lo: 0, Hi: 1},
		Parents: creditParents,
		Fn: func(p map[string]float64, nz float64) float64 {
			s := -3.1 + 0.95*p["Status"] + 0.5*p["Savings"] + 0.35*p["Housing"] +
				0.22*p["CreditAmount"]*amountScale + 0.55*p["Age"] + 0.25*p["Sex"] -
				0.018*p["Duration"] - 0.2*p["InstallmentRate"]
			if nz < logit(s) {
				return 1
			}
			return 0
		}})
	// Parents for the intermediate attributes (declared above without the
	// Parents field for brevity) are filled in here.
	withParents := map[string][]string{
		"Status":          {"Age", "Sex"},
		"Savings":         {"Age", "Sex"},
		"Housing":         {"Age"},
		"CreditAmount":    {"Age"},
		"Duration":        {"Age"},
		"InstallmentRate": {"Age"},
	}
	for i := range attrs {
		if ps, ok := withParents[attrs[i].Name]; ok {
			attrs[i].Parents = ps
		}
	}
	return prcm.MustSEM("German", attrs)
}

// GermanSyn generates the German-Syn dataset of Section 5.1 with n rows.
func GermanSyn(n int, seed int64) *Single {
	return fromSEM(germanSEM(false), n, seed)
}

// GermanSynContinuous is German-Syn with a continuous CreditAmount, the
// variant used by the discretization experiment (Figure 9).
func GermanSynContinuous(n int, seed int64) *Single {
	return fromSEM(germanSEM(true), n, seed)
}

func fromSEM(sem *prcm.SEM, n int, seed int64) *Single {
	w := sem.Generate(n, seed)
	db := relation.NewDatabase()
	db.MustAdd(w.Rel)
	return &Single{DB: db, Model: sem.CausalModel(), World: w}
}

// GermanLike is a 21-attribute stand-in for the real UCI German credit
// dataset (1k rows in the paper's Table 1). Beyond the causal core of
// German-Syn it carries the extra bookkeeping attributes of the real data as
// weakly-dependent noise columns, so query-complexity and runtime behave
// like the real 21-column table. Figure 8a's attribute-importance shape is
// encoded: Status and CreditHistory move the credit outcome strongly;
// Housing and Investment weakly.
func GermanLike(n int, seed int64) *Single {
	logit := func(s float64) float64 { return 1 / (1 + math.Exp(-s)) }
	attrs := []prcm.Attr{
		{Name: "Age", Card: 4, Noise: stats.Uniform{Lo: 0, Hi: 4},
			Fn: func(_ map[string]float64, nz float64) float64 { return math.Floor(nz) }},
		{Name: "Sex", Card: 2, Noise: stats.Bernoulli{P: 0.55},
			Fn: func(_ map[string]float64, nz float64) float64 { return nz }},
		{Name: "Status", Card: 4, Mutable: true, Parents: []string{"Age", "Sex"}, Noise: stats.Normal{Sigma: 0.9},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.7*p["Age"] + 0.3*p["Sex"] + nz)
			}},
		{Name: "CreditHistory", Card: 5, Mutable: true, Parents: []string{"Age"}, Noise: stats.Normal{Sigma: 1.1},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.9*p["Age"] + nz)
			}},
		{Name: "Housing", Card: 3, Mutable: true, Parents: []string{"Age"}, Noise: stats.Normal{Sigma: 0.8},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.4*p["Age"] + nz)
			}},
		{Name: "Investment", Card: 4, Mutable: true, Parents: []string{"Age", "Sex"}, Noise: stats.Normal{Sigma: 1.0},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.45*p["Age"] + 0.2*p["Sex"] + nz)
			}},
	}
	// Fourteen weakly-structured bookkeeping attributes to reach the real
	// table's 21 columns.
	extras := []string{"Duration", "Purpose", "Employment", "InstallmentRate",
		"PersonalStatus", "Debtors", "Residence", "Property", "OtherInstallments",
		"ExistingCredits", "Job", "Dependents", "Telephone", "ForeignWorker"}
	for _, name := range extras {
		attrs = append(attrs, prcm.Attr{
			Name: name, Card: 4, Mutable: true, Parents: []string{"Age"},
			Noise: stats.Normal{Sigma: 1.4},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.2*p["Age"] + 1.5 + nz)
			}})
	}
	attrs = append(attrs, prcm.Attr{
		Name: "Credit", Card: 2, Mutable: true,
		Parents: []string{"Age", "Sex", "Status", "CreditHistory", "Housing", "Investment"},
		Noise:   stats.Uniform{Lo: 0, Hi: 1},
		Fn: func(p map[string]float64, nz float64) float64 {
			s := -3.4 + 1.1*p["Status"] + 0.85*p["CreditHistory"] + 0.3*p["Housing"] +
				0.28*p["Investment"] + 0.45*p["Age"] + 0.2*p["Sex"]
			if nz < logit(s) {
				return 1
			}
			return 0
		}})
	return fromSEM(prcm.MustSEM("German", attrs), n, seed)
}
