package dataset

import (
	"fmt"
	"math"

	"hyper/internal/causal"
	"hyper/internal/relation"
	"hyper/internal/stats"
)

// Student is the two-table Student-Syn dataset of Section 5.1: a Student
// table (age, gender, country of origin, attendance) and a Participation
// table (five course enrollments per student with discussion points,
// hand-raised counts, announcements read, assignment scores, and grade).
// Attendance drives discussions, announcements and assignment scores; the
// grade is driven most directly by the assignment score but attendance has
// the largest total effect through its downstream children — the two
// findings of Sections 5.3/5.4.
type Student struct {
	DB    *relation.Database
	Model *causal.Model

	nStudents int
	perCourse int
	// Stored states and noises for counterfactual ground truth.
	stu    [][]float64 // [i]: Age, Gender, Country, Attendance
	stuNz  []float64   // attendance noise
	partNz [][]float64 // [i*perCourse+c]: noises for the 5 participation equations
}

const (
	stuAge = iota
	stuGender
	stuCountry
	stuAttendance
)

// Student equation set, shared by generation and counterfactuals.

func attendanceEq(age, gender, country, nz float64) float64 {
	return clampRound(2.2+0.9*age+0.5*gender+0.25*country+nz, 0, 9)
}

func discussionEq(att, nz float64) float64 { return clampRound(0.8*att+nz, 0, 10) }
func handRaisedEq(att, nz float64) float64 { return clampRound(0.35*att+1+nz, 0, 10) }
func announceEq(att, nz float64) float64   { return clampRound(0.7*att+nz, 0, 10) }
func assignmentEq(att, nz float64) float64 { return clampF(28+5.5*att+6*nz, 0, 100) }

func gradeEq(assignment, att, disc, ann, hand, nz float64) float64 {
	return clampF(0.45*assignment+2.0*att+1.1*disc+0.8*ann+0.4*hand+4*nz, 0, 100)
}

func clampRound(x, lo, hi float64) float64 {
	return clampF(math.Round(x), lo, hi)
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// StudentSyn generates nStudents students with coursesPer participation rows
// each (the paper uses 10k students x 5 courses = 50k participations).
func StudentSyn(nStudents, coursesPer int, seed int64) *Student {
	return StudentSynWide(nStudents, coursesPer, 0, seed)
}

// StudentSynWide is StudentSyn with extra synthetic mutable participation
// attributes Extra1..ExtraN (each weakly driven by attendance), matching the
// query-complexity experiments of Section 5.5 that "synthetically add
// multiple attributes" to the dataset (Figure 11).
func StudentSynWide(nStudents, coursesPer, extra int, seed int64) *Student {
	rng := stats.NewRNG(seed)
	s := &Student{nStudents: nStudents, perCourse: coursesPer}

	stuRel := relation.NewRelation("Student", relation.MustSchema(
		relation.Column{Name: "SID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Age", Kind: relation.KindInt},
		relation.Column{Name: "Gender", Kind: relation.KindInt},
		relation.Column{Name: "Country", Kind: relation.KindInt},
		relation.Column{Name: "Attendance", Kind: relation.KindInt, Mutable: true},
	))
	partCols := []relation.Column{
		{Name: "SID", Kind: relation.KindInt, Key: true},
		{Name: "Course", Kind: relation.KindInt, Key: true},
		{Name: "Discussion", Kind: relation.KindInt, Mutable: true},
		{Name: "HandRaised", Kind: relation.KindInt, Mutable: true},
		{Name: "Announcements", Kind: relation.KindInt, Mutable: true},
		{Name: "Assignment", Kind: relation.KindFloat, Mutable: true},
		{Name: "Grade", Kind: relation.KindFloat, Mutable: true},
	}
	for x := 1; x <= extra; x++ {
		partCols = append(partCols, relation.Column{
			Name: fmt.Sprintf("Extra%d", x), Kind: relation.KindInt, Mutable: true})
	}
	partRel := relation.NewRelation("Participation", relation.MustSchema(partCols...))

	s.stu = make([][]float64, nStudents)
	s.stuNz = make([]float64, nStudents)
	s.partNz = make([][]float64, nStudents*coursesPer)
	for i := 0; i < nStudents; i++ {
		age := math.Floor(rng.Float64() * 4)
		gender := math.Floor(rng.Float64() * 2)
		country := math.Floor(rng.Float64() * 5)
		nz := rng.NormFloat64() * 1.3
		att := attendanceEq(age, gender, country, nz)
		s.stu[i] = []float64{age, gender, country, att}
		s.stuNz[i] = nz
		stuRel.MustInsert(relation.Int(int64(i)), relation.Int(int64(age)),
			relation.Int(int64(gender)), relation.Int(int64(country)), relation.Int(int64(att)))
		for c := 0; c < coursesPer; c++ {
			pnz := []float64{
				rng.NormFloat64() * 1.2, // discussion
				rng.NormFloat64() * 1.2, // hand raised
				rng.NormFloat64() * 1.1, // announcements
				rng.NormFloat64(),       // assignment
				rng.NormFloat64(),       // grade
			}
			s.partNz[i*coursesPer+c] = pnz
			disc := discussionEq(att, pnz[0])
			hand := handRaisedEq(att, pnz[1])
			ann := announceEq(att, pnz[2])
			asg := assignmentEq(att, pnz[3])
			grade := gradeEq(asg, att, disc, ann, hand, pnz[4])
			vals := []relation.Value{relation.Int(int64(i)), relation.Int(int64(c)),
				relation.Int(int64(disc)), relation.Int(int64(hand)), relation.Int(int64(ann)),
				relation.Float(asg), relation.Float(grade)}
			for x := 1; x <= extra; x++ {
				ev := clampRound(0.3*att+rng.NormFloat64()*1.2+1.5, 0, 5)
				vals = append(vals, relation.Int(int64(ev)))
			}
			partRel.MustInsert(vals...)
		}
	}
	db := relation.NewDatabase()
	db.MustAdd(stuRel)
	db.MustAdd(partRel)
	if err := db.AddForeignKey(relation.ForeignKey{
		Child: "Participation", ChildCol: "SID", Parent: "Student", ParentCol: "SID"}); err != nil {
		panic(err)
	}
	s.DB = db
	s.Model = studentModel()
	return s
}

func studentModel() *causal.Model {
	m := causal.NewModel()
	add := m.AddEdge
	add("Student.Age", "Student.Attendance")
	add("Student.Gender", "Student.Attendance")
	add("Student.Country", "Student.Attendance")
	add("Student.Attendance", "Participation.Discussion")
	add("Student.Attendance", "Participation.HandRaised")
	add("Student.Attendance", "Participation.Announcements")
	add("Student.Attendance", "Participation.Assignment")
	add("Student.Attendance", "Participation.Grade")
	add("Participation.Discussion", "Participation.Grade")
	add("Participation.HandRaised", "Participation.Grade")
	add("Participation.Announcements", "Participation.Grade")
	add("Participation.Assignment", "Participation.Grade")
	return m
}

// Intervention targets for CounterfactualAvgGrade.
const (
	StudentAttendance    = "Attendance"
	StudentDiscussion    = "Discussion"
	StudentHandRaised    = "HandRaised"
	StudentAnnouncements = "Announcements"
	StudentAssignment    = "Assignment"
)

// CounterfactualAvgGrade recomputes every participation row's grade with the
// recorded noise after intervening do(attr := set(pre)) and returns the
// average grade — the exact ground truth for the Figure 10b queries.
// Interventions on Attendance propagate to all downstream participation
// attributes; interventions on a participation attribute cut its own
// equation and propagate only to the grade.
func (s *Student) CounterfactualAvgGrade(attr string, set func(pre float64) float64) float64 {
	total, n := 0.0, 0
	for i := 0; i < s.nStudents; i++ {
		att := s.stu[i][stuAttendance]
		if attr == StudentAttendance {
			att = clampF(math.Round(set(att)), 0, 9)
		}
		for c := 0; c < s.perCourse; c++ {
			pnz := s.partNz[i*s.perCourse+c]
			disc := discussionEq(att, pnz[0])
			hand := handRaisedEq(att, pnz[1])
			ann := announceEq(att, pnz[2])
			asg := assignmentEq(att, pnz[3])
			switch attr {
			case StudentDiscussion:
				disc = clampF(math.Round(set(disc)), 0, 10)
			case StudentHandRaised:
				hand = clampF(math.Round(set(hand)), 0, 10)
			case StudentAnnouncements:
				ann = clampF(math.Round(set(ann)), 0, 10)
			case StudentAssignment:
				asg = clampF(set(asg), 0, 100)
			}
			total += gradeEq(asg, att, disc, ann, hand, pnz[4])
			n++
		}
	}
	return total / float64(n)
}

// AvgGrade returns the observed average grade.
func (s *Student) AvgGrade() float64 {
	return s.CounterfactualAvgGrade("", func(pre float64) float64 { return pre })
}
