package dataset

import (
	"math"

	"hyper/internal/prcm"
	"hyper/internal/stats"
)

// AdultSyn is the stand-in for the UCI Adult income dataset (32k rows, 15
// attributes in Table 1). The causal structure follows the fairness
// literature the paper cites: demographic roots (Age, Sex, Race, Country)
// drive Education, MaritalStatus, Occupation and HoursPerWeek, which drive
// the binary Income (>50K). MaritalStatus carries the strongest direct
// effect — the paper's headline observation (38% high income when everyone
// is married vs <9% unmarried) — followed by Occupation and Education, while
// Workclass has a small effect (Figure 8b).
func AdultSyn(n int, seed int64) *Single {
	logit := func(s float64) float64 { return 1 / (1 + math.Exp(-s)) }
	attrs := []prcm.Attr{
		{Name: "Age", Card: 5, Noise: stats.Uniform{Lo: 0, Hi: 5},
			Fn: func(_ map[string]float64, nz float64) float64 { return math.Floor(nz) }},
		{Name: "Sex", Card: 2, Noise: stats.Bernoulli{P: 0.67},
			Fn: func(_ map[string]float64, nz float64) float64 { return nz }},
		{Name: "Race", Card: 5, Noise: stats.Uniform{Lo: 0, Hi: 5},
			Fn: func(_ map[string]float64, nz float64) float64 { return math.Floor(math.Min(nz*nz/5, 4)) }},
		{Name: "Country", Card: 8, Noise: stats.Uniform{Lo: 0, Hi: 8},
			Fn: func(_ map[string]float64, nz float64) float64 { return math.Floor(math.Min(nz*nz/8, 7)) }},
		{Name: "Education", Card: 5, Mutable: true, Parents: []string{"Age", "Race", "Country"},
			Noise: stats.Normal{Sigma: 1.0},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(1.1 + 0.25*p["Age"] - 0.12*p["Race"] - 0.06*p["Country"] + nz)
			}},
		{Name: "MaritalStatus", Card: 3, Mutable: true, Parents: []string{"Age", "Sex"},
			Noise: stats.Normal{Sigma: 0.8},
			Fn: func(p map[string]float64, nz float64) float64 {
				// 0 = never married, 1 = married, 2 = divorced.
				return math.Round(0.25*p["Age"] + 0.3*p["Sex"] + nz*nz*0.35)
			}},
		{Name: "Occupation", Card: 6, Mutable: true, Parents: []string{"Education", "Sex"},
			Noise: stats.Normal{Sigma: 1.2},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.8*p["Education"] + 0.4*p["Sex"] + nz)
			}},
		{Name: "Workclass", Card: 4, Mutable: true, Parents: []string{"Education"},
			Noise: stats.Normal{Sigma: 1.1},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.3*p["Education"] + 0.8 + nz)
			}},
		{Name: "HoursPerWeek", Card: 4, Mutable: true, Parents: []string{"Occupation", "MaritalStatus"},
			Noise: stats.Normal{Sigma: 0.9},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(0.8 + 0.25*p["Occupation"] + 0.2*(2-math.Abs(p["MaritalStatus"]-1)) + nz)
			}},
		{Name: "Relationship", Card: 4, Mutable: true, Parents: []string{"MaritalStatus", "Sex"},
			Noise: stats.Normal{Sigma: 0.7},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(1.2*p["MaritalStatus"] + 0.3*p["Sex"] + nz)
			}},
		{Name: "CapitalGain", Card: 3, Mutable: true, Parents: []string{"Education", "Age"},
			Noise: stats.Normal{Sigma: 0.8},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(-0.7 + 0.25*p["Education"] + 0.15*p["Age"] + nz*nz*0.3)
			}},
		{Name: "CapitalLoss", Card: 3, Mutable: true, Parents: []string{"Age"},
			Noise: stats.Normal{Sigma: 0.7},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(-0.5 + 0.1*p["Age"] + nz*nz*0.3)
			}},
		{Name: "EducationNum", Card: 5, Mutable: true, Parents: []string{"Education"},
			Noise: stats.Normal{Sigma: 0.3},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(p["Education"] + nz)
			}},
		{Name: "Fnlwgt", Card: 4, Mutable: true, Parents: []string{"Country"},
			Noise: stats.Normal{Sigma: 1.2},
			Fn: func(p map[string]float64, nz float64) float64 {
				return math.Round(1.5 + 0.1*p["Country"] + nz)
			}},
		{Name: "Income", Card: 2, Mutable: true,
			Parents: []string{"Age", "Sex", "Education", "MaritalStatus", "Occupation", "Workclass", "HoursPerWeek", "CapitalGain"},
			Noise:   stats.Uniform{Lo: 0, Hi: 1},
			Fn: func(p map[string]float64, nz float64) float64 {
				married := 0.0
				if p["MaritalStatus"] == 1 {
					married = 1
				}
				s := -4.6 + 2.6*married + 0.5*p["Occupation"] + 0.45*p["Education"] +
					0.3*p["HoursPerWeek"] + 0.28*p["CapitalGain"] + 0.12*p["Workclass"] +
					0.3*p["Age"] + 0.25*p["Sex"]
				if nz < logit(s) {
					return 1
				}
				return 0
			}},
	}
	return fromSEM(prcm.MustSEM("Adult", attrs), n, seed)
}
