package dataset

import (
	"math"
	"testing"

	"hyper/internal/causal"
	"hyper/internal/prcm"
	"hyper/internal/relation"
)

func TestGermanSynShape(t *testing.T) {
	g := GermanSyn(5000, 1)
	rel := g.Rel()
	if rel.Len() != 5000 {
		t.Fatalf("rows = %d", rel.Len())
	}
	for _, col := range []string{"Age", "Sex", "Status", "Savings", "Housing", "CreditAmount", "Credit"} {
		if !rel.Schema().Has(col) {
			t.Errorf("missing column %s", col)
		}
	}
	if err := g.Model.Validate(g.DB); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	// Credit should be a non-degenerate binary outcome.
	ci := rel.Schema().MustIndex("Credit")
	ones := 0
	for _, row := range rel.Rows() {
		v := row[ci].AsInt()
		if v != 0 && v != 1 {
			t.Fatalf("credit value %d", v)
		}
		ones += int(v)
	}
	frac := float64(ones) / float64(rel.Len())
	if frac < 0.2 || frac > 0.9 {
		t.Errorf("good-credit fraction %.3f is degenerate", frac)
	}
}

func TestGermanSynConfoundingStructure(t *testing.T) {
	g := GermanSyn(2000, 2)
	// Age must confound Status and Credit: Age -> Status and Age -> Credit.
	if !g.Model.Attr.IsDescendant("German.Status", "German.Age") {
		t.Error("Age should cause Status")
	}
	if !g.Model.Attr.IsDescendant("German.Credit", "German.Age") {
		t.Error("Age should cause Credit")
	}
	// The how-to update attributes must be mutually path-free (Section 3.1
	// requirement for multi-attribute updates).
	attrs := []string{"German.Status", "German.Savings", "German.Housing", "German.CreditAmount"}
	for _, a := range attrs {
		for _, b := range attrs {
			if a != b && g.Model.Attr.IsDescendant(b, a) {
				t.Errorf("%s and %s must not be causally connected", a, b)
			}
		}
	}
	// {Age, Sex} is a valid backdoor set for Status -> Credit.
	if !g.Model.Attr.IsBackdoorSet("German.Status", []string{"German.Credit"}, []string{"German.Age", "German.Sex"}) {
		t.Error("{Age, Sex} should satisfy the backdoor criterion")
	}
}

func TestGermanSynStatusEffectDirection(t *testing.T) {
	g := GermanSyn(20000, 3)
	hi := g.World.Counterfactual(prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }})
	lo := g.World.Counterfactual(prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 0 }})
	fhi, flo := fracCredit(hi), fracCredit(lo)
	if fhi <= flo+0.1 {
		t.Errorf("status effect too weak: max %.3f vs min %.3f", fhi, flo)
	}
}

func fracCredit(rel *relation.Relation) float64 {
	ci := rel.Schema().MustIndex("Credit")
	n := 0
	for _, row := range rel.Rows() {
		n += int(row[ci].AsInt())
	}
	return float64(n) / float64(rel.Len())
}

func TestGermanSynContinuousAttrs(t *testing.T) {
	g := GermanSynContinuous(1000, 4)
	for _, col := range []string{"CreditAmount", "Duration", "InstallmentRate"} {
		ci := g.Rel().Schema().MustIndex(col)
		if g.Rel().Schema().Col(ci).Kind != 3 { // KindFloat
			t.Errorf("%s should be continuous", col)
		}
	}
	lo, hi, ok := g.Rel().MinMax("CreditAmount")
	if !ok || hi-lo < 1000 {
		t.Errorf("CreditAmount range [%g, %g] too narrow", lo, hi)
	}
}

func TestGermanLikeAttributeCount(t *testing.T) {
	g := GermanLike(1000, 5)
	// Paper's German dataset has 21 attributes (plus our ID key).
	if got := g.Rel().Schema().Len() - 1; got != 21 {
		t.Errorf("attribute count = %d, want 21", got)
	}
}

func TestAdultSynMaritalEffect(t *testing.T) {
	a := AdultSyn(20000, 6)
	if got := a.Rel().Schema().Len() - 1; got != 15 {
		t.Errorf("attribute count = %d, want 15", got)
	}
	married := a.World.Counterfactual(prcm.Intervention{Attr: "MaritalStatus", Fn: func(float64) float64 { return 1 }})
	single := a.World.Counterfactual(prcm.Intervention{Attr: "MaritalStatus", Fn: func(float64) float64 { return 0 }})
	mi := married.Schema().MustIndex("Income")
	fm, fs := 0, 0
	for i := 0; i < married.Len(); i++ {
		fm += int(married.Row(i)[mi].AsInt())
		fs += int(single.Row(i)[mi].AsInt())
	}
	gap := float64(fm-fs) / float64(married.Len())
	// The paper reports 38% vs <9%; our synthetic stand-in must preserve a
	// large positive gap.
	if gap < 0.2 {
		t.Errorf("married-vs-single income gap %.3f too small", gap)
	}
}

func TestStudentSynStructure(t *testing.T) {
	st := StudentSyn(500, 5, 7)
	if st.DB.Relation("Student").Len() != 500 {
		t.Fatal("student rows")
	}
	if st.DB.Relation("Participation").Len() != 2500 {
		t.Fatal("participation rows")
	}
	if err := st.Model.Validate(st.DB); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	if len(st.DB.ForeignKeys()) != 1 {
		t.Error("FK missing")
	}
	// Block decomposition: every student + their participations is a block.
	dec, err := causal.Decompose(st.DB, st.Model)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumBlocks() != 500 {
		t.Errorf("blocks = %d, want 500", dec.NumBlocks())
	}
}

func TestStudentAttendanceHasLargestTotalEffect(t *testing.T) {
	st := StudentSyn(3000, 5, 8)
	base := st.AvgGrade()
	effects := map[string]float64{
		StudentAttendance:    st.CounterfactualAvgGrade(StudentAttendance, func(float64) float64 { return 9 }) - base,
		StudentAssignment:    st.CounterfactualAvgGrade(StudentAssignment, func(float64) float64 { return 100 }) - base,
		StudentDiscussion:    st.CounterfactualAvgGrade(StudentDiscussion, func(float64) float64 { return 10 }) - base,
		StudentHandRaised:    st.CounterfactualAvgGrade(StudentHandRaised, func(float64) float64 { return 10 }) - base,
		StudentAnnouncements: st.CounterfactualAvgGrade(StudentAnnouncements, func(float64) float64 { return 10 }) - base,
	}
	for attr, eff := range effects {
		if attr == StudentAttendance {
			continue
		}
		if effects[StudentAttendance] <= eff {
			t.Errorf("attendance effect %.2f should exceed %s effect %.2f (Section 5.4)",
				effects[StudentAttendance], attr, eff)
		}
	}
	// Among participation attributes, assignment dominates (Section 5.3).
	for _, attr := range []string{StudentDiscussion, StudentHandRaised, StudentAnnouncements} {
		if effects[StudentAssignment] <= effects[attr] {
			t.Errorf("assignment effect %.2f should exceed %s effect %.2f",
				effects[StudentAssignment], attr, effects[attr])
		}
	}
}

func TestStudentSynWideExtras(t *testing.T) {
	st := StudentSynWide(200, 3, 4, 9)
	p := st.DB.Relation("Participation")
	for i := 1; i <= 4; i++ {
		if !p.Schema().Has("Extra" + string(rune('0'+i))) {
			t.Errorf("Extra%d missing", i)
		}
	}
}

func TestAmazonSynStructure(t *testing.T) {
	am := AmazonSyn(500, 10, 10)
	if am.DB.Relation("Product").Len() != 500 {
		t.Fatal("products")
	}
	if am.DB.Relation("Review").Len() < 2000 {
		t.Errorf("too few reviews: %d", am.DB.Relation("Review").Len())
	}
	if err := am.Model.Validate(am.DB); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	if len(am.Model.Cross) != 1 {
		t.Error("cross edge missing")
	}
	// Ratings bounded 1..5.
	rev := am.DB.Relation("Review")
	ri := rev.Schema().MustIndex("Rating")
	for _, row := range rev.Rows() {
		if v := row[ri].AsInt(); v < 1 || v > 5 {
			t.Fatalf("rating %d out of range", v)
		}
	}
}

func TestAmazonPriceCutRaisesRatings(t *testing.T) {
	am := AmazonSyn(2000, 12, 11)
	baseAvg, _ := am.CounterfactualAvgRating(nil, func(p float64) float64 { return p })
	cutAvg, _ := am.CounterfactualAvgRating(nil, func(p float64) float64 { return 0.7 * p })
	if cutAvg <= baseAvg {
		t.Errorf("price cut should raise ratings: %.3f -> %.3f", baseAvg, cutAvg)
	}
	// Identity counterfactual must reproduce observed ratings exactly.
	rev := am.DB.Relation("Review")
	ri := rev.Schema().MustIndex("Rating")
	sum := 0.0
	for _, row := range rev.Rows() {
		sum += row[ri].AsFloat()
	}
	if math.Abs(baseAvg-sum/float64(rev.Len())) > 1e-9 {
		t.Errorf("identity counterfactual %.4f != observed %.4f", baseAvg, sum/float64(rev.Len()))
	}
}

func TestAmazonPricePercentile(t *testing.T) {
	am := AmazonSyn(1000, 5, 12)
	p20, p80 := am.PricePercentile(0.2), am.PricePercentile(0.8)
	if p20 >= p80 {
		t.Errorf("percentiles out of order: %g >= %g", p20, p80)
	}
}

func TestToyMatchesFigure1(t *testing.T) {
	db, model := Toy()
	prod, rev := db.Relation("Product"), db.Relation("Review")
	if prod.Len() != 5 || rev.Len() != 6 {
		t.Fatalf("toy sizes: %d products, %d reviews", prod.Len(), rev.Len())
	}
	if err := model.Validate(db); err != nil {
		t.Fatalf("toy model invalid: %v", err)
	}
	// Spot-check tuple p2 (Asus laptop at 529).
	found := false
	pi := prod.Schema().MustIndex("Brand")
	ci := prod.Schema().MustIndex("Price")
	for _, row := range prod.Rows() {
		if row[pi].AsString() == "Asus" && row[ci].AsFloat() == 529 {
			found = true
		}
	}
	if !found {
		t.Error("Asus laptop at 529 missing")
	}
	// Example 7: decomposition into laptops(+reviews), camera(+review), books.
	dec, err := causal.Decompose(db, model)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumBlocks() != 3 {
		t.Errorf("toy blocks = %d, want 3 (Example 7)", dec.NumBlocks())
	}
}
