package dataset

import (
	"math"

	"hyper/internal/causal"
	"hyper/internal/relation"
	"hyper/internal/stats"
)

// Amazon is the two-table product/review dataset of Figure 1 at evaluation
// scale (3k products, ~55k reviews in Table 1). Brand and Category drive
// Quality and Price; a review's Sentiment and Rating depend on the product's
// Quality and on its price relative to the mean price of its Category — the
// cross-tuple dependency of Figure 2 (one laptop's price affects other
// laptops' ratings through competition). That relative-price channel is
// declared as a cross-tuple edge in the causal model and exercised by the
// engine's ψ summary features.
type Amazon struct {
	DB    *relation.Database
	Model *causal.Model

	brands     []string
	categories []string
	// Stored state for counterfactual ground truth.
	prod    [][3]float64 // cat code, quality, price
	revProd []int        // review -> product index
	revNz   [][2]float64 // sentiment, rating noises
}

var amazonBrands = []string{"Apple", "Dell", "Toshiba", "Acer", "Asus", "HP", "Canon", "Sony", "Vaio", "Samsung"}
var amazonCategories = []string{"Laptop", "DSLR Camera", "Phone", "Tablet", "eBook"}

// brandQuality encodes the paper's qualitative ordering (Apple highest).
var brandQuality = []float64{0.95, 0.75, 0.7, 0.6, 0.62, 0.68, 0.72, 0.78, 0.58, 0.74}

var categoryBasePrice = []float64{900, 650, 700, 450, 20}

// AmazonSyn generates nProducts products with reviewsPer reviews on average.
func AmazonSyn(nProducts, reviewsPer int, seed int64) *Amazon {
	rng := stats.NewRNG(seed)
	a := &Amazon{brands: amazonBrands, categories: amazonCategories}

	prodRel := relation.NewRelation("Product", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Category", Kind: relation.KindString},
		relation.Column{Name: "Brand", Kind: relation.KindString},
		relation.Column{Name: "Color", Kind: relation.KindString, Mutable: true},
		relation.Column{Name: "Quality", Kind: relation.KindFloat, Mutable: true},
		relation.Column{Name: "Price", Kind: relation.KindFloat, Mutable: true},
	))
	revRel := relation.NewRelation("Review", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "ReviewID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Sentiment", Kind: relation.KindFloat, Mutable: true},
		relation.Column{Name: "Rating", Kind: relation.KindInt, Mutable: true},
	))

	colors := []string{"Silver", "Black", "Blue", "Red", "White"}
	catMeanSum := make([]float64, len(amazonCategories))
	catCount := make([]int, len(amazonCategories))
	for i := 0; i < nProducts; i++ {
		cat := rng.Intn(len(amazonCategories))
		brand := rng.Intn(len(amazonBrands))
		quality := clampF(brandQuality[brand]+0.12*rng.NormFloat64(), 0.05, 1)
		price := categoryBasePrice[cat] * (0.55 + 0.9*quality) * math.Exp(0.18*rng.NormFloat64())
		a.prod = append(a.prod, [3]float64{float64(cat), quality, price})
		catMeanSum[cat] += price
		catCount[cat]++
		prodRel.MustInsert(relation.Int(int64(i)), relation.String(amazonCategories[cat]),
			relation.String(amazonBrands[brand]), relation.String(colors[rng.Intn(len(colors))]),
			relation.Float(quality), relation.Float(price))
	}
	catMean := make([]float64, len(amazonCategories))
	for c := range catMean {
		if catCount[c] > 0 {
			catMean[c] = catMeanSum[c] / float64(catCount[c])
		} else {
			catMean[c] = 1
		}
	}
	rid := 0
	for i := 0; i < nProducts; i++ {
		cat := int(a.prod[i][0])
		nrev := 1 + rng.Intn(2*reviewsPer-1) // mean ≈ reviewsPer
		for r := 0; r < nrev; r++ {
			nz := [2]float64{rng.NormFloat64() * 0.25, rng.NormFloat64() * 0.8}
			a.revProd = append(a.revProd, i)
			a.revNz = append(a.revNz, nz)
			sent, rating := reviewEq(a.prod[i][1], a.prod[i][2], catMean[cat], categoryBasePrice[cat], nz)
			revRel.MustInsert(relation.Int(int64(i)), relation.Int(int64(rid)),
				relation.Float(sent), relation.Int(int64(rating)))
			rid++
		}
	}
	db := relation.NewDatabase()
	db.MustAdd(prodRel)
	db.MustAdd(revRel)
	if err := db.AddForeignKey(relation.ForeignKey{
		Child: "Review", ChildCol: "PID", Parent: "Product", ParentCol: "PID"}); err != nil {
		panic(err)
	}
	a.DB = db
	a.Model = amazonModel()
	return a
}

// reviewEq computes a review's sentiment and rating from product quality,
// the price level relative to the category's base price (value for money),
// and the price relative to the category's current mean (competition, the
// cross-tuple channel).
func reviewEq(quality, price, catMean, catBase float64, nz [2]float64) (sent float64, rating int) {
	rel := (price - catMean) / catMean
	lvl := price/catBase - 1
	sent = clampF(2.1*quality-1+nz[0]-0.25*rel-0.2*lvl, -1, 1)
	rating = int(clampF(math.Round(2.6+2.4*quality-0.8*rel-0.7*lvl+nz[1]), 1, 5))
	return sent, rating
}

func amazonModel() *causal.Model {
	m := causal.NewModel()
	add := m.AddEdge
	add("Product.Brand", "Product.Quality")
	add("Product.Category", "Product.Price")
	add("Product.Quality", "Product.Price")
	add("Product.Quality", "Review.Rating")
	add("Product.Quality", "Review.Sentiment")
	add("Product.Price", "Review.Rating")
	add("Product.Price", "Review.Sentiment")
	add("Product.Color", "Review.Sentiment")
	// Cross-tuple: a product's price affects other products' ratings within
	// the same category (the dashed edges of Figure 2).
	m.AddCross(causal.CrossEdge{FromRel: "Product", FromAttr: "Price",
		ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})
	return m
}

// CounterfactualAvgRating recomputes every review with the recorded noise
// after applying priceFn to the prices of products selected by sel (nil
// selects all) and returns (a) the average rating over all products and (b)
// the fraction of reviews with rating >= 4. Category mean prices are
// recomputed, so the competitive cross-tuple channel is part of the ground
// truth.
func (a *Amazon) CounterfactualAvgRating(sel func(prodIdx int) bool, priceFn func(pre float64) float64) (avg float64, fracGE4 float64) {
	n := len(a.prod)
	newPrice := make([]float64, n)
	catSum := map[int]float64{}
	catN := map[int]int{}
	for i := 0; i < n; i++ {
		p := a.prod[i][2]
		if sel == nil || sel(i) {
			p = priceFn(p)
		}
		newPrice[i] = p
		c := int(a.prod[i][0])
		catSum[c] += p
		catN[c]++
	}
	total, ge4 := 0.0, 0
	for r, pi := range a.revProd {
		c := int(a.prod[pi][0])
		mean := catSum[c] / float64(catN[c])
		_, rating := reviewEq(a.prod[pi][1], newPrice[pi], mean, categoryBasePrice[c], a.revNz[r])
		total += float64(rating)
		if rating >= 4 {
			ge4++
		}
	}
	m := float64(len(a.revProd))
	return total / m, float64(ge4) / m
}

// CategoryIndex returns the code of a category name, or -1.
func (a *Amazon) CategoryIndex(name string) int {
	for i, c := range a.categories {
		if c == name {
			return i
		}
	}
	return -1
}

// ProductCategory returns the category code of product i.
func (a *Amazon) ProductCategory(i int) int { return int(a.prod[i][0]) }

// CounterfactualCategoryAvgRating is CounterfactualAvgRating restricted to
// the reviews of one category's products: it returns the average per-product
// mean rating within the category after applying priceFn to the selected
// products (nil sel selects all). Used to validate cross-tuple (ψ) effects:
// cutting ONE product's price changes its competitors' ratings through the
// category mean.
func (a *Amazon) CounterfactualCategoryAvgRating(category string, sel func(prodIdx int) bool, priceFn func(pre float64) float64) float64 {
	want := a.CategoryIndex(category)
	n := len(a.prod)
	newPrice := make([]float64, n)
	catSum := map[int]float64{}
	catN := map[int]int{}
	for i := 0; i < n; i++ {
		p := a.prod[i][2]
		if sel == nil || sel(i) {
			p = priceFn(p)
		}
		newPrice[i] = p
		c := int(a.prod[i][0])
		catSum[c] += p
		catN[c]++
	}
	// Per-product mean rating, then mean over the category's products —
	// matching the engine's AVG over the per-product AVG(Rating) view.
	prodSum := make([]float64, n)
	prodN := make([]int, n)
	for r, pi := range a.revProd {
		c := int(a.prod[pi][0])
		if c != want {
			continue
		}
		mean := catSum[c] / float64(catN[c])
		_, rating := reviewEq(a.prod[pi][1], newPrice[pi], mean, categoryBasePrice[c], a.revNz[r])
		prodSum[pi] += float64(rating)
		prodN[pi]++
	}
	total, m := 0.0, 0
	for i := 0; i < n; i++ {
		if prodN[i] > 0 {
			total += prodSum[i] / float64(prodN[i])
			m++
		}
	}
	if m == 0 {
		return 0
	}
	return total / float64(m)
}

// PricePercentile returns the q-quantile of product prices.
func (a *Amazon) PricePercentile(q float64) float64 {
	prices := make([]float64, len(a.prod))
	for i := range a.prod {
		prices[i] = a.prod[i][2]
	}
	return stats.Quantile(prices, q)
}
