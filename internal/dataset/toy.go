package dataset

import (
	"hyper/internal/causal"
	"hyper/internal/relation"
)

// Toy reproduces the exact Amazon product database of Figure 1 together with
// the causal diagram of Figure 2. It is used throughout the tests and the
// quickstart example.
func Toy() (*relation.Database, *causal.Model) {
	prod := relation.NewRelation("Product", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Category", Kind: relation.KindString},
		relation.Column{Name: "Price", Kind: relation.KindFloat, Mutable: true},
		relation.Column{Name: "Brand", Kind: relation.KindString},
		relation.Column{Name: "Color", Kind: relation.KindString, Mutable: true},
		relation.Column{Name: "Quality", Kind: relation.KindFloat, Mutable: true},
	))
	prod.MustInsert(relation.Int(1), relation.String("Laptop"), relation.Float(999), relation.String("Vaio"), relation.String("Silver"), relation.Float(0.7))
	prod.MustInsert(relation.Int(2), relation.String("Laptop"), relation.Float(529), relation.String("Asus"), relation.String("Black"), relation.Float(0.65))
	prod.MustInsert(relation.Int(3), relation.String("Laptop"), relation.Float(599), relation.String("HP"), relation.String("Silver"), relation.Float(0.5))
	prod.MustInsert(relation.Int(4), relation.String("DSLR Camera"), relation.Float(549), relation.String("Canon"), relation.String("Black"), relation.Float(0.75))
	prod.MustInsert(relation.Int(5), relation.String("Sci Fi eBooks"), relation.Float(15.99), relation.String("Fantasy Press"), relation.String("Blue"), relation.Float(0.4))

	rev := relation.NewRelation("Review", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "ReviewID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Sentiment", Kind: relation.KindFloat, Mutable: true},
		relation.Column{Name: "Rating", Kind: relation.KindInt, Mutable: true},
	))
	rev.MustInsert(relation.Int(1), relation.Int(1), relation.Float(-0.95), relation.Int(2))
	rev.MustInsert(relation.Int(2), relation.Int(2), relation.Float(0.7), relation.Int(4))
	rev.MustInsert(relation.Int(2), relation.Int(3), relation.Float(-0.2), relation.Int(1))
	rev.MustInsert(relation.Int(3), relation.Int(3), relation.Float(0.23), relation.Int(3))
	rev.MustInsert(relation.Int(3), relation.Int(5), relation.Float(0.95), relation.Int(5))
	rev.MustInsert(relation.Int(4), relation.Int(5), relation.Float(0.7), relation.Int(4))

	db := relation.NewDatabase()
	db.MustAdd(prod)
	db.MustAdd(rev)
	if err := db.AddForeignKey(relation.ForeignKey{
		Child: "Review", ChildCol: "PID", Parent: "Product", ParentCol: "PID"}); err != nil {
		panic(err)
	}

	m := causal.NewModel()
	m.AddEdge("Product.Brand", "Product.Quality")
	m.AddEdge("Product.Category", "Product.Price")
	m.AddEdge("Product.Quality", "Product.Price")
	m.AddEdge("Product.Quality", "Review.Rating")
	m.AddEdge("Product.Quality", "Review.Sentiment")
	m.AddEdge("Product.Price", "Review.Rating")
	m.AddEdge("Product.Price", "Review.Sentiment")
	m.AddEdge("Product.Color", "Review.Sentiment")
	m.AddCross(causal.CrossEdge{FromRel: "Product", FromAttr: "Price",
		ToRel: "Product", ToAttr: "Price", GroupBy: "Product.Category"})
	return db, m
}
