package howto

// Shard parity for the how-to path: Options.Engine.Shards drives both the
// candidate-scoring pool width and each candidate's engine fan-out, and none
// of it may change which updates are chosen or the estimated objective. The
// pinned goldens must hold at every fan-out, and a multi-shard-regime solve
// (5000 rows → 2-shard plans inside every candidate what-if) must reproduce
// the serial result bit for bit.

import (
	"strconv"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
)

func TestHowToShardCountParityOnGoldens(t *testing.T) {
	for _, c := range howtoParityCases {
		for _, shards := range []int{1, 3, 7} {
			t.Run(c.name+"/shards="+strconv.Itoa(shards), func(t *testing.T) {
				res := howtoParityEvalShards(t, c, shards)
				if got := res.String(); got != c.golden {
					t.Errorf("result = %s\n  golden %s", got, c.golden)
				}
			})
		}
	}
}

// howtoParityEvalShards is howtoParityEval with a worker fan-out override.
func howtoParityEvalShards(t testing.TB, c howtoParityCase, shards int) *Result {
	t.Helper()
	return howtoParityEvalOpts(t, c, Options{Engine: engine.Options{Seed: 7, Shards: shards}})
}

func TestHowToShardCountParityMultiShard(t *testing.T) {
	g := dataset.GermanSyn(5000, 7)
	q, err := hyperql.ParseHowTo(`
		USE German
		HOWTOUPDATE Status, Savings, Housing, CreditAmount
		TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	var base *Result
	for _, shards := range []int{1, 2, 3, 7} {
		res, err := Evaluate(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 7, Shards: shards}})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.String() != base.String() {
			t.Errorf("shards=%d: %s\n  want  %s", shards, res, base)
		}
		if f17h(res.Objective) != f17h(base.Objective) || f17h(res.Base) != f17h(base.Base) {
			t.Errorf("shards=%d: objective %s base %s, want %s %s",
				shards, f17h(res.Objective), f17h(res.Base), f17h(base.Objective), f17h(base.Base))
		}
	}
}

func f17h(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
