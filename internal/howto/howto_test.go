package howto

import (
	"math"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/prcm"
	"hyper/internal/relation"
)

const germanHowTo = `
USE German
HOWTOUPDATE Status, Savings, Housing, CreditAmount
TOMAXIMIZE COUNT(Credit = 1)`

func TestHowToPicksStrongestAttributes(t *testing.T) {
	g := dataset.GermanSyn(10000, 11)
	q, err := hyperql.ParseHowTo(germanHowTo)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if res.Objective <= res.Base {
		t.Fatalf("objective %.1f should improve on base %.1f", res.Objective, res.Base)
	}
	// Status has the strongest coefficient; its chosen update must be the
	// maximum status value.
	var status *Choice
	for i := range res.Choices {
		if res.Choices[i].Attr == "Status" {
			status = &res.Choices[i]
		}
	}
	if status == nil || status.Update == nil {
		t.Fatalf("Status should be updated: %s", res)
	}
	if status.Update.Const.AsFloat() != 3 {
		t.Errorf("Status should be set to its max (3), got %s", status.Update.Const)
	}
}

func TestHowToMatchesBruteForce(t *testing.T) {
	g := dataset.GermanSyn(5000, 13)
	src := `
USE German
HOWTOUPDATE Status, Housing
LIMIT UPDATES <= 2
TOMAXIMIZE COUNT(Credit = 1)`
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ipRes, err := Evaluate(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatalf("ip evaluate: %v", err)
	}
	bfRes, err := BruteForce(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatalf("brute force: %v", err)
	}
	// The IP scores candidates with additive deltas while brute force
	// evaluates combinations jointly, so their *estimates* may differ under
	// a non-linear outcome; what must hold is that the IP's chosen
	// combination is essentially as good as brute force's when both are
	// scored by the exact structural-equation ground truth.
	gt := func(updates []hyperql.UpdateSpec) float64 {
		var ivs []prcm.Intervention
		for _, u := range updates {
			u := u
			ivs = append(ivs, prcm.Intervention{Attr: u.Attr, Fn: func(pre float64) float64 {
				return u.Apply(relation.Float(pre)).AsFloat()
			}})
		}
		post := g.World.Counterfactual(ivs...)
		ci := post.Schema().MustIndex("Credit")
		n := 0
		for _, row := range post.Rows() {
			if row[ci].AsInt() == 1 {
				n++
			}
		}
		return float64(n)
	}
	ipGT, bfGT := gt(ipRes.Updates()), gt(bfRes.Updates())
	if ipGT < 0.97*bfGT {
		t.Errorf("IP combination achieves %.1f (ground truth), brute-force combination %.1f", ipGT, bfGT)
	}
	if ipRes.WhatIfEvals >= bfRes.WhatIfEvals {
		t.Errorf("IP should need fewer what-if evaluations (%d) than brute force (%d)", ipRes.WhatIfEvals, bfRes.WhatIfEvals)
	}
}

func TestHowToBudgetOne(t *testing.T) {
	// With a budget of one update, the best single attribute must be chosen
	// (Status, the strongest one).
	g := dataset.GermanSyn(8000, 17)
	src := `
USE German
HOWTOUPDATE Status, Savings, Housing, CreditAmount
LIMIT UPDATES <= 1
TOMAXIMIZE COUNT(Credit = 1)`
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	updated := 0
	var which string
	for _, c := range res.Choices {
		if c.Update != nil {
			updated++
			which = c.Attr
		}
	}
	if updated != 1 {
		t.Fatalf("budget 1 violated: %d updates in %s", updated, res)
	}
	if which != "Status" {
		t.Errorf("best single update should be Status, got %s", which)
	}
}

func TestHowToRangeAndL1Limits(t *testing.T) {
	g := dataset.GermanSynContinuous(5000, 19)
	src := `
USE German
HOWTOUPDATE CreditAmount
LIMIT 1000 <= POST(CreditAmount) <= 3000 AND L1(PRE(CreditAmount), POST(CreditAmount)) <= 5000
TOMAXIMIZE COUNT(Credit = 1)`
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cands, err := Candidates(g.DB, q, Options{Buckets: 10})
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	if len(cands["CreditAmount"]) == 0 {
		t.Fatal("no candidates generated")
	}
	for _, spec := range cands["CreditAmount"] {
		v := spec.Const.AsFloat()
		if v < 1000 || v > 3000 {
			t.Errorf("candidate %g violates LIMIT range", v)
		}
	}
}

func TestHowToAgainstGroundTruthOptimum(t *testing.T) {
	// Evaluate the IP answer's objective with the structural equations and
	// compare to the exhaustive ground-truth optimum (Section 5.4).
	g := dataset.GermanSyn(10000, 23)
	q, err := hyperql.ParseHowTo(germanHowTo)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}

	gtEval := func(updates []hyperql.UpdateSpec) (float64, error) {
		var ivs []prcm.Intervention
		for _, u := range updates {
			u := u
			ivs = append(ivs, prcm.Intervention{Attr: u.Attr, Fn: func(pre float64) float64 {
				return u.Apply(relation.Float(pre)).AsFloat()
			}})
		}
		post := g.World.Counterfactual(ivs...)
		ci := post.Schema().MustIndex("Credit")
		n := 0
		for _, row := range post.Rows() {
			if row[ci].AsInt() == 1 {
				n++
			}
		}
		return float64(n), nil
	}
	cands, err := Candidates(g.DB, q, Options{})
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	opt, err := BruteForceWith(q, cands, gtEval)
	if err != nil {
		t.Fatalf("ground-truth brute force: %v", err)
	}
	got, err := gtEval(res.Updates())
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.97*opt.Objective {
		t.Errorf("HypeR how-to achieves %.1f, ground-truth optimum %.1f (< 97%%)", got, opt.Objective)
	}
}

func TestLexicographic(t *testing.T) {
	g := dataset.GermanSyn(5000, 29)
	q1, err := hyperql.ParseHowTo(`USE German HOWTOUPDATE Status, Savings TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := hyperql.ParseHowTo(`USE German HOWTOUPDATE Status, Savings TOMAXIMIZE AVG(POST(Savings))`)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Evaluate(g.DB, g.Model, q1, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Lexicographic(g.DB, g.Model, []*hyperql.HowTo{q1, q2}, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The first objective must be preserved by the lexicographic solve.
	if math.Abs(multi.Objective-single.Objective) > 1e-6*math.Abs(single.Objective)+1e-6 {
		t.Errorf("lexicographic first objective %.4f != single-objective optimum %.4f", multi.Objective, single.Objective)
	}
}
