// Package howto implements HypeR's how-to queries (Section 4): reverse data
// management questions of the form "how should these attributes be updated
// to maximize this aggregate, subject to constraints". Each how-to query is
// compiled to a 0/1 integer program over candidate hypothetical updates
// (Equations 7-9): candidates are enumerated per attribute from the LIMIT
// constraints (continuous domains are bucketized, Figure 9), each
// candidate's marginal effect is a what-if evaluation (Definition 7), and
// the IP selects at most one update per attribute. The exhaustive Opt-HowTo
// baseline of Section 5.1 is provided for comparison.
package howto

import (
	"context"
	"fmt"
	"math"
	"time"

	"hyper/internal/causal"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/ip"
	"hyper/internal/obs"
	"hyper/internal/relation"
)

// Options configures how-to evaluation.
type Options struct {
	// Engine configures the underlying what-if evaluations.
	Engine engine.Options
	// Buckets is the equi-width bucket count used to discretize continuous
	// update attributes (default 8; Figure 9 sweeps this).
	Buckets int
	// MaxCandidatesPerAttr caps the candidate set per attribute (default 64).
	MaxCandidatesPerAttr int
	// Progress, when non-nil, receives candidate-scoring progress (stage
	// "candidates" for the pooled scorers, "combos" for the brute-force
	// search). Must be safe for concurrent use.
	Progress engine.ProgressFunc
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Buckets <= 0 {
		out.Buckets = 8
	}
	if out.MaxCandidatesPerAttr <= 0 {
		out.MaxCandidatesPerAttr = 64
	}
	if out.Engine.Estimator == engine.EstimatorAuto {
		// The IP objective is a linear function of the updates (Section
		// 4.3); estimate candidate effects with the linear regressor when
		// continuous attributes are involved.
		out.Engine.Estimator = engine.EstimatorLinear
	}
	if out.Engine.Cache == nil {
		// All candidate what-if queries of one how-to share USE/WHEN/FOR, so
		// views, blocks, and regressors are trained once (Section 4.3).
		out.Engine.Cache = engine.NewCache()
	}
	return out
}

// Choice is the decision for one HOWTOUPDATE attribute.
type Choice struct {
	Attr string
	// Update is the chosen hypothetical update, or nil for "no change".
	Update *hyperql.UpdateSpec
	// Delta is the estimated marginal effect of the update on the objective.
	Delta float64
}

// String renders the choice in the paper's output style ("Price: 1.1x",
// "Color: no change").
func (c Choice) String() string {
	if c.Update == nil {
		return c.Attr + ": no change"
	}
	switch c.Update.Form {
	case hyperql.UpdateScale:
		return fmt.Sprintf("%s: %gx", c.Attr, c.Update.Const.AsFloat())
	case hyperql.UpdateShift:
		return fmt.Sprintf("%s: %+g", c.Attr, c.Update.Const.AsFloat())
	default:
		return fmt.Sprintf("%s: = %s", c.Attr, c.Update.Const)
	}
}

// Result is the outcome of a how-to query.
type Result struct {
	Choices []Choice
	// Objective is the estimated post-update objective value.
	Objective float64
	// Base is the objective value with no update.
	Base float64
	// Candidates is the total number of candidate updates enumerated.
	Candidates int
	// WhatIfEvals counts the candidate what-if evaluations performed.
	WhatIfEvals int
	// IPNodes is the number of branch-and-bound nodes explored (0 for the
	// brute-force baseline).
	IPNodes int
	Total   time.Duration
}

// Updates returns the non-nil chosen updates.
func (r *Result) Updates() []hyperql.UpdateSpec {
	var out []hyperql.UpdateSpec
	for _, c := range r.Choices {
		if c.Update != nil {
			out = append(out, *c.Update)
		}
	}
	return out
}

// String renders the result.
func (r *Result) String() string {
	s := "{"
	for i, c := range r.Choices {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	return fmt.Sprintf("%s} objective=%.6g (base=%.6g)", s, r.Objective, r.Base)
}

// Evaluate answers a how-to query with the IP formulation of Section 4.3.
func Evaluate(db *relation.Database, model *causal.Model, q *hyperql.HowTo, opts Options) (*Result, error) {
	return EvaluateContext(context.Background(), db, model, q, opts)
}

// EvaluateContext is Evaluate with cancellation: ctx flows into every
// candidate what-if evaluation (observed inside the engine's tuple loop and
// estimator training), the scoring worker pool, and the IP branch and
// bound, so a cancelled or deadline-expired context stops the solve
// mid-flight with ctx.Err().
func EvaluateContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.HowTo, opts Options) (*Result, error) {
	o := opts.withDefaults()
	start := time.Now()
	cands, err := Candidates(db, q, o)
	if err != nil {
		return nil, err
	}
	base, err := baseObjective(ctx, db, model, q, o)
	if err != nil {
		return nil, err
	}
	res := &Result{Base: base}

	// Marginal effect of each candidate: a candidate what-if query
	// (Definition 7) evaluated by the engine, scored across the worker pool
	// (candidates share the artifact cache, so only the prediction points
	// differ).
	type cvar struct {
		attr  string
		spec  hyperql.UpdateSpec
		delta float64
	}
	scoredVars, err := scoreCandidates(ctx, db, model, []*hyperql.HowTo{q}, q.Attrs, cands, o)
	if err != nil {
		return nil, err
	}
	var vars []cvar
	byAttr := map[string][]int{}
	for _, s := range scoredVars {
		res.WhatIfEvals++
		vars = append(vars, cvar{attr: s.attr, spec: s.spec, delta: s.vals[0] - base})
		byAttr[s.attr] = append(byAttr[s.attr], len(vars)-1)
	}
	res.Candidates = len(vars)
	meter := obs.MeterFromContext(ctx)
	meter.AddCandidates(res.Candidates)
	meter.AddWhatIfEvals(res.WhatIfEvals)

	// Build and solve the IP: maximize Σ delta·δ (negated for TOMINIMIZE)
	// subject to SOS-1 per attribute and the optional update budget.
	m := ip.NewModel()
	for i, v := range vars {
		obj := v.delta
		if !q.Maximize {
			obj = -obj
		}
		m.AddVar(fmt.Sprintf("%s=%d", v.attr, i), obj)
	}
	for _, attr := range q.Attrs {
		if len(byAttr[attr]) > 0 {
			if err := m.AddAtMostOne(byAttr[attr]); err != nil {
				return nil, err
			}
		}
	}
	if k, ok := budget(q); ok {
		all := make([]int, len(vars))
		coef := make([]float64, len(vars))
		for i := range vars {
			all[i] = i
			coef[i] = 1
		}
		if err := m.AddLE(all, coef, float64(k)); err != nil {
			return nil, err
		}
	}
	sol, err := m.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	res.IPNodes = sol.Nodes

	chosen := map[string]*cvar{}
	for _, vi := range sol.Selected() {
		// Only keep selections that improve the objective; the IP may pick a
		// zero-delta variable when ties exist.
		v := vars[vi]
		gain := v.delta
		if !q.Maximize {
			gain = -gain
		}
		if gain > 1e-12 {
			vv := v
			chosen[v.attr] = &vv
		}
	}
	res.Objective = base
	for _, attr := range q.Attrs {
		c := Choice{Attr: attr}
		if v := chosen[attr]; v != nil {
			c.Update = &v.spec
			c.Delta = v.delta
			res.Objective += v.delta
		}
		res.Choices = append(res.Choices, c)
	}
	res.Total = time.Since(start)
	return res, nil
}

// BruteForce is the Opt-HowTo baseline: it enumerates every combination of
// candidate updates (including "no change" per attribute), evaluates the
// combined what-if query for each, and returns the best. Exponential in the
// number of attributes (Figure 11b / 12b).
func BruteForce(db *relation.Database, model *causal.Model, q *hyperql.HowTo, opts Options) (*Result, error) {
	return BruteForceContext(context.Background(), db, model, q, opts)
}

// BruteForceContext is BruteForce with cancellation: ctx is observed before
// every combination evaluation (and inside each underlying what-if), so the
// exponential search aborts promptly when cancelled.
func BruteForceContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.HowTo, opts Options) (*Result, error) {
	o := opts.withDefaults()
	start := time.Now()
	cands, err := Candidates(db, q, o)
	if err != nil {
		return nil, err
	}
	base, err := baseObjective(ctx, db, model, q, o)
	if err != nil {
		return nil, err
	}
	evalFn := func(updates []hyperql.UpdateSpec) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if len(updates) == 0 {
			return base, nil
		}
		return evalCandidate(ctx, db, model, q, updates, o)
	}
	res, err := bruteForceOver(q, cands, evalFn, o.Progress)
	if err != nil {
		return nil, err
	}
	res.Base = base
	res.Total = time.Since(start)
	return res, nil
}

// BruteForceWith runs the exhaustive search with a caller-provided objective
// evaluator — the experiment harness passes the structural-equation ground
// truth here to compute the paper's OptHowTo reference values (Section 5.4).
func BruteForceWith(q *hyperql.HowTo, cands map[string][]hyperql.UpdateSpec,
	evalFn func(updates []hyperql.UpdateSpec) (float64, error)) (*Result, error) {
	start := time.Now()
	res, err := bruteForceOver(q, cands, evalFn, nil)
	if err != nil {
		return nil, err
	}
	base, err := evalFn(nil)
	if err != nil {
		return nil, err
	}
	res.Base = base
	res.Total = time.Since(start)
	return res, nil
}

func bruteForceOver(q *hyperql.HowTo, cands map[string][]hyperql.UpdateSpec,
	evalFn func(updates []hyperql.UpdateSpec) (float64, error),
	progress engine.ProgressFunc) (*Result, error) {
	res := &Result{}
	bk, hasBudget := budget(q)
	// Combination count for progress reporting: an upper bound when a budget
	// prunes the tree (capped so the product cannot overflow).
	totalCombos := 1
	for _, attr := range q.Attrs {
		if totalCombos < 1<<30 {
			totalCombos *= len(cands[attr]) + 1
		}
	}
	best := math.Inf(-1)
	var bestCombo []*hyperql.UpdateSpec
	combo := make([]*hyperql.UpdateSpec, len(q.Attrs))
	var rec func(i, used int) error
	rec = func(i, used int) error {
		if i == len(q.Attrs) {
			var updates []hyperql.UpdateSpec
			for _, u := range combo {
				if u != nil {
					updates = append(updates, *u)
				}
			}
			val, err := evalFn(updates)
			if err != nil {
				return err
			}
			res.WhatIfEvals++
			if progress != nil {
				progress("combos", res.WhatIfEvals, totalCombos)
			}
			score := val
			if !q.Maximize {
				score = -score
			}
			if score > best {
				best = score
				bestCombo = append([]*hyperql.UpdateSpec(nil), combo...)
			}
			return nil
		}
		combo[i] = nil
		if err := rec(i+1, used); err != nil {
			return err
		}
		if hasBudget && used >= bk {
			return nil
		}
		for ci := range cands[q.Attrs[i]] {
			combo[i] = &cands[q.Attrs[i]][ci]
			if err := rec(i+1, used+1); err != nil {
				return err
			}
		}
		combo[i] = nil
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	for ai, attr := range q.Attrs {
		res.Candidates += len(cands[attr])
		c := Choice{Attr: attr, Update: bestCombo[ai]}
		res.Choices = append(res.Choices, c)
	}
	if q.Maximize {
		res.Objective = best
	} else {
		res.Objective = -best
	}
	return res, nil
}

// evalCandidate evaluates the candidate what-if query of Definition 7.
func evalCandidate(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.HowTo,
	updates []hyperql.UpdateSpec, o Options) (float64, error) {
	wi := &hyperql.WhatIf{
		Use:     q.Use,
		When:    q.When,
		Updates: updates,
		Output:  q.Obj,
		For:     q.For,
	}
	// The per-candidate engine progress is intentionally not forwarded: a
	// how-to reports candidate-level progress, not the tuples of each
	// underlying what-if.
	eo := o.Engine
	eo.Progress = nil
	res, err := engine.EvaluateContext(ctx, db, model, wi, eo)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// baseObjective evaluates the objective with an identity update (scale by
// 1), which the engine computes exactly since no tuple is affected.
func baseObjective(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.HowTo, o Options) (float64, error) {
	id := hyperql.UpdateSpec{Attr: q.Attrs[0], Form: hyperql.UpdateScale, Const: relation.Int(1)}
	return evalCandidate(ctx, db, model, q, []hyperql.UpdateSpec{id}, o)
}

// budget returns the UPDATES <= k constraint if present.
func budget(q *hyperql.HowTo) (int, bool) {
	for _, l := range q.Limits {
		if l.Kind == hyperql.LimitBudget {
			return l.K, true
		}
	}
	return 0, false
}
