package howto

// BenchmarkHowTo measures a full multi-attribute how-to evaluation —
// candidate enumeration, one candidate what-if per permissible update, and
// the IP solve. Candidate scoring dominates, so this is the benchmark that
// shows the scoring pool's scaling with GOMAXPROCS.

import (
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
)

func BenchmarkHowTo(b *testing.B) {
	g := dataset.GermanSyn(2000, 7)
	q, err := hyperql.ParseHowTo(`
		USE German
		HOWTOUPDATE Status, Savings, Housing, CreditAmount
		TOMAXIMIZE COUNT(Credit = 1)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Evaluate(g.DB, g.Model, q, Options{Engine: engine.Options{Seed: 7}})
		if err != nil {
			b.Fatal(err)
		}
		if res.Objective < res.Base {
			b.Fatal("objective below base")
		}
	}
}
