package howto

import (
	"context"
	"fmt"
	"time"

	"hyper/internal/causal"
	"hyper/internal/hyperql"
	"hyper/internal/ip"
	"hyper/internal/relation"
)

// Lexicographic solves a preferential multi-objective how-to query (the
// extension of Section 4.3): the queries share USE/WHEN/HOWTOUPDATE/LIMIT
// but carry objectives in decreasing priority. The IP is re-solved per
// objective with the previously achieved objective values added as equality
// constraints (Example 11).
func Lexicographic(db *relation.Database, model *causal.Model, qs []*hyperql.HowTo, opts Options) (*Result, error) {
	return LexicographicContext(context.Background(), db, model, qs, opts)
}

// LexicographicContext is Lexicographic with cancellation: ctx flows into
// candidate scoring and every per-objective IP solve.
func LexicographicContext(ctx context.Context, db *relation.Database, model *causal.Model, qs []*hyperql.HowTo, opts Options) (*Result, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("howto: no objectives")
	}
	o := opts.withDefaults()
	start := time.Now()
	q0 := qs[0]
	cands, err := Candidates(db, q0, o)
	if err != nil {
		return nil, err
	}

	// Evaluate each candidate's delta under every objective.
	type cvar struct {
		attr   string
		spec   hyperql.UpdateSpec
		deltas []float64 // per objective
	}
	var vars []cvar
	byAttr := map[string][]int{}
	bases := make([]float64, len(qs))
	whatIfEvals := 0
	for oi, q := range qs {
		bases[oi], err = baseObjective(ctx, db, model, q, o)
		if err != nil {
			return nil, err
		}
	}
	scoredVars, err := scoreCandidates(ctx, db, model, qs, q0.Attrs, cands, o)
	if err != nil {
		return nil, err
	}
	for _, s := range scoredVars {
		cv := cvar{attr: s.attr, spec: s.spec, deltas: make([]float64, len(qs))}
		for oi := range qs {
			whatIfEvals++
			cv.deltas[oi] = s.vals[oi] - bases[oi]
		}
		vars = append(vars, cv)
		byAttr[s.attr] = append(byAttr[s.attr], len(vars)-1)
	}

	buildModel := func(objIdx int, pinned []float64) (*ip.Model, error) {
		m := ip.NewModel()
		for i, v := range vars {
			obj := v.deltas[objIdx]
			if !qs[objIdx].Maximize {
				obj = -obj
			}
			m.AddVar(fmt.Sprintf("%s=%d", v.attr, i), obj)
		}
		for _, attr := range q0.Attrs {
			if len(byAttr[attr]) > 0 {
				if err := m.AddAtMostOne(byAttr[attr]); err != nil {
					return nil, err
				}
			}
		}
		if k, ok := budget(q0); ok {
			all := make([]int, len(vars))
			coef := make([]float64, len(vars))
			for i := range vars {
				all[i] = i
				coef[i] = 1
			}
			if err := m.AddLE(all, coef, float64(k)); err != nil {
				return nil, err
			}
		}
		// Pin previously optimized objectives (within a small tolerance, as
		// a <= / >= pair).
		for pi, target := range pinned {
			idx := make([]int, len(vars))
			coef := make([]float64, len(vars))
			for i, v := range vars {
				idx[i] = i
				coef[i] = v.deltas[pi]
			}
			const tol = 1e-6
			if err := m.AddLE(idx, coef, target+tol); err != nil {
				return nil, err
			}
			if err := m.AddGE(idx, coef, target-tol); err != nil {
				return nil, err
			}
		}
		return m, nil
	}

	var pinned []float64
	var lastSol *ip.Solution
	totalNodes := 0
	for oi := range qs {
		m, err := buildModel(oi, pinned)
		if err != nil {
			return nil, err
		}
		sol, err := m.SolveContext(ctx)
		if err != nil {
			return nil, err
		}
		totalNodes += sol.Nodes
		lastSol = sol
		// The achieved delta-sum for this objective becomes a constraint for
		// the next one.
		achieved := 0.0
		for _, vi := range sol.Selected() {
			achieved += vars[vi].deltas[oi]
		}
		pinned = append(pinned, achieved)
	}

	res := &Result{Base: bases[0], WhatIfEvals: whatIfEvals, Candidates: len(vars), IPNodes: totalNodes}
	chosen := map[string]*cvar{}
	for _, vi := range lastSol.Selected() {
		v := vars[vi]
		chosen[v.attr] = &v
	}
	res.Objective = bases[0]
	for _, attr := range q0.Attrs {
		c := Choice{Attr: attr}
		if v := chosen[attr]; v != nil {
			c.Update = &v.spec
			c.Delta = v.deltas[0]
			res.Objective += v.deltas[0]
		}
		res.Choices = append(res.Choices, c)
	}
	res.Total = time.Since(start)
	return res, nil
}
