package howto

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hyper/internal/causal"
	"hyper/internal/hyperql"
	"hyper/internal/obs"
	"hyper/internal/relation"
)

// scored is one candidate update evaluated under every objective query
// (vals[i] is the what-if value of objective i).
type scored struct {
	attr string
	spec hyperql.UpdateSpec
	vals []float64
}

// scoreCandidates evaluates every candidate's what-if value across a worker
// pool sized by GOMAXPROCS. Candidates are independent what-if queries that
// share the artifact cache in o.Engine (views, blocks, and trained
// estimators are concurrency-safe), so scoring parallelizes without
// changing any result; the returned slice is in deterministic
// (attribute, candidate) order regardless of completion order.
//
// Scoring runs in two phases: the first candidate of each attribute is
// evaluated first (concurrently across attributes), which trains that
// attribute's estimator set exactly once, and only then are the remaining
// candidates fanned out — avoiding a thundering herd of workers all
// training the same cold estimator.
//
// ctx cancellation is observed between candidates (and inside each
// candidate's engine evaluation); o.Progress, when set, receives one
// "candidates" update per scored candidate.
func scoreCandidates(ctx context.Context, db *relation.Database, model *causal.Model, qs []*hyperql.HowTo,
	attrs []string, cands map[string][]hyperql.UpdateSpec, o Options) ([]scored, error) {
	type job struct {
		attr string
		spec hyperql.UpdateSpec
	}
	var jobs []job
	var warm, rest []int
	for _, attr := range attrs {
		for ci, spec := range cands[attr] {
			if ci == 0 {
				warm = append(warm, len(jobs))
			} else {
				rest = append(rest, len(jobs))
			}
			jobs = append(jobs, job{attr: attr, spec: spec})
		}
	}
	ctx, sp := obs.Start(ctx, "score_candidates")
	defer sp.End()
	sp.Set("candidates", len(jobs))
	sp.Set("attrs", len(attrs))
	// Cost-based scheduling: when a plan cache is attached, run low-cardinality
	// attributes first — their frequency estimators are cheapest to train and
	// their candidates complete fastest, so the pool drains the cheap work
	// while the expensive estimators warm. This reorders only the dispatch
	// queues; out is indexed by the original job order, so results (and the
	// deterministic first-error choice) are unchanged.
	if o.Engine.Plans != nil && len(qs) > 0 {
		if rank := o.Engine.Plans.AttrRank(db, qs[0].Use, attrs); rank != nil {
			byRank := func(idxs []int) {
				sort.SliceStable(idxs, func(a, b int) bool {
					return rank[jobs[idxs[a]].attr] < rank[jobs[idxs[b]].attr]
				})
			}
			byRank(warm)
			byRank(rest)
			sp.Set("cost_ordered", true)
		}
	}
	// The shard fan-out knob governs candidate-level parallelism too: a
	// how-to is shard-parallel across candidates, each candidate a what-if
	// over the shared cache. Results are independent of the pool width (the
	// output slice is in deterministic candidate order and every candidate's
	// engine evaluation reduces over the canonical shard plan).
	workers := o.Engine.Shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers > 1 {
		// Candidate-level parallelism already saturates the cores; keep the
		// engine's nested tuple-evaluation fan-out from multiplying it.
		o.Engine = o.Engine.WithShards(1)
	}
	out := make([]scored, len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool
	var scoredCount atomic.Int64
	run := func(ji int) {
		if failed.Load() {
			return
		}
		if err := ctx.Err(); err != nil {
			errs[ji] = err
			failed.Store(true)
			return
		}
		j := jobs[ji]
		vals := make([]float64, len(qs))
		for oi, q := range qs {
			v, err := evalCandidate(ctx, db, model, q, []hyperql.UpdateSpec{j.spec}, o)
			if err != nil {
				errs[ji] = err
				failed.Store(true)
				return
			}
			vals[oi] = v
		}
		out[ji] = scored{attr: j.attr, spec: j.spec, vals: vals}
		if o.Progress != nil {
			o.Progress("candidates", int(scoredCount.Add(1)), len(jobs))
		}
	}
	runPhase := func(idxs []int) {
		if len(idxs) == 0 {
			return
		}
		w := workers
		if w > len(idxs) {
			w = len(idxs)
		}
		if w <= 1 {
			for _, ji := range idxs {
				run(ji)
			}
			return
		}
		feed := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range feed {
					run(ji)
				}
			}()
		}
		for _, ji := range idxs {
			feed <- ji
		}
		close(feed)
		wg.Wait()
	}
	runPhase(warm)
	runPhase(rest)
	// First error in job order, so failures are as deterministic as results.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
