package howto

// Parity goldens for how-to evaluation: the candidate-scoring pool and the
// columnar estimator substrate must not change which updates are chosen,
// the estimated objective, or the rendered choice ordering. Result.String()
// includes every choice in attribute order plus objective and base, so one
// string pins the full outcome.

import (
	"os"
	"testing"

	"hyper/internal/causal"
	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

type howtoParityCase struct {
	name   string
	cont   bool // german-cont instead of german
	method string
	srcs   []string
	target float64 // mincost only
	golden string
}

var howtoParityCases = []howtoParityCase{
	{
		name:   "ip-four-attrs",
		method: "ip",
		srcs: []string{`
			USE German
			HOWTOUPDATE Status, Savings, Housing, CreditAmount
			TOMAXIMIZE COUNT(Credit = 1)`},
		golden: "{Status: = 3, Savings: = 3, Housing: = 2, CreditAmount: = 3} objective=1370.7 (base=528)",
	},
	{
		name:   "ip-budget-one",
		method: "ip",
		srcs: []string{`
			USE German
			HOWTOUPDATE Status, Savings, Housing, CreditAmount
			LIMIT UPDATES <= 1
			TOMAXIMIZE COUNT(Credit = 1)`},
		golden: "{Status: = 3, Savings: no change, Housing: no change, CreditAmount: no change} objective=875.686 (base=528)",
	},
	{
		name:   "brute-two-attrs",
		method: "brute",
		srcs: []string{`
			USE German
			HOWTOUPDATE Status, Housing
			LIMIT UPDATES <= 2
			TOMAXIMIZE COUNT(Credit = 1)`},
		golden: "{Status: = 3, Housing: = 2} objective=891.438 (base=528)",
	},
	{
		name:   "mincost-target",
		method: "mincost",
		target: 600,
		srcs: []string{`
			USE German
			HOWTOUPDATE Status, Housing
			TOMAXIMIZE COUNT(Credit = 1)`},
		golden: "{Status: = 2, Housing: no change} objective=641.296 (base=528)",
	},
	{
		name:   "lexicographic",
		method: "lex",
		srcs: []string{
			`USE German HOWTOUPDATE Status, Savings TOMAXIMIZE COUNT(Credit = 1)`,
			`USE German HOWTOUPDATE Status, Savings TOMAXIMIZE AVG(POST(Savings))`,
		},
		golden: "{Status: = 3, Savings: = 3} objective=1144.25 (base=528)",
	},
	{
		name:   "ip-continuous-linear",
		method: "ip",
		cont:   true,
		srcs: []string{`
			USE German
			HOWTOUPDATE CreditAmount
			LIMIT 1000 <= POST(CreditAmount) <= 3000
			TOMAXIMIZE COUNT(Credit = 1)`},
		golden: "{CreditAmount: = 2875} objective=369.179 (base=366)",
	},
}

func howtoParityEval(t testing.TB, c howtoParityCase) *Result {
	t.Helper()
	return howtoParityEvalOpts(t, c, Options{Engine: engine.Options{Seed: 7}})
}

// howtoParityEvalOpts is howtoParityEval with explicit options (the shard
// parity tests sweep the worker fan-out).
func howtoParityEvalOpts(t testing.TB, c howtoParityCase, opts Options) *Result {
	t.Helper()
	var db *relation.Database
	var model *causal.Model
	if c.cont {
		g := dataset.GermanSynContinuous(1000, 7)
		db, model = g.DB, g.Model
	} else {
		g := dataset.GermanSyn(1000, 7)
		db, model = g.DB, g.Model
	}
	qs := make([]*hyperql.HowTo, len(c.srcs))
	for i, src := range c.srcs {
		q, err := hyperql.ParseHowTo(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		qs[i] = q
	}
	var res *Result
	var err error
	switch c.method {
	case "ip":
		res, err = Evaluate(db, model, qs[0], opts)
	case "brute":
		res, err = BruteForce(db, model, qs[0], opts)
	case "mincost":
		res, err = MinimizeCost(db, model, qs[0], c.target, opts)
	case "lex":
		res, err = Lexicographic(db, model, qs, opts)
	default:
		t.Fatalf("%s: unknown method %q", c.name, c.method)
	}
	if err != nil {
		t.Fatalf("%s: evaluate: %v", c.name, err)
	}
	return res
}

func TestHowToParityGoldens(t *testing.T) {
	for _, c := range howtoParityCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := howtoParityEval(t, c)
			if got := res.String(); got != c.golden {
				t.Errorf("result = %s\n  golden = %s", got, c.golden)
			}
		})
	}
}

// TestDumpHowToGoldens prints current results for golden regeneration after
// an intentional behaviour change; run with HYPER_DUMP_GOLDENS=1.
func TestDumpHowToGoldens(t *testing.T) {
	if os.Getenv("HYPER_DUMP_GOLDENS") == "" {
		t.Skip("set HYPER_DUMP_GOLDENS=1 to dump")
	}
	for _, c := range howtoParityCases {
		res := howtoParityEval(t, c)
		t.Logf("%s: %q", c.name, res.String())
	}
}
