package howto

import (
	"context"
	"fmt"
	"math"
	"time"

	"hyper/internal/causal"
	"hyper/internal/hyperql"
	"hyper/internal/ip"
	"hyper/internal/relation"
	"hyper/internal/sqlmini"
)

// MinimizeCost solves the alternate how-to formulation of Section 4.3
// (footnote 3): instead of maximizing the aggregate subject to L1 limits,
// minimize the total normalized L1 update cost subject to the aggregate
// reaching at least target. The query's TOMAXIMIZE clause supplies the
// aggregate; its LIMIT ranges and IN lists still restrict the candidate
// updates.
//
// The IP is: minimize Σ cost_i·δ_i  s.t.  Σ Δ_i·δ_i >= target - base,
// SOS-1 per attribute, optional UPDATES budget — expressed as maximization
// of negated costs for the 0/1 solver.
func MinimizeCost(db *relation.Database, model *causal.Model, q *hyperql.HowTo, target float64, opts Options) (*Result, error) {
	return MinimizeCostContext(context.Background(), db, model, q, target, opts)
}

// MinimizeCostContext is MinimizeCost with cancellation: ctx flows into
// candidate scoring and the IP solve, so the optimization aborts mid-flight
// when cancelled or past its deadline.
func MinimizeCostContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.HowTo, target float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	start := time.Now()
	if !q.Maximize {
		return nil, fmt.Errorf("howto: MinimizeCost requires a TOMAXIMIZE objective defining the target aggregate")
	}
	cands, err := Candidates(db, q, o)
	if err != nil {
		return nil, err
	}
	base, err := baseObjective(ctx, db, model, q, o)
	if err != nil {
		return nil, err
	}
	res := &Result{Base: base}
	need := target - base

	type cvar struct {
		attr  string
		spec  hyperql.UpdateSpec
		delta float64
		cost  float64
	}
	costsByAttr := map[string][]float64{}
	for _, attr := range q.Attrs {
		costs, err := updateCosts(db, q, attr, cands[attr])
		if err != nil {
			return nil, err
		}
		costsByAttr[attr] = costs
	}
	scoredVars, err := scoreCandidates(ctx, db, model, []*hyperql.HowTo{q}, q.Attrs, cands, o)
	if err != nil {
		return nil, err
	}
	var vars []cvar
	byAttr := map[string][]int{}
	nextOfAttr := map[string]int{}
	for _, s := range scoredVars {
		ci := nextOfAttr[s.attr]
		nextOfAttr[s.attr] = ci + 1
		res.WhatIfEvals++
		vars = append(vars, cvar{attr: s.attr, spec: s.spec, delta: s.vals[0] - base, cost: costsByAttr[s.attr][ci]})
		byAttr[s.attr] = append(byAttr[s.attr], len(vars)-1)
	}
	res.Candidates = len(vars)

	m := ip.NewModel()
	for i, v := range vars {
		m.AddVar(fmt.Sprintf("%s=%d", v.attr, i), -v.cost)
	}
	for _, attr := range q.Attrs {
		if len(byAttr[attr]) > 0 {
			if err := m.AddAtMostOne(byAttr[attr]); err != nil {
				return nil, err
			}
		}
	}
	idx := make([]int, len(vars))
	deltas := make([]float64, len(vars))
	for i, v := range vars {
		idx[i] = i
		deltas[i] = v.delta
	}
	if err := m.AddGE(idx, deltas, need); err != nil {
		return nil, err
	}
	if k, ok := budget(q); ok {
		ones := make([]float64, len(vars))
		for i := range ones {
			ones[i] = 1
		}
		if err := m.AddLE(idx, ones, float64(k)); err != nil {
			return nil, err
		}
	}
	sol, err := m.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	res.IPNodes = sol.Nodes
	if sol.X == nil && need > 1e-9 {
		// Upper bound on what any feasible selection can reach, for the
		// error message: best per-attribute delta.
		best := 0.0
		for _, attr := range q.Attrs {
			b := 0.0
			for _, vi := range byAttr[attr] {
				if vars[vi].delta > b {
					b = vars[vi].delta
				}
			}
			best += b
		}
		return nil, fmt.Errorf("howto: no feasible update set reaches target %.6g (base %.6g, best achievable %.6g)",
			target, base, base+best)
	}

	chosen := map[string]*cvar{}
	for _, vi := range sol.Selected() {
		v := vars[vi]
		chosen[v.attr] = &v
	}
	res.Objective = base
	for _, attr := range q.Attrs {
		c := Choice{Attr: attr}
		if v := chosen[attr]; v != nil {
			c.Update = &v.spec
			c.Delta = v.delta
			res.Objective += v.delta
		}
		res.Choices = append(res.Choices, c)
	}
	res.Total = time.Since(start)
	return res, nil
}

// updateCosts computes the normalized L1 cost of each candidate: the mean
// absolute change it applies to the WHEN tuples (Section 4.1's cost model).
func updateCosts(db *relation.Database, q *hyperql.HowTo, attr string, specs []hyperql.UpdateSpec) ([]float64, error) {
	rel, err := db.FindRelationOf(attr)
	if err != nil {
		return nil, err
	}
	ci := rel.Schema().MustIndex(attr)
	numeric := rel.Schema().Col(ci).Kind.Numeric()
	var pres []float64
	for _, row := range rel.Rows() {
		if q.When != nil {
			ok, err := sqlmini.EvalBool(q.When, sqlmini.RowEnv{Rel: rel, Row: row})
			if err != nil {
				// WHEN may reference view-only columns; cost over all rows.
				pres = nil
				break
			}
			if !ok {
				continue
			}
		}
		pres = append(pres, row[ci].AsFloat())
	}
	if pres == nil {
		for _, row := range rel.Rows() {
			pres = append(pres, row[ci].AsFloat())
		}
	}
	costs := make([]float64, len(specs))
	for si, spec := range specs {
		if !numeric {
			// Categorical change has unit cost.
			costs[si] = 1
			continue
		}
		d := 0.0
		for _, p := range pres {
			d += math.Abs(spec.Apply(relation.Float(p)).AsFloat() - p)
		}
		if len(pres) > 0 {
			costs[si] = d / float64(len(pres))
		}
	}
	return costs, nil
}
