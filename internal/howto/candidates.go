package howto

import (
	"fmt"
	"math"

	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/relation"
	"hyper/internal/sqlmini"
)

// Candidates enumerates the permissible update set S_B for every attribute
// of the HOWTOUPDATE clause (Section 4.3). Categorical attributes yield one
// "set to v" candidate per domain value; continuous attributes are
// discretized into o.Buckets equi-width buckets over the LIMIT range (or the
// observed data range) and yield one candidate per bucket midpoint. LIMIT
// constraints filter the set: range bounds, IN lists, and the normalized L1
// distance over the WHEN tuples.
func Candidates(db *relation.Database, q *hyperql.HowTo, o Options) (map[string][]hyperql.UpdateSpec, error) {
	o = o.withDefaults()
	out := make(map[string][]hyperql.UpdateSpec, len(q.Attrs))
	for _, attr := range q.Attrs {
		rel, err := db.FindRelationOf(attr)
		if err != nil {
			return nil, fmt.Errorf("howto: %w", err)
		}
		ci := rel.Schema().MustIndex(attr)
		if !rel.Schema().Col(ci).Mutable {
			return nil, fmt.Errorf("howto: attribute %q is immutable", attr)
		}
		specs, err := candidatesFor(rel, attr, q, o)
		if err != nil {
			return nil, err
		}
		if len(specs) > o.MaxCandidatesPerAttr {
			specs = specs[:o.MaxCandidatesPerAttr]
		}
		out[attr] = specs
	}
	return out, nil
}

func candidatesFor(rel *relation.Relation, attr string, q *hyperql.HowTo, o Options) ([]hyperql.UpdateSpec, error) {
	rangeLo, rangeHi := math.Inf(-1), math.Inf(1)
	var inVals []relation.Value
	theta := math.Inf(1)
	for _, l := range q.Limits {
		if l.Attr != attr {
			continue
		}
		switch l.Kind {
		case hyperql.LimitRange:
			if !l.Lo.IsNull() {
				rangeLo = math.Max(rangeLo, l.Lo.AsFloat())
			}
			if !l.Hi.IsNull() {
				rangeHi = math.Min(rangeHi, l.Hi.AsFloat())
			}
		case hyperql.LimitIn:
			inVals = append(inVals, l.Vals...)
		case hyperql.LimitL1:
			theta = math.Min(theta, l.Theta)
		}
	}

	// Pre-update values of the WHEN tuples, for the L1 feasibility check.
	pres, err := whenValues(rel, attr, q.When)
	if err != nil {
		return nil, err
	}
	feasible := func(v relation.Value) bool {
		f := v.AsFloat()
		if v.Kind().Numeric() && (f < rangeLo || f > rangeHi) {
			return false
		}
		if !math.IsInf(theta, 1) && len(pres) > 0 {
			// Normalized L1 distance between the original value vector and
			// the update vector (Section 4.1).
			d := 0.0
			for _, p := range pres {
				d += math.Abs(v.AsFloat() - p)
			}
			if d/float64(len(pres)) > theta {
				return false
			}
		}
		return true
	}

	var specs []hyperql.UpdateSpec
	add := func(v relation.Value) {
		if feasible(v) {
			specs = append(specs, hyperql.UpdateSpec{Attr: attr, Form: hyperql.UpdateSet, Const: v})
		}
	}

	if len(inVals) > 0 {
		for _, v := range inVals {
			add(v)
		}
		return specs, nil
	}

	ci := rel.Schema().MustIndex(attr)
	kind := rel.Schema().Col(ci).Kind
	if kind == relation.KindFloat {
		lo, hi, ok := rel.MinMax(attr)
		if !ok {
			return nil, fmt.Errorf("howto: attribute %q has no numeric values", attr)
		}
		if !math.IsInf(rangeLo, -1) {
			lo = rangeLo
		}
		if !math.IsInf(rangeHi, 1) {
			hi = rangeHi
		}
		d := ml.NewDiscretizer(lo, hi, o.Buckets)
		for _, mid := range d.Midpoints() {
			add(relation.Float(mid))
		}
		return specs, nil
	}

	// Discrete attribute: one candidate per observed domain value.
	for _, v := range rel.Domain(attr) {
		if v.IsNull() {
			continue
		}
		add(v)
	}
	return specs, nil
}

// whenValues returns the pre-update float values of attr for the rows
// satisfying the WHEN predicate (all rows when nil). The predicate is
// evaluated over the base relation, which the how-to syntax guarantees
// contains the update attribute.
func whenValues(rel *relation.Relation, attr string, when hyperql.Expr) ([]float64, error) {
	ci := rel.Schema().MustIndex(attr)
	var out []float64
	for _, row := range rel.Rows() {
		if when != nil {
			ok, err := sqlmini.EvalBool(when, sqlmini.RowEnv{Rel: rel, Row: row})
			if err != nil {
				// WHEN may reference view columns absent from the base
				// relation (aggregates); fall back to all rows.
				return nil, nil
			}
			if !ok {
				continue
			}
		}
		out = append(out, row[ci].AsFloat())
	}
	return out, nil
}
