package howto

import (
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
)

func TestMinimizeCostReachesTargetCheaply(t *testing.T) {
	g := dataset.GermanSynContinuous(5000, 107)
	q := parseHT(t, `
USE German
HOWTOUPDATE CreditAmount
LIMIT 0 <= POST(CreditAmount) <= 6000
TOMAXIMIZE COUNT(Credit = 1)`)
	opts := Options{Engine: engine.Options{Seed: 1}, Buckets: 8}

	// First find what maximization achieves, then ask for a modest target.
	maxRes, err := Evaluate(g.DB, g.Model, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	target := maxRes.Base + 0.3*(maxRes.Objective-maxRes.Base)
	res, err := MinimizeCost(g.DB, g.Model, q, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective < target-1 {
		t.Errorf("objective %.1f misses target %.1f", res.Objective, target)
	}
	// The cost-minimal update must be cheaper (closer to the data) than the
	// objective-maximal one.
	var minUpd, maxUpd *hyperql.UpdateSpec
	for _, c := range res.Choices {
		if c.Attr == "CreditAmount" {
			minUpd = c.Update
		}
	}
	for _, c := range maxRes.Choices {
		if c.Attr == "CreditAmount" {
			maxUpd = c.Update
		}
	}
	if minUpd == nil || maxUpd == nil {
		t.Fatalf("updates missing: min=%v max=%v", res, maxRes)
	}
	// Higher amounts help credit, so the maximizer picks the top bucket; the
	// cost minimizer must pick a lower (cheaper) one.
	if minUpd.Const.AsFloat() >= maxUpd.Const.AsFloat() {
		t.Errorf("cost-minimal update %v should be below objective-maximal %v", minUpd.Const, maxUpd.Const)
	}
}

func TestMinimizeCostInfeasibleTarget(t *testing.T) {
	g := dataset.GermanSyn(2000, 109)
	q := parseHT(t, `USE German HOWTOUPDATE Housing TOMAXIMIZE COUNT(Credit = 1)`)
	_, err := MinimizeCost(g.DB, g.Model, q, float64(g.Rel().Len())+1000,
		Options{Engine: engine.Options{Seed: 1}})
	if err == nil {
		t.Fatal("unreachable target should fail")
	}
}

func TestMinimizeCostZeroTargetIsFree(t *testing.T) {
	g := dataset.GermanSyn(2000, 113)
	q := parseHT(t, `USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)`)
	res, err := MinimizeCost(g.DB, g.Model, q, 0, Options{Engine: engine.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Choices {
		if c.Update != nil {
			t.Errorf("target below base should require no update, got %s", c)
		}
	}
}
