package howto

import (
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

func parseHT(t *testing.T, src string) *hyperql.HowTo {
	t.Helper()
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return q
}

func TestCandidatesCategoricalDomain(t *testing.T) {
	g := dataset.GermanSyn(2000, 71)
	q := parseHT(t, `USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)`)
	cands, err := Candidates(g.DB, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands["Status"]) != 4 {
		t.Errorf("Status candidates = %d, want 4 (domain values)", len(cands["Status"]))
	}
	for _, c := range cands["Status"] {
		if c.Form != hyperql.UpdateSet {
			t.Errorf("categorical candidate should be a set update: %v", c)
		}
	}
}

func TestCandidatesContinuousBuckets(t *testing.T) {
	g := dataset.GermanSynContinuous(2000, 73)
	q := parseHT(t, `USE German HOWTOUPDATE CreditAmount LIMIT 0 <= POST(CreditAmount) <= 5000 TOMAXIMIZE COUNT(Credit = 1)`)
	cands, err := Candidates(g.DB, q, Options{Buckets: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := cands["CreditAmount"]
	if len(got) != 6 {
		t.Fatalf("candidates = %d, want 6 buckets", len(got))
	}
	// Equi-width midpoints over [0, 5000].
	for i, c := range got {
		want := 5000.0 / 6 * (float64(i) + 0.5)
		if diff := c.Const.AsFloat() - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("midpoint %d = %g, want %g", i, c.Const.AsFloat(), want)
		}
	}
}

func TestCandidatesInListOverridesDomain(t *testing.T) {
	g := dataset.GermanSyn(2000, 79)
	q := parseHT(t, `USE German HOWTOUPDATE Status LIMIT POST(Status) IN (1, 3) TOMAXIMIZE COUNT(Credit = 1)`)
	cands, err := Candidates(g.DB, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands["Status"]) != 2 {
		t.Errorf("IN list candidates = %v", cands["Status"])
	}
}

func TestCandidatesL1FiltersByWhenSet(t *testing.T) {
	g := dataset.GermanSynContinuous(2000, 83)
	// Mean |5000 - amount| over all rows is > 1500, so a tight L1 bound
	// excludes high set-points.
	q := parseHT(t, `USE German HOWTOUPDATE CreditAmount LIMIT 0 <= POST(CreditAmount) <= 8000 AND L1(PRE(CreditAmount), POST(CreditAmount)) <= 800 TOMAXIMIZE COUNT(Credit = 1)`)
	cands, err := Candidates(g.DB, q, Options{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	loose := parseHT(t, `USE German HOWTOUPDATE CreditAmount LIMIT 0 <= POST(CreditAmount) <= 8000 TOMAXIMIZE COUNT(Credit = 1)`)
	all, err := Candidates(g.DB, loose, Options{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands["CreditAmount"]) >= len(all["CreditAmount"]) {
		t.Errorf("L1 bound should prune candidates: %d vs %d",
			len(cands["CreditAmount"]), len(all["CreditAmount"]))
	}
}

func TestCandidatesErrors(t *testing.T) {
	g := dataset.GermanSyn(500, 89)
	if _, err := Candidates(g.DB, parseHT(t, `USE German HOWTOUPDATE Nope TOMAXIMIZE COUNT(Credit = 1)`), Options{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := Candidates(g.DB, parseHT(t, `USE German HOWTOUPDATE ID TOMAXIMIZE COUNT(Credit = 1)`), Options{}); err == nil {
		t.Error("immutable attribute should fail")
	}
}

func TestCandidatesCapped(t *testing.T) {
	g := dataset.GermanSynContinuous(2000, 97)
	q := parseHT(t, `USE German HOWTOUPDATE CreditAmount LIMIT 0 <= POST(CreditAmount) <= 5000 TOMAXIMIZE COUNT(Credit = 1)`)
	cands, err := Candidates(g.DB, q, Options{Buckets: 40, MaxCandidatesPerAttr: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands["CreditAmount"]) != 10 {
		t.Errorf("cap ignored: %d candidates", len(cands["CreditAmount"]))
	}
}

func TestChoiceString(t *testing.T) {
	scale := hyperql.UpdateSpec{Attr: "Price", Form: hyperql.UpdateScale, Const: relation.Float(1.1)}
	shift := hyperql.UpdateSpec{Attr: "Price", Form: hyperql.UpdateShift, Const: relation.Int(-50)}
	set := hyperql.UpdateSpec{Attr: "Color", Form: hyperql.UpdateSet, Const: relation.String("Red")}
	cases := []struct {
		c    Choice
		want string
	}{
		{Choice{Attr: "Price"}, "Price: no change"},
		{Choice{Attr: "Price", Update: &scale}, "Price: 1.1x"},
		{Choice{Attr: "Price", Update: &shift}, "Price: -50"},
		{Choice{Attr: "Color", Update: &set}, "Color: = Red"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Choice.String() = %q, want %q", got, c.want)
		}
	}
}
