package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry in Prometheus text exposition format — mount
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func writeJSONResponse(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(payload)
}
