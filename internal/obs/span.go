// Package obs is the observability substrate of the hyper stack: a
// dependency-free span tracer carried through context.Context, a per-process
// ring buffer of finished traces, and a small metrics registry (counters,
// gauges, fixed-bucket histograms) with Prometheus text exposition.
//
// Tracing follows the same contract as the engine's other execution-only
// knobs (Options.Shards, Options.Progress): it rides the context, never the
// cache identity, so a traced evaluation returns bit-identical results to an
// untraced one. When no span is in the context every instrumentation point
// is a single nil check — the package must stay cheap enough that always-on
// request tracing costs under 2% of a cold what-if (enforced by
// cmd/benchguard).
//
// The span tree is deliberately tiny: names, wall-clock durations, and a
// flat attribute bag per span. Cross-process traces are stitched by value:
// a coordinator stamps its trace id into the X-Hyper-Trace-Id request
// header, the worker returns its span tree in the response body, and the
// coordinator grafts that subtree under the dispatching span. Remote start
// timestamps are the remote process's clock — durations, not absolute
// times, are the authoritative signal in a grafted subtree.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceIDHeader is the HTTP header carrying a trace id across processes.
// Its presence on a dist request asks the receiving worker to trace the
// work and return the span tree in its response; the value ties the remote
// record back to the coordinator-side trace.
const TraceIDHeader = "X-Hyper-Trace-Id"

// Span is one timed node in a trace tree. All methods are nil-safe: code
// can instrument unconditionally and pay only a pointer check when tracing
// is off. Children may be added concurrently (shard workers and parallel
// fits share a parent span).
type Span struct {
	name  string
	start time.Time
	dur   time.Duration // set by End (or fixed when grafted)

	mu       sync.Mutex
	attrs    []attr
	children []*Span
}

type attr struct {
	key string
	val any // string, bool, int64, or float64
}

// Start opens a child span under the span carried by ctx and returns a
// derived context carrying the new span. When ctx carries no span it
// returns (ctx, nil) — the nil span's methods all no-op, so call sites need
// no branching.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.childAt(name, time.Now())
	return ContextWithSpan(ctx, sp), sp
}

type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil when ctx is untraced.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

type traceIDKey struct{}

// ContextWithTraceID stamps the owning trace's id into the context so
// transports (dist) can propagate it in request headers.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the trace id carried by ctx ("" when none).
func TraceIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// childAt appends a new child with an explicit start time.
func (s *Span) childAt(name string, at time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: at}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Child opens a child span directly (no context derivation) — for call
// sites that manage their own span handles, e.g. per-worker dispatch spans.
func (s *Span) Child(name string) *Span {
	return s.childAt(name, time.Now())
}

// ChildAt opens a child with an explicit start time; used for intervals
// observed after the fact (job queue wait: submitted -> started).
func (s *Span) ChildAt(name string, at time.Time) *Span {
	return s.childAt(name, at)
}

// End closes the span, fixing its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// EndAt closes the span at an explicit instant.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.dur = at.Sub(s.start)
}

// Set records a key/value attribute on the span. Accepted value kinds are
// string, bool, ints and floats; other types are stored via fmt.Sprint.
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	switch v := val.(type) {
	case string, bool, int64, float64:
	case int:
		val = int64(v)
	case int32:
		val = int64(v)
	case uint64:
		val = int64(v)
	case time.Duration:
		val = float64(v) / float64(time.Millisecond)
	default:
		val = fmt.Sprint(val)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, val: val})
	s.mu.Unlock()
}

// Graft attaches a rendered span tree (typically decoded from a worker
// response) as a child subtree. Start times inside sj are kept verbatim —
// they are the remote clock — and durations are trusted as recorded.
func (s *Span) Graft(sj *SpanJSON) {
	if s == nil || sj == nil {
		return
	}
	c := spanFromJSON(sj)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

func spanFromJSON(sj *SpanJSON) *Span {
	c := &Span{
		name:  sj.Name,
		start: time.UnixMicro(sj.StartUnixUs),
		dur:   time.Duration(sj.DurMs * float64(time.Millisecond)),
	}
	for _, k := range sortedKeys(sj.Attrs) {
		c.attrs = append(c.attrs, attr{key: k, val: sj.Attrs[k]})
	}
	for _, ch := range sj.Children {
		c.children = append(c.children, spanFromJSON(ch))
	}
	return c
}

// SpanJSON is the wire form of a span tree: what /v1/traces serves, what
// ?trace=1 inlines into query responses, and what dist workers return in
// partial responses.
type SpanJSON struct {
	Name        string         `json:"name"`
	StartUnixUs int64          `json:"start_unix_us"`
	DurMs       float64        `json:"dur_ms"`
	Attrs       map[string]any `json:"attrs,omitempty"`
	Children    []*SpanJSON    `json:"children,omitempty"`
}

// JSON renders the span subtree. Children appear in creation order;
// concurrent children (parallel fits, worker dispatches) therefore appear
// in scheduling order — consumers that need a stable shape should sort by
// name (see Skeleton).
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sj := &SpanJSON{
		Name:        s.name,
		StartUnixUs: s.start.UnixMicro(),
		DurMs:       float64(s.dur) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		sj.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			sj.Attrs[a.key] = a.val
		}
	}
	for _, c := range s.children {
		sj.Children = append(sj.Children, c.JSON())
	}
	return sj
}

// Trace is a root span plus identity. One trace covers one request (or one
// job run); finished traces are published to a Recorder ring.
type Trace struct {
	ID   string
	Name string
	root *Span
}

// traceSeq disambiguates ids within a process; idPrefix disambiguates
// across processes (workers and coordinator record under the same scheme).
var (
	traceSeq atomic.Uint64
	idPrefix = func() string {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00ff00ff00ff"
		}
		return hex.EncodeToString(b[:])
	}()
)

// NewTrace opens a trace with a fresh process-unique id and a running root
// span named name.
func NewTrace(name string) *Trace {
	return NewTraceWithID(fmt.Sprintf("%s-%06x", idPrefix, traceSeq.Add(1)), name)
}

// NewTraceWithID opens a trace under an externally assigned id (the dist
// worker path: the coordinator owns the id, the worker records under it).
func NewTraceWithID(id, name string) *Trace {
	return &Trace{ID: id, Name: name, root: &Span{name: name, start: time.Now()}}
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Context derives a context carrying the trace's root span and id — the
// single call a request handler needs before invoking traced work.
func (t *Trace) Context(ctx context.Context) context.Context {
	if t == nil {
		return ctx
	}
	return ContextWithTraceID(ContextWithSpan(ctx, t.root), t.ID)
}

// Skeleton renders the shape of a span tree as "name(child,child,...)"
// with children sorted lexicographically at every level. Durations, attrs
// and sibling scheduling order are erased, so two evaluations of the same
// query produce the same skeleton at any shard fan-out — the property the
// trace golden tests pin down.
func Skeleton(sj *SpanJSON) string {
	if sj == nil {
		return ""
	}
	if len(sj.Children) == 0 {
		return sj.Name
	}
	parts := make([]string, len(sj.Children))
	for i, c := range sj.Children {
		parts[i] = Skeleton(c)
	}
	sort.Strings(parts)
	return sj.Name + "(" + strings.Join(parts, ",") + ")"
}

func sortedKeys(m map[string]any) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
