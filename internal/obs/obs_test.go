package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndContext(t *testing.T) {
	tr := NewTrace("req")
	ctx := tr.Context(context.Background())
	if got := TraceIDFromContext(ctx); got != tr.ID {
		t.Fatalf("trace id in ctx = %q, want %q", got, tr.ID)
	}
	ctx2, sp := Start(ctx, "prepare")
	sp.Set("rows", 100)
	sp.Set("cached", true)
	_, child := Start(ctx2, "view")
	child.End()
	sp.End()
	tr.Finish()

	root := tr.Root().JSON()
	if root.Name != "req" || len(root.Children) != 1 {
		t.Fatalf("unexpected root: %+v", root)
	}
	prep := root.Children[0]
	if prep.Name != "prepare" || prep.Attrs["rows"] != int64(100) || prep.Attrs["cached"] != true {
		t.Fatalf("unexpected prepare span: %+v", prep)
	}
	if len(prep.Children) != 1 || prep.Children[0].Name != "view" {
		t.Fatalf("unexpected children: %+v", prep.Children)
	}
	if got := Skeleton(root); got != "req(prepare(view))" {
		t.Fatalf("skeleton = %q", got)
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatalf("expected no-op start, got span=%v", sp)
	}
	// All nil-span methods must be safe.
	sp.Set("k", 1)
	sp.End()
	sp.Child("c").End()
	sp.Graft(&SpanJSON{Name: "g"})
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTrace("root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tr.Root().Child("fit")
			c.Set("i", 1)
			c.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Root().JSON().Children); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

func TestGraft(t *testing.T) {
	tr := NewTrace("coord")
	remote := &SpanJSON{
		Name: "eval", StartUnixUs: time.Now().UnixMicro(), DurMs: 12.5,
		Attrs:    map[string]any{"shards": float64(10)},
		Children: []*SpanJSON{{Name: "fit", DurMs: 3}},
	}
	w := tr.Root().Child("worker_eval")
	w.Graft(remote)
	w.End()
	tr.Finish()
	root := tr.Root().JSON()
	ev := root.Children[0].Children[0]
	if ev.Name != "eval" || ev.DurMs != 12.5 || len(ev.Children) != 1 {
		t.Fatalf("grafted span mangled: %+v", ev)
	}
	if got := Skeleton(root); got != "coord(worker_eval(eval(fit)))" {
		t.Fatalf("skeleton = %q", got)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 3; i++ {
		tr := NewTrace("q")
		tr.Finish()
		r.Record(tr)
	}
	if r.Recorded() != 3 {
		t.Fatalf("recorded = %d", r.Recorded())
	}
	list := r.List()
	if len(list) != 2 {
		t.Fatalf("ring holds %d, want 2", len(list))
	}
	// Newest first.
	if _, ok := r.Get(list[0].ID); !ok {
		t.Fatalf("get %q failed", list[0].ID)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("get of unknown id succeeded")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket le=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // bucket le=100
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-545) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v, want in (0,1]", p50)
	}
	if p95 := h.Quantile(0.95); p95 <= 10 || p95 > 100 {
		t.Fatalf("p95 = %v, want in (10,100]", p95)
	}
	// Overflow values clamp to the largest finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(99)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1", got)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hyper_test_events_total", "test events")
	c.Add(3)
	r.GaugeFunc("hyper_test_live", "live things", func() float64 { return 2.5 })
	vec := r.CounterVec("hyper_test_requeues_total", "requeues", "worker", "reason")
	vec.With("w1", "dial_fail").Inc()
	vec.With("w0", "frame_missing").Add(2)
	h := r.Histogram("hyper_test_latency_ms", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP hyper_test_events_total test events",
		"# TYPE hyper_test_events_total counter",
		"hyper_test_events_total 3",
		"hyper_test_live 2.5",
		`hyper_test_requeues_total{worker="w0",reason="frame_missing"} 2`,
		`hyper_test_requeues_total{worker="w1",reason="dial_fail"} 1`,
		`hyper_test_latency_ms_bucket{le="1"} 1`,
		`hyper_test_latency_ms_bucket{le="10"} 2`,
		`hyper_test_latency_ms_bucket{le="+Inf"} 2`,
		"hyper_test_latency_ms_sum 5.5",
		"hyper_test_latency_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted series order within the vec family.
	if strings.Index(out, `worker="w0"`) > strings.Index(out, `worker="w1"`) {
		t.Fatalf("vec series not sorted:\n%s", out)
	}
	if problems := r.Lint(); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hyper_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("hyper_dup_total", "x")
}

func TestLintCatchesSchemeViolations(t *testing.T) {
	r := NewRegistry()
	r.Counter("other_events_total", "no prefix")
	r.CounterFunc("hyper_bad_counter", "counter without _total suffix", func() float64 { return 0 })
	r.GaugeFunc("hyper_nohelp", "", func() float64 { return 0 })
	problems := r.Lint()
	if len(problems) != 3 {
		t.Fatalf("lint found %d problems, want 3: %v", len(problems), problems)
	}
}
