package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metric families and renders them in Prometheus
// text exposition format. Families expose in registration order; series
// within a family expose in sorted label order, so scrapes are
// deterministic. Registration of a duplicate or malformed name panics —
// metric names are program constants and a collision is a programming
// error (cmd/metriclint exercises exactly this at CI time via Lint).
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family
}

type family struct {
	name, help, typ string // typ: counter | gauge | histogram
	labels          []string

	counter   *Counter
	counterFn func() float64
	gaugeFn   func() float64
	hist      *Histogram
	vec       *CounterVec
	gaugeVec  *GaugeVec
	histVec   *HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func (r *Registry) register(f *family) {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n (n < 0 is ignored).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic gauges (dist coordinator, shard
// gauges, jobs terminal counts) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", counterFn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	labels []string
	mu     sync.RWMutex
	series map[string]*Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, series: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, typ: "counter", labels: labels, vec: v})
	return v
}

const labelSep = "\x1f"

// With returns the counter for the given label values (len must match the
// registered label names), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter vec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	c := v.series[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.series[key]; c == nil {
		c = &Counter{}
		v.series[key] = c
	}
	return c
}

// Each calls fn for every live series in sorted key order.
func (v *CounterVec) Each(fn func(values []string, c *Counter)) {
	if v == nil {
		return
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(strings.Split(k, labelSep), v.series[k])
	}
	v.mu.RUnlock()
}

// GaugeVec is a family of settable gauges keyed by label values — the shape
// behind constant info series like hyper_build_info{go_version="..."} 1.
type GaugeVec struct {
	labels []string
	mu     sync.RWMutex
	series map[string]float64
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{labels: labels, series: make(map[string]float64)}
	r.register(&family{name: name, help: help, typ: "gauge", labels: labels, gaugeVec: v})
	return v
}

// Set sets the gauge for the given label values (len must match the
// registered label names), creating the series on first use.
func (v *GaugeVec) Set(val float64, values ...string) {
	if v == nil {
		return
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: gauge vec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	v.series[key] = val
	v.mu.Unlock()
}

// Each calls fn for every live series in sorted key order.
func (v *GaugeVec) Each(fn func(values []string, val float64)) {
	if v == nil {
		return
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(strings.Split(k, labelSep), v.series[k])
	}
	v.mu.RUnlock()
}

// Histogram is a fixed-bucket histogram: cumulative-style exposition with
// le upper bounds plus an implicit +Inf bucket, constant memory regardless
// of traffic. Observations and scrapes are lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implied
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// LatencyBucketsMs is the default bucket layout for request/stage latencies
// in milliseconds: roughly exponential from sub-millisecond to ten seconds.
var LatencyBucketsMs = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// CountBuckets is the default layout for volume-shaped observations (tuples
// evaluated, shards run, fits): decade steps from 1 to 10M.
var CountBuckets = []float64{1, 10, 100, 1000, 10000, 100000, 1e6, 1e7}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBucketsMs
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Histogram registers and returns a histogram with the given upper bounds
// (nil uses LatencyBucketsMs).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the covering bucket. Values in the +Inf bucket report the largest
// finite bound — an estimate, but a constant-memory one, which is the point
// of the histogram over the sliding-window-and-sort it replaced.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	labels []string
	bounds []float64
	mu     sync.RWMutex
	series map[string]*Histogram
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = LatencyBucketsMs
	}
	v := &HistogramVec{labels: labels, bounds: bounds, series: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, typ: "histogram", labels: labels, histVec: v})
	return v
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram vec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h := v.series[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.series[key]; h == nil {
		h = newHistogram(v.bounds)
		v.series[key] = h
	}
	return h
}

// Each calls fn for every live series in sorted key order.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	if v == nil {
		return
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(strings.Split(k, labelSep), v.series[k])
	}
	v.mu.RUnlock()
}

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(float64(f.counter.Value())))
		case f.counterFn != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.counterFn()))
		case f.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.gaugeFn()))
		case f.hist != nil:
			writeHistogram(&b, f.name, "", f.hist)
		case f.vec != nil:
			f.vec.Each(func(values []string, c *Counter) {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, labelPairs(f.labels, values), formatValue(float64(c.Value())))
			})
		case f.gaugeVec != nil:
			f.gaugeVec.Each(func(values []string, val float64) {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, labelPairs(f.labels, values), formatValue(val))
			})
		case f.histVec != nil:
			f.histVec.Each(func(values []string, h *Histogram) {
				writeHistogram(&b, f.name, labelPairs(f.labels, values), h)
			})
		}
	}
	io.WriteString(w, b.String())
}

func labelPairs(names, values []string) string {
	parts := make([]string, len(names))
	for i := range names {
		// %q escaping (backslash, quote, \n) matches the exposition format's
		// label value escaping rules.
		parts[i] = fmt.Sprintf("%s=%q", names[i], values[i])
	}
	return strings.Join(parts, ",")
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, histLabelPrefix(labels), formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, histLabelPrefix(labels), cum)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

func histLabelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// Lint checks every registered family against the stack's naming scheme and
// returns human-readable problems (empty means clean). Enforced in CI by
// cmd/metriclint: all names carry the hyper_ prefix, counters end in
// _total, help strings are present, and vec label names are valid.
func (r *Registry) Lint() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var problems []string
	for _, f := range r.families {
		if !strings.HasPrefix(f.name, "hyper_") {
			problems = append(problems, fmt.Sprintf("%s: missing hyper_ prefix", f.name))
		}
		if f.typ == "counter" && !strings.HasSuffix(f.name, "_total") {
			problems = append(problems, fmt.Sprintf("%s: counter name must end in _total", f.name))
		}
		if strings.TrimSpace(f.help) == "" {
			problems = append(problems, fmt.Sprintf("%s: missing help string", f.name))
		}
		for _, l := range f.labels {
			if !nameRE.MatchString(l) {
				problems = append(problems, fmt.Sprintf("%s: invalid label name %q", f.name, l))
			}
		}
	}
	return problems
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}
