package obs

import (
	"context"
	"net/url"
	"testing"
	"time"
)

// TestMeterNilSafe pins the contract that every meter method is a no-op on
// nil: instrumentation points charge unconditionally, so an unmetered
// context must cost exactly one nil check and never panic.
func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.SetShape("s", "k", "fp", "text")
	m.AddStage("view", time.Millisecond)
	m.AddTuples(1)
	m.AddShards(1)
	m.SetPlanShards(1)
	m.AddFitTrained()
	m.AddFitCached()
	m.AddIPNodes(1)
	m.AddCandidates(1)
	m.AddWhatIfEvals(1)
	m.AddFrameBytes(1)
	m.AddDistBytesShipped(1)
	m.AddDistBytesReceived(1)
	m.AddRemoteShards(1)
	m.AddRetries(1)
	m.Fold(&MeterJSON{ShardsRun: 3})
	if m.JSON() != nil {
		t.Error("nil meter should snapshot to nil")
	}
	if s, k, fp, txt := m.Shape(); s != "" || k != "" || fp != "" || txt != "" {
		t.Error("nil meter should report empty shape")
	}
	if MeterFromContext(context.Background()) != nil {
		t.Error("bare context should carry no meter")
	}
	var mj *MeterJSON
	mj.Add(&MeterJSON{Retries: 1})
	if !mj.Reconciled() {
		t.Error("nil MeterJSON should be vacuously reconciled")
	}
}

// TestMeterChargesAndJSON pins the snapshot: counters accumulate, plan
// shards keep a max, stages sum across calls.
func TestMeterChargesAndJSON(t *testing.T) {
	m := NewMeter()
	m.SetShape("sess", "whatif", "abcd", "USE T ...")
	m.AddTuples(100)
	m.AddTuples(50)
	m.AddShards(2)
	m.SetPlanShards(4)
	m.SetPlanShards(2) // lower ask must not shrink the recorded plan
	m.AddFitTrained()
	m.AddFitCached()
	m.AddFitCached()
	m.AddStage("eval", 2*time.Millisecond)
	m.AddStage("eval", 3*time.Millisecond)
	mj := m.JSON()
	if mj.TuplesEvaluated != 150 || mj.ShardsRun != 2 || mj.PlanShards != 4 {
		t.Errorf("counters = %+v", mj)
	}
	if mj.FitsTrained != 1 || mj.FitsCached != 2 {
		t.Errorf("fits = %+v", mj)
	}
	if got := mj.StagesMs["eval"]; got < 4.9 || got > 5.1 {
		t.Errorf("eval stage = %v ms, want 5", got)
	}
	if s, k, fp, txt := m.Shape(); s != "sess" || k != "whatif" || fp != "abcd" || txt != "USE T ..." {
		t.Errorf("shape = %q %q %q %q", s, k, fp, txt)
	}
}

// TestMeterFoldAndReconcile pins the cross-process ledger: folded worker
// meters land in worker_* fields, and Reconciled compares them against the
// coordinator's dispatch ledger — exact when no retries happened, waived
// the moment one did.
func TestMeterFoldAndReconcile(t *testing.T) {
	m := NewMeter()
	// Coordinator side: 3 shards dispatched in two requests of 60 + 40 bytes.
	m.AddRemoteShards(2)
	m.AddRemoteShards(1)
	m.AddDistBytesShipped(60)
	m.AddDistBytesShipped(40)
	// Worker side, as returned in the two responses.
	m.Fold(&MeterJSON{ShardsRun: 2, TuplesEvaluated: 200, DistBytesReceived: 60,
		StagesMs: map[string]float64{"eval": 1.5}})
	m.Fold(&MeterJSON{ShardsRun: 1, TuplesEvaluated: 100, DistBytesReceived: 40, FitsTrained: 2})

	mj := m.JSON()
	if mj.Workers != 2 || mj.WorkerShardsRun != 3 || mj.WorkerTuples != 300 ||
		mj.WorkerBytes != 100 || mj.WorkerFitsTrained != 2 {
		t.Errorf("worker ledger = %+v", mj)
	}
	if mj.StagesMs["worker_eval"] == 0 {
		t.Error("worker stage times should fold in under a worker_ prefix")
	}
	if mj.ShardsRun != 0 {
		t.Error("folding must not leak into the coordinator's own ShardsRun")
	}
	if !mj.Reconciled() {
		t.Errorf("retry-free ledgers should reconcile: %+v", mj)
	}

	// An extra dispatched shard with no worker report breaks reconciliation...
	m.AddRemoteShards(1)
	if m.JSON().Reconciled() {
		t.Error("mismatched ledgers should not reconcile")
	}
	// ...until a retry waives the invariant (double counting is legitimate).
	m.AddRetries(1)
	if !m.JSON().Reconciled() {
		t.Error("retries should waive the reconciliation invariant")
	}
}

// TestMeterJSONAdd pins the usage-table aggregation: counters sum,
// PlanShards keeps the max, stage maps merge.
func TestMeterJSONAdd(t *testing.T) {
	a := &MeterJSON{TuplesEvaluated: 10, ShardsRun: 1, PlanShards: 2, Retries: 1,
		StagesMs: map[string]float64{"view": 1}}
	a.Add(&MeterJSON{TuplesEvaluated: 5, ShardsRun: 4, PlanShards: 4,
		StagesMs: map[string]float64{"view": 2, "eval": 3}})
	a.Add(nil) // nil-safe
	if a.TuplesEvaluated != 15 || a.ShardsRun != 5 || a.PlanShards != 4 || a.Retries != 1 {
		t.Errorf("sum = %+v", a)
	}
	if a.StagesMs["view"] != 3 || a.StagesMs["eval"] != 3 {
		t.Errorf("stages = %v", a.StagesMs)
	}
	var b MeterJSON
	b.Add(a)
	if b.StagesMs["view"] != 3 {
		t.Error("Add into a zero vector should allocate the stage map")
	}
}

// TestParseTraceFilter table-tests the ?kind= / ?min_ms= / ?limit= parsing,
// including the 400-worthy malformed values.
func TestParseTraceFilter(t *testing.T) {
	cases := []struct {
		query   string
		want    TraceFilter
		wantErr bool
	}{
		{query: "", want: TraceFilter{}},
		{query: "kind=whatif", want: TraceFilter{Kind: "whatif"}},
		{query: "min_ms=1.5", want: TraceFilter{MinMs: 1.5}},
		{query: "limit=3", want: TraceFilter{Limit: 3}},
		{query: "kind=howto&min_ms=10&limit=2", want: TraceFilter{Kind: "howto", MinMs: 10, Limit: 2}},
		{query: "min_ms=-1", wantErr: true},
		{query: "min_ms=abc", wantErr: true},
		{query: "limit=-2", wantErr: true},
		{query: "limit=1.5", wantErr: true},
		{query: "limit=x", wantErr: true},
	}
	for _, c := range cases {
		v, err := url.ParseQuery(c.query)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ParseTraceFilter(v)
		if c.wantErr {
			if err == nil {
				t.Errorf("%q: want error, got %+v", c.query, f)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.query, err)
			continue
		}
		if f != c.want {
			t.Errorf("%q: filter = %+v, want %+v", c.query, f, c.want)
		}
	}
}

// TestListFiltered pins the filtered listing semantics on a live recorder:
// kind matches exactly, min_ms drops fast traces, limit caps newest-first.
func TestListFiltered(t *testing.T) {
	rec := NewRecorder(8)
	slow := NewTrace("whatif")
	time.Sleep(10 * time.Millisecond)
	slow.Finish()
	rec.Record(slow)
	for i := 0; i < 3; i++ {
		tr := NewTrace("howto")
		tr.Finish()
		rec.Record(tr)
	}

	if got := len(rec.ListFiltered(TraceFilter{})); got != 4 {
		t.Errorf("unfiltered = %d traces, want 4", got)
	}
	byKind := rec.ListFiltered(TraceFilter{Kind: "whatif"})
	if len(byKind) != 1 || byKind[0].ID != slow.ID {
		t.Errorf("kind filter = %+v", byKind)
	}
	if got := rec.ListFiltered(TraceFilter{MinMs: 5}); len(got) != 1 || got[0].ID != slow.ID {
		t.Errorf("min_ms filter = %+v", got)
	}
	limited := rec.ListFiltered(TraceFilter{Limit: 2})
	if len(limited) != 2 {
		t.Fatalf("limit filter = %d traces, want 2", len(limited))
	}
	if limited[0].Name != "howto" {
		t.Error("limit should keep the newest traces")
	}
	if got := rec.ListFiltered(TraceFilter{Kind: "nosuch"}); len(got) != 0 {
		t.Errorf("unknown kind = %+v", got)
	}
}
