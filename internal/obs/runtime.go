package obs

import "runtime"

// RegisterRuntimeMetrics adds the process-health gauges every hyper role
// exposes (coordinator, worker): goroutine count, live heap bytes, and a
// constant build-info series carrying the Go version as a label. Gauges read
// at scrape time; ReadMemStats is cheap at scrape cadence.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("hyper_go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("hyper_go_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeVec("hyper_build_info", "Constant 1; labels carry build metadata.",
		"go_version").Set(1, runtime.Version())
}
