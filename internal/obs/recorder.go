package obs

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// TraceJSON is a finished trace in wire form: identity plus the rendered
// span tree. Recorders store this immutable form, so serving a trace is a
// plain encode with no locking against live spans.
type TraceJSON struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurMs float64   `json:"dur_ms"`
	Spans int       `json:"spans"`
	Root  *SpanJSON `json:"root,omitempty"`
}

// TraceSummary is the listing form (no span tree).
type TraceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurMs float64   `json:"dur_ms"`
	Spans int       `json:"spans"`
}

// Recorder ring-buffers the most recent finished traces of a process.
// Capacity is fixed at construction, so memory stays constant under
// sustained traffic; the oldest trace is evicted when the ring wraps.
type Recorder struct {
	mu       sync.Mutex
	ring     []*TraceJSON
	next     int
	recorded uint64
}

// DefaultTraceCapacity is the per-process trace ring size.
const DefaultTraceCapacity = 256

// NewRecorder returns a Recorder holding up to capacity traces
// (<= 0 uses DefaultTraceCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Recorder{ring: make([]*TraceJSON, 0, capacity)}
}

// Record renders t and publishes it into the ring. The trace must be
// finished (no spans still being appended) — typically called right after
// Trace.Finish.
func (r *Recorder) Record(t *Trace) *TraceJSON {
	if r == nil || t == nil {
		return nil
	}
	root := t.root.JSON()
	tj := &TraceJSON{
		ID:    t.ID,
		Name:  t.Name,
		Start: t.root.start,
		DurMs: root.DurMs,
		Spans: countSpans(root),
		Root:  root,
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, tj)
	} else {
		r.ring[r.next] = tj
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.recorded++
	r.mu.Unlock()
	return tj
}

func countSpans(sj *SpanJSON) int {
	if sj == nil {
		return 0
	}
	n := 1
	for _, c := range sj.Children {
		n += countSpans(c)
	}
	return n
}

// List returns summaries of the buffered traces, newest first.
func (r *Recorder) List() []TraceSummary {
	return r.ListFiltered(TraceFilter{})
}

// TraceFilter narrows a trace listing: Kind matches the trace name exactly
// ("" matches all), MinMs drops traces faster than the threshold, and Limit
// caps the number returned (0 = all). Newest traces always win the cap.
type TraceFilter struct {
	Kind  string
	MinMs float64
	Limit int
}

// ParseTraceFilter reads the ?kind= / ?min_ms= / ?limit= query parameters,
// returning an error (suitable for a 400) on malformed or negative values.
func ParseTraceFilter(q url.Values) (TraceFilter, error) {
	f := TraceFilter{Kind: q.Get("kind")}
	if raw := q.Get("min_ms"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			return f, fmt.Errorf("invalid min_ms %q: want a non-negative number", raw)
		}
		f.MinMs = v
	}
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return f, fmt.Errorf("invalid limit %q: want a non-negative integer", raw)
		}
		f.Limit = v
	}
	return f, nil
}

// ListFiltered returns summaries of the buffered traces matching f, newest
// first.
func (r *Recorder) ListFiltered(f TraceFilter) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.ring))
	// The ring is ordered oldest..newest starting at next (once wrapped);
	// walk it backwards so the freshest trace leads.
	for i := 0; i < len(r.ring); i++ {
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
		idx := (r.next + len(r.ring) - 1 - i) % len(r.ring)
		tj := r.ring[idx]
		if f.Kind != "" && tj.Name != f.Kind {
			continue
		}
		if f.MinMs > 0 && tj.DurMs < f.MinMs {
			continue
		}
		out = append(out, TraceSummary{ID: tj.ID, Name: tj.Name, Start: tj.Start, DurMs: tj.DurMs, Spans: tj.Spans})
	}
	return out
}

// Get returns the buffered trace with the given id.
func (r *Recorder) Get(id string) (*TraceJSON, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tj := range r.ring {
		if tj.ID == id {
			return tj, true
		}
	}
	return nil, false
}

// Recorded returns the number of traces ever recorded (not just buffered).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// ListHandler serves the trace listing as {"traces": [...]}, honoring the
// ?kind= / ?min_ms= / ?limit= filters (400 on malformed values).
func (r *Recorder) ListHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f, err := ParseTraceFilter(req.URL.Query())
		if err != nil {
			writeJSONResponse(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSONResponse(w, http.StatusOK, map[string]any{"traces": r.ListFiltered(f)})
	})
}

// GetHandler serves one trace by the {id} path value.
func (r *Recorder) GetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		tj, ok := r.Get(id)
		if !ok {
			writeJSONResponse(w, http.StatusNotFound, map[string]string{"error": "unknown trace " + id})
			return
		}
		writeJSONResponse(w, http.StatusOK, tj)
	})
}
