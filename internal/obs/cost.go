package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates the per-query cost vector: wall time per pipeline stage,
// tuples evaluated, shards run, estimator fits split by cache hit versus
// actual training, IP solver nodes, how-to candidate volume, bytes moved by
// the distribution layer, and retries. It follows the same contract as Span:
// it rides the context (ContextWithMeter / MeterFromContext), never cache
// identity, every method is nil-safe so instrumentation points cost one
// pointer check when metering is off, and a metered evaluation returns
// bit-identical results to an unmetered one (enforced <2% overhead by
// cmd/benchguard, like tracing).
//
// In dist mode each worker runs its request under a fresh Meter and returns
// it in the eval/fit response; the coordinator Folds the child meters into
// the query's vector, mirroring the span Graft. The fold keeps worker-
// reported totals in separate worker_* fields rather than summing them into
// the coordinator's own counters, which is what makes the reconciliation
// invariant checkable: when Retries == 0, the coordinator-side dispatch
// ledger (remote_shards, dist_bytes_shipped) must equal the summed worker-
// reported ledger (worker_shards_run, worker_bytes_received) exactly.
type Meter struct {
	mu        sync.Mutex
	session   string
	kind      string
	shape     string // normalized shape fingerprint (hyperql.Fingerprint)
	shapeText string // normalized shape text (hyperql.Shape), for display
	stages    map[string]time.Duration

	tuples      atomic.Uint64
	shards      atomic.Uint64
	planShards  atomic.Uint64
	fitsTrained atomic.Uint64
	fitsCached  atomic.Uint64
	ipNodes     atomic.Uint64
	candidates  atomic.Uint64
	whatifEvals atomic.Uint64

	// MVCC append accounting: strided digest shards fitted over new rows
	// vs. sealed shards reused untouched. The reuse counter is the
	// observable half of the "appends never refit" contract.
	appendShardsFit    atomic.Uint64
	appendShardsReused atomic.Uint64

	frameBytes        atomic.Uint64 // frame snapshot bytes shipped to workers
	distBytesShipped  atomic.Uint64 // eval/fit request bytes posted to workers
	distBytesReceived atomic.Uint64 // eval/fit request bytes a worker received
	remoteShards      atomic.Uint64 // shards dispatched remotely (coordinator ledger)
	retries           atomic.Uint64

	// Folded worker-reported totals (see Fold).
	workers         atomic.Uint64
	workerShards    atomic.Uint64
	workerTuples    atomic.Uint64
	workerFits      atomic.Uint64
	workerFitsCache atomic.Uint64
	workerBytes     atomic.Uint64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

type meterKey struct{}

// ContextWithMeter returns a context carrying m as the current query meter.
func ContextWithMeter(ctx context.Context, m *Meter) context.Context {
	return context.WithValue(ctx, meterKey{}, m)
}

// MeterFromContext returns the current meter, or nil when ctx is unmetered.
func MeterFromContext(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}

// SetShape stamps the query identity the serving layer aggregates under:
// session name, query kind ("whatif", "howto", ...), the normalized shape
// fingerprint (see hyperql.Fingerprint), and the normalized shape text
// (hyperql.Shape) surfaced as the usage table's display example.
func (m *Meter) SetShape(session, kind, shape, text string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.session, m.kind, m.shape, m.shapeText = session, kind, shape, text
	m.mu.Unlock()
}

// Shape returns the stamped query identity ("" fields when unstamped).
func (m *Meter) Shape() (session, kind, shape, text string) {
	if m == nil {
		return "", "", "", ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.session, m.kind, m.shape, m.shapeText
}

// AddStage accumulates wall time under a stage label ("view", "train",
// "eval", ...). Stages sum across calls, so a how-to's many candidate
// what-ifs charge one combined eval figure.
func (m *Meter) AddStage(name string, d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	m.mu.Lock()
	if m.stages == nil {
		m.stages = make(map[string]time.Duration, 8)
	}
	m.stages[name] += d
	m.mu.Unlock()
}

func add(c *atomic.Uint64, n int) {
	if n > 0 {
		c.Add(uint64(n))
	}
}

// AddTuples charges n evaluated tuples.
func (m *Meter) AddTuples(n int) {
	if m != nil {
		add(&m.tuples, n)
	}
}

// AddShards charges n executed plan shards.
func (m *Meter) AddShards(n int) {
	if m != nil {
		add(&m.shards, n)
	}
}

// SetPlanShards records the canonical plan size (kept as a max across
// calls: a how-to evaluates many candidate what-ifs over the same plan).
func (m *Meter) SetPlanShards(n int) {
	if m == nil || n <= 0 {
		return
	}
	for {
		old := m.planShards.Load()
		if uint64(n) <= old || m.planShards.CompareAndSwap(old, uint64(n)) {
			return
		}
	}
}

// AddFitTrained charges one single-flight estimator training.
func (m *Meter) AddFitTrained() {
	if m != nil {
		m.fitsTrained.Add(1)
	}
}

// AddFitCached charges one estimator cache hit.
func (m *Meter) AddFitCached() {
	if m != nil {
		m.fitsCached.Add(1)
	}
}

// AddAppendShards charges a session append's digest work split: fitted
// counts shards that scanned new rows, reused counts sealed shards left
// untouched.
func (m *Meter) AddAppendShards(fitted, reused int) {
	if m != nil {
		add(&m.appendShardsFit, fitted)
		add(&m.appendShardsReused, reused)
	}
}

// AddIPNodes charges n branch-and-bound nodes.
func (m *Meter) AddIPNodes(n int) {
	if m != nil {
		add(&m.ipNodes, n)
	}
}

// AddCandidates charges n how-to candidates enumerated.
func (m *Meter) AddCandidates(n int) {
	if m != nil {
		add(&m.candidates, n)
	}
}

// AddWhatIfEvals charges n candidate what-if evaluations.
func (m *Meter) AddWhatIfEvals(n int) {
	if m != nil {
		add(&m.whatifEvals, n)
	}
}

// AddFrameBytes charges n frame snapshot bytes shipped to a worker.
func (m *Meter) AddFrameBytes(n int) {
	if m != nil {
		add(&m.frameBytes, n)
	}
}

// AddDistBytesShipped charges n request body bytes posted to a worker.
func (m *Meter) AddDistBytesShipped(n int) {
	if m != nil {
		add(&m.distBytesShipped, n)
	}
}

// AddDistBytesReceived charges n request body bytes received from a
// coordinator (the worker-side mirror of AddDistBytesShipped).
func (m *Meter) AddDistBytesReceived(n int) {
	if m != nil {
		add(&m.distBytesReceived, n)
	}
}

// AddRemoteShards charges n shards dispatched to (and answered by) a remote
// worker — the coordinator-side ledger of the reconciliation invariant.
func (m *Meter) AddRemoteShards(n int) {
	if m != nil {
		add(&m.remoteShards, n)
	}
}

// AddRetries charges n RPC retries.
func (m *Meter) AddRetries(n int) {
	if m != nil {
		add(&m.retries, n)
	}
}

// Fold merges a worker-reported meter into this query's vector, mirroring
// Span.Graft. The child's own-execution counters accumulate into worker_*
// fields (kept separate from the coordinator's ledger so the two sides stay
// comparable); child stage times fold in under a "worker_" prefix.
func (m *Meter) Fold(mj *MeterJSON) {
	if m == nil || mj == nil {
		return
	}
	m.workers.Add(1)
	add(&m.workerShards, int(mj.ShardsRun))
	add(&m.workerTuples, int(mj.TuplesEvaluated))
	add(&m.workerFits, int(mj.FitsTrained))
	add(&m.workerFitsCache, int(mj.FitsCached))
	add(&m.workerBytes, int(mj.DistBytesReceived))
	for name, ms := range mj.StagesMs {
		m.AddStage("worker_"+name, time.Duration(ms*float64(time.Millisecond)))
	}
}

// MeterJSON is the wire and aggregation form of a cost vector: what dist
// workers return in eval/fit responses, what the slow-query log and the
// usage table carry, and what /v1/usage serves. Zero fields are omitted so
// a local-only query renders compactly.
type MeterJSON struct {
	StagesMs          map[string]float64 `json:"stages_ms,omitempty"`
	TuplesEvaluated   uint64             `json:"tuples_evaluated,omitempty"`
	ShardsRun         uint64             `json:"shards_run,omitempty"`
	PlanShards        uint64             `json:"plan_shards,omitempty"`
	FitsTrained       uint64             `json:"fits_trained,omitempty"`
	FitsCached        uint64             `json:"fits_cached,omitempty"`
	AppendShardsFit   uint64             `json:"append_shards_fitted,omitempty"`
	AppendShardsReuse uint64             `json:"append_shards_reused,omitempty"`
	IPNodes           uint64             `json:"ip_nodes,omitempty"`
	HowToCandidates   uint64             `json:"howto_candidates,omitempty"`
	WhatIfEvals       uint64             `json:"whatif_evals,omitempty"`
	FrameBytesShipped uint64             `json:"frame_bytes_shipped,omitempty"`
	DistBytesShipped  uint64             `json:"dist_bytes_shipped,omitempty"`
	DistBytesReceived uint64             `json:"dist_bytes_received,omitempty"`
	RemoteShards      uint64             `json:"remote_shards,omitempty"`
	Retries           uint64             `json:"retries,omitempty"`
	Workers           uint64             `json:"workers,omitempty"`
	WorkerShardsRun   uint64             `json:"worker_shards_run,omitempty"`
	WorkerTuples      uint64             `json:"worker_tuples,omitempty"`
	WorkerFitsTrained uint64             `json:"worker_fits_trained,omitempty"`
	WorkerFitsCached  uint64             `json:"worker_fits_cached,omitempty"`
	WorkerBytes       uint64             `json:"worker_bytes_received,omitempty"`
}

// JSON snapshots the meter. Safe to call while charges continue, but the
// snapshot is only a consistent total once the query has finished.
func (m *Meter) JSON() *MeterJSON {
	if m == nil {
		return nil
	}
	mj := &MeterJSON{
		TuplesEvaluated:   m.tuples.Load(),
		ShardsRun:         m.shards.Load(),
		PlanShards:        m.planShards.Load(),
		FitsTrained:       m.fitsTrained.Load(),
		FitsCached:        m.fitsCached.Load(),
		AppendShardsFit:   m.appendShardsFit.Load(),
		AppendShardsReuse: m.appendShardsReused.Load(),
		IPNodes:           m.ipNodes.Load(),
		HowToCandidates:   m.candidates.Load(),
		WhatIfEvals:       m.whatifEvals.Load(),
		FrameBytesShipped: m.frameBytes.Load(),
		DistBytesShipped:  m.distBytesShipped.Load(),
		DistBytesReceived: m.distBytesReceived.Load(),
		RemoteShards:      m.remoteShards.Load(),
		Retries:           m.retries.Load(),
		Workers:           m.workers.Load(),
		WorkerShardsRun:   m.workerShards.Load(),
		WorkerTuples:      m.workerTuples.Load(),
		WorkerFitsTrained: m.workerFits.Load(),
		WorkerFitsCached:  m.workerFitsCache.Load(),
		WorkerBytes:       m.workerBytes.Load(),
	}
	m.mu.Lock()
	if len(m.stages) > 0 {
		mj.StagesMs = make(map[string]float64, len(m.stages))
		for k, d := range m.stages {
			mj.StagesMs[k] = float64(d) / float64(time.Millisecond)
		}
	}
	m.mu.Unlock()
	return mj
}

// Add accumulates another cost vector into this one (usage-table
// aggregation). PlanShards keeps the max, everything else sums.
func (j *MeterJSON) Add(o *MeterJSON) {
	if j == nil || o == nil {
		return
	}
	if len(o.StagesMs) > 0 && j.StagesMs == nil {
		j.StagesMs = make(map[string]float64, len(o.StagesMs))
	}
	for k, ms := range o.StagesMs {
		j.StagesMs[k] += ms
	}
	j.TuplesEvaluated += o.TuplesEvaluated
	j.ShardsRun += o.ShardsRun
	if o.PlanShards > j.PlanShards {
		j.PlanShards = o.PlanShards
	}
	j.FitsTrained += o.FitsTrained
	j.FitsCached += o.FitsCached
	j.AppendShardsFit += o.AppendShardsFit
	j.AppendShardsReuse += o.AppendShardsReuse
	j.IPNodes += o.IPNodes
	j.HowToCandidates += o.HowToCandidates
	j.WhatIfEvals += o.WhatIfEvals
	j.FrameBytesShipped += o.FrameBytesShipped
	j.DistBytesShipped += o.DistBytesShipped
	j.DistBytesReceived += o.DistBytesReceived
	j.RemoteShards += o.RemoteShards
	j.Retries += o.Retries
	j.Workers += o.Workers
	j.WorkerShardsRun += o.WorkerShardsRun
	j.WorkerTuples += o.WorkerTuples
	j.WorkerFitsTrained += o.WorkerFitsTrained
	j.WorkerFitsCached += o.WorkerFitsCached
	j.WorkerBytes += o.WorkerBytes
}

// Reconciled reports whether the cross-process ledgers agree: vacuously true
// when nothing ran remotely or retries make double-counting legitimate,
// otherwise the coordinator-side dispatch totals must equal the summed
// worker-reported ones exactly.
func (j *MeterJSON) Reconciled() bool {
	if j == nil {
		return true
	}
	if j.Retries > 0 {
		return true
	}
	return j.RemoteShards == j.WorkerShardsRun && j.DistBytesShipped == j.WorkerBytes
}
