package prcm

import (
	"math"
	"testing"
	"testing/quick"

	"hyper/internal/stats"
)

// lineSEM: X ~ U(0,4) categorical; Y = 2X + noise (continuous).
func lineSEM(t *testing.T) *SEM {
	t.Helper()
	return MustSEM("T", []Attr{
		{Name: "X", Card: 5, Noise: stats.Uniform{Lo: 0, Hi: 5},
			Fn: func(_ map[string]float64, nz float64) float64 { return math.Floor(nz) }},
		{Name: "Y", Mutable: true, Parents: []string{"X"}, Noise: stats.Normal{Sigma: 0.5},
			Fn: func(p map[string]float64, nz float64) float64 { return 2*p["X"] + nz }},
	})
}

func TestSEMValidation(t *testing.T) {
	if _, err := NewSEM("T", []Attr{
		{Name: "A", Fn: func(map[string]float64, float64) float64 { return 0 }},
		{Name: "A", Fn: func(map[string]float64, float64) float64 { return 0 }},
	}); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewSEM("T", []Attr{
		{Name: "B", Parents: []string{"A"}, Fn: func(map[string]float64, float64) float64 { return 0 }},
	}); err == nil {
		t.Error("parent before declaration should fail")
	}
	if _, err := NewSEM("T", []Attr{{Name: "A"}}); err == nil {
		t.Error("missing equation should fail")
	}
}

func TestGenerateSchemaAndDeterminism(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(500, 42)
	if w.Rel.Len() != 500 {
		t.Fatalf("rows = %d", w.Rel.Len())
	}
	s := w.Rel.Schema()
	if !s.Col(0).Key || s.Col(0).Name != "ID" {
		t.Error("ID key column missing")
	}
	if s.Col(1).Name != "X" || s.Col(2).Name != "Y" {
		t.Errorf("schema = %v", s.Names())
	}
	w2 := sem.Generate(500, 42)
	for i := 0; i < 500; i++ {
		if !w.Rel.Row(i)[2].Equal(w2.Rel.Row(i)[2]) {
			t.Fatal("generation must be deterministic per seed")
		}
	}
	w3 := sem.Generate(500, 43)
	diff := 0
	for i := 0; i < 500; i++ {
		if !w.Rel.Row(i)[2].Equal(w3.Rel.Row(i)[2]) {
			diff++
		}
	}
	if diff < 400 {
		t.Errorf("different seeds should differ, only %d rows changed", diff)
	}
}

func TestCategoricalClamping(t *testing.T) {
	sem := MustSEM("T", []Attr{
		{Name: "C", Card: 3, Noise: stats.Normal{Mu: 10, Sigma: 1},
			Fn: func(_ map[string]float64, nz float64) float64 { return nz }},
	})
	w := sem.Generate(100, 1)
	for _, row := range w.Rel.Rows() {
		v := row[1].AsInt()
		if v < 0 || v > 2 {
			t.Fatalf("categorical value %d out of [0,2]", v)
		}
	}
}

func TestCounterfactualIdentityIsNoOp(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(300, 7)
	post := w.Counterfactual() // no interventions
	for i := 0; i < 300; i++ {
		for j := range w.Rel.Row(i) {
			if !w.Rel.Row(i)[j].Equal(post.Row(i)[j]) {
				t.Fatalf("row %d col %d changed without intervention: %v -> %v",
					i, j, w.Rel.Row(i)[j], post.Row(i)[j])
			}
		}
	}
}

func TestCounterfactualPropagates(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(2000, 7)
	post := w.Counterfactual(Intervention{Attr: "X", Fn: func(float64) float64 { return 4 }})
	// Every X is forced to 4; Y must be recomputed as 2*4 + original noise.
	yIdx := sem.AttrIndex("Y") + 1
	for i := 0; i < w.Rel.Len(); i++ {
		if post.Row(i)[1].AsInt() != 4 {
			t.Fatalf("X not forced at row %d", i)
		}
		wantY := 8 + w.Noise[i][1]
		if math.Abs(post.Row(i)[yIdx].AsFloat()-wantY) > 1e-9 {
			t.Fatalf("Y not recomputed with stored noise at row %d", i)
		}
	}
}

func TestCounterfactualSubsetRows(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(100, 7)
	rows := map[int]bool{3: true, 4: true}
	post := w.Counterfactual(Intervention{Attr: "X", Rows: rows, Fn: func(float64) float64 { return 0 }})
	for i := 0; i < 100; i++ {
		forced := rows[i]
		if forced && post.Row(i)[1].AsInt() != 0 {
			t.Fatalf("row %d should be forced", i)
		}
		if !forced && !post.Row(i)[1].Equal(w.Rel.Row(i)[1]) {
			t.Fatalf("row %d should be unchanged", i)
		}
	}
}

func TestInterventionOnOutcomeCutsEquation(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(100, 7)
	post := w.Counterfactual(Intervention{Attr: "Y", Fn: func(float64) float64 { return -1 }})
	for i := 0; i < 100; i++ {
		if post.Row(i)[2].AsFloat() != -1 {
			t.Fatal("intervened attribute must take the forced value")
		}
		// X upstream is untouched.
		if !post.Row(i)[1].Equal(w.Rel.Row(i)[1]) {
			t.Fatal("upstream attribute changed")
		}
	}
}

func TestCausalModelExport(t *testing.T) {
	sem := lineSEM(t)
	m := sem.CausalModel()
	if !m.Attr.Has("T.X") || !m.Attr.Has("T.Y") {
		t.Fatal("nodes missing")
	}
	edges := m.Attr.Edges()
	if len(edges) != 1 || edges[0][0] != "T.X" || edges[0][1] != "T.Y" {
		t.Errorf("edges = %v", edges)
	}
}

func TestAttrHelpers(t *testing.T) {
	sem := lineSEM(t)
	if sem.AttrIndex("Y") != 1 || sem.AttrIndex("Nope") != -1 {
		t.Error("AttrIndex")
	}
	if max, ok := sem.CategoricalMax("X"); !ok || max != 4 {
		t.Errorf("CategoricalMax(X) = %d, %v", max, ok)
	}
	if _, ok := sem.CategoricalMax("Y"); ok {
		t.Error("continuous attribute has no categorical max")
	}
}

// Property: the average treatment effect computed by counterfactual pairs
// matches the analytic effect of the linear SEM (Y = 2X: forcing X from a to
// b shifts Y by exactly 2(b-a) per row).
func TestCounterfactualLinearityProperty(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(500, 3)
	f := func(a8, b8 uint8) bool {
		a, b := float64(a8%5), float64(b8%5)
		pa := w.Counterfactual(Intervention{Attr: "X", Fn: func(float64) float64 { return a }})
		pb := w.Counterfactual(Intervention{Attr: "X", Fn: func(float64) float64 { return b }})
		for i := 0; i < w.Rel.Len(); i++ {
			dy := pb.Row(i)[2].AsFloat() - pa.Row(i)[2].AsFloat()
			if math.Abs(dy-2*(b-a)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
