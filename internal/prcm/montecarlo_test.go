package prcm

import (
	"math"
	"testing"

	"hyper/internal/relation"
	"hyper/internal/stats"
)

func meanY(rel *relation.Relation) float64 {
	yi := rel.Schema().MustIndex("Y")
	s := 0.0
	for _, row := range rel.Rows() {
		s += row[yi].AsFloat()
	}
	return s / float64(rel.Len())
}

func TestSampleInterventionForcesAndResamples(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(2000, 3)
	rng := stats.NewRNG(5)
	post := w.SampleIntervention(rng, Intervention{Attr: "X", Fn: func(float64) float64 { return 4 }})
	for i := 0; i < post.Len(); i++ {
		if post.Row(i)[1].AsInt() != 4 {
			t.Fatalf("X not forced at row %d", i)
		}
	}
	// Y must be resampled: E[Y | do(X=4)] = 8.
	if m := meanY(post); math.Abs(m-8) > 0.1 {
		t.Errorf("mean Y = %.3f, want ~8", m)
	}
	// Fresh noise: two samples must differ.
	post2 := w.SampleIntervention(rng, Intervention{Attr: "X", Fn: func(float64) float64 { return 4 }})
	same := 0
	for i := 0; i < post.Len(); i++ {
		if post.Row(i)[2].Equal(post2.Row(i)[2]) {
			same++
		}
	}
	if same > post.Len()/10 {
		t.Errorf("samples share %d/%d Y values; noise should be fresh", same, post.Len())
	}
}

func TestSampleInterventionUntouchedRowsUnchanged(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(500, 7)
	rng := stats.NewRNG(9)
	rows := map[int]bool{0: true, 1: true}
	post := w.SampleIntervention(rng, Intervention{Attr: "X", Rows: rows, Fn: func(float64) float64 { return 0 }})
	for i := 2; i < post.Len(); i++ {
		for j := range post.Row(i) {
			if !post.Row(i)[j].Equal(w.Rel.Row(i)[j]) {
				t.Fatalf("untouched row %d changed", i)
			}
		}
	}
}

func TestMonteCarloExpectationConverges(t *testing.T) {
	sem := lineSEM(t)
	w := sem.Generate(3000, 11)
	got := w.MonteCarloExpectation(13, 30, meanY,
		Intervention{Attr: "X", Fn: func(float64) float64 { return 2 }})
	if math.Abs(got-4) > 0.05 {
		t.Errorf("MC E[Y | do(X=2)] = %.3f, want ~4", got)
	}
	// Consistency with the counterfactual expectation (same estimand, the
	// counterfactual is one particular noise draw).
	cf := meanY(w.Counterfactual(Intervention{Attr: "X", Fn: func(float64) float64 { return 2 }}))
	if math.Abs(got-cf) > 0.1 {
		t.Errorf("MC %.3f and counterfactual %.3f diverge", got, cf)
	}
}
