package prcm

import (
	"hyper/internal/relation"
	"hyper/internal/stats"
)

// SampleIntervention draws one possible world from the post-update
// distribution (Definitions 1-3 of the paper): intervened attributes take
// their forced values; attributes causally downstream of an intervention are
// re-evaluated with freshly drawn noise; everything else keeps its observed
// value. Averaging a query over many such worlds is the direct Monte-Carlo
// implementation of the possible-world semantics (Definition 5), used as a
// reference to validate the engine's closed-form computation.
func (w *World) SampleIntervention(rng *stats.RNG, interventions ...Intervention) *relation.Relation {
	s := w.SEM
	byAttr := make(map[string]*Intervention, len(interventions))
	for i := range interventions {
		byAttr[interventions[i].Attr] = &interventions[i]
	}
	// Mark attributes downstream of any intervention (by declaration order,
	// transitively through parents).
	downstream := make([]bool, len(s.Attrs))
	for ai, a := range s.Attrs {
		if _, ok := byAttr[a.Name]; ok {
			downstream[ai] = true
			continue
		}
		for _, p := range a.Parents {
			if pi := s.AttrIndex(p); pi >= 0 && downstream[pi] {
				downstream[ai] = true
				break
			}
		}
	}

	out := relation.NewRelation(s.RelName, s.Schema())
	vals := make(map[string]float64, len(s.Attrs))
	for row := 0; row < w.Rel.Len(); row++ {
		pre := w.Rel.Row(row)
		// Rows no intervention touches are unaffected possible-world-wise:
		// their tuple state carries over unchanged (the paper's zero-
		// probability worlds are exactly those that change them).
		touched := false
		for _, iv := range byAttr {
			if iv.Rows == nil || iv.Rows[row] {
				touched = true
				break
			}
		}
		t := make(relation.Tuple, len(s.Attrs)+1)
		t[0] = pre[0]
		if !touched {
			copy(t[1:], pre[1:])
			if err := out.Insert(t); err != nil {
				panic(err)
			}
			continue
		}
		for ai, a := range s.Attrs {
			var v float64
			switch {
			case byAttr[a.Name] != nil && (byAttr[a.Name].Rows == nil || byAttr[a.Name].Rows[row]):
				v = s.clampAttr(a, byAttr[a.Name].Fn(pre[ai+1].AsFloat()))
			case downstream[ai]:
				var nz float64
				if a.Noise != nil {
					nz = a.Noise.Sample(rng)
				}
				v = s.clampAttr(a, a.Fn(vals, nz))
			default:
				v = pre[ai+1].AsFloat()
			}
			vals[a.Name] = v
			t[ai+1] = s.encode(a, v)
		}
		if err := out.Insert(t); err != nil {
			panic(err) // keys copied unchanged; cannot collide
		}
	}
	return out
}

// MonteCarloExpectation averages eval over n sampled possible worlds,
// implementing Definition 5 by simulation.
func (w *World) MonteCarloExpectation(seed int64, n int, eval func(*relation.Relation) float64, interventions ...Intervention) float64 {
	rng := stats.NewRNG(seed)
	total := 0.0
	for i := 0; i < n; i++ {
		total += eval(w.SampleIntervention(rng, interventions...))
	}
	return total / float64(n)
}
