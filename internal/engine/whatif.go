package engine

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"hyper/internal/causal"
	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/obs"
	"hyper/internal/relation"
	"hyper/internal/shard"
	"hyper/internal/sqlmini"
)

// Evaluate computes the result of a what-if query q on db under the causal
// model (nil model falls back to the canonical no-background behaviour of
// ModeNB). It implements the computation of Section 3.3: relevant view →
// WHEN set → block decomposition → FOR normalization → backdoor adjustment →
// per-block aggregation.
func Evaluate(db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts Options) (*Result, error) {
	return EvaluateContext(context.Background(), db, model, q, opts)
}

// EvaluateContext is Evaluate with cancellation: ctx is observed between
// pipeline stages, before each estimator training, and inside the parallel
// per-tuple loop, so a cancelled or deadline-expired context stops the
// evaluation mid-solve (returning ctx.Err()) instead of running to
// completion. Artifacts already placed in the cache (views, blocks, fully
// trained estimators) remain valid — training is atomic per model, so a
// cancelled query never leaves a partially trained regressor behind.
func EvaluateContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts Options) (*Result, error) {
	// Tracing rides the context like the other execution-only knobs
	// (Progress, Shards): an untraced context makes every obs.Start a nil
	// check, and a traced one never reaches cache identity or results.
	pctx, psp := obs.Start(ctx, "prepare")
	p, err := prepareEvaluation(pctx, db, model, q, opts)
	psp.End()
	if err != nil {
		return nil, err
	}
	if p.o.DryRun {
		return p.res, nil
	}
	te := time.Now()
	parts, err := p.evalShards(ctx, nil)
	if err != nil {
		return nil, err
	}
	// Reduce in plan order. Folding shard windows in ascending shard order
	// adds each block's partials in exactly the same sequence for every
	// worker count (and matches a per-block fold over shards), so the block
	// sums — and the final aggregate, accumulated in block order — are
	// reproducible to the bit.
	_, fsp := obs.Start(ctx, "fold")
	tf := time.Now()
	foldPartials(p.res, parts, p.nBlocks, p.agg)
	fsp.Set("blocks", p.nBlocks)
	fsp.End()
	obs.MeterFromContext(ctx).AddStage("fold", time.Since(tf))
	p.res.EvalTime = time.Since(te)
	p.res.TrainedModels = p.ev.est.trainedModels()
	p.res.Total = time.Since(p.start)
	if p.o.Progress != nil {
		total := p.v.rel.Len()
		p.o.Progress("tuples", total, total)
	}
	return p.res, nil
}

// resolveView materializes (or fetches from cache) the relevant view of the
// query, validating the UPDATE clause on the way. It returns the view, its
// cache key, and the distinct update attributes.
func resolveView(db *relation.Database, q *hyperql.WhatIf, o Options) (v *view, viewKey string, updateAttrs []string, hit bool, err error) {
	if len(q.Updates) == 0 {
		return nil, "", nil, false, fmt.Errorf("engine: what-if query has no UPDATE clause")
	}
	if q.Output == nil || !q.Output.Func.Valid() {
		return nil, "", nil, false, fmt.Errorf("engine: what-if query has no valid OUTPUT aggregate")
	}
	updateAttrs = make([]string, 0, len(q.Updates))
	seen := map[string]bool{}
	for _, u := range q.Updates {
		if seen[u.Attr] {
			return nil, "", nil, false, fmt.Errorf("engine: attribute %q updated twice", u.Attr)
		}
		seen[u.Attr] = true
		updateAttrs = append(updateAttrs, u.Attr)
	}
	viewKey = q.Use.String() + "\x00" + q.Updates[0].Attr
	// MVCC: a versioned database folds its snapshot version into the view
	// key, which transitively versions every artifact keyed off it — the
	// view itself, block decompositions, estimator sets, and the plan
	// cache's supporting stats — so a query pinned to snapshot v keeps
	// hitting v's artifacts after appends while the new head never reads
	// stale ones. Version 0 (bare-library databases) keeps historical keys.
	if ver := db.Version(); ver > 0 {
		viewKey = "@v" + strconv.FormatInt(ver, 10) + "\x00" + viewKey
	}
	if o.Cache != nil {
		if cached, ok := o.Cache.getView(viewKey); ok {
			v, hit = cached, true
		}
	}
	if v == nil {
		v, err = buildView(db, q.Use, q.Updates[0].Attr)
		if err != nil {
			return nil, "", nil, false, err
		}
		if o.Cache != nil {
			o.Cache.putView(viewKey, v)
		}
	}
	for _, a := range updateAttrs[1:] {
		if !v.rel.Schema().Has(a) {
			return nil, "", nil, false, fmt.Errorf("engine: update attribute %q is not a column of the relevant view", a)
		}
	}
	return v, viewKey, updateAttrs, hit, nil
}

// evalPrep is a fully prepared what-if evaluation: everything up to (but not
// including) the per-tuple loop. Preparation is deterministic in the query,
// data, and semantic options, so two processes preparing the same evaluation
// agree on the shard plan, the block decomposition, and every trained
// estimator — the property the distributed execution path relies on.
type evalPrep struct {
	o       Options
	res     *Result
	v       *view
	blockOf []int
	nBlocks int
	ev      *evaluator
	agg     hyperql.AggFunc
	plan    shard.Plan
	start   time.Time
}

func prepareEvaluation(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts Options) (*evalPrep, error) {
	o := opts.withDefaults()
	if model == nil && o.Mode == ModeFull {
		o.Mode = ModeNB
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Mode: o.Mode}
	// The meter rides the context like the span: absent, every charge is a
	// nil check; present, it accumulates the query's cost vector without
	// touching cache identity or results.
	meter := obs.MeterFromContext(ctx)

	// Step 1: relevant view (USE), memoized across candidate queries when a
	// cache is provided.
	tv := time.Now()
	_, vsp := obs.Start(ctx, "view")
	v, viewKey, updateAttrs, viewHit, err := resolveView(db, q, o)
	if err != nil {
		return nil, err
	}
	res.ViewTime = time.Since(tv)
	meter.AddStage("view", res.ViewTime)
	res.ViewRows = v.rel.Len()
	vsp.Set("rows", res.ViewRows)
	vsp.Set("cache_hit", viewHit)
	vsp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 2: block-independent decomposition (memoized likewise).
	tb := time.Now()
	_, bsp := obs.Start(ctx, "blocks")
	blocksHit := false
	var blockOf []int
	res.Blocks = 1
	if model != nil && !o.DisableBlocks {
		var bi blockInfo
		cached := false
		if o.Cache != nil {
			bi, cached = o.Cache.getBlocks(viewKey)
		}
		blocksHit = cached
		if !cached {
			byRel, nBlocks, err := causal.RowBlocks(db, model)
			if err != nil {
				return nil, err
			}
			ids, err := v.blockIDs(byRel[v.updateRel.Name()])
			if err != nil {
				return nil, err
			}
			bi = blockInfo{blockOf: ids, nBlocks: nBlocks}
			if o.Cache != nil {
				o.Cache.putBlocks(viewKey, bi)
			}
		}
		blockOf = bi.blockOf
		res.Blocks = bi.nBlocks
	} else {
		blockOf = make([]int, v.rel.Len())
	}
	res.BlockTime = time.Since(tb)
	meter.AddStage("blocks", res.BlockTime)
	bsp.Set("blocks", res.Blocks)
	bsp.Set("cache_hit", blocksHit)
	bsp.End()

	// Step 3: WHEN defines the update set S (pre-update values only). With a
	// plan cache, the WHEN clause compiles (once per shape) into a
	// cost-ordered pushdown program scanning interned columns; the program
	// is validated error-free at compile time or marks itself a fallback,
	// so the planned and unplanned paths compute the same set — including
	// error behaviour — to the bit.
	inS := make([]bool, v.rel.Len())
	planApplied := false
	if o.Plans != nil {
		tp := time.Now()
		_, psp := obs.Start(ctx, "plan")
		qp, planHit := o.Plans.WhatIf(db, viewKey, q, v.rel)
		res.PlanTime = time.Since(tp)
		meter.AddStage("plan", res.PlanTime)
		res.PlanFingerprint = qp.Fingerprint
		res.PlanCacheHit = planHit
		res.PlanText = qp.Explain()
		if q.When != nil {
			res.PlanPushed, planApplied = o.Plans.Apply(qp, q, v.rel, inS)
		}
		psp.Set("cache_hit", planHit)
		psp.Set("pushed", res.PlanPushed)
		psp.Set("fallback", qp.Fallback)
		psp.End()
	}
	if !planApplied {
		for i := range inS {
			if q.When == nil {
				inS[i] = true
				continue
			}
			ok, err := sqlmini.EvalBool(q.When, sqlmini.RowEnv{Rel: v.rel, Row: v.rel.Row(i)})
			if err != nil {
				return nil, fmt.Errorf("engine: WHEN: %w", err)
			}
			inS[i] = ok
		}
	}
	for _, s := range inS {
		if s {
			res.UpdatedRows++
		}
	}

	// Step 4: post-update values of the update attributes for rows in S.
	postVals := make(map[string][]relation.Value, len(updateAttrs))
	for _, u := range q.Updates {
		ci := v.rel.Schema().MustIndex(u.Attr)
		vals := make([]relation.Value, v.rel.Len())
		for i := 0; i < v.rel.Len(); i++ {
			pre := v.rel.Row(i)[ci]
			if inS[i] {
				vals[i] = u.Apply(pre)
			} else {
				vals[i] = pre
			}
		}
		postVals[u.Attr] = vals
	}

	// Step 5: cross-tuple summary features (the ψ functions of Section 2.2):
	// when the model declares a cross-tuple edge out of an update attribute,
	// the group mean of that attribute becomes a feature, and its post-update
	// shift propagates the update to non-updated tuples in the same group.
	summaries, err := buildSummaries(v, model, updateAttrs, postVals)
	if err != nil {
		return nil, err
	}

	// Step 6: parse the OUTPUT aggregate.
	outAgg := q.Output.Func
	var yCol string
	var outCond hyperql.Expr
	switch outAgg {
	case hyperql.AggAvg, hyperql.AggSum:
		c, ok := q.Output.Expr.(*hyperql.ColRef)
		if !ok {
			return nil, fmt.Errorf("engine: %s requires a column argument, got %v", outAgg, q.Output.Expr)
		}
		if c.Time == hyperql.TimePre {
			return nil, fmt.Errorf("engine: OUTPUT reads post-update values; PRE(%s) is not allowed", c.Name)
		}
		yCol = c.Name
		if !v.rel.Schema().Has(yCol) {
			return nil, fmt.Errorf("engine: output attribute %q is not a column of the relevant view", yCol)
		}
	case hyperql.AggCount:
		if q.Output.Expr != nil {
			outCond = q.Output.Expr
			if _, hasPre := prePresent(outCond); hasPre {
				return nil, fmt.Errorf("engine: OUTPUT condition reads post-update values; PRE() is not allowed")
			}
		}
	}

	// Step 7: normalize FOR into disjoint pre/post disjuncts.
	disjuncts, err := normalizeFor(q.For, v.rel, o.MaxDisjuncts, o.MaxDomainExpand)
	if err != nil {
		return nil, err
	}
	res.Disjuncts = len(disjuncts)

	// Step 8: backdoor set.
	backdoor, err := backdoorColumns(v, model, updateAttrs, yCol, outCond, disjuncts, o.Mode)
	if err != nil {
		return nil, err
	}
	res.Backdoor = backdoor

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 9: build the (possibly summary-augmented) view and the estimator.
	// Proposition 2 conditions the post-update probabilities on μ_When and
	// μ_For,Pre, so the attributes those predicates reference join the
	// conditioning features (this is what makes runtime grow with the number
	// of FOR attributes, Figure 11a).
	tt := time.Now()
	_, tsp := obs.Start(ctx, "train")
	queryText := q.String()
	augView, sumCols := augmentView(v.rel, summaries)
	featCols := append(append(append([]string{}, updateAttrs...), backdoor...), sumCols...)
	if o.Mode != ModeIndep {
		featCols = appendPredicateAttrs(featCols, v.rel, q.When, disjuncts, updateAttrs)
	}
	estHit := false
	makeEst := func(eo Options) *estimatorSet {
		if eo.Cache == nil {
			return newEstimatorSet(ctx, augView, featCols, len(updateAttrs), queryText, eo)
		}
		whenKey, forKey := "", ""
		if q.When != nil {
			whenKey = q.When.String()
		}
		if q.For != nil {
			forKey = q.For.String()
		}
		forKey += "\x00" + q.Output.String()
		key := estKey(viewKey, whenKey, forKey, featCols, eo)
		if cached, ok := eo.Cache.getEst(key); ok {
			estHit = true
			// Set-level hits are the fan-out-independent "served from cache"
			// signal; per-model hits inside the tuple loop are worker-local
			// memo traffic and deliberately not charged.
			meter.AddFitCached()
			return cached
		}
		estHit = false
		e := newEstimatorSet(ctx, augView, featCols, len(updateAttrs), queryText, eo)
		eo.Cache.putEst(key, e)
		return e
	}
	endTrainSpan := func(est *estimatorSet) {
		meter.AddStage("train", res.TrainTime)
		tsp.Set("estimator", est.kind)
		tsp.Set("sampled_rows", len(est.trainRows))
		tsp.Set("cache_hit", estHit)
		tsp.End()
	}
	est := makeEst(o)
	if o.DryRun {
		res.EstimatorUsed = est.kind
		res.SampledRows = len(est.trainRows)
		res.TrainTime = time.Since(tt)
		endTrainSpan(est)
		res.Total = time.Since(start)
		return &evalPrep{o: o, res: res, v: v, start: start}, nil
	}
	if est.kind == "freq" && o.Estimator != EstimatorFreq {
		// The exact frequency estimator cannot extrapolate to update values
		// with no support in the data; when most prediction points are
		// unsupported, fall back to the generalizing forest (the paper's
		// default estimator).
		if frac := supportedFraction(est, v, updateAttrs, postVals, summaries, inS); frac < 0.8 {
			o2 := o
			o2.Estimator = EstimatorForest
			est = makeEst(o2)
		}
	}
	res.EstimatorUsed = est.kind
	res.SampledRows = len(est.trainRows)
	res.TrainTime = time.Since(tt)
	endTrainSpan(est)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 10 is the per-tuple loop (evalShards); prepare its evaluator and
	// the canonical shard plan here so partial and full evaluations share one
	// construction.
	ev := &evaluator{
		ctx: ctx,
		v:   v, est: est, q: q, opts: o, queryText: queryText,
		updateAttrs: updateAttrs, postVals: postVals,
		summaries: summaries, yCol: yCol, outCond: outCond,
		disjuncts: disjuncts, inS: inS,
	}
	if err := ev.prepare(); err != nil {
		return nil, err
	}
	plan := shard.Rows(v.rel.Len(), o.ShardRows)
	res.ShardPlan = plan.Shards()
	res.ShardWorkers = plan.Workers(o.Shards)
	res.ShardedFit = est.shardedFit()
	return &evalPrep{
		o: o, res: res, v: v,
		blockOf: blockOf, nBlocks: res.Blocks,
		ev: ev, agg: outAgg, plan: plan, start: start,
	}, nil
}

// evalShards runs the per-tuple loop over the listed shards of the canonical
// plan (nil = every shard), returning one block-window partial per listed
// shard, in the order listed. Tuple contributions are independent, so the
// loop runs shard-parallel: each shard accumulates into its own per-block
// partials; workers own an evaluator copy (scratch buffers, model memo)
// reused across the shards they pick up. Shard placement is
// scheduling-dependent but cannot influence any partial: a shard's partial
// is a pure function of the prepared evaluation and its row range, which is
// what makes partials portable across processes.
func (p *evalPrep) evalShards(ctx context.Context, ids []int) ([]ShardPartial, error) {
	ctx, sp := obs.Start(ctx, "eval_shards")
	defer sp.End()
	if sp != nil {
		// Lazily trained models fit from inside the tuple loop through the
		// evaluator's stored context; repointing it here nests their fit
		// spans under eval_shards (cancellation semantics are unchanged —
		// both contexts share the same Done chain).
		p.ev.ctx = ctx
	}
	k := p.plan.Shards()
	if ids == nil {
		ids = make([]int, k)
		for i := range ids {
			ids[i] = i
		}
	} else {
		seen := make([]bool, k)
		for _, s := range ids {
			if s < 0 || s >= k {
				return nil, fmt.Errorf("engine: shard %d out of plan range [0,%d)", s, k)
			}
			if seen[s] {
				return nil, fmt.Errorf("engine: shard %d requested twice", s)
			}
			seen[s] = true
		}
	}
	if len(ids) == 0 {
		// Empty view: a zero-shard plan has no partials, and the fold below
		// produces the zero-value aggregate (shard.Fixed would coerce an
		// empty run plan to one slot and index past ids).
		return nil, ctx.Err()
	}
	total := 0
	for _, s := range ids {
		lo, hi := p.plan.Bounds(s)
		total += hi - lo
	}
	// One run-plan slot per requested shard: the worker pool claims listed
	// shards, not row ranges.
	runPlan := shard.Fixed(len(ids), len(ids))
	workers := runPlan.Workers(p.o.Shards)
	sp.Set("plan", k)
	sp.Set("shards", len(ids))
	sp.Set("rows", total)
	sp.Set("workers", workers)
	// Charge the meter with fan-out-independent totals: the plan, the shards
	// actually executed here, and the rows they cover. The golden tests pin
	// these against Result.ShardPlan/ViewRows at any worker count.
	meter := obs.MeterFromContext(ctx)
	meter.SetPlanShards(k)
	meter.AddShards(len(ids))
	meter.AddTuples(total)
	evStart := time.Now()
	locals := make([]*evaluator, workers)
	parts := make([]ShardPartial, len(ids))
	nBlocks := p.nBlocks
	// blockAt clamps defensively: rows outside the decomposition map to 0.
	blockAt := func(i int) int {
		if b := p.blockOf[i]; b < nBlocks {
			return b
		}
		return 0
	}
	// Cancellation and progress work on a stride so neither the ctx check
	// nor the shared counter touches the per-tuple fast path.
	const stride = 512
	var tuplesDone, shardsDone atomic.Int64
	err := shard.Run(ctx, runPlan, workers, func(w, idx, _, _ int) error {
		local := locals[w]
		if local == nil {
			cp := *p.ev
			cp.activeBuf, cp.xBuf, cp.evBuf, cp.modelMemo = nil, nil, nil, nil
			local = &cp
			locals[w] = local
		}
		s := ids[idx]
		lo, hi := p.plan.Bounds(s)
		parts[idx] = ShardPartial{Shard: s}
		// A shard's partial accumulators cover only the window of block ids
		// its rows touch (for the common one-block-per-tuple decomposition a
		// contiguous row shard touches a narrow, near-contiguous id range),
		// so memory and merge cost stay proportional to the data, not to
		// shards × blocks.
		minB, maxB := nBlocks, -1
		for i := lo; i < hi; i++ {
			b := blockAt(i)
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
		}
		if maxB < minB {
			if p.o.Progress != nil {
				p.o.Progress("shards", int(shardsDone.Add(1)), len(ids))
			}
			return nil // empty shard
		}
		sum := make([]float64, maxB-minB+1)
		cnt := make([]float64, maxB-minB+1)
		for i := lo; i < hi; i++ {
			if (i-lo)%stride == 0 && i > lo {
				if err := ctx.Err(); err != nil {
					return err
				}
				if p.o.Progress != nil {
					p.o.Progress("tuples", int(tuplesDone.Add(stride)), total)
				}
			}
			ts, tc, err := local.tuple(i)
			if err != nil {
				return err
			}
			b := blockAt(i) - minB
			sum[b] += ts
			cnt[b] += tc
		}
		parts[idx] = ShardPartial{Shard: s, MinBlock: minB, Sum: sum, Cnt: cnt}
		if p.o.Progress != nil {
			p.o.Progress("shards", int(shardsDone.Add(1)), len(ids))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	meter.AddStage("eval", time.Since(evStart))
	return parts, nil
}

// foldPartials reduces block-window partials (which must already be in plan
// order) into res and computes the aggregate value. It is the single
// reduction used by local evaluation and by the distributed merge, so the
// two cannot drift.
func foldPartials(res *Result, parts []ShardPartial, nBlocks int, agg hyperql.AggFunc) {
	sumByBlock := make([]float64, nBlocks)
	cntByBlock := make([]float64, nBlocks)
	for _, p := range parts {
		for j, ps := range p.Sum {
			sumByBlock[p.MinBlock+j] += ps
			cntByBlock[p.MinBlock+j] += p.Cnt[j]
		}
	}
	for b := 0; b < nBlocks; b++ {
		res.Sum += sumByBlock[b]
		res.Count += cntByBlock[b]
	}
	switch agg {
	case hyperql.AggCount:
		res.Value = res.Count
	case hyperql.AggSum:
		res.Value = res.Sum
	case hyperql.AggAvg:
		if res.Count > 0 {
			res.Value = res.Sum / res.Count
		}
	}
}

func prePresent(e hyperql.Expr) (hasPost, hasPre bool) {
	for _, c := range hyperql.ColRefs(e) {
		switch c.Time {
		case hyperql.TimePre:
			hasPre = true
		case hyperql.TimePost:
			hasPost = true
		}
	}
	return
}

// evaluator holds the per-query state for tuple-level evaluation.
type evaluator struct {
	ctx         context.Context
	v           *view
	est         *estimatorSet
	q           *hyperql.WhatIf
	opts        Options
	queryText   string // canonical query text, forwarded to remote fitters
	updateAttrs []string
	postVals    map[string][]relation.Value
	summaries   []summaryFeature
	yCol        string
	outCond     hyperql.Expr
	disjuncts   []disjunct
	inS         []bool

	yIdx      int   // view column index of Y (-1 when COUNT)
	updIdx    []int // view column indexes of update attrs
	featUpd   []int // feature positions of update attrs
	featSum   []int // feature positions of summary features
	affected  []bool
	activeBuf []int
	xBuf      []float64 // prediction-point scratch, reused across tuples

	// Distinct post events across all disjuncts, identified once so the
	// per-tuple inclusion-exclusion works on small integer ids: the hot
	// path resolves an event subset to its trained regressor through a
	// worker-local memo, touching neither literal strings nor the shared
	// estimator lock.
	events    [][]hyperql.Expr
	eventID   []int                    // disjunct index -> event id (-1 = empty post)
	evBuf     []int                    // per-tuple active event ids (scratch)
	modelMemo map[memoKey]ml.Regressor // per-worker event-subset -> model
}

// memoKey identifies a model by its post-event subset (a bitmask over
// evaluator.events) and Y-weighting.
type memoKey struct {
	mask     uint64
	weighted bool
}

func (e *evaluator) prepare() error {
	e.yIdx = -1
	if e.yCol != "" {
		e.yIdx = e.v.rel.Schema().MustIndex(e.yCol)
	}
	for _, a := range e.updateAttrs {
		e.updIdx = append(e.updIdx, e.v.rel.Schema().MustIndex(a))
		fi := e.est.featureIndex(a)
		if fi < 0 {
			return fmt.Errorf("engine: update attribute %q missing from features", a)
		}
		e.featUpd = append(e.featUpd, fi)
	}
	for _, s := range e.summaries {
		fi := e.est.featureIndex(s.name)
		if fi < 0 {
			return fmt.Errorf("engine: summary feature %q missing from features", s.name)
		}
		e.featSum = append(e.featSum, fi)
	}
	// Identify the distinct post events (by canonical key) so tuples refer
	// to them by id.
	e.eventID = make([]int, len(e.disjuncts))
	seenEvents := map[string]int{}
	for k, d := range e.disjuncts {
		if len(d.post) == 0 {
			e.eventID[k] = -1
			continue
		}
		key := eventKey(d.post)
		id, ok := seenEvents[key]
		if !ok {
			id = len(e.events)
			seenEvents[key] = id
			e.events = append(e.events, d.post)
		}
		e.eventID[k] = id
	}
	// A tuple is affected when its own update attribute changes or a summary
	// feature (group mean) shifts; unaffected tuples are evaluated exactly.
	e.affected = make([]bool, e.v.rel.Len())
	for i := range e.affected {
		if e.inS[i] {
			for ai, a := range e.updateAttrs {
				if !e.postVals[a][i].Equal(e.v.rel.Row(i)[e.updIdx[ai]]) {
					e.affected[i] = true
				}
			}
		}
		if !e.affected[i] {
			for _, s := range e.summaries {
				if math.Abs(s.post[i]-s.pre[i]) > 1e-12 {
					e.affected[i] = true
					break
				}
			}
		}
	}
	return nil
}

// tuple returns the (expected-sum, expected-count) contribution of view row
// i: count is Pr(FOR-post ∧ OUTPUT-cond | do(U), pre-state), sum is
// E[Y · 1{...}] under the same distribution (Propositions 4 and 5).
func (e *evaluator) tuple(i int) (sum, count float64, err error) {
	row := e.v.rel.Row(i)
	env := sqlmini.RowEnv{Rel: e.v.rel, Row: row}
	// Active disjuncts: pre conditions are deterministic on D.
	e.activeBuf = e.activeBuf[:0]
	for k, d := range e.disjuncts {
		ok := true
		for _, lit := range d.pre {
			pass, err := sqlmini.EvalBool(lit, env)
			if err != nil {
				return 0, 0, fmt.Errorf("engine: FOR: %w", err)
			}
			if !pass {
				ok = false
				break
			}
		}
		if ok {
			e.activeBuf = append(e.activeBuf, k)
		}
	}
	if len(e.activeBuf) == 0 {
		return 0, 0, nil
	}

	if !e.affected[i] {
		// Exact evaluation: the post-update state equals the pre-update
		// state for this tuple, so the indicator is observed.
		p, err := e.observedEvent(i, e.activeBuf)
		if err != nil {
			return 0, 0, err
		}
		if p == 0 {
			return 0, 0, nil
		}
		y := 1.0
		if e.yIdx >= 0 {
			y = row[e.yIdx].AsFloat()
		}
		return y, 1, nil
	}

	// Affected tuple: estimate by backdoor adjustment. Build the prediction
	// features in the worker-local scratch buffer (gathered from the shared
	// columnar frame, so nothing is re-encoded or allocated per tuple):
	// observed backdoor values, post-update B, post-update ψ.
	if e.xBuf == nil {
		e.xBuf = make([]float64, len(e.est.featCols))
	}
	x := e.xBuf
	e.est.featureVectorInto(i, x)
	for ai, a := range e.updateAttrs {
		x[e.featUpd[ai]] = e.est.encodeAt(e.featUpd[ai], e.postVals[a][i])
	}
	for si, s := range e.summaries {
		x[e.featSum[si]] = s.post[i]
	}

	count, err = e.inclusionExclusion(i, e.activeBuf, x, false)
	if err != nil {
		return 0, 0, err
	}
	count = clamp01(count)
	if e.yIdx >= 0 {
		sum, err = e.inclusionExclusion(i, e.activeBuf, x, true)
		if err != nil {
			return 0, 0, err
		}
	} else {
		sum = count
	}
	return sum, count, nil
}

// observedEvent evaluates (∨_active post-conj) ∧ outCond on the observed
// tuple, returning 0 or 1.
func (e *evaluator) observedEvent(i int, active []int) (float64, error) {
	env := sqlmini.RowEnv{Rel: e.v.rel, Row: e.v.rel.Row(i)}
	if e.outCond != nil {
		ok, err := sqlmini.EvalBool(e.outCond, env)
		if err != nil {
			return 0, fmt.Errorf("engine: OUTPUT condition: %w", err)
		}
		if !ok {
			return 0, nil
		}
	}
	for _, k := range active {
		all := true
		for _, lit := range e.disjuncts[k].post {
			ok, err := sqlmini.EvalBool(lit, env)
			if err != nil {
				return 0, fmt.Errorf("engine: FOR: %w", err)
			}
			if !ok {
				all = false
				break
			}
		}
		if all {
			return 1, nil
		}
	}
	return 0, nil
}

// inclusionExclusion estimates Pr(∨_k E_k ∧ G) (weighted=false) or
// E[Y · 1{∨_k E_k ∧ G}] (weighted=true) for the active disjuncts' post
// events E_k and the output condition G, by inclusion-exclusion over event
// subsets with one cached regressor per subset (A.2.1). Duplicate events are
// deduplicated first (by the ids assigned in prepare — no per-tuple string
// work); an empty event list degenerates to Pr(G) or E[Y·1{G}].
func (e *evaluator) inclusionExclusion(i int, active []int, x []float64, weighted bool) (float64, error) {
	// Collect distinct post events among active disjuncts, in first-seen
	// order. An empty post list is the sure event: the disjunction is then
	// TRUE.
	e.evBuf = e.evBuf[:0]
	sure := false
	for _, k := range active {
		id := e.eventID[k]
		if id < 0 {
			sure = true
			continue
		}
		dup := false
		for _, seen := range e.evBuf {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			e.evBuf = append(e.evBuf, id)
		}
	}
	if sure {
		// Pr(TRUE ∧ G) = Pr(G).
		return e.predictEventMask(0, x, weighted)
	}
	if len(e.evBuf) > 12 {
		return 0, fmt.Errorf("engine: FOR predicate has %d distinct post events per tuple; limit is 12", len(e.evBuf))
	}
	if len(e.events) > 64 {
		// Too many distinct events for subset bitmasks (possible only with a
		// raised MaxDisjuncts); build keys per subset instead of memoizing.
		return e.inclusionExclusionSlow(x, weighted)
	}
	total := 0.0
	n := len(e.evBuf)
	for mask := 1; mask < 1<<n; mask++ {
		var gm uint64
		bits := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				gm |= 1 << uint(e.evBuf[b])
				bits++
			}
		}
		p, err := e.predictEventMask(gm, x, weighted)
		if err != nil {
			return 0, err
		}
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	return total, nil
}

// inclusionExclusionSlow is the unmemoized enumeration over the active
// events in e.evBuf, used when the distinct-event count exceeds the 64-bit
// subset masks.
func (e *evaluator) inclusionExclusionSlow(x []float64, weighted bool) (float64, error) {
	n := len(e.evBuf)
	total := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		var lits []hyperql.Expr
		bits := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				lits = append(lits, e.events[e.evBuf[b]]...)
				bits++
			}
		}
		m, err := e.eventModel(lits, weighted, 0, false)
		if err != nil {
			return 0, err
		}
		p := m.Predict(x)
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	return total, nil
}

// predictEventMask predicts at features x with the regressor for the event
// subset gm (a bitmask over e.events, conjoined with outCond) — Y-weighted
// when weighted. The per-worker memo makes the steady-state path
// lock-free and string-free; only the first encounter of a subset builds
// its key and consults (or trains through) the shared estimator cache.
func (e *evaluator) predictEventMask(gm uint64, x []float64, weighted bool) (float64, error) {
	mk := memoKey{mask: gm, weighted: weighted}
	if m, ok := e.modelMemo[mk]; ok {
		return m.Predict(x), nil
	}
	lits := e.maskLits(gm)
	m, err := e.eventModel(lits, weighted, gm, true)
	if err != nil {
		return 0, err
	}
	if e.modelMemo == nil {
		e.modelMemo = make(map[memoKey]ml.Regressor)
	}
	e.modelMemo[mk] = m
	return m.Predict(x), nil
}

// maskLits collects the post literals of the event subset gm, in event-id
// order. The same construction runs on both ends of the remote-fit
// transport, so a mask is an unambiguous cross-process model identity.
func (e *evaluator) maskLits(gm uint64) []hyperql.Expr {
	var lits []hyperql.Expr
	for id, ev := range e.events {
		if gm&(1<<uint(id)) != 0 {
			lits = append(lits, ev...)
		}
	}
	return lits
}

// eventModel returns (training on demand) the regressor for the event
// (lits ∧ outCond), Y-weighted when weighted. It is the single place the
// conjunction and its cache key are built, so the key, the forest seed
// derived from it, and the label function cannot drift apart. mask (valid
// when maskOK) is the event-subset bitmask identifying the same model to a
// remote fitter.
func (e *evaluator) eventModel(lits []hyperql.Expr, weighted bool, mask uint64, maskOK bool) (ml.Regressor, error) {
	all := lits
	if e.outCond != nil {
		all = append(append([]hyperql.Expr(nil), lits...), e.outCond)
	}
	key := eventKey(all)
	if weighted {
		key = "Y*" + key
	}
	if m, ok := e.est.cached(key); ok {
		return m, nil
	}
	// Training an event model is the expensive step of the estimator fitting
	// loop; a cancelled query stops here rather than fitting another
	// regressor it will never use. Already-cached models above stay valid.
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return nil, err
		}
	}
	ex := fitExec{
		ctx: e.ctx, workers: e.opts.Shards,
		query: e.queryText, opts: e.opts,
		mask: mask, maskOK: maskOK, weighted: weighted,
	}
	if maskOK {
		ex.fitter = e.opts.RemoteFit
	}
	m, err := e.est.model(key, ex, e.labelFor(all, weighted))
	if err != nil {
		return nil, fmt.Errorf("engine: labeling post event: %w", err)
	}
	return m, nil
}

// labelFor builds the training-label function of the event conjunction
// (all ∧), Y-weighted when weighted. Both the in-process training path and
// the remote per-shard fit label through this one function, so the two can
// never disagree on a row's label.
func (e *evaluator) labelFor(all []hyperql.Expr, weighted bool) func(r int) (float64, error) {
	return func(r int) (float64, error) {
		env := sqlmini.RowEnv{Rel: e.v.rel, Row: e.v.rel.Row(r)}
		for _, lit := range all {
			ok, err := sqlmini.EvalBool(lit, env)
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, nil
			}
		}
		if weighted {
			return e.v.rel.Row(r)[e.yIdx].AsFloat(), nil
		}
		return 1, nil
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// backdoorColumns derives the conditioning set as view column names.
func backdoorColumns(v *view, model *causal.Model, updateAttrs []string, yCol string, outCond hyperql.Expr, disjuncts []disjunct, mode Mode) ([]string, error) {
	if mode == ModeIndep {
		return nil, nil
	}
	// Outcome attributes: Y, the OUTPUT condition's columns, and every
	// column referenced by a post literal.
	outcomeCols := map[string]bool{}
	if yCol != "" {
		outcomeCols[yCol] = true
	}
	for _, c := range hyperql.ColRefs(outCond) {
		outcomeCols[c.Name] = true
	}
	for _, d := range disjuncts {
		for _, lit := range d.post {
			for _, c := range hyperql.ColRefs(lit) {
				outcomeCols[c.Name] = true
			}
		}
	}
	isUpdate := map[string]bool{}
	for _, a := range updateAttrs {
		isUpdate[a] = true
	}
	keyCols := map[string]bool{}
	for _, ki := range v.updateRel.Schema().KeyIndexes() {
		keyCols[v.updateRel.Schema().Col(ki).Name] = true
	}

	if mode == ModeNB || model == nil {
		// All attributes except updates, outcomes, and keys (Section 2.2).
		var out []string
		for _, c := range v.rel.Schema().Columns() {
			if isUpdate[c.Name] || outcomeCols[c.Name] || keyCols[c.Name] {
				continue
			}
			out = append(out, c.Name)
		}
		return out, nil
	}

	// ModeFull: minimal backdoor set on the attribute-level causal graph,
	// restricted to attributes representable in the view.
	qualToView := map[string]string{}
	var candidates []string
	for col, q := range v.qualified {
		qualToView[q] = col
		if !isUpdate[col] && !outcomeCols[col] && !keyCols[col] {
			candidates = append(candidates, q)
		}
	}
	var qualOutcomes []string
	for col := range outcomeCols {
		if q, ok := v.qualified[col]; ok {
			qualOutcomes = append(qualOutcomes, q)
		}
	}
	// Union of minimal backdoor sets per update attribute.
	chosen := map[string]bool{}
	for _, a := range updateAttrs {
		qa, ok := v.qualified[a]
		if !ok {
			return nil, fmt.Errorf("engine: update attribute %q has no qualified source", a)
		}
		set, ok := model.Attr.BackdoorSet(qa, qualOutcomes, candidates)
		if !ok {
			// No valid backdoor within view attributes: fall back to all
			// candidate non-descendants (the conservative superset).
			bad := map[string]bool{}
			for _, d := range model.Attr.Descendants(qa) {
				bad[d] = true
			}
			for _, c := range candidates {
				if !bad[c] {
					set = append(set, c)
				}
			}
		}
		for _, q := range set {
			chosen[q] = true
		}
	}
	var out []string
	for _, c := range v.rel.Schema().Columns() {
		if q, ok := v.qualified[c.Name]; ok && chosen[q] {
			out = append(out, c.Name)
		}
	}
	return out, nil
}

// supportedFraction samples up to 200 updated rows and reports the fraction
// whose post-update feature combination occurs exactly in the training data.
func supportedFraction(est *estimatorSet, v *view, updateAttrs []string, postVals map[string][]relation.Value, summaries []summaryFeature, inS []bool) float64 {
	n := v.rel.Len()
	if n == 0 {
		return 1
	}
	step := n / 200
	if step < 1 {
		step = 1
	}
	checked, supported := 0, 0
	x := make([]float64, len(est.featCols))
	for i := 0; i < n; i += step {
		if !inS[i] {
			continue
		}
		est.featureVectorInto(i, x)
		for _, a := range updateAttrs {
			fi := est.featureIndex(a)
			x[fi] = est.encodeAt(fi, postVals[a][i])
		}
		for _, s := range summaries {
			fi := est.featureIndex(s.name)
			if fi >= 0 {
				x[fi] = s.post[i]
			}
		}
		checked++
		if est.hasSupport(x) {
			supported++
		}
	}
	if checked == 0 {
		return 1
	}
	return float64(supported) / float64(checked)
}

// appendPredicateAttrs extends the feature set with the view attributes
// referenced by WHEN and by the pre parts of the normalized FOR predicate,
// skipping duplicates, update attributes and columns absent from the view.
func appendPredicateAttrs(featCols []string, rel *relation.Relation, when hyperql.Expr, disjuncts []disjunct, updateAttrs []string) []string {
	have := map[string]bool{}
	for _, c := range featCols {
		have[c] = true
	}
	for _, a := range updateAttrs {
		have[a] = true
	}
	add := func(e hyperql.Expr) {
		for _, c := range hyperql.ColRefs(e) {
			if c.Time == hyperql.TimePost {
				continue
			}
			if !have[c.Name] && rel.Schema().Has(c.Name) {
				have[c.Name] = true
				featCols = append(featCols, c.Name)
			}
		}
	}
	add(when)
	for _, d := range disjuncts {
		for _, lit := range d.pre {
			add(lit)
		}
	}
	return featCols
}

// summaryFeature is a ψ summary column: the group mean of an update
// attribute over the tuples sharing a GroupBy value, before and after the
// update.
type summaryFeature struct {
	name string
	pre  []float64
	post []float64
}

// buildSummaries derives ψ features from the model's cross-tuple edges whose
// source is an update attribute.
func buildSummaries(v *view, model *causal.Model, updateAttrs []string, postVals map[string][]relation.Value) ([]summaryFeature, error) {
	if model == nil {
		return nil, nil
	}
	var out []summaryFeature
	for _, ce := range model.Cross {
		src := causal.Qualify(ce.FromRel, ce.FromAttr)
		var attr string
		for _, a := range updateAttrs {
			if v.qualified[a] == src {
				attr = a
			}
		}
		if attr == "" {
			continue
		}
		_, gAttr := causal.SplitQualified(ce.GroupBy)
		gi, ok := v.rel.Schema().Index(gAttr)
		if !ok {
			return nil, fmt.Errorf("engine: cross-edge group attribute %q is not in the relevant view", gAttr)
		}
		ai := v.rel.Schema().MustIndex(attr)
		n := v.rel.Len()
		type acc struct {
			preSum, postSum float64
			n               int
		}
		groups := map[string]*acc{}
		keys := make([]string, n)
		for i := 0; i < n; i++ {
			k := v.rel.Row(i)[gi].Key()
			keys[i] = k
			a := groups[k]
			if a == nil {
				a = &acc{}
				groups[k] = a
			}
			a.preSum += v.rel.Row(i)[ai].AsFloat()
			a.postSum += postVals[attr][i].AsFloat()
			a.n++
		}
		sf := summaryFeature{
			name: "psi_" + attr + "_by_" + gAttr,
			pre:  make([]float64, n),
			post: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			a := groups[keys[i]]
			sf.pre[i] = a.preSum / float64(a.n)
			sf.post[i] = a.postSum / float64(a.n)
		}
		out = append(out, sf)
	}
	return out, nil
}

// augmentView appends summary feature columns (pre-update values) to a copy
// of the view; returns the augmented relation and the new column names.
// Without summaries the original view is returned as is.
func augmentView(rel *relation.Relation, summaries []summaryFeature) (*relation.Relation, []string) {
	if len(summaries) == 0 {
		return rel, nil
	}
	cols := rel.Schema().Columns()
	var names []string
	for _, s := range summaries {
		cols = append(cols, relation.Column{Name: s.name, Kind: relation.KindFloat, Mutable: true})
		names = append(names, s.name)
	}
	schema := relation.MustSchema(cols...)
	out := relation.NewRelation(rel.Name(), schema)
	for i, row := range rel.Rows() {
		t := make(relation.Tuple, len(cols))
		copy(t, row)
		for si, s := range summaries {
			t[rel.Schema().Len()+si] = relation.Float(s.pre[i])
		}
		if err := out.Insert(t); err != nil {
			// Keys are copied unchanged; duplicates cannot occur.
			panic(err)
		}
	}
	return out, names
}
