package engine

import (
	"context"
	"strconv"
	"sync"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/obs"
)

// evalMetered evaluates query with a fresh meter riding the context and
// returns the result plus the meter snapshot.
func evalMetered(t *testing.T, ds string, size int, query string, opts Options) (*Result, *obs.MeterJSON) {
	t.Helper()
	q, err := hyperql.ParseWhatIf(query)
	if err != nil {
		t.Fatal(err)
	}
	meter := obs.NewMeter()
	ctx := obs.ContextWithMeter(context.Background(), meter)
	var res *Result
	switch ds {
	case "toy":
		db, model := dataset.Toy()
		res, err = EvaluateContext(ctx, db, model, q, opts)
	case "german":
		g := dataset.GermanSyn(size, 7)
		res, err = EvaluateContext(ctx, g.DB, g.Model, q, opts)
	case "german-cont":
		g := dataset.GermanSynContinuous(size, 7)
		res, err = EvaluateContext(ctx, g.DB, g.Model, q, opts)
	default:
		t.Fatalf("unknown dataset %q", ds)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res, meter.JSON()
}

// checkMeterGolden asserts the meter's fan-out-independent counters against
// the authoritative result fields.
func checkMeterGolden(t *testing.T, res *Result, mj *obs.MeterJSON) {
	t.Helper()
	if mj.TuplesEvaluated != uint64(res.ViewRows) {
		t.Errorf("meter tuples = %d, result view rows = %d", mj.TuplesEvaluated, res.ViewRows)
	}
	if mj.PlanShards != uint64(res.ShardPlan) {
		t.Errorf("meter plan = %d, result plan = %d", mj.PlanShards, res.ShardPlan)
	}
	if mj.ShardsRun != uint64(res.ShardPlan) {
		t.Errorf("meter shards run = %d, want the full plan %d (local evaluation)", mj.ShardsRun, res.ShardPlan)
	}
	if mj.FitsTrained != uint64(res.TrainedModels) {
		t.Errorf("meter fits trained = %d, result trained models = %d", mj.FitsTrained, res.TrainedModels)
	}
	if mj.FitsCached != 0 {
		t.Errorf("meter fits cached = %d on a cache-less evaluation", mj.FitsCached)
	}
	for _, stage := range []string{"view", "eval"} {
		if _, ok := mj.StagesMs[stage]; !ok {
			t.Errorf("meter missing %q stage (stages: %v)", stage, mj.StagesMs)
		}
	}
}

// meterCounters projects the fan-out-independent part of a cost vector for
// cross-fan-out comparison (stage wall times legitimately vary).
func meterCounters(mj *obs.MeterJSON) [6]uint64 {
	return [6]uint64{mj.TuplesEvaluated, mj.ShardsRun, mj.PlanShards,
		mj.FitsTrained, mj.FitsCached, mj.WhatIfEvals}
}

// TestMeterGoldenAcrossFanOuts pins the meter-accuracy contract: the cost
// vector's counters equal the authoritative Result/ShardPlan figures, and —
// like the results themselves — are identical at every worker fan-out. The
// cases cover the single-shard regime, the multi-shard freq regime, and the
// multi-shard regression regime (where models actually train).
func TestMeterGoldenAcrossFanOuts(t *testing.T) {
	cases := []struct {
		name    string
		dataset string
		size    int
		query   string
	}{
		{name: "german-1000-plan1", dataset: "german", size: 1000,
			query: `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`},
		{name: "german-5000-plan2", dataset: "german", size: 5000,
			query: `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`},
		{name: "german-cont-5000-trained", dataset: "german-cont", size: 5000,
			query: `USE German UPDATE(CreditAmount) = 1.2 * PRE(CreditAmount) OUTPUT COUNT(Credit = 1)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var base *obs.MeterJSON
			for _, shards := range []int{1, 4} {
				t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
					res, mj := evalMetered(t, c.dataset, c.size, c.query, Options{Seed: 7, Shards: shards})
					checkMeterGolden(t, res, mj)
					if base == nil {
						base = mj
						return
					}
					if meterCounters(mj) != meterCounters(base) {
						t.Errorf("counters vary with fan-out: %v vs %v",
							meterCounters(mj), meterCounters(base))
					}
				})
			}
		})
	}
}

// TestMeterConcurrentQueriesNoBleed runs interleaved metered queries (plus
// an unmetered one exercising the nil path) concurrently and asserts every
// meter matches its own query's sequential reference — charges can never
// bleed across contexts. Run under -race this also proves the charging
// paths are data-race-free.
func TestMeterConcurrentQueriesNoBleed(t *testing.T) {
	queries := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
	}
	// Sequential references.
	refs := make([][6]uint64, len(queries))
	for i, q := range queries {
		_, mj := evalMetered(t, "german", 2000, q, Options{Seed: 7, Shards: 2})
		refs[i] = meterCounters(mj)
	}

	g := dataset.GermanSyn(2000, 7)
	const goroutines, iters = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (w + it) % len(queries)
				q, err := hyperql.ParseWhatIf(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				meter := obs.NewMeter()
				ctx := obs.ContextWithMeter(context.Background(), meter)
				if _, err := EvaluateContext(ctx, g.DB, g.Model, q, Options{Seed: 7, Shards: 2}); err != nil {
					errs <- err
					return
				}
				if got := meterCounters(meter.JSON()); got != refs[qi] {
					t.Errorf("goroutine %d iter %d: meter %v, want %v (query %d)", w, it, got, refs[qi], qi)
				}
			}
		}()
	}
	// One unmetered evaluation racing the metered ones: the nil-meter path
	// must stay silent and safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		q, err := hyperql.ParseWhatIf(queries[0])
		if err != nil {
			errs <- err
			return
		}
		if _, err := EvaluateContext(context.Background(), g.DB, g.Model, q, Options{Seed: 7, Shards: 2}); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
