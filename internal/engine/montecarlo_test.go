package engine

import (
	"math"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/prcm"
	"hyper/internal/relation"
)

// TestEngineMatchesPossibleWorldSemantics is the semantic differential test:
// the engine's closed-form backdoor computation (Section 3.3) must agree
// with the direct Monte-Carlo implementation of the possible-world semantics
// (Definitions 1-5) on the same post-update distribution.
func TestEngineMatchesPossibleWorldSemantics(t *testing.T) {
	g := dataset.GermanSyn(10000, 101)
	n := float64(g.Rel().Len())

	countGood := func(rel *relation.Relation) float64 {
		ci := rel.Schema().MustIndex("Credit")
		c := 0
		for _, row := range rel.Rows() {
			c += int(row[ci].AsInt())
		}
		return float64(c)
	}

	cases := []struct {
		name  string
		query string
		iv    prcm.Intervention
	}{
		{
			"set-status-max",
			`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
			prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }},
		},
		{
			"set-savings-min",
			`USE German UPDATE(Savings) = 0 OUTPUT COUNT(Credit = 1)`,
			prcm.Intervention{Attr: "Savings", Fn: func(float64) float64 { return 0 }},
		},
		{
			"shift-housing",
			`USE German UPDATE(Housing) = 1 + PRE(Housing) OUTPUT COUNT(Credit = 1)`,
			prcm.Intervention{Attr: "Housing", Fn: func(pre float64) float64 { return pre + 1 }},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mc := g.World.MonteCarloExpectation(11, 20, countGood, c.iv) / n
			res := evalGerman(t, g, c.query, Options{Seed: 1})
			engineVal := res.Value / n
			if math.Abs(engineVal-mc) > 0.03 {
				t.Errorf("engine %.4f vs possible-world Monte Carlo %.4f", engineVal, mc)
			}
		})
	}
}

// TestMonteCarloRestrictedUpdateSet validates that the WHEN-set semantics
// agree: only selected tuples' worlds vary.
func TestMonteCarloRestrictedUpdateSet(t *testing.T) {
	g := dataset.GermanSyn(8000, 103)
	n := float64(g.Rel().Len())
	ai := g.Rel().Schema().MustIndex("Age")
	rows := map[int]bool{}
	for i, row := range g.Rel().Rows() {
		if row[ai].AsInt() == 0 {
			rows[i] = true
		}
	}
	countGood := func(rel *relation.Relation) float64 {
		ci := rel.Schema().MustIndex("Credit")
		c := 0
		for _, row := range rel.Rows() {
			c += int(row[ci].AsInt())
		}
		return float64(c)
	}
	// Status = 2 rather than the domain maximum: Age=0 & Status=3 has almost
	// no observational support (a positivity violation), where any
	// adjustment-based estimator is data-starved; level 2 is well supported.
	mc := g.World.MonteCarloExpectation(13, 20, countGood,
		prcm.Intervention{Attr: "Status", Rows: rows, Fn: func(float64) float64 { return 2 }}) / n
	res := evalGerman(t, g, `USE German WHEN Age = 0 UPDATE(Status) = 2 OUTPUT COUNT(Credit = 1)`, Options{Seed: 1})
	if math.Abs(res.Value/n-mc) > 0.03 {
		t.Errorf("engine %.4f vs Monte Carlo %.4f with WHEN set", res.Value/n, mc)
	}
}
