package engine

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyper/internal/plan"
)

// updatePlans regenerates testdata/plans.golden from the current planner:
//
//	go test -run TestPlanGolden ./internal/engine -update
var updatePlans = flag.Bool("update", false, "rewrite testdata/plans.golden from the current planner output")

const plansGoldenPath = "testdata/plans.golden"

// planOnlyCases extends the golden corpus past the parity queries with WHEN
// shapes that exercise every planner classification: equality and range
// pushdown with cost-based reordering, IN/NOT IN over interned codes, and
// residual conjuncts (arithmetic, NOT) that must stay row-evaluated.
var planOnlyCases = []parityCase{
	{
		name:    "german-when-reordered",
		dataset: "german",
		// Sex (card 2) is less selective than Age (card 4): cost order must
		// put the Age equality first regardless of query order.
		query: `USE German WHEN Sex = 1 AND Age = 2 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		opts:  Options{Seed: 7},
	},
	{
		name:    "german-when-range-in",
		dataset: "german",
		query:   `USE German WHEN CreditAmount > 1 AND Age IN (0, 2) UPDATE(Savings) = 2 OUTPUT AVG(POST(Credit))`,
		opts:    Options{Seed: 7},
	},
	{
		name:    "german-when-residual",
		dataset: "german",
		// Arithmetic on the left side is not a column-literal comparison: the
		// conjunct stays residual while its AND-siblings still push down.
		query: `USE German WHEN Age + Sex = 2 AND Housing <= 1 AND Savings NOT IN (0) UPDATE(Housing) = 0 OUTPUT COUNT(Credit = 1)`,
		opts:  Options{Seed: 7},
	},
	{
		name:    "toy-when-string-range",
		dataset: "toy",
		query: toyUse + `
			WHEN Price < 600 AND Brand != 'HP'
			UPDATE(Price) = 0.9 * PRE(Price)
			OUTPUT AVG(POST(Rtng))`,
		opts: Options{Seed: 7},
	},
}

// renderPlans dumps the EXPLAIN rendering of every pinned parity query
// through a fresh plan cache. The output is fully deterministic (fingerprints
// are FNV over canonical query text + schema signature; the explain text is
// literal-free), so the golden is compared byte-exact.
func renderPlans(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	cases := append(append([]parityCase{}, parityCases...), planOnlyCases...)
	for _, c := range cases {
		opts := c.opts
		opts.Plans = plan.NewCache(0)
		opts.Cache = NewCache()
		opts.DryRun = true
		cc := c
		cc.opts = opts
		res := parityEval(t, cc)
		if res.PlanText == "" {
			t.Fatalf("%s: dry run produced no plan text", c.name)
		}
		fmt.Fprintf(&b, "=== %s\n%s\n", c.name, strings.TrimRight(res.PlanText, "\n"))
	}
	return b.String()
}

// TestPlanGolden is the plan-stability gate: the EXPLAIN output of every
// pinned toy/German query must match testdata/plans.golden byte for byte.
// Intentional planner changes regenerate it with -update; unintentional
// drift (a conjunct reordered, a pushdown lost to a classification change)
// fails CI's plan-golden step.
func TestPlanGolden(t *testing.T) {
	got := renderPlans(t)
	if *updatePlans {
		if err := os.MkdirAll(filepath.Dir(plansGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(plansGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", plansGoldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(plansGoldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if want := string(raw); got != want {
		t.Errorf("plans drifted from %s (approve with -update):\n--- golden\n%s\n--- current\n%s", plansGoldenPath, want, got)
	}
}

// TestPlannedParityGoldens re-runs every pinned parity case through the
// planner and holds it to the same 17-digit goldens as the unplanned path —
// cache-cold, then cache-warm (the repeat must be served from the plan
// cache), at a serial and a parallel fan-out. This is the bit-identity
// contract on real pinned numbers rather than fuzzer-generated ones.
func TestPlannedParityGoldens(t *testing.T) {
	for _, c := range parityCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, shards := range []int{1, 4} {
				opts := c.opts
				opts.Shards = shards
				opts.Plans = plan.NewCache(0)
				opts.Cache = NewCache()
				for rep, label := range []string{"cold", "warm"} {
					cc := c
					cc.opts = opts
					res := parityEval(t, cc)
					if res.EstimatorUsed != c.estimator {
						t.Errorf("shards=%d %s: estimator = %q, golden %q", shards, label, res.EstimatorUsed, c.estimator)
					}
					if got := f17(res.Value); got != c.value {
						t.Errorf("shards=%d %s: value = %s, golden %s", shards, label, got, c.value)
					}
					if got := f17(res.Sum); got != c.sum {
						t.Errorf("shards=%d %s: sum = %s, golden %s", shards, label, got, c.sum)
					}
					if got := f17(res.Count); got != c.count {
						t.Errorf("shards=%d %s: count = %s, golden %s", shards, label, got, c.count)
					}
					if rep == 1 && !res.PlanCacheHit {
						t.Errorf("shards=%d: warm repeat missed the plan cache", shards)
					}
				}
			}
		})
	}
}
