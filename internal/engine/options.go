// Package engine implements HypeR's core contribution: evaluation of
// probabilistic what-if queries (Sections 3.2-3.3 and Appendix A of the
// paper). Given a database, a probabilistic relational causal model, and a
// parsed what-if query, it constructs the relevant view, decomposes the
// database into independent blocks, normalizes the FOR predicate into
// disjoint Pre/Post disjuncts, estimates the post-update conditional
// distributions by backdoor adjustment with a trained regressor, and
// combines per-block results with the decomposable aggregate.
package engine

import (
	"context"

	"hyper/internal/ml"
	"hyper/internal/plan"
	"hyper/internal/shard"
)

// Mode selects how the engine conditions its estimates.
type Mode int

// Engine modes, matching the variants evaluated in Section 5.
const (
	// ModeFull is HypeR with background knowledge: the backdoor set is
	// derived from the causal graph.
	ModeFull Mode = iota
	// ModeNB is HypeR-NB ("no background"): the causal graph is ignored and
	// all attributes are used as the conditioning set, guaranteeing the true
	// backdoor set is included (canonical model, Section 2.2).
	ModeNB
	// ModeIndep is the provenance-style baseline: it ignores causal
	// dependencies entirely and conditions on nothing, so it answers from
	// raw correlation (Section 5.1).
	ModeIndep
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "HypeR"
	case ModeNB:
		return "HypeR-NB"
	case ModeIndep:
		return "Indep"
	default:
		return "mode(?)"
	}
}

// EstimatorKind selects the conditional-probability estimator.
type EstimatorKind int

// Estimator choices.
const (
	// EstimatorAuto uses the exact frequency estimator when every feature is
	// discrete and its support is small, otherwise a random forest. This
	// mirrors the paper's index optimization (A.4).
	EstimatorAuto EstimatorKind = iota
	// EstimatorFreq forces the exact conditional-frequency estimator.
	EstimatorFreq
	// EstimatorForest forces the random-forest regressor.
	EstimatorForest
	// EstimatorLinear uses a ridge linear regressor when any feature is
	// continuous (falling back to the exact frequency estimator when all
	// features are discrete). The how-to engine defaults to it: Section 4.3
	// expresses the IP objective through a linear regression function φ.
	EstimatorLinear
)

// RemoteFitter is the hook a distribution layer implements to fit
// shard-mergeable estimators off-process. The engine identifies a model by
// the canonical query text plus the event-subset bitmask (and Y-weighting);
// the fitter returns one wire-encoded partial index per shard of the
// canonical fit plan, in plan order, each fitted by any process that can
// prepare the same evaluation. The engine merges the parts in plan order,
// reconstructing exactly the estimator a local fit would produce — so a
// fitter can fail (or be absent) at any time and the engine's local
// fallback cannot change a result. Implementations must be safe for
// concurrent use: shard workers and how-to candidate scorers fit models in
// parallel.
type RemoteFitter interface {
	// FitFreqParts fits the frequency estimator of the query's event subset
	// mask (Y-weighted when weighted) per fit-plan shard, returning
	// fitShards parts in plan order.
	FitFreqParts(ctx context.Context, query string, o Options, mask uint64, weighted bool, fitShards int) ([]*ml.FreqWire, error)
	// SupportParts builds the support-set index per fit-plan shard.
	SupportParts(ctx context.Context, query string, o Options, fitShards int) ([]*ml.SupportWire, error)
}

// ProgressFunc receives coarse progress updates during evaluation: stage is
// a short label ("tuples" for the engine's per-tuple loop, "candidates" for
// how-to scoring, "combos" for the brute-force search), done/total count
// units of that stage (total <= 0 means unknown). Implementations must be
// safe for concurrent use — the engine reports from parallel workers — and
// cheap, since they sit near hot loops.
type ProgressFunc func(stage string, done, total int)

// Options configures a what-if evaluation.
type Options struct {
	Mode Mode
	// SampleSize > 0 trains estimators on a random sample of at most this
	// many view rows (the HypeR-sampled variant, Section 5.2). 0 uses all.
	SampleSize int
	// Seed drives sampling and forest training for reproducibility.
	Seed int64
	// Estimator selects the conditional estimator.
	Estimator EstimatorKind
	// Forest overrides forest hyperparameters; zero value uses defaults.
	Forest ml.ForestParams
	// MaxDisjuncts caps the DNF expansion of the FOR clause (A.2.3 notes the
	// 2^t blowup is in query complexity, not data). Defaults to 64.
	MaxDisjuncts int
	// MaxDomainExpand caps the domain expansion of mixed Pre/Post literals
	// (A.2.4). Defaults to 64 distinct values.
	MaxDomainExpand int
	// DisableBlocks turns off block-independent decomposition (used by the
	// ablation benchmarks; results must not change).
	DisableBlocks bool
	// Shards caps the worker fan-out of the shard-parallel stages: the
	// per-tuple evaluation loop, per-shard estimator fitting, and the
	// how-to candidate-scoring pool (0 = GOMAXPROCS, 1 = serial). It is
	// purely an execution knob: work is partitioned by the canonical shard
	// plan (see ShardRows) and partial results reduce in plan order, so
	// every value of Shards produces bit-identical results.
	Shards int
	// ShardRows is the target rows per shard of the canonical plan
	// (default 4096). Unlike Shards it is part of evaluation semantics:
	// the plan fixes the reduction tree of every floating-point merge, so
	// changing the granularity can shift results by an ulp — which is why
	// ShardRows participates in estimator cache identity and Shards does
	// not.
	ShardRows int
	// DryRun stops after planning (view, blocks, backdoor set, FOR
	// normalization, estimator selection) without evaluating any tuple;
	// Result.Value is zero and the diagnostics describe the plan. Used by
	// Explain.
	DryRun bool
	// Cache, when non-nil, memoizes views, block decompositions and trained
	// estimators across queries that share USE/WHEN/FOR clauses (the how-to
	// engine passes one cache across all candidate what-if queries). The
	// cache must only be shared across queries on the same database and
	// causal model.
	Cache *Cache
	// Plans, when non-nil, caches compiled query plans — WHEN pushdown
	// programs, cost-based conjunct order, per-view column stats — keyed by
	// shape fingerprint + schema signature, so structurally identical
	// queries skip planning. Purely an execution knob excluded from
	// estimator cache identity: planned and unplanned evaluation are
	// bit-identical (the plan validates itself error-free or falls back to
	// the row loop). Like Cache it must only be shared across queries on
	// the same database.
	Plans *plan.Cache
	// Progress, when non-nil, receives tuple-evaluation progress updates
	// (stage "tuples"). It does not participate in cache identity: progress
	// reporting never changes a result.
	Progress ProgressFunc
	// RemoteFit, when non-nil, lets shard-mergeable estimator fits run
	// off-process (see RemoteFitter). Like Shards it is purely an execution
	// knob excluded from cache identity: remote and local fits are
	// bit-identical, and any remote failure falls back to the local fit.
	RemoteFit RemoteFitter
}

// WithShards returns a copy of o with the execution fan-out set; results
// are unaffected (see Shards). The how-to scoring pool passes 1 so its
// candidate-level parallelism is not multiplied by tuple-level workers.
func (o Options) WithShards(n int) Options {
	o.Shards = n
	return o
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ShardRows <= 0 {
		// Normalized here (not just inside shard.Rows) so ShardRows=0 and an
		// explicit default produce the same estimator cache identity.
		out.ShardRows = shard.DefaultTargetRows
	}
	if out.MaxDisjuncts <= 0 {
		out.MaxDisjuncts = 64
	}
	if out.MaxDomainExpand <= 0 {
		out.MaxDomainExpand = 64
	}
	if out.Forest.NumTrees <= 0 {
		out.Forest = ml.DefaultForestParams()
		out.Forest.Seed = out.Seed
	}
	return out
}
