package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
)

// TestEvaluateContextCancelledUpfront pins that a dead context stops the
// pipeline before any work.
func TestEvaluateContextCancelledUpfront(t *testing.T) {
	db, model := dataset.Toy()
	q, err := hyperql.ParseWhatIf(`USE Product UPDATE(Price) = 1.1 * PRE(Price) OUTPUT AVG(POST(Price))`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateContext(ctx, db, model, q, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEvaluateContextCancelMidTuples cancels from inside the progress hook,
// i.e. while the parallel tuple loop is running, and expects the loop to
// stop at its next stride check.
func TestEvaluateContextCancelMidTuples(t *testing.T) {
	b, err := dataset.Lookup("german")
	if err != nil {
		t.Fatal(err)
	}
	db, model := b.Build(2.0, 7) // 10000 rows: many strides per worker
	q, err := hyperql.ParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	opts := Options{Seed: 7, Progress: func(stage string, done, total int) {
		if stage == "tuples" && done > 0 && done < total {
			fired.Store(true)
			cancel()
		}
	}}
	res, err := EvaluateContext(ctx, db, model, q, opts)
	if !fired.Load() {
		t.Skip("evaluation finished within one stride; nothing to cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %+v), want context.Canceled", err, res)
	}
}
