package engine

import (
	"context"
	"fmt"

	"hyper/internal/causal"
	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/relation"
	"hyper/internal/shard"
)

// Partial evaluation: the engine's distributed-execution surface. A what-if
// evaluation decomposes over the canonical shard plan into block-window
// partials that are pure functions of (data, query, semantic options, shard
// id) — independent of which process computes them. A coordinator can
// therefore hand disjoint shard subsets to remote workers, collect their
// PartialResults, and MergePartials them in plan order to reconstruct the
// exact Result a single process would produce. The same property holds for
// shard-mergeable estimator fits through FitEventPartialContext, whose
// per-shard freq-cell maps merge via internal/ml's wire encoding.

// ShardPartial is the serializable block-window partial of one plan shard:
// the per-block (sum, count) accumulators over the window of block ids the
// shard's rows touch. An empty shard has nil Sum/Cnt.
type ShardPartial struct {
	Shard    int       `json:"shard"`
	MinBlock int       `json:"min_block,omitempty"`
	Sum      []float64 `json:"sum,omitempty"`
	Cnt      []float64 `json:"cnt,omitempty"`
}

// PartialMeta is the evaluation metadata a partial evaluation derives
// alongside its partials. Every field except TrainedModels is a
// deterministic function of (data, query, semantic options); a coordinator
// verifies that all workers agree on those fields before merging, turning
// any nondeterminism into a loud error instead of a silently wrong merge.
// TrainedModels is execution-dependent (a worker trains only the models its
// shards' tuples demand) and is excluded from the consistency check.
type PartialMeta struct {
	Plan          int      `json:"plan"`
	Blocks        int      `json:"blocks"`
	Agg           string   `json:"agg"` // "count" | "sum" | "avg"
	Mode          Mode     `json:"mode"`
	Backdoor      []string `json:"backdoor,omitempty"`
	EstimatorUsed string   `json:"estimator"`
	ShardedFit    bool     `json:"sharded_fit,omitempty"`
	Disjuncts     int      `json:"disjuncts"`
	ViewRows      int      `json:"view_rows"`
	UpdatedRows   int      `json:"updated_rows"`
	SampledRows   int      `json:"sampled_rows"`
	TrainedModels int      `json:"trained_models"`
}

// PartialResult is what a (possibly remote) partial evaluation returns: the
// shared metadata plus one partial per evaluated shard.
type PartialResult struct {
	Meta     PartialMeta    `json:"meta"`
	Partials []ShardPartial `json:"partials"`
}

// Consistent reports whether two metas agree on every deterministic field —
// the cross-worker determinism check. TrainedModels is execution-dependent
// and ignored.
func (m PartialMeta) Consistent(o PartialMeta) bool {
	if m.Plan != o.Plan || m.Blocks != o.Blocks || m.Agg != o.Agg || m.Mode != o.Mode ||
		m.EstimatorUsed != o.EstimatorUsed || m.ShardedFit != o.ShardedFit ||
		m.Disjuncts != o.Disjuncts || m.ViewRows != o.ViewRows ||
		m.UpdatedRows != o.UpdatedRows || m.SampledRows != o.SampledRows ||
		len(m.Backdoor) != len(o.Backdoor) {
		return false
	}
	for i := range m.Backdoor {
		if m.Backdoor[i] != o.Backdoor[i] {
			return false
		}
	}
	return true
}

func aggName(a hyperql.AggFunc) string {
	switch a {
	case hyperql.AggCount:
		return "count"
	case hyperql.AggSum:
		return "sum"
	case hyperql.AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%s)", string(a))
	}
}

func aggFromName(s string) (hyperql.AggFunc, error) {
	switch s {
	case "count":
		return hyperql.AggCount, nil
	case "sum":
		return hyperql.AggSum, nil
	case "avg":
		return hyperql.AggAvg, nil
	default:
		return "", fmt.Errorf("engine: unknown aggregate %q (want count|sum|avg)", s)
	}
}

func (p *evalPrep) meta() PartialMeta {
	return PartialMeta{
		Plan:          p.plan.Shards(),
		Blocks:        p.nBlocks,
		Agg:           aggName(p.agg),
		Mode:          p.res.Mode,
		Backdoor:      p.res.Backdoor,
		EstimatorUsed: p.res.EstimatorUsed,
		ShardedFit:    p.res.ShardedFit,
		Disjuncts:     p.res.Disjuncts,
		ViewRows:      p.res.ViewRows,
		UpdatedRows:   p.res.UpdatedRows,
		SampledRows:   p.res.SampledRows,
		TrainedModels: p.ev.est.trainedModels(),
	}
}

// PlanContext resolves the canonical shard plan of a what-if query without
// evaluating it: it materializes (or fetches from cache) the relevant view
// and derives the plan from the view's row count and the ShardRows
// granularity. A coordinator calls this to know how many shards it is
// assigning before any worker does real work.
func PlanContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts Options) (planShards, viewRows int, err error) {
	o := opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	v, _, _, _, err := resolveView(db, q, o)
	if err != nil {
		return 0, 0, err
	}
	plan := shard.Rows(v.rel.Len(), o.ShardRows)
	return plan.Shards(), v.rel.Len(), nil
}

// EvaluatePartialContext runs the full evaluation pipeline but evaluates
// tuples only for the listed shards of the canonical plan, returning their
// serializable partials plus the evaluation metadata. shards must be
// distinct and within the plan. The partials (and every Meta field except
// TrainedModels) are bit-identical to what any other process evaluating the
// same (data, query, semantic options) would produce for the same shards.
func EvaluatePartialContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts Options, shards []int) (*PartialResult, error) {
	if opts.DryRun {
		return nil, fmt.Errorf("engine: partial evaluation has no dry-run form")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: no shards requested")
	}
	p, err := prepareEvaluation(ctx, db, model, q, opts)
	if err != nil {
		return nil, err
	}
	parts, err := p.evalShards(ctx, shards)
	if err != nil {
		return nil, err
	}
	return &PartialResult{Meta: p.meta(), Partials: parts}, nil
}

// MergePartials reduces a complete set of shard partials (every shard of the
// plan exactly once, in any arrival order) into the final Result, folding
// strictly in plan order so the reduction tree — and therefore every bit of
// the result — matches a single-process evaluation.
func MergePartials(meta PartialMeta, parts []ShardPartial) (*Result, error) {
	agg, err := aggFromName(meta.Agg)
	if err != nil {
		return nil, err
	}
	if meta.Plan <= 0 {
		return nil, fmt.Errorf("engine: merge: plan has %d shards", meta.Plan)
	}
	if meta.Blocks <= 0 {
		return nil, fmt.Errorf("engine: merge: meta has %d blocks", meta.Blocks)
	}
	if len(parts) != meta.Plan {
		return nil, fmt.Errorf("engine: merge: have %d partials, plan has %d shards", len(parts), meta.Plan)
	}
	ordered := make([]ShardPartial, meta.Plan)
	seen := make([]bool, meta.Plan)
	for _, p := range parts {
		if p.Shard < 0 || p.Shard >= meta.Plan {
			return nil, fmt.Errorf("engine: merge: shard %d out of plan range [0,%d)", p.Shard, meta.Plan)
		}
		if seen[p.Shard] {
			return nil, fmt.Errorf("engine: merge: shard %d delivered twice", p.Shard)
		}
		if len(p.Sum) != len(p.Cnt) {
			return nil, fmt.Errorf("engine: merge: shard %d has %d sums but %d counts", p.Shard, len(p.Sum), len(p.Cnt))
		}
		if p.MinBlock < 0 || p.MinBlock+len(p.Sum) > meta.Blocks {
			return nil, fmt.Errorf("engine: merge: shard %d block window [%d,%d) outside [0,%d)",
				p.Shard, p.MinBlock, p.MinBlock+len(p.Sum), meta.Blocks)
		}
		seen[p.Shard] = true
		ordered[p.Shard] = p
	}
	res := &Result{
		Mode:          meta.Mode,
		Backdoor:      meta.Backdoor,
		Blocks:        meta.Blocks,
		Disjuncts:     meta.Disjuncts,
		EstimatorUsed: meta.EstimatorUsed,
		TrainedModels: meta.TrainedModels,
		SampledRows:   meta.SampledRows,
		ViewRows:      meta.ViewRows,
		UpdatedRows:   meta.UpdatedRows,
		ShardPlan:     meta.Plan,
		ShardedFit:    meta.ShardedFit,
	}
	foldPartials(res, ordered, meta.Blocks, agg)
	return res, nil
}

// EventFitPartial is the result of a per-shard shard-mergeable fit: one
// wire-encoded partial index per requested fit-plan shard (and, when asked,
// the matching support-set partials).
type EventFitPartial struct {
	// FitPlan is the canonical fit plan's shard count (over the training
	// rows), which both ends must agree on.
	FitPlan   int               `json:"fit_plan"`
	Estimator string            `json:"estimator"`
	Parts     []*ml.FreqWire    `json:"parts,omitempty"`
	Support   []*ml.SupportWire `json:"support,omitempty"`
}

// FitEventPartialContext fits the frequency estimator of the query's event
// subset `mask` (a bitmask over the distinct post events, conjoined with the
// OUTPUT condition; Y-weighted when weighted) over the listed shards of the
// canonical fit plan, returning one wire part per listed shard in the order
// listed. wantCells/wantSupport select which indexes to build. Because the
// event list, the fit plan, the training rows and the labeling are all
// deterministic in (data, query, semantic options), a coordinator that
// merges the parts of every fit-plan shard in plan order reconstructs
// exactly the estimator its own local fit would have produced.
func FitEventPartialContext(ctx context.Context, db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts Options, mask uint64, weighted bool, wantCells, wantSupport bool, shards []int) (*EventFitPartial, error) {
	if opts.DryRun {
		return nil, fmt.Errorf("engine: partial fit has no dry-run form")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: no fit shards requested")
	}
	p, err := prepareEvaluation(ctx, db, model, q, opts)
	if err != nil {
		return nil, err
	}
	est := p.ev.est
	if !ml.ShardMergeable(est.kind) {
		return nil, fmt.Errorf("engine: estimator %q is not shard-mergeable", est.kind)
	}
	if len(p.ev.events) > 64 {
		return nil, fmt.Errorf("engine: %d distinct post events exceed the 64-bit subset masks", len(p.ev.events))
	}
	if len(p.ev.events) < 64 && mask>>uint(len(p.ev.events)) != 0 {
		return nil, fmt.Errorf("engine: event mask %#x references events beyond the query's %d", mask, len(p.ev.events))
	}
	if weighted && p.ev.yIdx < 0 {
		return nil, fmt.Errorf("engine: weighted fit requested but the query has no Y column")
	}
	fitPlan := est.fitPlan
	out := &EventFitPartial{FitPlan: fitPlan.Shards(), Estimator: est.kind}
	seen := make([]bool, fitPlan.Shards())
	for _, s := range shards {
		if s < 0 || s >= fitPlan.Shards() {
			return nil, fmt.Errorf("engine: fit shard %d out of plan range [0,%d)", s, fitPlan.Shards())
		}
		if seen[s] {
			return nil, fmt.Errorf("engine: fit shard %d requested twice", s)
		}
		seen[s] = true
	}

	lits := p.ev.maskLits(mask)
	all := lits
	if p.ev.outCond != nil {
		all = append(append([]hyperql.Expr(nil), lits...), p.ev.outCond)
	}
	label := p.ev.labelFor(all, weighted)
	for _, s := range shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lo, hi := fitPlan.Bounds(s)
		rows := est.trainRows[lo:hi]
		if wantCells {
			y := make([]float64, len(rows))
			for i, r := range rows {
				v, err := label(r)
				if err != nil {
					return nil, fmt.Errorf("engine: labeling post event: %w", err)
				}
				y[i] = v
			}
			out.Parts = append(out.Parts, ml.EncodeFreqWire(ml.FitFreqFrame(est.frame, rows, y, est.keepFirst)))
		}
		if wantSupport {
			out.Support = append(out.Support, ml.EncodeSupportWire(ml.NewSupportSet(est.frame, rows)))
		}
	}
	return out, nil
}
