package engine

import (
	"fmt"
	"os"
	"testing"
)

// TestDumpParityGoldens prints the current engine's results for the parity
// cases; run with HYPER_DUMP_GOLDENS=1 to regenerate the literals in
// parity_test.go after an intentional behaviour change.
func TestDumpParityGoldens(t *testing.T) {
	if os.Getenv("HYPER_DUMP_GOLDENS") == "" {
		t.Skip("set HYPER_DUMP_GOLDENS=1 to dump")
	}
	for _, c := range parityCases {
		res := parityEval(t, c)
		fmt.Printf("%s:\n\testimator: %q,\n\tvalue:     %q,\n\tsum:       %q,\n\tcount:     %q,\n",
			c.name, res.EstimatorUsed, f17(res.Value), f17(res.Sum), f17(res.Count))
	}
}
