package engine

import (
	"fmt"
	"sort"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

// disjunct is one disjoint component of a normalized FOR predicate
// (Appendix A.2.1): a conjunction of pre-update conditions, which are
// deterministic per tuple, and post-update conditions, which are events
// under the post-update distribution.
type disjunct struct {
	pre  []hyperql.Expr
	post []hyperql.Expr
}

// normalizeFor rewrites an arbitrary Boolean FOR predicate into a
// disjunction of (pre ∧ post) conjunctions: negation normal form, then DNF
// distribution (A.2.3), then domain expansion of literals mixing PRE and
// POST references (A.2.4). A nil predicate yields a single always-true
// disjunct.
func normalizeFor(e hyperql.Expr, view *relation.Relation, maxDisjuncts, maxDomain int) ([]disjunct, error) {
	if e == nil {
		return []disjunct{{}}, nil
	}
	n := nnf(e, false)
	lits, err := dnf(n, maxDisjuncts)
	if err != nil {
		return nil, err
	}
	var out []disjunct
	for _, conj := range lits {
		ds, err := classifyConjunct(conj, view, maxDisjuncts, maxDomain)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
		if len(out) > maxDisjuncts {
			return nil, fmt.Errorf("engine: FOR predicate expands to more than %d disjuncts", maxDisjuncts)
		}
	}
	return out, nil
}

// nnf pushes negations down to literals, flipping comparison operators.
func nnf(e hyperql.Expr, neg bool) hyperql.Expr {
	switch x := e.(type) {
	case *hyperql.Unary:
		if x.Op == "NOT" {
			return nnf(x.X, !neg)
		}
	case *hyperql.Binary:
		switch x.Op {
		case "AND":
			op := "AND"
			if neg {
				op = "OR"
			}
			return &hyperql.Binary{Op: op, L: nnf(x.L, neg), R: nnf(x.R, neg)}
		case "OR":
			op := "OR"
			if neg {
				op = "AND"
			}
			return &hyperql.Binary{Op: op, L: nnf(x.L, neg), R: nnf(x.R, neg)}
		case "=", "!=", "<", "<=", ">", ">=":
			if neg {
				return &hyperql.Binary{Op: flipCmp(x.Op), L: x.L, R: x.R}
			}
			return x
		}
	case *hyperql.InList:
		if neg {
			return &hyperql.InList{X: x.X, Vals: x.Vals, Neg: !x.Neg}
		}
		return x
	case *hyperql.Literal:
		if neg {
			return &hyperql.Literal{Val: relation.Bool(!x.Val.AsBool())}
		}
		return x
	}
	if neg {
		return &hyperql.Unary{Op: "NOT", X: e}
	}
	return e
}

func flipCmp(op string) string {
	switch op {
	case "=":
		return "!="
	case "!=":
		return "="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

// dnf distributes AND over OR, returning a list of conjunctions (each a list
// of literals).
func dnf(e hyperql.Expr, maxDisjuncts int) ([][]hyperql.Expr, error) {
	switch x := e.(type) {
	case *hyperql.Binary:
		switch x.Op {
		case "OR":
			l, err := dnf(x.L, maxDisjuncts)
			if err != nil {
				return nil, err
			}
			r, err := dnf(x.R, maxDisjuncts)
			if err != nil {
				return nil, err
			}
			out := append(l, r...)
			if len(out) > maxDisjuncts {
				return nil, fmt.Errorf("engine: FOR predicate expands to more than %d disjuncts", maxDisjuncts)
			}
			return out, nil
		case "AND":
			l, err := dnf(x.L, maxDisjuncts)
			if err != nil {
				return nil, err
			}
			r, err := dnf(x.R, maxDisjuncts)
			if err != nil {
				return nil, err
			}
			if len(l)*len(r) > maxDisjuncts {
				return nil, fmt.Errorf("engine: FOR predicate expands to more than %d disjuncts", maxDisjuncts)
			}
			var out [][]hyperql.Expr
			for _, a := range l {
				for _, b := range r {
					conj := make([]hyperql.Expr, 0, len(a)+len(b))
					conj = append(conj, a...)
					conj = append(conj, b...)
					out = append(out, conj)
				}
			}
			return out, nil
		}
	}
	return [][]hyperql.Expr{{e}}, nil
}

// literalTime classifies a literal by the temporal references it contains.
func literalTime(e hyperql.Expr) (hasPre, hasPost bool) {
	for _, c := range hyperql.ColRefs(e) {
		if c.Time == hyperql.TimePost {
			hasPost = true
		} else {
			// FOR defaults to Pre (Section 3.1).
			hasPre = true
		}
	}
	return
}

// classifyConjunct splits a conjunction of literals into pre and post parts,
// expanding mixed literals over the observed domain of their Pre attribute
// (A.2.4). The expansion turns one mixed literal into |Dom| disjuncts of the
// form (Pre(A)=a ∧ post-literal[A:=a]).
func classifyConjunct(conj []hyperql.Expr, view *relation.Relation, maxDisjuncts, maxDomain int) ([]disjunct, error) {
	base := disjunct{}
	var mixed []hyperql.Expr
	for _, lit := range conj {
		hasPre, hasPost := literalTime(lit)
		switch {
		case hasPre && hasPost:
			mixed = append(mixed, lit)
		case hasPost:
			base.post = append(base.post, lit)
		default:
			base.pre = append(base.pre, lit)
		}
	}
	out := []disjunct{base}
	for _, lit := range mixed {
		// Collect the distinct Pre attributes referenced.
		attrs := map[string]bool{}
		for _, c := range hyperql.ColRefs(lit) {
			if c.Time != hyperql.TimePost {
				attrs[c.Name] = true
			}
		}
		if len(attrs) != 1 {
			return nil, fmt.Errorf("engine: FOR literal %s mixes POST with %d PRE attributes; only one is supported", lit, len(attrs))
		}
		var attr string
		for a := range attrs {
			attr = a
		}
		if !view.Schema().Has(attr) {
			return nil, fmt.Errorf("engine: FOR literal %s references unknown attribute %q", lit, attr)
		}
		dom := view.Domain(attr)
		if len(dom) > maxDomain {
			return nil, fmt.Errorf("engine: FOR literal %s requires expanding PRE(%s) over %d values (limit %d); discretize the attribute first",
				lit, attr, len(dom), maxDomain)
		}
		var next []disjunct
		for _, d := range out {
			for _, a := range dom {
				nd := disjunct{
					pre:  append(append([]hyperql.Expr(nil), d.pre...), eqLiteral(attr, a)),
					post: append(append([]hyperql.Expr(nil), d.post...), substPre(lit, attr, a)),
				}
				next = append(next, nd)
			}
		}
		if len(next) > maxDisjuncts {
			return nil, fmt.Errorf("engine: FOR predicate expands to more than %d disjuncts", maxDisjuncts)
		}
		out = next
	}
	return out, nil
}

func eqLiteral(attr string, v relation.Value) hyperql.Expr {
	return &hyperql.Binary{Op: "=",
		L: &hyperql.ColRef{Name: attr, Time: hyperql.TimePre},
		R: &hyperql.Literal{Val: v}}
}

// substPre deep-copies e replacing PRE/default references to attr with the
// constant v, leaving POST references intact.
func substPre(e hyperql.Expr, attr string, v relation.Value) hyperql.Expr {
	switch x := e.(type) {
	case *hyperql.ColRef:
		if x.Name == attr && x.Time != hyperql.TimePost {
			return &hyperql.Literal{Val: v}
		}
		return x
	case *hyperql.Binary:
		return &hyperql.Binary{Op: x.Op, L: substPre(x.L, attr, v), R: substPre(x.R, attr, v)}
	case *hyperql.Unary:
		return &hyperql.Unary{Op: x.Op, X: substPre(x.X, attr, v)}
	case *hyperql.InList:
		vals := make([]hyperql.Expr, len(x.Vals))
		for i, ve := range x.Vals {
			vals[i] = substPre(ve, attr, v)
		}
		return &hyperql.InList{X: substPre(x.X, attr, v), Vals: vals, Neg: x.Neg}
	default:
		return e
	}
}

// eventKey builds a canonical cache key for a conjunction of post literals.
func eventKey(lits []hyperql.Expr) string {
	parts := make([]string, len(lits))
	for i, l := range lits {
		parts[i] = l.String()
	}
	sort.Strings(parts)
	key := ""
	for _, p := range parts {
		key += p + "&"
	}
	return key
}
