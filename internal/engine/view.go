package engine

import (
	"fmt"

	"hyper/internal/causal"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
	"hyper/internal/sqlmini"
)

// view is the materialized relevant view V_rel plus the metadata linking its
// columns back to the base database: which base relation the update
// attribute lives in and the qualified source attribute of each view column
// (aggregated columns map to the attribute inside the aggregate).
type view struct {
	rel       *relation.Relation
	updateRel *relation.Relation // base relation R containing the update attribute
	qualified map[string]string  // view column -> "Rel.Attr" source
}

// buildView materializes the USE clause (step 1 of Section 3.2). The view
// always has one row per tuple of the update relation R, keyed by R's key,
// which the USE contract guarantees (the sub-select groups by R's key).
func buildView(db *relation.Database, use *hyperql.UseClause, updateAttr string) (*view, error) {
	v := &view{qualified: make(map[string]string)}
	if use.Table != "" {
		r := db.Relation(use.Table)
		if r == nil {
			return nil, fmt.Errorf("engine: USE references unknown table %q", use.Table)
		}
		v.rel = r
		for _, c := range r.Schema().Columns() {
			v.qualified[c.Name] = causal.Qualify(r.Name(), c.Name)
		}
	} else {
		rel, err := sqlmini.RunSelect(db, use.Select, "RelevantView")
		if err != nil {
			return nil, err
		}
		v.rel = rel
		// Map each view column to its qualified source attribute.
		for _, item := range use.Select.Items {
			var src *hyperql.ColRef
			switch x := item.Expr.(type) {
			case *hyperql.ColRef:
				src = x
			case *hyperql.Aggregate:
				if c, ok := x.Expr.(*hyperql.ColRef); ok {
					src = c
				}
			}
			if src == nil {
				continue
			}
			name := item.Alias
			if name == "" {
				name = src.Name
			}
			q, err := qualifyRef(db, use.Select, src)
			if err != nil {
				return nil, err
			}
			v.qualified[name] = q
		}
	}
	if !v.rel.Schema().Has(updateAttr) {
		return nil, fmt.Errorf("engine: update attribute %q is not a column of the relevant view", updateAttr)
	}
	// Locate the base relation of the update attribute.
	q, ok := v.qualified[updateAttr]
	if !ok {
		return nil, fmt.Errorf("engine: update attribute %q has no source mapping", updateAttr)
	}
	relName, attr := causal.SplitQualified(q)
	base := db.Relation(relName)
	if base == nil {
		return nil, fmt.Errorf("engine: update attribute %q maps to unknown relation %q", updateAttr, relName)
	}
	if !base.Schema().Has(attr) {
		return nil, fmt.Errorf("engine: update attribute %q maps to missing column %s.%s", updateAttr, relName, attr)
	}
	col := base.Schema().Col(base.Schema().MustIndex(attr))
	if !col.Mutable {
		return nil, fmt.Errorf("engine: update attribute %s.%s is immutable", relName, attr)
	}
	v.updateRel = base
	return v, nil
}

// qualifyRef resolves a column reference of the USE sub-select to its
// qualified source attribute.
func qualifyRef(db *relation.Database, sel *hyperql.SelectStmt, c *hyperql.ColRef) (string, error) {
	if c.Table != "" {
		for _, tr := range sel.From {
			alias := tr.Alias
			if alias == "" {
				alias = tr.Name
			}
			if alias == c.Table || tr.Name == c.Table {
				return causal.Qualify(tr.Name, c.Name), nil
			}
		}
		return "", fmt.Errorf("engine: unknown table %q in USE select", c.Table)
	}
	found := ""
	for _, tr := range sel.From {
		r := db.Relation(tr.Name)
		if r != nil && r.Schema().Has(c.Name) {
			if found != "" {
				return "", fmt.Errorf("engine: ambiguous column %q in USE select", c.Name)
			}
			found = causal.Qualify(tr.Name, c.Name)
		}
	}
	if found == "" {
		return "", fmt.Errorf("engine: unknown column %q in USE select", c.Name)
	}
	return found, nil
}

// keyOfViewRow returns the key encoding of a view row with respect to the
// update relation's key columns (present in the view by the USE contract).
func (v *view) keyOfViewRow(row relation.Tuple) (string, error) {
	keyIdx := v.updateRel.Schema().KeyIndexes()
	key := ""
	for _, ki := range keyIdx {
		name := v.updateRel.Schema().Col(ki).Name
		vi, ok := v.rel.Schema().Index(name)
		if !ok {
			return "", fmt.Errorf("engine: relevant view is missing key column %q of relation %s", name, v.updateRel.Name())
		}
		key += row[vi].Key() + "|"
	}
	return key, nil
}

// blockIDs assigns each view row the id of its block (blocks are defined
// over base-relation tuples; rowBlock holds the update relation's per-row
// block ids). View rows map to update-relation tuples by key; rows whose key
// is missing from the base relation map to block 0. When the view IS the
// update relation (a USE over a bare table), the mapping is the identity and
// no per-row key encoding happens at all.
func (v *view) blockIDs(rowBlock []int) ([]int, error) {
	if v.rel == v.updateRel {
		// Copy: rowBlock is a subslice of RowBlocks' all-relations buffer,
		// and the result outlives this call in the engine cache.
		return append([]int(nil), rowBlock...), nil
	}
	// Index base rows by key encoding.
	keyIdx := v.updateRel.Schema().KeyIndexes()
	baseKey := make(map[string]int, v.updateRel.Len())
	for i, row := range v.updateRel.Rows() {
		k := ""
		for _, ki := range keyIdx {
			k += row[ki].Key() + "|"
		}
		baseKey[k] = i
	}
	out := make([]int, v.rel.Len())
	for i, row := range v.rel.Rows() {
		k, err := v.keyOfViewRow(row)
		if err != nil {
			return nil, err
		}
		if br, ok := baseKey[k]; ok {
			out[i] = rowBlock[br]
		}
	}
	return out, nil
}
