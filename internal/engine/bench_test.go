package engine

// Hot-path micro-benchmarks. BenchmarkWhatIfCold measures an uncached
// evaluation end to end (view + training + tuple loop) on the freq-estimator
// path; allocations are reported so regressions in the per-row/per-tuple
// encoding cost are visible in `go test -bench`.

import (
	"context"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
)

func benchQuery(b *testing.B, src string) *hyperql.WhatIf {
	b.Helper()
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkWhatIfCold evaluates the serving workload's lead query with no
// cache: every iteration pays view materialization, estimator training, and
// the per-tuple evaluation loop.
func BenchmarkWhatIfCold(b *testing.B) {
	g := dataset.GermanSyn(5000, 7)
	q := benchQuery(b, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(g.DB, g.Model, q, Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfColdFor adds a FOR predicate, exercising the
// inclusion-exclusion path (two regressors) per evaluation.
func BenchmarkWhatIfColdFor(b *testing.B) {
	g := dataset.GermanSyn(5000, 7)
	q := benchQuery(b, `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(g.DB, g.Model, q, Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorFit isolates estimator-set construction plus one freq
// model fit over the view (the dominant cost of a cold discrete what-if).
func BenchmarkEstimatorFit(b *testing.B) {
	g := dataset.GermanSyn(5000, 7)
	rel := g.DB.Relation("German")
	featCols := []string{"Status", "Age", "Sex", "Savings", "Housing"}
	opts := Options{Seed: 7}
	opts = opts.withDefaults()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newEstimatorSet(context.Background(), rel, featCols, 1, "bench", opts)
		ci := rel.Schema().MustIndex("Credit")
		m, err := s.model("bench", fitExec{ctx: context.Background(), workers: 1}, func(r int) (float64, error) {
			if rel.Row(r)[ci].AsInt() == 1 {
				return 1, nil
			}
			return 0, nil
		})
		if err != nil || m == nil {
			b.Fatalf("no model: %v", err)
		}
	}
}
