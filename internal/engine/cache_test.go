package engine

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCacheBounded(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch k0 so k1 becomes the LRU entry.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put("k3", 3)
	if _, ok := c.get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 3 || st.MaxEntries != 3 {
		t.Errorf("Entries/Max = %d/%d, want 3/3", st.Entries, st.MaxEntries)
	}
}

func TestCacheBoundNeverExceeded(t *testing.T) {
	c := NewCacheBounded(8)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%d", i), i)
		if c.Len() > 8 {
			t.Fatalf("after insert %d: Len = %d exceeds bound 8", i, c.Len())
		}
	}
	st := c.Stats()
	if st.Evictions != 92 {
		t.Errorf("Evictions = %d, want 92", st.Evictions)
	}
	// The 8 most recent keys survive, in full.
	for i := 92; i < 100; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d should be resident", i)
		}
	}
}

func TestCacheUnboundedByDefault(t *testing.T) {
	c := NewCache()
	for i := 0; i < 1000; i++ {
		c.put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000 (unbounded)", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Errorf("Evictions = %d, want 0", ev)
	}
}

func TestCachePutRefreshesExistingKey(t *testing.T) {
	c := NewCacheBounded(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("a", 10) // refresh, not insert: b stays, a moves to front
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	v, ok := c.get("a")
	if !ok || v.(int) != 10 {
		t.Errorf("a = %v,%v, want 10,true", v, ok)
	}
	c.put("c", 3) // evicts b (a was refreshed then hit)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache()
	c.get("absent")
	c.put("k", 1)
	c.get("k")
	c.get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if got := st.HitRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("HitRate = %v, want 2/3", got)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

// TestEstKeyDistinguishesSeeds guards the serving-path invariant that a
// shared session cache never serves an estimator trained under a different
// seed: the seed drives sampling and forest randomness, so it is part of
// the estimator identity.
func TestEstKeyDistinguishesSeeds(t *testing.T) {
	feats := []string{"A", "B"}
	a := estKey("u", "w", "f", feats, Options{Seed: 1, SampleSize: 500})
	b := estKey("u", "w", "f", feats, Options{Seed: 2, SampleSize: 500})
	if a == b {
		t.Error("estKey ignores the seed; cached estimators would leak across seeds")
	}
	if a != estKey("u", "w", "f", feats, Options{Seed: 1, SampleSize: 500}) {
		t.Error("estKey is not deterministic")
	}
}

// TestCacheSharedEvaluate verifies that repeat evaluation through one cache
// reuses the view, blocks and estimator (hits recorded, identical results).
func TestCacheSharedEvaluate(t *testing.T) {
	g := dataset.GermanSyn(3000, 7)
	q, err := hyperql.ParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCacheBounded(64)
	opts := Options{Mode: ModeFull, Seed: 7, Cache: c}
	cold, err := Evaluate(g.DB, g.Model, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Entries == 0 {
		t.Fatal("cold run populated no cache entries")
	}
	warm, err := Evaluate(g.DB, g.Model, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Value != cold.Value {
		t.Errorf("cached result %v != cold result %v", warm.Value, cold.Value)
	}
	st := c.Stats()
	if st.Hits < after.Hits+3 { // view + blocks + estimator
		t.Errorf("warm run recorded %d hits, want >= %d", st.Hits-after.Hits, 3)
	}
}

// TestCacheConcurrentEvaluate hammers one shared cache from many goroutines
// running a mix of what-if queries; run under -race this is the engine-level
// concurrency stress test.
func TestCacheConcurrentEvaluate(t *testing.T) {
	g := dataset.GermanSyn(2000, 7)
	srcs := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Housing) = 1 OUTPUT COUNT(Credit = 1) FOR POST(Credit) = 1 OR PRE(Age) = 1`,
	}
	qs := make([]*hyperql.WhatIf, len(srcs))
	for i, s := range srcs {
		q, err := hyperql.ParseWhatIf(s)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	// A small bound forces concurrent eviction alongside concurrent reuse.
	c := NewCacheBounded(4)
	want := make([]float64, len(qs))
	for i, q := range qs {
		res, err := Evaluate(g.DB, g.Model, q, Options{Mode: ModeFull, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Value
	}
	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := (w + it) % len(qs)
				res, err := Evaluate(g.DB, g.Model, qs[k], Options{Mode: ModeFull, Seed: 7, Cache: c})
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(res.Value-want[k]) > 1e-9 {
					errs <- fmt.Errorf("query %d: got %v want %v", k, res.Value, want[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries > 4 {
		t.Errorf("bound violated under concurrency: %d entries", st.Entries)
	}
}
