package engine

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/plan"
	"hyper/internal/stats"
)

// fuzzData lazily builds one small German-Syn world shared by every fuzz
// iteration (building it per-input would drown the fuzzer in setup time).
var fuzzData = sync.OnceValue(func() *dataset.Single {
	return dataset.GermanSyn(800, 97)
})

// randomPlannedQuery generates a well-formed what-if whose WHEN clause
// deliberately walks the planner's classification space: pushable equality,
// inequality, ranges, IN/NOT IN, AND chains, plus residual shapes (NOT,
// arithmetic) and no WHEN at all.
func randomPlannedQuery(rng *stats.RNG) string {
	conj := func() string {
		switch rng.Intn(8) {
		case 0:
			return fmt.Sprintf("Age = %d", rng.Intn(5)) // incl. never-true code 4
		case 1:
			return fmt.Sprintf("Savings != %d", rng.Intn(4))
		case 2:
			return fmt.Sprintf("CreditAmount > %d", rng.Intn(3))
		case 3:
			return fmt.Sprintf("Housing <= %d", rng.Intn(3))
		case 4:
			return fmt.Sprintf("Age IN (0, %d)", 1+rng.Intn(3))
		case 5:
			return fmt.Sprintf("Age NOT IN (%d)", rng.Intn(4))
		case 6:
			return fmt.Sprintf("NOT (Sex = %d)", rng.Intn(2)) // residual (unary NOT)
		default:
			return fmt.Sprintf("Age + Sex = %d", rng.Intn(4)) // residual (arithmetic)
		}
	}
	src := "USE German "
	switch rng.Intn(4) {
	case 0: // no WHEN
	case 1:
		src += "WHEN " + conj() + " "
	case 2:
		src += "WHEN " + conj() + " AND " + conj() + " "
	default:
		src += "WHEN " + conj() + " AND " + conj() + " AND " + conj() + " "
	}
	updAttrs := []string{"Status", "Savings", "Housing", "CreditAmount"}
	attr := updAttrs[rng.Intn(len(updAttrs))]
	maxCode := map[string]int{"Status": 3, "Savings": 3, "Housing": 2, "CreditAmount": 3}[attr]
	switch rng.Intn(3) {
	case 0:
		src += fmt.Sprintf("UPDATE(%s) = %d ", attr, rng.Intn(maxCode+1))
	case 1:
		src += fmt.Sprintf("UPDATE(%s) = 1 + PRE(%s) ", attr, attr)
	default:
		src += fmt.Sprintf("UPDATE(%s) = 2 * PRE(%s) ", attr, attr)
	}
	switch rng.Intn(3) {
	case 0:
		src += "OUTPUT COUNT(Credit = 1)"
	case 1:
		src += "OUTPUT AVG(POST(Credit))"
	default:
		src += "OUTPUT SUM(POST(Credit))"
	}
	switch rng.Intn(4) {
	case 0:
		src += fmt.Sprintf(" FOR PRE(Sex) = %d", rng.Intn(2))
	case 1:
		src += " FOR POST(Credit) = 1 OR PRE(Age) = 0"
	case 2:
		src += fmt.Sprintf(" FOR PRE(Age) IN (0, %d)", 1+rng.Intn(3))
	}
	return src
}

// bitsEqual compares floats bit-for-bit — the planner's contract is
// bit-identity, not approximate equality.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// FuzzPlanParity is the planner's bit-identity fuzzer: for a random
// well-formed what-if, evaluating through the cost-based planner (cold
// compile, then a cache-warm repeat) must produce results bit-for-bit equal
// to the unplanned row-at-a-time path — Value, Sum, and Count alike, at a
// serial and a parallel fan-out. CI runs this as a 30s smoke; locally:
//
//	go test -fuzz=FuzzPlanParity -fuzztime=30s ./internal/engine
func FuzzPlanParity(f *testing.F) {
	for _, seed := range []int64{1, 2, 7, 42, 97, 211, 1234567, -5, math.MaxInt64} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		g := fuzzData()
		rng := stats.NewRNG(seed)
		src := randomPlannedQuery(rng)
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", src, err)
		}
		for _, shards := range []int{1, 4} {
			base := Options{Seed: 1, Shards: shards}
			want, wantErr := Evaluate(g.DB, g.Model, q, base)

			planned := base
			planned.Cache = NewCache()
			planned.Plans = plan.NewCache(0)
			for rep, label := range []string{"cold", "warm"} {
				got, err := Evaluate(g.DB, g.Model, q, planned)
				if (err == nil) != (wantErr == nil) {
					t.Fatalf("%q shards=%d %s: planned err=%v, unplanned err=%v", src, shards, label, err, wantErr)
				}
				if err != nil {
					continue
				}
				if !bitsEqual(got.Value, want.Value) || !bitsEqual(got.Sum, want.Sum) || !bitsEqual(got.Count, want.Count) {
					t.Fatalf("%q shards=%d %s: planned (%v,%v,%v) != unplanned (%v,%v,%v); plan:\n%s",
						src, shards, label, got.Value, got.Sum, got.Count, want.Value, want.Sum, want.Count, got.PlanText)
				}
				if rep == 1 && !got.PlanCacheHit {
					t.Fatalf("%q shards=%d: warm repeat missed the plan cache", src, shards)
				}
			}
		}
	})
}
