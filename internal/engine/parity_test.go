package engine

// Parity goldens: these pin the exact results (value, sum, count, estimator
// choice) of a representative set of what-if queries on the toy and German
// datasets. The columnar/integer-keyed estimator substrate must reproduce
// the string-keyed row-oriented path bit for bit — estimator selection,
// training, and evaluation order are all deterministic — so the goldens are
// compared exactly (17 significant digits round-trips float64).

import (
	"strconv"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
)

const toyUse = `USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
	AVG(T2.Rating) AS Rtng
	FROM Product AS T1, Review AS T2
	WHERE T1.PID = T2.PID
	GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)`

// parityCase is one pinned query; golden fields are filled from a reference
// run of the pre-columnar engine (formatted with strconv 'g' 17).
type parityCase struct {
	name      string
	dataset   string // "toy", "german", "german-cont"
	query     string
	opts      Options
	estimator string
	value     string
	sum       string
	count     string
}

var parityCases = []parityCase{
	{
		name:    "toy-avg-forest",
		dataset: "toy",
		query: toyUse + `
			WHEN Brand = 'Asus'
			UPDATE(Price) = 1.1 * PRE(Price)
			OUTPUT AVG(POST(Rtng))
			FOR PRE(Category) = 'Laptop'`,
		opts:      Options{Seed: 7},
		estimator: "forest",
		value:     "2.6302810387072708",
		sum:       "7.890843116121812",
		count:     "3",
	},
	{
		name:    "toy-count-forest",
		dataset: "toy",
		query: toyUse + `
			WHEN Category = 'Laptop'
			UPDATE(Price) = 0.9 * PRE(Price)
			OUTPUT COUNT(Rtng >= 3)`,
		opts:      Options{Seed: 7},
		estimator: "forest",
		value:     "3.0164232105584294",
		sum:       "3.0164232105584294",
		count:     "3.0164232105584294",
	},
	{
		name:      "german-freq-count",
		dataset:   "german",
		query:     `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		opts:      Options{Seed: 7},
		estimator: "freq",
		value:     "875.68587543540139",
		sum:       "875.68587543540139",
		count:     "875.68587543540139",
	},
	{
		name:      "german-freq-for",
		dataset:   "german",
		query:     `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		opts:      Options{Seed: 7},
		estimator: "freq",
		value:     "200.42631578947365",
		sum:       "200.42631578947365",
		count:     "200.42631578947365",
	},
	{
		name:      "german-freq-avg",
		dataset:   "german",
		query:     `USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`,
		opts:      Options{Seed: 7},
		estimator: "freq",
		value:     "0.54230515508956301",
		sum:       "542.30515508956296",
		count:     "1000",
	},
	{
		name:    "german-freq-sampled",
		dataset: "german",
		query:   `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		// The sampled support drops below the fallback threshold, so this
		// case pins the freq→forest fallback decision as well as the value.
		opts:      Options{Seed: 7, SampleSize: 500},
		estimator: "forest",
		value:     "814.43866518485299",
		sum:       "814.43866518485299",
		count:     "814.43866518485299",
	},
	{
		name:      "german-cont-boosted",
		dataset:   "german-cont",
		query:     `USE German UPDATE(CreditAmount) = 1.2 * PRE(CreditAmount) OUTPUT COUNT(Credit = 1)`,
		opts:      Options{Seed: 7},
		estimator: "forest",
		value:     "377.29518332199797",
		sum:       "377.29518332199797",
		count:     "377.29518332199797",
	},
}

func parityEval(t testing.TB, c parityCase) *Result {
	t.Helper()
	var res *Result
	q, err := hyperql.ParseWhatIf(c.query)
	if err != nil {
		t.Fatalf("%s: parse: %v", c.name, err)
	}
	switch c.dataset {
	case "toy":
		db, model := dataset.Toy()
		res, err = Evaluate(db, model, q, c.opts)
	case "german":
		g := dataset.GermanSyn(1000, 7)
		res, err = Evaluate(g.DB, g.Model, q, c.opts)
	case "german-cont":
		g := dataset.GermanSynContinuous(1000, 7)
		res, err = Evaluate(g.DB, g.Model, q, c.opts)
	default:
		t.Fatalf("%s: unknown dataset %q", c.name, c.dataset)
	}
	if err != nil {
		t.Fatalf("%s: evaluate: %v", c.name, err)
	}
	return res
}

func f17(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

func TestWhatIfParityGoldens(t *testing.T) {
	for _, c := range parityCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := parityEval(t, c)
			if res.EstimatorUsed != c.estimator {
				t.Errorf("estimator = %q, golden %q", res.EstimatorUsed, c.estimator)
			}
			if got := f17(res.Value); got != c.value {
				t.Errorf("value = %s, golden %s", got, c.value)
			}
			if got := f17(res.Sum); got != c.sum {
				t.Errorf("sum = %s, golden %s", got, c.sum)
			}
			if got := f17(res.Count); got != c.count {
				t.Errorf("count = %s, golden %s", got, c.count)
			}
		})
	}
}
