package engine

import (
	"fmt"
	"strings"
	"time"
)

// Result is the outcome of evaluating a what-if query: the expected value of
// the OUTPUT aggregate over the post-update possible-world distribution
// (Definition 5), plus diagnostics.
type Result struct {
	// Value is valwhatif(Q, D).
	Value float64
	// Count is the expected number of tuples satisfying the FOR condition
	// post-update (the denominator of AVG; equals Value for COUNT).
	Count float64
	// Sum is the expected SUM component (the numerator of AVG).
	Sum float64

	// Mode that produced the result.
	Mode Mode
	// Backdoor is the conditioning set used (view column names).
	Backdoor []string
	// Blocks is the number of independent blocks the evaluation decomposed
	// into (1 when decomposition is disabled or no model is given).
	Blocks int
	// Disjuncts is the number of disjoint FOR disjuncts after normalization.
	Disjuncts int
	// EstimatorUsed names the conditional estimator ("freq" or "forest").
	EstimatorUsed string
	// TrainedModels is the number of regressors fitted.
	TrainedModels int
	// SampledRows is the training-set size actually used.
	SampledRows int
	// ViewRows is the size of the relevant view.
	ViewRows int
	// UpdatedRows is |S|, the number of tuples the update applies to.
	UpdatedRows int
	// ShardPlan is the number of contiguous row shards of the canonical
	// evaluation plan (1 means the view fit in a single shard).
	ShardPlan int
	// ShardWorkers is the worker fan-out that executed the plan. It affects
	// wall time only: results are identical for every worker count.
	ShardWorkers int
	// ShardedFit reports whether the estimator was fitted per shard and
	// merged (true only for shard-mergeable kinds, currently "freq", over a
	// multi-shard plan; forests and linear models always fit whole-frame).
	ShardedFit bool
	// Placement names the execution placement that produced the result:
	// "" or "local" for a single-process evaluation, "workers" when plan
	// shards were evaluated on remote workers and merged in plan order,
	// "fit" when tuple evaluation ran locally with remote estimator fits.
	// Like ShardWorkers it can never change a result.
	Placement string
	// RemoteWorkers is the number of distinct remote workers that
	// contributed shards or fits (0 for a purely local run).
	RemoteWorkers int
	// Degraded reports that a distributed execution fell below the full
	// healthy worker fleet: a worker failed mid-query, quarantined workers
	// were skipped, or shards fell back to coordinator-local evaluation.
	// The value is unaffected — degradation moves work, never results.
	Degraded bool
	// DegradedReason is the comma-joined ladder of degradation codes
	// ("worker_lost", "quarantine", "local_fallback"); empty when Degraded
	// is false.
	DegradedReason string

	// PlanFingerprint is the 16-hex shape fingerprint of the compiled plan
	// (empty when no plan cache was configured). Like Placement it is pure
	// diagnostics: planning can never change a result.
	PlanFingerprint string
	// PlanCacheHit reports whether the compiled plan was served from the
	// plan cache (planning was skipped entirely).
	PlanCacheHit bool
	// PlanPushed is the number of WHEN conjuncts executed as columnar scans
	// over interned codes (0 when unplanned or when the plan fell back).
	PlanPushed int
	// PlanText is the deterministic, literal-free EXPLAIN rendering of the
	// compiled plan (empty when unplanned).
	PlanText string

	// Timing breakdown.
	ViewTime  time.Duration
	BlockTime time.Duration
	PlanTime  time.Duration
	TrainTime time.Duration
	EvalTime  time.Duration
	Total     time.Duration
}

// String summarizes the result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value=%.6g (sum=%.6g count=%.6g) mode=%s", r.Value, r.Sum, r.Count, r.Mode)
	if len(r.Backdoor) > 0 {
		fmt.Fprintf(&b, " backdoor={%s}", strings.Join(r.Backdoor, ","))
	}
	fmt.Fprintf(&b, " blocks=%d est=%s trained=%d rows=%d/%d total=%s",
		r.Blocks, r.EstimatorUsed, r.TrainedModels, r.SampledRows, r.ViewRows, r.Total)
	return b.String()
}
