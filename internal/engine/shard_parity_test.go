package engine

// Shard-merge parity goldens: sharded evaluation must be bit-identical to
// unsharded evaluation for every worker fan-out. The engine's guarantee is
// that Options.Shards is execution-only — the canonical shard plan (from
// the row count and Options.ShardRows) fixes the reduction order of every
// floating-point merge, so any number of workers, on any machine, produces
// the same bits. These tests pin that for shards ∈ {1, 2, 3, 7} on the toy
// and German datasets, across both the single-shard regime (≤ 4096 rows)
// and the multi-shard regime (5000 rows: a 2-shard plan with per-shard freq
// fits merged in plan order), plus the edge cases of a one-row-per-shard
// plan and a worker ask far beyond the plan size.

import (
	"strconv"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
)

// shardCounts is the worker fan-out sweep required by the golden contract.
var shardCounts = []int{1, 2, 3, 7}

// evalWhatIfOpts parses and evaluates query over the named dataset at the
// given size with opts.
func evalWhatIfOpts(t *testing.T, ds string, size int, query string, opts Options) *Result {
	t.Helper()
	q, err := hyperql.ParseWhatIf(query)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	switch ds {
	case "toy":
		db, model := dataset.Toy()
		res, err = Evaluate(db, model, q, opts)
	case "german":
		g := dataset.GermanSyn(size, 7)
		res, err = Evaluate(g.DB, g.Model, q, opts)
	case "german-cont":
		g := dataset.GermanSynContinuous(size, 7)
		res, err = Evaluate(g.DB, g.Model, q, opts)
	default:
		t.Fatalf("unknown dataset %q", ds)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardCountParityOnParityGoldens re-runs every pinned parity case under
// each worker fan-out: the goldens (recorded before sharding existed) must
// keep holding bit for bit at every shard count.
func TestShardCountParityOnParityGoldens(t *testing.T) {
	for _, c := range parityCases {
		for _, shards := range shardCounts {
			opts := c.opts
			opts.Shards = shards
			t.Run(c.name+"/shards="+strconv.Itoa(shards), func(t *testing.T) {
				res := parityEval(t, parityCase{
					name: c.name, dataset: c.dataset, query: c.query, opts: opts,
				})
				if got := f17(res.Value); got != c.value {
					t.Errorf("value = %s, golden %s", got, c.value)
				}
				if got := f17(res.Sum); got != c.sum {
					t.Errorf("sum = %s, golden %s", got, c.sum)
				}
				if got := f17(res.Count); got != c.count {
					t.Errorf("count = %s, golden %s", got, c.count)
				}
			})
		}
	}
}

// multiShardCases run in the multi-shard regime (5000 rows → 2-shard plan):
// the freq cases exercise the per-shard fit + plan-order merge, the
// continuous case the whole-frame fallback behind the capability flag.
var multiShardCases = []struct {
	name    string
	dataset string
	size    int
	query   string
	opts    Options
	// wantPlan is the expected canonical plan size; wantShardedFit pins the
	// estimator capability flag.
	wantPlan       int
	wantShardedFit bool
}{
	{
		name: "german-freq-5000", dataset: "german", size: 5000,
		query: `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		opts:  Options{Seed: 7}, wantPlan: 2, wantShardedFit: true,
	},
	{
		name: "german-freq-for-5000", dataset: "german", size: 5000,
		query: `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		opts:  Options{Seed: 7}, wantPlan: 2, wantShardedFit: true,
	},
	{
		name: "german-cont-boosted-5000", dataset: "german-cont", size: 5000,
		query: `USE German UPDATE(CreditAmount) = 1.2 * PRE(CreditAmount) OUTPUT COUNT(Credit = 1)`,
		opts:  Options{Seed: 7}, wantPlan: 2, wantShardedFit: false,
	},
	{
		// One row per shard on the 4-row toy view: the most extreme plan,
		// exercising shard boundaries around every tuple.
		name: "toy-row-per-shard", dataset: "toy", size: 0,
		query: toyUse + `
			WHEN Brand = 'Asus'
			UPDATE(Price) = 1.1 * PRE(Price)
			OUTPUT AVG(POST(Rtng))
			FOR PRE(Category) = 'Laptop'`,
		opts: Options{Seed: 7, ShardRows: 1}, wantPlan: 4, wantShardedFit: false,
	},
}

// TestShardCountParityMultiShard pins bit-identity across worker fan-outs
// in the multi-shard regime, where the parallel path actually splits work:
// the fan-out sweep (including 7 workers against 2- and 4-shard plans — the
// shards-beyond-plan edge) must reproduce the 1-worker evaluation exactly.
func TestShardCountParityMultiShard(t *testing.T) {
	for _, c := range multiShardCases {
		t.Run(c.name, func(t *testing.T) {
			baseOpts := c.opts
			baseOpts.Shards = 1
			base := evalWhatIfOpts(t, c.dataset, c.size, c.query, baseOpts)
			if base.ShardPlan != c.wantPlan {
				t.Errorf("plan = %d shards, want %d", base.ShardPlan, c.wantPlan)
			}
			if base.ShardedFit != c.wantShardedFit {
				t.Errorf("shardedFit = %v, want %v (estimator %s)",
					base.ShardedFit, c.wantShardedFit, base.EstimatorUsed)
			}
			for _, shards := range shardCounts[1:] {
				opts := c.opts
				opts.Shards = shards
				res := evalWhatIfOpts(t, c.dataset, c.size, c.query, opts)
				if f17(res.Value) != f17(base.Value) || f17(res.Sum) != f17(base.Sum) || f17(res.Count) != f17(base.Count) {
					t.Errorf("shards=%d diverged: value %s sum %s count %s, want %s %s %s",
						shards, f17(res.Value), f17(res.Sum), f17(res.Count),
						f17(base.Value), f17(base.Sum), f17(base.Count))
				}
				if res.EstimatorUsed != base.EstimatorUsed {
					t.Errorf("shards=%d estimator %q, want %q", shards, res.EstimatorUsed, base.EstimatorUsed)
				}
			}
		})
	}
}

// TestShardRowsIsSemanticButCanonical pins the other half of the contract:
// the granularity (ShardRows) may legitimately regroup reductions — but for
// a fixed granularity the result is still identical across every fan-out,
// and the default granularity at ≤ 4096 rows reproduces the sequential
// plan exactly (plan of one shard).
func TestShardRowsIsSemanticButCanonical(t *testing.T) {
	const query = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`
	for _, shardRows := range []int{100, 999, 4096} {
		var base *Result
		for _, shards := range shardCounts {
			res := evalWhatIfOpts(t, "german", 1000, query, Options{Seed: 7, ShardRows: shardRows, Shards: shards})
			if base == nil {
				base = res
				continue
			}
			if f17(res.Value) != f17(base.Value) {
				t.Errorf("shardRows=%d shards=%d: value %s != %s", shardRows, shards, f17(res.Value), f17(base.Value))
			}
		}
	}
	// Default granularity, 1000 rows: single-shard plan — the historical
	// sequential semantics, which is why the pre-sharding goldens hold.
	res := evalWhatIfOpts(t, "german", 1000, query, Options{Seed: 7})
	if res.ShardPlan != 1 {
		t.Errorf("default plan at 1000 rows = %d shards, want 1", res.ShardPlan)
	}
}
