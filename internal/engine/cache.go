package engine

import (
	"strconv"
	"strings"
	"sync"
)

// Cache memoizes the expensive, update-constant-independent artifacts of
// what-if evaluation across related queries: the materialized relevant view,
// the block decomposition, and the trained estimator set. The how-to engine
// evaluates one candidate what-if query per permissible update (Definition
// 7); all candidates for the same attribute set share the USE/WHEN/FOR
// clauses and therefore the same view, blocks, features, and training
// labels — only the prediction point changes. Sharing a Cache makes the
// how-to IP construction train each regressor once, matching the paper's
// "training a regression function over the dataset" description of the IP
// objective (Section 4.3).
//
// A long-lived serving process (cmd/hyperd) shares one Cache per session
// across every query against that session, so the cache is bounded: when a
// maximum entry count is set, the least recently used artifact is evicted
// on insertion past the bound. Hit/miss/eviction counters are maintained
// for observability (the daemon's /v1/stats endpoint reports them).
//
// All methods are safe for concurrent use. A Cache must only be reused
// across queries against the same database and causal model.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
	max     int         // maximum entries; 0 = unbounded

	hits, misses, evictions uint64
}

// cacheEntry is a node of the intrusive LRU list. One list orders all three
// artifact kinds together; keys are kind-prefixed so they cannot collide.
type cacheEntry struct {
	key        string
	val        any
	prev, next *cacheEntry
}

// Key prefixes per artifact kind.
const (
	kindView   = "v\x00"
	kindBlocks = "b\x00"
	kindEst    = "e\x00"
)

type blockInfo struct {
	blockOf []int
	nBlocks int
}

// NewCache returns an empty, unbounded cache (the right choice for a single
// how-to evaluation or a short-lived batch of related queries).
func NewCache() *Cache { return NewCacheBounded(0) }

// NewCacheBounded returns an empty cache holding at most max artifacts
// (views, block decompositions, and estimator sets each count as one);
// max <= 0 means unbounded. Long-lived daemons should set a bound so the
// cache cannot grow without limit.
func NewCacheBounded(max int) *Cache {
	if max < 0 {
		max = 0
	}
	return &Cache{entries: make(map[string]*cacheEntry), max: max}
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// MaxEntries is the configured bound (0 = unbounded).
	MaxEntries int `json:"max_entries"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Entries:    len(c.entries),
		MaxEntries: c.max,
	}
}

// Len returns the current number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get looks up a kind-prefixed key, promoting it to most recently used.
func (c *Cache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// put inserts (or refreshes) a kind-prefixed key, evicting from the LRU tail
// past the bound.
func (c *Cache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &cacheEntry{key: key, val: val}
	c.entries[key] = e
	c.pushFront(e)
	for c.max > 0 && len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) getView(key string) (*view, bool) {
	v, ok := c.get(kindView + key)
	if !ok {
		return nil, false
	}
	return v.(*view), true
}

func (c *Cache) putView(key string, v *view) { c.put(kindView+key, v) }

func (c *Cache) getBlocks(key string) (blockInfo, bool) {
	b, ok := c.get(kindBlocks + key)
	if !ok {
		return blockInfo{}, false
	}
	return b.(blockInfo), true
}

func (c *Cache) putBlocks(key string, b blockInfo) { c.put(kindBlocks+key, b) }

func (c *Cache) getEst(key string) (*estimatorSet, bool) {
	e, ok := c.get(kindEst + key)
	if !ok {
		return nil, false
	}
	return e.(*estimatorSet), true
}

func (c *Cache) putEst(key string, e *estimatorSet) { c.put(kindEst+key, e) }

// estKey builds the identity of an estimator set: everything that affects
// training except the update constants.
func estKey(useKey, whenKey, forKey string, featCols []string, o Options) string {
	var b strings.Builder
	b.WriteString(useKey)
	b.WriteByte('\x00')
	b.WriteString(whenKey)
	b.WriteByte('\x00')
	b.WriteString(forKey)
	b.WriteByte('\x00')
	for _, f := range featCols {
		b.WriteString(f)
		b.WriteByte(',')
	}
	b.WriteByte('\x00')
	b.WriteString(string(rune('0' + int(o.Mode))))
	b.WriteString("|")
	b.WriteString(string(rune('a' + o.Estimator)))
	if o.SampleSize > 0 {
		b.WriteString("|s")
		for n := o.SampleSize; n > 0; n /= 10 {
			b.WriteByte(byte('0' + n%10))
		}
	}
	// The seed drives training-sample selection and forest randomness, so
	// estimators trained under different seeds are distinct artifacts (a
	// long-lived session cache must not serve a stale-seed estimator after
	// SetOptions changes the seed).
	b.WriteString("|r")
	b.WriteString(strconv.FormatInt(o.Seed, 10))
	// The shard granularity fixes the reduction tree of per-shard estimator
	// fits, so indexes fitted under different granularities are distinct
	// artifacts (withDefaults normalizes 0 to the default granularity, so
	// equal plans share one key). The worker fan-out (Shards) deliberately
	// does not participate: it cannot change a fitted model.
	b.WriteString("|g")
	b.WriteString(strconv.Itoa(o.ShardRows))
	return b.String()
}
