package engine

import (
	"strings"
	"sync"
)

// Cache memoizes the expensive, update-constant-independent artifacts of
// what-if evaluation across related queries: the materialized relevant view,
// the block decomposition, and the trained estimator set. The how-to engine
// evaluates one candidate what-if query per permissible update (Definition
// 7); all candidates for the same attribute set share the USE/WHEN/FOR
// clauses and therefore the same view, blocks, features, and training
// labels — only the prediction point changes. Sharing a Cache makes the
// how-to IP construction train each regressor once, matching the paper's
// "training a regression function over the dataset" description of the IP
// objective (Section 4.3).
//
// A Cache must only be reused across queries against the same database and
// causal model.
type Cache struct {
	mu     sync.Mutex
	views  map[string]*view
	blocks map[string]blockInfo
	ests   map[string]*estimatorSet
}

type blockInfo struct {
	blockOf []int
	nBlocks int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		views:  make(map[string]*view),
		blocks: make(map[string]blockInfo),
		ests:   make(map[string]*estimatorSet),
	}
}

func (c *Cache) getView(key string) (*view, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.views[key]
	return v, ok
}

func (c *Cache) putView(key string, v *view) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[key] = v
}

func (c *Cache) getBlocks(key string) (blockInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blocks[key]
	return b, ok
}

func (c *Cache) putBlocks(key string, b blockInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocks[key] = b
}

func (c *Cache) getEst(key string) (*estimatorSet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.ests[key]
	return e, ok
}

func (c *Cache) putEst(key string, e *estimatorSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ests[key] = e
}

// estKey builds the identity of an estimator set: everything that affects
// training except the update constants.
func estKey(useKey, whenKey, forKey string, featCols []string, o Options) string {
	var b strings.Builder
	b.WriteString(useKey)
	b.WriteByte('\x00')
	b.WriteString(whenKey)
	b.WriteByte('\x00')
	b.WriteString(forKey)
	b.WriteByte('\x00')
	for _, f := range featCols {
		b.WriteString(f)
		b.WriteByte(',')
	}
	b.WriteByte('\x00')
	b.WriteString(string(rune('0' + int(o.Mode))))
	b.WriteString("|")
	b.WriteString(string(rune('a' + o.Estimator)))
	if o.SampleSize > 0 {
		b.WriteString("|s")
		for n := o.SampleSize; n > 0; n /= 10 {
			b.WriteByte(byte('0' + n%10))
		}
	}
	return b.String()
}
