package engine

// Partial-evaluation goldens: the distributed-execution surface must be
// bit-identical to the in-process path. Every test here evaluates shard
// subsets in freshly constructed "processes" (independent dataset builds,
// separate caches — nothing shared with the reference run) and checks the
// merged result against a plain EvaluateContext to the last bit.

import (
	"context"
	"strconv"
	"testing"

	"hyper/internal/causal"
	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/relation"
)

func partialDataset(t testing.TB, name string) (*relation.Database, *causal.Model) {
	t.Helper()
	switch name {
	case "toy":
		return dataset.Toy()
	case "german":
		g := dataset.GermanSyn(1000, 7)
		return g.DB, g.Model
	default:
		t.Fatalf("unknown dataset %q", name)
		return nil, nil
	}
}

func g17(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

// TestPartialMergeParity splits the plan across N simulated worker
// processes, each with its own dataset build, and merges the partials; the
// result must match the single-process evaluation bit for bit, on toy and
// german, across shard granularities and split widths.
func TestPartialMergeParity(t *testing.T) {
	cases := []struct {
		name, ds, query string
		opts            Options
	}{
		{"toy-avg", "toy", toyUse + `
			WHEN Brand = 'Asus'
			UPDATE(Price) = 1.1 * PRE(Price)
			OUTPUT AVG(POST(Rtng))
			FOR PRE(Category) = 'Laptop'`, Options{Seed: 7}},
		{"german-count", "german", `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Options{Seed: 7, ShardRows: 128}},
		{"german-for", "german", `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`, Options{Seed: 7, ShardRows: 256}},
		{"german-avg-sampled", "german", `USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`, Options{Seed: 7, SampleSize: 500, ShardRows: 200}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := hyperql.ParseWhatIf(c.query)
			if err != nil {
				t.Fatal(err)
			}
			db, model := partialDataset(t, c.ds)
			want, err := EvaluateContext(context.Background(), db, model, q, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3} {
				planShards, viewRows, err := PlanContext(context.Background(), db, model, q, c.opts)
				if err != nil {
					t.Fatal(err)
				}
				if viewRows != want.ViewRows {
					t.Fatalf("PlanContext view rows %d != %d", viewRows, want.ViewRows)
				}
				if workers > planShards {
					continue
				}
				// Contiguous split of the plan across `workers` processes.
				var parts []ShardPartial
				var meta PartialMeta
				for w := 0; w < workers; w++ {
					lo := w * planShards / workers
					hi := (w + 1) * planShards / workers
					if lo == hi {
						continue
					}
					ids := make([]int, 0, hi-lo)
					for s := lo; s < hi; s++ {
						ids = append(ids, s)
					}
					// A fresh process: its own dataset build and cache.
					wdb, wmodel := partialDataset(t, c.ds)
					wq, err := hyperql.ParseWhatIf(c.query)
					if err != nil {
						t.Fatal(err)
					}
					wopts := c.opts
					wopts.Cache = NewCache()
					pr, err := EvaluatePartialContext(context.Background(), wdb, wmodel, wq, wopts, ids)
					if err != nil {
						t.Fatal(err)
					}
					if w == 0 {
						meta = pr.Meta
					} else if !meta.Consistent(pr.Meta) {
						t.Fatalf("worker %d meta %+v inconsistent with %+v", w, pr.Meta, meta)
					}
					parts = append(parts, pr.Partials...)
				}
				got, err := MergePartials(meta, parts)
				if err != nil {
					t.Fatal(err)
				}
				if g17(got.Value) != g17(want.Value) || g17(got.Sum) != g17(want.Sum) || g17(got.Count) != g17(want.Count) {
					t.Fatalf("workers=%d: merged value/sum/count %s/%s/%s != local %s/%s/%s",
						workers, g17(got.Value), g17(got.Sum), g17(got.Count),
						g17(want.Value), g17(want.Sum), g17(want.Count))
				}
				if got.EstimatorUsed != want.EstimatorUsed || got.Blocks != want.Blocks ||
					got.Disjuncts != want.Disjuncts || got.UpdatedRows != want.UpdatedRows ||
					got.ShardPlan != want.ShardPlan {
					t.Fatalf("workers=%d: merged metadata diverges: %+v vs %+v", workers, got, want)
				}
			}
		})
	}
}

func TestMergePartialsValidation(t *testing.T) {
	meta := PartialMeta{Plan: 2, Blocks: 3, Agg: "count"}
	ok := []ShardPartial{
		{Shard: 0, MinBlock: 0, Sum: []float64{1}, Cnt: []float64{1}},
		{Shard: 1, MinBlock: 2, Sum: []float64{2}, Cnt: []float64{2}},
	}
	if res, err := MergePartials(meta, ok); err != nil || res.Value != 3 {
		t.Fatalf("valid merge failed: %v %+v", err, res)
	}
	bad := []struct {
		name  string
		parts []ShardPartial
	}{
		{"missing", ok[:1]},
		{"dup", []ShardPartial{ok[0], ok[0]}},
		{"range", []ShardPartial{ok[0], {Shard: 5, Sum: []float64{1}, Cnt: []float64{1}}}},
		{"window", []ShardPartial{ok[0], {Shard: 1, MinBlock: 2, Sum: []float64{1, 1}, Cnt: []float64{1, 1}}}},
		{"arity", []ShardPartial{ok[0], {Shard: 1, Sum: []float64{1, 2}, Cnt: []float64{1}}}},
	}
	for _, b := range bad {
		if _, err := MergePartials(meta, b.parts); err == nil {
			t.Errorf("%s: merge accepted invalid partials", b.name)
		}
	}
	if _, err := MergePartials(PartialMeta{Plan: 2, Blocks: 3, Agg: "median"}, ok); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

// replicaFitter implements RemoteFitter by preparing the same evaluation in
// an independent "process" (fresh dataset build, fresh cache) and fitting
// the requested shards there — the engine-level contract a dist worker
// fulfils over HTTP.
type replicaFitter struct {
	t     *testing.T
	ds    string
	calls int
}

func (f *replicaFitter) parts(ctx context.Context, query string, o Options, mask uint64, weighted, cells, support bool, n int) (*EventFitPartial, error) {
	f.calls++
	db, model := partialDataset(f.t, f.ds)
	q, err := hyperql.ParseWhatIf(query)
	if err != nil {
		return nil, err
	}
	o.Cache = NewCache()
	o.RemoteFit = nil // the replica is a leaf
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return FitEventPartialContext(ctx, db, model, q, o, mask, weighted, cells, support, ids)
}

func (f *replicaFitter) FitFreqParts(ctx context.Context, query string, o Options, mask uint64, weighted bool, fitShards int) ([]*ml.FreqWire, error) {
	p, err := f.parts(ctx, query, o, mask, weighted, true, false, fitShards)
	if err != nil {
		return nil, err
	}
	return p.Parts, nil
}

func (f *replicaFitter) SupportParts(ctx context.Context, query string, o Options, fitShards int) ([]*ml.SupportWire, error) {
	p, err := f.parts(ctx, query, o, 0, false, false, true, fitShards)
	if err != nil {
		return nil, err
	}
	return p.Support, nil
}

// TestRemoteFitParity runs the freq-estimator queries with every fit
// delegated to an independent replica process and checks bit-identity with
// the purely local run — including the query with a FOR clause, whose
// event-subset masks must mean the same thing on both ends.
func TestRemoteFitParity(t *testing.T) {
	queries := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		`USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`,
	}
	for _, src := range queries {
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Seed: 7, ShardRows: 256}
		db, model := partialDataset(t, "german")
		want, err := EvaluateContext(context.Background(), db, model, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		fitter := &replicaFitter{t: t, ds: "german"}
		ropts := opts
		ropts.RemoteFit = fitter
		rdb, rmodel := partialDataset(t, "german")
		got, err := EvaluateContext(context.Background(), rdb, rmodel, q, ropts)
		if err != nil {
			t.Fatal(err)
		}
		if fitter.calls == 0 {
			t.Fatalf("%s: remote fitter was never consulted", src)
		}
		if g17(got.Value) != g17(want.Value) || g17(got.Sum) != g17(want.Sum) || g17(got.Count) != g17(want.Count) {
			t.Fatalf("%s: remote-fit value/sum/count %s/%s/%s != local %s/%s/%s",
				src, g17(got.Value), g17(got.Sum), g17(got.Count),
				g17(want.Value), g17(want.Sum), g17(want.Count))
		}
		if got.EstimatorUsed != want.EstimatorUsed {
			t.Fatalf("%s: estimator %q != %q", src, got.EstimatorUsed, want.EstimatorUsed)
		}
	}
}

// TestRemoteFitFallback proves a failing fitter cannot change a result: the
// engine falls back to the local fit.
func TestRemoteFitFallback(t *testing.T) {
	q, err := hyperql.ParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 7, ShardRows: 256}
	db, model := partialDataset(t, "german")
	want, err := EvaluateContext(context.Background(), db, model, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	ropts := opts
	ropts.RemoteFit = failingFitter{}
	got, err := EvaluateContext(context.Background(), db, model, q, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if g17(got.Value) != g17(want.Value) {
		t.Fatalf("fallback value %s != %s", g17(got.Value), g17(want.Value))
	}
}

type failingFitter struct{}

func (failingFitter) FitFreqParts(context.Context, string, Options, uint64, bool, int) ([]*ml.FreqWire, error) {
	return nil, context.DeadlineExceeded
}

func (failingFitter) SupportParts(context.Context, string, Options, int) ([]*ml.SupportWire, error) {
	return nil, context.DeadlineExceeded
}

// TestEmptyViewEvaluates pins the empty-relevant-view path: zero rows must
// yield a zero-value result (as before the partial-evaluation refactor),
// not a panic from an empty shard plan.
func TestEmptyViewEvaluates(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "A", Kind: relation.KindInt, Mutable: true},
		relation.Column{Name: "B", Kind: relation.KindInt, Mutable: true},
	)
	db := relation.NewDatabase()
	db.MustAdd(relation.NewRelation("T", schema))
	q, err := hyperql.ParseWhatIf(`USE T UPDATE(A) = 1 OUTPUT COUNT(B = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateContext(context.Background(), db, nil, q, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || res.Count != 0 || res.ViewRows != 0 {
		t.Fatalf("empty view: %+v, want zero result", res)
	}
	if _, _, err := PlanContext(context.Background(), db, nil, q, Options{}); err != nil {
		t.Fatalf("PlanContext on empty view: %v", err)
	}
}
