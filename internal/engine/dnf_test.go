package engine

import (
	"strings"
	"testing"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

func smallView(t *testing.T) *relation.Relation {
	t.Helper()
	rel := relation.NewRelation("V", relation.MustSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "A", Kind: relation.KindInt, Mutable: true},
		relation.Column{Name: "B", Kind: relation.KindInt, Mutable: true},
	))
	for i := 0; i < 4; i++ {
		rel.MustInsert(relation.Int(int64(i)), relation.Int(int64(i%3)), relation.Int(int64(i%2)))
	}
	return rel
}

func norm(t *testing.T, src string) []disjunct {
	t.Helper()
	var e hyperql.Expr
	if src != "" {
		var err error
		e, err = hyperql.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
	}
	ds, err := normalizeFor(e, smallView(t), 64, 64)
	if err != nil {
		t.Fatalf("normalize %q: %v", src, err)
	}
	return ds
}

func TestNormalizeNilIsTrue(t *testing.T) {
	ds := norm(t, "")
	if len(ds) != 1 || len(ds[0].pre) != 0 || len(ds[0].post) != 0 {
		t.Errorf("nil FOR should be one empty disjunct, got %v", ds)
	}
}

func TestNormalizePreOnly(t *testing.T) {
	ds := norm(t, `PRE(A) = 1 AND PRE(B) = 0`)
	if len(ds) != 1 || len(ds[0].pre) != 2 || len(ds[0].post) != 0 {
		t.Errorf("got %v", ds)
	}
}

func TestNormalizeSplitsPrePost(t *testing.T) {
	ds := norm(t, `PRE(A) = 1 AND POST(B) = 0`)
	if len(ds) != 1 {
		t.Fatalf("disjuncts = %d", len(ds))
	}
	if len(ds[0].pre) != 1 || len(ds[0].post) != 1 {
		t.Errorf("split = pre %v post %v", ds[0].pre, ds[0].post)
	}
}

func TestNormalizeDisjunction(t *testing.T) {
	ds := norm(t, `PRE(A) = 1 OR POST(B) = 0`)
	if len(ds) != 2 {
		t.Fatalf("disjuncts = %d", len(ds))
	}
}

func TestNormalizeDistribution(t *testing.T) {
	// (a OR b) AND (c OR d) -> 4 disjuncts.
	ds := norm(t, `(PRE(A) = 1 OR PRE(A) = 2) AND (POST(B) = 0 OR POST(B) = 1)`)
	if len(ds) != 4 {
		t.Errorf("disjuncts = %d, want 4", len(ds))
	}
}

func TestNormalizeNegationPushdown(t *testing.T) {
	ds := norm(t, `NOT (PRE(A) = 1 OR POST(B) < 1)`)
	if len(ds) != 1 {
		t.Fatalf("disjuncts = %d", len(ds))
	}
	preStr := ds[0].pre[0].String()
	if !strings.Contains(preStr, "!=") {
		t.Errorf("negated equality should flip to !=, got %s", preStr)
	}
	postStr := ds[0].post[0].String()
	if !strings.Contains(postStr, ">=") {
		t.Errorf("negated < should flip to >=, got %s", postStr)
	}
}

func TestNormalizeNotIn(t *testing.T) {
	ds := norm(t, `NOT (PRE(A) IN (1, 2))`)
	if len(ds) != 1 {
		t.Fatal("one disjunct expected")
	}
	if !strings.Contains(ds[0].pre[0].String(), "NOT IN") {
		t.Errorf("got %s", ds[0].pre[0])
	}
}

func TestNormalizeMixedLiteralExpandsDomain(t *testing.T) {
	// POST(A) >= PRE(A): mixed literal expands over A's observed domain
	// {0, 1, 2} (A.2.4).
	ds := norm(t, `POST(A) >= PRE(A)`)
	if len(ds) != 3 {
		t.Fatalf("disjuncts = %d, want 3 (domain size)", len(ds))
	}
	for _, d := range ds {
		if len(d.pre) != 1 || len(d.post) != 1 {
			t.Errorf("expanded disjunct = %v", d)
		}
		if hyperql.HasPost(d.pre[0]) {
			t.Error("pre literal contains POST")
		}
		if !hyperql.HasPost(d.post[0]) {
			t.Error("post literal lost POST")
		}
	}
}

func TestNormalizeMixedTwoPreAttrsRejected(t *testing.T) {
	e, err := hyperql.ParseExpr(`POST(A) >= PRE(A) + PRE(B)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := normalizeFor(e, smallView(t), 64, 64); err == nil {
		t.Error("two PRE attributes in one mixed literal should be rejected")
	}
}

func TestNormalizeDomainLimit(t *testing.T) {
	e, err := hyperql.ParseExpr(`POST(A) >= PRE(A)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := normalizeFor(e, smallView(t), 64, 2); err == nil {
		t.Error("domain expansion beyond the limit should be rejected")
	}
}

func TestNormalizeDisjunctLimit(t *testing.T) {
	// Build a predicate with a big DNF expansion.
	src := `(PRE(A) = 0 OR PRE(A) = 1) AND (PRE(B) = 0 OR PRE(B) = 1) AND (POST(A) = 0 OR POST(A) = 1)`
	e, err := hyperql.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := normalizeFor(e, smallView(t), 4, 64); err == nil {
		t.Error("DNF expansion beyond the limit should be rejected")
	}
}

func TestEventKeyCanonical(t *testing.T) {
	a, _ := hyperql.ParseExpr(`POST(A) = 1`)
	b, _ := hyperql.ParseExpr(`POST(B) = 0`)
	k1 := eventKey([]hyperql.Expr{a, b})
	k2 := eventKey([]hyperql.Expr{b, a})
	if k1 != k2 {
		t.Error("eventKey must be order-independent")
	}
	if eventKey(nil) == k1 {
		t.Error("empty event must differ")
	}
}
