package engine

import (
	"math"
	"strings"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/prcm"
	"hyper/internal/relation"
)

func TestMultiAttributeUpdate(t *testing.T) {
	g := dataset.GermanSyn(10000, 31)
	// Joint ground truth.
	post := g.World.Counterfactual(
		prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }},
		prcm.Intervention{Attr: "Savings", Fn: func(float64) float64 { return 3 }},
	)
	ci := post.Schema().MustIndex("Credit")
	good := 0
	for _, row := range post.Rows() {
		good += int(row[ci].AsInt())
	}
	truth := float64(good) / float64(post.Len())

	res := evalGerman(t, g,
		`USE German UPDATE(Status) = 3 AND UPDATE(Savings) = 3 OUTPUT COUNT(Credit = 1)`,
		Options{Seed: 1})
	got := res.Value / float64(g.Rel().Len())
	if math.Abs(got-truth) > 0.05 {
		t.Errorf("joint update: HypeR %.3f vs truth %.3f", got, truth)
	}
}

func TestUpdateScaleAndShiftForms(t *testing.T) {
	g := dataset.GermanSynContinuous(8000, 33)
	// Shift: CreditAmount + 2000.
	post := g.World.Counterfactual(prcm.Intervention{Attr: "CreditAmount", Fn: func(p float64) float64 { return p + 2000 }})
	truth := fracOf(post, "Credit", 1)
	base := fracOf(g.Rel(), "Credit", 1)
	res := evalGerman(t, g,
		`USE German UPDATE(CreditAmount) = 2000 + PRE(CreditAmount) OUTPUT COUNT(Credit = 1)`,
		Options{Seed: 1})
	got := res.Value / float64(g.Rel().Len())
	// A +2000 shift pushes a third of tuples beyond the observed range, so
	// the forest extrapolates; require the right direction and coarse
	// magnitude.
	if got <= base {
		t.Errorf("shift update should raise good credit above base %.3f, got %.3f", base, got)
	}
	if math.Abs(got-truth) > 0.08 {
		t.Errorf("shift update: %.3f vs truth %.3f", got, truth)
	}
	// Scale: 1.5x.
	post = g.World.Counterfactual(prcm.Intervention{Attr: "CreditAmount", Fn: func(p float64) float64 { return 1.5 * p }})
	truth = fracOf(post, "Credit", 1)
	res = evalGerman(t, g,
		`USE German UPDATE(CreditAmount) = 1.5 * PRE(CreditAmount) OUTPUT COUNT(Credit = 1)`,
		Options{Seed: 1})
	if math.Abs(res.Value/float64(g.Rel().Len())-truth) > 0.06 {
		t.Errorf("scale update: %.3f vs truth %.3f", res.Value/float64(g.Rel().Len()), truth)
	}
}

func fracOf(rel *relation.Relation, col string, val int64) float64 {
	ci := rel.Schema().MustIndex(col)
	n := 0
	for _, row := range rel.Rows() {
		if row[ci].AsInt() == val {
			n++
		}
	}
	return float64(n) / float64(rel.Len())
}

func TestCrossTupleSummaryEffect(t *testing.T) {
	// On the Amazon model, cutting ONE brand's laptop prices must affect the
	// whole category through the ψ group-mean feature: the updated products'
	// relative price drops and their competitors' relative price rises. (A
	// uniform within-category price move leaves relative prices unchanged
	// and is not identified through this channel — the ψ feature exists for
	// exactly the single-seller scenario of the paper's introduction.)
	am := dataset.AmazonSyn(1500, 12, 35)
	q, err := hyperql.ParseWhatIf(`
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)
WHEN Category = 'Laptop' AND Brand = 'Asus'
UPDATE(Price) = 0.5 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Category) = 'Laptop'`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(am.DB, am.Model, q, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The engine must have constructed a ψ summary feature and blocks per
	// category.
	if res.Blocks != 5 {
		t.Errorf("blocks = %d, want 5 (one per category)", res.Blocks)
	}
	// Selected products: Asus laptops, identified via the Product relation
	// (row order equals product index).
	prod := am.DB.Relation("Product")
	bi := prod.Schema().MustIndex("Brand")
	ci := prod.Schema().MustIndex("Category")
	asusLaptop := map[int]bool{}
	for i, row := range prod.Rows() {
		if row[bi].AsString() == "Asus" && row[ci].AsString() == "Laptop" {
			asusLaptop[i] = true
		}
	}
	sel := func(i int) bool { return asusLaptop[i] }
	truth := am.CounterfactualCategoryAvgRating("Laptop", sel, func(p float64) float64 { return 0.5 * p })
	base := am.CounterfactualCategoryAvgRating("Laptop", nil, func(p float64) float64 { return p })
	if truth <= base {
		t.Fatalf("fixture: an Asus price cut should raise laptop ratings (%.3f vs %.3f)", truth, base)
	}
	if res.Value <= base {
		t.Errorf("engine %.3f should exceed base %.3f after the cut", res.Value, base)
	}
	if math.Abs(res.Value-truth) > 0.35 {
		t.Errorf("engine %.3f vs exact counterfactual %.3f", res.Value, truth)
	}
}

func TestEstimatorFallbackOnUnsupportedUpdate(t *testing.T) {
	// Updating Announcements to a value that (almost) never occurs forces
	// the freq->forest fallback; the effect estimate must move in the right
	// direction instead of collapsing to the base value.
	st := dataset.StudentSyn(3000, 5, 37)
	base := st.AvgGrade()
	truth := st.CounterfactualAvgGrade(dataset.StudentAnnouncements, func(float64) float64 { return 10 })
	q, err := hyperql.ParseWhatIf(`
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)
UPDATE(Announcements) = 10
OUTPUT AVG(POST(Grade))`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(st.DB, st.Model, q, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatorUsed == "freq" && math.Abs(res.Value-base) < 0.5 {
		t.Errorf("estimate %.2f collapsed to base %.2f (truth %.2f)", res.Value, base, truth)
	}
	if res.Value <= base {
		t.Errorf("raising announcements should raise grades: %.2f <= base %.2f", res.Value, base)
	}
}

func TestSampledDeterministicPerSeed(t *testing.T) {
	g := dataset.GermanSyn(10000, 39)
	opts := Options{Seed: 5, SampleSize: 2000}
	a := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, opts)
	b := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, opts)
	if a.Value != b.Value {
		t.Errorf("same seed must reproduce: %.4f vs %.4f", a.Value, b.Value)
	}
	opts.Seed = 6
	c := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, opts)
	if a.Value == c.Value {
		t.Log("different seeds produced identical values (possible but unlikely)")
	}
}

func TestCacheReuseAcrossCandidates(t *testing.T) {
	g := dataset.GermanSyn(5000, 41)
	cache := NewCache()
	opts := Options{Seed: 1, Cache: cache}
	r1 := evalGerman(t, g, `USE German UPDATE(Status) = 1 OUTPUT COUNT(Credit = 1)`, opts)
	r2 := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, opts)
	// Second query must reuse the trained estimator: same estimator kind,
	// and crucially identical results to a cold evaluation.
	cold := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Options{Seed: 1})
	if math.Abs(r2.Value-cold.Value) > 1e-9 {
		t.Errorf("cached evaluation %.4f != cold evaluation %.4f", r2.Value, cold.Value)
	}
	if r1.Value >= r2.Value {
		t.Errorf("status 1 (%.1f) should lift credit less than status 3 (%.1f)", r1.Value, r2.Value)
	}
}

func TestErrorPaths(t *testing.T) {
	g := dataset.GermanSyn(500, 43)
	cases := []struct {
		src  string
		want string
	}{
		{`USE Nope UPDATE(Status) = 3 OUTPUT COUNT(*)`, "unknown table"},
		{`USE German UPDATE(Nope) = 3 OUTPUT COUNT(*)`, "not a column"},
		{`USE German UPDATE(ID) = 3 OUTPUT COUNT(*)`, "immutable"},
		{`USE German UPDATE(Status) = 3 OUTPUT AVG(POST(Nope))`, "not a column"},
		{`USE German UPDATE(Status) = 3 AND UPDATE(Status) = 2 OUTPUT COUNT(*)`, "updated twice"},
		{`USE German UPDATE(Status) = 3 OUTPUT AVG(PRE(Credit))`, "PRE"},
		{`USE German UPDATE(Status) = 3 OUTPUT COUNT(*) FOR PRE(Nope) = 1`, "unknown column"},
	}
	for _, c := range cases {
		q, err := hyperql.ParseWhatIf(c.src)
		if err != nil {
			t.Errorf("%q failed to parse: %v", c.src, err)
			continue
		}
		_, err = Evaluate(g.DB, g.Model, q, Options{Seed: 1})
		if err == nil {
			t.Errorf("%q should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestForWithPostCondition(t *testing.T) {
	// Figure 7b template: COUNT(*) with POST condition in FOR.
	g := dataset.GermanSyn(10000, 47)
	post := g.World.Counterfactual(prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }})
	truth := fracOf(post, "Credit", 1)
	res := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(*) FOR POST(Credit) = 1`, Options{Seed: 1})
	if math.Abs(res.Value/float64(g.Rel().Len())-truth) > 0.05 {
		t.Errorf("POST-in-FOR: %.3f vs truth %.3f", res.Value/float64(g.Rel().Len()), truth)
	}
	// It must agree with the equivalent COUNT(Credit=1) formulation.
	alt := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Options{Seed: 1})
	if math.Abs(res.Value-alt.Value) > 0.02*float64(g.Rel().Len()) {
		t.Errorf("FOR-POST %.1f and COUNT-cond %.1f formulations disagree", res.Value, alt.Value)
	}
}

func TestDisjunctiveForWithInclusionExclusion(t *testing.T) {
	g := dataset.GermanSyn(10000, 53)
	// P(post credit good OR post savings low) via inclusion-exclusion must
	// lie between max of the parts and their sum.
	both := evalGerman(t, g,
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(*) FOR POST(Credit) = 1 OR POST(Savings) = 0`,
		Options{Seed: 1})
	a := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(*) FOR POST(Credit) = 1`, Options{Seed: 1})
	b := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(*) FOR POST(Savings) = 0`, Options{Seed: 1})
	if both.Value < math.Max(a.Value, b.Value)-1 {
		t.Errorf("P(A or B) = %.1f below max(%.1f, %.1f)", both.Value, a.Value, b.Value)
	}
	if both.Value > a.Value+b.Value+1 {
		t.Errorf("P(A or B) = %.1f above sum %.1f", both.Value, a.Value+b.Value)
	}
	if both.Disjuncts != 2 {
		t.Errorf("disjuncts = %d", both.Disjuncts)
	}
}

func TestIndepIgnoresBackdoor(t *testing.T) {
	g := dataset.GermanSyn(2000, 59)
	res := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Options{Mode: ModeIndep, Seed: 1})
	if len(res.Backdoor) != 0 {
		t.Errorf("Indep backdoor = %v, want empty", res.Backdoor)
	}
}

func TestResultString(t *testing.T) {
	g := dataset.GermanSyn(1000, 61)
	res := evalGerman(t, g, `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Options{Seed: 1})
	s := res.String()
	for _, want := range []string{"value=", "mode=HypeR", "backdoor=", "est="} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() missing %q: %s", want, s)
		}
	}
}
