package engine

import (
	"hash/fnv"
	"sync"

	"hyper/internal/ml"
	"hyper/internal/relation"
	"hyper/internal/stats"
)

// estimatorSet trains and caches the conditional-expectation regressors
// E[label | B, C] used by the backdoor plug-in estimate (Eq. 35-40). One
// regressor is trained per distinct post-event (or per Y-weighted event);
// all share one columnar encoded frame (ml.Frame), built once over the full
// relevant view: training selects the (sampled) rows by index, and tuple
// evaluation gathers prediction points from the same buffer instead of
// re-encoding each tuple.
type estimatorSet struct {
	view      *relation.Relation
	featCols  []string
	keepFirst int // number of leading update-attribute features
	enc       *ml.Encoder
	frame     *ml.Frame
	trainRows []int
	keys      *ml.SupportSet // exact feature combinations seen (freq only)
	kind      string
	opts      Options
	mu        sync.Mutex
	cache     map[string]ml.Regressor
}

// newEstimatorSet prepares the shared columnar frame. featCols is the
// concatenation of update attributes, the backdoor set, and any summary
// columns; sampling (HypeR-sampled) draws SampleSize rows without
// replacement.
func newEstimatorSet(view *relation.Relation, featCols []string, keepFirst int, opts Options) *estimatorSet {
	s := &estimatorSet{
		view:      view,
		featCols:  append([]string(nil), featCols...),
		keepFirst: keepFirst,
		enc:       ml.NewEncoder(view, featCols),
		opts:      opts,
		cache:     make(map[string]ml.Regressor),
	}
	s.frame = ml.NewFrame(s.enc, view)
	n := view.Len()
	if opts.SampleSize > 0 && opts.SampleSize < n {
		rng := stats.NewRNG(opts.Seed ^ 0x5ab0)
		s.trainRows = rng.SampleIndexes(n, opts.SampleSize)
	} else {
		s.trainRows = make([]int, n)
		for i := range s.trainRows {
			s.trainRows[i] = i
		}
	}
	s.kind = s.chooseKind()
	if s.kind == "freq" {
		s.keys = ml.NewSupportSet(s.frame, s.trainRows)
	}
	return s
}

// hasSupport reports whether the exact feature combination x occurs in the
// training data (only meaningful for the frequency estimator).
func (s *estimatorSet) hasSupport(x []float64) bool {
	return s.keys.Has(x)
}

// chooseKind applies the auto rule: the exact frequency estimator when every
// feature is discrete (the support-index optimization of A.4), a random
// forest otherwise.
func (s *estimatorSet) chooseKind() string {
	switch s.opts.Estimator {
	case EstimatorFreq:
		return "freq"
	case EstimatorForest:
		return "forest"
	}
	continuous := false
	for _, col := range s.featCols {
		k := s.view.Schema().Col(s.view.Schema().MustIndex(col)).Kind
		if k == relation.KindFloat {
			continuous = true
			break
		}
	}
	if !continuous {
		return "freq"
	}
	if s.opts.Estimator == EstimatorLinear {
		return "linear"
	}
	return "forest"
}

// cached returns the regressor for key if it is already trained, without
// building labels or closures — the per-tuple fast path.
func (s *estimatorSet) cached(key string) (ml.Regressor, bool) {
	s.mu.Lock()
	m, ok := s.cache[key]
	s.mu.Unlock()
	return m, ok
}

// model returns (training on demand) the regressor for the labeled target.
// key must uniquely identify the labeling function. Safe for concurrent use;
// forest seeds derive from the key so results are independent of training
// order.
func (s *estimatorSet) model(key string, label func(viewRow int) float64) ml.Regressor {
	s.mu.Lock()
	if m, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return m
	}
	s.mu.Unlock()
	y := make([]float64, len(s.trainRows))
	for i, r := range s.trainRows {
		y[i] = label(r)
	}
	var m ml.Regressor
	switch s.kind {
	case "freq":
		m = ml.FitFreqFrame(s.frame, s.trainRows, y, s.keepFirst)
	case "linear":
		m = ml.FitLinearFrame(s.frame, s.trainRows, y, 1e-6)
	default:
		p := s.opts.Forest
		h := fnv.New64a()
		h.Write([]byte(key))
		p.Seed = s.opts.Seed ^ int64(h.Sum64())
		// Forest over linear residuals: the forest captures nonlinearity
		// in-distribution while the linear trend extrapolates at the edges
		// of the observed support, where hypothetical updates often land.
		m = ml.FitBoostedFrame(s.frame, s.trainRows, y, p)
	}
	s.mu.Lock()
	// Another goroutine may have trained the same model concurrently; keep
	// the first so all callers agree.
	if prior, ok := s.cache[key]; ok {
		m = prior
	} else {
		s.cache[key] = m
	}
	s.mu.Unlock()
	return m
}

// trainedModels returns the number of regressors fitted so far.
func (s *estimatorSet) trainedModels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// featureVectorInto gathers a view row's features from the shared frame
// into dst, which must have length len(featCols).
func (s *estimatorSet) featureVectorInto(row int, dst []float64) {
	s.frame.Gather(row, dst)
}

// featureIndex returns the position of a feature column, or -1.
func (s *estimatorSet) featureIndex(col string) int {
	for i, c := range s.featCols {
		if c == col {
			return i
		}
	}
	return -1
}

// encodeAt encodes a raw value for feature position i.
func (s *estimatorSet) encodeAt(i int, v relation.Value) float64 {
	return s.enc.EncodeValue(i, v)
}
