package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"hyper/internal/ml"
	"hyper/internal/obs"
	"hyper/internal/relation"
	"hyper/internal/shard"
	"hyper/internal/stats"
)

// estimatorSet trains and caches the conditional-expectation regressors
// E[label | B, C] used by the backdoor plug-in estimate (Eq. 35-40). One
// regressor is trained per distinct post-event (or per Y-weighted event);
// all share one columnar encoded frame (ml.Frame), built once over the full
// relevant view: training selects the (sampled) rows by index, and tuple
// evaluation gathers prediction points from the same buffer instead of
// re-encoding each tuple.
type estimatorSet struct {
	view      *relation.Relation
	featCols  []string
	keepFirst int // number of leading update-attribute features
	enc       *ml.Encoder
	frame     *ml.Frame
	trainRows []int
	keys      *ml.SupportSet // exact feature combinations seen (freq only)
	kind      string
	opts      Options
	// fitPlan is the canonical shard plan over trainRows. Shard-mergeable
	// estimators (ml.ShardMergeable) fit per shard and merge in plan order;
	// the others fit whole-frame. The plan depends only on the training-set
	// size and Options.ShardRows, so fitted models are independent of the
	// worker fan-out.
	fitPlan  shard.Plan
	mu       sync.Mutex
	cache    map[string]ml.Regressor
	inflight map[string]chan struct{} // single-flight: key -> done signal
}

// newEstimatorSet prepares the shared columnar frame. featCols is the
// concatenation of update attributes, the backdoor set, and any summary
// columns; sampling (HypeR-sampled) draws SampleSize rows without
// replacement. query is the canonical query text, forwarded to a remote
// fitter (opts.RemoteFit) so the support index can be assembled from
// per-shard parts computed off-process; any remote failure falls back to
// the local sharded build, which is bit-identical.
func newEstimatorSet(ctx context.Context, view *relation.Relation, featCols []string, keepFirst int, query string, opts Options) *estimatorSet {
	s := &estimatorSet{
		view:      view,
		featCols:  append([]string(nil), featCols...),
		keepFirst: keepFirst,
		enc:       ml.NewEncoder(view, featCols),
		opts:      opts,
		cache:     make(map[string]ml.Regressor),
	}
	s.frame = ml.NewFrameWorkers(s.enc, view, opts.Shards)
	n := view.Len()
	if opts.SampleSize > 0 && opts.SampleSize < n {
		rng := stats.NewRNG(opts.Seed ^ 0x5ab0)
		s.trainRows = rng.SampleIndexes(n, opts.SampleSize)
	} else {
		s.trainRows = make([]int, n)
		for i := range s.trainRows {
			s.trainRows[i] = i
		}
	}
	s.kind = s.chooseKind()
	s.fitPlan = shard.Rows(len(s.trainRows), opts.ShardRows)
	if s.kind == "freq" {
		if opts.RemoteFit != nil {
			if parts, err := opts.RemoteFit.SupportParts(ctx, query, opts, s.fitPlan.Shards()); err == nil && len(parts) == s.fitPlan.Shards() {
				if keys, err := ml.MergeSupportWires(s.frame, parts); err == nil {
					s.keys = keys
				}
			}
		}
		if s.keys == nil {
			s.keys = ml.NewSupportSetSharded(s.frame, s.trainRows, s.fitPlan, opts.Shards)
		}
	}
	return s
}

// hasSupport reports whether the exact feature combination x occurs in the
// training data (only meaningful for the frequency estimator).
func (s *estimatorSet) hasSupport(x []float64) bool {
	return s.keys.Has(x)
}

// chooseKind applies the auto rule: the exact frequency estimator when every
// feature is discrete (the support-index optimization of A.4), a random
// forest otherwise.
func (s *estimatorSet) chooseKind() string {
	switch s.opts.Estimator {
	case EstimatorFreq:
		return "freq"
	case EstimatorForest:
		return "forest"
	}
	continuous := false
	for _, col := range s.featCols {
		k := s.view.Schema().Col(s.view.Schema().MustIndex(col)).Kind
		if k == relation.KindFloat {
			continuous = true
			break
		}
	}
	if !continuous {
		return "freq"
	}
	if s.opts.Estimator == EstimatorLinear {
		return "linear"
	}
	return "forest"
}

// cached returns the regressor for key if it is already trained, without
// building labels or closures — the per-tuple fast path.
func (s *estimatorSet) cached(key string) (ml.Regressor, bool) {
	s.mu.Lock()
	m, ok := s.cache[key]
	s.mu.Unlock()
	return m, ok
}

// fitExec is the per-call execution context of an estimator training: the
// evaluation's cancellation, worker fan-out, and (when the caller knows the
// event-subset mask) the remote fitter that can compute the per-shard fit
// off-process. It is passed per call — never stored — because a cached
// estimator set outlives the request that built it, and execution knobs
// must follow the current request, not the one that warmed the cache
// (results cannot differ either way; the fit plan is fixed).
type fitExec struct {
	ctx      context.Context
	workers  int
	fitter   RemoteFitter // nil = fit locally
	query    string       // canonical query text for the remote fitter
	opts     Options      // evaluation options, forwarded to the fitter
	mask     uint64       // event-subset bitmask identifying the model
	maskOK   bool         // mask is meaningful (subset-enumerable path)
	weighted bool
}

// model returns (training on demand) the regressor for the labeled target.
// key must uniquely identify the labeling function. Safe for concurrent use;
// forest seeds derive from the key so results are independent of training
// order. Training is single-flight: when shard workers (or how-to candidate
// scorers) race on a cold key, one goroutine trains while the rest wait for
// its result — without this, a worker fan-out of N multiplies every cold
// training N-fold, the thundering herd that erased the sharded path's win.
// A labeling error aborts the training without caching anything: a
// regressor fitted on partially failed labels must never be served to
// waiters or later queries.
//
// When ex carries a remote fitter and the estimator is shard-mergeable, the
// per-shard fit is dispatched off-process and the wire parts merge in fit-
// plan order; any remote failure falls back to the local fit, which is
// bit-identical by construction — distribution can move work, never results.
func (s *estimatorSet) model(key string, ex fitExec, label func(viewRow int) (float64, error)) (ml.Regressor, error) {
	s.mu.Lock()
	for {
		if m, ok := s.cache[key]; ok {
			s.mu.Unlock()
			return m, nil
		}
		ch, busy := s.inflight[key]
		if !busy {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	if s.inflight == nil {
		s.inflight = make(map[string]chan struct{})
	}
	done := make(chan struct{})
	s.inflight[key] = done
	s.mu.Unlock()
	// Release waiters even if labeling errors or fitting panics, so a
	// poisoned key cannot deadlock the pool (a waiter re-checks the cache,
	// finds nothing, and becomes the next trainer — deterministically
	// hitting the same labeling error).
	committed := false
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		if !committed {
			close(done)
		}
	}()

	// One span per actual training (cache hits and single-flight waiters
	// never reach here), so a trace's fit-span count equals the trained
	// model count at any shard fan-out.
	_, fsp := obs.Start(ex.ctx, "fit")
	defer fsp.End()
	fsp.Set("estimator", s.kind)
	fsp.Set("weighted", ex.weighted)

	var m ml.Regressor
	if s.kind == "freq" && ex.fitter != nil && ex.maskOK {
		if rm, err := s.remoteFit(ex); err == nil {
			m = rm
		}
		// Errors fall through to the local fit below: per-shard fits merged
		// in plan order are bit-identical to the local fit, so losing the
		// workers mid-training can never change a result — only where the
		// work ran.
		fsp.Set("remote", m != nil)
	}
	if m == nil {
		y := make([]float64, len(s.trainRows))
		for i, r := range s.trainRows {
			v, err := label(r)
			if err != nil {
				return nil, err
			}
			y[i] = v
		}
		switch s.kind {
		case "freq":
			m = ml.FitFreqFrameSharded(s.frame, s.trainRows, y, s.keepFirst, s.fitPlan, ex.workers)
		case "linear":
			m = ml.FitLinearFrame(s.frame, s.trainRows, y, 1e-6)
		default:
			p := s.opts.Forest
			h := fnv.New64a()
			h.Write([]byte(key))
			p.Seed = s.opts.Seed ^ int64(h.Sum64())
			// Forest over linear residuals: the forest captures nonlinearity
			// in-distribution while the linear trend extrapolates at the edges
			// of the observed support, where hypothetical updates often land.
			m = ml.FitBoostedFrame(s.frame, s.trainRows, y, p)
		}
	}
	// Charged only from the single-flight training path (like the fit span),
	// so the meter's fits_trained equals trainedModels() at any fan-out.
	obs.MeterFromContext(ex.ctx).AddFitTrained()
	s.mu.Lock()
	s.cache[key] = m
	s.mu.Unlock()
	committed = true
	close(done)
	return m, nil
}

// remoteFit asks the remote fitter for one wire part per fit-plan shard and
// merges them in plan order. The merged estimator equals the local
// FitFreqFrameSharded result bit for bit (same cells, same fold order), so
// callers may use remote and local fits interchangeably.
func (s *estimatorSet) remoteFit(ex fitExec) (ml.Regressor, error) {
	parts, err := ex.fitter.FitFreqParts(ex.ctx, ex.query, ex.opts, ex.mask, ex.weighted, s.fitPlan.Shards())
	if err != nil {
		return nil, err
	}
	if len(parts) != s.fitPlan.Shards() {
		return nil, fmt.Errorf("engine: remote fit returned %d parts, fit plan has %d shards", len(parts), s.fitPlan.Shards())
	}
	return ml.MergeFreqWires(s.frame, s.keepFirst, parts)
}

// shardedFit reports whether this set's estimator kind fits per shard with
// exact merge (the capability flag surfaced in Result.ShardedFit).
func (s *estimatorSet) shardedFit() bool {
	return ml.ShardMergeable(s.kind) && s.fitPlan.Shards() > 1
}

// trainedModels returns the number of regressors fitted so far.
func (s *estimatorSet) trainedModels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// featureVectorInto gathers a view row's features from the shared frame
// into dst, which must have length len(featCols).
func (s *estimatorSet) featureVectorInto(row int, dst []float64) {
	s.frame.Gather(row, dst)
}

// featureIndex returns the position of a feature column, or -1.
func (s *estimatorSet) featureIndex(col string) int {
	for i, c := range s.featCols {
		if c == col {
			return i
		}
	}
	return -1
}

// encodeAt encodes a raw value for feature position i.
func (s *estimatorSet) encodeAt(i int, v relation.Value) float64 {
	return s.enc.EncodeValue(i, v)
}
