package engine

import (
	"math"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/prcm"
)

// evalGerman runs a what-if query against a German-Syn instance.
func evalGerman(t *testing.T, g *dataset.Single, src string, opts Options) *Result {
	t.Helper()
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate(g.DB, g.Model, q, opts)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return res
}

// groundTruthCountGood computes the exact post-update count of Credit=1 via
// the structural equations.
func groundTruthCountGood(g *dataset.Single, attr string, val float64) float64 {
	post := g.World.Counterfactual(prcm.Intervention{
		Attr: attr,
		Fn:   func(float64) float64 { return val },
	})
	ci := post.Schema().MustIndex("Credit")
	n := 0
	for _, row := range post.Rows() {
		if row[ci].AsInt() == 1 {
			n++
		}
	}
	return float64(n)
}

func TestWhatIfMatchesGroundTruthOnGermanSyn(t *testing.T) {
	g := dataset.GermanSyn(20000, 7)
	for _, tc := range []struct {
		attr string
		val  float64
	}{
		{"Status", 3}, {"Status", 0}, {"Savings", 3}, {"Housing", 2}, {"CreditAmount", 0},
	} {
		gt := groundTruthCountGood(g, tc.attr, tc.val) / float64(g.Rel().Len())
		res := evalGerman(t,
			g,
			"USE German UPDATE("+tc.attr+") = "+fmtF(tc.val)+" OUTPUT COUNT(Credit = 1)",
			Options{Mode: ModeFull, Seed: 1})
		got := res.Value / float64(g.Rel().Len())
		if math.Abs(got-gt) > 0.05 {
			t.Errorf("update %s=%g: HypeR=%.4f ground truth=%.4f (diff %.4f)", tc.attr, tc.val, got, gt, math.Abs(got-gt))
		}
	}
}

func TestNBMatchesFullOnGermanSyn(t *testing.T) {
	g := dataset.GermanSyn(20000, 7)
	full := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Mode: ModeFull, Seed: 1})
	nb := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Mode: ModeNB, Seed: 1})
	n := float64(g.Rel().Len())
	if math.Abs(full.Value-nb.Value)/n > 0.06 {
		t.Errorf("HypeR=%.4f HypeR-NB=%.4f differ by more than 6%%", full.Value/n, nb.Value/n)
	}
	if len(nb.Backdoor) <= len(full.Backdoor) {
		t.Errorf("NB backdoor (%v) should be larger than full backdoor (%v)", nb.Backdoor, full.Backdoor)
	}
}

func TestIndepIsBiasedOnGermanSyn(t *testing.T) {
	// Status is confounded by Age; raw correlation (Indep) must overestimate
	// the effect of forcing Status to its maximum (Figure 10a).
	g := dataset.GermanSyn(20000, 7)
	gt := groundTruthCountGood(g, "Status", 3) / float64(g.Rel().Len())
	indep := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Mode: ModeIndep, Seed: 1})
	full := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Mode: ModeFull, Seed: 1})
	n := float64(g.Rel().Len())
	if indep.Value/n <= gt+0.02 {
		t.Errorf("Indep=%.4f should exceed ground truth=%.4f by confounding bias", indep.Value/n, gt)
	}
	if math.Abs(full.Value/n-gt) >= math.Abs(indep.Value/n-gt) {
		t.Errorf("HypeR (%.4f) should be closer to ground truth (%.4f) than Indep (%.4f)", full.Value/n, gt, indep.Value/n)
	}
}

func TestSampledCloseToFull(t *testing.T) {
	g := dataset.GermanSyn(30000, 7)
	full := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Mode: ModeFull, Seed: 1})
	sampled := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)",
		Options{Mode: ModeFull, Seed: 1, SampleSize: 10000})
	n := float64(g.Rel().Len())
	if sampled.SampledRows != 10000 {
		t.Fatalf("sampled rows = %d, want 10000", sampled.SampledRows)
	}
	if math.Abs(full.Value-sampled.Value)/n > 0.03 {
		t.Errorf("sampled=%.4f full=%.4f differ by more than 3%%", sampled.Value/n, full.Value/n)
	}
}

func TestWhenRestrictsUpdateSet(t *testing.T) {
	g := dataset.GermanSyn(5000, 3)
	all := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Seed: 1})
	some := evalGerman(t, g, "USE German WHEN Age = 0 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)", Options{Seed: 1})
	if some.UpdatedRows >= all.UpdatedRows {
		t.Fatalf("WHEN should restrict S: %d >= %d", some.UpdatedRows, all.UpdatedRows)
	}
	if some.Value >= all.Value {
		t.Errorf("partial update (%.1f) should lift credit less than full update (%.1f)", some.Value, all.Value)
	}
}

func TestForPreFiltersPopulation(t *testing.T) {
	g := dataset.GermanSyn(5000, 3)
	res := evalGerman(t, g,
		"USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2", Options{Seed: 1})
	// Count of rows with Age=2.
	ai := g.Rel().Schema().MustIndex("Age")
	n := 0
	for _, row := range g.Rel().Rows() {
		if row[ai].AsInt() == 2 {
			n++
		}
	}
	if res.Value > float64(n) || res.Value <= 0 {
		t.Errorf("FOR-restricted count %.1f out of range (0, %d]", res.Value, n)
	}
}

func TestAvgAndSumConsistent(t *testing.T) {
	g := dataset.GermanSyn(5000, 3)
	avg := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT AVG(POST(Credit))", Options{Seed: 1})
	sum := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT SUM(POST(Credit))", Options{Seed: 1})
	cnt := evalGerman(t, g, "USE German UPDATE(Status) = 3 OUTPUT COUNT(*)", Options{Seed: 1})
	if math.Abs(avg.Value*cnt.Value-sum.Value) > 1e-6*sum.Value+1e-9 {
		t.Errorf("AVG*COUNT (%.4f) != SUM (%.4f)", avg.Value*cnt.Value, sum.Value)
	}
	if cnt.Value != float64(g.Rel().Len()) {
		t.Errorf("COUNT(*) with no FOR = %.1f, want %d", cnt.Value, g.Rel().Len())
	}
}

func TestBlocksDoNotChangeResult(t *testing.T) {
	// Proposition 1: block decomposition is an optimization, not a
	// semantics change.
	g := dataset.GermanSyn(3000, 9)
	with := evalGerman(t, g, "USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1)", Options{Seed: 1})
	without := evalGerman(t, g, "USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1)", Options{Seed: 1, DisableBlocks: true})
	if math.Abs(with.Value-without.Value) > 1e-9 {
		t.Errorf("blocks changed the result: %.6f vs %.6f", with.Value, without.Value)
	}
	if without.Blocks != 1 {
		t.Errorf("DisableBlocks should report 1 block, got %d", without.Blocks)
	}
}

func fmtF(f float64) string {
	if f == math.Trunc(f) {
		return string(rune('0' + int(f)))
	}
	panic("fmtF only supports small integers")
}
