package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyper/internal/dataset"
	"hyper/internal/hyperql"
	"hyper/internal/stats"
)

// randomQuery builds a random but well-formed what-if query over the
// German-Syn schema.
func randomQuery(rng *stats.RNG) string {
	updAttrs := []string{"Status", "Savings", "Housing", "CreditAmount"}
	attr := updAttrs[rng.Intn(len(updAttrs))]
	maxCode := map[string]int{"Status": 3, "Savings": 3, "Housing": 2, "CreditAmount": 3}[attr]
	src := "USE German "
	if rng.Intn(2) == 0 {
		src += fmt.Sprintf("WHEN Age = %d ", rng.Intn(4))
	}
	switch rng.Intn(3) {
	case 0:
		src += fmt.Sprintf("UPDATE(%s) = %d ", attr, rng.Intn(maxCode+1))
	case 1:
		src += fmt.Sprintf("UPDATE(%s) = 1 + PRE(%s) ", attr, attr)
	default:
		src += fmt.Sprintf("UPDATE(%s) = 2 * PRE(%s) ", attr, attr)
	}
	switch rng.Intn(3) {
	case 0:
		src += "OUTPUT COUNT(Credit = 1)"
	case 1:
		src += "OUTPUT AVG(POST(Credit))"
	default:
		src += "OUTPUT SUM(POST(Credit))"
	}
	switch rng.Intn(4) {
	case 0:
		src += fmt.Sprintf(" FOR PRE(Sex) = %d", rng.Intn(2))
	case 1:
		src += " FOR POST(Credit) = 1 OR PRE(Age) = 0"
	case 2:
		src += fmt.Sprintf(" FOR PRE(Age) IN (0, %d)", 1+rng.Intn(3))
	}
	return src
}

// TestRandomQueryInvariants checks, over random well-formed queries, the
// invariants that must hold regardless of the data: results are finite and
// bounded, COUNT lies in [0, n], AVG of a 0/1 attribute lies in [0, 1],
// evaluation is deterministic, and block decomposition never changes the
// answer (Proposition 1).
func TestRandomQueryInvariants(t *testing.T) {
	g := dataset.GermanSyn(3000, 211)
	n := float64(g.Rel().Len())
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		src := randomQuery(rng)
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			t.Logf("generated query failed to parse: %q: %v", src, err)
			return false
		}
		res, err := Evaluate(g.DB, g.Model, q, Options{Seed: 1})
		if err != nil {
			t.Logf("%q: %v", src, err)
			return false
		}
		if math.IsNaN(res.Value) || math.IsInf(res.Value, 0) {
			t.Logf("%q: non-finite value %v", src, res.Value)
			return false
		}
		if res.Count < -1e-9 || res.Count > n+1e-9 {
			t.Logf("%q: count %v out of [0, %v]", src, res.Count, n)
			return false
		}
		switch q.Output.Func {
		case hyperql.AggCount:
			if res.Value < -1e-9 || res.Value > n+1e-9 {
				t.Logf("%q: COUNT %v out of range", src, res.Value)
				return false
			}
		case hyperql.AggAvg:
			// Credit is 0/1.
			if res.Value < -1e-9 || res.Value > 1+1e-9 {
				t.Logf("%q: AVG %v out of [0,1]", src, res.Value)
				return false
			}
		case hyperql.AggSum:
			if res.Value < -1e-9 || res.Value > n+1e-9 {
				t.Logf("%q: SUM %v out of range", src, res.Value)
				return false
			}
		}
		// Determinism.
		res2, err := Evaluate(g.DB, g.Model, q, Options{Seed: 1})
		if err != nil || res2.Value != res.Value {
			t.Logf("%q: nondeterministic (%v vs %v, err %v)", src, res.Value, res2.Value, err)
			return false
		}
		// Proposition 1: blocks are an optimization only.
		noBlocks, err := Evaluate(g.DB, g.Model, q, Options{Seed: 1, DisableBlocks: true})
		if err != nil || math.Abs(noBlocks.Value-res.Value) > 1e-9 {
			t.Logf("%q: block decomposition changed the result (%v vs %v)", src, res.Value, noBlocks.Value)
			return false
		}
		return true
	}
	// These checks are true invariants, so random (time-seeded) inputs are
	// safe and keep exploring the query space.
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomQueryModesOrdered checks a softer cross-mode invariant on random
// queries: all three modes produce in-range results and the sampled variant
// stays close to the full one.
func TestRandomQuerySampledConsistency(t *testing.T) {
	g := dataset.GermanSyn(4000, 223)
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		src := randomQuery(rng)
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			return false
		}
		full, err := Evaluate(g.DB, g.Model, q, Options{Seed: 2})
		if err != nil {
			return false
		}
		sampled, err := Evaluate(g.DB, g.Model, q, Options{Seed: 2, SampleSize: 2000})
		if err != nil {
			t.Logf("%q: sampled failed: %v", src, err)
			return false
		}
		// Normalize by the scale of the full answer.
		scale := math.Max(math.Abs(full.Value), 1)
		if math.Abs(full.Value-sampled.Value)/scale > 0.25 {
			t.Logf("%q: sampled %v far from full %v", src, sampled.Value, full.Value)
			return false
		}
		return true
	}
	// Fixed source: the 25% sampled-vs-full bound is a statistical property,
	// not an invariant — some random draws legitimately violate it (e.g.
	// seed 8888173126901695333 deviates 25.1% on the pre- and post-columnar
	// engine alike). Pinning the inputs keeps the suite deterministic.
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
