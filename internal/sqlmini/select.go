package sqlmini

import (
	"fmt"
	"strings"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

// RunSelect evaluates a USE sub-select against db and materializes the
// relevant view as a relation named name. Joins are executed as left-deep
// hash joins over the equality conjuncts of WHERE; the residual predicate
// filters the joined rows; GROUP BY groups and computes the aggregates.
func RunSelect(db *relation.Database, sel *hyperql.SelectStmt, name string) (*relation.Relation, error) {
	j, err := newJoiner(db, sel)
	if err != nil {
		return nil, err
	}
	rows, err := j.run()
	if err != nil {
		return nil, err
	}
	if len(sel.GroupBy) == 0 {
		return j.project(rows, name)
	}
	return j.groupProject(rows, name)
}

// joiner holds the combined schema of all FROM tables.
type joiner struct {
	db      *relation.Database
	sel     *hyperql.SelectStmt
	tables  []*relation.Relation // in FROM order
	aliases []string
	offsets []int // column offset of each table in the combined row
	width   int
}

func newJoiner(db *relation.Database, sel *hyperql.SelectStmt) (*joiner, error) {
	j := &joiner{db: db, sel: sel}
	for _, tr := range sel.From {
		r := db.Relation(tr.Name)
		if r == nil {
			return nil, fmt.Errorf("sqlmini: unknown table %q", tr.Name)
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		for _, a := range j.aliases {
			if a == alias {
				return nil, fmt.Errorf("sqlmini: duplicate table alias %q", alias)
			}
		}
		j.tables = append(j.tables, r)
		j.aliases = append(j.aliases, alias)
		j.offsets = append(j.offsets, j.width)
		j.width += r.Schema().Len()
	}
	return j, nil
}

// resolve maps a column reference to its combined-row offset.
func (j *joiner) resolve(table, name string) (int, error) {
	if table != "" {
		for ti, a := range j.aliases {
			if a == table || j.tables[ti].Name() == table {
				ci, ok := j.tables[ti].Schema().Index(name)
				if !ok {
					return -1, fmt.Errorf("sqlmini: table %q has no column %q", table, name)
				}
				return j.offsets[ti] + ci, nil
			}
		}
		return -1, fmt.Errorf("sqlmini: unknown table %q", table)
	}
	found := -1
	for ti, r := range j.tables {
		if ci, ok := r.Schema().Index(name); ok {
			if found >= 0 {
				return -1, fmt.Errorf("sqlmini: column %q is ambiguous", name)
			}
			found = j.offsets[ti] + ci
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("sqlmini: unknown column %q", name)
	}
	return found, nil
}

// sourceCol returns the schema column for a combined-row offset.
func (j *joiner) sourceCol(off int) relation.Column {
	for ti := len(j.tables) - 1; ti >= 0; ti-- {
		if off >= j.offsets[ti] {
			return j.tables[ti].Schema().Col(off - j.offsets[ti])
		}
	}
	panic("sqlmini: offset out of range")
}

// joinCond is one equi-join conjunct between two tables.
type joinCond struct {
	leftOff, rightOff int
	rightTable        int
}

// run executes the joins and the residual filter, returning combined rows.
func (j *joiner) run() ([][]relation.Value, error) {
	conjuncts := splitAnd(j.sel.Where)
	var residual []hyperql.Expr
	// joinsFor[t] holds equi-join conditions usable when table t joins in.
	joinsFor := make([][]joinCond, len(j.tables))
	for _, c := range conjuncts {
		if jc, ok := j.asJoinCond(c); ok {
			joinsFor[jc.rightTable] = append(joinsFor[jc.rightTable], jc)
			continue
		}
		residual = append(residual, c)
	}

	// Left-deep pipeline: start with table 0, hash-join each next table.
	cur := make([][]relation.Value, 0, j.tables[0].Len())
	for _, row := range j.tables[0].Rows() {
		combined := make([]relation.Value, j.width)
		copy(combined[j.offsets[0]:], row)
		cur = append(cur, combined)
	}
	for t := 1; t < len(j.tables); t++ {
		conds := joinsFor[t]
		next := make([][]relation.Value, 0, len(cur))
		rt := j.tables[t]
		if len(conds) == 0 {
			// Cross product (rare; guarded by size).
			if len(cur)*rt.Len() > 5_000_000 {
				return nil, fmt.Errorf("sqlmini: refusing cross product of %d x %d rows; add a join condition", len(cur), rt.Len())
			}
			for _, c := range cur {
				for _, row := range rt.Rows() {
					nc := append([]relation.Value(nil), c...)
					copy(nc[j.offsets[t]:], row)
					next = append(next, nc)
				}
			}
			cur = next
			continue
		}
		// Build hash on the new table keyed by its join columns.
		hash := make(map[string][]int, rt.Len())
		for ri, row := range rt.Rows() {
			var kb strings.Builder
			for _, c := range conds {
				kb.WriteString(row[c.rightOff-j.offsets[t]].Key())
				kb.WriteByte('|')
			}
			k := kb.String()
			hash[k] = append(hash[k], ri)
		}
		for _, c := range cur {
			var kb strings.Builder
			for _, cond := range conds {
				kb.WriteString(c[cond.leftOff].Key())
				kb.WriteByte('|')
			}
			for _, ri := range hash[kb.String()] {
				nc := append([]relation.Value(nil), c...)
				copy(nc[j.offsets[t]:], rt.Row(ri))
				next = append(next, nc)
			}
		}
		cur = next
	}

	if len(residual) == 0 {
		return cur, nil
	}
	out := cur[:0]
	for _, row := range cur {
		env := combinedEnv{j: j, row: row}
		keep := true
		for _, c := range residual {
			ok, err := EvalBool(c, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// asJoinCond recognizes "a.x = b.y" conjuncts whose sides live in different
// tables, returning a joinCond oriented so rightTable is the later table.
func (j *joiner) asJoinCond(e hyperql.Expr) (joinCond, bool) {
	b, ok := e.(*hyperql.Binary)
	if !ok || b.Op != "=" {
		return joinCond{}, false
	}
	lc, ok1 := b.L.(*hyperql.ColRef)
	rc, ok2 := b.R.(*hyperql.ColRef)
	if !ok1 || !ok2 {
		return joinCond{}, false
	}
	lo, err1 := j.resolve(lc.Table, lc.Name)
	ro, err2 := j.resolve(rc.Table, rc.Name)
	if err1 != nil || err2 != nil {
		return joinCond{}, false
	}
	lt, rt := j.tableOf(lo), j.tableOf(ro)
	if lt == rt {
		return joinCond{}, false
	}
	if lt > rt {
		lo, ro = ro, lo
		lt, rt = rt, lt
	}
	return joinCond{leftOff: lo, rightOff: ro, rightTable: rt}, true
}

func (j *joiner) tableOf(off int) int {
	for ti := len(j.tables) - 1; ti >= 0; ti-- {
		if off >= j.offsets[ti] {
			return ti
		}
	}
	return 0
}

type combinedEnv struct {
	j   *joiner
	row []relation.Value
}

func (e combinedEnv) Lookup(table, name string, _ hyperql.Temporal) (relation.Value, error) {
	off, err := e.j.resolve(table, name)
	if err != nil {
		return relation.Null, err
	}
	return e.row[off], nil
}

// project materializes a non-grouped select (columns only).
func (j *joiner) project(rows [][]relation.Value, name string) (*relation.Relation, error) {
	var cols []relation.Column
	var offs []int
	for _, item := range j.sel.Items {
		c, ok := item.Expr.(*hyperql.ColRef)
		if !ok {
			return nil, fmt.Errorf("sqlmini: aggregate select item %s requires GROUP BY", item.Expr)
		}
		off, err := j.resolve(c.Table, c.Name)
		if err != nil {
			return nil, err
		}
		src := j.sourceCol(off)
		cn := item.Alias
		if cn == "" {
			cn = c.Name
		}
		cols = append(cols, relation.Column{Name: cn, Kind: src.Kind, Key: src.Key, Mutable: src.Mutable})
		offs = append(offs, off)
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.NewRelation(name, schema)
	for _, row := range rows {
		t := make(relation.Tuple, len(offs))
		for i, off := range offs {
			t[i] = row[off]
		}
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// groupProject materializes a grouped select with aggregates.
func (j *joiner) groupProject(rows [][]relation.Value, name string) (*relation.Relation, error) {
	groupOffs := make([]int, len(j.sel.GroupBy))
	for i, g := range j.sel.GroupBy {
		off, err := j.resolve(g.Table, g.Name)
		if err != nil {
			return nil, err
		}
		groupOffs[i] = off
	}
	// Classify select items: each must be a group-by column or an aggregate.
	type itemPlan struct {
		isAgg    bool
		groupPos int                // for columns: index into groupOffs
		agg      *hyperql.Aggregate // for aggregates
		argOff   int                // combined offset of aggregate argument (-1 for *)
		name     string
		col      relation.Column
	}
	var plans []itemPlan
	for _, item := range j.sel.Items {
		switch x := item.Expr.(type) {
		case *hyperql.ColRef:
			off, err := j.resolve(x.Table, x.Name)
			if err != nil {
				return nil, err
			}
			gp := -1
			for i, g := range groupOffs {
				if g == off {
					gp = i
				}
			}
			if gp < 0 {
				return nil, fmt.Errorf("sqlmini: column %s must appear in GROUP BY or an aggregate", x)
			}
			cn := item.Alias
			if cn == "" {
				cn = x.Name
			}
			src := j.sourceCol(off)
			plans = append(plans, itemPlan{groupPos: gp, name: cn,
				col: relation.Column{Name: cn, Kind: src.Kind, Key: src.Key, Mutable: src.Mutable}})
		case *hyperql.Aggregate:
			if !x.Func.Valid() {
				return nil, fmt.Errorf("sqlmini: unsupported aggregate %q", x.Func)
			}
			argOff := -1
			if x.Expr != nil {
				c, ok := x.Expr.(*hyperql.ColRef)
				if !ok {
					return nil, fmt.Errorf("sqlmini: aggregate argument must be a column, got %s", x.Expr)
				}
				off, err := j.resolve(c.Table, c.Name)
				if err != nil {
					return nil, err
				}
				argOff = off
			}
			cn := item.Alias
			if cn == "" {
				cn = strings.ToLower(string(x.Func))
			}
			kind := relation.KindFloat
			if x.Func == hyperql.AggCount {
				kind = relation.KindInt
			}
			plans = append(plans, itemPlan{isAgg: true, agg: x, argOff: argOff, name: cn,
				col: relation.Column{Name: cn, Kind: kind, Mutable: true}})
		default:
			return nil, fmt.Errorf("sqlmini: unsupported select item %s", item.Expr)
		}
	}
	var cols []relation.Column
	for _, p := range plans {
		cols = append(cols, p.col)
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.NewRelation(name, schema)

	// Group rows.
	type group struct {
		key    []relation.Value
		sums   []float64
		counts []int
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rows {
		var kb strings.Builder
		for _, off := range groupOffs {
			kb.WriteString(row[off].Key())
			kb.WriteByte('|')
		}
		k := kb.String()
		g := groups[k]
		if g == nil {
			key := make([]relation.Value, len(groupOffs))
			for i, off := range groupOffs {
				key[i] = row[off]
			}
			g = &group{key: key, sums: make([]float64, len(plans)), counts: make([]int, len(plans))}
			groups[k] = g
			order = append(order, k)
		}
		for pi, p := range plans {
			if !p.isAgg {
				continue
			}
			if p.argOff < 0 {
				g.counts[pi]++
				continue
			}
			v := row[p.argOff]
			if v.IsNull() {
				continue
			}
			g.sums[pi] += v.AsFloat()
			g.counts[pi]++
		}
	}
	for _, k := range order {
		g := groups[k]
		t := make(relation.Tuple, len(plans))
		for pi, p := range plans {
			if !p.isAgg {
				t[pi] = g.key[p.groupPos]
				continue
			}
			switch p.agg.Func {
			case hyperql.AggCount:
				t[pi] = relation.Int(int64(g.counts[pi]))
			case hyperql.AggSum:
				t[pi] = relation.Float(g.sums[pi])
			case hyperql.AggAvg:
				if g.counts[pi] == 0 {
					t[pi] = relation.Null
				} else {
					t[pi] = relation.Float(g.sums[pi] / float64(g.counts[pi]))
				}
			}
		}
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e hyperql.Expr) []hyperql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*hyperql.Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []hyperql.Expr{e}
}
