package sqlmini

import (
	"math"
	"testing"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

func toyDB(t *testing.T) *relation.Database {
	t.Helper()
	prod := relation.NewRelation("Product", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Category", Kind: relation.KindString},
		relation.Column{Name: "Price", Kind: relation.KindFloat, Mutable: true},
	))
	prod.MustInsert(relation.Int(1), relation.String("A"), relation.Float(100))
	prod.MustInsert(relation.Int(2), relation.String("A"), relation.Float(200))
	prod.MustInsert(relation.Int(3), relation.String("B"), relation.Float(300))
	rev := relation.NewRelation("Review", relation.MustSchema(
		relation.Column{Name: "PID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "RID", Kind: relation.KindInt, Key: true},
		relation.Column{Name: "Rating", Kind: relation.KindInt, Mutable: true},
	))
	rev.MustInsert(relation.Int(1), relation.Int(1), relation.Int(4))
	rev.MustInsert(relation.Int(1), relation.Int(2), relation.Int(2))
	rev.MustInsert(relation.Int(2), relation.Int(3), relation.Int(5))
	db := relation.NewDatabase()
	db.MustAdd(prod)
	db.MustAdd(rev)
	return db
}

func runSelect(t *testing.T, db *relation.Database, src string) *relation.Relation {
	t.Helper()
	q, err := hyperql.Parse("USE (" + src + ") UPDATE(Price) = 1 OUTPUT COUNT(*)")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel := q.(*hyperql.WhatIf).Use.Select
	rel, err := RunSelect(db, sel, "V")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rel
}

func TestSelectProjection(t *testing.T) {
	rel := runSelect(t, toyDB(t), `SELECT PID, Price FROM Product`)
	if rel.Len() != 3 || rel.Schema().Len() != 2 {
		t.Fatalf("projection = %v", rel)
	}
	// Key and mutability flags survive projection.
	if !rel.Schema().Col(0).Key || !rel.Schema().Col(1).Mutable {
		t.Error("schema flags lost")
	}
}

func TestSelectWhereFilter(t *testing.T) {
	rel := runSelect(t, toyDB(t), `SELECT PID, Price FROM Product WHERE Price >= 200`)
	if rel.Len() != 2 {
		t.Fatalf("filtered rows = %d", rel.Len())
	}
	rel = runSelect(t, toyDB(t), `SELECT PID FROM Product WHERE Category = 'A' AND Price < 150`)
	if rel.Len() != 1 || rel.Value(0, "PID").AsInt() != 1 {
		t.Fatalf("conjunctive filter = %v", rel)
	}
}

func TestSelectHashJoin(t *testing.T) {
	rel := runSelect(t, toyDB(t), `SELECT T2.PID, T2.RID, T2.Rating, T1.Price FROM Product AS T1, Review AS T2 WHERE T1.PID = T2.PID`)
	if rel.Len() != 3 {
		t.Fatalf("join rows = %d, want 3", rel.Len())
	}
	// Each review row carries its product's price.
	i := rel.LookupKey(relation.Tuple{relation.Int(2), relation.Int(3)})
	if i < 0 || rel.Value(i, "Price").AsFloat() != 200 {
		t.Errorf("joined price wrong: row %d", i)
	}
}

func TestSelectJoinDuplicateKeyRejected(t *testing.T) {
	// Projecting only the product key of a 1-to-many join duplicates keys;
	// the evaluator must reject it rather than silently drop rows.
	db := toyDB(t)
	q, err := hyperql.Parse(`USE (SELECT T1.PID, T2.Rating FROM Product AS T1, Review AS T2 WHERE T1.PID = T2.PID) UPDATE(Rating) = 1 OUTPUT COUNT(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSelect(db, q.(*hyperql.WhatIf).Use.Select, "V"); err == nil {
		t.Error("duplicate view keys should be rejected")
	}
}

func TestSelectGroupByAggregates(t *testing.T) {
	rel := runSelect(t, toyDB(t), `
SELECT T1.PID, T1.Price, AVG(T2.Rating) AS AvgR, SUM(T2.Rating) AS SumR, COUNT(*) AS N
FROM Product AS T1, Review AS T2
WHERE T1.PID = T2.PID
GROUP BY T1.PID, T1.Price`)
	if rel.Len() != 2 {
		t.Fatalf("groups = %d", rel.Len())
	}
	// Product 1: ratings 4, 2.
	i := rel.LookupKey(relation.Tuple{relation.Int(1)})
	if i < 0 {
		t.Fatal("product 1 group missing")
	}
	if got := rel.Value(i, "AvgR").AsFloat(); got != 3 {
		t.Errorf("avg = %g", got)
	}
	if got := rel.Value(i, "SumR").AsFloat(); got != 6 {
		t.Errorf("sum = %g", got)
	}
	if got := rel.Value(i, "N").AsInt(); got != 2 {
		t.Errorf("count = %d", got)
	}
}

func TestSelectErrors(t *testing.T) {
	db := toyDB(t)
	bad := []string{
		`SELECT Nope FROM Product`,
		`SELECT PID FROM Nope`,
		`SELECT PID FROM Product, Product`,            // duplicate alias
		`SELECT AVG(Price) FROM Product`,              // aggregate without GROUP BY
		`SELECT PID, Price FROM Product GROUP BY PID`, // Price not grouped
	}
	for _, src := range bad {
		q, err := hyperql.Parse("USE (" + src + ") UPDATE(Price) = 1 OUTPUT COUNT(*)")
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, err := RunSelect(db, q.(*hyperql.WhatIf).Use.Select, "V"); err == nil {
			t.Errorf("RunSelect(%q) should fail", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := toyDB(t)
	q, err := hyperql.Parse(`USE (SELECT PID FROM Product AS T1, Review AS T2 WHERE T1.PID = T2.PID) UPDATE(Price) = 1 OUTPUT COUNT(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSelect(db, q.(*hyperql.WhatIf).Use.Select, "V"); err == nil {
		t.Error("unqualified ambiguous column should fail")
	}
}

func evalStr(t *testing.T, src string, env Env) relation.Value {
	t.Helper()
	e, err := hyperql.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalArithmeticAndComparison(t *testing.T) {
	rel := relation.NewRelation("T", relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindFloat},
		relation.Column{Name: "s", Kind: relation.KindString},
	))
	rel.MustInsert(relation.Int(3), relation.Float(1.5), relation.String("x"))
	env := RowEnv{Rel: rel, Row: rel.Row(0)}

	cases := []struct {
		src  string
		want relation.Value
	}{
		{`a + 1`, relation.Int(4)},
		{`a * b`, relation.Float(4.5)},
		{`a - 5`, relation.Int(-2)},
		{`a / 2`, relation.Float(1.5)},
		{`-a`, relation.Int(-3)},
		{`a = 3`, relation.Bool(true)},
		{`a != 3`, relation.Bool(false)},
		{`b < 2`, relation.Bool(true)},
		{`s = 'x'`, relation.Bool(true)},
		{`a > 1 AND b < 1`, relation.Bool(false)},
		{`a > 1 OR b < 1`, relation.Bool(true)},
		{`NOT (a = 3)`, relation.Bool(false)},
		{`a IN (1, 3, 5)`, relation.Bool(true)},
		{`a NOT IN (1, 3, 5)`, relation.Bool(false)},
		{`1 <= a <= 5`, relation.Bool(true)},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	rel := relation.NewRelation("T", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	rel.MustInsert(relation.Int(1))
	env := RowEnv{Rel: rel, Row: rel.Row(0)}
	// Unknown column on the right of a short-circuited AND must not error.
	e, err := hyperql.ParseExpr(`a = 2 AND nope = 1`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("short-circuit AND evaluated RHS: %v", err)
	}
	if v.AsBool() {
		t.Error("false AND x should be false")
	}
}

func TestEvalUnknownColumn(t *testing.T) {
	rel := relation.NewRelation("T", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	rel.MustInsert(relation.Int(1))
	env := RowEnv{Rel: rel, Row: rel.Row(0)}
	e, _ := hyperql.ParseExpr(`nope = 1`)
	if _, err := Eval(e, env); err == nil {
		t.Error("unknown column should error")
	}
}

func TestPrePostEnv(t *testing.T) {
	rel := relation.NewRelation("T", relation.MustSchema(
		relation.Column{Name: "p", Kind: relation.KindFloat, Mutable: true},
	))
	rel.MustInsert(relation.Float(10))
	pre := rel.Row(0)
	post := relation.Tuple{relation.Float(15)}
	env := PrePostEnv{Rel: rel, Pre: pre, Post: post}

	if v := evalStr(t, `PRE(p)`, env); v.AsFloat() != 10 {
		t.Errorf("PRE = %v", v)
	}
	if v := evalStr(t, `POST(p)`, env); v.AsFloat() != 15 {
		t.Errorf("POST = %v", v)
	}
	// Default resolves to Pre unless DefaultPost.
	if v := evalStr(t, `p`, env); v.AsFloat() != 10 {
		t.Errorf("default = %v", v)
	}
	env.DefaultPost = true
	if v := evalStr(t, `p`, env); v.AsFloat() != 15 {
		t.Errorf("default post = %v", v)
	}
	// L1 distance.
	if v := evalStr(t, `L1(PRE(p), POST(p))`, env); math.Abs(v.AsFloat()-5) > 1e-12 {
		t.Errorf("L1 = %v", v)
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	rel := relation.NewRelation("T", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	rel.MustInsert(relation.Null)
	env := RowEnv{Rel: rel, Row: rel.Row(0)}
	for _, src := range []string{`a = 0`, `a < 5`, `a != 0`} {
		if v := evalStr(t, src, env); v.AsBool() {
			t.Errorf("%s on NULL should be false", src)
		}
	}
}
