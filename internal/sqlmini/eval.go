// Package sqlmini evaluates the SQL fragment HypeR embeds in the USE
// operator (Section 3.1): SELECT with column and aggregate projections, FROM
// with multiple tables, WHERE with equi-joins and filters, and GROUP BY. It
// also provides the general expression evaluator used by the engine for
// WHEN and FOR predicates with PRE()/POST() environments.
package sqlmini

import (
	"fmt"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

// Env supplies values for column references during expression evaluation.
type Env interface {
	// Lookup resolves a (possibly table-qualified) column at the given
	// temporal marker. Implementations decide what TimeDefault means.
	Lookup(table, name string, time hyperql.Temporal) (relation.Value, error)
}

// Eval evaluates an expression to a Value.
func Eval(e hyperql.Expr, env Env) (relation.Value, error) {
	switch x := e.(type) {
	case *hyperql.Literal:
		return x.Val, nil
	case *hyperql.ColRef:
		return env.Lookup(x.Table, x.Name, x.Time)
	case *hyperql.Unary:
		v, err := Eval(x.X, env)
		if err != nil {
			return relation.Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return relation.Null, nil
			}
			return relation.Bool(!truthy(v)), nil
		case "-":
			if !v.Kind().Numeric() {
				return relation.Null, nil
			}
			if v.Kind() == relation.KindInt {
				return relation.Int(-v.AsInt()), nil
			}
			return relation.Float(-v.AsFloat()), nil
		}
		return relation.Null, fmt.Errorf("sqlmini: unknown unary operator %q", x.Op)
	case *hyperql.Binary:
		return evalBinary(x, env)
	case *hyperql.InList:
		v, err := Eval(x.X, env)
		if err != nil {
			return relation.Null, err
		}
		found := false
		for _, ve := range x.Vals {
			c, err := Eval(ve, env)
			if err != nil {
				return relation.Null, err
			}
			if v.Equal(c) {
				found = true
				break
			}
		}
		return relation.Bool(found != x.Neg), nil
	case *hyperql.L1Dist:
		pre, err := env.Lookup("", x.Attr, hyperql.TimePre)
		if err != nil {
			return relation.Null, err
		}
		post, err := env.Lookup("", x.Attr, hyperql.TimePost)
		if err != nil {
			return relation.Null, err
		}
		d := post.AsFloat() - pre.AsFloat()
		if d < 0 {
			d = -d
		}
		return relation.Float(d), nil
	case *hyperql.Aggregate:
		return relation.Null, fmt.Errorf("sqlmini: aggregate %s not allowed in scalar context", x)
	default:
		return relation.Null, fmt.Errorf("sqlmini: cannot evaluate %T", e)
	}
}

func evalBinary(x *hyperql.Binary, env Env) (relation.Value, error) {
	switch x.Op {
	case "AND":
		l, err := EvalBool(x.L, env)
		if err != nil {
			return relation.Null, err
		}
		if !l {
			return relation.Bool(false), nil
		}
		r, err := EvalBool(x.R, env)
		if err != nil {
			return relation.Null, err
		}
		return relation.Bool(r), nil
	case "OR":
		l, err := EvalBool(x.L, env)
		if err != nil {
			return relation.Null, err
		}
		if l {
			return relation.Bool(true), nil
		}
		r, err := EvalBool(x.R, env)
		if err != nil {
			return relation.Null, err
		}
		return relation.Bool(r), nil
	}
	l, err := Eval(x.L, env)
	if err != nil {
		return relation.Null, err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return relation.Null, err
	}
	switch x.Op {
	case "+":
		return l.Add(r), nil
	case "-":
		return l.Sub(r), nil
	case "*":
		return l.Mul(r), nil
	case "/":
		return l.Div(r), nil
	}
	if l.IsNull() || r.IsNull() {
		// SQL three-valued logic collapsed to false for comparisons on NULL.
		return relation.Bool(false), nil
	}
	c := l.Compare(r)
	switch x.Op {
	case "=":
		return relation.Bool(c == 0), nil
	case "!=":
		return relation.Bool(c != 0), nil
	case "<":
		return relation.Bool(c < 0), nil
	case "<=":
		return relation.Bool(c <= 0), nil
	case ">":
		return relation.Bool(c > 0), nil
	case ">=":
		return relation.Bool(c >= 0), nil
	}
	return relation.Null, fmt.Errorf("sqlmini: unknown operator %q", x.Op)
}

// EvalBool evaluates e and coerces to a boolean (NULL is false).
func EvalBool(e hyperql.Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func truthy(v relation.Value) bool {
	switch v.Kind() {
	case relation.KindBool:
		return v.AsBool()
	case relation.KindInt, relation.KindFloat:
		return v.AsFloat() != 0
	case relation.KindString:
		return v.AsString() != ""
	default:
		return false
	}
}

// RowEnv is an Env over a single tuple of a relation; TimeDefault and
// TimePre and TimePost all read the same row (no update context).
type RowEnv struct {
	Rel *relation.Relation
	Row relation.Tuple
}

// Lookup implements Env.
func (r RowEnv) Lookup(table, name string, _ hyperql.Temporal) (relation.Value, error) {
	if table != "" && table != r.Rel.Name() {
		return relation.Null, fmt.Errorf("sqlmini: unknown table %q", table)
	}
	i, ok := r.Rel.Schema().Index(name)
	if !ok {
		return relation.Null, fmt.Errorf("sqlmini: unknown column %q in %s", name, r.Rel.Name())
	}
	return r.Row[i], nil
}

// PrePostEnv is an Env over a pre-update tuple and a post-update tuple of
// the same relation. TimeDefault resolves to Default (Pre per the paper,
// unless the caller flips DefaultPost for OUTPUT/objective clauses).
type PrePostEnv struct {
	Rel         *relation.Relation
	Pre         relation.Tuple
	Post        relation.Tuple
	DefaultPost bool
}

// Lookup implements Env.
func (p PrePostEnv) Lookup(table, name string, time hyperql.Temporal) (relation.Value, error) {
	if table != "" && table != p.Rel.Name() {
		return relation.Null, fmt.Errorf("sqlmini: unknown table %q", table)
	}
	i, ok := p.Rel.Schema().Index(name)
	if !ok {
		return relation.Null, fmt.Errorf("sqlmini: unknown column %q in %s", name, p.Rel.Name())
	}
	post := time == hyperql.TimePost || (time == hyperql.TimeDefault && p.DefaultPost)
	if post {
		return p.Post[i], nil
	}
	return p.Pre[i], nil
}
