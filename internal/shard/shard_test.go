package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestRowsPlanCoversContiguously(t *testing.T) {
	for _, c := range []struct{ n, target, wantShards int }{
		{0, 4096, 0},
		{1, 4096, 1},
		{4096, 4096, 1},
		{4097, 4096, 2},
		{5000, 4096, 2},
		{50000, 4096, 13},
		{10, 3, 4},
		{10, 0, 1}, // default target
	} {
		p := Rows(c.n, c.target)
		if got := p.Shards(); got != c.wantShards {
			t.Errorf("Rows(%d,%d).Shards() = %d, want %d", c.n, c.target, got, c.wantShards)
		}
		if p.Len() != c.n {
			t.Errorf("Rows(%d,%d).Len() = %d", c.n, c.target, p.Len())
		}
		at := 0
		for s := 0; s < p.Shards(); s++ {
			lo, hi := p.Bounds(s)
			if lo != at || hi < lo {
				t.Fatalf("Rows(%d,%d) shard %d = [%d,%d), want lo %d", c.n, c.target, s, lo, hi, at)
			}
			at = hi
		}
		if at != c.n {
			t.Errorf("Rows(%d,%d) covers %d rows, want %d", c.n, c.target, at, c.n)
		}
	}
}

func TestFixedBalancedAndEdgeCases(t *testing.T) {
	// Near-equal sizes: max-min <= 1.
	p := Fixed(10, 3)
	sizes := []int{}
	for s := 0; s < p.Shards(); s++ {
		lo, hi := p.Bounds(s)
		sizes = append(sizes, hi-lo)
	}
	if len(sizes) != 3 || sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("Fixed(10,3) sizes = %v", sizes)
	}
	for _, sz := range sizes {
		if sz < 3 || sz > 4 {
			t.Errorf("Fixed(10,3) imbalanced: %v", sizes)
		}
	}

	// More shards than rows: trailing empty shards are representable.
	p = Fixed(3, 7)
	if p.Shards() != 7 {
		t.Fatalf("Fixed(3,7).Shards() = %d", p.Shards())
	}
	nonEmpty, covered := 0, 0
	for s := 0; s < 7; s++ {
		lo, hi := p.Bounds(s)
		if hi > lo {
			nonEmpty++
			covered += hi - lo
		}
	}
	if nonEmpty != 3 || covered != 3 {
		t.Errorf("Fixed(3,7): %d non-empty shards covering %d rows", nonEmpty, covered)
	}

	// Degenerate inputs normalize instead of panicking.
	if p := Fixed(-1, 0); p.Shards() != 1 || p.Len() != 0 {
		t.Errorf("Fixed(-1,0) = %d shards over %d rows", p.Shards(), p.Len())
	}
}

func TestWorkersClamp(t *testing.T) {
	p := Fixed(100, 4)
	if w := p.Workers(8); w != 4 {
		t.Errorf("Workers(8) over 4 shards = %d, want 4", w)
	}
	if w := p.Workers(2); w != 2 {
		t.Errorf("Workers(2) = %d", w)
	}
	if w := p.Workers(0); w < 1 || w > 4 {
		t.Errorf("Workers(0) = %d, want within [1,4]", w)
	}
	if w := (Plan{}).Workers(0); w != 1 {
		t.Errorf("empty plan Workers(0) = %d, want 1", w)
	}
}

func TestRunVisitsEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		p := Fixed(103, 7)
		var mu sync.Mutex
		got := make(map[int][2]int)
		err := Run(context.Background(), p, workers, func(worker, s, lo, hi int) error {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[s]; dup {
				t.Errorf("workers=%d: shard %d ran twice", workers, s)
			}
			got[s] = [2]int{lo, hi}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 7 {
			t.Fatalf("workers=%d: ran %d shards, want 7", workers, len(got))
		}
		for s := 0; s < 7; s++ {
			lo, hi := p.Bounds(s)
			if got[s] != [2]int{lo, hi} {
				t.Errorf("workers=%d: shard %d got %v, want [%d,%d)", workers, s, got[s], lo, hi)
			}
		}
	}
}

func TestRunReturnsFirstErrorInShardOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Both shard 2 and shard 5 fail; the reported error must be shard 2's
	// regardless of completion order.
	for _, workers := range []int{1, 4} {
		err := Run(context.Background(), Fixed(60, 6), workers, func(_, s, _, _ int) error {
			switch s {
			case 2:
				return errA
			case 5:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

func TestRunObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := Run(ctx, Fixed(100, 10), 1, func(_, s, _, _ int) error {
		ran++
		if s == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= 10 {
		t.Errorf("all %d shards ran despite cancellation", ran)
	}
}

func TestRunEmptyPlan(t *testing.T) {
	if err := Run(context.Background(), Plan{}, 4, func(_, _, _, _ int) error {
		t.Fatal("fn called on empty plan")
		return nil
	}); err != nil {
		t.Fatalf("empty plan: %v", err)
	}
}
