// Package shard partitions row ranges into contiguous blocks and executes
// per-shard work across a bounded worker pool. It is the substrate of the
// engine's block-parallel evaluation path: a Plan fixes the partition (and
// with it the exact reduction order of every floating-point merge), while
// the worker count only decides how many shards run at once. Keeping those
// two concerns separate is what makes sharded evaluation deterministic:
// results depend on the plan — a pure function of the row count and the
// rows-per-shard granularity — never on GOMAXPROCS, the Shards option, or
// scheduling order.
//
// The package is a leaf (standard library only) so every layer of the
// compute stack — ml frame construction, estimator fitting, engine tuple
// loops — can share one partitioning vocabulary.
package shard

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultTargetRows is the canonical rows-per-shard granularity. It matches
// the engine's historical "don't parallelize under 4096 rows" threshold, so
// datasets at or below it keep the exact sequential reduction order they
// always had.
const DefaultTargetRows = 4096

// Plan is a contiguous partition of rows [0, n) into k shards. The zero
// value is an empty plan over zero rows.
type Plan struct {
	n      int
	bounds []int // len k+1; shard i covers [bounds[i], bounds[i+1])
}

// Rows returns the canonical plan for n rows at the given rows-per-shard
// target (<= 0 uses DefaultTargetRows): k = ceil(n/target) shards of
// near-equal size (difference at most one row). The plan depends only on
// (n, target) — never on the machine — so any evaluation reducing in plan
// order is reproducible everywhere.
func Rows(n, target int) Plan {
	if target <= 0 {
		target = DefaultTargetRows
	}
	if n <= 0 {
		return Plan{}
	}
	k := (n + target - 1) / target
	return Fixed(n, k)
}

// Fixed partitions n rows into exactly k shards of near-equal size. k < 1 is
// treated as 1; k > n produces k-n trailing empty shards (callers testing
// edge cases rely on empty shards being representable).
func Fixed(n, k int) Plan {
	if n < 0 {
		n = 0
	}
	if k < 1 {
		k = 1
	}
	p := Plan{n: n, bounds: make([]int, k+1)}
	// Spread the remainder over the leading shards: sizes differ by at most
	// one, and the layout is a pure function of (n, k).
	q, r := n/k, n%k
	at := 0
	for i := 0; i < k; i++ {
		p.bounds[i] = at
		at += q
		if i < r {
			at++
		}
	}
	p.bounds[k] = n
	return p
}

// Strided partitions n rows at fixed multiples of target (<= 0 uses
// DefaultTargetRows): shard i covers [i*target, min((i+1)*target, n)), so
// only the last shard can be partial. Unlike Rows, whose near-equal layout
// re-balances every boundary when n grows, a strided plan is prefix-stable:
// appending rows never moves an existing boundary, it only extends the final
// partial shard and adds new shards after it. That is the property the
// incremental (MVCC append) path needs — digests fitted over sealed shards
// stay valid forever and only the tail is ever re-fitted.
func Strided(n, target int) Plan {
	if target <= 0 {
		target = DefaultTargetRows
	}
	if n <= 0 {
		return Plan{}
	}
	k := (n + target - 1) / target
	p := Plan{n: n, bounds: make([]int, k+1)}
	for i := 0; i < k; i++ {
		p.bounds[i] = i * target
	}
	p.bounds[k] = n
	return p
}

// Shards returns the number of shards in the plan.
func (p Plan) Shards() int {
	if p.bounds == nil {
		return 0
	}
	return len(p.bounds) - 1
}

// Len returns the total number of rows covered.
func (p Plan) Len() int { return p.n }

// Bounds returns the half-open row range [lo, hi) of shard i.
func (p Plan) Bounds(i int) (lo, hi int) { return p.bounds[i], p.bounds[i+1] }

// Workers resolves a requested worker count against a plan: requested <= 0
// means GOMAXPROCS, and the result is clamped to [1, shards] (an empty plan
// resolves to 1 so callers can divide by it).
func (p Plan) Workers(requested int) int {
	k := p.Shards()
	if k == 0 {
		return 1
	}
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > k {
		w = k
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(worker, shard, lo, hi) once per shard of the plan across
// at most workers goroutines (resolved via Plan.Workers). worker is a dense
// id in [0, workers) identifying the executing goroutine, so callers can
// reuse per-worker scratch across the shards that goroutine happens to pick
// up; which shards land on which worker is scheduling-dependent and must not
// influence results.
//
// ctx is checked before each shard is started: once cancelled, no further
// shard begins (fn itself should also observe ctx inside long loops). The
// returned error is the first error in shard order — not completion order —
// so failures are as deterministic as results; a ctx error is reported when
// no shard produced one first.
func Run(ctx context.Context, p Plan, workers int, fn func(worker, shard, lo, hi int) error) error {
	k := p.Shards()
	if k == 0 {
		return ctx.Err()
	}
	w := p.Workers(workers)
	errs := make([]error, k)
	if w == 1 {
		for s := 0; s < k; s++ {
			if err := ctx.Err(); err != nil {
				return firstError(errs, err)
			}
			lo, hi := p.Bounds(s)
			if errs[s] = fn(0, s, lo, hi); errs[s] != nil {
				return firstError(errs, nil)
			}
		}
		return firstError(errs, ctx.Err())
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= k {
					return
				}
				// Stop claiming shards once any shard has failed or the
				// context died — matching the serial path, which returns at
				// the first error instead of finishing the plan. Shards
				// already in flight run to completion; the error reported is
				// still the first in shard order among those that ran.
				if failed.Load() || ctx.Err() != nil {
					return
				}
				lo, hi := p.Bounds(s)
				if errs[s] = fn(worker, s, lo, hi); errs[s] != nil {
					failed.Store(true)
				}
			}
		}(wi)
	}
	wg.Wait()
	return firstError(errs, ctx.Err())
}

// firstError returns the first non-nil error in shard order, falling back to
// fallback.
func firstError(errs []error, fallback error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return fallback
}
