package plan

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/relation"
)

// Cache is the bounded fingerprint-keyed plan cache: compiled what-if plans
// keyed by shape fingerprint over the schema signature, plus the supporting
// per-view artifacts they execute against (column stats, interned columns,
// howto attribute ranks). One LRU list orders every artifact kind together;
// the bound caps total artifacts, so a long-lived session cannot grow the
// planner's memory without limit.
//
// Cache identity is fingerprint + schema signature: hyperql.Fingerprint
// hashes the signature into the key's domain, so a structurally identical
// query against a re-uploaded database with a different schema can never be
// served a stale pushdown program. Hits, misses, and evictions count plan
// lookups only (supporting artifacts are internal); Compiles counts plan
// compilations.
//
// All methods are safe for concurrent use. Like engine.Cache, a Cache must
// only be shared across queries against the same database.
type Cache struct {
	mu        sync.Mutex
	entries   map[string]*entry
	head      *entry // most recently used
	tail      *entry // least recently used
	max       int    // maximum entries; 0 = unbounded
	onCompile func(ms float64)

	hits, misses, evictions, compiles uint64
}

type entry struct {
	key        string
	val        any
	prev, next *entry
}

// Artifact key prefixes.
const (
	kindPlan  = "p\x00"
	kindStats = "s\x00"
	kindCols  = "c\x00"
	kindRank  = "r\x00"
)

// NewCache returns an empty plan cache holding at most max artifacts;
// max <= 0 means unbounded.
func NewCache(max int) *Cache {
	if max < 0 {
		max = 0
	}
	return &Cache{entries: make(map[string]*entry), max: max}
}

// SetCompileObserver installs a callback invoked with each plan compilation
// latency in milliseconds (the serving layer feeds its histogram through
// it). Pass nil to remove. Observers must be safe for concurrent use.
func (c *Cache) SetCompileObserver(fn func(ms float64)) {
	c.mu.Lock()
	c.onCompile = fn
	c.mu.Unlock()
}

// Stats is a point-in-time snapshot of plan-cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Compiles counts plan compilations (misses that built a plan).
	Compiles uint64 `json:"compiles"`
	Entries  int    `json:"entries"`
	// MaxEntries is the configured bound (0 = unbounded).
	MaxEntries int `json:"max_entries"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Compiles:   c.compiles,
		Entries:    len(c.entries),
		MaxEntries: c.max,
	}
}

// Len returns the current number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get looks a key up, promoting it; counted lookups maintain the hit/miss
// counters (plan lookups), uncounted ones (supporting artifacts) do not.
func (c *Cache) get(key string, counted bool) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		if counted {
			c.misses++
		}
		return nil, false
	}
	if counted {
		c.hits++
	}
	c.moveToFront(e)
	return e.val, true
}

func (c *Cache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &entry{key: key, val: val}
	c.entries[key] = e
	c.pushFront(e)
	for c.max > 0 && len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		if strings.HasPrefix(lru.key, kindPlan) {
			c.evictions++
		}
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// dataKey is the cache-identity string of a database: the schema signature,
// plus — for MVCC-versioned instances — the snapshot version. Version 0 (the
// bare-library default) keeps the historical identity so plan goldens and
// unversioned callers are untouched; any non-zero version makes every
// fingerprint and supporting-artifact key version-specific, so a query
// pinned "as of v" keeps hitting v's artifacts after appends while the new
// head can never be served stale stats.
func dataKey(db *relation.Database) string {
	sig := Signature(db)
	if v := db.Version(); v > 0 {
		return sig + "\x00@v" + strconv.FormatInt(v, 10)
	}
	return sig
}

// Signature canonically describes a database schema: every relation in
// database order with its column names and kinds. It is the second half of
// plan-cache identity (the first being the query shape fingerprint).
func Signature(db *relation.Database) string {
	var b strings.Builder
	for _, name := range db.Names() {
		rel := db.Relation(name)
		b.WriteString(name)
		b.WriteByte('(')
		for i, col := range rel.Schema().Columns() {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(col.Name)
			b.WriteByte(':')
			b.WriteString(col.Kind.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Fingerprint returns the 16-hex shape fingerprint keying q's plan in a
// cache over db — hyperql.Fingerprint with the schema signature (and, for
// versioned databases, the snapshot version) folded into the hash domain.
func Fingerprint(db *relation.Database, q hyperql.Query) string {
	return hyperql.Fingerprint("plan\x00"+dataKey(db), q)
}

// WhatIf returns the compiled plan for q against the resolved relevant view
// rel (compiling and caching on miss) and whether it was a cache hit.
// viewKey is the engine's view cache key; the plan's supporting artifacts
// (stats, interned columns) are stored under it.
func (c *Cache) WhatIf(db *relation.Database, viewKey string, q *hyperql.WhatIf, rel *relation.Relation) (*WhatIfPlan, bool) {
	sig := dataKey(db)
	fp := hyperql.Fingerprint("plan\x00"+sig, q)
	if v, ok := c.get(kindPlan+fp, true); ok {
		return v.(*WhatIfPlan), true
	}
	start := time.Now()
	p := compileWhatIf(q, fp, rel, c.viewStats(sig, viewKey, rel))
	p.colsKey = kindCols + sig + "\x00" + viewKey
	c.put(kindPlan+fp, p)
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	c.mu.Lock()
	c.compiles++
	obs := c.onCompile
	c.mu.Unlock()
	if obs != nil {
		obs(ms)
	}
	return p, false
}

// Apply executes p's WHEN program over rel into inS (len rel.Len()),
// re-binding literals from q. It reports the number of conjuncts run as
// columnar scans and whether the program applied; ok=false (a defensive
// bind mismatch) leaves inS unspecified and the caller must fall back to
// the row-at-a-time loop.
func (c *Cache) Apply(p *WhatIfPlan, q *hyperql.WhatIf, rel *relation.Relation, inS []bool) (pushed int, ok bool) {
	if p == nil || p.Fallback || len(inS) != rel.Len() {
		return 0, false
	}
	vc := c.columns(p.colsKey)
	pushed, err := p.apply(q.When, rel, vc, inS)
	if err != nil {
		return 0, false
	}
	return pushed, true
}

// viewStats memoizes the one-pass per-column stats of a view.
func (c *Cache) viewStats(sig, viewKey string, rel *relation.Relation) []ml.ColumnStats {
	key := kindStats + sig + "\x00" + viewKey
	if v, ok := c.get(key, false); ok {
		return v.([]ml.ColumnStats)
	}
	st := ml.CollectStats(rel)
	c.put(key, st)
	return st
}

// columns returns the interned-column store for a view, creating it on
// first use.
func (c *Cache) columns(key string) *viewColumns {
	if v, ok := c.get(key, false); ok {
		return v.(*viewColumns)
	}
	vc := &viewColumns{}
	c.put(key, vc)
	return vc
}

// AttrRank orders HOWTOUPDATE attributes for candidate scoring by ascending
// base-relation cardinality (most selective attribute first — its frequency
// estimators are cheapest and its candidates prune fastest), original order
// breaking ties. It returns nil — meaning "keep the query order" — when the
// USE clause is a sub-select (no base relation to collect stats from) or an
// attribute is missing. The rank is memoized per (schema, relation).
func (c *Cache) AttrRank(db *relation.Database, use *hyperql.UseClause, attrs []string) map[string]int {
	if use == nil || use.Table == "" {
		return nil
	}
	rel := db.Relation(use.Table)
	if rel == nil {
		return nil
	}
	key := kindRank + dataKey(db) + "\x00" + use.Table
	var stats []ml.ColumnStats
	if v, ok := c.get(key, false); ok {
		stats = v.([]ml.ColumnStats)
	} else {
		stats = ml.CollectStats(rel)
		c.put(key, stats)
	}
	card := make(map[string]int, len(stats))
	for _, st := range stats {
		card[st.Name] = st.Card
	}
	order := make([]string, len(attrs))
	copy(order, attrs)
	for _, a := range attrs {
		if _, ok := card[a]; !ok {
			return nil
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return card[order[i]] < card[order[j]]
	})
	rank := make(map[string]int, len(order))
	for i, a := range order {
		rank[a] = i
	}
	return rank
}

// SeedAttrRank pre-populates the memoized base-relation stats AttrRank reads,
// under db's current (version-folded) identity. The MVCC append path calls it
// with incrementally merged digest stats so that how-to planning against a
// freshly published snapshot never rescans the base relation.
func (c *Cache) SeedAttrRank(db *relation.Database, table string, stats []ml.ColumnStats) {
	if db.Relation(table) == nil {
		return
	}
	c.put(kindRank+dataKey(db)+"\x00"+table, stats)
}
