package plan

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
	"hyper/internal/sqlmini"
)

// testDB builds a small database whose one relation exercises every planner
// guard: a clean string column, clean numerics, a NULL-bearing column, a
// NaN-bearing column, magnitudes past the key-exactness threshold, and a
// mixed-kind column that must never be range-scanned.
func testDB(t testing.TB) (*relation.Database, *relation.Relation) {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "ID", Key: true},
		relation.Column{Name: "Cat"},
		relation.Column{Name: "Price", Mutable: true},
		relation.Column{Name: "Qty", Mutable: true},
		relation.Column{Name: "Wild", Mutable: true},
		relation.Column{Name: "Big", Mutable: true},
		relation.Column{Name: "Mix", Mutable: true},
	)
	rel := relation.NewRelation("Items", schema)
	type row struct {
		cat  string
		pr   float64
		qty  relation.Value
		wild float64
		big  float64
		mix  relation.Value
	}
	rows := []row{
		{"a", 10, relation.Int(1), 1, 1e16, relation.Int(1)},
		{"b", 20, relation.Int(2), math.NaN(), 2e16, relation.String("x")},
		{"a", 30, relation.Null, 2, 1e16, relation.Int(2)},
		{"c", 40, relation.Int(3), 3, 3e16, relation.String("y")},
		{"a", 50, relation.Int(1), 4, 1e16, relation.Int(3)},
		{"b", 60, relation.Int(2), 5, 2e16, relation.String("z")},
		{"a", 70, relation.Int(1), 6, 1e16, relation.Int(1)},
		{"d", 80, relation.Int(4), 7, 4e16, relation.String("x")},
	}
	for i, r := range rows {
		rel.MustInsert(relation.Int(int64(i+1)), relation.String(r.cat),
			relation.Float(r.pr), r.qty, relation.Float(r.wild),
			relation.Float(r.big), r.mix)
	}
	db := relation.NewDatabase()
	db.MustAdd(rel)
	return db, rel
}

// parseWhen wraps a WHEN clause in a minimal what-if and parses it.
func parseWhen(t testing.TB, when string) *hyperql.WhatIf {
	t.Helper()
	src := "USE Items "
	if when != "" {
		src += "WHEN " + when + " "
	}
	src += "UPDATE(Price) = 1 OUTPUT COUNT(Price = 1)"
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// rowLoopMask computes the reference update-set mask the way the engine's
// unplanned path does: sqlmini.EvalBool per row over the whole WHEN tree.
func rowLoopMask(t testing.TB, when hyperql.Expr, rel *relation.Relation) []bool {
	t.Helper()
	mask := make([]bool, rel.Len())
	env := sqlmini.RowEnv{Rel: rel}
	for i := range mask {
		if when == nil {
			mask[i] = true
			continue
		}
		env.Row = rel.Row(i)
		ok, err := sqlmini.EvalBool(when, env)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		mask[i] = ok
	}
	return mask
}

func TestCompileClassification(t *testing.T) {
	db, rel := testDB(t)
	c := NewCache(0)
	q := parseWhen(t, "Cat = 'a' AND Price > 25 AND Qty IN (1, 2) AND Mix < 3 AND ID + 1 = 2 AND Wild >= 1")
	p, hit := c.WhatIf(db, "v", q, rel)
	if hit {
		t.Fatal("first compile reported a cache hit")
	}
	if p.Fallback {
		t.Fatalf("unexpected fallback: %s", p.FallbackReason)
	}
	byPos := make(map[int]Conjunct)
	for _, cj := range p.Conjuncts {
		byPos[cj.Pos] = cj
	}
	want := map[int]Op{
		0: OpEq,       // Cat = 'a'
		1: OpGt,       // Price > 25
		2: OpIn,       // Qty IN (1, 2)
		3: OpResidual, // Mix < 3: mixed-kind column, ordering must stay exact
		4: OpResidual, // ID + 1 = 2: arithmetic left side
		5: OpResidual, // Wild >= 1: NaN in column breaks float ordering
	}
	for pos, op := range want {
		if got := byPos[pos].Op; got != op {
			t.Errorf("conjunct %d: op = %s, want %s", pos, got, op)
		}
	}
	if got, wantN := p.Pushed(), 3; got != wantN {
		t.Errorf("Pushed() = %d, want %d", got, wantN)
	}
}

func TestCostOrderingAndExplainDeterminism(t *testing.T) {
	db, rel := testDB(t)
	// Written range-first: equality on Cat (sel 1/4) must still run before
	// the range on Price (sel 1/3).
	q := parseWhen(t, "Price > 5 AND Cat = 'a'")
	p, _ := NewCache(0).WhatIf(db, "v", q, rel)
	if p.Conjuncts[0].Col != "Cat" || p.Conjuncts[1].Col != "Price" {
		t.Fatalf("cost order = [%s %s], want [Cat Price]\n%s",
			p.Conjuncts[0].Col, p.Conjuncts[1].Col, p.Explain())
	}
	p2, _ := NewCache(0).WhatIf(db, "v", q, rel)
	if p.Explain() != p2.Explain() {
		t.Fatalf("explain not deterministic:\n%s\nvs\n%s", p.Explain(), p2.Explain())
	}
	if strings.Contains(p.Explain(), "'a'") || strings.Contains(p.Explain(), " 5") {
		t.Fatalf("explain leaks literals:\n%s", p.Explain())
	}
}

func TestFallbackOnUnresolvableWhen(t *testing.T) {
	db, rel := testDB(t)
	c := NewCache(0)
	q := parseWhen(t, "Nope = 1 AND Cat = 'a'")
	p, _ := c.WhatIf(db, "v", q, rel)
	if !p.Fallback {
		t.Fatal("WHEN over an unknown column did not fall back")
	}
	if !strings.Contains(p.FallbackReason, "Nope") {
		t.Errorf("fallback reason %q does not name the column", p.FallbackReason)
	}
	inS := make([]bool, rel.Len())
	if _, ok := c.Apply(p, q, rel, inS); ok {
		t.Fatal("Apply accepted a fallback plan")
	}
}

// TestApplyMatchesRowLoop is the bit-identity property at the mask level:
// for every WHEN shape (pushed, residual, guard-demoted, absent values,
// NULLs, NaN columns, oversized magnitudes), Apply must produce exactly the
// row-at-a-time EvalBool mask.
func TestApplyMatchesRowLoop(t *testing.T) {
	db, rel := testDB(t)
	cases := []struct {
		when      string
		minPushed int
	}{
		{"", 0},
		{"Cat = 'a'", 1},
		{"Cat = 'zz'", 1}, // absent value: pushed scan, empty set
		{"Cat != 'a'", 1},
		{"Qty = 1", 1},  // NULL row must stay excluded
		{"Qty != 1", 1}, // ...for != too (NULL != 1 is not true)
		{"Price <= 40", 1},
		{"55 < Price", 1}, // flipped literal side
		{"Cat IN ('a', 'd')", 1},
		{"Cat NOT IN ('a')", 1},
		{"Qty IN (1, 3)", 1},
		{"Wild > 2", 0},                // NaN column: compile-time demotion
		{"Big = 20000000000000000", 0}, // literal >= 1e15: bind-time demotion
		{"Mix < 3", 0},                 // mixed kinds: ordering stays residual
		{"NOT (Cat = 'a')", 0},         // unary NOT is residual
		{"ID + 1 = 3", 0},              // arithmetic is residual
		{"Cat = 'a' AND Price > 25 AND Qty IN (1, 2)", 3},
		{"Price > 25 AND Wild > 2 AND Cat != 'b'", 2},
		{"Cat IN ('a', 'b') AND ID + 1 = 3 AND Qty != 2", 2},
	}
	for _, tc := range cases {
		t.Run(tc.when, func(t *testing.T) {
			c := NewCache(0)
			q := parseWhen(t, tc.when)
			p, _ := c.WhatIf(db, "v", q, rel)
			if p.Fallback {
				t.Fatalf("unexpected fallback: %s", p.FallbackReason)
			}
			inS := make([]bool, rel.Len())
			pushed, ok := c.Apply(p, q, rel, inS)
			if !ok {
				t.Fatal("Apply rejected a non-fallback plan")
			}
			if pushed < tc.minPushed {
				t.Errorf("pushed = %d, want >= %d", pushed, tc.minPushed)
			}
			want := rowLoopMask(t, q.When, rel)
			for i := range want {
				if inS[i] != want[i] {
					t.Fatalf("row %d: planned=%v rowloop=%v\nmask   %v\nwant   %v\n%s",
						i, inS[i], want[i], inS, want, p.Explain())
				}
			}
		})
	}
}

func TestCacheHitReusesPlanAndRebindsLiterals(t *testing.T) {
	db, rel := testDB(t)
	c := NewCache(0)
	q1 := parseWhen(t, "Cat = 'a'")
	q2 := parseWhen(t, "Cat = 'b'") // same shape, different literal
	p1, hit := c.WhatIf(db, "v", q1, rel)
	if hit {
		t.Fatal("cold compile reported a hit")
	}
	p2, hit := c.WhatIf(db, "v", q2, rel)
	if !hit {
		t.Fatal("structurally identical query missed the cache")
	}
	if p1 != p2 {
		t.Fatal("hit returned a different plan object")
	}
	for q, wantCat := range map[*hyperql.WhatIf]string{q1: "a", q2: "b"} {
		inS := make([]bool, rel.Len())
		if _, ok := c.Apply(p2, q, rel, inS); !ok {
			t.Fatal("Apply failed")
		}
		want := rowLoopMask(t, q.When, rel)
		for i := range want {
			if inS[i] != want[i] {
				t.Fatalf("literal %q not re-bound: row %d planned=%v rowloop=%v", wantCat, i, inS[i], want[i])
			}
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Compiles != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 compile", st)
	}
}

func TestLRUEviction(t *testing.T) {
	db, rel := testDB(t)
	c := NewCache(3) // room for the shared stats artifact + two plans
	shapes := []string{"Cat = 'a'", "Price > 5", "Qty IN (1)"}
	qs := make([]*hyperql.WhatIf, len(shapes))
	for i, s := range shapes {
		qs[i] = parseWhen(t, s)
		if _, hit := c.WhatIf(db, "v", qs[i], rel); hit {
			t.Fatalf("compile %d reported a hit", i)
		}
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Errorf("entries = %d, want the configured bound 3", st.Entries)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (the LRU plan)", st.Evictions)
	}
	if _, hit := c.WhatIf(db, "v", qs[2], rel); !hit {
		t.Error("most recent plan was evicted")
	}
	if _, hit := c.WhatIf(db, "v", qs[0], rel); hit {
		t.Error("evicted LRU plan still reported a hit")
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Errorf("evictions after recompile = %d, want 2", st.Evictions)
	}
}

// TestSchemaSignatureInvalidation pins the cache-identity contract: the same
// query text against a schema with one changed column must key to a
// different fingerprint, so a re-uploaded database can never be served a
// stale pushdown program.
func TestSchemaSignatureInvalidation(t *testing.T) {
	db, rel := testDB(t)
	schema2 := relation.MustSchema(
		relation.Column{Name: "ID", Key: true},
		relation.Column{Name: "Cat", Kind: relation.KindString}, // declared kind changes the signature
	)
	rel2 := relation.NewRelation("Items", schema2)
	rel2.MustInsert(relation.Int(1), relation.String("a"))
	db2 := relation.NewDatabase()
	db2.MustAdd(rel2)

	if Signature(db) == Signature(db2) {
		t.Fatal("different schemas produced the same signature")
	}
	q := parseWhen(t, "Cat = 'a'")
	if Fingerprint(db, q) == Fingerprint(db2, q) {
		t.Fatal("same query text fingerprints identically across schemas")
	}
	c := NewCache(0)
	if _, hit := c.WhatIf(db, "v", q, rel); hit {
		t.Fatal("cold compile hit")
	}
	if _, hit := c.WhatIf(db, "v", q, rel); !hit {
		t.Fatal("repeat against the same schema missed")
	}
	if _, hit := c.WhatIf(db2, "v2", q, rel2); hit {
		t.Fatal("changed schema was served the cached plan")
	}
}

func TestAttrRank(t *testing.T) {
	db, _ := testDB(t)
	c := NewCache(0)
	use := &hyperql.UseClause{Table: "Items"}
	// Cards: Cat=4, Qty=4 (NULL excluded), Price=8. Ascending cardinality,
	// original order breaking the Cat/Qty tie.
	rank := c.AttrRank(db, use, []string{"Price", "Cat", "Qty"})
	if rank == nil {
		t.Fatal("AttrRank returned nil for a base relation")
	}
	if rank["Cat"] != 0 || rank["Qty"] != 1 || rank["Price"] != 2 {
		t.Errorf("rank = %v, want Cat=0 Qty=1 Price=2", rank)
	}
	if r := c.AttrRank(db, &hyperql.UseClause{}, []string{"Cat"}); r != nil {
		t.Errorf("sub-select USE ranked to %v, want nil (keep query order)", r)
	}
	if r := c.AttrRank(db, use, []string{"Cat", "Nope"}); r != nil {
		t.Errorf("missing attribute ranked to %v, want nil", r)
	}
}

// TestConcurrentPlanners hammers one shared cache from many goroutines —
// compiles, hits, evictions, and Apply all interleave — and checks every
// produced mask against the row loop. Run under -race in CI's test job.
func TestConcurrentPlanners(t *testing.T) {
	db, rel := testDB(t)
	c := NewCache(4) // small bound so eviction races with lookup
	shapes := []string{
		"Cat = 'a'",
		"Price > 25 AND Cat != 'b'",
		"Qty IN (1, 2)",
		"Wild > 2 AND Cat = 'a'",
		"Cat NOT IN ('b') AND ID + 1 = 3",
		"Price <= 40",
	}
	qs := make([]*hyperql.WhatIf, len(shapes))
	wants := make([][]bool, len(shapes))
	for i, s := range shapes {
		qs[i] = parseWhen(t, s)
		wants[i] = rowLoopMask(t, qs[i].When, rel)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				i := (g + it) % len(qs)
				p, _ := c.WhatIf(db, "v", qs[i], rel)
				inS := make([]bool, rel.Len())
				if _, ok := c.Apply(p, qs[i], rel, inS); !ok {
					errs <- fmt.Errorf("goroutine %d iter %d: Apply failed", g, it)
					return
				}
				for r := range inS {
					if inS[r] != wants[i][r] {
						errs <- fmt.Errorf("goroutine %d iter %d shape %q row %d: mask diverged", g, it, shapes[i], r)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Entries > 4 {
		t.Errorf("entries = %d, exceeds bound 4", st.Entries)
	}
	if st.Compiles == 0 || st.Hits == 0 {
		t.Errorf("stats = %+v, want both compiles and hits under contention", st)
	}
}
