// Package plan is the cost-based planning layer between the hyperql AST and
// the engine. It compiles the WHEN clause of a what-if query into a
// pushdown program — a cost-ordered sequence of conjunct filters where
// equality and IN predicates scan interned per-column codes and range
// predicates scan numeric columns directly — and caches the compiled,
// literal-free plan in a bounded LRU keyed by the query's shape fingerprint
// plus the database schema signature. Literals are re-bound from the live
// query on every execution, so a cached plan never pins constants.
//
// The planner's contract is bit-identity: a planned evaluation must produce
// exactly the update set a row-at-a-time sqlmini.EvalBool loop would. Two
// mechanisms enforce it. First, a plan only reorders or pushes conjuncts
// when the whole WHEN tree is provably error-free (every column resolves,
// only evaluable node types appear); otherwise the plan marks itself as a
// fallback and the engine keeps the original loop, preserving error
// behaviour exactly. Second, every pushed predicate carries exactness
// guards: interned-code equality matches relation.Value.Compare only when
// neither side is NaN and numeric magnitudes stay below 1e15 (where
// canonical keys merge ints with whole floats), and range scans require an
// all-numeric column. A conjunct whose bound literal violates a guard
// demotes to residual evaluation of its own AST — same rows, same answer.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/relation"
)

// maxExactAbs bounds the numeric magnitude for which relation.Value.Key
// equality coincides with Value.Compare equality (Key formats whole floats
// below 1e15 as ints) and for which float64 ordering of int64 values is
// exact. At or above it, equality and range conjuncts stay residual.
const maxExactAbs = 1e15

// Op classifies one WHEN conjunct of a pushdown program.
type Op uint8

// Conjunct operators. OpResidual evaluates the conjunct's own AST on the
// rows surviving earlier filters; the rest are columnar scans.
const (
	OpResidual Op = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn
)

// String names the operator for EXPLAIN output.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "eq"
	case OpNe:
		return "ne"
	case OpLt:
		return "lt"
	case OpLe:
		return "le"
	case OpGt:
		return "gt"
	case OpGe:
		return "ge"
	case OpIn:
		return "in"
	default:
		return "residual"
	}
}

// Conjunct is one literal-free compiled WHEN conjunct. Pos indexes the
// conjunct in the flattened AND of the WHEN clause; execution re-reads the
// literal values from the live query's AST at that position.
type Conjunct struct {
	// Pos is the conjunct's position in AST (splitAnd) order.
	Pos int
	// Op is the compiled operator.
	Op Op
	// Col is the filtered column (empty for residual conjuncts).
	Col string
	// Flip records that the literal sat on the left of the comparison; Op is
	// already mirrored, Flip only tells binding which side to read.
	Flip bool
	// Neg marks a NOT IN list.
	Neg bool
	// Sel is the estimated selectivity in [0,1] (lower = more selective).
	Sel float64

	colIdx int  // schema index of Col in the view
	colNaN bool // column contains NaN: numeric-literal equality is unsafe
	shape  string
}

// WhatIfPlan is the compiled, literal-free plan of one what-if query shape
// against one view. Plans are immutable after compilation and safe to share
// across concurrent executions.
type WhatIfPlan struct {
	// Fingerprint is the 16-hex shape fingerprint keying the plan.
	Fingerprint string
	// Conjuncts lists the WHEN conjuncts in execution order: most selective
	// first, original position breaking ties, residual conjuncts by their
	// estimated half-selectivity like any other.
	Conjuncts []Conjunct
	// Fallback marks a WHEN clause that could not be proven error-free (an
	// unresolvable column, an unsupported node); the engine must keep the
	// row-at-a-time loop so error behaviour is preserved exactly.
	Fallback bool
	// FallbackReason says why (empty unless Fallback).
	FallbackReason string
	// ViewRows is the view size the plan's stats were collected over.
	ViewRows int

	colsKey string // interned-column store key (set by the cache)
	explain string
}

// Pushed counts the conjuncts compiled to columnar scans (execution may
// demote individual conjuncts whose bound literal violates a guard).
func (p *WhatIfPlan) Pushed() int {
	n := 0
	for _, c := range p.Conjuncts {
		if c.Op != OpResidual {
			n++
		}
	}
	return n
}

// Explain renders the deterministic, literal-free plan description used by
// EXPLAIN and the plan-stability goldens. It contains no timings and no
// literal values, so the same shape against the same data always renders
// identically.
func (p *WhatIfPlan) Explain() string { return p.explain }

// SplitAnd flattens a conjunction into its conjuncts in left-to-right
// order, matching sqlmini's short-circuit evaluation order.
func SplitAnd(e hyperql.Expr) []hyperql.Expr {
	if b, ok := e.(*hyperql.Binary); ok && b.Op == "AND" {
		return append(SplitAnd(b.L), SplitAnd(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []hyperql.Expr{e}
}

// validate proves e error-free under sqlmini.EvalBool with a RowEnv over
// rel: every node type is evaluable and every column reference resolves.
// Evaluation errors are structural (row-independent), so a validated tree
// can be evaluated in any order, on any subset of rows, without changing
// whether — or with what — the original left-to-right row loop would fail.
func validate(e hyperql.Expr, rel *relation.Relation) error {
	switch x := e.(type) {
	case *hyperql.Literal:
		return nil
	case *hyperql.ColRef:
		if x.Table != "" && x.Table != rel.Name() {
			return fmt.Errorf("unknown table %q", x.Table)
		}
		if !rel.Schema().Has(x.Name) {
			return fmt.Errorf("unknown column %q", x.Name)
		}
		return nil
	case *hyperql.Unary:
		if x.Op != "NOT" && x.Op != "-" {
			return fmt.Errorf("unary operator %q", x.Op)
		}
		return validate(x.X, rel)
	case *hyperql.Binary:
		switch x.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/":
		default:
			return fmt.Errorf("operator %q", x.Op)
		}
		if err := validate(x.L, rel); err != nil {
			return err
		}
		return validate(x.R, rel)
	case *hyperql.InList:
		if err := validate(x.X, rel); err != nil {
			return err
		}
		for _, v := range x.Vals {
			if err := validate(v, rel); err != nil {
				return err
			}
		}
		return nil
	case *hyperql.L1Dist:
		if !rel.Schema().Has(x.Attr) {
			return fmt.Errorf("unknown column %q", x.Attr)
		}
		return nil
	default:
		return fmt.Errorf("unsupported expression %T", e)
	}
}

// compileWhatIf builds the pushdown program of q's WHEN clause against the
// resolved view rel using per-column stats for the cost model.
func compileWhatIf(q *hyperql.WhatIf, fp string, rel *relation.Relation, stats []ml.ColumnStats) *WhatIfPlan {
	p := &WhatIfPlan{Fingerprint: fp, ViewRows: rel.Len()}
	if q.When == nil {
		p.explain = renderExplain(p, q)
		return p
	}
	if err := validate(q.When, rel); err != nil {
		p.Fallback = true
		p.FallbackReason = err.Error()
		p.explain = renderExplain(p, q)
		return p
	}
	byName := make(map[string]ml.ColumnStats, len(stats))
	for _, st := range stats {
		byName[st.Name] = st
	}
	conjs := SplitAnd(q.When)
	p.Conjuncts = make([]Conjunct, len(conjs))
	for i, e := range conjs {
		p.Conjuncts[i] = classify(e, i, rel, byName)
	}
	// Cost-based ordering: most selective first, stable on original
	// position. Residual conjuncts take part like any other — validation
	// already proved order cannot change the computed set.
	sort.SliceStable(p.Conjuncts, func(a, b int) bool {
		return p.Conjuncts[a].Sel < p.Conjuncts[b].Sel
	})
	p.explain = renderExplain(p, q)
	return p
}

// classify compiles one conjunct: a comparison or IN between a bare column
// reference and literals becomes a columnar filter, anything else stays
// residual. Guards that depend only on column stats apply here; guards that
// depend on the literal value apply at bind time.
func classify(e hyperql.Expr, pos int, rel *relation.Relation, stats map[string]ml.ColumnStats) Conjunct {
	c := Conjunct{Pos: pos, Op: OpResidual, Sel: 0.5, shape: maskLiterals(e)}
	switch x := e.(type) {
	case *hyperql.Binary:
		var col *hyperql.ColRef
		var flip bool
		if cr, ok := x.L.(*hyperql.ColRef); ok {
			if _, lit := x.R.(*hyperql.Literal); lit {
				col = cr
			}
		}
		if col == nil {
			if cr, ok := x.R.(*hyperql.ColRef); ok {
				if _, lit := x.L.(*hyperql.Literal); lit {
					col, flip = cr, true
				}
			}
		}
		if col == nil {
			return c
		}
		st, ok := stats[col.Name]
		if !ok {
			return c
		}
		op, isRange := compileOp(x.Op, flip)
		if op == OpResidual {
			return c
		}
		if isRange && (!st.Numeric || st.HasNaN || st.MaxAbs >= maxExactAbs) {
			// Ordering a column with non-numeric values through float keys
			// diverges from Value.Compare's kind ranking; keep the exact path.
			return c
		}
		c.Op, c.Col, c.Flip = op, col.Name, flip
		c.colIdx = rel.Schema().MustIndex(col.Name)
		c.colNaN = st.HasNaN
		c.Sel = selectivity(op, st, 1)
	case *hyperql.InList:
		col, ok := x.X.(*hyperql.ColRef)
		if !ok {
			return c
		}
		for _, v := range x.Vals {
			if _, lit := v.(*hyperql.Literal); !lit {
				return c
			}
		}
		st, ok := stats[col.Name]
		if !ok {
			return c
		}
		c.Op, c.Col, c.Neg = OpIn, col.Name, x.Neg
		c.colIdx = rel.Schema().MustIndex(col.Name)
		c.colNaN = st.HasNaN
		c.Sel = selectivity(OpIn, st, len(x.Vals))
		if x.Neg {
			c.Sel = 1 - c.Sel
		}
	}
	return c
}

// compileOp maps a comparison operator (mirrored when the literal was on
// the left) to a pushdown op; isRange marks order comparisons, which need
// the numeric-column guard.
func compileOp(op string, flip bool) (Op, bool) {
	if flip {
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	switch op {
	case "=":
		return OpEq, false
	case "!=":
		return OpNe, false
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	default:
		return OpResidual, false
	}
}

// selectivity estimates the fraction of rows a conjunct keeps, from column
// stats alone (plans are shape-keyed, so literal values are unavailable):
// equality keeps ~1/card of the non-null rows, IN scales by list arity,
// ranges use the classic one-third heuristic.
func selectivity(op Op, st ml.ColumnStats, arity int) float64 {
	card := float64(st.Card)
	if card < 1 {
		card = 1
	}
	nonNull := 1 - st.NullFrac
	switch op {
	case OpEq:
		return nonNull / card
	case OpNe:
		return nonNull * (1 - 1/card)
	case OpIn:
		s := float64(arity) / card
		if s > 1 {
			s = 1
		}
		return nonNull * s
	case OpLt, OpLe, OpGt, OpGe:
		return nonNull / 3
	default:
		return 0.5
	}
}

// maskLiterals renders an expression with every literal replaced by '?',
// so EXPLAIN output of a shape-keyed plan never leaks the constants of
// whichever query happened to compile it.
func maskLiterals(e hyperql.Expr) string {
	switch x := e.(type) {
	case *hyperql.Literal:
		return "?"
	case *hyperql.Binary:
		return fmt.Sprintf("(%s %s %s)", maskLiterals(x.L), x.Op, maskLiterals(x.R))
	case *hyperql.Unary:
		if x.Op == "NOT" {
			return fmt.Sprintf("(NOT %s)", maskLiterals(x.X))
		}
		return fmt.Sprintf("(%s%s)", x.Op, maskLiterals(x.X))
	case *hyperql.InList:
		parts := make([]string, len(x.Vals))
		for i, v := range x.Vals {
			parts[i] = maskLiterals(v)
		}
		op := "IN"
		if x.Neg {
			op = "NOT IN"
		}
		return fmt.Sprintf("(%s %s (%s))", maskLiterals(x.X), op, strings.Join(parts, ", "))
	case nil:
		return ""
	default:
		return x.String()
	}
}

// renderExplain builds the deterministic EXPLAIN text at compile time.
func renderExplain(p *WhatIfPlan, q *hyperql.WhatIf) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s\n", p.Fingerprint)
	fmt.Fprintf(&b, "  view: %s (%d rows)\n", q.Use.String(), p.ViewRows)
	if p.Fallback {
		fmt.Fprintf(&b, "  when: fallback to row loop (%s)\n", p.FallbackReason)
		return b.String()
	}
	if len(p.Conjuncts) == 0 {
		b.WriteString("  when: none (S = view)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  when: %d conjuncts, %d pushed\n", len(p.Conjuncts), p.Pushed())
	for i, c := range p.Conjuncts {
		fmt.Fprintf(&b, "    %d. %s [%s sel=%s]\n", i+1, c.shape, c.Op, trimFloat(c.Sel))
	}
	return b.String()
}

// trimFloat formats a selectivity with stable, shortest-form precision.
func trimFloat(f float64) string {
	return fmt.Sprintf("%.4g", math.Round(f*1e4)/1e4)
}
