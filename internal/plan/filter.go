package plan

import (
	"fmt"
	"math"
	"sync"

	"hyper/internal/hyperql"
	"hyper/internal/relation"
	"hyper/internal/sqlmini"
)

// viewColumns memoizes the interned columnar projection of one view: per
// column, a uint32 code per row (interned by canonical value key), the
// float64 value for range scans, and a null mask. Columns are built lazily
// on first use by a pushed conjunct and shared by every plan against the
// view, so the encode cost is paid once per (view, column).
type viewColumns struct {
	mu   sync.Mutex
	cols map[int]*internedColumn
}

type internedColumn struct {
	codes  []uint32
	byKey  map[string]uint32
	floats []float64
	nulls  []bool
}

func (vc *viewColumns) column(rel *relation.Relation, ci int) *internedColumn {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.cols == nil {
		vc.cols = make(map[int]*internedColumn)
	}
	if c := vc.cols[ci]; c != nil {
		return c
	}
	n := rel.Len()
	c := &internedColumn{
		codes:  make([]uint32, n),
		byKey:  make(map[string]uint32),
		floats: make([]float64, n),
		nulls:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		v := rel.Row(i)[ci]
		key := v.Key()
		code, ok := c.byKey[key]
		if !ok {
			code = uint32(len(c.byKey))
			c.byKey[key] = code
		}
		c.codes[i] = code
		c.floats[i] = v.AsFloat()
		c.nulls[i] = v.IsNull()
	}
	vc.cols[ci] = c
	return c
}

var errBind = fmt.Errorf("plan: bound query does not match compiled shape")

// apply executes the compiled WHEN program over rel, writing the update-set
// mask into inS (len rel.Len()), re-binding literal values from when's AST
// at each conjunct's recorded position. It returns the number of conjuncts
// that actually ran as columnar scans.
func (p *WhatIfPlan) apply(when hyperql.Expr, rel *relation.Relation, vc *viewColumns, inS []bool) (int, error) {
	for i := range inS {
		inS[i] = true
	}
	if when == nil {
		return 0, nil
	}
	conjs := SplitAnd(when)
	if len(conjs) != len(p.Conjuncts) {
		return 0, errBind
	}
	pushed := 0
	for _, c := range p.Conjuncts {
		node := conjs[c.Pos]
		if c.Op != OpResidual && p.applyPushed(c, node, rel, vc, inS) {
			pushed++
			continue
		}
		// Residual (or guard-demoted) conjunct: evaluate its own AST on the
		// rows still in the set. Compile-time validation proved the tree
		// error-free, so the error return is a defensive impossibility.
		env := sqlmini.RowEnv{Rel: rel}
		for i := range inS {
			if !inS[i] {
				continue
			}
			env.Row = rel.Row(i)
			ok, err := sqlmini.EvalBool(node, env)
			if err != nil {
				return pushed, err
			}
			inS[i] = ok
		}
	}
	return pushed, nil
}

// litGuard reports whether interned-code identity against this column is
// exact for literal v: numeric literals must be finite, below the
// key-exactness threshold, and the column NaN-free (NaN compares equal to
// every number under Value.Compare, but its canonical key is distinct).
// Non-numeric literals are always exact — cross-kind comparisons never
// report equality and never collide on keys.
func litGuard(v relation.Value, colNaN bool) bool {
	if !v.Kind().Numeric() {
		return true
	}
	f := v.AsFloat()
	return !math.IsNaN(f) && math.Abs(f) < maxExactAbs && !colNaN
}

// applyPushed runs one columnar conjunct, narrowing inS. It returns false
// when the node's shape mismatches the compiled conjunct or a bound literal
// violates an exactness guard; the caller then evaluates the conjunct's AST
// residually, which is always exact.
func (p *WhatIfPlan) applyPushed(c Conjunct, node hyperql.Expr, rel *relation.Relation, vc *viewColumns, inS []bool) bool {
	switch c.Op {
	case OpIn:
		in, ok := node.(*hyperql.InList)
		if !ok || in.Neg != c.Neg {
			return false
		}
		col := vc.column(rel, c.colIdx)
		set := make(map[uint32]bool, len(in.Vals))
		for _, ve := range in.Vals {
			lit, ok := ve.(*hyperql.Literal)
			if !ok {
				return false
			}
			if !litGuard(lit.Val, c.colNaN) {
				return false
			}
			// Values absent from the column's code space can never match.
			if code, present := col.byKey[lit.Val.Key()]; present {
				set[code] = true
			}
		}
		// NULL rows carry NULL's own code, so a NULL literal in the list
		// matches them and any other literal does not — exactly Value.Equal.
		for i := range inS {
			if inS[i] {
				inS[i] = set[col.codes[i]] != c.Neg
			}
		}
		return true
	default:
		b, ok := node.(*hyperql.Binary)
		if !ok {
			return false
		}
		litSide := b.R
		if c.Flip {
			litSide = b.L
		}
		lit, ok := litSide.(*hyperql.Literal)
		if !ok {
			return false
		}
		v := lit.Val
		if v.IsNull() {
			// Any comparison against NULL is false for every row.
			for i := range inS {
				inS[i] = false
			}
			return true
		}
		if !litGuard(v, c.colNaN) {
			return false
		}
		col := vc.column(rel, c.colIdx)
		switch c.Op {
		case OpEq:
			code, present := col.byKey[v.Key()]
			for i := range inS {
				if inS[i] {
					inS[i] = present && col.codes[i] == code
				}
			}
		case OpNe:
			code, present := col.byKey[v.Key()]
			for i := range inS {
				if inS[i] {
					inS[i] = !col.nulls[i] && !(present && col.codes[i] == code)
				}
			}
		default: // OpLt, OpLe, OpGt, OpGe
			if !v.Kind().Numeric() {
				// Cross-kind ordering follows kind ranks, not magnitudes;
				// leave it to the exact residual path.
				return false
			}
			f := v.AsFloat()
			for i := range inS {
				if !inS[i] {
					continue
				}
				if col.nulls[i] {
					inS[i] = false
					continue
				}
				x := col.floats[i]
				switch c.Op {
				case OpLt:
					inS[i] = x < f
				case OpLe:
					inS[i] = x <= f
				case OpGt:
					inS[i] = x > f
				default:
					inS[i] = x >= f
				}
			}
		}
		return true
	}
}
