// Package fault is HypeR's deterministic fault-injection substrate: seeded,
// rule-based injectors attached to named injection points across the dist
// stack (worker dials, eval/fit RPCs, frame ships, heartbeats, coordinator
// state persistence). A chaos run configures rules like "fail the first
// frame ship" or "kill the process on the third eval"; the instrumented call
// sites consult the injector and act on its decision, so the failure modes
// the resilience layer claims to survive are reproducibly triggerable — in
// unit tests, under -race, and against real processes (cmd/distsmoke
// -chaos).
//
// The package is nil-safe in the same way internal/obs is: every method has
// a nil-receiver fast path, so production builds that configure no faults
// pay a single pointer comparison and zero allocations per injection point.
// Determinism comes from two sources: rule counters (After/Count select hits
// by ordinal, independent of timing) and a seeded PCG stream for
// probabilistic rules — the same seed and the same hit sequence reproduce
// the same faults.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyper/internal/stats"
)

// Point names one instrumented injection site. The dist stack threads these
// through its transport; new points are cheap (a Decide call) and should be
// added wherever a failure mode needs to be reproducible.
type Point string

// The injection points wired through the stack.
const (
	// PointWorkerDial covers every coordinator->worker compute RPC
	// (eval/fit round trips), coordinator side.
	PointWorkerDial Point = "worker_dial"
	// PointEval is the worker's eval endpoint, worker side.
	PointEval Point = "eval"
	// PointFit is the worker's fit endpoint, worker side.
	PointFit Point = "fit"
	// PointFrameShip covers frame snapshot uploads, coordinator side.
	PointFrameShip Point = "frame_ship"
	// PointHeartbeat is the worker's heartbeat loop, worker side.
	PointHeartbeat Point = "heartbeat"
	// PointPersist is the coordinator's state-file write.
	PointPersist Point = "persist"
)

// Mode is what happens when a rule fires.
type Mode string

const (
	// ModeError makes the call site fail with an injected error (a worker
	// endpoint answers HTTP 500).
	ModeError Mode = "error"
	// ModeDelay sleeps for the rule's Delay, then proceeds normally.
	ModeDelay Mode = "delay"
	// ModeDrop severs the exchange without an answer: client-side points
	// surface ErrDropped (a transport-style failure), worker endpoints abort
	// the connection mid-response — what a network partition looks like.
	ModeDrop Mode = "drop"
	// ModeKill terminates the process (os.Exit(137), the SIGKILL exit
	// status) the moment the rule fires — mid-request, with no graceful
	// deregistration. Tests override the kill with SetKill.
	ModeKill Mode = "kill"
)

// ErrDropped marks an injected message drop at a client-side point.
var ErrDropped = errors.New("fault: injected drop")

// Rule arms one fault at one point. Counters make firing deterministic:
// the rule skips the first After hits of its point, then fires on every
// eligible hit (subject to Prob) at most Count times.
type Rule struct {
	Point Point
	Mode  Mode
	// After skips the first After eligible hits (0 = fire from the first).
	After int
	// Count caps firings (0 = unlimited).
	Count int
	// Prob fires each eligible hit with this probability from the seeded
	// stream (0 or >= 1 = always).
	Prob float64
	// Delay is the ModeDelay sleep.
	Delay time.Duration
}

func (r Rule) validate() error {
	switch r.Mode {
	case ModeError, ModeDelay, ModeDrop, ModeKill:
	default:
		return fmt.Errorf("fault: unknown mode %q", r.Mode)
	}
	if r.Point == "" {
		return errors.New("fault: rule has no point")
	}
	if r.Mode == ModeDelay && r.Delay <= 0 {
		return fmt.Errorf("fault: delay rule at %s needs ms=<positive>", r.Point)
	}
	if r.Prob < 0 {
		return fmt.Errorf("fault: negative probability at %s", r.Point)
	}
	return nil
}

// armedRule is one rule plus its hit bookkeeping.
type armedRule struct {
	Rule
	hits  int // eligible hits seen (After counts against these)
	fired int // times the rule actually fired
}

// Decision is what an injection point should do. The zero value means
// proceed normally; Err is non-nil for ModeError/ModeDrop.
type Decision struct {
	Mode Mode
	Err  error
}

// Injector evaluates rules at injection points. A nil *Injector is the
// disabled configuration: every method no-ops (Decide returns the
// zero Decision) without allocating.
type Injector struct {
	mu     sync.Mutex
	rng    *stats.RNG
	rules  []*armedRule
	onFire func(Point, Mode)
	killFn func()
	fired  uint64
}

// New returns an injector armed with rules, drawing probabilistic decisions
// from a stream seeded with seed. No rules returns nil — the disabled
// injector — so call sites stay on the nil fast path.
func New(seed int64, rules ...Rule) (*Injector, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	in := &Injector{
		rng:    stats.NewRNG(seed),
		killFn: func() { os.Exit(137) },
	}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		in.rules = append(in.rules, &armedRule{Rule: r})
	}
	return in, nil
}

// Parse builds an injector from a compact spec: comma-separated rules of the
// form "point:mode[:key=val]...", e.g.
//
//	eval:kill:after=1
//	frame_ship:error:count=1
//	worker_dial:delay:ms=20:count=8
//	heartbeat:drop:prob=0.5
//
// Keys: after (skip the first N hits), count (max firings), prob (firing
// probability), ms (delay milliseconds). An empty spec returns nil (faults
// disabled).
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, raw := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(raw), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault: rule %q wants point:mode[:key=val...]", raw)
		}
		r := Rule{Point: Point(parts[0]), Mode: Mode(parts[1])}
		for _, kv := range parts[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: bad option %q (want key=val)", raw, kv)
			}
			switch k {
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad after=%q", raw, v)
				}
				r.After = n
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad count=%q", raw, v)
				}
				r.Count = n
			case "prob":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: rule %q: bad prob=%q", raw, v)
				}
				r.Prob = p
			case "ms":
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("fault: rule %q: bad ms=%q", raw, v)
				}
				r.Delay = time.Duration(n) * time.Millisecond
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown option %q", raw, k)
			}
		}
		rules = append(rules, r)
	}
	return New(seed, rules...)
}

// SetOnFire installs a firing observer (metric bridge); nil-safe.
func (in *Injector) SetOnFire(fn func(Point, Mode)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.onFire = fn
	in.mu.Unlock()
}

// SetKill overrides the ModeKill action (tests substitute a recordable
// function for os.Exit); nil-safe.
func (in *Injector) SetKill(fn func()) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.killFn = fn
	in.mu.Unlock()
}

// Fired reports how many faults have been injected so far; nil-safe.
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Decide evaluates the rules for one hit of point. The first rule that
// fires wins: ModeDelay sleeps and proceeds, ModeKill terminates the
// process, ModeError/ModeDrop return a Decision whose Err the call site
// surfaces. A nil injector (or no matching armed rule) returns the zero
// Decision: proceed.
func (in *Injector) Decide(p Point) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	var fire *armedRule
	for _, r := range in.rules {
		if r.Point != p {
			continue
		}
		r.hits++
		if r.hits <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.fired++
		fire = r
		break
	}
	var onFire func(Point, Mode)
	var killFn func()
	if fire != nil {
		onFire, killFn = in.onFire, in.killFn
	}
	in.mu.Unlock()
	if fire == nil {
		return Decision{}
	}
	if onFire != nil {
		onFire(p, fire.Mode)
	}
	switch fire.Mode {
	case ModeDelay:
		time.Sleep(fire.Delay)
		return Decision{Mode: ModeDelay}
	case ModeKill:
		killFn()
		// Only reachable when a test overrode the kill; treat the survived
		// kill like a dropped exchange so the call site still fails.
		return Decision{Mode: ModeKill, Err: fmt.Errorf("fault: injected kill at %s: %w", p, ErrDropped)}
	case ModeDrop:
		return Decision{Mode: ModeDrop, Err: fmt.Errorf("fault: injected drop at %s: %w", p, ErrDropped)}
	default:
		return Decision{Mode: ModeError, Err: fmt.Errorf("fault: injected error at %s", p)}
	}
}

// Hit is the client-side sugar over Decide: ModeError and ModeDrop (and a
// survived ModeKill) surface as the decision's error, everything else
// proceeds with a nil error. Worker HTTP endpoints use Decide directly so
// drops can abort the connection instead of answering.
func (in *Injector) Hit(p Point) error {
	return in.Decide(p).Err
}

// String summarizes the armed rules (for startup logs); nil-safe.
func (in *Injector) String() string {
	if in == nil {
		return "disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	parts := make([]string, len(in.rules))
	for i, r := range in.rules {
		parts[i] = fmt.Sprintf("%s:%s(after=%d count=%d fired=%d)", r.Point, r.Mode, r.After, r.Count, r.fired)
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
