package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if d := in.Decide(PointEval); d.Mode != "" || d.Err != nil {
		t.Fatalf("nil injector decided %+v", d)
	}
	if err := in.Hit(PointEval); err != nil {
		t.Fatalf("nil injector hit: %v", err)
	}
	if in.Fired() != 0 {
		t.Fatalf("nil injector fired %d", in.Fired())
	}
	in.SetOnFire(nil)
	in.SetKill(nil)
	if s := in.String(); s != "disabled" {
		t.Fatalf("nil injector String = %q", s)
	}
}

func TestNewEmptyReturnsNil(t *testing.T) {
	in, err := New(1)
	if err != nil || in != nil {
		t.Fatalf("New() = %v, %v; want nil, nil", in, err)
	}
	in, err = Parse("", 1)
	if err != nil || in != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
}

func TestAfterAndCount(t *testing.T) {
	in, err := New(1, Rule{Point: PointEval, Mode: ModeError, After: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Hit 1 skipped (after=1), hits 2-3 fire (count=2), hit 4+ exhausted.
	want := []bool{false, true, true, false, false}
	for i, w := range want {
		err := in.Hit(PointEval)
		if (err != nil) != w {
			t.Fatalf("hit %d: err=%v, want fire=%v", i+1, err, w)
		}
	}
	if got := in.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

func TestPointsAreIndependent(t *testing.T) {
	in, err := New(1, Rule{Point: PointFrameShip, Mode: ModeError, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Hit(PointEval); err != nil {
		t.Fatalf("unmatched point fired: %v", err)
	}
	if err := in.Hit(PointFrameShip); err == nil {
		t.Fatal("armed point did not fire")
	}
	if err := in.Hit(PointFrameShip); err != nil {
		t.Fatalf("count=1 rule fired twice: %v", err)
	}
}

func TestDropWrapsErrDropped(t *testing.T) {
	in, err := New(1, Rule{Point: PointWorkerDial, Mode: ModeDrop})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Hit(PointWorkerDial); !errors.Is(err, ErrDropped) {
		t.Fatalf("drop error = %v, want ErrDropped", err)
	}
}

func TestKillUsesOverride(t *testing.T) {
	in, err := New(1, Rule{Point: PointEval, Mode: ModeKill, After: 1})
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	in.SetKill(func() { killed++ })
	if err := in.Hit(PointEval); err != nil || killed != 0 {
		t.Fatalf("kill fired early: err=%v killed=%d", err, killed)
	}
	err = in.Hit(PointEval)
	if killed != 1 {
		t.Fatalf("killed = %d, want 1", killed)
	}
	// A survived kill must still fail the exchange.
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("survived kill error = %v, want ErrDropped", err)
	}
}

func TestDelayProceeds(t *testing.T) {
	in, err := New(1, Rule{Point: PointEval, Mode: ModeDelay, Delay: 5 * time.Millisecond, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Hit(PointEval); err != nil {
		t.Fatalf("delay surfaced an error: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in, err := New(seed, Rule{Point: PointHeartbeat, Mode: ModeError, Prob: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.Hit(PointHeartbeat) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times — not probabilistic", fires, len(a))
	}
}

func TestOnFireObserver(t *testing.T) {
	in, err := New(1, Rule{Point: PointPersist, Mode: ModeError, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	var gotP Point
	var gotM Mode
	in.SetOnFire(func(p Point, m Mode) { gotP, gotM = p, m })
	in.Hit(PointPersist)
	if gotP != PointPersist || gotM != ModeError {
		t.Fatalf("observer saw (%s, %s)", gotP, gotM)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("eval:kill:after=1,frame_ship:error:count=1,worker_dial:delay:ms=20:count=8", 7)
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("Parse returned nil for non-empty spec")
	}
	if len(in.rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(in.rules))
	}
	r := in.rules[2].Rule
	if r.Point != PointWorkerDial || r.Mode != ModeDelay || r.Delay != 20*time.Millisecond || r.Count != 8 {
		t.Fatalf("rule 3 = %+v", r)
	}

	bad := []string{
		"eval",                // no mode
		"eval:explode",        // unknown mode
		"eval:error:bogus=1",  // unknown option
		"eval:error:after",    // not key=val
		"eval:delay",          // delay without ms
		"eval:error:prob=1.5", // prob out of range
		"eval:error:count=-1", // negative count
		":error",              // empty point
		"eval:delay:ms=0",     // non-positive delay
		"eval:error:after=-2", // negative after
		"eval:error:prob=x",   // unparsable float
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func BenchmarkDecideDisabled(b *testing.B) {
	var in *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := in.Hit(PointEval); err != nil {
			b.Fatal(err)
		}
	}
}
