package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming moments of a sequence of float64 samples
// using Welford's algorithm, which is numerically stable for large n.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// StdDev returns the unbiased standard deviation of xs.
func StdDev(xs []float64) float64 {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.StdDev()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation on the sorted copy. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
