package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width bucket histogram over [Lo, Hi]. Values outside
// the range clamp to the boundary buckets.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n buckets over [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Bucket returns the bucket index for x.
func (h *Histogram) Bucket(x float64) int {
	n := len(h.Counts)
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return n - 1
	}
	i := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(n)))
	if i >= n {
		i = n - 1
	}
	return i
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Counts[h.Bucket(x)]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Frac returns the fraction of observations in bucket i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Midpoint returns the center value of bucket i.
func (h *Histogram) Midpoint(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// String renders a compact textual bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxc := 1
	for _, c := range h.Counts {
		if c > maxc {
			maxc = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*40/maxc)
		fmt.Fprintf(&b, "[%8.3g) %6d %s\n", h.Midpoint(i), c, bar)
	}
	return b.String()
}
