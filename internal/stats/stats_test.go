package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("uniform mean = %.4f", s.Mean())
	}
	if s.Min() < 0 || s.Max() >= 1 {
		t.Errorf("uniform out of range [%.4f, %.4f]", s.Min(), s.Max())
	}
	// Chi-square-ish check on Intn buckets.
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn bucket %d count %d far from 10000", b, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Errorf("normal mean = %.4f", s.Mean())
	}
	if math.Abs(s.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %.4f", s.StdDev())
	}
}

func TestPermAndSampleIndexes(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, x := range p {
		if x < 0 || x >= 100 || seen[x] {
			t.Fatalf("Perm invalid at %d", x)
		}
		seen[x] = true
	}
	s := r.SampleIndexes(1000, 50)
	if len(s) != 50 {
		t.Fatalf("SampleIndexes len = %d", len(s))
	}
	dup := map[int]bool{}
	for _, x := range s {
		if x < 0 || x >= 1000 || dup[x] {
			t.Fatalf("SampleIndexes invalid at %d", x)
		}
		dup[x] = true
	}
	if got := r.SampleIndexes(5, 10); len(got) != 5 {
		t.Errorf("k>=n should return a permutation, len=%d", len(got))
	}
	bs := r.Bootstrap(100)
	if len(bs) != 100 {
		t.Errorf("Bootstrap len = %d", len(bs))
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := NewRNG(5)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if counts[2] < 19000 || counts[0] > 4500 {
		t.Errorf("weighted choice off: %v", counts)
	}
	if i := r.Choice([]float64{0, 0}); i < 0 || i > 1 {
		t.Errorf("zero-weight choice = %d", i)
	}
}

func TestSummaryWelford(t *testing.T) {
	var s Summary
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Errorf("N=%d Mean=%g", s.N(), s.Mean())
	}
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %g", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Errorf("quantiles: %g %g %g", Quantile(xs, 0), Quantile(xs, 0.5), Quantile(xs, 1))
	}
	if Quantile(xs, 0.25) != 2 {
		t.Errorf("q25 = %g", Quantile(xs, 0.25))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestDistributions(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(Normal{Mu: 10, Sigma: 2}.Sample(r))
	}
	if math.Abs(s.Mean()-10) > 0.05 || math.Abs(s.StdDev()-2) > 0.05 {
		t.Errorf("Normal(10,2): mean=%.3f sd=%.3f", s.Mean(), s.StdDev())
	}
	s = Summary{}
	for i := 0; i < 50000; i++ {
		s.Add(Uniform{Lo: -1, Hi: 3}.Sample(r))
	}
	if math.Abs(s.Mean()-1) > 0.05 {
		t.Errorf("Uniform(-1,3) mean=%.3f", s.Mean())
	}
	s = Summary{}
	for i := 0; i < 50000; i++ {
		s.Add(Bernoulli{P: 0.3}.Sample(r))
	}
	if math.Abs(s.Mean()-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) mean=%.3f", s.Mean())
	}
	s = Summary{}
	for i := 0; i < 50000; i++ {
		s.Add(Exponential{Lambda: 2}.Sample(r))
	}
	if math.Abs(s.Mean()-0.5) > 0.02 {
		t.Errorf("Exp(2) mean=%.3f", s.Mean())
	}
	if math.Abs(Logistic(0)-0.5) > 1e-12 {
		t.Errorf("Logistic(0) = %g", Logistic(0))
	}
	c := Categorical{Weights: []float64{1, 0, 1}}
	for i := 0; i < 100; i++ {
		if v := c.Sample(r); v == 1 {
			t.Fatal("zero-weight category sampled")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d", h.Total())
	}
	for b := 0; b < 5; b++ {
		if h.Counts[b] != 2 {
			t.Errorf("bucket %d = %d", b, h.Counts[b])
		}
		if h.Frac(b) != 0.2 {
			t.Errorf("frac %d = %g", b, h.Frac(b))
		}
	}
	if h.Bucket(-5) != 0 || h.Bucket(100) != 4 {
		t.Error("clamping failed")
	}
	if h.Midpoint(0) != 1 {
		t.Errorf("midpoint = %g", h.Midpoint(0))
	}
	if h.String() == "" {
		t.Error("String should render")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

// Property: Summary matches direct two-pass computation.
func TestSummaryMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		wantVar := varSum / float64(len(xs)-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-wantVar) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split produces streams independent of subsequent parent draws.
func TestSplitStabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := NewRNG(seed)
		s1 := a.Split()
		v1 := s1.Uint64()
		b := NewRNG(seed)
		s2 := b.Split()
		return s2.Uint64() == v1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
