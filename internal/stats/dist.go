package stats

import "math"

// Dist is a one-dimensional distribution that can be sampled with an RNG.
type Dist interface {
	Sample(r *RNG) float64
}

// Normal is a Gaussian distribution.
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample draws one Gaussian variate.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Uniform is a continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo float64
	Hi float64
}

// Sample draws one uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Bernoulli yields 1 with probability P, else 0.
type Bernoulli struct{ P float64 }

// Sample draws a 0/1 variate.
func (b Bernoulli) Sample(r *RNG) float64 {
	if r.Float64() < b.P {
		return 1
	}
	return 0
}

// Categorical draws index i with probability Weights[i]/sum(Weights).
type Categorical struct{ Weights []float64 }

// Sample draws a category index as a float64.
func (c Categorical) Sample(r *RNG) float64 { return float64(r.Choice(c.Weights)) }

// Exponential has rate Lambda.
type Exponential struct{ Lambda float64 }

// Sample draws one exponential variate.
func (e Exponential) Sample(r *RNG) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / e.Lambda
}

// Logistic applies the standard logistic function, useful in structural
// equations that map a linear score to a probability.
func Logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
