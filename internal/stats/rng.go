// Package stats provides the deterministic statistics substrate used across
// HypeR: a splittable PCG-style random number generator, common
// distributions, streaming summaries, and histograms. Every stochastic
// component in the repository draws from this package so that experiments
// are exactly reproducible from a seed.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic 64-bit PCG-XSH-RR style generator. The zero value
// is not usable; construct with NewRNG.
type RNG struct {
	state uint64
	inc   uint64
	// spare holds a cached second normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{inc: 0xda3e39cb94b95bdb}
	r.state = 0
	r.next()
	r.state += uint64(seed) ^ 0x853c49e6748fea9b
	r.next()
	return r
}

// Split derives a new independent generator from r; useful for giving each
// tuple or each tree its own stream without coupling draw counts.
func (r *RNG) Split() *RNG {
	s := int64(r.next())
	return NewRNG(s)
}

// next32 advances the state and emits one PCG-XSH-RR 32-bit output.
func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + (r.inc | 1)
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

func (r *RNG) next() uint64 {
	return uint64(r.next32())<<32 | uint64(r.next32())
}

// Uint64 returns a uniformly random 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.next() >> 1) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s == 0 || s >= 1 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleIndexes returns k distinct indexes drawn without replacement from
// [0, n), in random order. If k >= n it returns a permutation of [0, n).
func (r *RNG) SampleIndexes(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Shuffle for random order.
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Bootstrap returns n indexes drawn uniformly with replacement from [0, n).
func (r *RNG) Bootstrap(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

// Choice returns a random element index weighted by the non-negative weights.
// A zero total weight degenerates to uniform.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
