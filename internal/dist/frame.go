package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"hyper/internal/causal"
	"hyper/internal/relation"
)

// A frame snapshot is the self-contained, bit-exact serialization of a
// session's data: every relation (schema + typed rows), the foreign keys,
// and the causal model. Workers rebuild the database from it, so value
// fidelity is absolute — values are tagged scalars, not CSV text, because a
// CSV round-trip re-infers kinds (2.0 → "2" → int) and would break the
// bit-identity contract. Frames are content-addressed (sha256 of the
// canonical JSON), so a session rebuilt with different data is a different
// frame and can never alias a worker's warm copy.

// ColumnSnapshot is the wire form of a schema column.
type ColumnSnapshot struct {
	Name    string `json:"name"`
	Kind    uint8  `json:"kind"`
	Key     bool   `json:"key,omitempty"`
	Mutable bool   `json:"mutable,omitempty"`
}

// RelationSnapshot is the wire form of one relation: schema plus rows in
// insertion order (row order is part of the determinism contract — the
// canonical shard plan partitions rows by position).
type RelationSnapshot struct {
	Name    string           `json:"name"`
	Columns []ColumnSnapshot `json:"columns"`
	Rows    [][]string       `json:"rows"`
}

// Snapshot is a serialized database + causal model.
type Snapshot struct {
	// Version is the MVCC snapshot version of the serialized database (0
	// for unversioned instances, omitted on the wire — pre-MVCC frame
	// bodies and their content addresses are unchanged).
	Version     int64                 `json:"version,omitempty"`
	Relations   []RelationSnapshot    `json:"relations"`
	ForeignKeys []relation.ForeignKey `json:"foreign_keys,omitempty"`
	// Model graph: nodes in insertion order, edges sorted (edge-set
	// semantics; every graph algorithm downstream is order-insensitive).
	HasModel bool               `json:"has_model,omitempty"`
	Nodes    []string           `json:"nodes,omitempty"`
	Edges    [][2]string        `json:"edges,omitempty"`
	Cross    []causal.CrossEdge `json:"cross,omitempty"`
}

// encodeValue renders a typed value as a tagged scalar: "_" NULL, "T"/"F"
// bool, "i<int>", "d<float>" ('g' -1 formatting round-trips float64
// exactly), "s<string>".
func encodeValue(v relation.Value) string {
	switch v.Kind() {
	case relation.KindNull:
		return "_"
	case relation.KindBool:
		if v.AsBool() {
			return "T"
		}
		return "F"
	case relation.KindInt:
		return "i" + strconv.FormatInt(v.AsInt(), 10)
	case relation.KindFloat:
		return "d" + strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	default:
		return "s" + v.AsString()
	}
}

func decodeValue(s string) (relation.Value, error) {
	if s == "" {
		return relation.Null, fmt.Errorf("dist: empty value token")
	}
	switch s[0] {
	case '_':
		return relation.Null, nil
	case 'T':
		return relation.Bool(true), nil
	case 'F':
		return relation.Bool(false), nil
	case 'i':
		i, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return relation.Null, fmt.Errorf("dist: bad int token %q: %v", s, err)
		}
		return relation.Int(i), nil
	case 'd':
		f, err := strconv.ParseFloat(s[1:], 64)
		if err != nil {
			return relation.Null, fmt.Errorf("dist: bad float token %q: %v", s, err)
		}
		return relation.Float(f), nil
	case 's':
		return relation.String(s[1:]), nil
	default:
		return relation.Null, fmt.Errorf("dist: unknown value tag %q", s[0])
	}
}

// EncodeSnapshot serializes a database and (optional) causal model.
func EncodeSnapshot(db *relation.Database, model *causal.Model) *Snapshot {
	s := &Snapshot{Version: db.Version(), ForeignKeys: db.ForeignKeys()}
	for _, name := range db.Names() {
		rel := db.Relation(name)
		rs := RelationSnapshot{Name: name}
		for _, c := range rel.Schema().Columns() {
			rs.Columns = append(rs.Columns, ColumnSnapshot{
				Name: c.Name, Kind: uint8(c.Kind), Key: c.Key, Mutable: c.Mutable,
			})
		}
		rs.Rows = make([][]string, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			row := rel.Row(i)
			enc := make([]string, len(row))
			for j, v := range row {
				enc[j] = encodeValue(v)
			}
			rs.Rows[i] = enc
		}
		s.Relations = append(s.Relations, rs)
	}
	if model != nil {
		s.HasModel = true
		s.Nodes = model.Attr.Nodes()
		s.Edges = model.Attr.Edges()
		s.Cross = append([]causal.CrossEdge(nil), model.Cross...)
	}
	return s
}

// Build reconstructs the database and model from a snapshot.
func (s *Snapshot) Build() (*relation.Database, *causal.Model, error) {
	db := relation.NewDatabase()
	db.SetVersion(s.Version)
	for _, rs := range s.Relations {
		cols := make([]relation.Column, len(rs.Columns))
		for i, c := range rs.Columns {
			cols[i] = relation.Column{Name: c.Name, Kind: relation.Kind(c.Kind), Key: c.Key, Mutable: c.Mutable}
		}
		schema, err := relation.NewSchema(cols...)
		if err != nil {
			return nil, nil, fmt.Errorf("dist: relation %q: %w", rs.Name, err)
		}
		rel := relation.NewRelation(rs.Name, schema)
		for ri, enc := range rs.Rows {
			t := make(relation.Tuple, len(enc))
			if len(enc) != len(cols) {
				return nil, nil, fmt.Errorf("dist: relation %q row %d has %d values, schema has %d columns",
					rs.Name, ri, len(enc), len(cols))
			}
			for j, v := range enc {
				val, err := decodeValue(v)
				if err != nil {
					return nil, nil, fmt.Errorf("dist: relation %q row %d: %w", rs.Name, ri, err)
				}
				t[j] = val
			}
			if err := rel.Insert(t); err != nil {
				return nil, nil, fmt.Errorf("dist: relation %q row %d: %w", rs.Name, ri, err)
			}
		}
		if err := db.Add(rel); err != nil {
			return nil, nil, err
		}
	}
	for _, fk := range s.ForeignKeys {
		if err := db.AddForeignKey(fk); err != nil {
			return nil, nil, err
		}
	}
	if !s.HasModel {
		return db, nil, nil
	}
	m := causal.NewModel()
	for _, n := range s.Nodes {
		m.Attr.AddNode(n)
	}
	for _, e := range s.Edges {
		m.Attr.AddEdge(e[0], e[1])
	}
	// Cross edges are assigned directly: their attribute-level edges are
	// already in Edges, and AddCross would record them twice.
	m.Cross = append([]causal.CrossEdge(nil), s.Cross...)
	return db, m, nil
}

// RelationDelta is the wire form of one relation's appended rows (tagged
// scalars, same encoding as RelationSnapshot rows).
type RelationDelta struct {
	Name string     `json:"name"`
	Rows [][]string `json:"rows"`
}

// Delta is the wire form of an incremental frame: the parent frame it
// extends, the MVCC version the extension publishes, and the appended rows
// per relation. Only new segments cross the wire — a session that appended
// 100 rows to a million-row base ships 100 rows, not a fresh snapshot. The
// delta body is content-addressed like a full snapshot, and because it
// names its parent's id, the address covers the whole version chain: two
// deltas agree iff their bases and their appended rows agree.
type Delta struct {
	Base    string          `json:"base"`
	Version int64           `json:"version"`
	Delta   []RelationDelta `json:"delta"`
}

// Frame is a lazily materialized, content-addressed snapshot of a session's
// data, shared by every distributed evaluation against that session. The
// encoding runs once; the id is the sha256 of the canonical JSON body, so
// identical data has one identity everywhere and changed data can never hit
// a stale worker copy. A frame built with NewFrameDelta encodes only the
// appended rows and names its parent frame, which the shipping path ensures
// is resident on the worker first.
type Frame struct {
	db       *relation.Database
	model    *causal.Model
	parent   *Frame
	appended map[string][]relation.Tuple

	once sync.Once
	id   string
	body []byte
	err  error
}

// NewFrame wraps a session's database and model. Encoding is deferred to
// the first Payload call.
func NewFrame(db *relation.Database, model *causal.Model) *Frame {
	return &Frame{db: db, model: model}
}

// NewFrameDelta wraps an appended session version as an incremental frame:
// db is the full post-append database (what workers must end up holding),
// parent is the frame of the version the append extended, and appended
// holds exactly the new tuples per relation. The wire body is the delta
// alone; workers that miss the parent are shipped the chain first.
func NewFrameDelta(parent *Frame, db *relation.Database, model *causal.Model, appended map[string][]relation.Tuple) *Frame {
	return &Frame{db: db, model: model, parent: parent, appended: appended}
}

// Parent returns the frame this delta extends (nil for full snapshots).
func (f *Frame) Parent() *Frame { return f.parent }

// Payload returns the frame id and canonical JSON body.
func (f *Frame) Payload() (string, []byte, error) {
	f.once.Do(func() {
		var raw []byte
		var err error
		if f.parent != nil {
			raw, err = f.encodeDelta()
		} else {
			raw, err = json.Marshal(EncodeSnapshot(f.db, f.model))
		}
		if err != nil {
			f.err = err
			return
		}
		sum := sha256.Sum256(raw)
		f.id = hex.EncodeToString(sum[:])
		f.body = raw
	})
	return f.id, f.body, f.err
}

// encodeDelta renders the delta body: relations in database order (the
// deterministic order every encoding in this package uses), empty appends
// skipped.
func (f *Frame) encodeDelta() ([]byte, error) {
	base, _, err := f.parent.Payload()
	if err != nil {
		return nil, err
	}
	d := Delta{Base: base, Version: f.db.Version()}
	for _, name := range f.db.Names() {
		tuples := f.appended[name]
		if len(tuples) == 0 {
			continue
		}
		rd := RelationDelta{Name: name, Rows: make([][]string, len(tuples))}
		for i, t := range tuples {
			enc := make([]string, len(t))
			for j, v := range t {
				enc[j] = encodeValue(v)
			}
			rd.Rows[i] = enc
		}
		d.Delta = append(d.Delta, rd)
	}
	return json.Marshal(d)
}

// ID returns the content-addressed frame id.
func (f *Frame) ID() (string, error) {
	id, _, err := f.Payload()
	return id, err
}

// DecodeDelta parses a delta body into the appended-tuple map keyed by
// relation name. Tuples are decoded with full value fidelity; schema
// validation happens when the caller extends the base database.
func DecodeDelta(body []byte) (*Delta, map[string][]relation.Tuple, error) {
	var d Delta
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, nil, fmt.Errorf("dist: decoding frame delta: %w", err)
	}
	if d.Base == "" {
		return nil, nil, fmt.Errorf("dist: frame delta has no base")
	}
	appends := make(map[string][]relation.Tuple, len(d.Delta))
	for _, rd := range d.Delta {
		tuples := make([]relation.Tuple, len(rd.Rows))
		for i, enc := range rd.Rows {
			t := make(relation.Tuple, len(enc))
			for j, s := range enc {
				v, err := decodeValue(s)
				if err != nil {
					return nil, nil, fmt.Errorf("dist: delta relation %q row %d: %w", rd.Name, i, err)
				}
				t[j] = v
			}
			tuples[i] = t
		}
		appends[rd.Name] = tuples
	}
	return &d, appends, nil
}
