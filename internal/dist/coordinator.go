package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyper/internal/causal"
	"hyper/internal/engine"
	"hyper/internal/fault"
	"hyper/internal/hyperql"
	"hyper/internal/ml"
	"hyper/internal/obs"
	"hyper/internal/relation"
	"hyper/internal/stats"
)

// ErrNoWorkers is returned when a distributed operation is requested and no
// live worker is registered (callers decide between failing the request and
// falling back to local evaluation).
var ErrNoWorkers = errors.New("dist: no live workers")

// CoordinatorConfig tunes the coordinator; the zero value is usable.
type CoordinatorConfig struct {
	// TTL is the worker lease: a worker whose last heartbeat is older is
	// not assigned work. Default 15s.
	TTL time.Duration
	// Client performs the worker dial-backs. Default http.DefaultClient
	// (evaluations can be long; cancellation flows through request
	// contexts, not client timeouts).
	Client *http.Client
	// Secret, when non-empty, gates the dist surface: worker registration
	// must present it (Authorization: Bearer <secret>) and the coordinator
	// presents it on every dial-back so workers can verify their caller.
	// A worker accepted into the registry receives session data and its
	// partials are merged into query results, so on any network where
	// untrusted peers can reach the listeners, set a secret on both ends
	// (hyperd -dist-secret).
	Secret string
	// Logf, when non-nil, receives coordinator events (registrations,
	// drops, requeues, frame ships).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the coordinator's hyper_dist_* metric
	// families at construction time (the same atomics /v1/stats reads).
	Metrics *obs.Registry
	// Retry is the unified failure policy for every worker RPC (frame
	// ships included); the zero value takes the RetryPolicy defaults.
	Retry RetryPolicy
	// BreakerFailures is K: consecutive dispatch failures that quarantine a
	// worker. Default 3.
	BreakerFailures int
	// BreakerCooldown is how long a quarantined worker is skipped before
	// its half-open probe. Default 30s.
	BreakerCooldown time.Duration
	// StatePath, when non-empty, persists the coordinator state (worker
	// registry, shipped frames, quarantine, in-flight assignments) to this
	// JSON file so a restarted coordinator re-adopts its fleet.
	StatePath string
	// Fault, when non-nil, is the armed fault injector consulted at the
	// coordinator-side injection points (worker_dial, frame_ship, persist).
	// Nil — the production default — costs one pointer check per point.
	Fault *fault.Injector
	// JitterSeed seeds the retry-backoff jitter stream (0 picks a fixed
	// default; any value keeps results deterministic — jitter shapes only
	// sleep durations).
	JitterSeed int64
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.TTL <= 0 {
		c.TTL = 15 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	c.Retry = c.Retry.withDefaults()
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// Coordinator owns the worker registry and drives distributed shard
// execution: contiguous plan-shard assignment over the live workers, frame
// shipping on first touch, requeue of lost workers' shards onto the
// survivors (or local fallback), and the plan-order reduce that keeps
// distributed results bit-identical to local ones.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	workers   map[string]*remoteWorker
	assigns   map[uint64]persistedAssignment // in-flight shard batches, by seq
	assignSeq uint64

	// Gauges (surfaced through /v1/stats).
	registered     atomic.Uint64 // registrations accepted (incl. re-registrations)
	lost           atomic.Uint64 // workers quarantined after dispatch failures
	requeues       atomic.Uint64 // shard batches requeued after a worker loss
	framesShipped  atomic.Uint64
	remoteEvals    atomic.Uint64 // distributed what-if evaluations completed
	remoteShards   atomic.Uint64 // plan shards evaluated on remote workers
	remoteFits     atomic.Uint64 // remote shard-mergeable fits completed
	localFallbacks atomic.Uint64 // times pending shards fell back to local
	retries        atomic.Uint64 // RPC retries under the unified policy
	restored       atomic.Uint64 // workers re-adopted from the state file
	persistErrors  atomic.Uint64 // failed (best-effort) state saves

	// jitter is the seeded backoff-jitter stream (guarded: retries from
	// concurrent dispatch goroutines draw from one sequence).
	jitterMu sync.Mutex
	jitter   *stats.RNG

	// saveMu serializes state-file writes (each is a temp-write + rename).
	saveMu sync.Mutex

	// requeueEvents labels each worker failure that requeued shards with
	// who failed and why (reason: lease_expired | dial_fail |
	// frame_missing); nil without a metrics registry (every obs vec/counter
	// method no-ops on nil). faultInjected counts injector firings by point
	// and mode.
	requeueEvents *obs.CounterVec
	faultInjected *obs.CounterVec
}

// remoteWorker is one registered worker. shipped tracks the frames this
// worker has confirmed, so steady-state dispatch skips the 404 round-trip;
// breaker is the worker's quarantine circuit.
type remoteWorker struct {
	id      string
	url     string
	breaker *breaker

	mu       sync.Mutex
	lastBeat time.Time
	shipped  map[string]bool
	shipping map[string]chan struct{} // frame id -> in-flight ship (single-flight)
}

func (w *remoteWorker) beat() {
	w.mu.Lock()
	w.lastBeat = time.Now()
	w.mu.Unlock()
}

func (w *remoteWorker) aliveAt(ttl time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Since(w.lastBeat) <= ttl
}

func (w *remoteWorker) hasFrame(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shipped[id]
}

func (w *remoteWorker) markFrame(id string) {
	w.mu.Lock()
	if w.shipped == nil {
		w.shipped = make(map[string]bool)
	}
	w.shipped[id] = true
	w.mu.Unlock()
}

func (w *remoteWorker) frameCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.shipped)
}

// NewCoordinator returns a coordinator, re-adopting a previously persisted
// fleet when the configured state file exists.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults(), workers: make(map[string]*remoteWorker)}
	c.jitter = stats.NewRNG(c.cfg.JitterSeed)
	if c.cfg.StatePath != "" {
		if err := c.loadState(); err != nil {
			// Never discard operator state silently: move the unreadable
			// file aside for inspection and start fresh.
			c.logf("dist: cannot load coordinator state: %v", err)
			if rerr := os.Rename(c.cfg.StatePath, c.cfg.StatePath+".corrupt"); rerr == nil {
				c.logf("dist: moved unreadable state file to %s.corrupt", c.cfg.StatePath)
			}
		}
	}
	if r := c.cfg.Metrics; r != nil {
		r.GaugeFunc("hyper_dist_workers_alive", "Registered workers within their heartbeat lease.",
			func() float64 { return float64(c.WorkersAlive()) })
		r.GaugeFunc("hyper_dist_workers_registered", "Workers in the registry, alive or not.",
			func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.workers)) })
		r.CounterFunc("hyper_dist_registrations_total", "Worker registrations accepted (including re-registrations).",
			func() float64 { return float64(c.registered.Load()) })
		r.CounterFunc("hyper_dist_workers_lost_total", "Workers quarantined after dispatch failures.",
			func() float64 { return float64(c.lost.Load()) })
		r.CounterFunc("hyper_dist_retries_total", "Worker RPC retries under the unified retry policy.",
			func() float64 { return float64(c.retries.Load()) })
		r.GaugeFunc("hyper_dist_breaker_state", "Workers currently quarantined (circuit open, cooldown not yet elapsed).",
			func() float64 { return float64(c.quarantinedCount()) })
		r.CounterFunc("hyper_dist_workers_restored_total", "Workers re-adopted from the persisted state file at startup.",
			func() float64 { return float64(c.restored.Load()) })
		r.CounterFunc("hyper_dist_persist_errors_total", "Best-effort coordinator state saves that failed.",
			func() float64 { return float64(c.persistErrors.Load()) })
		r.CounterFunc("hyper_dist_requeues_total", "Shard batches requeued after a worker loss.",
			func() float64 { return float64(c.requeues.Load()) })
		r.CounterFunc("hyper_dist_frames_shipped_total", "Frame snapshots shipped to workers.",
			func() float64 { return float64(c.framesShipped.Load()) })
		r.CounterFunc("hyper_dist_remote_evals_total", "Distributed what-if evaluations completed.",
			func() float64 { return float64(c.remoteEvals.Load()) })
		r.CounterFunc("hyper_dist_remote_shards_total", "Plan shards evaluated on remote workers.",
			func() float64 { return float64(c.remoteShards.Load()) })
		r.CounterFunc("hyper_dist_remote_fits_total", "Remote shard-mergeable fits completed.",
			func() float64 { return float64(c.remoteFits.Load()) })
		r.CounterFunc("hyper_dist_local_fallbacks_total", "Times pending shards fell back to local evaluation.",
			func() float64 { return float64(c.localFallbacks.Load()) })
		c.requeueEvents = r.CounterVec("hyper_dist_requeue_events_total",
			"Worker failures that requeued shards, by worker and failure reason.", "worker", "reason")
		c.faultInjected = r.CounterVec("hyper_fault_injected_total",
			"Faults fired by the deterministic injector, by point and mode.", "point", "mode")
	}
	// The injector observer increments the vec; with no injector armed the
	// family still exists (at zero) so the metric schema is role-stable.
	c.cfg.Fault.SetOnFire(func(p fault.Point, m fault.Mode) {
		c.faultInjected.With(string(p), string(m)).Inc()
	})
	return c
}

// newWorkerBreaker builds a breaker with the coordinator's K/cooldown.
func (c *Coordinator) newWorkerBreaker() *breaker {
	return newBreaker(c.cfg.BreakerFailures, c.cfg.BreakerCooldown)
}

// quarantinedCount reports workers whose circuit is open within cooldown.
func (c *Coordinator) quarantinedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.breaker.state() == breakerOpen {
			n++
		}
	}
	return n
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Handler returns the coordinator's registration surface, mountable next to
// the serving API (hyperd serves it on the same listener).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathWorkers, func(rw http.ResponseWriter, r *http.Request) {
		if !checkSecret(rw, r, c.cfg.Secret) {
			return
		}
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(rw, http.StatusBadRequest, "", "decoding register request: %v", err)
			return
		}
		if req.ID == "" || req.URL == "" {
			writeError(rw, http.StatusBadRequest, "", "register requires id and url")
			return
		}
		c.Register(req.ID, req.URL)
		writeJSON(rw, http.StatusOK, map[string]any{"ok": true, "ttl_ms": c.cfg.TTL.Milliseconds()})
	})
	mux.HandleFunc("POST "+pathWorkers+"/{id}/beat", func(rw http.ResponseWriter, r *http.Request) {
		if !checkSecret(rw, r, c.cfg.Secret) {
			return
		}
		id := r.PathValue("id")
		c.mu.Lock()
		w, ok := c.workers[id]
		c.mu.Unlock()
		if !ok {
			// Unknown (deregistered or never-seen) worker: it must
			// re-register, which also re-announces its URL.
			writeError(rw, http.StatusNotFound, "", "unknown worker %q", id)
			return
		}
		w.beat()
		if w.breaker.state() == breakerHalfOpen {
			// The cooldown has elapsed and the worker is demonstrably
			// alive: close the circuit rather than waiting for the next
			// query to probe it.
			w.breaker.onSuccess()
			c.logf("dist: worker %s rehabilitated after quarantine cooldown", id)
			c.saveState()
		}
		writeJSON(rw, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("DELETE "+pathWorkers+"/{id}", func(rw http.ResponseWriter, r *http.Request) {
		if !checkSecret(rw, r, c.cfg.Secret) {
			return
		}
		id := r.PathValue("id")
		c.mu.Lock()
		_, ok := c.workers[id]
		delete(c.workers, id)
		c.mu.Unlock()
		if !ok {
			writeError(rw, http.StatusNotFound, "", "unknown worker %q", id)
			return
		}
		c.logf("dist: worker %s deregistered", id)
		c.saveState()
		writeJSON(rw, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET "+pathWorkers, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"workers": c.WorkerInfos()})
	})
	return mux
}

// Register adds (or refreshes) a worker and starts its lease. A
// re-registration at the same URL keeps the existing entry — shipped-frame
// bookkeeping and breaker history survive a worker's heartbeat blips.
func (c *Coordinator) Register(id, url string) {
	c.mu.Lock()
	w, ok := c.workers[id]
	if !ok || w.url != url {
		w = &remoteWorker{id: id, url: url, breaker: c.newWorkerBreaker()}
		c.workers[id] = w
	}
	c.mu.Unlock()
	w.beat()
	c.registered.Add(1)
	c.logf("dist: worker %s registered at %s", id, url)
	c.saveState()
}

// alive snapshots the assignable workers — within their heartbeat lease and
// not quarantined — sorted by id so shard assignment is deterministic given
// a membership set.
func (c *Coordinator) alive() []*remoteWorker {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*remoteWorker
	for _, w := range c.workers {
		if w.aliveAt(c.cfg.TTL) && w.breaker.allow() {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// eligible is alive minus the workers this operation has already given up
// on. Skipping a quarantined worker is a degradation event for the run: the
// query is executing below the full registered fleet.
func (c *Coordinator) eligible(run *queryRun) []*remoteWorker {
	c.mu.Lock()
	quarantined := false
	var out []*remoteWorker
	for _, w := range c.workers {
		if !w.aliveAt(c.cfg.TTL) {
			continue
		}
		if run.isBad(w.id) {
			// Already failed this operation: its exclusion was noted as
			// worker_lost when it failed, not as a quarantine skip.
			continue
		}
		if !w.breaker.allow() {
			quarantined = true
			continue
		}
		out = append(out, w)
	}
	c.mu.Unlock()
	if quarantined {
		run.note(degradeQuarantine)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// WorkersAlive returns the number of assignable workers (leased, not
// quarantined).
func (c *Coordinator) WorkersAlive() int { return len(c.alive()) }

// WorkerInfos snapshots the registry for listings and stats.
func (c *Coordinator) WorkerInfos() []WorkerInfo {
	c.mu.Lock()
	ws := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
	out := make([]WorkerInfo, len(ws))
	for i, w := range ws {
		fails, _, _ := w.breaker.snapshot()
		w.mu.Lock()
		out[i] = WorkerInfo{
			ID: w.id, URL: w.url,
			Alive:       time.Since(w.lastBeat) <= c.cfg.TTL,
			LastBeatMs:  float64(time.Since(w.lastBeat)) / float64(time.Millisecond),
			Frames:      len(w.shipped),
			Quarantined: w.breaker.state() == breakerOpen,
			Fails:       fails,
		}
		w.mu.Unlock()
	}
	return out
}

// workerFailed records a dispatch failure after the retry policy gave up on
// a worker: the worker is excluded from the rest of this operation (its
// shards requeue onto the survivors — a degradation event), the failure
// counts against its breaker, and crossing K consecutive failures
// quarantines it for the cooldown. The worker stays registered either way:
// its frames and lease survive, and a post-cooldown heartbeat or successful
// probe rehabilitates it — no drop/re-register churn.
func (c *Coordinator) workerFailed(run *queryRun, w *remoteWorker, err error) {
	reason := requeueReason(w, err, c.cfg.TTL)
	run.markBad(w.id)
	run.note(degradeWorkerLost)
	c.requeueEvents.With(w.id, reason).Inc()
	if w.breaker.onFailure() {
		c.lost.Add(1)
		c.logf("dist: quarantining worker %s for %v (%s): %v", w.id, c.cfg.BreakerCooldown, reason, err)
		c.saveState()
		return
	}
	c.logf("dist: worker %s failed (%s), excluded for this query: %v", w.id, reason, err)
}

// requeueReason classifies why a worker's shards are being requeued:
// frame_missing when the worker kept losing the frame mid-request (store
// thrash), lease_expired when its heartbeat lease had already lapsed by
// failure time, dial_fail for everything else (transport error, 5xx).
func requeueReason(w *remoteWorker, err error, ttl time.Duration) string {
	var thrash frameThrashError
	switch {
	case errors.As(err, &thrash):
		return "frame_missing"
	case !w.aliveAt(ttl):
		return "lease_expired"
	default:
		return "dial_fail"
	}
}

// frameThrashError marks repeated frame loss on one worker mid-request (the
// retryable failure whose requeue reason is frame_missing).
type frameThrashError struct{ err error }

func (e frameThrashError) Error() string { return e.err.Error() }

// Stats is the coordinator gauge snapshot (wire form for /v1/stats).
type Stats struct {
	WorkersAlive       int    `json:"workers_alive"`
	WorkersRegistered  int    `json:"workers_registered"`
	WorkersQuarantined int    `json:"workers_quarantined"`
	Registrations      uint64 `json:"registrations"`
	WorkersLost        uint64 `json:"workers_lost"`
	Requeues           uint64 `json:"requeues"`
	FramesShipped      uint64 `json:"frames_shipped"`
	RemoteEvals        uint64 `json:"remote_evals"`
	RemoteShards       uint64 `json:"remote_shards"`
	RemoteFits         uint64 `json:"remote_fits"`
	LocalFallbacks     uint64 `json:"local_fallbacks"`
	Retries            uint64 `json:"retries"`
	RestoredWorkers    uint64 `json:"restored_workers"`
	PersistErrors      uint64 `json:"persist_errors,omitempty"`
	FaultsInjected     uint64 `json:"faults_injected,omitempty"`
}

// Stats snapshots the coordinator gauges.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	registered := len(c.workers)
	c.mu.Unlock()
	return Stats{
		WorkersAlive:       c.WorkersAlive(),
		WorkersRegistered:  registered,
		WorkersQuarantined: c.quarantinedCount(),
		Registrations:      c.registered.Load(),
		WorkersLost:        c.lost.Load(),
		Requeues:           c.requeues.Load(),
		FramesShipped:      c.framesShipped.Load(),
		RemoteEvals:        c.remoteEvals.Load(),
		RemoteShards:       c.remoteShards.Load(),
		RemoteFits:         c.remoteFits.Load(),
		LocalFallbacks:     c.localFallbacks.Load(),
		Retries:            c.retries.Load(),
		RestoredWorkers:    c.restored.Load(),
		PersistErrors:      c.persistErrors.Load(),
		FaultsInjected:     c.cfg.Fault.Fired(),
	}
}

// terminalError marks a worker response that must fail the whole operation
// (a malformed query fails identically everywhere — requeueing it would
// fail every worker in turn).
type terminalError struct{ err error }

func (e terminalError) Error() string { return e.err.Error() }

// postWorker POSTs a compute request to a worker, shipping the frame first
// and running every RPC under the run's unified retry policy (per-attempt
// timeouts, backoff with seeded jitter, the operation's retry budget). A
// 4xx response other than the frame_missing miss is terminal; transport
// failures and 5xx are retryable — the policy retries in place, and only
// once it gives up does the caller exclude the worker and requeue.
func (c *Coordinator) postWorker(ctx context.Context, run *queryRun, w *remoteWorker, frame *Frame, path string, req, dst any) error {
	frameID, _, err := frame.Payload()
	if err != nil {
		return terminalError{err}
	}
	// Best effort: the authoritative signal is the worker's own
	// frame_missing answer below (a restarted worker forgets frames the
	// coordinator shipped to its previous life).
	if err := c.retry(ctx, run, func(actx context.Context) error {
		return c.ensureFrame(actx, w, frame)
	}); err != nil {
		return err
	}
	for miss := 0; ; miss++ {
		var frameMissing bool
		err := c.retry(ctx, run, func(actx context.Context) error {
			frameMissing = false
			status, body, err := c.roundTrip(actx, w, http.MethodPost, path, req)
			if err != nil {
				return err
			}
			switch {
			case status == http.StatusOK:
				if err := json.Unmarshal(body, dst); err != nil {
					return fmt.Errorf("dist: decoding %s response from %s: %w", path, w.id, err)
				}
				// Charge the bytes of the one request the worker accepted —
				// the exact Content-Length the worker metered on its side, so
				// a retry-free query reconciles shipped == received.
				if raw, merr := json.Marshal(req); merr == nil {
					obs.MeterFromContext(ctx).AddDistBytesShipped(len(raw))
				}
				return nil
			case status == http.StatusNotFound && errCode(body) == codeFrameMissing:
				// Not a failed attempt: the outer loop re-ships the frame.
				frameMissing = true
				return nil
			case status >= 400 && status < 500:
				return terminalError{fmt.Errorf("dist: worker %s: %s", w.id, errMessage(body, status))}
			default:
				return fmt.Errorf("dist: worker %s: %s", w.id, errMessage(body, status))
			}
		})
		if err != nil {
			return err
		}
		if !frameMissing {
			return nil
		}
		if miss >= 2 {
			// The worker keeps losing the frame between ship and use (LRU
			// thrash across many hot sessions). That is a capacity problem,
			// not a query problem: report it retryable so the caller
			// requeues elsewhere or falls back locally instead of failing
			// the user's request.
			return frameThrashError{fmt.Errorf("dist: worker %s evicted frame %.12s twice mid-request (frame-store thrash; raise -worker-frames)", w.id, frameID)}
		}
		// The worker lost the frame (restart, LRU eviction): forget our
		// shipped mark and re-ship through the single-flight.
		w.mu.Lock()
		delete(w.shipped, frameID)
		w.mu.Unlock()
		if err := c.retry(ctx, run, func(actx context.Context) error {
			return c.ensureFrame(actx, w, frame)
		}); err != nil {
			return err
		}
	}
}

// ensureFrame makes sure the worker holds the frame, shipping it at most
// once per (worker, frame) at a time: concurrent cold requests (a how-to's
// parallel candidate fits, a batch fan-out) wait for the one in-flight
// upload instead of each PUTting the full snapshot.
func (c *Coordinator) ensureFrame(ctx context.Context, w *remoteWorker, frame *Frame) error {
	id, _, err := frame.Payload()
	if err != nil {
		return terminalError{err}
	}
	// A delta frame is only applicable on a worker that holds its parent:
	// ensure the chain bottom-up before shipping the delta, so an append on
	// top of an already-shipped base moves only the new rows. (A worker that
	// evicted the base between the two PUTs answers frame_missing, handled
	// below in shipFrame.)
	if p := frame.Parent(); p != nil {
		if err := c.ensureFrame(ctx, w, p); err != nil {
			return err
		}
	}
	for {
		w.mu.Lock()
		if w.shipped[id] {
			w.mu.Unlock()
			return nil
		}
		ch, busy := w.shipping[id]
		if !busy {
			if w.shipping == nil {
				w.shipping = make(map[string]chan struct{})
			}
			ch = make(chan struct{})
			w.shipping[id] = ch
			w.mu.Unlock()
			err := c.shipFrame(ctx, w, frame) // marks shipped on success
			w.mu.Lock()
			delete(w.shipping, id)
			w.mu.Unlock()
			close(ch)
			return err
		}
		w.mu.Unlock()
		select {
		case <-ch:
			// The in-flight ship finished; re-check (a failed ship loops
			// back and this caller becomes the next shipper).
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func errCode(body []byte) string {
	var e errorBody
	_ = json.Unmarshal(body, &e)
	return e.Code
}

func errMessage(body []byte, status int) string {
	var e errorBody
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Sprintf("status %d: %s", status, e.Error)
	}
	return fmt.Sprintf("status %d", status)
}

func (c *Coordinator) roundTrip(ctx context.Context, w *remoteWorker, method, path string, payload any) (int, []byte, error) {
	if err := c.faultHit(fault.PointWorkerDial); err != nil {
		return 0, nil, err
	}
	var body io.Reader
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			return 0, nil, terminalError{err}
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.url+path, body)
	if err != nil {
		return 0, nil, terminalError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	setSecret(req, c.cfg.Secret)
	if traceID := obs.TraceIDFromContext(ctx); traceID != "" {
		// Cross-process trace propagation: a stamped compute request asks the
		// worker to trace its evaluation and return the span tree in the
		// response body for grafting.
		req.Header.Set(obs.TraceIDHeader, traceID)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// shipFrame PUTs the frame body to a worker (first touch co-location).
func (c *Coordinator) shipFrame(ctx context.Context, w *remoteWorker, frame *Frame) error {
	id, body, err := frame.Payload()
	if err != nil {
		return terminalError{err}
	}
	if err := c.faultHit(fault.PointFrameShip); err != nil {
		return err
	}
	_, ssp := obs.Start(ctx, "ship_frame")
	defer ssp.End()
	ssp.Set("worker", w.id)
	ssp.Set("bytes", len(body))
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.url+pathFrames+id, bytes.NewReader(body))
	if err != nil {
		return terminalError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	setSecret(req, c.cfg.Secret)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusNotFound && errCode(raw) == codeFrameMissing && frame.Parent() != nil {
		// The worker evicted (or never durably held) the delta's base
		// between the chain ship and this PUT. Forget the parent's shipped
		// mark so the next ensureFrame re-ships the chain; report the miss
		// retryable so the caller's retry policy drives that re-ship.
		if pid, _, perr := frame.Parent().Payload(); perr == nil {
			w.mu.Lock()
			delete(w.shipped, pid)
			w.mu.Unlock()
		}
		return fmt.Errorf("dist: shipping delta frame to %s: %s", w.id, errMessage(raw, resp.StatusCode))
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: shipping frame to %s: %s", w.id, errMessage(raw, resp.StatusCode))
	}
	w.markFrame(id)
	obs.MeterFromContext(ctx).AddFrameBytes(len(body))
	c.framesShipped.Add(1)
	c.logf("dist: shipped frame %.12s to worker %s (%d bytes)", id, w.id, len(body))
	c.saveState()
	return nil
}

// splitContiguous partitions ids into at most n contiguous chunks of
// near-equal size (the per-worker shard assignment).
func splitContiguous(ids []int, n int) [][]int {
	if n > len(ids) {
		n = len(ids)
	}
	chunks := make([][]int, 0, n)
	for w := 0; w < n; w++ {
		lo := w * len(ids) / n
		hi := (w + 1) * len(ids) / n
		if lo < hi {
			chunks = append(chunks, ids[lo:hi])
		}
	}
	return chunks
}

// EvalSpec carries one distributed what-if evaluation.
type EvalSpec struct {
	DB      *relation.Database
	Model   *causal.Model
	Frame   *Frame
	Query   string
	Options engine.Options
	// Progress, when non-nil, receives "shards" updates as remote shard
	// batches complete (the jobs layer surfaces them as shards_done/total).
	Progress engine.ProgressFunc
}

// EvaluateWhatIf runs one what-if query with its plan shards distributed
// over the live workers. The canonical plan is resolved locally (the view is
// cached), contiguous shard ranges go to the workers sorted by id, lost
// workers' ranges are requeued onto the survivors — or evaluated locally
// when none remain — and the partials reduce in plan order, making the
// result bit-identical to a local run for every membership history.
func (c *Coordinator) EvaluateWhatIf(ctx context.Context, spec EvalSpec) (*engine.Result, error) {
	start := time.Now()
	q, err := hyperql.ParseWhatIf(spec.Query)
	if err != nil {
		return nil, err
	}
	planShards, _, err := engine.PlanContext(ctx, spec.DB, spec.Model, q, spec.Options)
	if err != nil {
		return nil, err
	}
	if planShards == 0 {
		// Empty view: nothing to distribute.
		return engine.EvaluateContext(ctx, spec.DB, spec.Model, q, spec.Options)
	}
	// dist_eval is the distributed fan-out's span: one worker_eval child per
	// assigned shard range (grafting the worker's own tree when it returned
	// one), so a traced distributed query reads as a single end-to-end tree.
	ctx, dsp := obs.Start(ctx, "dist_eval")
	defer dsp.End()
	dsp.Set("plan", planShards)
	run := newQueryRun(c.cfg.Retry)
	pending := make([]int, planShards)
	for i := range pending {
		pending[i] = i
	}

	var (
		mu         sync.Mutex
		partials   = make([]engine.ShardPartial, 0, planShards)
		meta       engine.PartialMeta
		haveMeta   bool
		metaErr    error
		usedRemote = map[string]bool{}
		doneShards int
		localDone  int
	)
	report := func() {
		if spec.Progress != nil {
			spec.Progress("shards", doneShards, planShards)
		}
	}
	absorb := func(workerID string, pr *engine.PartialResult, n int) {
		if !haveMeta {
			meta = pr.Meta
			haveMeta = true
		} else if !meta.Consistent(pr.Meta) {
			metaErr = fmt.Errorf("dist: worker %s evaluation metadata diverges from the merged plan (determinism violation): %+v vs %+v",
				workerID, pr.Meta, meta)
			return
		} else if pr.Meta.TrainedModels > meta.TrainedModels {
			// Diagnostics only: each worker trains the models its shards
			// demanded; report the widest set.
			meta.TrainedModels = pr.Meta.TrainedModels
		}
		partials = append(partials, pr.Partials...)
		doneShards += n
		report()
	}

	for round := 0; len(pending) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ws := c.eligible(run)
		if len(ws) == 0 {
			// Local fallback — the ladder's last rung: the coordinator
			// process evaluates whatever is left. Same plan, same partials,
			// same merge.
			c.localFallbacks.Add(1)
			run.note(degradeLocalFallback)
			lopts := spec.Options
			lopts.Progress = nil
			lopts.RemoteFit = nil
			pr, err := engine.EvaluatePartialContext(ctx, spec.DB, spec.Model, q, lopts, pending)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			absorb("local", pr, len(pending))
			localDone += len(pending)
			err = metaErr
			mu.Unlock()
			if err != nil {
				// The locally computed metadata diverges from what a worker
				// already delivered: surface the determinism violation, not
				// a confusing partial-count mismatch from the merge.
				return nil, err
			}
			pending = nil
			break
		}
		chunks := splitContiguous(pending, len(ws))
		var failed []int
		var wg sync.WaitGroup
		for i, chunk := range chunks {
			wg.Add(1)
			go func(w *remoteWorker, chunk []int) {
				defer wg.Done()
				wctx, wsp := obs.Start(ctx, "worker_eval")
				wsp.Set("worker", w.id)
				wsp.Set("shards", len(chunk))
				assignID := c.beginAssignment(w.id, pathEval, chunk)
				var resp EvalResponse
				err := c.postWorker(wctx, run, w, spec.Frame, pathEval, EvalRequest{
					Frame:   mustFrameID(spec.Frame),
					Query:   spec.Query,
					Options: WireOptionsFrom(spec.Options),
					Shards:  chunk,
				}, &resp)
				c.endAssignment(assignID)
				wsp.Set("error", err != nil)
				if err == nil {
					wsp.Graft(resp.Spans)
				}
				wsp.End()
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					var term terminalError
					if errors.As(err, &term) || ctx.Err() != nil {
						if metaErr == nil {
							metaErr = err
						}
						return
					}
					c.workerFailed(run, w, err)
					failed = append(failed, chunk...)
					return
				}
				w.breaker.onSuccess()
				// Fold the worker's cost vector into the query meter (the
				// worker_* ledger) and charge the coordinator-side dispatch
				// ledger; the two sides must agree when retries == 0.
				meter := obs.MeterFromContext(ctx)
				meter.Fold(resp.Meter)
				meter.AddRemoteShards(len(chunk))
				absorb(w.id, &resp.PartialResult, len(chunk))
				usedRemote[w.id] = true
			}(ws[i], chunk)
		}
		wg.Wait()
		if metaErr != nil {
			return nil, metaErr
		}
		if len(failed) > 0 {
			sort.Ints(failed)
			c.requeues.Add(1)
			c.logf("dist: requeueing %d shards after worker loss (round %d)", len(failed), round)
		}
		pending = failed
	}

	res, err := engine.MergePartials(meta, partials)
	if err != nil {
		return nil, err
	}
	res.Placement = "workers"
	res.RemoteWorkers = len(usedRemote)
	res.ShardWorkers = len(usedRemote)
	if res.ShardWorkers == 0 {
		res.ShardWorkers = 1
	}
	res.Total = time.Since(start)
	res.EvalTime = res.Total
	res.Degraded, res.DegradedReason = run.degraded()
	dsp.Set("workers", len(usedRemote))
	dsp.Set("local_shards", localDone)
	if res.Degraded {
		dsp.Set("degraded", res.DegradedReason)
	}
	c.remoteEvals.Add(1)
	c.remoteShards.Add(uint64(planShards - localDone))
	return res, nil
}

func mustFrameID(f *Frame) string {
	id, _, _ := f.Payload()
	return id
}

// Fitter returns a session-bound fitter (an engine.RemoteFitter) that
// distributes shard-mergeable estimator fits (freq cells and support sets)
// over the live workers, with the same requeue-on-loss policy as
// evaluation. When no workers survive it returns an error and the engine's
// local fit takes over — bit-identical either way. Callers wanting
// per-request diagnostics create one fitter per request and read
// WorkersUsed afterwards.
func (c *Coordinator) Fitter(frame *Frame) *SessionFitter {
	return &SessionFitter{c: c, frame: frame, run: newQueryRun(c.cfg.Retry)}
}

// SessionFitter implements engine.RemoteFitter over the coordinator's
// worker pool for one session frame.
type SessionFitter struct {
	c     *Coordinator
	frame *Frame
	run   *queryRun // the request's resilience scope (budget, bad set, ladder)

	mu   sync.Mutex
	used map[string]bool // worker ids that contributed at least one part
}

// WorkersUsed reports how many distinct workers contributed fit parts
// through this fitter (0 when every fit was cache-warm or fell back local).
func (f *SessionFitter) WorkersUsed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.used)
}

// Degraded reports whether the fits routed through this fitter fell below
// the full healthy fleet, and why (the same ladder codes as evaluation).
func (f *SessionFitter) Degraded() (bool, string) {
	return f.run.degraded()
}

func (f *SessionFitter) markUsed(id string) {
	f.mu.Lock()
	if f.used == nil {
		f.used = make(map[string]bool)
	}
	f.used[id] = true
	f.mu.Unlock()
}

func (f *SessionFitter) FitFreqParts(ctx context.Context, query string, o engine.Options, mask uint64, weighted bool, fitShards int) ([]*ml.FreqWire, error) {
	resp, err := f.fit(ctx, query, o, mask, weighted, true, false, fitShards)
	if err != nil {
		return nil, err
	}
	return resp.parts, nil
}

func (f *SessionFitter) SupportParts(ctx context.Context, query string, o engine.Options, fitShards int) ([]*ml.SupportWire, error) {
	resp, err := f.fit(ctx, query, o, 0, false, false, true, fitShards)
	if err != nil {
		return nil, err
	}
	return resp.support, nil
}

type fitParts struct {
	parts   []*ml.FreqWire
	support []*ml.SupportWire
}

// fit distributes one shard-mergeable fit over the live workers, collecting
// one part per fit-plan shard (in plan order) with requeue on worker loss.
func (f *SessionFitter) fit(ctx context.Context, query string, o engine.Options, mask uint64, weighted, cells, support bool, fitShards int) (*fitParts, error) {
	if fitShards <= 0 {
		return nil, fmt.Errorf("dist: fit plan has %d shards", fitShards)
	}
	c := f.c
	out := &fitParts{}
	if cells {
		out.parts = make([]*ml.FreqWire, fitShards)
	}
	if support {
		out.support = make([]*ml.SupportWire, fitShards)
	}
	pending := make([]int, fitShards)
	for i := range pending {
		pending[i] = i
	}
	wireOpts := WireOptionsFrom(o)
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ws := c.eligible(f.run)
		if len(ws) == 0 {
			// The engine reacts to ErrNoWorkers by fitting locally — the
			// fit path's last ladder rung.
			f.run.note(degradeLocalFallback)
			return nil, ErrNoWorkers
		}
		chunks := splitContiguous(pending, len(ws))
		var (
			mu      sync.Mutex
			failed  []int
			termErr error
			wg      sync.WaitGroup
		)
		for i, chunk := range chunks {
			wg.Add(1)
			go func(w *remoteWorker, chunk []int) {
				defer wg.Done()
				wctx, wsp := obs.Start(ctx, "worker_fit")
				wsp.Set("worker", w.id)
				wsp.Set("shards", len(chunk))
				defer wsp.End()
				assignID := c.beginAssignment(w.id, pathFit, chunk)
				defer c.endAssignment(assignID)
				var resp FitResponse
				err := c.postWorker(wctx, f.run, w, f.frame, pathFit, FitRequest{
					Frame:    mustFrameID(f.frame),
					Query:    query,
					Options:  wireOpts,
					Mask:     strconv.FormatUint(mask, 10),
					Weighted: weighted,
					Cells:    cells,
					Support:  support,
					Shards:   chunk,
				}, &resp)
				wsp.Set("error", err != nil)
				if err == nil {
					wsp.Graft(resp.Spans)
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					var term terminalError
					if errors.As(err, &term) || ctx.Err() != nil {
						if termErr == nil {
							termErr = err
						}
						return
					}
					c.workerFailed(f.run, w, err)
					failed = append(failed, chunk...)
					return
				}
				w.breaker.onSuccess()
				obs.MeterFromContext(ctx).Fold(resp.Meter)
				if resp.FitPlan != fitShards ||
					(cells && len(resp.Parts) != len(chunk)) ||
					(support && len(resp.Support) != len(chunk)) {
					termErr = fmt.Errorf("dist: worker %s fit shape mismatch (plan %d vs %d, %d/%d parts for %d shards)",
						w.id, resp.FitPlan, fitShards, len(resp.Parts), len(resp.Support), len(chunk))
					return
				}
				for j, s := range chunk {
					if cells {
						out.parts[s] = resp.Parts[j]
					}
					if support {
						out.support[s] = resp.Support[j]
					}
				}
				f.markUsed(w.id)
			}(ws[i], chunk)
		}
		wg.Wait()
		if termErr != nil {
			return nil, termErr
		}
		if len(failed) > 0 {
			sort.Ints(failed)
			c.requeues.Add(1)
		}
		pending = failed
	}
	c.remoteFits.Add(1)
	return out, nil
}
