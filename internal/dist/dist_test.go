package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyper/internal/causal"
	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

func g17(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

func distDataset(t testing.TB, name string) (*relation.Database, *causal.Model) {
	t.Helper()
	switch name {
	case "toy":
		return dataset.Toy()
	case "german":
		g := dataset.GermanSyn(1000, 7)
		return g.DB, g.Model
	default:
		t.Fatalf("unknown dataset %q", name)
		return nil, nil
	}
}

// testWorker is one in-process worker behind a real HTTP listener, with
// request counters and a kill switch that aborts its next eval mid-request.
type testWorker struct {
	w        *Worker
	ts       *httptest.Server
	puts     atomic.Int64
	evals    atomic.Int64
	killEval atomic.Bool
}

func newTestWorker(t *testing.T) *testWorker {
	t.Helper()
	tw := &testWorker{w: NewWorker(WorkerConfig{})}
	inner := tw.w.Handler()
	tw.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPut:
			tw.puts.Add(1)
		case r.URL.Path == pathEval:
			tw.evals.Add(1)
			if tw.killEval.Load() {
				// Die mid-evaluation: the connection is severed without a
				// response, exactly what a killed worker process looks like
				// to the coordinator.
				panic(http.ErrAbortHandler)
			}
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(tw.ts.Close)
	return tw
}

func newTestCoordinator(t *testing.T, workers ...*testWorker) (*Coordinator, *http.Client) {
	t.Helper()
	return newTestCoordinatorCfg(t, CoordinatorConfig{}, workers...)
}

func newTestCoordinatorCfg(t *testing.T, cfg CoordinatorConfig, workers ...*testWorker) (*Coordinator, *http.Client) {
	t.Helper()
	client := &http.Client{}
	t.Cleanup(client.CloseIdleConnections)
	cfg.TTL = time.Minute
	cfg.Client = client
	c := NewCoordinator(cfg)
	for i, tw := range workers {
		c.Register("w"+strconv.Itoa(i+1), tw.ts.URL)
	}
	return c, client
}

// TestDistributedEvalGolden pins the distributed path against the same
// golden constants the engine parity tests pin for the single-process path:
// 2 real HTTP workers, each rebuilding the database from the shipped frame,
// must reproduce the pinned value to the last bit.
func TestDistributedEvalGolden(t *testing.T) {
	goldens := []struct {
		name, ds, query, value string
	}{
		{"german-freq-count", "german", `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, "875.68587543540139"},
		{"toy-avg-forest", "toy", `USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
			AVG(T2.Rating) AS Rtng
			FROM Product AS T1, Review AS T2
			WHERE T1.PID = T2.PID
			GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
			WHEN Brand = 'Asus'
			UPDATE(Price) = 1.1 * PRE(Price)
			OUTPUT AVG(POST(Rtng))
			FOR PRE(Category) = 'Laptop'`, "2.6302810387072708"},
	}
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			w1, w2 := newTestWorker(t), newTestWorker(t)
			c, _ := newTestCoordinator(t, w1, w2)
			db, model := distDataset(t, g.ds)
			res, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
				DB: db, Model: model, Frame: NewFrame(db, model),
				Query: g.query, Options: engine.Options{Seed: 7},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := g17(res.Value); got != g.value {
				t.Fatalf("distributed value %s != pinned golden %s", got, g.value)
			}
			if res.Placement != "workers" {
				t.Fatalf("placement %q, want workers", res.Placement)
			}
		})
	}
}

// TestDistributedEvalParity checks multi-shard, multi-worker distribution
// against the local run bit for bit, and that the frame ships exactly once
// per worker while repeat queries hit warm frames.
func TestDistributedEvalParity(t *testing.T) {
	queries := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
		`USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`,
	}
	opts := engine.Options{Seed: 7, ShardRows: 256} // 1000 rows -> 4 plan shards
	workers := []*testWorker{newTestWorker(t), newTestWorker(t), newTestWorker(t)}
	c, _ := newTestCoordinator(t, workers...)
	db, model := distDataset(t, "german")
	frame := NewFrame(db, model)
	var progressMax atomic.Int64
	for _, src := range queries {
		ldb, lmodel := distDataset(t, "german")
		q, err := hyperql.ParseWhatIf(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvaluateContext(context.Background(), ldb, lmodel, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
			DB: db, Model: model, Frame: frame, Query: src, Options: opts,
			Progress: func(stage string, done, total int) {
				if stage == "shards" && int64(done) > progressMax.Load() {
					progressMax.Store(int64(done))
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if g17(got.Value) != g17(want.Value) || g17(got.Sum) != g17(want.Sum) || g17(got.Count) != g17(want.Count) {
			t.Fatalf("%s: distributed %s/%s/%s != local %s/%s/%s", src,
				g17(got.Value), g17(got.Sum), g17(got.Count), g17(want.Value), g17(want.Sum), g17(want.Count))
		}
		if got.EstimatorUsed != want.EstimatorUsed || got.Blocks != want.Blocks || got.ShardPlan != want.ShardPlan {
			t.Fatalf("%s: metadata diverges: %+v vs %+v", src, got, want)
		}
		if got.RemoteWorkers < 2 {
			t.Fatalf("%s: only %d remote workers contributed (plan %d)", src, got.RemoteWorkers, got.ShardPlan)
		}
	}
	if progressMax.Load() != 4 {
		t.Fatalf("shards progress peaked at %d, want 4", progressMax.Load())
	}
	for i, tw := range workers {
		if got := tw.puts.Load(); got != 1 {
			t.Fatalf("worker %d received %d frame ships, want exactly 1 (first touch only)", i+1, got)
		}
	}
	st := c.Stats()
	if st.RemoteEvals != uint64(len(queries)) || st.FramesShipped != 3 || st.WorkersLost != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestWorkerLossRequeue kills one worker mid-evaluation and asserts the
// coordinator requeues its shards onto the survivor, quarantines the dead
// worker (it stays registered, excluded from assignment), reports the
// degradation, keeps the result bit-identical, and leaks no goroutines.
// (CI runs this under -race.)
func TestWorkerLossRequeue(t *testing.T) {
	opts := engine.Options{Seed: 7, ShardRows: 128} // 1000 rows -> 8 plan shards
	src := `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`
	ldb, lmodel := distDataset(t, "german")
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvaluateContext(context.Background(), ldb, lmodel, q, opts)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	w1, w2 := newTestWorker(t), newTestWorker(t)
	// One failure quarantines, one attempt per RPC: the dead worker is hit
	// exactly once and every later round skips it.
	c, client := newTestCoordinatorCfg(t, CoordinatorConfig{
		BreakerFailures: 1,
		Retry:           RetryPolicy{MaxAttempts: 1},
	}, w1, w2)
	w2.killEval.Store(true) // w2 dies on its first eval dispatch

	db, model := distDataset(t, "german")
	res, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db, Model: model, Frame: NewFrame(db, model), Query: src, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g17(res.Value) != g17(want.Value) {
		t.Fatalf("post-requeue value %s != local %s", g17(res.Value), g17(want.Value))
	}
	if res.RemoteWorkers != 1 {
		t.Fatalf("RemoteWorkers %d, want 1 (the survivor)", res.RemoteWorkers)
	}
	if !res.Degraded || res.DegradedReason != "worker_lost" {
		t.Fatalf("degraded=%v reason=%q, want true/worker_lost", res.Degraded, res.DegradedReason)
	}
	st := c.Stats()
	if st.WorkersLost != 1 || st.Requeues != 1 || st.WorkersQuarantined != 1 {
		t.Fatalf("stats after loss: %+v (want 1 lost, 1 requeue, 1 quarantined)", st)
	}
	if st.WorkersAlive != 1 || st.WorkersRegistered != 2 {
		t.Fatalf("alive=%d registered=%d, want 1 assignable of 2 registered (quarantine, not drop)", st.WorkersAlive, st.WorkersRegistered)
	}
	if w2.evals.Load() != 1 || w1.evals.Load() < 2 {
		t.Fatalf("eval counts: w1=%d w2=%d (w2 must have died on its only dispatch)", w1.evals.Load(), w2.evals.Load())
	}

	// All workers gone mid-stream: the coordinator falls back to local
	// evaluation and still produces the identical result, reporting the
	// full degradation ladder.
	w1.killEval.Store(true)
	res2, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db, Model: model, Frame: NewFrame(db, model), Query: src, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g17(res2.Value) != g17(want.Value) {
		t.Fatalf("local-fallback value %s != local %s", g17(res2.Value), g17(want.Value))
	}
	if c.Stats().LocalFallbacks != 1 {
		t.Fatalf("local fallbacks %d, want 1", c.Stats().LocalFallbacks)
	}
	if !res2.Degraded || res2.DegradedReason != "worker_lost,quarantine,local_fallback" {
		t.Fatalf("degraded=%v reason=%q, want the full ladder", res2.Degraded, res2.DegradedReason)
	}

	w1.ts.Close()
	w2.ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestRemoteFitOverHTTP drives the engine's remote-fit hook through a real
// worker: every shard-mergeable fit (cells + support) runs off-process and
// the result matches the purely local evaluation bit for bit.
func TestRemoteFitOverHTTP(t *testing.T) {
	opts := engine.Options{Seed: 7, ShardRows: 256}
	src := `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`
	ldb, lmodel := distDataset(t, "german")
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvaluateContext(context.Background(), ldb, lmodel, q, opts)
	if err != nil {
		t.Fatal(err)
	}

	w1 := newTestWorker(t)
	c, _ := newTestCoordinator(t, w1)
	db, model := distDataset(t, "german")
	ropts := opts
	ropts.RemoteFit = c.Fitter(NewFrame(db, model))
	got, err := engine.EvaluateContext(context.Background(), db, model, q, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if g17(got.Value) != g17(want.Value) {
		t.Fatalf("remote-fit value %s != local %s", g17(got.Value), g17(want.Value))
	}
	if st := c.Stats(); st.RemoteFits == 0 {
		t.Fatalf("no remote fits recorded: %+v", st)
	}
}

// TestHeartbeatLease exercises registration, lease expiry, and heartbeats
// through the coordinator's HTTP surface.
func TestHeartbeatLease(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{TTL: 60 * time.Millisecond})
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	post := func(path string, body string) int {
		req, err := http.NewRequest(http.MethodPost, cts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req, _ = http.NewRequest(http.MethodPost, cts.URL+path, strings.NewReader(body))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(pathWorkers, `{"id":"wA","url":"http://127.0.0.1:1"}`); got != http.StatusOK {
		t.Fatalf("register status %d", got)
	}
	if c.WorkersAlive() != 1 {
		t.Fatal("worker not alive after register")
	}
	// Heartbeats keep the lease.
	for i := 0; i < 3; i++ {
		time.Sleep(30 * time.Millisecond)
		if got := post(pathWorkers+"/wA/beat", ""); got != http.StatusOK {
			t.Fatalf("beat status %d", got)
		}
	}
	if c.WorkersAlive() != 1 {
		t.Fatal("worker lease lapsed despite heartbeats")
	}
	// Lapse the lease: the worker drops out of the assignable set.
	time.Sleep(100 * time.Millisecond)
	if c.WorkersAlive() != 0 {
		t.Fatal("worker still alive past its lease")
	}
	// A beat for an unknown id is 404 (the worker must re-register).
	if got := post(pathWorkers+"/ghost/beat", ""); got != http.StatusNotFound {
		t.Fatalf("ghost beat status %d, want 404", got)
	}
}

// TestFrameRoundTrip proves the snapshot codec is bit-exact: every value of
// every relation, the foreign keys, and the model survive the trip, and the
// rebuilt database reproduces a golden evaluation exactly.
func TestFrameRoundTrip(t *testing.T) {
	db, model := distDataset(t, "toy")
	id1, body, err := NewFrame(db, model).Payload()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	db2, model2, err := snap.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Content addressing: the rebuilt database re-encodes to the same id.
	id2, _, err := NewFrame(db2, model2).Payload()
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("frame id changed across a round trip: %.12s -> %.12s", id1, id2)
	}
	// Exact value fidelity, row order included.
	for _, name := range db.Names() {
		a, b := db.Relation(name), db2.Relation(name)
		if a.Len() != b.Len() {
			t.Fatalf("%s: %d rows -> %d rows", name, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			for j, v := range a.Row(i) {
				w := b.Row(i)[j]
				if v.Kind() != w.Kind() || !v.Equal(w) {
					t.Fatalf("%s[%d][%d]: %v (%s) -> %v (%s)", name, i, j, v, v.Kind(), w, w.Kind())
				}
			}
		}
	}
	// The rebuilt pair reproduces the pinned golden bit for bit.
	q, err := hyperql.ParseWhatIf(`USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand,
		AVG(T2.Rating) AS Rtng
		FROM Product AS T1, Review AS T2
		WHERE T1.PID = T2.PID
		GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand)
		WHEN Brand = 'Asus'
		UPDATE(Price) = 1.1 * PRE(Price)
		OUTPUT AVG(POST(Rtng))
		FOR PRE(Category) = 'Laptop'`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Evaluate(db2, model2, q, engine.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := g17(res.Value); got != "2.6302810387072708" {
		t.Fatalf("rebuilt-frame evaluation %s != golden", got)
	}
}

func TestValueCodec(t *testing.T) {
	vals := []relation.Value{
		relation.Null,
		relation.Bool(true), relation.Bool(false),
		relation.Int(0), relation.Int(-42), relation.Int(1 << 62),
		relation.Float(2.0), relation.Float(0.1), relation.Float(-1e-300), relation.Float(1.7976931348623157e308),
		relation.String(""), relation.String("2"), relation.String("true"), relation.String("NULL"),
		relation.String("héllo,\"world\"\n"),
	}
	for _, v := range vals {
		got, err := decodeValue(encodeValue(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got.Kind() != v.Kind() || !got.Equal(v) {
			t.Fatalf("%v (%s) round-tripped to %v (%s)", v, v.Kind(), got, got.Kind())
		}
	}
}

// TestDistSecret pins the shared-secret gate on both ends: registration
// without the secret is rejected, worker compute endpoints reject
// unauthenticated callers, and a matched pair works end to end.
func TestDistSecret(t *testing.T) {
	w := NewWorker(WorkerConfig{Secret: "s3cret"})
	wts := httptest.NewServer(w.Handler())
	defer wts.Close()

	c := NewCoordinator(CoordinatorConfig{TTL: time.Minute, Secret: "s3cret"})
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	// Registration without (or with a wrong) secret: 401, registry empty.
	for _, auth := range []string{"", "Bearer wrong"} {
		req, err := http.NewRequest(http.MethodPost, cts.URL+pathWorkers,
			strings.NewReader(`{"id":"evil","url":"http://127.0.0.1:1"}`))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("register auth=%q: status %d, want 401", auth, resp.StatusCode)
		}
	}
	if c.WorkersAlive() != 0 {
		t.Fatal("unauthenticated registration reached the registry")
	}

	// Worker compute endpoints reject unauthenticated callers outright.
	resp, err := http.Post(wts.URL+pathEval, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated eval: status %d, want 401", resp.StatusCode)
	}

	// A matched secret pair distributes normally, bit-identical as ever.
	c.Register("w1", wts.URL)
	db, model := distDataset(t, "german")
	opts := engine.Options{Seed: 7, ShardRows: 256}
	res, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db, Model: model, Frame: NewFrame(db, model),
		Query: `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteWorkers != 1 {
		t.Fatalf("secured pair did not distribute: %+v", res)
	}
}

// TestFrameShipSingleFlight proves concurrent cold requests against one
// worker upload the frame exactly once: the in-flight ship is shared, not
// raced.
func TestFrameShipSingleFlight(t *testing.T) {
	tw := newTestWorker(t)
	c, _ := newTestCoordinator(t, tw)
	db, model := distDataset(t, "german")
	frame := NewFrame(db, model)
	fitter := c.Fitter(frame)
	opts := engine.Options{Seed: 7, ShardRows: 256}

	const conc = 8
	var wg sync.WaitGroup
	errs := make([]error, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct masks -> distinct fits, all racing on the cold frame.
			_, errs[i] = fitter.SupportParts(context.Background(),
				`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, opts, 4)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fit %d: %v", i, err)
		}
	}
	if got := tw.puts.Load(); got != 1 {
		t.Fatalf("frame shipped %d times under %d concurrent cold fits, want exactly 1", got, conc)
	}
}
