package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sync"
	"sync/atomic"

	"hyper/internal/causal"
	"hyper/internal/engine"
	"hyper/internal/fault"
	"hyper/internal/hyperql"
	"hyper/internal/obs"
	"hyper/internal/relation"
)

// WorkerConfig tunes a worker; the zero value is usable.
type WorkerConfig struct {
	// MaxFrames bounds the frame store (LRU eviction). Default 8.
	MaxFrames int
	// MaxBodyBytes caps frame uploads. Default 256MB.
	MaxBodyBytes int64
	// CacheEntries bounds each frame's engine artifact cache. Default 256.
	CacheEntries int
	// Secret, when non-empty, requires every compute request (frames, eval,
	// fit) to present the shared dist secret — set it when untrusted peers
	// can reach the worker's listener, mirroring the coordinator's Secret.
	Secret string
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
	// Fault, when non-nil, is the armed fault injector consulted at the
	// worker-side injection points (eval, fit). Nil — the production
	// default — costs one pointer check per request.
	Fault *fault.Injector
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxFrames <= 0 {
		c.MaxFrames = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	return c
}

// Worker serves the shard-transport compute endpoints: it stores shipped
// frames (content-addressed, LRU-bounded) and evaluates per-shard what-if
// partials and shard-mergeable fits against them. A worker is stateless
// beyond its frame cache: every computation re-derives the deterministic
// evaluation state from frame + query + options, so workers can join, die,
// and rejoin freely without affecting any result.
type Worker struct {
	cfg WorkerConfig

	mu     sync.Mutex
	frames map[string]*workerFrame
	order  []string // LRU: least recently used first

	// inflight counts eval/fit requests currently executing, so a draining
	// worker (SIGTERM) can finish them before deregistering.
	inflight atomic.Int64

	// Observability: a per-worker metric registry (served at GET /metrics on
	// the worker's own mux) and a trace ring holding the span trees of
	// coordinator-traced compute requests (GET /v1/traces).
	metrics    *obs.Registry
	traces     *obs.Recorder
	evals      *obs.Counter // eval requests answered successfully
	evalShards *obs.Counter // plan shards evaluated (successful evals only)
	fits       *obs.Counter // fit requests answered successfully
	frameBytes *obs.Counter // frame bytes accepted into the store
	evictions  *obs.Counter // frames evicted by the LRU bound
}

// workerFrame is one decoded frame plus its engine cache (views, blocks,
// trained estimators are shared across the queries hitting this frame).
type workerFrame struct {
	db    *relation.Database
	model *causal.Model
	cache *engine.Cache
}

// NewWorker returns a worker with an empty frame store.
func NewWorker(cfg WorkerConfig) *Worker {
	w := &Worker{
		cfg:     cfg.withDefaults(),
		frames:  make(map[string]*workerFrame),
		metrics: obs.NewRegistry(),
		traces:  obs.NewRecorder(obs.DefaultTraceCapacity),
	}
	w.evals = w.metrics.Counter("hyper_worker_evals_total", "Eval requests answered successfully.")
	w.evalShards = w.metrics.Counter("hyper_worker_eval_shards_total", "Plan shards evaluated by this worker (successful evals only).")
	w.fits = w.metrics.Counter("hyper_worker_fits_total", "Fit requests answered successfully.")
	w.frameBytes = w.metrics.Counter("hyper_worker_frame_bytes_received_total", "Frame bytes accepted into the store.")
	w.evictions = w.metrics.Counter("hyper_worker_frame_evictions_total", "Frames evicted by the LRU bound.")
	w.metrics.GaugeFunc("hyper_worker_frames", "Frames currently in the store.",
		func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(len(w.frames)) })
	w.metrics.CounterFunc("hyper_worker_traces_recorded_total", "Coordinator-traced requests captured into the trace ring.",
		func() float64 { return float64(w.traces.Recorded()) })
	w.metrics.GaugeFunc("hyper_worker_inflight", "Eval/fit requests currently executing.",
		func() float64 { return float64(w.inflight.Load()) })
	obs.RegisterRuntimeMetrics(w.metrics)
	faultInjected := w.metrics.CounterVec("hyper_fault_injected_total",
		"Faults fired by the deterministic injector, by point and mode.", "point", "mode")
	w.cfg.Fault.SetOnFire(func(p fault.Point, m fault.Mode) {
		faultInjected.With(string(p), string(m)).Inc()
	})
	return w
}

// InFlight reports the eval/fit requests currently executing.
func (w *Worker) InFlight() int { return int(w.inflight.Load()) }

// Drain blocks until no eval/fit request is in flight or ctx expires —
// the graceful-shutdown half of the requeue contract: a SIGTERM'd worker
// finishes the shards it was assigned instead of forcing the coordinator
// through a retry/requeue round-trip.
func (w *Worker) Drain(ctx context.Context) error {
	for {
		if w.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist worker: drain timed out with %d requests in flight: %w", w.inflight.Load(), ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// injectFault consults the worker's injector at a request point. ModeError
// answers an injected 500 (the coordinator's retry policy sees a retryable
// status); ModeDrop — and a kill a test survived — aborts the connection
// without a response, what a crashed worker looks like on the wire. A real
// ModeKill exits the process inside Decide and never returns.
func (w *Worker) injectFault(rw http.ResponseWriter, p fault.Point) (proceed bool) {
	switch d := w.cfg.Fault.Decide(p); d.Mode {
	case fault.ModeError:
		writeError(rw, http.StatusInternalServerError, "", "%v", d.Err)
		return false
	case fault.ModeDrop, fault.ModeKill:
		panic(http.ErrAbortHandler)
	default:
		return true
	}
}

// Metrics returns the worker's metric registry (served at GET /metrics).
func (w *Worker) Metrics() *obs.Registry { return w.metrics }

// Traces returns the worker's trace ring.
func (w *Worker) Traces() *obs.Recorder { return w.traces }

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	guarded := func(fn http.HandlerFunc) http.HandlerFunc {
		return func(rw http.ResponseWriter, r *http.Request) {
			if !checkSecret(rw, r, w.cfg.Secret) {
				return
			}
			fn(rw, r)
		}
	}
	mux.HandleFunc("GET "+pathPing, w.handlePing)
	mux.HandleFunc("PUT "+pathFrames+"{id}", guarded(w.handlePutFrame))
	mux.HandleFunc("POST "+pathEval, guarded(w.handleEval))
	mux.HandleFunc("POST "+pathFit, guarded(w.handleFit))
	// Observability surface, unauthenticated like the ping: metric values
	// and span shapes carry no session data.
	mux.Handle("GET /metrics", w.metrics.Handler())
	mux.Handle("GET /v1/traces", w.traces.ListHandler())
	mux.Handle("GET /v1/traces/{id}", w.traces.GetHandler())
	return mux
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// FrameIDs returns the stored frame ids, least recently used first.
func (w *Worker) FrameIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.order...)
}

// frame fetches a stored frame, marking it most recently used.
func (w *Worker) frame(id string) (*workerFrame, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.frames[id]
	if !ok {
		return nil, false
	}
	for i, o := range w.order {
		if o == id {
			w.order = append(append(w.order[:i:i], w.order[i+1:]...), id)
			break
		}
	}
	return f, true
}

// store inserts a frame, evicting the least recently used past the bound.
func (w *Worker) store(id string, f *workerFrame) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.frames[id]; dup {
		return // content-addressed: an identical re-ship changes nothing
	}
	w.frames[id] = f
	w.order = append(w.order, id)
	for len(w.frames) > w.cfg.MaxFrames {
		evict := w.order[0]
		w.order = w.order[1:]
		delete(w.frames, evict)
		w.evictions.Inc()
		w.logf("dist worker: evicted frame %.12s", evict)
	}
}

// traceRequest starts a worker-local trace when the coordinator stamped the
// request with a trace id; the returned finish renders the tree into the
// worker's ring and hands back the root for the response body (nil without
// the header — untraced requests pay one header read).
func (w *Worker) traceRequest(r *http.Request, name string) (ctx context.Context, finish func() *obs.SpanJSON) {
	traceID := r.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		return r.Context(), func() *obs.SpanJSON { return nil }
	}
	tr := obs.NewTraceWithID(traceID, name)
	return tr.Context(r.Context()), func() *obs.SpanJSON {
		tr.Finish()
		return w.traces.Record(tr).Root
	}
}

func writeJSON(rw http.ResponseWriter, status int, payload any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(payload)
}

func writeError(rw http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(rw, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]any{"ok": true, "frames": w.FrameIDs()})
}

func (w *Worker) handlePutFrame(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, w.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "reading frame body: %v", err)
		return
	}
	if int64(len(body)) > w.cfg.MaxBodyBytes {
		writeError(rw, http.StatusRequestEntityTooLarge, "", "frame exceeds %d bytes", w.cfg.MaxBodyBytes)
		return
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != id {
		// The id is the integrity check: a frame that does not hash to its
		// name was corrupted in transit (or the coordinator is buggy).
		writeError(rw, http.StatusBadRequest, "", "frame body hashes to %.12s, not %.12s", got, id)
		return
	}
	// Delta sniff: incremental frames carry a "base" field naming their
	// parent; full snapshots never do.
	var probe struct {
		Base string `json:"base"`
	}
	if json.Unmarshal(body, &probe) == nil && probe.Base != "" {
		w.putDeltaFrame(rw, id, body)
		return
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding frame: %v", err)
		return
	}
	db, model, err := snap.Build()
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "building frame: %v", err)
		return
	}
	w.store(id, &workerFrame{db: db, model: model, cache: engine.NewCacheBounded(w.cfg.CacheEntries)})
	w.frameBytes.Add(len(body))
	w.logf("dist worker: stored frame %.12s (%d rows)", id, db.TotalRows())
	writeJSON(rw, http.StatusOK, map[string]any{"ok": true})
}

// putDeltaFrame applies an incremental frame: the appended rows extend the
// resident base frame's database into a new MVCC version under a fresh
// content address. The base's relations are frozen prefixes (Extend shares
// them), so queries running against the base frame are never perturbed.
func (w *Worker) putDeltaFrame(rw http.ResponseWriter, id string, body []byte) {
	d, appends, err := DecodeDelta(body)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding frame delta: %v", err)
		return
	}
	base, ok := w.frame(d.Base)
	if !ok {
		// The coordinator ships version chains bottom-up, so a missing base
		// means it was evicted in between; frame_missing makes the
		// coordinator re-ship the chain and retry.
		writeError(rw, http.StatusNotFound, codeFrameMissing, "delta base frame %.12s not on this worker", d.Base)
		return
	}
	db, err := base.db.Extend(appends)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "applying frame delta: %v", err)
		return
	}
	if db.Version() != d.Version {
		writeError(rw, http.StatusBadRequest, "", "frame delta publishes version %d, but base %.12s extends to version %d",
			d.Version, d.Base, db.Version())
		return
	}
	rows := 0
	for _, tuples := range appends {
		rows += len(tuples)
	}
	w.store(id, &workerFrame{db: db, model: base.model, cache: engine.NewCacheBounded(w.cfg.CacheEntries)})
	w.frameBytes.Add(len(body))
	w.logf("dist worker: stored delta frame %.12s (v%d, +%d rows on %.12s)", id, d.Version, rows, d.Base)
	writeJSON(rw, http.StatusOK, map[string]any{"ok": true})
}

// evalFrame resolves the frame of a compute request, mapping a miss to the
// frame_missing protocol error.
func (w *Worker) evalFrame(rw http.ResponseWriter, id string) (*workerFrame, bool) {
	f, ok := w.frame(id)
	if !ok {
		writeError(rw, http.StatusNotFound, codeFrameMissing, "frame %.12s not on this worker", id)
		return nil, false
	}
	return f, true
}

func (w *Worker) handleEval(rw http.ResponseWriter, r *http.Request) {
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	if !w.injectFault(rw, fault.PointEval) {
		return
	}
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding eval request: %v", err)
		return
	}
	f, ok := w.evalFrame(rw, req.Frame)
	if !ok {
		return
	}
	q, err := hyperql.ParseWhatIf(req.Query)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	opts := req.Options.EngineOptions()
	opts.Cache = f.cache
	ctx, finish := w.traceRequest(r, "eval")
	// A fresh per-request meter: the engine charges it through the context,
	// and the coordinator folds the returned vector into the query's meter.
	meter := obs.NewMeter()
	meter.AddDistBytesReceived(int(r.ContentLength))
	ctx = obs.ContextWithMeter(ctx, meter)
	res, err := engine.EvaluatePartialContext(ctx, f.db, f.model, q, opts, req.Shards)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.evals.Inc()
	w.evalShards.Add(len(req.Shards))
	w.logf("dist worker: eval frame=%.12s shards=%v plan=%d", req.Frame, req.Shards, res.Meta.Plan)
	writeJSON(rw, http.StatusOK, EvalResponse{PartialResult: *res, Spans: finish(), Meter: meter.JSON()})
}

func (w *Worker) handleFit(rw http.ResponseWriter, r *http.Request) {
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	if !w.injectFault(rw, fault.PointFit) {
		return
	}
	var req FitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding fit request: %v", err)
		return
	}
	f, ok := w.evalFrame(rw, req.Frame)
	if !ok {
		return
	}
	q, err := hyperql.ParseWhatIf(req.Query)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	mask, err := strconv.ParseUint(req.Mask, 10, 64)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "bad mask %q: %v", req.Mask, err)
		return
	}
	opts := req.Options.EngineOptions()
	opts.Cache = f.cache
	ctx, finish := w.traceRequest(r, "fit")
	meter := obs.NewMeter()
	meter.AddDistBytesReceived(int(r.ContentLength))
	ctx = obs.ContextWithMeter(ctx, meter)
	part, err := engine.FitEventPartialContext(ctx, f.db, f.model, q, opts, mask, req.Weighted, req.Cells, req.Support, req.Shards)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.fits.Inc()
	w.logf("dist worker: fit frame=%.12s mask=%s shards=%v", req.Frame, req.Mask, req.Shards)
	writeJSON(rw, http.StatusOK, FitResponse{FitPlan: part.FitPlan, Parts: part.Parts, Support: part.Support, Spans: finish(), Meter: meter.JSON()})
}
