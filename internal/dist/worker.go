package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"sync"

	"hyper/internal/causal"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

// WorkerConfig tunes a worker; the zero value is usable.
type WorkerConfig struct {
	// MaxFrames bounds the frame store (LRU eviction). Default 8.
	MaxFrames int
	// MaxBodyBytes caps frame uploads. Default 256MB.
	MaxBodyBytes int64
	// CacheEntries bounds each frame's engine artifact cache. Default 256.
	CacheEntries int
	// Secret, when non-empty, requires every compute request (frames, eval,
	// fit) to present the shared dist secret — set it when untrusted peers
	// can reach the worker's listener, mirroring the coordinator's Secret.
	Secret string
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxFrames <= 0 {
		c.MaxFrames = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	return c
}

// Worker serves the shard-transport compute endpoints: it stores shipped
// frames (content-addressed, LRU-bounded) and evaluates per-shard what-if
// partials and shard-mergeable fits against them. A worker is stateless
// beyond its frame cache: every computation re-derives the deterministic
// evaluation state from frame + query + options, so workers can join, die,
// and rejoin freely without affecting any result.
type Worker struct {
	cfg WorkerConfig

	mu     sync.Mutex
	frames map[string]*workerFrame
	order  []string // LRU: least recently used first
}

// workerFrame is one decoded frame plus its engine cache (views, blocks,
// trained estimators are shared across the queries hitting this frame).
type workerFrame struct {
	db    *relation.Database
	model *causal.Model
	cache *engine.Cache
}

// NewWorker returns a worker with an empty frame store.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults(), frames: make(map[string]*workerFrame)}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	guarded := func(fn http.HandlerFunc) http.HandlerFunc {
		return func(rw http.ResponseWriter, r *http.Request) {
			if !checkSecret(rw, r, w.cfg.Secret) {
				return
			}
			fn(rw, r)
		}
	}
	mux.HandleFunc("GET "+pathPing, w.handlePing)
	mux.HandleFunc("PUT "+pathFrames+"{id}", guarded(w.handlePutFrame))
	mux.HandleFunc("POST "+pathEval, guarded(w.handleEval))
	mux.HandleFunc("POST "+pathFit, guarded(w.handleFit))
	return mux
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// FrameIDs returns the stored frame ids, least recently used first.
func (w *Worker) FrameIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.order...)
}

// frame fetches a stored frame, marking it most recently used.
func (w *Worker) frame(id string) (*workerFrame, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.frames[id]
	if !ok {
		return nil, false
	}
	for i, o := range w.order {
		if o == id {
			w.order = append(append(w.order[:i:i], w.order[i+1:]...), id)
			break
		}
	}
	return f, true
}

// store inserts a frame, evicting the least recently used past the bound.
func (w *Worker) store(id string, f *workerFrame) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.frames[id]; dup {
		return // content-addressed: an identical re-ship changes nothing
	}
	w.frames[id] = f
	w.order = append(w.order, id)
	for len(w.frames) > w.cfg.MaxFrames {
		evict := w.order[0]
		w.order = w.order[1:]
		delete(w.frames, evict)
		w.logf("dist worker: evicted frame %.12s", evict)
	}
}

func writeJSON(rw http.ResponseWriter, status int, payload any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(payload)
}

func writeError(rw http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(rw, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]any{"ok": true, "frames": w.FrameIDs()})
}

func (w *Worker) handlePutFrame(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, w.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "reading frame body: %v", err)
		return
	}
	if int64(len(body)) > w.cfg.MaxBodyBytes {
		writeError(rw, http.StatusRequestEntityTooLarge, "", "frame exceeds %d bytes", w.cfg.MaxBodyBytes)
		return
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != id {
		// The id is the integrity check: a frame that does not hash to its
		// name was corrupted in transit (or the coordinator is buggy).
		writeError(rw, http.StatusBadRequest, "", "frame body hashes to %.12s, not %.12s", got, id)
		return
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding frame: %v", err)
		return
	}
	db, model, err := snap.Build()
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "building frame: %v", err)
		return
	}
	w.store(id, &workerFrame{db: db, model: model, cache: engine.NewCacheBounded(w.cfg.CacheEntries)})
	w.logf("dist worker: stored frame %.12s (%d rows)", id, db.TotalRows())
	writeJSON(rw, http.StatusOK, map[string]any{"ok": true})
}

// evalFrame resolves the frame of a compute request, mapping a miss to the
// frame_missing protocol error.
func (w *Worker) evalFrame(rw http.ResponseWriter, id string) (*workerFrame, bool) {
	f, ok := w.frame(id)
	if !ok {
		writeError(rw, http.StatusNotFound, codeFrameMissing, "frame %.12s not on this worker", id)
		return nil, false
	}
	return f, true
}

func (w *Worker) handleEval(rw http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding eval request: %v", err)
		return
	}
	f, ok := w.evalFrame(rw, req.Frame)
	if !ok {
		return
	}
	q, err := hyperql.ParseWhatIf(req.Query)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	opts := req.Options.EngineOptions()
	opts.Cache = f.cache
	res, err := engine.EvaluatePartialContext(r.Context(), f.db, f.model, q, opts, req.Shards)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.logf("dist worker: eval frame=%.12s shards=%v plan=%d", req.Frame, req.Shards, res.Meta.Plan)
	writeJSON(rw, http.StatusOK, res)
}

func (w *Worker) handleFit(rw http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", "decoding fit request: %v", err)
		return
	}
	f, ok := w.evalFrame(rw, req.Frame)
	if !ok {
		return
	}
	q, err := hyperql.ParseWhatIf(req.Query)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	mask, err := strconv.ParseUint(req.Mask, 10, 64)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "bad mask %q: %v", req.Mask, err)
		return
	}
	opts := req.Options.EngineOptions()
	opts.Cache = f.cache
	part, err := engine.FitEventPartialContext(r.Context(), f.db, f.model, q, opts, mask, req.Weighted, req.Cells, req.Support, req.Shards)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.logf("dist worker: fit frame=%.12s mask=%s shards=%v", req.Frame, req.Mask, req.Shards)
	writeJSON(rw, http.StatusOK, FitResponse{FitPlan: part.FitPlan, Parts: part.Parts, Support: part.Support})
}
