// Package dist is HypeR's distribution substrate: a coordinator/worker
// shard transport that promotes the canonical shard plans of internal/shard
// from an in-process pool to a cluster-wide unit of work, with the same
// determinism contract the local path pins — distributed evaluation is
// bit-identical to a single-process `Shards=N` run.
//
// The division of labour:
//
//   - A worker (cmd/hyperd -worker) holds content-addressed frame snapshots
//     (a session's database + causal model, shipped on first touch), and
//     serves two stateless computations over them: per-shard what-if
//     evaluation (engine.EvaluatePartialContext → block-window partials)
//     and per-shard shard-mergeable estimator fits
//     (engine.FitEventPartialContext → freq-cell / support-set wire maps).
//
//   - The coordinator registers workers (registration + heartbeats with a
//     lease TTL), assigns contiguous plan shard ranges to the live workers,
//     ships a session's frame to a worker on its first miss (co-locating
//     the frame with its shards; later queries hit the worker's warm frame
//     cache), and reduces the returned partials strictly in plan order via
//     engine.MergePartials. Shards of a worker lost mid-evaluation are
//     requeued onto the surviving workers, or evaluated locally when none
//     survive — the reduction order never depends on who computed what, so
//     failures move work without moving results.
//
// Everything on the wire is JSON. Both ends re-derive the deterministic
// parts of an evaluation (plan, block decomposition, estimator choice,
// training) from the same frame + query + semantic options; the coordinator
// cross-checks the workers' evaluation metadata and fails loudly on any
// disagreement rather than merging diverging partials.
package dist

import (
	"crypto/subtle"
	"net/http"
	"strings"

	"hyper/internal/engine"
	"hyper/internal/ml"
	"hyper/internal/obs"
)

// Protocol paths. Worker-side endpoints are served by Worker.Handler;
// coordinator-side registration endpoints by Coordinator.Handler.
const (
	pathPing    = "/dist/v1/ping"
	pathFrames  = "/dist/v1/frames/" // + frame id (PUT)
	pathEval    = "/dist/v1/eval"
	pathFit     = "/dist/v1/fit"
	pathWorkers = "/dist/v1/workers" // coordinator: register/beat/list
)

// codeFrameMissing is the machine-readable error code a worker returns when
// it is asked to evaluate against a frame it has not seen; the coordinator
// reacts by shipping the frame and retrying (frame shipping on first touch).
const codeFrameMissing = "frame_missing"

// WireOptions is the JSON form of the semantic engine options. It carries
// exactly the fields the serving layer can set (hyper.Options plus the
// engine's DNF caps); Cache/Progress/RemoteFit are process-local and the
// Forest hyperparameters follow from Seed via the engine defaults.
type WireOptions struct {
	Mode            int   `json:"mode,omitempty"`
	SampleSize      int   `json:"sample_size,omitempty"`
	Seed            int64 `json:"seed,omitempty"`
	Estimator       int   `json:"estimator,omitempty"`
	Shards          int   `json:"shards,omitempty"`
	ShardRows       int   `json:"shard_rows,omitempty"`
	MaxDisjuncts    int   `json:"max_disjuncts,omitempty"`
	MaxDomainExpand int   `json:"max_domain_expand,omitempty"`
	DisableBlocks   bool  `json:"disable_blocks,omitempty"`
}

// WireOptionsFrom strips an engine option set to its wire form.
func WireOptionsFrom(o engine.Options) WireOptions {
	return WireOptions{
		Mode:            int(o.Mode),
		SampleSize:      o.SampleSize,
		Seed:            o.Seed,
		Estimator:       int(o.Estimator),
		Shards:          o.Shards,
		ShardRows:       o.ShardRows,
		MaxDisjuncts:    o.MaxDisjuncts,
		MaxDomainExpand: o.MaxDomainExpand,
		DisableBlocks:   o.DisableBlocks,
	}
}

// EngineOptions rebuilds the engine options on the worker side. The worker
// attaches its own per-frame cache.
func (w WireOptions) EngineOptions() engine.Options {
	return engine.Options{
		Mode:            engine.Mode(w.Mode),
		SampleSize:      w.SampleSize,
		Seed:            w.Seed,
		Estimator:       engine.EstimatorKind(w.Estimator),
		Shards:          w.Shards,
		ShardRows:       w.ShardRows,
		MaxDisjuncts:    w.MaxDisjuncts,
		MaxDomainExpand: w.MaxDomainExpand,
		DisableBlocks:   w.DisableBlocks,
	}
}

// EvalRequest asks a worker to evaluate the listed plan shards of a what-if
// query against a previously shipped frame.
type EvalRequest struct {
	Frame   string      `json:"frame"`
	Query   string      `json:"query"`
	Options WireOptions `json:"options"`
	Shards  []int       `json:"shards"`
}

// EvalResponse is the worker's answer: the engine's partial result, plus the
// worker-local span tree when the coordinator asked for tracing by stamping
// the X-Hyper-Trace-Id header on the request. The coordinator grafts Spans
// under its per-worker span, stitching one end-to-end trace across
// processes; span timestamps are the worker's clock (durations are the
// authoritative numbers), and tracing never touches Partials.
type EvalResponse struct {
	engine.PartialResult
	Spans *obs.SpanJSON `json:"spans,omitempty"`
	// Meter is the worker-side cost vector of this request (shards run,
	// tuples evaluated, fits, bytes received). The coordinator folds it into
	// the query's meter — the worker_* ledger the reconciliation invariant
	// checks against the coordinator's own shipped/dispatched totals.
	Meter *obs.MeterJSON `json:"meter,omitempty"`
}

// FitRequest asks a worker for the per-shard partial indexes of a
// shard-mergeable estimator fit: the freq cells of the event subset Mask
// (Y-weighted when Weighted) and/or the support-set keys, over the listed
// fit-plan shards. Mask is decimal-encoded because JSON numbers cannot carry
// a full uint64.
type FitRequest struct {
	Frame    string      `json:"frame"`
	Query    string      `json:"query"`
	Options  WireOptions `json:"options"`
	Mask     string      `json:"mask"`
	Weighted bool        `json:"weighted,omitempty"`
	Cells    bool        `json:"cells,omitempty"`
	Support  bool        `json:"support,omitempty"`
	Shards   []int       `json:"shards"`
}

// FitResponse carries one wire part per requested shard, in request order.
// Spans is the worker's span tree for the fit, present only when the
// request was traced (see EvalResponse).
type FitResponse struct {
	FitPlan int               `json:"fit_plan"`
	Parts   []*ml.FreqWire    `json:"parts,omitempty"`
	Support []*ml.SupportWire `json:"support,omitempty"`
	Spans   *obs.SpanJSON     `json:"spans,omitempty"`
	// Meter mirrors EvalResponse.Meter for fit requests.
	Meter *obs.MeterJSON `json:"meter,omitempty"`
}

// RegisterRequest announces a worker to the coordinator. URL is the base
// address the coordinator dials back (scheme://host:port).
type RegisterRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// WorkerInfo describes one registered worker (GET /dist/v1/workers and the
// /v1/stats dist gauges).
type WorkerInfo struct {
	ID          string  `json:"id"`
	URL         string  `json:"url"`
	Alive       bool    `json:"alive"`
	LastBeatMs  float64 `json:"last_beat_ms"`
	Frames      int     `json:"frames"`                // frames confirmed shipped to this worker
	Quarantined bool    `json:"quarantined,omitempty"` // circuit open, in cooldown
	Fails       int     `json:"fails,omitempty"`       // consecutive dispatch failures
}

// errorBody is the JSON error envelope shared by both ends of the protocol.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// setSecret attaches the shared dist secret (when configured) as a bearer
// token.
func setSecret(r *http.Request, secret string) {
	if secret != "" {
		r.Header.Set("Authorization", "Bearer "+secret)
	}
}

// checkSecret enforces the shared dist secret on an incoming request,
// writing a 401 and returning false on mismatch. An empty configured secret
// disables the check (trusted-network deployments; the default). The
// comparison is constant-time so the secret cannot be guessed byte by byte.
func checkSecret(rw http.ResponseWriter, r *http.Request, secret string) bool {
	if secret == "" {
		return true
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if subtle.ConstantTimeCompare([]byte(got), []byte(secret)) == 1 {
		return true
	}
	writeError(rw, http.StatusUnauthorized, "", "missing or invalid dist secret")
	return false
}
