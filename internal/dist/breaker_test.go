package dist

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's notion of now.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testBreaker(k int, cd time.Duration) (*breaker, *fakeClock) {
	clk := newFakeClock()
	b := newBreaker(k, cd)
	b.now = clk.now
	return b, clk
}

// TestBreakerStateMachine walks the quarantine circuit through its
// transitions: closed -> open on K consecutive failures, open -> half_open
// after the cooldown, half_open -> closed on success, half_open -> open
// (cooldown re-armed) on a failed probe.
func TestBreakerStateMachine(t *testing.T) {
	const cd = 30 * time.Second

	type step struct {
		act    string // "fail", "ok", "wait"
		wait   time.Duration
		opened bool // expected return of onFailure (for "fail")
		state  breakerState
		allow  bool
	}
	cases := []struct {
		name  string
		limit int
		steps []step
	}{
		{
			name:  "opens-at-limit",
			limit: 3,
			steps: []step{
				{act: "fail", state: breakerClosed, allow: true},
				{act: "fail", state: breakerClosed, allow: true},
				{act: "fail", opened: true, state: breakerOpen, allow: false},
			},
		},
		{
			name:  "success-resets-streak",
			limit: 2,
			steps: []step{
				{act: "fail", state: breakerClosed, allow: true},
				{act: "ok", state: breakerClosed, allow: true},
				{act: "fail", state: breakerClosed, allow: true},
				{act: "fail", opened: true, state: breakerOpen, allow: false},
			},
		},
		{
			name:  "cooldown-half-opens-then-success-closes",
			limit: 1,
			steps: []step{
				{act: "fail", opened: true, state: breakerOpen, allow: false},
				{act: "wait", wait: cd - time.Second, state: breakerOpen, allow: false},
				{act: "wait", wait: time.Second, state: breakerHalfOpen, allow: true},
				{act: "ok", state: breakerClosed, allow: true},
			},
		},
		{
			name:  "failed-probe-rearms-cooldown",
			limit: 1,
			steps: []step{
				{act: "fail", opened: true, state: breakerOpen, allow: false},
				{act: "wait", wait: cd, state: breakerHalfOpen, allow: true},
				{act: "fail", opened: true, state: breakerOpen, allow: false},
				{act: "wait", wait: cd / 2, state: breakerOpen, allow: false},
				{act: "wait", wait: cd / 2, state: breakerHalfOpen, allow: true},
			},
		},
		{
			name:  "failure-while-open-does-not-reopen",
			limit: 1,
			steps: []step{
				{act: "fail", opened: true, state: breakerOpen, allow: false},
				// A straggler failure (in-flight RPC finishing late) must not
				// restart the cooldown.
				{act: "fail", opened: false, state: breakerOpen, allow: false},
				{act: "wait", wait: cd, state: breakerHalfOpen, allow: true},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, clk := testBreaker(tc.limit, cd)
			for i, s := range tc.steps {
				switch s.act {
				case "fail":
					if opened := b.onFailure(); opened != s.opened {
						t.Fatalf("step %d: onFailure opened=%v, want %v", i, opened, s.opened)
					}
				case "ok":
					b.onSuccess()
				case "wait":
					clk.advance(s.wait)
				}
				if got := b.state(); got != s.state {
					t.Fatalf("step %d (%s): state %s, want %s", i, s.act, got, s.state)
				}
				if got := b.allow(); got != s.allow {
					t.Fatalf("step %d (%s): allow %v, want %v", i, s.act, got, s.allow)
				}
			}
		})
	}
}

// TestBreakerRestore round-trips the persisted circuit fields, including an
// open circuit whose cooldown continues across the restore.
func TestBreakerRestore(t *testing.T) {
	const cd = time.Minute
	b, clk := testBreaker(2, cd)
	b.onFailure()
	b.onFailure() // opens
	fails, open, openedAt := b.snapshot()
	if fails != 2 || !open {
		t.Fatalf("snapshot = (%d, %v, %v)", fails, open, openedAt)
	}

	b2, clk2 := testBreaker(2, cd)
	clk2.t = clk.t
	b2.restore(fails, open, openedAt)
	if got := b2.state(); got != breakerOpen {
		t.Fatalf("restored state %s, want open", got)
	}
	clk2.advance(cd)
	if got := b2.state(); got != breakerHalfOpen {
		t.Fatalf("restored breaker after cooldown: %s, want half_open", got)
	}
}
