package dist

import (
	"sync"
	"time"
)

// breakerState is the circuit position of one worker's breaker.
type breakerState string

const (
	// breakerClosed: healthy, assignable.
	breakerClosed breakerState = "closed"
	// breakerOpen: quarantined — K consecutive failures put the worker in
	// cooldown; shard assignment skips it.
	breakerOpen breakerState = "open"
	// breakerHalfOpen: cooldown elapsed — the worker is assignable again as
	// a probe; the next success closes the breaker, the next failure
	// re-opens it (restarting the cooldown).
	breakerHalfOpen breakerState = "half_open"
)

// breaker is the per-worker circuit breaker behind quarantine. The old
// policy dropped a worker from the registry on any dispatch failure,
// forcing a deregister/re-register churn cycle (and forgetting its shipped
// frames) even for a single transient fault. The breaker keeps the worker
// registered and its frame bookkeeping intact, merely excluding it from
// assignment while open; heartbeats arriving after the cooldown rehabilitate
// it without any re-registration traffic.
type breaker struct {
	limit    int              // consecutive failures that open the circuit
	cooldown time.Duration    // quarantine length
	now      func() time.Time // test hook

	mu       sync.Mutex
	fails    int // consecutive failures seen
	open     bool
	openedAt time.Time
}

func newBreaker(limit int, cooldown time.Duration) *breaker {
	return &breaker{limit: limit, cooldown: cooldown, now: time.Now}
}

// onFailure records one dispatch failure and reports whether this failure
// opened (or re-opened) the circuit — the caller's cue to log and persist
// the quarantine. A failure in half-open re-arms the full cooldown.
func (b *breaker) onFailure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.open {
		if b.now().Sub(b.openedAt) >= b.cooldown {
			// Failed its half-open probe: quarantine again from now.
			b.openedAt = b.now()
			return true
		}
		return false
	}
	if b.fails >= b.limit {
		b.open = true
		b.openedAt = b.now()
		return true
	}
	return false
}

// onSuccess closes the circuit and clears the failure streak (any
// successful RPC, or a post-cooldown heartbeat, rehabilitates the worker).
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.open = false
	b.mu.Unlock()
}

// allow reports whether the worker may be assigned work: always while
// closed, never while open within the cooldown, and again once the cooldown
// elapses (the half-open probe).
func (b *breaker) allow() bool {
	return b.state() != breakerOpen
}

// state returns the current circuit position.
func (b *breaker) state() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return breakerClosed
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen
	}
	return breakerOpen
}

// snapshot reads the raw circuit fields (for stats and persistence).
func (b *breaker) snapshot() (fails int, open bool, openedAt time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails, b.open, b.openedAt
}

// restore rehydrates a persisted circuit (coordinator restart).
func (b *breaker) restore(fails int, open bool, openedAt time.Time) {
	b.mu.Lock()
	b.fails = fails
	b.open = open
	b.openedAt = openedAt
	b.mu.Unlock()
}
