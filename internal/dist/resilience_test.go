package dist

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hyper/internal/engine"
	"hyper/internal/fault"
	"hyper/internal/hyperql"
)

const chaosQuery = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`

// chaosBaseline computes the local single-process answer the distributed
// runs must reproduce bit for bit.
func chaosBaseline(t *testing.T, opts engine.Options) string {
	t.Helper()
	db, model := distDataset(t, "german")
	q, err := hyperql.ParseWhatIf(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvaluateContext(context.Background(), db, model, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g17(want.Value)
}

// TestCoordinatorStateReAdoption persists a fleet (registry, shipped
// frames, one quarantined worker), builds a second coordinator from the
// state file, and asserts it re-adopts everything: both workers present
// without re-registration, the quarantine still in force, and a query that
// runs without re-shipping a single frame.
func TestCoordinatorStateReAdoption(t *testing.T) {
	opts := engine.Options{Seed: 7, ShardRows: 128}
	want := chaosBaseline(t, opts)
	statePath := filepath.Join(t.TempDir(), "dist-state.json")
	cfg := CoordinatorConfig{
		StatePath:       statePath,
		BreakerFailures: 1,
		BreakerCooldown: time.Hour, // quarantine must outlive the test
		Retry:           RetryPolicy{MaxAttempts: 1},
	}

	w1, w2 := newTestWorker(t), newTestWorker(t)
	c1, _ := newTestCoordinatorCfg(t, cfg, w1, w2)
	db, model := distDataset(t, "german")
	frame := NewFrame(db, model)
	if _, err := c1.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db, Model: model, Frame: frame, Query: chaosQuery, Options: opts,
	}); err != nil {
		t.Fatal(err)
	}
	w2.killEval.Store(true)
	if _, err := c1.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db, Model: model, Frame: frame, Query: chaosQuery, Options: opts,
	}); err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.FramesShipped != 2 || st.WorkersQuarantined != 1 {
		t.Fatalf("pre-restart stats: %+v (want 2 frames shipped, 1 quarantined)", st)
	}

	// "Restart": a fresh coordinator adopts the fleet purely from the state
	// file — no Register calls.
	c2, _ := newTestCoordinatorCfg(t, cfg)
	st := c2.Stats()
	if st.RestoredWorkers != 2 || st.WorkersRegistered != 2 {
		t.Fatalf("post-restart stats: %+v (want 2 restored, 2 registered)", st)
	}
	if st.WorkersQuarantined != 1 || st.WorkersAlive != 1 {
		t.Fatalf("post-restart stats: %+v (quarantine must survive the restart)", st)
	}

	w2.killEval.Store(false) // alive again, but still quarantined
	res, err := c2.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db, Model: model, Frame: frame, Query: chaosQuery, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g17(res.Value) != want {
		t.Fatalf("post-restart value %s != local %s", g17(res.Value), want)
	}
	if !res.Degraded || res.DegradedReason != "quarantine" {
		t.Fatalf("degraded=%v reason=%q, want true/quarantine", res.Degraded, res.DegradedReason)
	}
	if got := c2.Stats().FramesShipped; got != 0 {
		t.Fatalf("restarted coordinator re-shipped %d frames; the persisted shipped set should have prevented all", got)
	}
	if got := w1.puts.Load(); got != 1 {
		t.Fatalf("worker 1 received %d frame ships across both coordinator lives, want 1", got)
	}
}

// TestCorruptStateFileMovedAside: an unreadable state file must not be
// silently destroyed — it is renamed for inspection and the coordinator
// starts fresh.
func TestCorruptStateFileMovedAside(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "dist-state.json")
	if err := os.WriteFile(statePath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(CoordinatorConfig{StatePath: statePath})
	if st := c.Stats(); st.RestoredWorkers != 0 || st.WorkersRegistered != 0 {
		t.Fatalf("coordinator adopted state from a corrupt file: %+v", st)
	}
	if _, err := os.Stat(statePath + ".corrupt"); err != nil {
		t.Fatalf("corrupt state file was not moved aside: %v", err)
	}
}

// TestChaosInjectedFaults drives a distributed evaluation through the full
// injected-failure gauntlet under -race: a frame-ship error and an injected
// worker 500 (both absorbed by the retry policy — the response is NOT
// degraded), then a worker death (requeue + degradation), repeated failure
// (quarantine), all while every answer stays bit-identical to the local
// baseline and no goroutines leak.
func TestChaosInjectedFaults(t *testing.T) {
	opts := engine.Options{Seed: 7, ShardRows: 128} // 8 plan shards
	want := chaosBaseline(t, opts)

	before := runtime.NumGoroutine()
	coordFaults, err := fault.Parse("frame_ship:error:count=1,worker_dial:delay:ms=1:count=4", 7)
	if err != nil {
		t.Fatal(err)
	}
	evalFaults, err := fault.Parse("eval:error:count=1", 7)
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newTestWorker(t), newTestWorker(t)
	w2.w.cfg.Fault = evalFaults // first eval on w2 answers an injected 500
	c, client := newTestCoordinatorCfg(t, CoordinatorConfig{
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
		Fault:           coordFaults,
	}, w1, w2)

	db, model := distDataset(t, "german")
	frame := NewFrame(db, model)
	eval := func() *engine.Result {
		t.Helper()
		res, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
			DB: db, Model: model, Frame: frame, Query: chaosQuery, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if g17(res.Value) != want {
			t.Fatalf("chaos value %s != local %s", g17(res.Value), want)
		}
		return res
	}

	// Query 1: the injected ship failure and worker 500 are retried in
	// place — full fleet, not degraded.
	res := eval()
	if res.Degraded {
		t.Fatalf("retried-only query reported degraded (%s); retries alone must not degrade", res.DegradedReason)
	}
	if res.RemoteWorkers != 2 {
		t.Fatalf("RemoteWorkers %d, want 2", res.RemoteWorkers)
	}
	st := c.Stats()
	if st.Retries < 2 {
		t.Fatalf("retries %d, want >= 2 (one ship, one eval)", st.Retries)
	}
	if coordFaults.Fired() < 2 || evalFaults.Fired() != 1 {
		t.Fatalf("fault firings: coordinator %d, worker %d", coordFaults.Fired(), evalFaults.Fired())
	}

	// Query 2: w2 dies mid-eval — requeue onto w1, degraded, fails=1 of 2.
	w2.killEval.Store(true)
	res = eval()
	if !res.Degraded || res.DegradedReason != "worker_lost" {
		t.Fatalf("degraded=%v reason=%q, want true/worker_lost", res.Degraded, res.DegradedReason)
	}
	if st := c.Stats(); st.WorkersQuarantined != 0 {
		t.Fatalf("quarantined after 1 failure with K=2: %+v", st)
	}

	// Query 3: second consecutive failure quarantines w2.
	res = eval()
	if !res.Degraded || res.DegradedReason != "worker_lost" {
		t.Fatalf("degraded=%v reason=%q, want true/worker_lost", res.Degraded, res.DegradedReason)
	}
	if st := c.Stats(); st.WorkersQuarantined != 1 || st.WorkersLost != 1 {
		t.Fatalf("stats after K failures: %+v (want 1 quarantined, 1 lost)", st)
	}

	// Query 4: w2 skipped without being dialled — degraded by quarantine.
	res = eval()
	if !res.Degraded || res.DegradedReason != "quarantine" {
		t.Fatalf("degraded=%v reason=%q, want true/quarantine", res.Degraded, res.DegradedReason)
	}
	w1.ts.Close()
	w2.ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}
