package dist

import (
	"context"
	"errors"
	"sync"
	"time"

	"hyper/internal/fault"
	"hyper/internal/obs"
	"hyper/internal/stats"
)

// RetryPolicy is the unified failure-handling knob for every
// coordinator->worker RPC (frame ships, evals, fits). One policy replaces
// the ad-hoc per-call retry logic: each RPC gets a per-attempt timeout and
// up to MaxAttempts tries with capped exponential backoff and seeded
// jitter, and each distributed operation (one what-if, one fit) gets a
// Budget of retries across all of its RPCs so a systemically failing
// cluster degrades to requeue/local-fallback instead of retrying forever.
// The zero value takes the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the per-RPC attempt cap (first try included).
	// Default 3.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; attempt n waits up
	// to BaseBackoff<<n (half of it fixed, half jittered). Default 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 1s.
	MaxBackoff time.Duration
	// RPCTimeout bounds each attempt (evaluations can be legitimately
	// long; this is a liveness bound, not a latency target). Default 2m.
	RPCTimeout time.Duration
	// Budget caps retries per distributed operation across all workers and
	// RPCs. Default 16.
	Budget int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.RPCTimeout <= 0 {
		p.RPCTimeout = 2 * time.Minute
	}
	if p.Budget <= 0 {
		p.Budget = 16
	}
	return p
}

// backoff returns the wait before retry number attempt (1-based): capped
// exponential with half-jitter from the seeded stream, so two coordinators
// configured with the same seed sleep the same schedule (reproducible chaos
// runs) while distinct RPCs still decorrelate.
func (p RetryPolicy) backoff(attempt int, rng *stats.RNG) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// Degradation reason codes, comma-joined (sorted, deduplicated) into the
// degraded_reason a response reports. Each names one rung of the ladder the
// query fell down: a worker failing mid-query, quarantined workers being
// skipped, or shards falling back to coordinator-local evaluation.
const (
	degradeWorkerLost    = "worker_lost"
	degradeQuarantine    = "quarantine"
	degradeLocalFallback = "local_fallback"
)

// queryRun is the per-operation resilience scope: the retry budget shared
// by the operation's RPCs, the workers it has given up on (a worker that
// failed this query is not reassigned shards of this query, whatever its
// breaker does), and the degradation events that make up the response's
// degraded/degraded_reason report.
type queryRun struct {
	pol RetryPolicy

	mu     sync.Mutex
	budget int
	bad    map[string]bool
	events map[string]bool
}

func newQueryRun(pol RetryPolicy) *queryRun {
	pol = pol.withDefaults()
	return &queryRun{pol: pol, budget: pol.Budget}
}

// note records one degradation event.
func (r *queryRun) note(reason string) {
	r.mu.Lock()
	if r.events == nil {
		r.events = make(map[string]bool)
	}
	r.events[reason] = true
	r.mu.Unlock()
}

// markBad excludes a worker from the rest of this operation.
func (r *queryRun) markBad(id string) {
	r.mu.Lock()
	if r.bad == nil {
		r.bad = make(map[string]bool)
	}
	r.bad[id] = true
	r.mu.Unlock()
}

func (r *queryRun) isBad(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bad[id]
}

// spend consumes one retry from the budget, reporting whether one was left.
func (r *queryRun) spend() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget <= 0 {
		return false
	}
	r.budget--
	return true
}

// degraded renders the ladder report: false/"" for a run that used the full
// healthy fleet, else true plus the sorted comma-joined reason codes.
func (r *queryRun) degraded() (bool, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) == 0 {
		return false, ""
	}
	reasons := make([]string, 0, len(r.events))
	// Fixed ladder order (top rung first) keeps the report stable without a
	// sort over arbitrary strings.
	for _, code := range []string{degradeWorkerLost, degradeQuarantine, degradeLocalFallback} {
		if r.events[code] {
			reasons = append(reasons, code)
		}
	}
	out := ""
	for i, c := range reasons {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return true, out
}

// retry runs fn under the policy: each attempt gets its own RPCTimeout
// deadline, terminal errors and parent-context cancellation return
// immediately, and retryable errors back off (seeded jitter) and spend one
// unit of the operation's budget. fn sees the per-attempt context.
func (c *Coordinator) retry(ctx context.Context, run *queryRun, fn func(context.Context) error) error {
	pol := run.pol
	var err error
	for attempt := 1; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, pol.RPCTimeout)
		err = fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		var term terminalError
		if errors.As(err, &term) {
			return err
		}
		if ctx.Err() != nil {
			// The operation itself was cancelled (client gone, server
			// shutdown) — an attempt deadline alone leaves ctx live and
			// stays retryable.
			return ctx.Err()
		}
		if attempt >= pol.MaxAttempts || !run.spend() {
			return err
		}
		c.retries.Add(1)
		// A retried RPC breaks the exact shipped==received accounting for
		// this query; charging the meter waives its reconciliation invariant.
		obs.MeterFromContext(ctx).AddRetries(1)
		wait := c.jitteredBackoff(pol, attempt)
		c.logf("dist: retrying after %v (attempt %d/%d): %v", wait, attempt, pol.MaxAttempts, err)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// jitteredBackoff draws the next backoff from the coordinator's seeded
// jitter stream.
func (c *Coordinator) jitteredBackoff(pol RetryPolicy, attempt int) time.Duration {
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	return pol.backoff(attempt, c.jitter)
}

// faultHit consults the coordinator's injector at a client-side point.
func (c *Coordinator) faultHit(p fault.Point) error {
	return c.cfg.Fault.Hit(p)
}
