package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hyper/internal/fault"
)

// Durable coordinator state. The registry used to live purely in memory, so
// a coordinator restart orphaned its fleet: workers kept heartbeating into
// 404s until re-registration, shipped-frame bookkeeping was lost (every
// frame re-shipped), and quarantine history evaporated (a misbehaving
// worker came back fully trusted). With CoordinatorConfig.StatePath set,
// the coordinator persists a small JSON document — worker registry,
// per-worker shipped frames, breaker state, and the assignments in flight
// at save time — on every membership, quarantine, and frame event, via
// write-to-temp + atomic rename (a crash mid-save leaves the previous
// state intact). A restarted coordinator re-adopts the fleet: restored
// workers get a fresh lease (one TTL to heartbeat back in), their frames
// are not re-shipped, and quarantine continues where it left off.
// Assignments found in the file are necessarily orphans — the queries that
// made them died with the previous process — so they are logged and
// dropped, never resumed.

// persistedState is the state-file document.
type persistedState struct {
	SavedAt     time.Time             `json:"saved_at"`
	Workers     []persistedWorker     `json:"workers"`
	Assignments []persistedAssignment `json:"assignments,omitempty"`
}

// persistedWorker is one registry entry: identity, shipped frames, and the
// raw circuit-breaker fields.
type persistedWorker struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Frames   []string  `json:"frames,omitempty"`
	Fails    int       `json:"fails,omitempty"`
	Open     bool      `json:"open,omitempty"`
	OpenedAt time.Time `json:"opened_at,omitempty"`
}

// persistedAssignment is one dispatched-but-unanswered shard batch.
type persistedAssignment struct {
	Worker string `json:"worker"`
	Path   string `json:"path"`
	Shards []int  `json:"shards"`
}

// beginAssignment records a dispatched shard batch so the state file can
// name what was in flight if the coordinator dies before the answer.
func (c *Coordinator) beginAssignment(workerID, path string, shards []int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.assignSeq++
	id := c.assignSeq
	if c.assigns == nil {
		c.assigns = make(map[uint64]persistedAssignment)
	}
	c.assigns[id] = persistedAssignment{Worker: workerID, Path: path, Shards: shards}
	return id
}

func (c *Coordinator) endAssignment(id uint64) {
	c.mu.Lock()
	delete(c.assigns, id)
	c.mu.Unlock()
}

// snapshotState renders the current registry under the locks, ready to
// marshal outside them.
func (c *Coordinator) snapshotState() persistedState {
	c.mu.Lock()
	ws := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	st := persistedState{SavedAt: time.Now()}
	for _, a := range c.assigns {
		st.Assignments = append(st.Assignments, a)
	}
	c.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
	sort.Slice(st.Assignments, func(i, j int) bool {
		if st.Assignments[i].Worker != st.Assignments[j].Worker {
			return st.Assignments[i].Worker < st.Assignments[j].Worker
		}
		return st.Assignments[i].Path < st.Assignments[j].Path
	})
	for _, w := range ws {
		w.mu.Lock()
		pw := persistedWorker{ID: w.id, URL: w.url}
		for id := range w.shipped {
			pw.Frames = append(pw.Frames, id)
		}
		w.mu.Unlock()
		sort.Strings(pw.Frames)
		pw.Fails, pw.Open, pw.OpenedAt = w.breaker.snapshot()
		st.Workers = append(st.Workers, pw)
	}
	return st
}

// saveState writes the state file. Persistence is strictly best-effort: a
// failed save (disk full, injected fault) is logged and counted, and never
// fails the membership or query event that triggered it.
func (c *Coordinator) saveState() {
	if c.cfg.StatePath == "" {
		return
	}
	st := c.snapshotState()
	// One save at a time: concurrent membership events would otherwise race
	// temp-file writes targeting the same rename destination.
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	if err := c.writeState(st); err != nil {
		c.persistErrors.Add(1)
		c.logf("dist: persisting coordinator state: %v", err)
	}
}

func (c *Coordinator) writeState(st persistedState) error {
	if err := c.faultHit(fault.PointPersist); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.cfg.StatePath)
	tmp, err := os.CreateTemp(dir, ".hyper-dist-state-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(raw, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), c.cfg.StatePath); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadState re-adopts a persisted fleet at construction time. A missing
// file is a fresh start; a corrupt one is an error (refusing to silently
// discard state the operator asked to keep).
func (c *Coordinator) loadState() error {
	raw, err := os.ReadFile(c.cfg.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var st persistedState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("dist: corrupt state file %s: %w", c.cfg.StatePath, err)
	}
	c.mu.Lock()
	for _, pw := range st.Workers {
		w := &remoteWorker{id: pw.ID, url: pw.URL, breaker: c.newWorkerBreaker()}
		// A fresh lease: the restored worker has one TTL to heartbeat back
		// in before it goes stale, rather than being judged on a lastBeat
		// from the previous incarnation's clock.
		w.lastBeat = time.Now()
		if len(pw.Frames) > 0 {
			w.shipped = make(map[string]bool, len(pw.Frames))
			for _, id := range pw.Frames {
				w.shipped[id] = true
			}
		}
		w.breaker.restore(pw.Fails, pw.Open, pw.OpenedAt)
		c.workers[pw.ID] = w
	}
	restored := len(st.Workers)
	c.mu.Unlock()
	c.restored.Add(uint64(restored))
	c.logf("dist: restored %d workers from %s (saved %s)", restored, c.cfg.StatePath, st.SavedAt.Format(time.RFC3339))
	for _, a := range st.Assignments {
		// The query behind an in-flight assignment died with the previous
		// process; its client saw the crash. Name the orphan, drop it.
		c.logf("dist: orphaned in-flight assignment from previous run: worker=%s path=%s shards=%v", a.Worker, a.Path, a.Shards)
	}
	return nil
}
