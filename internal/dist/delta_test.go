package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

func deltaBase(t *testing.T) (*relation.Database, map[string][]relation.Tuple) {
	t.Helper()
	rel, err := relation.ReadCSVKeyed("T",
		strings.NewReader("ID,V,Tag\n1,1.5,a\n2,2.25,b\n3,0.125,c\n"), []string{"ID"})
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase()
	db.MustAdd(rel)
	db.SetVersion(1)
	appends := map[string][]relation.Tuple{"T": {
		{relation.Int(4), relation.Float(4.75), relation.String("d")},
		{relation.Int(5), relation.Null, relation.String("e")},
	}}
	return db, appends
}

// TestFrameDeltaRoundTrip pins the delta wire contract: the body names the
// parent frame, carries only the appended rows, and rebuilding
// parent-snapshot + delta yields a database snapshot byte-identical to
// encoding the post-append database directly.
func TestFrameDeltaRoundTrip(t *testing.T) {
	db, appends := deltaBase(t)
	base := NewFrame(db, nil)
	baseID, baseBody, err := base.Payload()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := db.Extend(appends)
	if err != nil {
		t.Fatal(err)
	}
	delta := NewFrameDelta(base, db2, nil, appends)
	deltaID, deltaBody, err := delta.Payload()
	if err != nil {
		t.Fatal(err)
	}
	if deltaID == baseID {
		t.Fatal("delta frame must have its own content address")
	}
	d, decoded, err := DecodeDelta(deltaBody)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base != baseID || d.Version != 2 {
		t.Fatalf("delta header = {%s v%d}, want {%s v2}", d.Base, d.Version, baseID)
	}
	if !reflect.DeepEqual(decoded, appends) {
		t.Fatalf("decoded appends diverge:\n got %v\nwant %v", decoded, appends)
	}

	// Worker-side reconstruction: base snapshot + delta == full snapshot.
	var snap Snapshot
	if err := json.Unmarshal(baseBody, &snap); err != nil {
		t.Fatal(err)
	}
	baseDB, _, err := snap.Build()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := baseDB.Extend(decoded)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(EncodeSnapshot(db2, nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(EncodeSnapshot(rebuilt, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rebuilt snapshot diverges from direct encoding:\n got %s\nwant %s", got, want)
	}
}

// TestFrameDeltaAddressChainsParent pins content addressing across the
// version chain: identical appends over identical bases share one id;
// change either the base or the appended rows and the id changes.
func TestFrameDeltaAddressChainsParent(t *testing.T) {
	db, appends := deltaBase(t)
	db2, err := db.Extend(appends)
	if err != nil {
		t.Fatal(err)
	}
	base := NewFrame(db, nil)
	id1, err := NewFrameDelta(base, db2, nil, appends).ID()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := NewFrameDelta(NewFrame(db, nil), db2, nil, appends).ID()
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("same base and appends must share one content address")
	}
	// Different base (one extra row before the append): different address
	// even though the delta rows are identical.
	otherDB, _ := deltaBase(t)
	mid, err := otherDB.Extend(map[string][]relation.Tuple{"T": {
		{relation.Int(99), relation.Float(9), relation.String("z")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mid2, err := mid.Extend(appends)
	if err != nil {
		t.Fatal(err)
	}
	id3, err := NewFrameDelta(NewFrame(mid, nil), mid2, nil, appends).ID()
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("different base must yield a different delta address")
	}
}

// TestDistributedDeltaEval ships a base frame, appends rows, and asserts the
// appended version evaluates remotely bit-identically to a local evaluation
// over the same data — while the wire carries only the delta (one extra PUT
// per worker, not a re-ship of the full snapshot).
func TestDistributedDeltaEval(t *testing.T) {
	const src = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`
	opts := engine.Options{Seed: 7, ShardRows: 256}

	big := dataset.GermanSyn(1200, 7)
	bigRel := big.DB.Relation("German")
	base := dataset.GermanSyn(1000, 7)
	db := base.DB
	db.SetVersion(1)
	model := base.Model

	var appended []relation.Tuple
	for i := 1000; i < 1200; i++ {
		appended = append(appended, bigRel.Row(i))
	}
	appends := map[string][]relation.Tuple{"German": appended}
	db2, err := db.Extend(appends)
	if err != nil {
		t.Fatal(err)
	}

	workers := []*testWorker{newTestWorker(t), newTestWorker(t)}
	c, _ := newTestCoordinator(t, workers...)
	baseFrame := NewFrame(db, model)
	deltaFrame := NewFrameDelta(baseFrame, db2, model, appends)

	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		db    *relation.Database
		frame *Frame
	}{
		{db, baseFrame},
		{db2, deltaFrame},
	} {
		want, err := engine.EvaluateContext(context.Background(), tc.db.Clone(), model, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
			DB: tc.db, Model: model, Frame: tc.frame, Query: src, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if g17(got.Value) != g17(want.Value) || g17(got.Sum) != g17(want.Sum) || g17(got.Count) != g17(want.Count) {
			t.Fatalf("v%d: distributed %s/%s/%s != local %s/%s/%s", tc.db.Version(),
				g17(got.Value), g17(got.Sum), g17(got.Count), g17(want.Value), g17(want.Sum), g17(want.Count))
		}
	}
	for i, tw := range workers {
		if got := tw.puts.Load(); got != 2 {
			t.Fatalf("worker %d received %d frame ships, want 2 (base once, delta once)", i+1, got)
		}
	}
}

// TestDistributedDeltaColdWorker evaluates a delta frame against a worker
// that never saw the base: the coordinator must ship the parent chain
// bottom-up, and the result must still match the local evaluation.
func TestDistributedDeltaColdWorker(t *testing.T) {
	const src = `USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`
	opts := engine.Options{Seed: 7, ShardRows: 512}

	big := dataset.GermanSyn(1100, 7)
	base := dataset.GermanSyn(1000, 7)
	db := base.DB
	db.SetVersion(1)
	var appended []relation.Tuple
	for i := 1000; i < 1100; i++ {
		appended = append(appended, big.DB.Relation("German").Row(i))
	}
	appends := map[string][]relation.Tuple{"German": appended}
	db2, err := db.Extend(appends)
	if err != nil {
		t.Fatal(err)
	}
	deltaFrame := NewFrameDelta(NewFrame(db, base.Model), db2, base.Model, appends)

	tw := newTestWorker(t)
	c, _ := newTestCoordinator(t, tw)
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvaluateContext(context.Background(), db2.Clone(), base.Model, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.EvaluateWhatIf(context.Background(), EvalSpec{
		DB: db2, Model: base.Model, Frame: deltaFrame, Query: src, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g17(got.Value) != g17(want.Value) {
		t.Fatalf("cold-worker delta eval %s != local %s", g17(got.Value), g17(want.Value))
	}
	if got := tw.puts.Load(); got != 2 {
		t.Fatalf("cold worker received %d ships, want 2 (base then delta)", got)
	}
}
