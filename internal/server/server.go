// Package server is HypeR's query-serving subsystem: a long-lived HTTP JSON
// API over the hyper public layer, hosting a registry of named sessions
// (generated datasets from internal/dataset or CSV-loaded databases, each
// bound to a causal model and a bounded engine cache) and serving what-if,
// how-to, explain and batched queries concurrently. cmd/hyperd is the
// daemon wrapping it.
//
// Endpoints (all JSON):
//
//	GET    /healthz              liveness probe
//	GET    /v1/datasets          named dataset builders available for sessions
//	GET    /v1/sessions          list live sessions
//	POST   /v1/sessions          create a session from a dataset name or inline CSV
//	DELETE /v1/sessions/{name}   drop a session
//	POST   /v1/whatif            evaluate one what-if query
//	POST   /v1/howto             evaluate one how-to query (ip|brute|mincost methods)
//	POST   /v1/explain           plan a what-if query without evaluating it
//	POST   /v1/batch             evaluate N queries fanned out across a worker pool
//	GET    /v1/stats             cache hit/miss counters and per-endpoint latency quantiles
//
// Sessions are independent: each owns a bounded LRU engine cache
// (engine.NewCacheBounded), so repeat queries with shared USE/WHEN/FOR
// clauses skip view materialization and estimator training, and a
// long-lived daemon's memory stays bounded. The underlying hyper.Session is
// safe for concurrent use, so no per-session serialization is needed.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"hyper"
)

// Config tunes the server; the zero value is usable.
type Config struct {
	// CacheEntries bounds each session's engine cache (artifacts, not
	// bytes). Default 512; <0 means unbounded.
	CacheEntries int
	// BatchWorkers is the worker-pool size for /v1/batch (and the cap on a
	// request's own workers field). Default GOMAXPROCS.
	BatchWorkers int
	// MaxSessions caps the number of live sessions. Default 64.
	MaxSessions int
	// MaxBodyBytes caps request bodies (CSV uploads included). Default 16MB.
	MaxBodyBytes int64
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// Server hosts the session registry and the HTTP handlers.
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.RWMutex
	sessions map[string]*sessionEntry

	stats statsRecorder
}

// New returns a server with an empty session registry.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		start:    time.Now(),
		sessions: make(map[string]*sessionEntry),
	}
	s.stats.init()
	return s
}

// Handler returns the routed HTTP handler for the API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "uptime_s": time.Since(s.start).Seconds()})
	})
	mux.Handle("GET /v1/datasets", s.instrument("datasets", s.handleDatasets))
	mux.Handle("GET /v1/sessions", s.instrument("sessions", s.handleListSessions))
	mux.Handle("POST /v1/sessions", s.instrument("sessions", s.handleCreateSession))
	mux.Handle("DELETE /v1/sessions/{name}", s.instrument("sessions", s.handleDeleteSession))
	mux.Handle("POST /v1/whatif", s.instrument("whatif", s.handleWhatIf))
	mux.Handle("POST /v1/howto", s.instrument("howto", s.handleHowTo))
	mux.Handle("POST /v1/explain", s.instrument("explain", s.handleExplain))
	mux.Handle("POST /v1/batch", s.instrument("batch", s.handleBatch))
	mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	return mux
}

// apiError carries an HTTP status through the handler helpers.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// instrument wraps a handler with latency recording, error mapping and
// request logging. Handlers return (payload, error); payloads are rendered
// as JSON, errors as {"error": ...} with the apiError status (500 default,
// 400 for body decode errors).
func (s *Server) instrument(endpoint string, fn func(r *http.Request) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		payload, err := fn(r)
		elapsed := time.Since(start)
		status := http.StatusOK
		if err != nil {
			var ae *apiError
			switch {
			case errors.As(err, &ae):
				status = ae.status
			default:
				status = http.StatusInternalServerError
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
		} else {
			writeJSON(w, status, payload)
		}
		s.stats.record(endpoint, elapsed, err != nil)
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s -> %d (%s)", r.Method, r.URL.Path, status, elapsed.Round(time.Microsecond))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(payload)
}

// decodeBody strictly decodes the request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errf(http.StatusBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// session looks up a live session by name.
func (s *Server) session(name string) (*sessionEntry, error) {
	if name == "" {
		return nil, errf(http.StatusBadRequest, "missing session name")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sessions[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown session %q", name)
	}
	return e, nil
}

// parseMode maps the wire name of an engine mode.
func parseMode(name string) (hyper.Mode, error) {
	switch name {
	case "", "full", "hyper":
		return hyper.ModeFull, nil
	case "nb", "hyper-nb":
		return hyper.ModeNB, nil
	case "indep":
		return hyper.ModeIndep, nil
	default:
		return 0, errf(http.StatusBadRequest, "unknown mode %q (want full|nb|indep)", name)
	}
}
