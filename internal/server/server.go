// Package server is HypeR's query-serving subsystem: a long-lived HTTP JSON
// API over the hyper public layer, hosting a registry of named sessions
// (generated datasets from internal/dataset or CSV-loaded databases, each
// bound to a causal model and a bounded engine cache) and serving what-if,
// how-to, explain and batched queries concurrently. cmd/hyperd is the
// daemon wrapping it.
//
// Endpoints (all JSON; sessions are the resource, queries and snapshots
// are sub-resources of a session):
//
//	GET    /healthz                           liveness probe
//	GET    /v1/datasets                       named dataset builders available for sessions
//	GET    /v1/sessions                       list live sessions (?limit=, ?after= pagination)
//	POST   /v1/sessions                       create a session from a dataset name or inline CSV
//	GET    /v1/sessions/{name}                describe one session (head version, caches)
//	DELETE /v1/sessions/{name}                drop a session (cancels its jobs)
//	POST   /v1/sessions/{name}/rows           append rows, publishing a new MVCC snapshot version
//	GET    /v1/sessions/{name}/snapshots      list the session's published versions
//	POST   /v1/sessions/{name}/whatif         evaluate one what-if query (snapshot/delta_vs pins)
//	POST   /v1/sessions/{name}/howto          evaluate one how-to query (ip|brute|mincost methods)
//	POST   /v1/sessions/{name}/explain        plan a query without evaluating it
//	POST   /v1/sessions/{name}/batch          evaluate N queries fanned out across a worker pool
//	POST   /v1/jobs                           submit an asynchronous query job (429 when the queue is full)
//	GET    /v1/jobs                           list jobs (?session=, ?state=, ?limit=, ?after=)
//	GET    /v1/jobs/{id}                      poll one job (state, progress, result)
//	DELETE /v1/jobs/{id}                      cancel a job (queued or mid-solve)
//	GET    /v1/stats                          cache/job gauges and per-endpoint latency quantiles
//	GET    /v1/usage                          per-query-shape usage analytics (?limit=, ?after=)
//	GET    /v1/usage/{session}                usage analytics filtered to one session's shapes
//
// The body-addressed query routes (POST /v1/whatif, /v1/howto, /v1/explain,
// /v1/batch) survive as thin deprecated aliases of the session-scoped
// routes; their responses carry a Deprecation header and a successor Link.
//
// Every error, on every /v1 route (including the mux's own 404/405), is the
// same JSON envelope: {"error": ..., "code": ..., "retryable": ...}.
//
// Sessions are independent: each owns a bounded LRU engine cache
// (engine.NewCacheBounded), so repeat queries with shared USE/WHEN/FOR
// clauses skip view materialization and estimator training, and a
// long-lived daemon's memory stays bounded. The underlying hyper.Session is
// safe for concurrent use, so no per-session serialization is needed.
//
// Sessions are MVCC: POST /v1/sessions/{name}/rows appends rows (the only
// mutation — no update or delete), publishing an immutable snapshot version
// per append. Queries pin a version with the snapshot field (0 = head) and
// hold it for their whole evaluation; querying snapshot v is byte-identical
// to querying a fresh session holding v's rows. What-if requests can also
// ask for a cross-version delta with delta_vs.
//
// Expensive queries should go through the job API (internal/jobs): a
// submitted job is queued by priority, bounded by admission control and
// per-session limits, cancellable mid-solve, and observable through
// progress counters — the synchronous endpoints remain for cheap queries
// and compatibility (they honor the request context, so a disconnected
// client stops its evaluation).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"hyper"
	"hyper/internal/dist"
	"hyper/internal/fault"
	"hyper/internal/jobs"
	"hyper/internal/obs"
)

// Config tunes the server; the zero value is usable.
type Config struct {
	// CacheEntries bounds each session's engine cache (artifacts, not
	// bytes). Default 512; <0 means unbounded.
	CacheEntries int
	// PlanCacheEntries bounds each session's compiled-plan cache (plans plus
	// their supporting per-view artifacts). Default 256; <0 means unbounded;
	// a session's plan cache is dropped with the session, so a schema can
	// never outlive its plans.
	PlanCacheEntries int
	// BatchWorkers is the worker-pool size for /v1/batch (and the cap on a
	// request's own workers field). Default GOMAXPROCS.
	BatchWorkers int
	// MaxSessions caps the number of live sessions. Default 64.
	MaxSessions int
	// MaxBodyBytes caps request bodies (CSV uploads included). Default 16MB.
	MaxBodyBytes int64
	// JobWorkers is the async job worker-pool size (default 2). Each how-to
	// job parallelizes internally, so a small pool already saturates cores.
	JobWorkers int
	// JobQueueDepth bounds queued (not yet running) jobs; submissions past
	// it are rejected with HTTP 429 (default 64).
	JobQueueDepth int
	// JobsPerSession caps one session's live (queued + running) jobs
	// (default 4; <0 disables the limit).
	JobsPerSession int
	// JobRetention is how many finished jobs stay pollable (default 256).
	JobRetention int
	// DistTTL is the worker lease of the embedded shard coordinator: a
	// registered worker whose last heartbeat is older is not assigned plan
	// shards (default 15s).
	DistTTL time.Duration
	// DistSecret, when non-empty, gates worker registration (and is
	// presented on every worker dial-back). A registered worker receives
	// session data and its partials merge into query results, so set a
	// secret whenever untrusted peers can reach the listeners.
	DistSecret string
	// DistStatePath, when non-empty, persists the coordinator's worker
	// registry (quarantine state and shipped frames included) to this JSON
	// file so a restarted daemon re-adopts its fleet.
	DistStatePath string
	// DistRPCTimeout bounds each coordinator->worker RPC attempt (default
	// 2m via dist.RetryPolicy).
	DistRPCTimeout time.Duration
	// DistBreakerFailures is K: consecutive dispatch failures that
	// quarantine a worker (default 3).
	DistBreakerFailures int
	// DistBreakerCooldown is a quarantined worker's cooldown (default 30s).
	DistBreakerCooldown time.Duration
	// Fault, when non-nil, arms the deterministic fault injector at the
	// coordinator's injection points (chaos testing; nil in production).
	Fault *fault.Injector
	// TraceCapacity bounds the in-process trace ring served by /v1/traces
	// (default obs.DefaultTraceCapacity).
	TraceCapacity int
	// UsageEntries bounds the query-shape usage table served by /v1/usage;
	// when full, a new shape evicts the least-used row (default 256).
	UsageEntries int
	// SlowQueryMs, when > 0, logs one JSON line (endpoint, latency, status,
	// trace id) to SlowQueryLog for every traced request at least that slow.
	SlowQueryMs int
	// SlowQueryLog receives slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 256
	}
	if c.PlanCacheEntries < 0 {
		c.PlanCacheEntries = 0 // unbounded
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.JobsPerSession == 0 {
		c.JobsPerSession = 4
	}
	if c.JobsPerSession < 0 {
		c.JobsPerSession = 0 // unlimited
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 256
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = obs.DefaultTraceCapacity
	}
	if c.UsageEntries <= 0 {
		c.UsageEntries = 256
	}
	if c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	return c
}

// Server hosts the session registry, the async job manager, and the HTTP
// handlers.
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.RWMutex
	sessions map[string]*sessionEntry

	jobs *jobs.Manager
	dist *dist.Coordinator

	metrics *obs.Registry
	traces  *obs.Recorder
	usage   *usageTable
	slow    *obs.Counter // slow-query lines emitted
	panics  *obs.Counter // handler panics recovered into JSON 500s
	slowMu  sync.Mutex   // serializes SlowQueryLog writes

	// Per-query cost histograms, observed by recordUsage per endpoint.
	costWall   *obs.HistogramVec
	costTuples *obs.HistogramVec
	costShards *obs.HistogramVec

	// planCompile observes each plan compilation's latency (every session's
	// plan cache feeds it through its compile observer).
	planCompile *obs.Histogram

	stats  statsRecorder
	shards shardGauges
}

// New returns a server with an empty session registry and a running job
// worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		sessions: make(map[string]*sessionEntry),
		metrics:  obs.NewRegistry(),
		traces:   obs.NewRecorder(cfg.TraceCapacity),
		usage:    newUsageTable(cfg.UsageEntries),
	}
	s.jobs = jobs.NewManager(jobs.Config{
		Workers:         cfg.JobWorkers,
		QueueDepth:      cfg.JobQueueDepth,
		PerSessionLimit: cfg.JobsPerSession,
		Retention:       cfg.JobRetention,
		Trace:           s.traces,
		// Finished jobs land in the same usage table and cost histograms as
		// synchronous requests, under a job:<kind> endpoint label.
		Usage: func(kind string, m *obs.Meter, elapsed time.Duration, err error) {
			s.recordUsage("job:"+kind, m, elapsed, err != nil)
		},
	})
	s.dist = dist.NewCoordinator(dist.CoordinatorConfig{
		TTL:             cfg.DistTTL,
		Secret:          cfg.DistSecret,
		Logf:            cfg.Logf,
		Metrics:         s.metrics,
		Retry:           dist.RetryPolicy{RPCTimeout: cfg.DistRPCTimeout},
		BreakerFailures: cfg.DistBreakerFailures,
		BreakerCooldown: cfg.DistBreakerCooldown,
		StatePath:       cfg.DistStatePath,
		Fault:           cfg.Fault,
	})
	s.stats.init(s.metrics)
	s.slow = s.metrics.Counter("hyper_slow_queries_total", "Requests that exceeded the slow-query threshold.")
	s.panics = s.metrics.Counter("hyper_server_panics_total", "Handler panics recovered into JSON 500 responses.")
	s.registerMetrics()
	return s
}

// Dist returns the embedded shard coordinator (worker registry, distributed
// evaluation, fit transport).
func (s *Server) Dist() *dist.Coordinator { return s.dist }

// Drain gracefully shuts the job subsystem down: no new jobs are admitted
// (submissions get HTTP 503), queued jobs are cancelled, and running jobs
// are awaited until ctx expires — then cancelled and awaited (promptly,
// since the compute stack observes job contexts). The HTTP handlers other
// than job submission keep working, so clients can poll final job states
// while the HTTP server itself shuts down.
func (s *Server) Drain(ctx context.Context) error {
	return s.jobs.Drain(ctx)
}

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	OK      bool    `json:"ok"`
	UptimeS float64 `json:"uptime_s"`
}

// Handler returns the routed HTTP handler for the API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, HealthResponse{OK: true, UptimeS: time.Since(s.start).Seconds()})
	})
	mux.Handle("GET /v1/datasets", s.instrument("datasets", s.handleDatasets))

	// Resource-oriented session surface: the session is the resource, its
	// rows, snapshots and query evaluations are sub-resources.
	mux.Handle("GET /v1/sessions", s.instrument("sessions", s.handleListSessions))
	mux.Handle("POST /v1/sessions", s.instrument("sessions", s.handleCreateSession))
	mux.Handle("GET /v1/sessions/{name}", s.instrument("sessions", s.handleGetSession))
	mux.Handle("DELETE /v1/sessions/{name}", s.instrument("sessions", s.handleDeleteSession))
	mux.Handle("POST /v1/sessions/{name}/rows", s.instrument("append", s.handleAppendRows))
	mux.Handle("GET /v1/sessions/{name}/snapshots", s.instrument("sessions", s.handleListSnapshots))
	mux.Handle("POST /v1/sessions/{name}/whatif", s.instrument("whatif", s.handleSessionWhatIf))
	mux.Handle("POST /v1/sessions/{name}/howto", s.instrument("howto", s.handleSessionHowTo))
	mux.Handle("POST /v1/sessions/{name}/explain", s.instrument("explain", s.handleSessionExplain))
	mux.Handle("POST /v1/sessions/{name}/batch", s.instrument("batch", s.handleSessionBatch))

	// Legacy body-addressed query routes: thin deprecated aliases of the
	// session-scoped successors above (same handlers, session from body).
	mux.Handle("POST /v1/whatif", deprecatedAlias("/v1/sessions/{name}/whatif", s.instrument("whatif", s.handleWhatIf)))
	mux.Handle("POST /v1/howto", deprecatedAlias("/v1/sessions/{name}/howto", s.instrument("howto", s.handleHowTo)))
	mux.Handle("POST /v1/explain", deprecatedAlias("/v1/sessions/{name}/explain", s.instrument("explain", s.handleExplain)))
	mux.Handle("POST /v1/batch", deprecatedAlias("/v1/sessions/{name}/batch", s.instrument("batch", s.handleBatch)))

	mux.Handle("POST /v1/jobs", s.instrument("jobs", s.handleSubmitJob))
	mux.Handle("GET /v1/jobs", s.instrument("jobs", s.handleListJobs))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs", s.handleGetJob))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("jobs", s.handleCancelJob))
	mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.Handle("GET /v1/usage", s.instrument("usage", s.handleUsage))
	mux.Handle("GET /v1/usage/{session}", s.instrument("usage", s.handleUsageSession))
	mux.Handle("GET /v1/traces", s.instrument("traces", s.handleListTraces))
	mux.Handle("GET /v1/traces/{id}", s.instrument("traces", s.handleGetTrace))
	mux.Handle("GET /metrics", s.metrics.Handler())
	// Shard-transport registration surface: workers announce themselves and
	// heartbeat here; the coordinator dials them back for shard work.
	dh := s.dist.Handler()
	mux.Handle("/dist/v1/workers", dh)
	mux.Handle("/dist/v1/workers/", dh)
	// envelopeErrors folds the mux's own plain-text 404/405 pages into the
	// JSON error envelope, so no route — known or not — answers shapeless.
	return envelopeErrors(mux)
}

// apiError carries an HTTP status (and an optional machine-readable code)
// through the handler helpers.
type apiError struct {
	status int
	code   string // e.g. "queue_full"; optional
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// errcf is errf with a machine-readable error code rendered alongside the
// message ({"error": ..., "code": ...}).
func errcf(status int, code, format string, args ...any) error {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// tracedEndpoints are the query-evaluation endpoints that get a span tree
// per request: the trace rides the request context through the engine, the
// rendered tree lands in the trace ring (GET /v1/traces), and ?trace=1
// inlines it in the response ("EXPLAIN ANALYZE" for the HypeR stack).
var tracedEndpoints = map[string]bool{"whatif": true, "howto": true, "explain": true, "batch": true, "append": true}

// instrument wraps a handler with panic recovery, latency recording, error
// mapping, request tracing, and request logging. Handlers return (payload,
// error); payloads are rendered as JSON, errors as {"error": ...} with the
// apiError status (500 default, 400 for body decode errors). A handler
// panic becomes a JSON 500 (counted in hyper_server_panics_total, stack
// logged, trace annotated) instead of tearing down the connection — the
// response is written centrally after fn returns, so nothing has touched
// the ResponseWriter yet when the recovery fires. Traced endpoints always
// answer with an X-Hyper-Trace-Id header; tracing is an execution-only
// layer, so payloads are byte-identical to an untraced server's unless
// ?trace=1 explicitly asks for the inline tree.
func (s *Server) instrument(endpoint string, fn func(r *http.Request) (any, error)) http.Handler {
	call := func(r *http.Request) (payload any, err error) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				// The sentinel for deliberately severed connections must keep
				// propagating to net/http.
				panic(p)
			}
			s.panics.Add(1)
			if sp := obs.SpanFromContext(r.Context()); sp != nil {
				sp.Set("panic", fmt.Sprint(p))
			}
			stack := make([]byte, 16<<10)
			stack = stack[:runtime.Stack(stack, false)]
			if s.cfg.Logf != nil {
				s.cfg.Logf("panic in /v1/%s handler: %v\n%s", endpoint, p, stack)
			} else {
				fmt.Fprintf(os.Stderr, "hyperd: panic in /v1/%s handler: %v\n%s\n", endpoint, p, stack)
			}
			payload, err = nil, errcf(http.StatusInternalServerError, "panic", "internal server error")
		}()
		return fn(r)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var tr *obs.Trace
		var meter *obs.Meter
		if tracedEndpoints[endpoint] {
			tr = obs.NewTrace(endpoint)
			// The meter rides the same context as the trace: an execution-only
			// cost ledger, charged by the engine/howto/ip/dist layers and
			// finalized into the usage table below. Like tracing it can never
			// change a result.
			meter = obs.NewMeter()
			ctx := obs.ContextWithMeter(tr.Context(r.Context()), meter)
			r = r.WithContext(ctx)
		}
		payload, err := call(r)
		elapsed := time.Since(start)
		status := http.StatusOK
		errCode := ""
		if err != nil {
			var ae *apiError
			switch {
			case errors.As(err, &ae):
				status = ae.status
				errCode = ae.code
			case errors.Is(err, context.Canceled):
				// A disconnected client cancelled its own evaluation; that
				// is not a server fault, so don't record a 5xx (499 is the
				// de-facto "client closed request" status).
				status = 499
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
			default:
				status = http.StatusInternalServerError
			}
		}
		if tr != nil {
			tr.Root().Set("status", status)
			tr.Finish()
			tj := s.traces.Record(tr)
			w.Header().Set(obs.TraceIDHeader, tr.ID)
			if err == nil && r.URL.Query().Get("trace") == "1" {
				attachTrace(payload, tj)
			}
			if s.cfg.SlowQueryMs > 0 && elapsed >= time.Duration(s.cfg.SlowQueryMs)*time.Millisecond {
				s.logSlowQuery(endpoint, tr.ID, elapsed, status, meter)
			}
		}
		s.recordUsage(endpoint, meter, elapsed, err != nil)
		// Every error, from any handler, renders through the one envelope
		// writer; successes render their typed payloads.
		if err != nil {
			writeError(w, status, errCode, err.Error())
		} else {
			writeJSON(w, status, payload)
		}
		s.stats.record(endpoint, elapsed, err != nil)
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s -> %d (%s)", r.Method, r.URL.Path, status, elapsed.Round(time.Microsecond))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(payload)
}

// decodeBody strictly decodes the request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errf(http.StatusBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// session looks up a live session by name.
func (s *Server) session(name string) (*sessionEntry, error) {
	if name == "" {
		return nil, errf(http.StatusBadRequest, "missing session name")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sessions[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown session %q", name)
	}
	return e, nil
}

// parseMode maps the wire name of an engine mode.
func parseMode(name string) (hyper.Mode, error) {
	switch name {
	case "", "full", "hyper":
		return hyper.ModeFull, nil
	case "nb", "hyper-nb":
		return hyper.ModeNB, nil
	case "indep":
		return hyper.ModeIndep, nil
	default:
		return 0, errf(http.StatusBadRequest, "unknown mode %q (want full|nb|indep)", name)
	}
}
