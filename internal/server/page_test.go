package server

import (
	"net/http"
	"sort"
	"testing"
	"time"
)

// TestPaginationStableWalk pages through sessions, jobs, and usage with
// limit/after cursors and asserts each walk visits every item exactly once
// in the listing's stable key order — appends/filters in between cannot
// shuffle or duplicate pages.
func TestPaginationStableWalk(t *testing.T) {
	ts := newTestServer(t, Config{})
	names := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for _, n := range names {
		createSession(t, ts, n)
	}

	// Sessions paginate by name.
	var walked []string
	after := ""
	for {
		url := ts.URL + "/v1/sessions?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		var page SessionListResponse
		if code := do(t, "GET", url, nil, &page); code != http.StatusOK {
			t.Fatalf("sessions page: status %d", code)
		}
		if len(page.Sessions) > 2 {
			t.Fatalf("page holds %d sessions, limit was 2", len(page.Sessions))
		}
		for _, s := range page.Sessions {
			walked = append(walked, s.Name)
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	want := append([]string(nil), names...)
	sort.Strings(want)
	if len(walked) != len(want) {
		t.Fatalf("walked %v, want %v", walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("walked %v, want %v", walked, want)
		}
	}

	// Jobs paginate by numeric id order.
	var ids []string
	for i := 0; i < 5; i++ {
		var job JobInfo
		if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
			Session: "alpha", Kind: "whatif", Query: germanCount,
		}, &job); code != http.StatusOK {
			t.Fatalf("submit job %d: status %d", i, code)
		}
		ids = append(ids, job.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var list JobListResponse
		do(t, "GET", ts.URL+"/v1/jobs?state=done", nil, &list)
		if len(list.Jobs) == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not finish: %d/%d done", len(list.Jobs), len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}
	var jobWalk []string
	after = ""
	for {
		url := ts.URL + "/v1/jobs?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		var page JobListResponse
		if code := do(t, "GET", url, nil, &page); code != http.StatusOK {
			t.Fatalf("jobs page: status %d", code)
		}
		for _, j := range page.Jobs {
			jobWalk = append(jobWalk, j.ID)
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if len(jobWalk) != len(ids) {
		t.Fatalf("job walk %v, want %d jobs", jobWalk, len(ids))
	}
	for i := 1; i < len(jobWalk); i++ {
		prev, _ := jobSeq(jobWalk[i-1])
		cur, _ := jobSeq(jobWalk[i])
		if prev >= cur {
			t.Fatalf("job walk not in id order: %v", jobWalk)
		}
	}

	// Usage paginates by opaque composite-key cursors; the walk must cover
	// exactly the shapes the unpaginated listing holds.
	var all UsageResponse
	do(t, "GET", ts.URL+"/v1/usage", nil, &all)
	if len(all.Shapes) == 0 {
		t.Fatal("no usage shapes recorded")
	}
	seen := map[string]bool{}
	after = ""
	for {
		url := ts.URL + "/v1/usage?limit=1"
		if after != "" {
			url += "&after=" + after
		}
		var page UsageResponse
		if code := do(t, "GET", url, nil, &page); code != http.StatusOK {
			t.Fatalf("usage page: status %d", code)
		}
		for _, u := range page.Shapes {
			key := usageKey(u)
			if seen[key] {
				t.Fatalf("usage walk visited %q twice", key)
			}
			seen[key] = true
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if len(seen) != len(all.Shapes) {
		t.Fatalf("usage walk covered %d shapes, unpaginated listing has %d", len(seen), len(all.Shapes))
	}
}
