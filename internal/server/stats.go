package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"hyper/internal/dist"
	"hyper/internal/jobs"
	"hyper/internal/obs"
)

// shardGauges accumulates the server-wide shard activity of the what-if
// path (synchronous, batched, and job-driven evaluations all route through
// it). All fields are atomics: evaluations record from request goroutines.
type shardGauges struct {
	evals        atomic.Int64 // what-if evaluations recorded
	shardedEvals atomic.Int64 // ... of which ran a multi-shard plan
	shardsRun    atomic.Int64 // total shards executed across all plans
	maxPlan      atomic.Int64 // largest plan seen (shards)
	maxWorkers   atomic.Int64 // widest worker fan-out seen
}

func (g *shardGauges) record(planShards, workers int) {
	g.evals.Add(1)
	if planShards > 1 {
		g.shardedEvals.Add(1)
	}
	g.shardsRun.Add(int64(planShards))
	storeMax(&g.maxPlan, int64(planShards))
	storeMax(&g.maxWorkers, int64(workers))
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ShardStats is the wire form of the shard gauges.
type ShardStats struct {
	Evals        int64 `json:"evals"`
	ShardedEvals int64 `json:"sharded_evals"`
	ShardsRun    int64 `json:"shards_run"`
	MaxPlan      int64 `json:"max_plan"`
	MaxWorkers   int64 `json:"max_workers"`
}

func (g *shardGauges) snapshot() ShardStats {
	return ShardStats{
		Evals:        g.evals.Load(),
		ShardedEvals: g.shardedEvals.Load(),
		ShardsRun:    g.shardsRun.Load(),
		MaxPlan:      g.maxPlan.Load(),
		MaxWorkers:   g.maxWorkers.Load(),
	}
}

// statsRecorder is the per-endpoint request accounting, backed by the
// metrics registry: a counter pair plus a fixed-bucket latency histogram
// per endpoint. The histogram replaces the per-endpoint sample ring the
// recorder used to keep — memory is now constant under sustained traffic,
// recording is O(1) with no lock or sort, and /v1/stats quantiles become
// bucket-interpolated estimates (bounded by the bucket resolution) instead
// of exact order statistics over a sliding window.
type statsRecorder struct {
	reqs *obs.CounterVec
	errs *obs.CounterVec
	lat  *obs.HistogramVec
}

func (s *statsRecorder) init(reg *obs.Registry) {
	s.reqs = reg.CounterVec("hyper_requests_total", "HTTP requests served, by endpoint.", "endpoint")
	s.errs = reg.CounterVec("hyper_request_errors_total", "HTTP requests that returned an error, by endpoint.", "endpoint")
	s.lat = reg.HistogramVec("hyper_request_duration_ms", "HTTP request latency in milliseconds, by endpoint.", obs.LatencyBucketsMs, "endpoint")
}

func (s *statsRecorder) record(endpoint string, d time.Duration, failed bool) {
	s.reqs.With(endpoint).Inc()
	if failed {
		s.errs.With(endpoint).Inc()
	}
	s.lat.With(endpoint).Observe(float64(d) / float64(time.Millisecond))
}

// EndpointStats is the wire form of one endpoint's counters. P50Ms/P95Ms
// are histogram estimates (see statsRecorder).
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
}

// snapshot renders every endpoint's stats.
func (s *statsRecorder) snapshot() map[string]EndpointStats {
	out := make(map[string]EndpointStats)
	s.lat.Each(func(values []string, h *obs.Histogram) {
		out[values[0]] = EndpointStats{
			Count: int64(h.Count()),
			P50Ms: h.Quantile(0.50),
			P95Ms: h.Quantile(0.95),
		}
	})
	s.errs.Each(func(values []string, c *obs.Counter) {
		e := out[values[0]]
		e.Errors = int64(c.Value())
		out[values[0]] = e
	})
	return out
}

// StatsResponse is the /v1/stats payload: server uptime, per-endpoint
// latency quantiles, per-session query counts and cache effectiveness, the
// job-queue gauges (queued, running, terminal counters, admission
// rejections, and queue-wait quantiles), and the shard gauges of the
// what-if evaluation path.
type StatsResponse struct {
	UptimeS   float64                  `json:"uptime_s"`
	Sessions  []SessionInfo            `json:"sessions"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Jobs      jobs.Stats               `json:"jobs"`
	Shards    ShardStats               `json:"shards"`
	Dist      DistStats                `json:"dist"`
	Plan      PlanStats                `json:"plan"`
}

// PlanStats is the query-planning section of /v1/stats: plan-cache counters
// summed over live sessions (per-session breakdowns are in each SessionInfo)
// plus compile-latency quantiles from the shared histogram.
type PlanStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Compiles  uint64 `json:"compiles"`
	Entries   int    `json:"entries"`
	// CompileP50Ms/CompileP95Ms are bucket-interpolated estimates over all
	// compilations since the server started.
	CompileP50Ms float64 `json:"compile_p50_ms"`
	CompileP95Ms float64 `json:"compile_p95_ms"`
}

// DistStats is the shard-transport section of /v1/stats: the coordinator
// gauges plus the per-worker registry snapshot.
type DistStats struct {
	dist.Stats
	Workers []dist.WorkerInfo `json:"workers,omitempty"`
}

func (s *Server) handleStats(*http.Request) (any, error) {
	entries := s.sortedEntries()
	resp := &StatsResponse{
		UptimeS:   time.Since(s.start).Seconds(),
		Endpoints: s.stats.snapshot(),
		Sessions:  make([]SessionInfo, len(entries)),
		Jobs:      s.jobs.Stats(),
		Shards:    s.shards.snapshot(),
		Dist:      DistStats{Stats: s.dist.Stats(), Workers: s.dist.WorkerInfos()},
	}
	for i, e := range entries {
		resp.Sessions[i] = e.info()
		p := resp.Sessions[i].Plan
		resp.Plan.Hits += p.Hits
		resp.Plan.Misses += p.Misses
		resp.Plan.Evictions += p.Evictions
		resp.Plan.Compiles += p.Compiles
		resp.Plan.Entries += p.Entries
	}
	resp.Plan.CompileP50Ms = s.planCompile.Quantile(0.50)
	resp.Plan.CompileP95Ms = s.planCompile.Quantile(0.95)
	return resp, nil
}
