package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyper/internal/dist"
	"hyper/internal/jobs"
)

// shardGauges accumulates the server-wide shard activity of the what-if
// path (synchronous, batched, and job-driven evaluations all route through
// it). All fields are atomics: evaluations record from request goroutines.
type shardGauges struct {
	evals        atomic.Int64 // what-if evaluations recorded
	shardedEvals atomic.Int64 // ... of which ran a multi-shard plan
	shardsRun    atomic.Int64 // total shards executed across all plans
	maxPlan      atomic.Int64 // largest plan seen (shards)
	maxWorkers   atomic.Int64 // widest worker fan-out seen
}

func (g *shardGauges) record(planShards, workers int) {
	g.evals.Add(1)
	if planShards > 1 {
		g.shardedEvals.Add(1)
	}
	g.shardsRun.Add(int64(planShards))
	storeMax(&g.maxPlan, int64(planShards))
	storeMax(&g.maxWorkers, int64(workers))
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ShardStats is the wire form of the shard gauges.
type ShardStats struct {
	Evals        int64 `json:"evals"`
	ShardedEvals int64 `json:"sharded_evals"`
	ShardsRun    int64 `json:"shards_run"`
	MaxPlan      int64 `json:"max_plan"`
	MaxWorkers   int64 `json:"max_workers"`
}

func (g *shardGauges) snapshot() ShardStats {
	return ShardStats{
		Evals:        g.evals.Load(),
		ShardedEvals: g.shardedEvals.Load(),
		ShardsRun:    g.shardsRun.Load(),
		MaxPlan:      g.maxPlan.Load(),
		MaxWorkers:   g.maxWorkers.Load(),
	}
}

// latencyWindow is how many recent request latencies each endpoint keeps for
// quantile estimation; older samples fall out of the ring.
const latencyWindow = 4096

// endpointStats accumulates one endpoint's counters and a bounded latency
// ring.
type endpointStats struct {
	count  int64
	errors int64
	ring   []time.Duration // capacity latencyWindow
	next   int             // ring write position once full
}

func (e *endpointStats) record(d time.Duration, failed bool) {
	e.count++
	if failed {
		e.errors++
	}
	if len(e.ring) < latencyWindow {
		e.ring = append(e.ring, d)
		return
	}
	e.ring[e.next] = d
	e.next = (e.next + 1) % latencyWindow
}

// quantiles returns p50 and p95 of the retained window.
func (e *endpointStats) quantiles() (p50, p95 time.Duration) {
	if len(e.ring) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), e.ring...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95)
}

// statsRecorder guards all endpoints' stats.
type statsRecorder struct {
	mu  sync.Mutex
	byE map[string]*endpointStats
}

func (s *statsRecorder) init() { s.byE = make(map[string]*endpointStats) }

func (s *statsRecorder) record(endpoint string, d time.Duration, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byE[endpoint]
	if e == nil {
		e = &endpointStats{}
		s.byE[endpoint] = e
	}
	e.record(d, failed)
}

// EndpointStats is the wire form of one endpoint's counters.
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
}

// snapshot renders every endpoint's stats.
func (s *statsRecorder) snapshot() map[string]EndpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]EndpointStats, len(s.byE))
	for name, e := range s.byE {
		p50, p95 := e.quantiles()
		out[name] = EndpointStats{
			Count:  e.count,
			Errors: e.errors,
			P50Ms:  float64(p50) / float64(time.Millisecond),
			P95Ms:  float64(p95) / float64(time.Millisecond),
		}
	}
	return out
}

// StatsResponse is the /v1/stats payload: server uptime, per-endpoint
// latency quantiles, per-session query counts and cache effectiveness, the
// job-queue gauges (queued, running, terminal counters, admission
// rejections, and queue-wait quantiles), and the shard gauges of the
// what-if evaluation path.
type StatsResponse struct {
	UptimeS   float64                  `json:"uptime_s"`
	Sessions  []SessionInfo            `json:"sessions"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Jobs      jobs.Stats               `json:"jobs"`
	Shards    ShardStats               `json:"shards"`
	Dist      DistStats                `json:"dist"`
}

// DistStats is the shard-transport section of /v1/stats: the coordinator
// gauges plus the per-worker registry snapshot.
type DistStats struct {
	dist.Stats
	Workers []dist.WorkerInfo `json:"workers,omitempty"`
}

func (s *Server) handleStats(*http.Request) (any, error) {
	entries := s.sortedEntries()
	resp := &StatsResponse{
		UptimeS:   time.Since(s.start).Seconds(),
		Endpoints: s.stats.snapshot(),
		Sessions:  make([]SessionInfo, len(entries)),
		Jobs:      s.jobs.Stats(),
		Shards:    s.shards.snapshot(),
		Dist:      DistStats{Stats: s.dist.Stats(), Workers: s.dist.WorkerInfos()},
	}
	for i, e := range entries {
		resp.Sessions[i] = e.info()
	}
	return resp, nil
}
