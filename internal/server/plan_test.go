package server

import (
	"fmt"
	"net/http"
	"regexp"
	"testing"
)

const germanPlanned = `USE German WHEN Age = 2 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`

// TestServerPlanCacheStatsAndSessionDelete exercises the plan cache through
// the HTTP surface: a repeated what-if must hit the session's plan cache,
// /v1/stats must expose the counters, and deleting the session must drop its
// cached plans — a recreated session compiles from scratch.
func TestServerPlanCacheStatsAndSessionDelete(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	for i := 0; i < 2; i++ {
		var res WhatIfResponse
		if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanPlanned}, &res); code != http.StatusOK {
			t.Fatalf("whatif %d: status %d", i, code)
		}
	}
	var stats StatsResponse
	do(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Plan.Misses < 1 || stats.Plan.Compiles < 1 {
		t.Fatalf("plan stats after cold query = %+v, want a miss and a compile", stats.Plan)
	}
	if stats.Plan.Hits < 1 {
		t.Fatalf("plan stats after repeat = %+v, want a cache hit", stats.Plan)
	}
	if stats.Plan.Entries == 0 {
		t.Fatalf("plan stats = %+v, want live cache entries", stats.Plan)
	}
	if len(stats.Sessions) != 1 || stats.Sessions[0].Plan.Hits < 1 {
		t.Fatalf("session plan stats = %+v, want per-session hit counters", stats.Sessions)
	}

	// Deleting the session must drop its compiled plans with it.
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/g", nil, nil); code != http.StatusOK {
		t.Fatalf("delete session: status %d", code)
	}
	do(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Plan.Entries != 0 || stats.Plan.Hits != 0 {
		t.Fatalf("plan stats after delete = %+v, want empty", stats.Plan)
	}

	// A recreated session starts cold: same query text, fresh compile, no
	// stale reuse from the deleted session.
	createSession(t, ts, "g")
	var res WhatIfResponse
	do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanPlanned}, &res)
	do(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Plan.Hits != 0 || stats.Plan.Misses < 1 {
		t.Fatalf("plan stats after recreate = %+v, want a fresh miss and no hits", stats.Plan)
	}
}

// TestServerPlanCacheEntriesOverride checks the per-session bound override on
// session creation.
func TestServerPlanCacheEntriesOverride(t *testing.T) {
	ts := newTestServer(t, Config{})
	bound := 2
	var info SessionInfo
	code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name:             "tiny",
		Dataset:          "german",
		Scale:            0.3,
		Options:          &SessionOptions{Mode: "full", Seed: 7},
		PlanCacheEntries: &bound,
	}, &info)
	if code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	if info.Plan.MaxEntries != bound {
		t.Fatalf("plan cache bound = %d, want %d", info.Plan.MaxEntries, bound)
	}
}

var planFingerprintRe = regexp.MustCompile(`plan ([0-9a-f]{16})`)

// TestServerPlanSchemaChangeInvalidation pins the cache-identity contract at
// the HTTP surface: the same query text against a re-uploaded table with a
// different schema must plan under a different fingerprint (the signature is
// folded into the cache key), never reuse the old pushdown program.
func TestServerPlanSchemaChangeInvalidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	makeCSV := func(extra bool) string {
		header := "Status,Savings,Credit"
		if extra {
			header += ",Region"
		}
		csv := header + "\n"
		for i := 0; i < 60; i++ {
			row := fmt.Sprintf("%d,%d,%d", i%4, i%3, (i+i/4)%2)
			if extra {
				row += fmt.Sprintf(",%d", i%5)
			}
			csv += row + "\n"
		}
		return csv
	}
	create := func(extra bool) {
		t.Helper()
		var info SessionInfo
		code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
			Name: "mine",
			CSV: &CSVDatabase{
				Tables: []CSVTable{{Name: "Loans", Data: makeCSV(extra)}},
				Model: &CSVModel{Edges: [][2]string{
					{"Loans.Status", "Loans.Credit"},
					{"Loans.Savings", "Loans.Credit"},
				}},
			},
		}, &info)
		if code != http.StatusOK {
			t.Fatalf("csv session (extra=%v): status %d (%+v)", extra, code, info)
		}
	}
	explainFP := func() string {
		t.Helper()
		var res ExplainResponse
		code := do(t, "POST", ts.URL+"/v1/explain", QueryRequest{
			Session: "mine",
			Query:   `USE Loans WHEN Savings = 1 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		}, &res)
		if code != http.StatusOK {
			t.Fatalf("explain: status %d", code)
		}
		m := planFingerprintRe.FindStringSubmatch(res.Plan)
		if m == nil {
			t.Fatalf("explain output has no plan fingerprint:\n%s", res.Plan)
		}
		return m[1]
	}

	create(false)
	fp1 := explainFP()
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/mine", nil, nil); code != http.StatusOK {
		t.Fatalf("delete session: status %d", code)
	}
	create(true)
	fp2 := explainFP()
	if fp1 == fp2 {
		t.Fatalf("same fingerprint %s across a schema change: a stale plan could be served", fp1)
	}
}

// TestServerPlanCacheAcrossAppend pins cache identity along the MVCC chain:
// after an append, the same query as of the old version must still hit the
// plan it compiled before the append (same fingerprint, no fresh compile),
// while the head — new data, new version — must compile fresh under a
// different fingerprint.
func TestServerPlanCacheAcrossAppend(t *testing.T) {
	ts := newTestServer(t, Config{})
	createLoansSession(t, ts.URL, "v", 600)

	explainFP := func(snapshot int64) string {
		t.Helper()
		var res ExplainResponse
		code := do(t, "POST", ts.URL+"/v1/sessions/v/explain", QueryRequest{
			Query: loansQuery, Snapshot: snapshot,
		}, &res)
		if code != http.StatusOK {
			t.Fatalf("explain@%d: status %d", snapshot, code)
		}
		m := planFingerprintRe.FindStringSubmatch(res.Plan)
		if m == nil {
			t.Fatalf("explain output has no plan fingerprint:\n%s", res.Plan)
		}
		return m[1]
	}
	planStats := func() struct{ Hits, Misses, Compiles uint64 } {
		t.Helper()
		var stats StatsResponse
		if code := do(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
			t.Fatalf("stats: status %d", code)
		}
		return struct{ Hits, Misses, Compiles uint64 }{
			stats.Plan.Hits, stats.Plan.Misses, stats.Plan.Compiles,
		}
	}

	fpV1 := explainFP(0) // compiles at version 1
	before := planStats()
	appendLoans(t, ts.URL, "v", 600, 1100)

	// As of version 1: identical fingerprint, served from cache — the append
	// invalidated nothing behind the pinned snapshot.
	if got := explainFP(1); got != fpV1 {
		t.Fatalf("as-of-1 fingerprint %s != pre-append %s", got, fpV1)
	}
	afterPinned := planStats()
	if afterPinned.Hits <= before.Hits {
		t.Fatalf("as-of-1 explain missed the plan cache: %+v -> %+v", before, afterPinned)
	}
	if afterPinned.Compiles != before.Compiles {
		t.Fatalf("as-of-1 explain recompiled: %+v -> %+v", before, afterPinned)
	}

	// Head (version 2): different data identity, fresh fingerprint, fresh
	// compile.
	fpHead := explainFP(0)
	if fpHead == fpV1 {
		t.Fatalf("head shares fingerprint %s with version 1: stale stats could be served", fpV1)
	}
	afterHead := planStats()
	if afterHead.Compiles != afterPinned.Compiles+1 {
		t.Fatalf("head explain compiles %d, want %d", afterHead.Compiles, afterPinned.Compiles+1)
	}
}
