package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hyper"
	"hyper/internal/dist"
	"hyper/internal/obs"
)

// QueryRequest targets one session with one HypeRQL query. The zero Method
// runs the default engine for the query kind.
type QueryRequest struct {
	// Session names the target session. On the resource-scoped routes
	// (POST /v1/sessions/{name}/whatif etc.) the path wins; a non-empty body
	// session that disagrees with the path is a 400.
	Session string `json:"session,omitempty"`
	Query   string `json:"query"`
	// Method selects the how-to formulation: "" or "ip" (integer program),
	// "brute" (exhaustive Opt-HowTo), "mincost" (minimize update cost
	// subject to Target). Ignored by what-if and explain.
	Method string `json:"method,omitempty"`
	// Target is the aggregate floor for method "mincost".
	Target float64 `json:"target,omitempty"`
	// Snapshot pins the evaluation to a published session version ("as of
	// v"); 0 evaluates the head. A pinned query is byte-identical to the
	// same query against a fresh session holding that version's rows.
	Snapshot int64 `json:"snapshot,omitempty"`
	// DeltaVs, for what-if queries only, additionally evaluates the query
	// as of this version and reports the value difference in the response's
	// delta field — "what changed between v and w for this hypothetical".
	DeltaVs int64 `json:"delta_vs,omitempty"`
	// Shards caps the worker fan-out of this request's evaluation
	// (0 = the session's setting, itself defaulting to GOMAXPROCS). Purely
	// an execution knob: results are bit-identical for every value.
	Shards int `json:"shards,omitempty"`
	// Placement selects where the evaluation runs; like Shards it can never
	// change a result. "" = auto (distribute what-if plan shards over live
	// registered workers, local otherwise), "local" = this process only,
	// "workers" = distribute plan shards (what-if only), "fit" = evaluate
	// locally but offload shard-mergeable estimator fits to the workers
	// (what-if and how-to).
	Placement string `json:"placement,omitempty"`
}

// WhatIfDelta compares one what-if evaluation across two snapshot versions.
type WhatIfDelta struct {
	// VsSnapshot is the comparison version (the request's delta_vs).
	VsSnapshot int64 `json:"vs_snapshot"`
	// VsValue is the query's value as of VsSnapshot.
	VsValue float64 `json:"vs_value"`
	// Delta is value(snapshot) - value(vs_snapshot).
	Delta float64 `json:"delta"`
}

// WhatIfResponse is the wire form of a what-if result.
type WhatIfResponse struct {
	Value         float64  `json:"value"`
	Sum           float64  `json:"sum"`
	Count         float64  `json:"count"`
	Mode          string   `json:"mode"`
	Estimator     string   `json:"estimator"`
	Backdoor      []string `json:"backdoor,omitempty"`
	Blocks        int      `json:"blocks"`
	Disjuncts     int      `json:"disjuncts"`
	ViewRows      int      `json:"view_rows"`
	UpdatedRows   int      `json:"updated_rows"`
	SampledRows   int      `json:"sampled_rows"`
	TrainedModels int      `json:"trained_models"`
	// Snapshot is the session version this evaluation saw; Delta compares
	// against another version when the request asked with delta_vs.
	Snapshot int64        `json:"snapshot,omitempty"`
	Delta    *WhatIfDelta `json:"delta,omitempty"`
	// ShardPlan/ShardWorkers report the evaluation's shard fan-out;
	// ShardedFit is true when the estimator was fitted per shard and merged.
	ShardPlan    int  `json:"shard_plan"`
	ShardWorkers int  `json:"shard_workers"`
	ShardedFit   bool `json:"sharded_fit,omitempty"`
	// Placement/RemoteWorkers report where the evaluation ran (omitted for
	// a plain local run; execution-only, never part of the result value).
	Placement     string `json:"placement,omitempty"`
	RemoteWorkers int    `json:"remote_workers,omitempty"`
	// Degraded reports that the evaluation completed on less than the full
	// worker fleet (reasons: worker_lost, quarantine, local_fallback).
	// Degradation moves work, never results — the value is still exact.
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	TotalMs        float64 `json:"total_ms"`
	// Trace is the request's rendered span tree, present only when the
	// client asked for it with ?trace=1.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

func toWhatIfResponse(r *hyper.WhatIfResult) *WhatIfResponse {
	return &WhatIfResponse{
		Value:          r.Value,
		Sum:            r.Sum,
		Count:          r.Count,
		Mode:           r.Mode.String(),
		Estimator:      r.EstimatorUsed,
		Backdoor:       r.Backdoor,
		Blocks:         r.Blocks,
		Disjuncts:      r.Disjuncts,
		ViewRows:       r.ViewRows,
		UpdatedRows:    r.UpdatedRows,
		SampledRows:    r.SampledRows,
		TrainedModels:  r.TrainedModels,
		ShardPlan:      r.ShardPlan,
		ShardWorkers:   r.ShardWorkers,
		ShardedFit:     r.ShardedFit,
		Placement:      r.Placement,
		RemoteWorkers:  r.RemoteWorkers,
		Degraded:       r.Degraded,
		DegradedReason: r.DegradedReason,
		TotalMs:        float64(r.Total) / float64(time.Millisecond),
	}
}

// HowToChoice is the decision for one HOWTOUPDATE attribute.
type HowToChoice struct {
	Attr string `json:"attr"`
	// Update renders the chosen hypothetical update ("Price: 1.1x"), or
	// "no change".
	Update string  `json:"update"`
	Delta  float64 `json:"delta"`
}

// HowToResponse is the wire form of a how-to result.
type HowToResponse struct {
	Choices     []HowToChoice `json:"choices"`
	Objective   float64       `json:"objective"`
	Base        float64       `json:"base"`
	Candidates  int           `json:"candidates"`
	WhatIfEvals int           `json:"whatif_evals"`
	IPNodes     int           `json:"ip_nodes"`
	// Snapshot is the session version this evaluation saw.
	Snapshot int64 `json:"snapshot,omitempty"`
	// Degraded reports that remote fits ran on less than the full worker
	// fleet (placement "fit" only); the choices are still exact.
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	TotalMs        float64 `json:"total_ms"`
	// Trace is the request's rendered span tree (?trace=1 only).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

func toHowToResponse(r *hyper.HowToResult) *HowToResponse {
	out := &HowToResponse{
		Objective:   r.Objective,
		Base:        r.Base,
		Candidates:  r.Candidates,
		WhatIfEvals: r.WhatIfEvals,
		IPNodes:     r.IPNodes,
		TotalMs:     float64(r.Total) / float64(time.Millisecond),
	}
	for _, c := range r.Choices {
		out.Choices = append(out.Choices, HowToChoice{Attr: c.Attr, Update: c.String(), Delta: c.Delta})
	}
	return out
}

// sessionScopedQuery decodes a QueryRequest addressed by path: the route's
// {name} is authoritative, and a conflicting body session is rejected so a
// copy-pasted legacy body can't silently target the wrong session.
func (s *Server) sessionScopedQuery(r *http.Request) (*sessionEntry, QueryRequest, error) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, req, err
	}
	name := r.PathValue("name")
	if req.Session != "" && req.Session != name {
		return nil, req, errcf(http.StatusBadRequest, "session_mismatch",
			"body targets session %q but the path targets %q", req.Session, name)
	}
	req.Session = name
	e, err := s.session(name)
	return e, req, err
}

func (s *Server) handleWhatIf(r *http.Request) (any, error) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	e, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	return s.runWhatIf(r, e, req)
}

func (s *Server) handleSessionWhatIf(r *http.Request) (any, error) {
	e, req, err := s.sessionScopedQuery(r)
	if err != nil {
		return nil, err
	}
	return s.runWhatIf(r, e, req)
}

func (s *Server) runWhatIf(r *http.Request, e *sessionEntry, req QueryRequest) (any, error) {
	sn, err := e.resolve(req.Snapshot)
	if err != nil {
		return nil, err
	}
	stampShape(r.Context(), e, "whatif", req.Query)
	resp, err := e.whatIf(r.Context(), sn, req.Query, req.Shards, req.Placement, nil)
	if err != nil {
		return nil, err
	}
	if req.DeltaVs != 0 {
		resp.Delta, err = e.whatIfDelta(r.Context(), resp.Value, req)
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// whatIfDelta evaluates the same what-if as of req.DeltaVs and folds the
// comparison: both evaluations are pinned, so the delta is a pure function
// of the two immutable versions.
func (e *sessionEntry) whatIfDelta(ctx context.Context, value float64, req QueryRequest) (*WhatIfDelta, error) {
	vs, err := e.resolve(req.DeltaVs)
	if err != nil {
		return nil, err
	}
	vsResp, err := e.whatIf(ctx, vs, req.Query, req.Shards, req.Placement, nil)
	if err != nil {
		return nil, err
	}
	return &WhatIfDelta{VsSnapshot: vs.version, VsValue: vsResp.Value, Delta: value - vsResp.Value}, nil
}

// rejectDeltaVs guards the endpoints delta comparisons don't apply to.
func rejectDeltaVs(req QueryRequest) error {
	if req.DeltaVs != 0 {
		return errf(http.StatusBadRequest, "delta_vs applies to what-if queries only")
	}
	return nil
}

func (s *Server) handleHowTo(r *http.Request) (any, error) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	e, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	return s.runHowTo(r, e, req)
}

func (s *Server) handleSessionHowTo(r *http.Request) (any, error) {
	e, req, err := s.sessionScopedQuery(r)
	if err != nil {
		return nil, err
	}
	return s.runHowTo(r, e, req)
}

func (s *Server) runHowTo(r *http.Request, e *sessionEntry, req QueryRequest) (any, error) {
	if err := rejectDeltaVs(req); err != nil {
		return nil, err
	}
	sn, err := e.resolve(req.Snapshot)
	if err != nil {
		return nil, err
	}
	stampShape(r.Context(), e, "howto", req.Query)
	return e.howTo(r.Context(), sn, req, nil)
}

func (s *Server) handleExplain(r *http.Request) (any, error) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	e, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	return s.runExplain(r, e, req)
}

func (s *Server) handleSessionExplain(r *http.Request) (any, error) {
	e, req, err := s.sessionScopedQuery(r)
	if err != nil {
		return nil, err
	}
	return s.runExplain(r, e, req)
}

func (s *Server) runExplain(r *http.Request, e *sessionEntry, req QueryRequest) (any, error) {
	if err := rejectDeltaVs(req); err != nil {
		return nil, err
	}
	sn, err := e.resolve(req.Snapshot)
	if err != nil {
		return nil, err
	}
	stampShape(r.Context(), e, "explain", req.Query)
	return e.explain(sn, req.Query)
}

// sessionFor applies a per-request shard fan-out override to a snapshot's
// session: 0 keeps the shared session; anything else derives a session
// (same database, model and cache) whose options carry the override.
func (e *sessionEntry) sessionFor(sn *snapshotEntry, shards int) *hyper.Session {
	if shards <= 0 {
		return sn.sess
	}
	return sn.sess.With(sn.sess.Options().WithShards(shards))
}

// fitSession derives a session whose shard-mergeable estimator fits are
// offloaded to the registered workers (placement "fit"). The fitter is
// per-request so WorkersUsed reports this request's remote contribution —
// 0 means every fit was cache-warm or fell back local.
func (e *sessionEntry) fitSession(sn *snapshotEntry, shards int) (*hyper.Session, *dist.SessionFitter) {
	fitter := e.dist.Fitter(sn.frame)
	opts := e.sessionFor(sn, shards).Options().WithRemoteFit(fitter)
	return sn.sess.With(opts), fitter
}

// resolvePlacement validates the placement knob against the query kind and
// resolves "" (auto): what-if queries distribute over live workers when any
// are registered, how-to queries stay local unless "fit" is asked for
// explicitly (a how-to evaluates many candidate queries; per-fit round
// trips are worth it only when the caller says so).
func (e *sessionEntry) resolvePlacement(placement, kind string) (string, error) {
	switch placement {
	case "":
		if kind == "whatif" && e.dist != nil && e.dist.WorkersAlive() > 0 {
			return "workers", nil
		}
		return "local", nil
	case "local", "fit":
		return placement, nil
	case "workers":
		if kind != "whatif" {
			return "", errf(http.StatusBadRequest, "placement %q applies to what-if queries only (use \"fit\" for how-to)", placement)
		}
		return placement, nil
	default:
		return "", errf(http.StatusBadRequest, "unknown placement %q (want local|workers|fit)", placement)
	}
}

// whatIf evaluates one what-if query against a pinned snapshot under ctx
// (cancelled requests and cancelled jobs stop the engine mid-evaluation);
// shards > 0 overrides the session's worker fan-out for this request;
// placement selects where the evaluation runs (results are identical
// everywhere); progress may be nil.
func (e *sessionEntry) whatIf(ctx context.Context, sn *snapshotEntry, query string, shards int, placement string, progress hyper.Progress) (*WhatIfResponse, error) {
	e.queries.Add(1)
	pl, err := e.resolvePlacement(placement, "whatif")
	if err != nil {
		return nil, err
	}
	var res *hyper.WhatIfResult
	switch pl {
	case "workers":
		sess := e.sessionFor(sn, shards)
		res, err = e.dist.EvaluateWhatIf(ctx, dist.EvalSpec{
			DB: sess.DB(), Model: sess.Model(), Frame: sn.frame,
			Query: query, Options: sess.EngineOptions(), Progress: progress,
		})
	case "fit":
		sess, fitter := e.fitSession(sn, shards)
		res, err = sess.WhatIfContext(ctx, query, progress)
		if res != nil {
			res.Placement = "fit"
			res.RemoteWorkers = fitter.WorkersUsed()
			res.Degraded, res.DegradedReason = fitter.Degraded()
		}
	default:
		res, err = e.sessionFor(sn, shards).WhatIfContext(ctx, query, progress)
	}
	if err != nil {
		return nil, queryError(ctx, err)
	}
	if e.shards != nil {
		e.shards.record(res.ShardPlan, res.ShardWorkers)
	}
	out := toWhatIfResponse(res)
	out.Snapshot = sn.version
	return out, nil
}

func (e *sessionEntry) howTo(ctx context.Context, sn *snapshotEntry, req QueryRequest, progress hyper.Progress) (*HowToResponse, error) {
	e.queries.Add(1)
	pl, err := e.resolvePlacement(req.Placement, "howto")
	if err != nil {
		return nil, err
	}
	sess := e.sessionFor(sn, req.Shards)
	var fitter *dist.SessionFitter
	if pl == "fit" {
		// Every candidate what-if of the how-to shares the snapshot's frame,
		// so its shard-mergeable fits distribute over the same transport.
		sess, fitter = e.fitSession(sn, req.Shards)
	}
	var res *hyper.HowToResult
	switch req.Method {
	case "", "ip":
		res, err = sess.HowToContext(ctx, req.Query, progress)
	case "brute":
		res, err = sess.HowToBruteForceContext(ctx, req.Query, progress)
	case "mincost":
		res, err = sess.HowToMinimizeCostContext(ctx, req.Query, req.Target, progress)
	default:
		return nil, errf(http.StatusBadRequest, "unknown how-to method %q (want ip|brute|mincost)", req.Method)
	}
	if err != nil {
		return nil, queryError(ctx, err)
	}
	out := toHowToResponse(res)
	out.Snapshot = sn.version
	if fitter != nil {
		out.Degraded, out.DegradedReason = fitter.Degraded()
	}
	return out, nil
}

// ExplainResponse is the wire form of an explain result.
type ExplainResponse struct {
	Plan string `json:"plan"`
	// Snapshot is the session version the plan was compiled against (the
	// plan fingerprint is version-qualified).
	Snapshot int64 `json:"snapshot,omitempty"`
	// Trace is the request's rendered span tree (?trace=1 only).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

func (e *sessionEntry) explain(sn *snapshotEntry, query string) (*ExplainResponse, error) {
	e.queries.Add(1)
	plan, err := sn.sess.Explain(query)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	return &ExplainResponse{Plan: plan, Snapshot: sn.version}, nil
}

// queryError maps an evaluation failure: a cancelled/expired context
// surfaces as-is (the job layer translates it to a lifecycle state; for a
// synchronous request the client is gone anyway), anything else is a
// malformed query or unsatisfiable plan, i.e. a client error.
func queryError(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return errf(http.StatusBadRequest, "%v", err)
}

// BatchQuery is one element of a batch request.
type BatchQuery struct {
	// Kind is whatif|howto|explain (default whatif).
	Kind   string  `json:"kind,omitempty"`
	Query  string  `json:"query"`
	Method string  `json:"method,omitempty"`
	Target float64 `json:"target,omitempty"`
	// Snapshot pins this element to a published session version (0 = head);
	// DeltaVs additionally reports the what-if delta against that version
	// (what-if elements only). See QueryRequest.
	Snapshot int64 `json:"snapshot,omitempty"`
	DeltaVs  int64 `json:"delta_vs,omitempty"`
	// Shards overrides the evaluation fan-out for this element (see
	// QueryRequest.Shards).
	Shards int `json:"shards,omitempty"`
	// Placement selects where this element runs (see QueryRequest.Placement).
	Placement string `json:"placement,omitempty"`
}

// BatchRequest fans N queries against one session across a worker pool.
type BatchRequest struct {
	// Session names the target session (resource-scoped batch routes take
	// it from the path instead; a conflicting body session is a 400).
	Session string       `json:"session,omitempty"`
	Queries []BatchQuery `json:"queries"`
	// Workers caps the pool for this request; 0 uses the server default,
	// and the server's BatchWorkers config is always an upper bound.
	Workers int `json:"workers,omitempty"`
}

// BatchResult is the outcome of one batch element, in request order.
type BatchResult struct {
	Index   int             `json:"index"`
	WhatIf  *WhatIfResponse `json:"whatif,omitempty"`
	HowTo   *HowToResponse  `json:"howto,omitempty"`
	Plan    string          `json:"plan,omitempty"`
	Error   string          `json:"error,omitempty"`
	TotalMs float64         `json:"total_ms"`
}

// BatchResponse reports all element results plus wall-clock totals.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Errors  int           `json:"errors"`
	Workers int           `json:"workers"`
	TotalMs float64       `json:"total_ms"`
	// Trace is the request's rendered span tree (?trace=1 only).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

func (s *Server) handleBatch(r *http.Request) (any, error) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	e, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	return s.runBatchRequest(r, e, req)
}

func (s *Server) handleSessionBatch(r *http.Request) (any, error) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	name := r.PathValue("name")
	if req.Session != "" && req.Session != name {
		return nil, errcf(http.StatusBadRequest, "session_mismatch",
			"body targets session %q but the path targets %q", req.Session, name)
	}
	req.Session = name
	e, err := s.session(name)
	if err != nil {
		return nil, err
	}
	return s.runBatchRequest(r, e, req)
}

func (s *Server) runBatchRequest(r *http.Request, e *sessionEntry, req BatchRequest) (any, error) {
	if len(req.Queries) == 0 {
		return nil, errf(http.StatusBadRequest, "batch has no queries")
	}
	stampBatchShape(r.Context(), e, req.Queries)
	return e.runBatch(r.Context(), req.Queries, s.batchWorkers(req.Workers), nil), nil
}

// batchWorkers clamps a request's worker ask to the server bound.
func (s *Server) batchWorkers(want int) int {
	if want <= 0 || want > s.cfg.BatchWorkers {
		return s.cfg.BatchWorkers
	}
	return want
}

// runBatch fans the queries across a bounded worker pool. ctx cancellation
// stops in-flight evaluations (their elements report the context error) and
// skips unstarted ones; progress, when non-nil, counts completed elements.
// It is shared by the synchronous /v1/batch handler and batch jobs.
func (e *sessionEntry) runBatch(ctx context.Context, queries []BatchQuery, workers int, progress hyper.Progress) *BatchResponse {
	if workers > len(queries) {
		workers = len(queries)
	}
	start := time.Now()
	results := make([]BatchResult, len(queries))
	idx := make(chan int)
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Index: i, Error: err.Error()}
					continue
				}
				results[i] = e.runBatchQuery(ctx, i, queries[i])
				if progress != nil {
					progress("queries", int(done.Add(1)), len(queries))
				}
			}
		}()
	}
	for i := range queries {
		idx <- i
	}
	close(idx)
	wg.Wait()

	resp := &BatchResponse{
		Results: results,
		Workers: workers,
		TotalMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, r := range results {
		if r.Error != "" {
			resp.Errors++
		}
	}
	return resp
}

// runBatchQuery evaluates one batch element, converting failures into the
// element's error field so one bad query cannot sink its siblings. Each
// element resolves its own snapshot pin; an unknown version is an
// element-local error.
func (e *sessionEntry) runBatchQuery(ctx context.Context, i int, q BatchQuery) BatchResult {
	start := time.Now()
	out := BatchResult{Index: i}
	sn, err := e.resolve(q.Snapshot)
	if err != nil {
		out.Error = err.Error()
		out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
		return out
	}
	switch q.Kind {
	case "", "whatif":
		res, err := e.whatIf(ctx, sn, q.Query, q.Shards, q.Placement, nil)
		if err == nil && q.DeltaVs != 0 {
			res.Delta, err = e.whatIfDelta(ctx, res.Value,
				QueryRequest{Query: q.Query, DeltaVs: q.DeltaVs, Shards: q.Shards, Placement: q.Placement})
		}
		if err != nil {
			out.Error = err.Error()
		} else {
			out.WhatIf = res
		}
	case "howto":
		if q.DeltaVs != 0 {
			out.Error = "delta_vs applies to what-if queries only"
			break
		}
		res, err := e.howTo(ctx, sn, QueryRequest{Query: q.Query, Method: q.Method, Target: q.Target, Shards: q.Shards, Placement: q.Placement}, nil)
		if err != nil {
			out.Error = err.Error()
		} else {
			out.HowTo = res
		}
	case "explain":
		if q.DeltaVs != 0 {
			out.Error = "delta_vs applies to what-if queries only"
			break
		}
		res, err := e.explain(sn, q.Query)
		if err != nil {
			out.Error = err.Error()
		} else {
			out.Plan = res.Plan
		}
	default:
		out.Error = fmt.Sprintf("unknown query kind %q (want whatif|howto|explain)", q.Kind)
	}
	out.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
	return out
}
