package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyper/internal/dist"
)

// distTestServer boots the serving API plus `workers` real shard workers
// (separate handlers, own frame stores) registered with the server's
// embedded coordinator.
func distTestServer(t *testing.T, workers int) (base string) {
	t.Helper()
	srv := New(Config{Logf: nil})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < workers; i++ {
		w := dist.NewWorker(dist.WorkerConfig{})
		wts := httptest.NewServer(w.Handler())
		t.Cleanup(wts.Close)
		body := fmt.Sprintf(`{"id":"tw%d","url":%q}`, i+1, wts.URL)
		resp, err := http.Post(ts.URL+"/dist/v1/workers", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register status %d", resp.StatusCode)
		}
	}
	return ts.URL
}

func distPost(t *testing.T, base, path string, body any, dst any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, dst); err != nil {
			t.Fatalf("decoding %s response: %v (%s)", path, err, payload)
		}
	}
	return resp.StatusCode, payload
}

// stableWhatIf is the placement-independent subset of a what-if response:
// every semantic field, none of the execution diagnostics (wall time,
// trained-model counts, worker fan-out).
type stableWhatIf struct {
	Value       float64  `json:"value"`
	Sum         float64  `json:"sum"`
	Count       float64  `json:"count"`
	Mode        string   `json:"mode"`
	Estimator   string   `json:"estimator"`
	Backdoor    []string `json:"backdoor"`
	Blocks      int      `json:"blocks"`
	Disjuncts   int      `json:"disjuncts"`
	ViewRows    int      `json:"view_rows"`
	UpdatedRows int      `json:"updated_rows"`
	SampledRows int      `json:"sampled_rows"`
	ShardPlan   int      `json:"shard_plan"`
}

func stableOf(r *WhatIfResponse) string {
	raw, _ := json.Marshal(stableWhatIf{
		Value: r.Value, Sum: r.Sum, Count: r.Count, Mode: r.Mode, Estimator: r.Estimator,
		Backdoor: r.Backdoor, Blocks: r.Blocks, Disjuncts: r.Disjuncts,
		ViewRows: r.ViewRows, UpdatedRows: r.UpdatedRows, SampledRows: r.SampledRows,
		ShardPlan: r.ShardPlan,
	})
	return string(raw)
}

func TestServerPlacement(t *testing.T) {
	base := distTestServer(t, 2)
	status, payload := distPost(t, base, "/v1/sessions", CreateSessionRequest{
		Name: "g", Dataset: "german",
		Options: &SessionOptions{Seed: 7, ShardRows: 256},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("create session: %d %s", status, payload)
	}

	queries := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Housing) = 1 OUTPUT AVG(POST(Credit))`,
	}
	for _, src := range queries {
		var local, workers, fit, auto WhatIfResponse
		// "fit" runs first: on a cold session cache its estimator fits go
		// through the remote transport (a warm cache would have nothing left
		// to fit — the artifacts are identical either way).
		if st, p := distPost(t, base, "/v1/whatif", QueryRequest{Session: "g", Query: src, Placement: "fit"}, &fit); st != 200 {
			t.Fatalf("fit: %d %s", st, p)
		}
		if st, p := distPost(t, base, "/v1/whatif", QueryRequest{Session: "g", Query: src, Placement: "local"}, &local); st != 200 {
			t.Fatalf("local: %d %s", st, p)
		}
		if st, p := distPost(t, base, "/v1/whatif", QueryRequest{Session: "g", Query: src, Placement: "workers"}, &workers); st != 200 {
			t.Fatalf("workers: %d %s", st, p)
		}
		if st, p := distPost(t, base, "/v1/whatif", QueryRequest{Session: "g", Query: src}, &auto); st != 200 {
			t.Fatalf("auto: %d %s", st, p)
		}
		ref := stableOf(&local)
		for name, r := range map[string]*WhatIfResponse{"workers": &workers, "fit": &fit, "auto": &auto} {
			if got := stableOf(r); got != ref {
				t.Fatalf("%s: placement %s diverges:\n%s\nvs local\n%s", src, name, got, ref)
			}
		}
		if workers.Placement != "workers" || workers.RemoteWorkers == 0 {
			t.Fatalf("workers response placement=%q remote=%d", workers.Placement, workers.RemoteWorkers)
		}
		if auto.Placement != "workers" {
			t.Fatalf("auto placement resolved to %q with live workers", auto.Placement)
		}
		if fit.Placement != "fit" {
			t.Fatalf("fit response placement=%q", fit.Placement)
		}
	}

	// How-to: "fit" distributes candidate fits; the choices must match the
	// local run exactly.
	howto := `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`
	var hLocal, hFit HowToResponse
	if st, p := distPost(t, base, "/v1/howto", QueryRequest{Session: "g", Query: howto, Placement: "fit"}, &hFit); st != 200 {
		t.Fatalf("howto fit: %d %s", st, p)
	}
	if st, p := distPost(t, base, "/v1/howto", QueryRequest{Session: "g", Query: howto, Placement: "local"}, &hLocal); st != 200 {
		t.Fatalf("howto local: %d %s", st, p)
	}
	if hLocal.Objective != hFit.Objective || hLocal.Base != hFit.Base || len(hLocal.Choices) != len(hFit.Choices) {
		t.Fatalf("howto fit diverges: %+v vs %+v", hFit, hLocal)
	}
	for i := range hLocal.Choices {
		if hLocal.Choices[i] != hFit.Choices[i] {
			t.Fatalf("howto choice %d: %+v vs %+v", i, hFit.Choices[i], hLocal.Choices[i])
		}
	}

	// Placement validation.
	if st, _ := distPost(t, base, "/v1/howto", QueryRequest{Session: "g", Query: howto, Placement: "workers"}, nil); st != http.StatusBadRequest {
		t.Fatalf("howto placement=workers status %d, want 400", st)
	}
	if st, _ := distPost(t, base, "/v1/whatif", QueryRequest{Session: "g", Query: queries[0], Placement: "bogus"}, nil); st != http.StatusBadRequest {
		t.Fatalf("placement=bogus status %d, want 400", st)
	}

	// Stats surface the coordinator gauges and worker registry.
	var stats StatsResponse
	if st, p := distPost(t, base, "/v1/stats", nil, nil); st != http.StatusMethodNotAllowed && st != 200 {
		t.Fatalf("stats: %d %s", st, p)
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Dist.WorkersAlive != 2 || len(stats.Dist.Workers) != 2 {
		t.Fatalf("dist stats workers: %+v", stats.Dist)
	}
	if stats.Dist.RemoteEvals == 0 || stats.Dist.FramesShipped == 0 || stats.Dist.RemoteFits == 0 {
		t.Fatalf("dist gauges not moving: %+v", stats.Dist.Stats)
	}
}

// TestServerPlacementJob submits a distributed what-if job and polls it to
// completion: remote shard completion must surface through the job's
// shards_done/shards_total progress gauge.
func TestServerPlacementJob(t *testing.T) {
	base := distTestServer(t, 2)
	if st, p := distPost(t, base, "/v1/sessions", CreateSessionRequest{
		Name: "g", Dataset: "german",
		Options: &SessionOptions{Seed: 7, ShardRows: 256},
	}, nil); st != 200 {
		t.Fatalf("create session: %d %s", st, p)
	}
	var local WhatIfResponse
	if st, p := distPost(t, base, "/v1/whatif", QueryRequest{
		Session: "g", Query: `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Placement: "local",
	}, &local); st != 200 {
		t.Fatalf("local: %d %s", st, p)
	}

	var job JobInfo
	if st, p := distPost(t, base, "/v1/jobs", JobRequest{
		Session: "g", Kind: "whatif",
		Query:     `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		Placement: "workers",
	}, &job); st != 200 {
		t.Fatalf("submit: %d %s", st, p)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State == "done" || job.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != "done" {
		t.Fatalf("job %s: %s", job.State, job.Error)
	}
	if want := int64(local.ShardPlan); job.Progress.ShardsTotal != want || job.Progress.ShardsDone != want {
		t.Fatalf("job shards progress %d/%d, want %d/%d", job.Progress.ShardsDone, job.Progress.ShardsTotal, want, want)
	}
	raw, err := json.Marshal(job.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res WhatIfResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Value != local.Value || res.Placement != "workers" {
		t.Fatalf("job result value=%v placement=%q, want value=%v placement=workers", res.Value, res.Placement, local.Value)
	}
}
