package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hyper/internal/obs"
)

var hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestUsageEndpointAggregatesByShape pins the usage analytics surface:
// queries differing only in literals land in one row with a summed cost
// vector, different kinds and structures land in separate rows, and the
// per-session view filters.
func TestUsageEndpointAggregatesByShape(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	// Two what-ifs of the same shape (different literals), one structurally
	// different what-if, one how-to.
	for _, q := range []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Status) = 4 OUTPUT COUNT(Credit = 0)`,
	} {
		if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: q}, nil); code != http.StatusOK {
			t.Fatalf("whatif: status %d", code)
		}
	}
	if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{
		Session: "g", Query: `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`,
	}, nil); code != http.StatusOK {
		t.Fatalf("whatif: status %d", code)
	}
	if code := do(t, "POST", ts.URL+"/v1/howto", QueryRequest{
		Session: "g", Query: `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`,
	}, nil); code != http.StatusOK {
		t.Fatalf("howto: status %d", code)
	}

	var usage UsageResponse
	if code := do(t, "GET", ts.URL+"/v1/usage", nil, &usage); code != http.StatusOK {
		t.Fatalf("usage: status %d", code)
	}
	if len(usage.Shapes) != 3 {
		t.Fatalf("usage rows = %d, want 3: %+v", len(usage.Shapes), usage.Shapes)
	}
	// Hottest first: the repeated shape leads with count 2.
	top := usage.Shapes[0]
	if top.Count != 2 || top.Kind != "whatif" || top.Session != "g" {
		t.Errorf("top row = %+v, want the count-2 whatif shape", top)
	}
	if !strings.Contains(top.Shape, "UPDATE(Status)") || !strings.Contains(top.Shape, "?") ||
		strings.ContainsAny(top.Shape, "0123456789") {
		t.Errorf("top shape %q should normalize literals away", top.Shape)
	}
	if !hex16.MatchString(top.Fingerprint) {
		t.Errorf("fingerprint %q is not 16 hex digits", top.Fingerprint)
	}
	if top.Cost == nil || top.Cost.TuplesEvaluated == 0 || top.Cost.ShardsRun == 0 {
		t.Errorf("top cost vector empty: %+v", top.Cost)
	}
	if top.TotalMs <= 0 || top.MeanMs <= 0 || top.MeanMs > top.TotalMs {
		t.Errorf("wall accounting: total=%v mean=%v", top.TotalMs, top.MeanMs)
	}
	kinds := map[string]bool{}
	for _, row := range usage.Shapes {
		kinds[row.Kind] = true
	}
	if !kinds["howto"] {
		t.Errorf("no howto row in %+v", usage.Shapes)
	}
	// The how-to's cost vector carries the solver-side counters.
	for _, row := range usage.Shapes {
		if row.Kind == "howto" && (row.Cost.HowToCandidates == 0 || row.Cost.WhatIfEvals == 0) {
			t.Errorf("howto cost vector missing candidate accounting: %+v", row.Cost)
		}
	}

	// Session filtering: the real session returns all rows, a stranger none.
	var filtered UsageResponse
	if code := do(t, "GET", ts.URL+"/v1/usage/g", nil, &filtered); code != http.StatusOK || len(filtered.Shapes) != 3 {
		t.Fatalf("usage/g: status %d, %d rows", code, len(filtered.Shapes))
	}
	if code := do(t, "GET", ts.URL+"/v1/usage/nosuch", nil, &filtered); code != http.StatusOK || len(filtered.Shapes) != 0 {
		t.Fatalf("usage/nosuch: status %d, %d rows", code, len(filtered.Shapes))
	}
}

// TestUsageTableBounded pins the top-K eviction: at capacity, a new shape
// evicts the least-used row, and the hot rows survive.
func TestUsageTableBounded(t *testing.T) {
	u := newUsageTable(2)
	cost := &obs.MeterJSON{TuplesEvaluated: 1}
	u.record("s", "whatif", "aaaa", "A", cost, 1, false)
	u.record("s", "whatif", "aaaa", "A", cost, 1, false)
	u.record("s", "whatif", "bbbb", "B", cost, 1, true)
	u.record("s", "whatif", "cccc", "C", cost, 1, false) // evicts B (count 1 < 2)

	rows := u.snapshot("")
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Fingerprint != "aaaa" || rows[0].Count != 2 {
		t.Errorf("hot row should survive eviction: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Fingerprint == "bbbb" {
			t.Errorf("least-used row should have been evicted: %+v", rows)
		}
	}
	if rows[0].Cost.TuplesEvaluated != 2 {
		t.Errorf("cost should sum across records: %+v", rows[0].Cost)
	}
}

// TestTraceListFilters pins the /v1/traces query parameters end to end:
// kind and limit narrow the listing, malformed values are a 400 with a
// JSON error body.
func TestTraceListFilters(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")
	for i := 0; i < 2; i++ {
		if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanCount}, nil); code != http.StatusOK {
			t.Fatalf("whatif: status %d", code)
		}
	}
	if code := do(t, "POST", ts.URL+"/v1/explain", QueryRequest{Session: "g", Query: germanCount}, nil); code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}

	var list TraceListResponse
	if code := do(t, "GET", ts.URL+"/v1/traces", nil, &list); code != http.StatusOK || len(list.Traces) != 3 {
		t.Fatalf("unfiltered traces: code %d, %d rows", code, len(list.Traces))
	}
	if code := do(t, "GET", ts.URL+"/v1/traces?kind=whatif", nil, &list); code != http.StatusOK || len(list.Traces) != 2 {
		t.Fatalf("kind filter: code %d, %d rows", code, len(list.Traces))
	}
	for _, tr := range list.Traces {
		if tr.Name != "whatif" {
			t.Errorf("kind filter leaked %q", tr.Name)
		}
	}
	if code := do(t, "GET", ts.URL+"/v1/traces?limit=1", nil, &list); code != http.StatusOK || len(list.Traces) != 1 {
		t.Fatalf("limit filter: code %d, %d rows", code, len(list.Traces))
	}
	if code := do(t, "GET", ts.URL+"/v1/traces?kind=whatif&min_ms=0&limit=10", nil, &list); code != http.StatusOK || len(list.Traces) != 2 {
		t.Fatalf("combined filter: code %d, %d rows", code, len(list.Traces))
	}
	// A threshold far beyond any test-query latency filters everything.
	if code := do(t, "GET", ts.URL+"/v1/traces?min_ms=3600000", nil, &list); code != http.StatusOK || len(list.Traces) != 0 {
		t.Fatalf("min_ms filter: code %d, %d rows", code, len(list.Traces))
	}

	for _, bad := range []string{"min_ms=abc", "min_ms=-1", "limit=x", "limit=-2"} {
		var errBody map[string]string
		if code := do(t, "GET", ts.URL+"/v1/traces?"+bad, nil, &errBody); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, code)
		} else if errBody["error"] == "" {
			t.Errorf("%s: missing error body", bad)
		}
	}
}

// TestSlowLogCarriesCostAndShape pins the enriched slow-query line: the
// cost vector and shape identity ride along with the trace id.
func TestSlowLogCarriesCostAndShape(t *testing.T) {
	var slow strings.Builder
	var slowMu sync.Mutex
	srv := New(Config{SlowQueryMs: 1, SlowQueryLog: syncWriter{&slowMu, &slow}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	createSession(t, ts, "g")
	if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanCount}, nil); code != http.StatusOK {
		t.Fatalf("whatif: status %d", code)
	}

	slowMu.Lock()
	logged := slow.String()
	slowMu.Unlock()
	var line slowQueryLine
	if err := json.Unmarshal([]byte(strings.SplitN(logged, "\n", 2)[0]), &line); err != nil {
		t.Fatalf("slow-query line %q: %v", logged, err)
	}
	if line.Session != "g" || line.Kind != "whatif" || !hex16.MatchString(line.Shape) {
		t.Errorf("slow line identity = %q/%q/%q", line.Session, line.Kind, line.Shape)
	}
	if line.Cost == nil || line.Cost.TuplesEvaluated == 0 {
		t.Errorf("slow line cost vector = %+v", line.Cost)
	}
	if line.Cost != nil && len(line.Cost.StagesMs) == 0 {
		t.Errorf("slow line cost has no stage breakdown: %+v", line.Cost)
	}
}

// TestJobUsageRecorded pins that asynchronous jobs land in the same usage
// table as synchronous queries.
func TestJobUsageRecorded(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")
	var info JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Kind: "whatif", Query: germanCount}, &info); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	final := pollJob(t, ts, info.ID, 30*time.Second, terminal)
	if final.State != "done" {
		t.Fatalf("job state %q: %s", final.State, final.Error)
	}

	var usage UsageResponse
	if code := do(t, "GET", ts.URL+"/v1/usage/g", nil, &usage); code != http.StatusOK {
		t.Fatalf("usage: status %d", code)
	}
	if len(usage.Shapes) != 1 || usage.Shapes[0].Kind != "whatif" || usage.Shapes[0].Count != 1 {
		t.Fatalf("job usage rows = %+v", usage.Shapes)
	}
	if usage.Shapes[0].Cost.TuplesEvaluated == 0 {
		t.Errorf("job cost vector empty: %+v", usage.Shapes[0].Cost)
	}
}
