package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

// loansRow renders row i of the deterministic synthetic Loans table the
// MVCC tests grow. Any prefix [0,n) of these rows is reproducible, which is
// what lets a fresh session stand in as the golden for a pinned snapshot.
func loansRow(i int) string {
	return fmt.Sprintf("%d,%d,%d", i%4, (i/2)%3, (i+i/5)%2)
}

func loansCSV(lo, hi int) string {
	csv := "Status,Savings,Credit\n"
	for i := lo; i < hi; i++ {
		csv += loansRow(i) + "\n"
	}
	return csv
}

// createLoansSession creates a CSV session holding rows [0,n) of the Loans
// table at the test shard granularity.
func createLoansSession(t *testing.T, base, name string, n int) {
	t.Helper()
	status, payload := distPost(t, base, "/v1/sessions", CreateSessionRequest{
		Name: name,
		CSV: &CSVDatabase{
			Tables: []CSVTable{{Name: "Loans", Data: loansCSV(0, n)}},
			Model: &CSVModel{Edges: [][2]string{
				{"Loans.Status", "Loans.Credit"},
				{"Loans.Savings", "Loans.Credit"},
			}},
		},
		Options: &SessionOptions{Seed: 7, ShardRows: 256},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("create session %s: %d %s", name, status, payload)
	}
}

func appendLoans(t *testing.T, base, name string, lo, hi int) AppendResponse {
	t.Helper()
	var resp AppendResponse
	status, payload := distPost(t, base, "/v1/sessions/"+name+"/rows", AppendRequest{
		Tables: []AppendTable{{Name: "Loans", Data: loansCSV(lo, hi)}},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("append to %s: %d %s", name, status, payload)
	}
	return resp
}

const loansQuery = `USE Loans WHEN Savings = 1 UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`

// TestMVCCSnapshotBitIdentity is the tentpole acceptance test: after rows
// are appended, querying snapshot v must be bit-identical to querying a
// fresh session holding exactly v's row prefix — at shard fan-outs 1 and 4,
// both local and distributed over workers. The fresh session lives on a
// separate server so nothing (caches, registries) can be shared by
// accident.
func TestMVCCSnapshotBitIdentity(t *testing.T) {
	grown := distTestServer(t, 2)
	golden := distTestServer(t, 2)

	const prefix, full = 600, 1100
	createLoansSession(t, grown, "s", prefix)
	resp := appendLoans(t, grown, "s", prefix, full)
	if resp.Version != 2 || resp.Rows != full || resp.AppendedRows != full-prefix {
		t.Fatalf("append response = %+v, want version 2, %d rows", resp, full)
	}
	// Strided shard accounting at target 256: creation seals [0,256) and
	// [256,512); the append must reuse both (never rescanning history) and
	// fit exactly the three shards the new rows touch.
	if resp.ShardsFitted != 3 || resp.ShardsReused != 2 {
		t.Fatalf("append shards fitted=%d reused=%d, want 3 fitted, 2 reused", resp.ShardsFitted, resp.ShardsReused)
	}

	// golden server: fresh sessions on the prefix rows and on the full rows.
	createLoansSession(t, golden, "pre", prefix)
	createLoansSession(t, golden, "all", full)

	for _, shards := range []int{1, 4} {
		for _, placement := range []string{"local", "workers"} {
			label := fmt.Sprintf("shards=%d placement=%s", shards, placement)
			query := func(base, session string, snapshot int64) *WhatIfResponse {
				t.Helper()
				var res WhatIfResponse
				st, p := distPost(t, base, "/v1/sessions/"+session+"/whatif", QueryRequest{
					Query: loansQuery, Snapshot: snapshot, Shards: shards, Placement: placement,
				}, &res)
				if st != http.StatusOK {
					t.Fatalf("%s: whatif %s@%d: %d %s", label, session, snapshot, st, p)
				}
				return &res
			}
			asOf1 := query(grown, "s", 1)
			pre := query(golden, "pre", 0)
			if got, want := stableOf(asOf1), stableOf(pre); got != want {
				t.Fatalf("%s: as-of-1 diverges from fresh prefix session:\n%s\nvs\n%s", label, got, want)
			}
			if asOf1.Snapshot != 1 {
				t.Fatalf("%s: pinned response snapshot = %d, want 1", label, asOf1.Snapshot)
			}
			head := query(grown, "s", 0)
			all := query(golden, "all", 0)
			if got, want := stableOf(head), stableOf(all); got != want {
				t.Fatalf("%s: head diverges from fresh full session:\n%s\nvs\n%s", label, got, want)
			}
			if head.Snapshot != 2 {
				t.Fatalf("%s: head response snapshot = %d, want 2", label, head.Snapshot)
			}
			if stableOf(head) == stableOf(asOf1) {
				t.Fatalf("%s: append did not change the result — the golden is vacuous", label)
			}
		}
	}

	// The meter counters surface in usage analytics: the append shape's cost
	// vector must show the fitted/reused split (the observable form of the
	// "appends never refit sealed shards" invariant).
	var usage UsageResponse
	if code := do(t, "GET", grown+"/v1/usage/s", nil, &usage); code != http.StatusOK {
		t.Fatalf("usage: status %d", code)
	}
	found := false
	for _, u := range usage.Shapes {
		if u.Kind != "append" {
			continue
		}
		found = true
		if u.Shape != "APPEND(Loans)" {
			t.Errorf("append shape = %q, want APPEND(Loans)", u.Shape)
		}
		if u.Cost == nil || u.Cost.AppendShardsFit != 3 || u.Cost.AppendShardsReuse != 2 {
			t.Errorf("append cost vector = %+v, want fit 3, reuse 2", u.Cost)
		}
	}
	if !found {
		t.Error("usage table has no append shape")
	}

	// Snapshot listing reflects the chain.
	var snaps SnapshotListResponse
	if code := do(t, "GET", grown+"/v1/sessions/s/snapshots", nil, &snaps); code != http.StatusOK {
		t.Fatalf("snapshots: status %d", code)
	}
	if snaps.Head != 2 || len(snaps.Snapshots) != 2 {
		t.Fatalf("snapshots = %+v, want head 2 with 2 entries", snaps)
	}
	if snaps.Snapshots[0].Rows != prefix || snaps.Snapshots[1].Rows != full ||
		snaps.Snapshots[1].AppendedRows != full-prefix {
		t.Fatalf("snapshot rows = %+v", snaps.Snapshots)
	}
}

// TestMVCCWhatIfDelta exercises the first-class what-if delta: one request
// evaluates the hypothetical at two versions and reports the difference.
func TestMVCCWhatIfDelta(t *testing.T) {
	ts := newTestServer(t, Config{})
	createLoansSession(t, ts.URL, "d", 600)
	appendLoans(t, ts.URL, "d", 600, 1100)

	var v1, head WhatIfResponse
	if code := do(t, "POST", ts.URL+"/v1/sessions/d/whatif", QueryRequest{Query: loansQuery, Snapshot: 1}, &v1); code != http.StatusOK {
		t.Fatalf("as-of-1: status %d", code)
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions/d/whatif", QueryRequest{Query: loansQuery, DeltaVs: 1}, &head); code != http.StatusOK {
		t.Fatalf("delta query: status %d", code)
	}
	if head.Delta == nil {
		t.Fatal("delta_vs query returned no delta")
	}
	if head.Delta.VsSnapshot != 1 || head.Delta.VsValue != v1.Value {
		t.Fatalf("delta = %+v, want vs_snapshot 1 with value %v", head.Delta, v1.Value)
	}
	if got, want := head.Delta.Delta, head.Value-v1.Value; got != want {
		t.Fatalf("delta.delta = %v, want %v", got, want)
	}

	// delta_vs is a what-if concept; explain and how-to reject it.
	var errResp ErrorResponse
	if code := do(t, "POST", ts.URL+"/v1/sessions/d/explain", QueryRequest{Query: loansQuery, DeltaVs: 1}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("explain with delta_vs: status %d", code)
	}
	// An unknown comparison version is snapshot_not_found.
	if code := do(t, "POST", ts.URL+"/v1/sessions/d/whatif", QueryRequest{Query: loansQuery, DeltaVs: 9}, &errResp); code != http.StatusNotFound {
		t.Fatalf("delta_vs=9: status %d", code)
	}
	if errResp.Code != "snapshot_not_found" {
		t.Fatalf("delta_vs=9 code = %q, want snapshot_not_found", errResp.Code)
	}
}

// TestMVCCJobsPinVersion: a job submitted before an append runs against the
// version that was head at submit time, not whatever head is when the
// runner gets to it.
func TestMVCCJobsPinVersion(t *testing.T) {
	ts := newTestServer(t, Config{})
	createLoansSession(t, ts.URL, "j", 600)

	var v1 WhatIfResponse
	do(t, "POST", ts.URL+"/v1/sessions/j/whatif", QueryRequest{Query: loansQuery}, &v1)

	var job JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "j", Kind: "whatif", Query: loansQuery,
	}, &job); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if job.Snapshot != 1 {
		t.Fatalf("job pinned snapshot = %d, want 1", job.Snapshot)
	}
	appendLoans(t, ts.URL, "j", 600, 1100)

	deadline := time.Now().Add(10 * time.Second)
	for job.State != "done" && job.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
		do(t, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &job)
	}
	if job.State != "done" {
		t.Fatalf("job failed: %s", job.Error)
	}
	raw, err := json.Marshal(job.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res WhatIfResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != 1 || res.Value != v1.Value {
		t.Fatalf("job result snapshot=%d value=%v, want the pinned v1 value %v", res.Snapshot, res.Value, v1.Value)
	}

	// An explicit snapshot in the job request pins that version.
	appendLoans(t, ts.URL, "j", 1100, 1200)
	var pinned JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "j", Kind: "whatif", Query: loansQuery, Snapshot: 2,
	}, &pinned); code != http.StatusOK {
		t.Fatalf("pinned submit failed")
	}
	if pinned.Snapshot != 2 {
		t.Fatalf("explicit pin = %d, want 2", pinned.Snapshot)
	}
	// Unknown versions are rejected at submit, not at run time.
	var errResp ErrorResponse
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "j", Kind: "whatif", Query: loansQuery, Snapshot: 99,
	}, &errResp); code != http.StatusNotFound || errResp.Code != "snapshot_not_found" {
		t.Fatalf("snapshot=99 submit: %d %+v", code, errResp)
	}
}

// TestMVCCIsolation is the randomized black-box isolation checker the CI
// mvcc-check step runs for 30 seconds under -race: concurrent appenders
// grow a session while readers hammer pinned and head queries, asserting
// that (a) every published version answers identically forever after —
// appends can never disturb a snapshot a reader holds — and (b) head
// versions observed by any one reader are monotonic. Runtime scales with
// HYPER_MVCC_CHECK_SECONDS (default ~2s for plain `go test`).
func TestMVCCIsolation(t *testing.T) {
	duration := 2 * time.Second
	if s := os.Getenv("HYPER_MVCC_CHECK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("HYPER_MVCC_CHECK_SECONDS=%q: %v", s, err)
		}
		duration = time.Duration(secs) * time.Second
	}
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	createLoansSession(t, ts.URL, "iso", 400)

	// goldens maps version -> the stable rendering of the pinned query
	// result, recorded by whichever appender published the version. Readers
	// replay pinned queries against it for the rest of the run.
	var goldens sync.Map // int64 -> string
	var versions []int64 // published order, guarded by versionsMu
	var versionsMu sync.Mutex

	query := func(snapshot int64) (*WhatIfResponse, int) {
		var res WhatIfResponse
		code := do(t, "POST", ts.URL+"/v1/sessions/iso/whatif", QueryRequest{
			Query: loansQuery, Snapshot: snapshot,
		}, &res)
		return &res, code
	}
	res, code := query(0)
	if code != http.StatusOK {
		t.Fatalf("seed query: status %d", code)
	}
	goldens.Store(int64(1), stableOf(res))
	versions = []int64{1}

	const maxRows = 6000
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Appenders: random small batches of random rows. Appends serialize
	// server-side; each publishes a distinct version whose golden is
	// recorded immediately via a pinned query.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				batch := "Status,Savings,Credit\n"
				for i := 0; i < 1+rng.Intn(20); i++ {
					batch += fmt.Sprintf("%d,%d,%d\n", rng.Intn(4), rng.Intn(3), rng.Intn(2))
				}
				var resp AppendResponse
				code := do(t, "POST", ts.URL+"/v1/sessions/iso/rows", AppendRequest{
					Tables: []AppendTable{{Name: "Loans", Data: batch}},
				}, &resp)
				if code != http.StatusOK {
					fail("append: status %d", code)
					return
				}
				res, code := query(resp.Version)
				if code != http.StatusOK {
					fail("golden query v%d: status %d", resp.Version, code)
					return
				}
				if res.Snapshot != resp.Version {
					fail("golden query v%d answered snapshot %d", resp.Version, res.Snapshot)
					return
				}
				goldens.Store(resp.Version, stableOf(res))
				versionsMu.Lock()
				versions = append(versions, resp.Version)
				versionsMu.Unlock()
				if resp.Rows >= maxRows {
					return // bound total work; readers keep verifying
				}
				time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
			}
		}(int64(100 + a))
	}

	// Readers: replay random published versions against their goldens and
	// check head monotonicity.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastHead int64
			for time.Now().Before(deadline) {
				versionsMu.Lock()
				v := versions[rng.Intn(len(versions))]
				versionsMu.Unlock()
				res, code := query(v)
				if code != http.StatusOK {
					fail("pinned query v%d: status %d", v, code)
					return
				}
				want, _ := goldens.Load(v)
				if got := stableOf(res); got != want.(string) {
					fail("snapshot %d changed its answer:\n got %s\nwant %s", v, got, want)
					return
				}
				if res.Snapshot != v {
					fail("pinned query v%d answered snapshot %d", v, res.Snapshot)
					return
				}
				if rng.Intn(4) == 0 {
					res, code := query(0)
					if code != http.StatusOK {
						fail("head query: status %d", code)
						return
					}
					if res.Snapshot < lastHead {
						fail("head went backwards: %d after %d", res.Snapshot, lastHead)
						return
					}
					lastHead = res.Snapshot
					// A head answer is itself a pinned answer for that
					// version once its golden exists.
					if want, ok := goldens.Load(res.Snapshot); ok {
						if got := stableOf(res); got != want.(string) {
							fail("head (v%d) diverges from its golden:\n got %s\nwant %s", res.Snapshot, got, want)
							return
						}
					}
				}
			}
		}(int64(200 + r))
	}
	wg.Wait()

	versionsMu.Lock()
	published := len(versions)
	versionsMu.Unlock()
	if published < 3 {
		t.Fatalf("checker published only %d versions — not exercising concurrency", published)
	}
	t.Logf("mvcc checker: %d versions published and verified over %v", published, duration)
}
