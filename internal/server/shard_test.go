package server

import (
	"net/http"
	"testing"

	"hyper/internal/jobs"
)

// TestShardKnobAndGauges pins the serving-side shard surface: the per-request
// shards knob is accepted and execution-only (identical values for every
// fan-out), responses expose the plan, and /v1/stats accumulates the shard
// gauges.
func TestShardKnobAndGauges(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "s1")

	var base WhatIfResponse
	if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "s1", Query: germanCount}, &base); code != http.StatusOK {
		t.Fatalf("whatif: status %d", code)
	}
	if base.ShardPlan < 1 || base.ShardWorkers < 1 {
		t.Fatalf("response missing shard diagnostics: %+v", base)
	}
	for _, shards := range []int{1, 2, 7} {
		var got WhatIfResponse
		if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "s1", Query: germanCount, Shards: shards}, &got); code != http.StatusOK {
			t.Fatalf("whatif shards=%d: status %d", shards, code)
		}
		if got.Value != base.Value || got.Sum != base.Sum || got.Count != base.Count {
			t.Errorf("shards=%d changed the result: %v, want %v", shards, got.Value, base.Value)
		}
		if got.ShardPlan != base.ShardPlan {
			t.Errorf("shards=%d changed the plan: %d, want %d", shards, got.ShardPlan, base.ShardPlan)
		}
	}

	// A tiny shard_rows granularity is a remote CPU blowup; reject it.
	if code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "tiny", Dataset: "german", Scale: 0.1,
		Options: &SessionOptions{ShardRows: 1},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("shard_rows=1 session: status %d, want 400", code)
	}

	var stats StatsResponse
	if code := do(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Shards.Evals < 4 {
		t.Errorf("shard gauges recorded %d evals, want >= 4", stats.Shards.Evals)
	}
	if stats.Shards.ShardsRun < stats.Shards.Evals {
		t.Errorf("shards_run %d < evals %d", stats.Shards.ShardsRun, stats.Shards.Evals)
	}
	if stats.Shards.MaxPlan < 1 || stats.Shards.MaxWorkers < 1 {
		t.Errorf("gauge maxima missing: %+v", stats.Shards)
	}
}

// TestJobProgressShardCounters pins that the "shards" progress stage flows
// into job snapshots without clobbering the primary stage counters.
func TestJobProgressShardCounters(t *testing.T) {
	var p jobs.Progress
	p.Report("tuples", 1024, 5000)
	p.Report("shards", 1, 2)
	stage, done, total := p.Snapshot()
	if stage != "tuples" || done != 1024 || total != 5000 {
		t.Errorf("primary stage clobbered: %s %d/%d", stage, done, total)
	}
	sd, st := p.ShardSnapshot()
	if sd != 1 || st != 2 {
		t.Errorf("shard counters = %d/%d, want 1/2", sd, st)
	}

	info := toJobInfo(jobs.Snapshot{Stage: "tuples", Done: 1024, Total: 5000, ShardsDone: 1, ShardsTotal: 2})
	if info.Progress.ShardsDone != 1 || info.Progress.ShardsTotal != 2 {
		t.Errorf("wire progress = %+v", info.Progress)
	}
}
