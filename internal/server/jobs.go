package server

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"hyper/internal/hyperql"
	"hyper/internal/jobs"
)

// JobRequest submits one asynchronous query job against a session.
type JobRequest struct {
	Session string `json:"session"`
	// Kind is whatif|howto|explain|batch (default whatif).
	Kind  string `json:"kind,omitempty"`
	Query string `json:"query,omitempty"`
	// Method/Target configure how-to jobs (see QueryRequest).
	Method string  `json:"method,omitempty"`
	Target float64 `json:"target,omitempty"`
	// Snapshot pins the job to a published session version, resolved at
	// submission time — appends that land while the job is queued or running
	// can never change what it evaluates. 0 pins the head as of submission.
	Snapshot int64 `json:"snapshot,omitempty"`
	// DeltaVs reports the what-if delta against this version (whatif jobs
	// only; see QueryRequest.DeltaVs).
	DeltaVs int64 `json:"delta_vs,omitempty"`
	// Queries and Workers configure batch jobs (see BatchRequest).
	Queries []BatchQuery `json:"queries,omitempty"`
	Workers int          `json:"workers,omitempty"`
	// Shards overrides the evaluation fan-out for the job (see
	// QueryRequest.Shards).
	Shards int `json:"shards,omitempty"`
	// Placement selects where the job's evaluation runs (see
	// QueryRequest.Placement); distributed jobs report remote shard
	// completion through the same shards_done/shards_total progress gauge.
	Placement string `json:"placement,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a priority.
	Priority int `json:"priority,omitempty"`
	// TimeoutMs, when > 0, sets the job deadline timeout ms after
	// submission; a job still queued or running at the deadline expires.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// JobProgress is the wire form of a job's progress counters.
type JobProgress struct {
	// Stage is "tuples" (what-if), "candidates" (how-to scoring), "combos"
	// (brute force) or "queries" (batch).
	Stage string `json:"stage,omitempty"`
	Done  int64  `json:"done"`
	// Total <= 0 means unknown.
	Total int64 `json:"total"`
	// ShardsDone/ShardsTotal track the engine's shard fan-out within the
	// current evaluation (omitted until a sharded stage reports).
	ShardsDone  int64 `json:"shards_done,omitempty"`
	ShardsTotal int64 `json:"shards_total,omitempty"`
}

// JobInfo is the wire form of a job snapshot.
type JobInfo struct {
	ID      string `json:"id"`
	Session string `json:"session"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	// Snapshot is the session version the job pinned at submission.
	Snapshot int64 `json:"snapshot,omitempty"`
	Priority int   `json:"priority,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	DeadlineAt  *time.Time `json:"deadline_at,omitempty"`
	WaitMs      float64    `json:"wait_ms"`
	RunMs       float64    `json:"run_ms"`

	Progress JobProgress `json:"progress"`

	// TraceID keys the job's execution trace in GET /v1/traces/{id}
	// (present once the job has started, when the server traces jobs).
	TraceID string `json:"trace_id,omitempty"`
	// Error is set for failed/cancelled/expired jobs.
	Error string `json:"error,omitempty"`
	// Result is the query response (WhatIfResponse, HowToResponse, explain
	// plan, or BatchResponse) once the job is done.
	Result any `json:"result,omitempty"`
}

func toJobInfo(s jobs.Snapshot) JobInfo {
	info := JobInfo{
		ID:          s.ID,
		Session:     s.Session,
		Kind:        s.Kind,
		State:       s.State.String(),
		Snapshot:    s.DataVersion,
		Priority:    s.Priority,
		SubmittedAt: s.Submitted,
		WaitMs:      float64(s.Wait()) / float64(time.Millisecond),
		RunMs:       float64(s.Run()) / float64(time.Millisecond),
		Progress: JobProgress{
			Stage: s.Stage, Done: s.Done, Total: s.Total,
			ShardsDone: s.ShardsDone, ShardsTotal: s.ShardsTotal,
		},
		TraceID: s.TraceID,
		Result:  s.Result,
	}
	if !s.Started.IsZero() {
		t := s.Started
		info.StartedAt = &t
	}
	if !s.Finished.IsZero() {
		t := s.Finished
		info.FinishedAt = &t
	}
	if !s.Deadline.IsZero() {
		t := s.Deadline
		info.DeadlineAt = &t
	}
	if s.Err != nil {
		info.Error = s.Err.Error()
	}
	return info
}

// jobKinds are the accepted values of JobRequest.Kind.
const jobKinds = "whatif|howto|explain|batch"

func (s *Server) handleSubmitJob(r *http.Request) (any, error) {
	var req JobRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	e, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	kind := req.Kind
	if kind == "" {
		kind = "whatif"
	}
	// The job pins its data version now: sn is the immutable snapshot every
	// runner closure below evaluates, no matter how long the job queues or
	// how many appends land meanwhile.
	sn, err := e.resolve(req.Snapshot)
	if err != nil {
		return nil, err
	}
	if req.DeltaVs != 0 {
		if kind != "whatif" {
			return nil, errf(http.StatusBadRequest, "delta_vs applies to what-if jobs only")
		}
		// Validate the comparison version at submission, like the pin.
		if _, err := e.resolve(req.DeltaVs); err != nil {
			return nil, err
		}
	}

	// Reject malformed submissions now (HTTP 400) rather than queueing a
	// job doomed to fail: the query must parse as the submitted kind, the
	// how-to method must be known, a batch must have elements.
	var run jobs.Runner
	switch kind {
	case "whatif", "explain":
		if _, err := hyperql.ParseWhatIf(req.Query); err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		if kind == "whatif" {
			deltaVs := req.DeltaVs
			qr := QueryRequest{Query: req.Query, DeltaVs: deltaVs, Shards: req.Shards, Placement: req.Placement}
			run = func(ctx context.Context, p *jobs.Progress) (any, error) {
				stampShape(ctx, e, "whatif", req.Query)
				resp, err := e.whatIf(ctx, sn, req.Query, req.Shards, req.Placement, p.Report)
				if err == nil && deltaVs != 0 {
					resp.Delta, err = e.whatIfDelta(ctx, resp.Value, qr)
				}
				return resp, err
			}
		} else {
			run = func(ctx context.Context, p *jobs.Progress) (any, error) {
				stampShape(ctx, e, "explain", req.Query)
				return e.explain(sn, req.Query)
			}
		}
	case "howto":
		if _, err := hyperql.ParseHowTo(req.Query); err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		switch req.Method {
		case "", "ip", "brute", "mincost":
		default:
			return nil, errf(http.StatusBadRequest, "unknown how-to method %q (want ip|brute|mincost)", req.Method)
		}
		qr := QueryRequest{Query: req.Query, Method: req.Method, Target: req.Target, Shards: req.Shards, Placement: req.Placement}
		run = func(ctx context.Context, p *jobs.Progress) (any, error) {
			stampShape(ctx, e, "howto", req.Query)
			return e.howTo(ctx, sn, qr, p.Report)
		}
	case "batch":
		if len(req.Queries) == 0 {
			return nil, errf(http.StatusBadRequest, "batch job has no queries")
		}
		workers := s.batchWorkers(req.Workers)
		// Pin every element: job-level shards and snapshot are defaults, an
		// element's own fields still win. Explicit element snapshots are
		// validated now so a doomed batch is rejected at submission.
		queries := append([]BatchQuery(nil), req.Queries...)
		for i := range queries {
			if queries[i].Shards == 0 {
				queries[i].Shards = req.Shards
			}
			if queries[i].Snapshot == 0 {
				queries[i].Snapshot = sn.version
			} else if _, err := e.resolve(queries[i].Snapshot); err != nil {
				return nil, err
			}
		}
		run = func(ctx context.Context, p *jobs.Progress) (any, error) {
			stampBatchShape(ctx, e, queries)
			return e.runBatch(ctx, queries, workers, p.Report), nil
		}
	default:
		return nil, errf(http.StatusBadRequest, "unknown job kind %q (want %s)", req.Kind, jobKinds)
	}

	opts := jobs.SubmitOptions{Session: req.Session, Kind: kind, Priority: req.Priority, DataVersion: sn.version}
	if req.TimeoutMs > 0 {
		opts.Deadline = time.Now().Add(time.Duration(req.TimeoutMs) * time.Millisecond)
	}
	j, err := s.jobs.Submit(opts, run)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return nil, errcf(http.StatusTooManyRequests, "queue_full",
			"job queue is full (%d queued); retry later", s.cfg.JobQueueDepth)
	case errors.Is(err, jobs.ErrSessionLimit):
		return nil, errcf(http.StatusTooManyRequests, "session_limit",
			"session %q already has %d live jobs; retry later", req.Session, s.cfg.JobsPerSession)
	case errors.Is(err, jobs.ErrDraining):
		return nil, errcf(http.StatusServiceUnavailable, "draining", "server is draining; not accepting jobs")
	case err != nil:
		return nil, err
	}
	// Close the race with a concurrent DELETE /v1/sessions/{name}: its
	// CancelSession may have run between our session lookup and Submit, in
	// which case this job would outlive its session uncancelled.
	if _, err := s.session(req.Session); err != nil {
		s.jobs.Cancel(j.ID())
		return nil, err
	}
	snap, _ := s.jobs.Get(j.ID())
	return toJobInfo(snap), nil
}

func (s *Server) handleGetJob(r *http.Request) (any, error) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return toJobInfo(snap), nil
}

func (s *Server) handleCancelJob(r *http.Request) (any, error) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Cancel(id); !ok {
		return nil, errf(http.StatusNotFound, "unknown job %q", id)
	}
	snap, _ := s.jobs.Get(id)
	return toJobInfo(snap), nil
}

// JobListResponse is the GET /v1/jobs payload; Next is the cursor of the
// following page when ?limit= truncated the listing (jobs paginate by
// numeric id, the manager's stable submission order).
type JobListResponse struct {
	Jobs []JobInfo `json:"jobs"`
	Next string    `json:"next,omitempty"`
}

// jobSeq extracts the numeric suffix of a job id ("j17" -> 17). Job ids
// sort numerically, not lexicographically — "j10" comes after "j9".
func jobSeq(id string) (int64, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	return n, err == nil
}

func (s *Server) handleListJobs(r *http.Request) (any, error) {
	session := r.URL.Query().Get("session")
	stateName := r.URL.Query().Get("state")
	page, err := parsePage(r)
	if err != nil {
		return nil, err
	}
	var afterSeq int64 = -1
	if page.after != "" {
		n, ok := jobSeq(page.after)
		if !ok {
			return nil, errBadCursor("job cursor %q is not a job id", page.after)
		}
		afterSeq = n
	}
	var state jobs.State
	filter := false
	if stateName != "" {
		st, err := parseJobState(stateName)
		if err != nil {
			return nil, err
		}
		state, filter = st, true
	}
	snaps := s.jobs.List(session, state, filter)
	next := ""
	if page.active() {
		// Pagination runs in numeric-id order — the stable submission order
		// a cursor can resume in. The unpaginated listing keeps the
		// manager's native order.
		sort.Slice(snaps, func(i, j int) bool {
			a, _ := jobSeq(snaps[i].ID)
			b, _ := jobSeq(snaps[j].ID)
			return a < b
		})
		start := 0
		for start < len(snaps) {
			if n, ok := jobSeq(snaps[start].ID); ok && n > afterSeq {
				break
			}
			start++
		}
		snaps = snaps[start:]
		if page.limit > 0 && len(snaps) > page.limit {
			snaps = snaps[:page.limit]
			next = snaps[len(snaps)-1].ID
		}
	}
	out := make([]JobInfo, len(snaps))
	for i, sn := range snaps {
		// Listings omit results: polling one job returns the payload.
		sn.Result = nil
		out[i] = toJobInfo(sn)
	}
	return &JobListResponse{Jobs: out, Next: next}, nil
}

func parseJobState(name string) (jobs.State, error) {
	for st := jobs.StateQueued; st <= jobs.StateExpired; st++ {
		if st.String() == strings.ToLower(name) {
			return st, nil
		}
	}
	return 0, errf(http.StatusBadRequest, "unknown job state %q (want queued|running|done|failed|cancelled|expired)", name)
}
