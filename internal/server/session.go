package server

import (
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hyper"
	"hyper/internal/dataset"
	"hyper/internal/dist"
)

// sessionEntry is one live session: a named database + causal model bound to
// a bounded engine cache. The embedded hyper.Session is safe for concurrent
// use, so entries are shared across request goroutines without extra
// locking; only the query counter is touched per request.
type sessionEntry struct {
	name      string
	dataset   string // registry name, or "csv"
	schemaSig string // relation-name signature, the schema half of shape fingerprints
	sess      *hyper.Session
	created   time.Time
	queries   atomic.Int64
	shards    *shardGauges      // server-wide gauges, recorded per what-if
	dist      *dist.Coordinator // shard transport (placement knob)
	frame     *dist.Frame       // content-addressed snapshot shipped to workers
}

// SessionOptions is the wire form of hyper.Options.
type SessionOptions struct {
	// Mode is full|nb|indep (default full).
	Mode       string `json:"mode,omitempty"`
	SampleSize int    `json:"sample_size,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Buckets    int    `json:"buckets,omitempty"`
	// Shards is the session's default evaluation fan-out (0 = GOMAXPROCS);
	// per-request shards fields override it. Execution only — results are
	// identical for every value.
	Shards int `json:"shards,omitempty"`
	// ShardRows tunes the rows-per-shard granularity of the canonical
	// evaluation plan (default 4096; part of evaluation semantics). Values
	// below minShardRows are rejected: a tiny granularity on a large
	// dataset makes every evaluation build thousands of per-shard indexes —
	// a remote-triggerable CPU and allocation blowup.
	ShardRows int `json:"shard_rows,omitempty"`
}

// minShardRows is the smallest granularity accepted over the wire.
const minShardRows = 256

// CSVTable is one inline CSV-encoded relation.
type CSVTable struct {
	Name string `json:"name"`
	// Data is the CSV text; the first row is the header, column kinds are
	// inferred.
	Data string `json:"data"`
	// Keys names the primary-key columns; empty adds a synthetic RowID key
	// so duplicate data rows are legal.
	Keys []string `json:"keys,omitempty"`
}

// CSVForeignKey declares a child->parent link between uploaded tables.
type CSVForeignKey struct {
	Child     string `json:"child"`
	ChildCol  string `json:"child_col"`
	Parent    string `json:"parent"`
	ParentCol string `json:"parent_col"`
}

// CSVCrossEdge is the wire form of a cross-tuple causal edge.
type CSVCrossEdge struct {
	FromRel  string `json:"from_rel"`
	FromAttr string `json:"from_attr"`
	ToRel    string `json:"to_rel"`
	ToAttr   string `json:"to_attr"`
	// GroupBy is the qualified grouping attribute ("Rel.Attr").
	GroupBy string `json:"group_by"`
}

// CSVModel declares the causal model over uploaded tables. Edges use
// qualified "Rel.Attr" endpoints. An absent model runs the session in
// no-background mode.
type CSVModel struct {
	Edges [][2]string    `json:"edges,omitempty"`
	Cross []CSVCrossEdge `json:"cross,omitempty"`
}

// CSVDatabase is an inline database upload.
type CSVDatabase struct {
	Tables      []CSVTable      `json:"tables"`
	ForeignKeys []CSVForeignKey `json:"foreign_keys,omitempty"`
	Model       *CSVModel       `json:"model,omitempty"`
}

// CreateSessionRequest creates a named session from either a registry
// dataset or an inline CSV database.
type CreateSessionRequest struct {
	Name string `json:"name"`
	// Dataset is a registry name (GET /v1/datasets); mutually exclusive
	// with CSV.
	Dataset string          `json:"dataset,omitempty"`
	Scale   float64         `json:"scale,omitempty"`
	Seed    int64           `json:"seed,omitempty"`
	CSV     *CSVDatabase    `json:"csv,omitempty"`
	Options *SessionOptions `json:"options,omitempty"`
	// CacheEntries overrides the server's per-session cache bound
	// (<0 = unbounded).
	CacheEntries *int `json:"cache_entries,omitempty"`
	// PlanCacheEntries overrides the server's per-session compiled-plan
	// cache bound (<0 = unbounded).
	PlanCacheEntries *int `json:"plan_cache_entries,omitempty"`
}

// SessionInfo describes a live session.
type SessionInfo struct {
	Name      string           `json:"name"`
	Dataset   string           `json:"dataset"`
	Relations []string         `json:"relations"`
	Rows      int              `json:"rows"`
	Queries   int64            `json:"queries"`
	CreatedAt time.Time        `json:"created_at"`
	Cache     hyper.CacheStats `json:"cache"`
	// Plan is the session's compiled-plan cache counters.
	Plan hyper.PlanCacheStats `json:"plan"`
}

func (e *sessionEntry) info() SessionInfo {
	db := e.sess.DB()
	info := SessionInfo{
		Name:      e.name,
		Dataset:   e.dataset,
		Relations: db.Names(),
		Rows:      db.TotalRows(),
		Queries:   e.queries.Load(),
		CreatedAt: e.created,
		Cache:     e.sess.Cache().Stats(),
	}
	if pc := e.sess.PlanCache(); pc != nil {
		info.Plan = pc.Stats()
	}
	return info
}

// DatasetInfo describes one registry builder.
type DatasetInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleDatasets(*http.Request) (any, error) {
	var out []DatasetInfo
	for _, b := range dataset.Registry() {
		out = append(out, DatasetInfo{Name: b.Name, Description: b.Description})
	}
	return map[string]any{"datasets": out}, nil
}

func (s *Server) handleListSessions(*http.Request) (any, error) {
	entries := s.sortedEntries()
	out := make([]SessionInfo, len(entries))
	for i, e := range entries {
		out[i] = e.info()
	}
	return map[string]any{"sessions": out}, nil
}

func (s *Server) handleCreateSession(r *http.Request) (any, error) {
	var req CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if strings.TrimSpace(req.Name) == "" {
		return nil, errf(http.StatusBadRequest, "session name is required")
	}
	if (req.Dataset == "") == (req.CSV == nil) {
		return nil, errf(http.StatusBadRequest, "exactly one of dataset or csv is required")
	}
	// Cheap pre-check so a doomed request doesn't pay for a dataset build
	// or CSV parse; the authoritative check re-runs under the write lock
	// below (another request may win the name in between).
	if err := s.checkAdmissible(req.Name); err != nil {
		return nil, err
	}

	var (
		db    *hyper.Database
		model *hyper.CausalModel
		from  string
	)
	if req.Dataset != "" {
		b, err := dataset.Lookup(req.Dataset)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		scale := req.Scale
		if scale <= 0 {
			scale = 1
		}
		seed := req.Seed
		if seed == 0 {
			seed = 7
		}
		db, model = b.Build(scale, seed)
		from = b.Name
	} else {
		var err error
		db, model, err = buildCSVDatabase(req.CSV)
		if err != nil {
			return nil, err
		}
		from = "csv"
	}
	if model != nil {
		if err := model.Validate(db); err != nil {
			return nil, errf(http.StatusBadRequest, "causal model does not validate: %v", err)
		}
	}

	opts := hyper.Options{}
	if o := req.Options; o != nil {
		mode, err := parseMode(o.Mode)
		if err != nil {
			return nil, err
		}
		if o.ShardRows != 0 && o.ShardRows < minShardRows {
			return nil, errf(http.StatusBadRequest, "shard_rows must be 0 (default) or >= %d", minShardRows)
		}
		opts = hyper.Options{
			Mode: mode, SampleSize: o.SampleSize, Seed: o.Seed, Buckets: o.Buckets,
			Shards: o.Shards, ShardRows: o.ShardRows,
		}
	}
	cacheEntries := s.cfg.CacheEntries
	if req.CacheEntries != nil {
		cacheEntries = *req.CacheEntries
		if cacheEntries < 0 {
			cacheEntries = 0
		}
	}
	planEntries := s.cfg.PlanCacheEntries
	if req.PlanCacheEntries != nil {
		planEntries = *req.PlanCacheEntries
		if planEntries < 0 {
			planEntries = 0
		}
	}
	sess := hyper.NewSessionWithCache(db, model, hyper.NewCacheBounded(cacheEntries))
	sess.SetOptions(opts)
	// Each session owns its plan cache (cache identity is query fingerprint +
	// schema signature, and the signature is only unique within a session's
	// database); deleting the session drops every cached plan with it. All
	// sessions share one compile-latency histogram.
	pc := hyper.NewPlanCache(planEntries)
	pc.SetCompileObserver(s.planCompile.Observe)
	sess.SetPlanCache(pc)

	e := &sessionEntry{
		name: req.Name, dataset: from, sess: sess, created: time.Now(),
		schemaSig: strings.Join(db.Names(), ","),
		shards:    &s.shards, dist: s.dist, frame: dist.NewFrame(db, model),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAdmissibleLocked(req.Name); err != nil {
		return nil, err
	}
	s.sessions[req.Name] = e
	return e.info(), nil
}

// checkAdmissible verifies a new session name is free and the registry has
// room.
func (s *Server) checkAdmissible(name string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkAdmissibleLocked(name)
}

func (s *Server) checkAdmissibleLocked(name string) error {
	if _, exists := s.sessions[name]; exists {
		return errf(http.StatusConflict, "session %q already exists", name)
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return errf(http.StatusTooManyRequests, "session limit reached (%d)", s.cfg.MaxSessions)
	}
	return nil
}

// sortedEntries snapshots the session registry in name order.
func (s *Server) sortedEntries() []*sessionEntry {
	s.mu.RLock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return entries
}

func (s *Server) handleDeleteSession(r *http.Request) (any, error) {
	name := r.PathValue("name")
	s.mu.Lock()
	if _, ok := s.sessions[name]; !ok {
		s.mu.Unlock()
		return nil, errf(http.StatusNotFound, "unknown session %q", name)
	}
	delete(s.sessions, name)
	s.mu.Unlock()
	// Jobs against a deleted session keep a reference to its entry but have
	// no caller left; cancel them so they stop burning cores.
	cancelled := s.jobs.CancelSession(name)
	return map[string]any{"deleted": name, "jobs_cancelled": cancelled}, nil
}

// buildCSVDatabase assembles a database and optional causal model from an
// inline upload. CSV columns get inferred kinds and are mutable, so any
// column can be the target of UPDATE/HOWTOUPDATE.
func buildCSVDatabase(c *CSVDatabase) (*hyper.Database, *hyper.CausalModel, error) {
	if len(c.Tables) == 0 {
		return nil, nil, errf(http.StatusBadRequest, "csv upload has no tables")
	}
	db := hyper.NewDatabase()
	for _, t := range c.Tables {
		if strings.TrimSpace(t.Name) == "" {
			return nil, nil, errf(http.StatusBadRequest, "csv table has no name")
		}
		rel, err := hyper.ReadCSVKeyed(t.Name, strings.NewReader(t.Data), t.Keys)
		if err != nil {
			return nil, nil, errf(http.StatusBadRequest, "table %q: %v", t.Name, err)
		}
		if err := db.Add(rel); err != nil {
			return nil, nil, errf(http.StatusBadRequest, "%v", err)
		}
	}
	for _, fk := range c.ForeignKeys {
		err := db.AddForeignKey(hyper.ForeignKey{
			Child: fk.Child, ChildCol: fk.ChildCol,
			Parent: fk.Parent, ParentCol: fk.ParentCol,
		})
		if err != nil {
			return nil, nil, errf(http.StatusBadRequest, "foreign key: %v", err)
		}
	}
	if c.Model == nil {
		return db, nil, nil
	}
	m := hyper.NewCausalModel()
	for _, e := range c.Model.Edges {
		m.AddEdge(e[0], e[1])
	}
	for _, ce := range c.Model.Cross {
		m.AddCross(hyper.CrossEdge{
			FromRel: ce.FromRel, FromAttr: ce.FromAttr,
			ToRel: ce.ToRel, ToAttr: ce.ToAttr,
			GroupBy: ce.GroupBy,
		})
	}
	return db, m, nil
}
