package server

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyper"
	"hyper/internal/dataset"
	"hyper/internal/dist"
	"hyper/internal/ml"
	"hyper/internal/relation"
	"hyper/internal/shard"
)

// sessionEntry is one live session: a named database + causal model bound to
// a bounded engine cache, plus the session's MVCC version chain. Every data
// state the session has ever been in is an immutable snapshotEntry; an
// append publishes a new snapshot atomically, so a query that resolved its
// snapshot keeps evaluating against exactly that data no matter how many
// appends land meanwhile. The engine and plan caches are shared across the
// chain — cache identity is version-qualified below the hyper layer, so
// entries for different versions can never collide.
type sessionEntry struct {
	name      string
	dataset   string // registry name, or "csv"
	schemaSig string // relation-name signature, the schema half of shape fingerprints
	created   time.Time
	queries   atomic.Int64
	shards    *shardGauges      // server-wide gauges, recorded per what-if
	dist      *dist.Coordinator // shard transport (placement knob)

	// mu guards the version chain; snaps[i] is version i+1 and the last
	// element is head. Snapshots are append-only and immutable once
	// published.
	mu    sync.RWMutex
	snaps []*snapshotEntry

	// appendMu serializes appends (parse, extend, digest advance, publish).
	// digests hold the per-relation incremental column-stats state: strided
	// shard digests sealed below the fitted watermark, so an append fits
	// only the tail shards its new rows touch and never rescans history.
	appendMu     sync.Mutex
	digests      map[string]*ml.RelationDigest
	digestTarget int // rows per digest shard (the session's shard granularity)
}

// snapshotEntry is one immutable version of a session's data: the derived
// hyper.Session evaluating it and the content-addressed dist frame shipping
// it. Version 1 is the session's creation state (a full-snapshot frame);
// every append adds a version whose frame is a delta naming its parent.
type snapshotEntry struct {
	version  int64
	sess     *hyper.Session
	frame    *dist.Frame
	rows     int // total rows across relations at this version
	appended int // rows this version's append added (0 for version 1)
	created  time.Time
}

// head returns the newest snapshot.
func (e *sessionEntry) head() *snapshotEntry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snaps[len(e.snaps)-1]
}

// resolve maps a wire snapshot version to its entry: 0 means head, any
// published version pins that exact state, anything else is a 404 with code
// snapshot_not_found. Versions are contiguous from 1, so resolution is
// index math.
func (e *sessionEntry) resolve(v int64) (*snapshotEntry, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if v == 0 {
		return e.snaps[len(e.snaps)-1], nil
	}
	if v >= 1 && v <= int64(len(e.snaps)) {
		return e.snaps[v-1], nil
	}
	return nil, errcf(http.StatusNotFound, "snapshot_not_found",
		"session %q has no snapshot version %d (head is %d)", e.name, v, len(e.snaps))
}

// SessionOptions is the wire form of hyper.Options.
type SessionOptions struct {
	// Mode is full|nb|indep (default full).
	Mode       string `json:"mode,omitempty"`
	SampleSize int    `json:"sample_size,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Buckets    int    `json:"buckets,omitempty"`
	// Shards is the session's default evaluation fan-out (0 = GOMAXPROCS);
	// per-request shards fields override it. Execution only — results are
	// identical for every value.
	Shards int `json:"shards,omitempty"`
	// ShardRows tunes the rows-per-shard granularity of the canonical
	// evaluation plan (default 4096; part of evaluation semantics). Values
	// below minShardRows are rejected: a tiny granularity on a large
	// dataset makes every evaluation build thousands of per-shard indexes —
	// a remote-triggerable CPU and allocation blowup.
	ShardRows int `json:"shard_rows,omitempty"`
}

// minShardRows is the smallest granularity accepted over the wire.
const minShardRows = 256

// CSVTable is one inline CSV-encoded relation.
type CSVTable struct {
	Name string `json:"name"`
	// Data is the CSV text; the first row is the header, column kinds are
	// inferred.
	Data string `json:"data"`
	// Keys names the primary-key columns; empty adds a synthetic RowID key
	// so duplicate data rows are legal.
	Keys []string `json:"keys,omitempty"`
}

// CSVForeignKey declares a child->parent link between uploaded tables.
type CSVForeignKey struct {
	Child     string `json:"child"`
	ChildCol  string `json:"child_col"`
	Parent    string `json:"parent"`
	ParentCol string `json:"parent_col"`
}

// CSVCrossEdge is the wire form of a cross-tuple causal edge.
type CSVCrossEdge struct {
	FromRel  string `json:"from_rel"`
	FromAttr string `json:"from_attr"`
	ToRel    string `json:"to_rel"`
	ToAttr   string `json:"to_attr"`
	// GroupBy is the qualified grouping attribute ("Rel.Attr").
	GroupBy string `json:"group_by"`
}

// CSVModel declares the causal model over uploaded tables. Edges use
// qualified "Rel.Attr" endpoints. An absent model runs the session in
// no-background mode.
type CSVModel struct {
	Edges [][2]string    `json:"edges,omitempty"`
	Cross []CSVCrossEdge `json:"cross,omitempty"`
}

// CSVDatabase is an inline database upload.
type CSVDatabase struct {
	Tables      []CSVTable      `json:"tables"`
	ForeignKeys []CSVForeignKey `json:"foreign_keys,omitempty"`
	Model       *CSVModel       `json:"model,omitempty"`
}

// CreateSessionRequest creates a named session from either a registry
// dataset or an inline CSV database.
type CreateSessionRequest struct {
	Name string `json:"name"`
	// Dataset is a registry name (GET /v1/datasets); mutually exclusive
	// with CSV.
	Dataset string          `json:"dataset,omitempty"`
	Scale   float64         `json:"scale,omitempty"`
	Seed    int64           `json:"seed,omitempty"`
	CSV     *CSVDatabase    `json:"csv,omitempty"`
	Options *SessionOptions `json:"options,omitempty"`
	// CacheEntries overrides the server's per-session cache bound
	// (<0 = unbounded).
	CacheEntries *int `json:"cache_entries,omitempty"`
	// PlanCacheEntries overrides the server's per-session compiled-plan
	// cache bound (<0 = unbounded).
	PlanCacheEntries *int `json:"plan_cache_entries,omitempty"`
}

// SessionInfo describes a live session.
type SessionInfo struct {
	Name      string   `json:"name"`
	Dataset   string   `json:"dataset"`
	Relations []string `json:"relations"`
	Rows      int      `json:"rows"`
	// Version is the head snapshot version; Snapshots counts the published
	// versions (1 at creation, +1 per append).
	Version   int64            `json:"version"`
	Snapshots int              `json:"snapshots"`
	Queries   int64            `json:"queries"`
	CreatedAt time.Time        `json:"created_at"`
	Cache     hyper.CacheStats `json:"cache"`
	// Plan is the session's compiled-plan cache counters.
	Plan hyper.PlanCacheStats `json:"plan"`
}

func (e *sessionEntry) info() SessionInfo {
	e.mu.RLock()
	head := e.snaps[len(e.snaps)-1]
	count := len(e.snaps)
	e.mu.RUnlock()
	db := head.sess.DB()
	info := SessionInfo{
		Name:      e.name,
		Dataset:   e.dataset,
		Relations: db.Names(),
		Rows:      db.TotalRows(),
		Version:   head.version,
		Snapshots: count,
		Queries:   e.queries.Load(),
		CreatedAt: e.created,
		Cache:     head.sess.Cache().Stats(),
	}
	if pc := head.sess.PlanCache(); pc != nil {
		info.Plan = pc.Stats()
	}
	return info
}

// DatasetInfo describes one registry builder.
type DatasetInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// DatasetsResponse is the GET /v1/datasets payload.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

func (s *Server) handleDatasets(*http.Request) (any, error) {
	var out []DatasetInfo
	for _, b := range dataset.Registry() {
		out = append(out, DatasetInfo{Name: b.Name, Description: b.Description})
	}
	return &DatasetsResponse{Datasets: out}, nil
}

// SessionListResponse is the GET /v1/sessions payload; Next is the cursor of
// the following page when ?limit= truncated the listing (sessions paginate
// by name, the registry's stable sort key).
type SessionListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
	Next     string        `json:"next,omitempty"`
}

func (s *Server) handleListSessions(r *http.Request) (any, error) {
	page, err := parsePage(r)
	if err != nil {
		return nil, err
	}
	entries := s.sortedEntries()
	entries, next := paginate(entries, func(e *sessionEntry) string { return e.name }, page)
	out := make([]SessionInfo, len(entries))
	for i, e := range entries {
		out[i] = e.info()
	}
	return &SessionListResponse{Sessions: out, Next: next}, nil
}

func (s *Server) handleGetSession(r *http.Request) (any, error) {
	e, err := s.session(r.PathValue("name"))
	if err != nil {
		return nil, err
	}
	return e.info(), nil
}

func (s *Server) handleCreateSession(r *http.Request) (any, error) {
	var req CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if strings.TrimSpace(req.Name) == "" {
		return nil, errf(http.StatusBadRequest, "session name is required")
	}
	if (req.Dataset == "") == (req.CSV == nil) {
		return nil, errf(http.StatusBadRequest, "exactly one of dataset or csv is required")
	}
	// Cheap pre-check so a doomed request doesn't pay for a dataset build
	// or CSV parse; the authoritative check re-runs under the write lock
	// below (another request may win the name in between).
	if err := s.checkAdmissible(req.Name); err != nil {
		return nil, err
	}

	var (
		db    *hyper.Database
		model *hyper.CausalModel
		from  string
	)
	if req.Dataset != "" {
		b, err := dataset.Lookup(req.Dataset)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		scale := req.Scale
		if scale <= 0 {
			scale = 1
		}
		seed := req.Seed
		if seed == 0 {
			seed = 7
		}
		db, model = b.Build(scale, seed)
		from = b.Name
	} else {
		var err error
		db, model, err = buildCSVDatabase(req.CSV)
		if err != nil {
			return nil, err
		}
		from = "csv"
	}
	if model != nil {
		if err := model.Validate(db); err != nil {
			return nil, errf(http.StatusBadRequest, "causal model does not validate: %v", err)
		}
	}

	opts := hyper.Options{}
	if o := req.Options; o != nil {
		mode, err := parseMode(o.Mode)
		if err != nil {
			return nil, err
		}
		if o.ShardRows != 0 && o.ShardRows < minShardRows {
			return nil, errf(http.StatusBadRequest, "shard_rows must be 0 (default) or >= %d", minShardRows)
		}
		opts = hyper.Options{
			Mode: mode, SampleSize: o.SampleSize, Seed: o.Seed, Buckets: o.Buckets,
			Shards: o.Shards, ShardRows: o.ShardRows,
		}
	}
	cacheEntries := s.cfg.CacheEntries
	if req.CacheEntries != nil {
		cacheEntries = *req.CacheEntries
		if cacheEntries < 0 {
			cacheEntries = 0
		}
	}
	planEntries := s.cfg.PlanCacheEntries
	if req.PlanCacheEntries != nil {
		planEntries = *req.PlanCacheEntries
		if planEntries < 0 {
			planEntries = 0
		}
	}
	// Server sessions are versioned from birth: version 1 is the creation
	// snapshot, and every append publishes the next. (Bare library databases
	// stay version 0, the pre-MVCC cache identity.)
	db.SetVersion(1)
	sess := hyper.NewSessionWithCache(db, model, hyper.NewCacheBounded(cacheEntries))
	sess.SetOptions(opts)
	// Each session owns its plan cache (cache identity is query fingerprint +
	// schema signature, and the signature is only unique within a session's
	// database); deleting the session drops every cached plan with it. All
	// sessions share one compile-latency histogram.
	pc := hyper.NewPlanCache(planEntries)
	pc.SetCompileObserver(s.planCompile.Observe)
	sess.SetPlanCache(pc)

	target := opts.ShardRows
	if target <= 0 {
		target = shard.DefaultTargetRows
	}
	e := &sessionEntry{
		name: req.Name, dataset: from, created: time.Now(),
		schemaSig: strings.Join(db.Names(), ","),
		shards:    &s.shards, dist: s.dist,
		digests:      make(map[string]*ml.RelationDigest, len(db.Names())),
		digestTarget: target,
	}
	// Digest the creation state now: the per-shard column stats computed
	// here are the sealed prefix every future append extends, so append
	// cost is proportional to the appended tail, never to history.
	for _, name := range db.Names() {
		d := ml.NewRelationDigest(target)
		d.Advance(db.Relation(name))
		e.digests[name] = d
	}
	e.snaps = []*snapshotEntry{{
		version: db.Version(), sess: sess, frame: dist.NewFrame(db, model),
		rows: db.TotalRows(), created: e.created,
	}}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAdmissibleLocked(req.Name); err != nil {
		return nil, err
	}
	s.sessions[req.Name] = e
	return e.info(), nil
}

// AppendTable is one relation's appended rows, CSV-encoded. The header must
// name the relation's columns in schema order; a relation created with a
// synthetic RowID key omits it (RowIDs continue from the current row count).
type AppendTable struct {
	Name string `json:"name"`
	Data string `json:"data"`
}

// AppendRequest appends rows to a live session, publishing a new snapshot
// version. Appends are the only mutation the API has: no row is ever updated
// or deleted in place, so every published version stays immutable.
type AppendRequest struct {
	Tables []AppendTable `json:"tables"`
}

// AppendResponse reports the published snapshot. ShardsFitted/ShardsReused
// count the incremental stats work: fitted shards scanned appended rows,
// reused shards were sealed by earlier versions and not rescanned.
type AppendResponse struct {
	Session      string `json:"session"`
	Version      int64  `json:"version"`
	Rows         int    `json:"rows"`
	AppendedRows int    `json:"appended_rows"`
	ShardsFitted int    `json:"shards_fitted"`
	ShardsReused int    `json:"shards_reused"`
}

// handleAppendRows is POST /v1/sessions/{name}/rows: parse the appended CSV
// rows against the live schema, extend the database copy-on-write (shared
// tuple storage, bumped version), advance the per-relation stats digests
// over only the new tail shards, pre-seed the version-qualified rank stats
// so no query ever rescans history, and atomically publish the new head.
// Running queries hold their resolved snapshotEntry and are unaffected.
func (s *Server) handleAppendRows(r *http.Request) (any, error) {
	e, err := s.session(r.PathValue("name"))
	if err != nil {
		return nil, err
	}
	var req AppendRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Tables) == 0 {
		return nil, errf(http.StatusBadRequest, "append has no tables")
	}

	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	head := e.head()
	db := head.sess.DB()
	appends := make(map[string][]relation.Tuple, len(req.Tables))
	total := 0
	for _, t := range req.Tables {
		rel := db.Relation(t.Name)
		if rel == nil {
			return nil, errf(http.StatusBadRequest, "session %q has no relation %q", e.name, t.Name)
		}
		prior := len(appends[t.Name])
		tuples, err := rel.ParseAppendRows(strings.NewReader(t.Data), prior)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		appends[t.Name] = append(appends[t.Name], tuples...)
		total += len(tuples)
	}
	if total == 0 {
		return nil, errf(http.StatusBadRequest, "append has no rows")
	}

	sess, err := head.sess.Append(appends)
	if err != nil {
		// Extend validates arity, coercion and key uniqueness; failures are
		// client data errors and nothing has been published.
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	newDB := sess.DB()

	// Incremental stats: advance each relation's digest over the strided
	// shard plan. Sealed shards are counted reused and never rescanned —
	// the acceptance invariant the meter counters below make observable.
	fitted, reused := 0, 0
	for _, name := range newDB.Names() {
		d := e.digests[name]
		if d == nil {
			d = ml.NewRelationDigest(e.digestTarget)
			e.digests[name] = d
		}
		f, u := d.Advance(newDB.Relation(name))
		fitted += f
		reused += u
		// Seed the new version's rank stats from the digest merge: the
		// merged stats are bit-identical to a fresh CollectStats, so the
		// planner's behavior is unchanged while the full-table rescan the
		// version-qualified cache key would otherwise force is skipped.
		if stats := d.Stats(); len(stats) > 0 {
			if pc := sess.PlanCache(); pc != nil {
				pc.SeedAttrRank(newDB, name, stats)
			}
		}
	}
	stampAppend(r.Context(), e, appends, fitted, reused)

	sn := &snapshotEntry{
		version: sess.Version(), sess: sess,
		frame:    dist.NewFrameDelta(head.frame, newDB, sess.Model(), appends),
		rows:     newDB.TotalRows(),
		appended: total,
		created:  time.Now(),
	}
	e.mu.Lock()
	e.snaps = append(e.snaps, sn)
	e.mu.Unlock()
	return &AppendResponse{
		Session: e.name, Version: sn.version, Rows: sn.rows,
		AppendedRows: total, ShardsFitted: fitted, ShardsReused: reused,
	}, nil
}

// SnapshotInfo describes one published session version.
type SnapshotInfo struct {
	Version      int64     `json:"version"`
	Rows         int       `json:"rows"`
	AppendedRows int       `json:"appended_rows,omitempty"`
	CreatedAt    time.Time `json:"created_at"`
}

// SnapshotListResponse is the GET /v1/sessions/{name}/snapshots payload,
// oldest version first; Head repeats the newest version for convenience.
type SnapshotListResponse struct {
	Session   string         `json:"session"`
	Head      int64          `json:"head"`
	Snapshots []SnapshotInfo `json:"snapshots"`
}

func (s *Server) handleListSnapshots(r *http.Request) (any, error) {
	e, err := s.session(r.PathValue("name"))
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	snaps := make([]*snapshotEntry, len(e.snaps))
	copy(snaps, e.snaps)
	e.mu.RUnlock()
	out := SnapshotListResponse{Session: e.name, Head: snaps[len(snaps)-1].version}
	for _, sn := range snaps {
		out.Snapshots = append(out.Snapshots, SnapshotInfo{
			Version: sn.version, Rows: sn.rows, AppendedRows: sn.appended, CreatedAt: sn.created,
		})
	}
	return &out, nil
}

// checkAdmissible verifies a new session name is free and the registry has
// room.
func (s *Server) checkAdmissible(name string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkAdmissibleLocked(name)
}

func (s *Server) checkAdmissibleLocked(name string) error {
	if _, exists := s.sessions[name]; exists {
		return errf(http.StatusConflict, "session %q already exists", name)
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return errcf(http.StatusTooManyRequests, "session_limit", "session limit reached (%d)", s.cfg.MaxSessions)
	}
	return nil
}

// sortedEntries snapshots the session registry in name order.
func (s *Server) sortedEntries() []*sessionEntry {
	s.mu.RLock()
	entries := make([]*sessionEntry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return entries
}

// DeleteSessionResponse is the DELETE /v1/sessions/{name} payload.
type DeleteSessionResponse struct {
	Deleted       string `json:"deleted"`
	JobsCancelled int    `json:"jobs_cancelled"`
}

func (s *Server) handleDeleteSession(r *http.Request) (any, error) {
	name := r.PathValue("name")
	s.mu.Lock()
	if _, ok := s.sessions[name]; !ok {
		s.mu.Unlock()
		return nil, errf(http.StatusNotFound, "unknown session %q", name)
	}
	delete(s.sessions, name)
	s.mu.Unlock()
	// Jobs against a deleted session keep a reference to its entry but have
	// no caller left; cancel them so they stop burning cores.
	cancelled := s.jobs.CancelSession(name)
	return &DeleteSessionResponse{Deleted: name, JobsCancelled: cancelled}, nil
}

// buildCSVDatabase assembles a database and optional causal model from an
// inline upload. CSV columns get inferred kinds and are mutable, so any
// column can be the target of UPDATE/HOWTOUPDATE.
func buildCSVDatabase(c *CSVDatabase) (*hyper.Database, *hyper.CausalModel, error) {
	if len(c.Tables) == 0 {
		return nil, nil, errf(http.StatusBadRequest, "csv upload has no tables")
	}
	db := hyper.NewDatabase()
	for _, t := range c.Tables {
		if strings.TrimSpace(t.Name) == "" {
			return nil, nil, errf(http.StatusBadRequest, "csv table has no name")
		}
		rel, err := hyper.ReadCSVKeyed(t.Name, strings.NewReader(t.Data), t.Keys)
		if err != nil {
			return nil, nil, errf(http.StatusBadRequest, "table %q: %v", t.Name, err)
		}
		if err := db.Add(rel); err != nil {
			return nil, nil, errf(http.StatusBadRequest, "%v", err)
		}
	}
	for _, fk := range c.ForeignKeys {
		err := db.AddForeignKey(hyper.ForeignKey{
			Child: fk.Child, ChildCol: fk.ChildCol,
			Parent: fk.Parent, ParentCol: fk.ParentCol,
		})
		if err != nil {
			return nil, nil, errf(http.StatusBadRequest, "foreign key: %v", err)
		}
	}
	if c.Model == nil {
		return db, nil, nil
	}
	m := hyper.NewCausalModel()
	for _, e := range c.Model.Edges {
		m.AddEdge(e[0], e[1])
	}
	for _, ce := range c.Model.Cross {
		m.AddCross(hyper.CrossEdge{
			FromRel: ce.FromRel, FromAttr: ce.FromAttr,
			ToRel: ce.ToRel, ToAttr: ce.ToAttr,
			GroupBy: ce.GroupBy,
		})
	}
	return db, m, nil
}
