package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hyper/internal/obs"
)

// whatIfSkeleton is the stage skeleton a traced local what-if must render
// to (children sorted lexicographically at every level): prepare resolves
// the view, compiles or fetches the query plan (server sessions always
// carry a plan cache), decomposes blocks, and builds the estimator set;
// eval_shards runs the tuple loop (training one fit per cold model,
// single-flight, so the fit count equals the trained-model count at ANY
// fan-out); fold reduces in plan order.
var whatIfSkeleton = regexp.MustCompile(`^whatif\(eval_shards\(fit(,fit)*\),fold,prepare\(blocks,plan,train,view\)\)$`)

// tracedWhatIf posts one what-if with ?trace=1 and returns the response.
func tracedWhatIf(t *testing.T, base string, req QueryRequest) *WhatIfResponse {
	t.Helper()
	var res WhatIfResponse
	if code := do(t, "POST", base+"/v1/whatif?trace=1", req, &res); code != http.StatusOK {
		t.Fatalf("traced whatif: status %d", code)
	}
	if res.Trace == nil || res.Trace.Root == nil {
		t.Fatalf("?trace=1 returned no trace: %+v", res)
	}
	return &res
}

func TestWhatIfTraceSkeletonStableAcrossShards(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Two sessions so both runs start cache-cold: a warm cache trains no
	// models, which would legitimately change the fit-span count.
	createSession(t, ts, "s1")
	createSession(t, ts, "s4")

	r1 := tracedWhatIf(t, ts.URL, QueryRequest{Session: "s1", Query: germanCount, Shards: 1})
	r4 := tracedWhatIf(t, ts.URL, QueryRequest{Session: "s4", Query: germanCount, Shards: 4})

	s1 := obs.Skeleton(r1.Trace.Root)
	s4 := obs.Skeleton(r4.Trace.Root)
	if !whatIfSkeleton.MatchString(s1) {
		t.Errorf("shards=1 skeleton %q does not match the stage golden", s1)
	}
	if s1 != s4 {
		t.Errorf("span skeleton depends on the shard fan-out:\n shards=1: %s\n shards=4: %s", s1, s4)
	}
	if r1.Value != r4.Value || r1.Sum != r4.Sum {
		t.Errorf("tracing is not execution-only across fan-outs: %+v vs %+v", r1, r4)
	}

	// The eval_shards span must report the actual fan-out it ran.
	for _, res := range []*WhatIfResponse{r1, r4} {
		es := childNamed(res.Trace.Root, "eval_shards")
		if es == nil {
			t.Fatalf("no eval_shards span in %s", obs.Skeleton(res.Trace.Root))
		}
		if got := es.Attrs["workers"]; got != float64(res.ShardWorkers) {
			t.Errorf("eval_shards workers attr = %v, response reports %d", got, res.ShardWorkers)
		}
	}
}

// childNamed returns the first direct child with the given name.
func childNamed(sj *obs.SpanJSON, name string) *obs.SpanJSON {
	for _, c := range sj.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestTraceRingMetricsAndSlowLog(t *testing.T) {
	var slow strings.Builder
	var slowMu sync.Mutex
	srv := New(Config{SlowQueryMs: 1, SlowQueryLog: syncWriter{&slowMu, &slow}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	createSession(t, ts, "g")

	req, _ := json.Marshal(QueryRequest{Session: "g", Query: germanCount})
	resp, err := http.Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(string(req)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		t.Fatalf("whatif response missing %s header", obs.TraceIDHeader)
	}

	// The trace ring serves the listing and the individual tree.
	var list TraceListResponse
	if code := do(t, "GET", ts.URL+"/v1/traces", nil, &list); code != http.StatusOK || len(list.Traces) == 0 {
		t.Fatalf("traces list: code %d, %d traces", code, len(list.Traces))
	}
	if list.Traces[0].ID != traceID {
		t.Errorf("newest trace id %q, want %q from the response header", list.Traces[0].ID, traceID)
	}
	var tj obs.TraceJSON
	if code := do(t, "GET", ts.URL+"/v1/traces/"+traceID, nil, &tj); code != http.StatusOK {
		t.Fatalf("trace get: %d", code)
	}
	if tj.Root == nil || tj.Root.Name != "whatif" || tj.Spans < 4 {
		t.Fatalf("trace %q malformed: %+v", traceID, tj)
	}
	if code := do(t, "GET", ts.URL+"/v1/traces/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}

	// /metrics serves Prometheus text with the core series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	raw, _ := io.ReadAll(mresp.Body)
	text := string(raw)
	for _, want := range []string{
		`hyper_requests_total{endpoint="whatif"} 1`,
		"# TYPE hyper_request_duration_ms histogram",
		`hyper_request_duration_ms_count{endpoint="whatif"} 1`,
		"hyper_sessions 1",
		"hyper_traces_recorded_total 1",
		"hyper_whatif_evals_total 1",
		"hyper_engine_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if problems := srv.Metrics().Lint(); len(problems) != 0 {
		t.Errorf("metrics lint: %v", problems)
	}

	// The 1ms threshold makes every real evaluation slow: the structured log
	// line must carry the same trace id.
	slowMu.Lock()
	logged := slow.String()
	slowMu.Unlock()
	var line slowQueryLine
	if err := json.Unmarshal([]byte(strings.SplitN(logged, "\n", 2)[0]), &line); err != nil {
		t.Fatalf("slow-query log line %q: %v", logged, err)
	}
	if line.Endpoint != "whatif" || line.TraceID != traceID || line.Ms <= 0 {
		t.Errorf("slow-query line %+v, want endpoint whatif, trace %q", line, traceID)
	}
}

// syncWriter serializes writes for the race detector (the server already
// serializes its own slow-log writes; the test reader needs the same lock).
type syncWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func TestDistributedTraceGraft(t *testing.T) {
	base := distTestServer(t, 2)
	if st, p := distPost(t, base, "/v1/sessions", CreateSessionRequest{
		Name: "g", Dataset: "german",
		Options: &SessionOptions{Seed: 7, ShardRows: 256},
	}, nil); st != http.StatusOK {
		t.Fatalf("create session: %d %s", st, p)
	}

	res := tracedWhatIf(t, base, QueryRequest{
		Session: "g", Query: `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`, Placement: "workers",
	})
	if res.Placement != "workers" || res.RemoteWorkers != 2 {
		t.Fatalf("placement %q remote=%d, want workers/2", res.Placement, res.RemoteWorkers)
	}
	de := childNamed(res.Trace.Root, "dist_eval")
	if de == nil {
		t.Fatalf("no dist_eval span: %s", obs.Skeleton(res.Trace.Root))
	}
	plan, _ := de.Attrs["plan"].(float64)
	if int(plan) != res.ShardPlan || plan == 0 {
		t.Fatalf("dist_eval plan attr %v, response plan %d", de.Attrs["plan"], res.ShardPlan)
	}

	// Exactly one worker_eval child per assigned worker shard range, and
	// their shard counts must reconcile with the plan.
	var workerSpans []*obs.SpanJSON
	for _, c := range de.Children {
		if c.Name == "worker_eval" {
			workerSpans = append(workerSpans, c)
		}
	}
	if len(workerSpans) != 2 {
		t.Fatalf("dist_eval has %d worker_eval children, want 2: %s", len(workerSpans), obs.Skeleton(de))
	}
	sum := 0.0
	for _, ws := range workerSpans {
		shards, ok := ws.Attrs["shards"].(float64)
		if !ok || shards <= 0 {
			t.Fatalf("worker_eval shards attr %v", ws.Attrs["shards"])
		}
		sum += shards
		if ws.Attrs["error"] != false {
			t.Errorf("worker_eval error attr %v", ws.Attrs["error"])
		}
		// The worker returned its own tree and it was grafted under the
		// coordinator's span: a single cross-process trace.
		remote := childNamed(ws, "eval")
		if remote == nil {
			t.Fatalf("worker_eval has no grafted remote tree: %s", obs.Skeleton(ws))
		}
		if childNamed(remote, "eval_shards") == nil {
			t.Errorf("remote tree has no eval_shards stage: %s", obs.Skeleton(remote))
		}
	}
	if int(sum) != res.ShardPlan {
		t.Errorf("worker span shard counts sum to %v, plan is %d", sum, res.ShardPlan)
	}
}

func TestConcurrentTracedQueriesDoNotInterleave(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "ref")
	ref := obs.Skeleton(tracedWhatIf(t, ts.URL, QueryRequest{Session: "ref", Query: germanCount}).Trace.Root)
	if !whatIfSkeleton.MatchString(ref) {
		t.Fatalf("serial reference skeleton %q does not match the stage golden", ref)
	}

	// Each goroutine queries its own cache-cold session concurrently; every
	// resulting tree must match the serial reference exactly. A span leaking
	// into another request's tree (interleave) would change both skeletons.
	const n = 4
	for i := 0; i < n; i++ {
		createSession(t, ts, fmt.Sprintf("c%d", i))
	}
	skeletons := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := tracedWhatIf(t, ts.URL, QueryRequest{Session: fmt.Sprintf("c%d", i), Query: germanCount})
			skeletons[i] = obs.Skeleton(res.Trace.Root)
		}(i)
	}
	wg.Wait()
	for i, s := range skeletons {
		if s != ref {
			t.Errorf("concurrent trace %d skeleton diverged:\n got %s\nwant %s", i, s, ref)
		}
	}
}

func TestJobTraceID(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")
	var info JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Kind: "whatif", Query: germanCount}, &info); code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for info.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", info.State)
		}
		time.Sleep(20 * time.Millisecond)
		do(t, "GET", ts.URL+"/v1/jobs/"+info.ID, nil, &info)
	}
	if info.TraceID == "" {
		t.Fatal("done job has no trace_id")
	}
	var tj obs.TraceJSON
	if code := do(t, "GET", ts.URL+"/v1/traces/"+info.TraceID, nil, &tj); code != http.StatusOK {
		t.Fatalf("job trace %q: status %d", info.TraceID, code)
	}
	if tj.Root.Name != "job:whatif" || childNamed(tj.Root, "queue_wait") == nil || childNamed(tj.Root, "run") == nil {
		t.Errorf("job trace malformed: %s", obs.Skeleton(tj.Root))
	}
}
