package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// newTestServer starts an httptest server over a fresh Server.
func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// do issues a JSON request and decodes the JSON response into out (when
// non-nil), returning the status code.
func do(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// createSession makes a small german session named name.
func createSession(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	var info SessionInfo
	code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name:    name,
		Dataset: "german",
		Scale:   0.3, // 1500 rows: fast but non-trivial
		Options: &SessionOptions{Mode: "full", Seed: 7},
	}, &info)
	if code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	if info.Name != name || info.Dataset != "german" || info.Rows == 0 {
		t.Fatalf("unexpected session info: %+v", info)
	}
}

const germanCount = `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`

func TestServerWhatIfAndCacheReuse(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	var first WhatIfResponse
	if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanCount}, &first); code != http.StatusOK {
		t.Fatalf("whatif: status %d", code)
	}
	if first.Value <= 0 || first.ViewRows == 0 {
		t.Fatalf("degenerate what-if response: %+v", first)
	}
	var second WhatIfResponse
	do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanCount}, &second)
	if second.Value != first.Value {
		t.Errorf("repeat query changed value: %v vs %v", second.Value, first.Value)
	}

	// The repeat query must have been served from the session cache.
	var stats StatsResponse
	do(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if len(stats.Sessions) != 1 {
		t.Fatalf("stats sessions = %d, want 1", len(stats.Sessions))
	}
	cs := stats.Sessions[0].Cache
	if cs.Hits < 3 {
		t.Errorf("cache hits = %d, want >= 3 (view, blocks, estimator)", cs.Hits)
	}
	if stats.Sessions[0].Queries != 2 {
		t.Errorf("session query count = %d, want 2", stats.Sessions[0].Queries)
	}
	ep, ok := stats.Endpoints["whatif"]
	if !ok || ep.Count != 2 || ep.Errors != 0 {
		t.Errorf("whatif endpoint stats = %+v, want count 2, errors 0", ep)
	}
}

func TestServerHowTo(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")
	var res HowToResponse
	code := do(t, "POST", ts.URL+"/v1/howto", QueryRequest{
		Session: "g",
		Query:   `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("howto: status %d", code)
	}
	if len(res.Choices) != 1 || res.Objective < res.Base {
		t.Fatalf("unexpected how-to response: %+v", res)
	}
	// Unknown method is a client error.
	var errResp map[string]string
	code = do(t, "POST", ts.URL+"/v1/howto", QueryRequest{Session: "g", Query: "x", Method: "annealing"}, &errResp)
	if code != http.StatusBadRequest || errResp["error"] == "" {
		t.Errorf("bad method: status %d, body %v", code, errResp)
	}
}

func TestServerExplain(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")
	var res ExplainResponse
	code := do(t, "POST", ts.URL+"/v1/explain", QueryRequest{Session: "g", Query: germanCount}, &res)
	if code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if res.Plan == "" {
		t.Error("empty plan")
	}
	if res.Snapshot != 1 {
		t.Errorf("explain snapshot = %d, want 1 (creation version)", res.Snapshot)
	}
}

func TestServerBatchMixedAndConcurrent(t *testing.T) {
	ts := newTestServer(t, Config{BatchWorkers: 4})
	createSession(t, ts, "g")
	req := BatchRequest{
		Session: "g",
		Queries: []BatchQuery{
			{Kind: "whatif", Query: germanCount},
			{Kind: "whatif", Query: `USE German UPDATE(Savings) = 2 OUTPUT COUNT(Credit = 1)`},
			{Kind: "explain", Query: germanCount},
			{Kind: "whatif", Query: `this does not parse`},
			{Kind: "sideways", Query: germanCount},
		},
		Workers: 4,
	}
	var res BatchResponse
	if code := do(t, "POST", ts.URL+"/v1/batch", req, &res); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(res.Results) != 5 {
		t.Fatalf("results = %d, want 5", len(res.Results))
	}
	if res.Errors != 2 {
		t.Errorf("errors = %d, want 2 (parse failure + bad kind)", res.Errors)
	}
	for i, r := range res.Results {
		if r.Index != i {
			t.Errorf("result %d has index %d (order lost)", i, r.Index)
		}
	}
	if res.Results[0].WhatIf == nil || res.Results[0].WhatIf.Value <= 0 {
		t.Errorf("batch element 0 missing what-if result: %+v", res.Results[0])
	}
	if res.Results[2].Plan == "" {
		t.Error("batch element 2 missing explain plan")
	}
	if res.Results[3].Error == "" || res.Results[4].Error == "" {
		t.Error("failing batch elements did not report errors")
	}

	// Concurrent batches against one session must agree with each other.
	var wg sync.WaitGroup
	values := make([]float64, 6)
	for i := range values {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var r BatchResponse
			do(t, "POST", ts.URL+"/v1/batch", BatchRequest{
				Session: "g",
				Queries: []BatchQuery{{Query: germanCount}},
			}, &r)
			if len(r.Results) == 1 && r.Results[0].WhatIf != nil {
				values[i] = r.Results[0].WhatIf.Value
			}
		}(i)
	}
	wg.Wait()
	for i, v := range values {
		if v != values[0] {
			t.Errorf("concurrent batch %d returned %v, batch 0 returned %v", i, v, values[0])
		}
	}
}

func TestServerSessionLifecycleAndErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxSessions: 2})

	// Query against a missing session.
	var errResp ErrorResponse
	if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "nope", Query: germanCount}, &errResp); code != http.StatusNotFound {
		t.Errorf("missing session: status %d, want 404", code)
	}
	// Unknown dataset.
	if code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "x", Dataset: "nope"}, &errResp); code != http.StatusBadRequest {
		t.Errorf("unknown dataset: status %d, want 400", code)
	}
	// Neither dataset nor CSV.
	if code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "x"}, &errResp); code != http.StatusBadRequest {
		t.Errorf("empty source: status %d, want 400", code)
	}
	// Malformed body (unknown field).
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewReader([]byte(`{"nope": 1}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	createSession(t, ts, "a")
	// Duplicate name.
	if code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "a", Dataset: "toy"}, &errResp); code != http.StatusConflict {
		t.Errorf("duplicate: status %d, want 409", code)
	}
	createSession(t, ts, "b")
	// Session cap.
	if code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "c", Dataset: "toy"}, &errResp); code != http.StatusTooManyRequests {
		t.Errorf("cap: status %d, want 429", code)
	}

	var list struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	do(t, "GET", ts.URL+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 2 || list.Sessions[0].Name != "a" || list.Sessions[1].Name != "b" {
		t.Fatalf("list = %+v, want [a b]", list.Sessions)
	}

	if code := do(t, "DELETE", ts.URL+"/v1/sessions/a", nil, nil); code != http.StatusOK {
		t.Errorf("delete: status %d", code)
	}
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/a", nil, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
	do(t, "GET", ts.URL+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 1 {
		t.Errorf("after delete, %d sessions remain, want 1", len(list.Sessions))
	}
}

func TestServerCSVSession(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := "Status,Savings,Credit\n"
	for i := 0; i < 60; i++ {
		csv += fmt.Sprintf("%d,%d,%d\n", i%4, i%3, (i+i/4)%2)
	}
	var info SessionInfo
	code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "mine",
		CSV: &CSVDatabase{
			Tables: []CSVTable{{Name: "Loans", Data: csv}},
			Model: &CSVModel{Edges: [][2]string{
				{"Loans.Status", "Loans.Credit"},
				{"Loans.Savings", "Loans.Credit"},
			}},
		},
	}, &info)
	if code != http.StatusOK {
		t.Fatalf("csv session: status %d (%+v)", code, info)
	}
	if info.Rows != 60 {
		t.Errorf("rows = %d, want 60", info.Rows)
	}
	var res WhatIfResponse
	code = do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{
		Session: "mine",
		Query:   `USE Loans UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("csv whatif: status %d", code)
	}
	if res.ViewRows != 60 {
		t.Errorf("view rows = %d, want 60", res.ViewRows)
	}

	// A model referencing a missing column must be rejected at creation.
	var errResp map[string]string
	code = do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "bad",
		CSV: &CSVDatabase{
			Tables: []CSVTable{{Name: "Loans", Data: csv}},
			Model:  &CSVModel{Edges: [][2]string{{"Loans.Nope", "Loans.Credit"}}},
		},
	}, &errResp)
	if code != http.StatusBadRequest || errResp["error"] == "" {
		t.Errorf("invalid model: status %d, body %v", code, errResp)
	}
}

func TestServerHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	var res map[string]any
	if code := do(t, "GET", ts.URL+"/healthz", nil, &res); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if res["ok"] != true {
		t.Errorf("healthz body = %v", res)
	}
}
