package server

import (
	"bytes"
	"net/http"
)

// ErrorResponse is the single JSON error envelope every /v1 endpoint emits:
// a human-readable message, a machine-readable code, and a retryable hint so
// clients can back off without parsing message text. No handler writes error
// JSON by hand — instrument funnels every failure (including recovered
// panics and the mux's own 404/405s) through writeError.
type ErrorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	Retryable bool   `json:"retryable,omitempty"`
}

// codeForStatus supplies the envelope code when a handler didn't set one
// explicitly (errcf's code always wins).
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case 499:
		return "cancelled"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

// retryableStatus marks the statuses a client may retry verbatim: queue and
// admission pressure (429), draining (503), and deadline expiry (504).
// Client errors and true faults are not retryable.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// writeError renders the error envelope. code == "" falls back to the
// status's default code.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	if code == "" {
		code = codeForStatus(status)
	}
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code, Retryable: retryableStatus(status)})
}

// envelopeErrors wraps the routed mux so the two error responses net/http
// writes itself — the plain-text 404 for unrouted paths and 405 for known
// paths with the wrong method — come out in the same JSON envelope as every
// handler error. Handlers always set an application/json Content-Type before
// writing, so interception triggers only on the mux's own text/plain pages.
func envelopeErrors(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	intercepted bool // swallowing the mux's plain-text error body
	wroteHeader bool
}

func (w *envelopeWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		w.Header().Get("Content-Type") != "application/json" {
		w.intercepted = true
		// Drop the text/plain headers ServeMux set; writeError re-sets them.
		w.Header().Del("Content-Type")
		w.Header().Del("X-Content-Type-Options")
		msg := "not found"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		writeError(w.ResponseWriter, status, "", msg)
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercepted {
		// The envelope already went out; swallow the mux's text body.
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

// deprecatedAlias marks a legacy route that survives as a thin alias of a
// resource-oriented successor: responses carry an RFC 8594 Deprecation
// header and a successor Link so clients can migrate mechanically.
func deprecatedAlias(successor string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		h.ServeHTTP(w, r)
	})
}

// jsonContentType reports whether a raw response body looks like our JSON
// (used only by tests asserting no endpoint emits a bare error page).
func looksLikeJSON(body []byte) bool {
	t := bytes.TrimSpace(body)
	return len(t) > 0 && (t[0] == '{' || t[0] == '[')
}
