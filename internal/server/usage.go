package server

import (
	"context"
	"encoding/base64"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hyper/internal/hyperql"
	"hyper/internal/obs"
	"hyper/internal/relation"
)

// usageTable is the query-shape usage analytics store: every completed
// metered query lands in one row keyed by (session, kind, shape
// fingerprint), accumulating a count, an error count, wall time, and the
// summed cost vector. The table is bounded — when full, recording a new
// shape evicts the least-used (then oldest) row, so a daemon hammered with
// unique shapes keeps its hottest K and constant memory. Rows survive
// session deletion deliberately: usage analytics describe traffic history,
// not live state.
type usageTable struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*usageRow
}

type usageRow struct {
	session     string
	kind        string
	fingerprint string
	shape       string // normalized shape text (an example rendering)
	count       uint64
	errors      uint64
	totalMs     float64
	lastSeen    time.Time
	cost        *obs.MeterJSON
}

func newUsageTable(capacity int) *usageTable {
	return &usageTable{cap: capacity, entries: make(map[string]*usageRow)}
}

// record folds one completed query into its shape's row.
func (t *usageTable) record(session, kind, fingerprint, shape string, mj *obs.MeterJSON, wallMs float64, failed bool) {
	key := session + "\x1f" + kind + "\x1f" + fingerprint
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.entries[key]
	if !ok {
		if len(t.entries) >= t.cap {
			t.evictLocked()
		}
		row = &usageRow{
			session: session, kind: kind, fingerprint: fingerprint, shape: shape,
			cost: &obs.MeterJSON{},
		}
		t.entries[key] = row
	}
	row.count++
	if failed {
		row.errors++
	}
	row.totalMs += wallMs
	row.lastSeen = time.Now()
	row.cost.Add(mj)
}

// evictLocked drops the least-used row (oldest last-seen breaks ties).
func (t *usageTable) evictLocked() {
	var victim string
	var vrow *usageRow
	for k, r := range t.entries {
		if vrow == nil || r.count < vrow.count ||
			(r.count == vrow.count && r.lastSeen.Before(vrow.lastSeen)) {
			victim, vrow = k, r
		}
	}
	if vrow != nil {
		delete(t.entries, victim)
	}
}

// UsageEntry is the wire form of one shape's accumulated usage.
type UsageEntry struct {
	Session     string    `json:"session"`
	Kind        string    `json:"kind"`
	Fingerprint string    `json:"fingerprint"`
	Shape       string    `json:"shape"`
	Count       uint64    `json:"count"`
	Errors      uint64    `json:"errors,omitempty"`
	TotalMs     float64   `json:"total_ms"`
	MeanMs      float64   `json:"mean_ms"`
	LastSeen    time.Time `json:"last_seen"`
	// Cost is the summed cost vector of every recorded run of this shape
	// (PlanShards is kept as a max; see obs.MeterJSON.Add).
	Cost *obs.MeterJSON `json:"cost"`
}

// snapshot renders the table, hottest shape first (count desc, then
// fingerprint for a stable order); session filters when non-empty.
func (t *usageTable) snapshot(session string) []UsageEntry {
	t.mu.Lock()
	out := make([]UsageEntry, 0, len(t.entries))
	for _, r := range t.entries {
		if session != "" && r.session != session {
			continue
		}
		cost := *r.cost // copy so the snapshot is immune to later folds
		if len(r.cost.StagesMs) > 0 {
			cost.StagesMs = make(map[string]float64, len(r.cost.StagesMs))
			for k, v := range r.cost.StagesMs {
				cost.StagesMs[k] = v
			}
		}
		out = append(out, UsageEntry{
			Session: r.session, Kind: r.kind, Fingerprint: r.fingerprint, Shape: r.shape,
			Count: r.count, Errors: r.errors, TotalMs: r.totalMs,
			MeanMs: r.totalMs / float64(r.count), LastSeen: r.lastSeen, Cost: &cost,
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// UsageResponse is the GET /v1/usage payload. Unpaginated listings keep the
// hottest-first order; when ?limit=/?after= are present the shapes come in
// stable composite-key order (session, kind, fingerprint) with Next holding
// the cursor of the following page.
type UsageResponse struct {
	Shapes []UsageEntry `json:"shapes"`
	Next   string       `json:"next,omitempty"`
}

func (s *Server) handleUsage(r *http.Request) (any, error) {
	return s.usagePage(r, "")
}

func (s *Server) handleUsageSession(r *http.Request) (any, error) {
	return s.usagePage(r, r.PathValue("session"))
}

// usageKey is the usage table's stable pagination key; cursors are its
// base64url encoding so the \x1f separators survive any transport.
func usageKey(u UsageEntry) string {
	return u.Session + "\x1f" + u.Kind + "\x1f" + u.Fingerprint
}

func (s *Server) usagePage(r *http.Request, session string) (any, error) {
	page, err := parsePage(r)
	if err != nil {
		return nil, err
	}
	shapes := s.usage.snapshot(session)
	if !page.active() {
		return &UsageResponse{Shapes: shapes}, nil
	}
	if page.after != "" {
		raw, err := base64.RawURLEncoding.DecodeString(page.after)
		if err != nil {
			return nil, errBadCursor("usage cursor %q is not base64url", page.after)
		}
		if strings.Count(string(raw), "\x1f") != 2 {
			return nil, errBadCursor("usage cursor %q is not a (session, kind, fingerprint) key", page.after)
		}
		page.after = string(raw)
	}
	sort.Slice(shapes, func(i, j int) bool { return usageKey(shapes[i]) < usageKey(shapes[j]) })
	shapes, next := paginate(shapes, usageKey, page)
	if next != "" {
		next = base64.RawURLEncoding.EncodeToString([]byte(next))
	}
	return &UsageResponse{Shapes: shapes, Next: next}, nil
}

// recordUsage finalizes one metered request: the cost histograms observe the
// vector under the endpoint label, and — when the query was stamped with a
// shape — the usage table accumulates it. Called for every traced request
// and for every finished job (endpoint "job:<kind>").
func (s *Server) recordUsage(endpoint string, m *obs.Meter, elapsed time.Duration, failed bool) {
	if m == nil {
		return
	}
	mj := m.JSON()
	wallMs := float64(elapsed) / float64(time.Millisecond)
	s.costWall.With(endpoint).Observe(wallMs)
	s.costTuples.With(endpoint).Observe(float64(mj.TuplesEvaluated))
	s.costShards.With(endpoint).Observe(float64(mj.ShardsRun))
	session, kind, fingerprint, shape := m.Shape()
	if fingerprint == "" {
		return
	}
	s.usage.record(session, kind, fingerprint, shape, mj, wallMs, failed)
}

// stampShape parses query and stamps the request's meter with the shape
// identity the usage table aggregates under: session, kind, and the
// schema-qualified structural fingerprint. A query that does not parse
// leaves the meter unstamped — the request is about to fail with a 400, and
// malformed text has no shape to aggregate.
func stampShape(ctx context.Context, e *sessionEntry, kind, query string) {
	meter := obs.MeterFromContext(ctx)
	if meter == nil {
		return
	}
	q, err := hyperql.Parse(query)
	if err != nil {
		return
	}
	meter.SetShape(e.name, kind, hyperql.Fingerprint(e.schemaSig, q), hyperql.Shape(q))
}

// stampBatchShape stamps a batch request's meter with a composite shape:
// the fingerprint hashes the ordered element fingerprints, so two batches
// running the same query shapes in the same order aggregate together
// (batch arity is structural, like IN-list arity). Unparseable elements are
// skipped — they fail element-locally without sinking the batch.
func stampBatchShape(ctx context.Context, e *sessionEntry, queries []BatchQuery) {
	meter := obs.MeterFromContext(ctx)
	if meter == nil {
		return
	}
	h := fnv.New64a()
	io.WriteString(h, e.schemaSig)
	for _, bq := range queries {
		q, err := hyperql.Parse(bq.Query)
		if err != nil {
			continue
		}
		io.WriteString(h, "\x00")
		io.WriteString(h, hyperql.Fingerprint(e.schemaSig, q))
	}
	meter.SetShape(e.name, "batch",
		fmt.Sprintf("%016x", h.Sum64()), fmt.Sprintf("BATCH(%d)", len(queries)))
}

// stampAppend stamps an append's meter: the shape aggregates appends by
// their touched-relation set, and the cost vector carries the incremental
// stats counters (append_shards_fitted / append_shards_reused) that make
// "appends never rescan history" an observable invariant in /v1/usage.
func stampAppend(ctx context.Context, e *sessionEntry, appends map[string][]relation.Tuple, fitted, reused int) {
	meter := obs.MeterFromContext(ctx)
	if meter == nil {
		return
	}
	meter.AddAppendShards(fitted, reused)
	names := make([]string, 0, len(appends))
	for name := range appends {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	io.WriteString(h, e.schemaSig)
	for _, n := range names {
		io.WriteString(h, "\x00")
		io.WriteString(h, n)
	}
	meter.SetShape(e.name, "append",
		fmt.Sprintf("%016x", h.Sum64()), "APPEND("+strings.Join(names, ",")+")")
}
