package server

import (
	"encoding/json"
	"net/http"
	"time"

	"hyper"
	"hyper/internal/obs"
)

// registerMetrics bridges the server's pre-existing gauges (sessions, jobs,
// shard activity, dist coordinator, engine caches) into the metrics
// registry as scrape-time functions — no double bookkeeping, the atomics
// the /v1/stats endpoint reads are the same ones /metrics reads. Names
// follow the stack's scheme (hyper_ prefix, counters end in _total),
// enforced by Registry.Lint via cmd/metriclint.
func (s *Server) registerMetrics() {
	r := s.metrics
	r.GaugeFunc("hyper_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("hyper_sessions", "Live sessions in the registry.",
		func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(len(s.sessions)) })
	r.CounterFunc("hyper_session_queries_total", "Queries evaluated across all sessions (live sessions only).",
		func() float64 {
			var n int64
			for _, e := range s.sortedEntries() {
				n += e.queries.Load()
			}
			return float64(n)
		})
	r.CounterFunc("hyper_engine_cache_hits_total", "Engine artifact-cache hits summed over live sessions.",
		func() float64 { return s.sumCaches(func(c hyper.CacheStats) float64 { return float64(c.Hits) }) })
	r.CounterFunc("hyper_engine_cache_misses_total", "Engine artifact-cache misses summed over live sessions.",
		func() float64 { return s.sumCaches(func(c hyper.CacheStats) float64 { return float64(c.Misses) }) })
	r.CounterFunc("hyper_engine_cache_evictions_total", "Engine artifact-cache evictions summed over live sessions.",
		func() float64 { return s.sumCaches(func(c hyper.CacheStats) float64 { return float64(c.Evictions) }) })
	r.GaugeFunc("hyper_engine_cache_entries", "Engine artifact-cache entries summed over live sessions.",
		func() float64 { return s.sumCaches(func(c hyper.CacheStats) float64 { return float64(c.Entries) }) })
	r.CounterFunc("hyper_plan_cache_hits_total", "Compiled-plan cache hits summed over live sessions.",
		func() float64 {
			return s.sumPlanCaches(func(c hyper.PlanCacheStats) float64 { return float64(c.Hits) })
		})
	r.CounterFunc("hyper_plan_cache_misses_total", "Compiled-plan cache misses summed over live sessions.",
		func() float64 {
			return s.sumPlanCaches(func(c hyper.PlanCacheStats) float64 { return float64(c.Misses) })
		})
	r.CounterFunc("hyper_plan_cache_evictions_total", "Compiled plans evicted by the LRU bound, summed over live sessions.",
		func() float64 {
			return s.sumPlanCaches(func(c hyper.PlanCacheStats) float64 { return float64(c.Evictions) })
		})
	r.GaugeFunc("hyper_plan_cache_entries", "Plan-cache artifacts (plans, stats, interned columns) summed over live sessions.",
		func() float64 {
			return s.sumPlanCaches(func(c hyper.PlanCacheStats) float64 { return float64(c.Entries) })
		})

	r.GaugeFunc("hyper_jobs_queued", "Jobs waiting in the priority queue.",
		func() float64 { return float64(s.jobs.Stats().Queued) })
	r.GaugeFunc("hyper_jobs_running", "Jobs currently executing.",
		func() float64 { return float64(s.jobs.Stats().Running) })
	r.CounterFunc("hyper_jobs_completed_total", "Jobs that finished successfully.",
		func() float64 { return float64(s.jobs.Stats().Completed) })
	r.CounterFunc("hyper_jobs_failed_total", "Jobs that finished with an error.",
		func() float64 { return float64(s.jobs.Stats().Failed) })
	r.CounterFunc("hyper_jobs_cancelled_total", "Jobs cancelled by clients or session deletion.",
		func() float64 { return float64(s.jobs.Stats().Cancelled) })
	r.CounterFunc("hyper_jobs_expired_total", "Jobs that hit their deadline.",
		func() float64 { return float64(s.jobs.Stats().Expired) })
	r.CounterFunc("hyper_jobs_rejected_total", "Job submissions rejected by admission control.",
		func() float64 { return float64(s.jobs.Stats().Rejected) })

	r.CounterFunc("hyper_whatif_evals_total", "What-if evaluations recorded by the shard gauges.",
		func() float64 { return float64(s.shards.evals.Load()) })
	r.CounterFunc("hyper_whatif_sharded_evals_total", "What-if evaluations that ran a multi-shard plan.",
		func() float64 { return float64(s.shards.shardedEvals.Load()) })
	r.CounterFunc("hyper_whatif_shards_run_total", "Plan shards executed across all what-if evaluations.",
		func() float64 { return float64(s.shards.shardsRun.Load()) })
	r.GaugeFunc("hyper_whatif_max_plan_shards", "Largest shard plan seen.",
		func() float64 { return float64(s.shards.maxPlan.Load()) })
	r.GaugeFunc("hyper_whatif_max_workers", "Widest shard worker fan-out seen.",
		func() float64 { return float64(s.shards.maxWorkers.Load()) })

	r.CounterFunc("hyper_traces_recorded_total", "Request traces captured into the trace ring.",
		func() float64 { return float64(s.traces.Recorded()) })

	obs.RegisterRuntimeMetrics(r)
	s.costWall = r.HistogramVec("hyper_query_cost_wall_ms",
		"Per-query wall time in milliseconds, by endpoint (jobs as job:<kind>).",
		obs.LatencyBucketsMs, "endpoint")
	s.costTuples = r.HistogramVec("hyper_query_cost_tuples",
		"Per-query tuples evaluated, by endpoint (jobs as job:<kind>).",
		obs.CountBuckets, "endpoint")
	s.costShards = r.HistogramVec("hyper_query_cost_shards",
		"Per-query plan shards executed, by endpoint (jobs as job:<kind>).",
		obs.CountBuckets, "endpoint")
	s.planCompile = r.Histogram("hyper_plan_compile_ms",
		"Plan compilation latency in milliseconds (cache misses only; hits skip compilation).",
		obs.LatencyBucketsMs)
}

// sumCaches folds a CacheStats field over every live session.
func (s *Server) sumCaches(f func(hyper.CacheStats) float64) float64 {
	var sum float64
	for _, e := range s.sortedEntries() {
		// The engine cache is shared across a session's whole version chain,
		// so any snapshot's handle reports the session's counters.
		sum += f(e.head().sess.Cache().Stats())
	}
	return sum
}

// sumPlanCaches folds a PlanCacheStats field over every live session.
func (s *Server) sumPlanCaches(f func(hyper.PlanCacheStats) float64) float64 {
	var sum float64
	for _, e := range s.sortedEntries() {
		if pc := e.head().sess.PlanCache(); pc != nil {
			sum += f(pc.Stats())
		}
	}
	return sum
}

// Metrics returns the server's metric registry (scraped at GET /metrics;
// cmd/metriclint instantiates a server to lint exactly this registry).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Traces returns the server's trace ring.
func (s *Server) Traces() *obs.Recorder { return s.traces }

// attachTrace inlines a rendered trace into a query response when the
// client asked for it with ?trace=1. Only the typed query payloads carry a
// trace field; anything else ignores the ask rather than failing it.
func attachTrace(payload any, tj *obs.TraceJSON) {
	switch p := payload.(type) {
	case *WhatIfResponse:
		p.Trace = tj
	case *HowToResponse:
		p.Trace = tj
	case *ExplainResponse:
		p.Trace = tj
	case *BatchResponse:
		p.Trace = tj
	}
}

// slowQueryLine is the JSON shape of one slow-query log line.
type slowQueryLine struct {
	TS       time.Time `json:"ts"`
	Endpoint string    `json:"endpoint"`
	Ms       float64   `json:"ms"`
	Status   int       `json:"status"`
	TraceID  string    `json:"trace_id"`
	// Session/Kind/Shape identify the query shape (present when the handler
	// stamped one); Cost is the request's full cost vector.
	Session string         `json:"session,omitempty"`
	Kind    string         `json:"kind,omitempty"`
	Shape   string         `json:"shape,omitempty"`
	Cost    *obs.MeterJSON `json:"cost,omitempty"`
}

// logSlowQuery emits one structured line for a traced request that crossed
// the SlowQueryMs threshold. The trace id in the line keys directly into
// GET /v1/traces/{id}, so a slow query found in the log is one lookup away
// from its span tree; the shape fingerprint keys into /v1/usage, and the
// inline cost vector says where the time went without any lookup at all.
func (s *Server) logSlowQuery(endpoint, traceID string, elapsed time.Duration, status int, meter *obs.Meter) {
	s.slow.Inc()
	sl := slowQueryLine{
		TS:       time.Now().UTC(),
		Endpoint: endpoint,
		Ms:       float64(elapsed) / float64(time.Millisecond),
		Status:   status,
		TraceID:  traceID,
	}
	if meter != nil {
		sl.Session, sl.Kind, sl.Shape, _ = meter.Shape()
		sl.Cost = meter.JSON()
	}
	line, err := json.Marshal(sl)
	if err != nil {
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	s.cfg.SlowQueryLog.Write(append(line, '\n'))
}

// TraceListResponse is the GET /v1/traces payload (newest first).
type TraceListResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
}

// handleListTraces serves the trace ring, filtered by the optional ?kind=,
// ?min_ms= and ?limit= query parameters; malformed values are a 400.
func (s *Server) handleListTraces(r *http.Request) (any, error) {
	f, err := obs.ParseTraceFilter(r.URL.Query())
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	return &TraceListResponse{Traces: s.traces.ListFiltered(f)}, nil
}

func (s *Server) handleGetTrace(r *http.Request) (any, error) {
	id := r.PathValue("id")
	tj, ok := s.traces.Get(id)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown trace %q (the ring keeps the most recent %d)", id, s.cfg.TraceCapacity)
	}
	return tj, nil
}
