package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// pollJob fetches a job until pred is satisfied or the timeout passes.
func pollJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, pred func(JobInfo) bool) JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var info JobInfo
	for time.Now().Before(deadline) {
		if code := do(t, "GET", ts.URL+"/v1/jobs/"+id, nil, &info); code != http.StatusOK {
			t.Fatalf("poll job %s: status %d", id, code)
		}
		if pred(info) {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never satisfied predicate; last state %q progress %+v", id, info.State, info.Progress)
	return JobInfo{}
}

func terminal(info JobInfo) bool {
	switch info.State {
	case "done", "failed", "cancelled", "expired":
		return true
	}
	return false
}

// slowHowTo is a brute-force how-to over german-cont whose ~8100
// combination evaluations take several seconds — enough runway to observe
// it mid-solve and cancel it. (Submit with method "brute".)
const slowHowTo = `USE German HOWTOUPDATE Status, Savings, Housing, Duration, InstallmentRate TOMAXIMIZE COUNT(Credit = 1)`

// createContSession makes a german-cont session (continuous Duration and
// InstallmentRate, so slowHowTo has bucketized candidates) named name.
func createContSession(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	var info SessionInfo
	code := do(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name:    name,
		Dataset: "german-cont",
		Scale:   0.3,
		Options: &SessionOptions{Mode: "full", Seed: 7},
	}, &info)
	if code != http.StatusOK {
		t.Fatalf("create german-cont session: status %d", code)
	}
}

// TestJobSubmitPollComplete drives the happy path end to end: a how-to job
// against a real session is submitted, polled through queued/running, and
// completes with the same result the synchronous endpoint returns.
func TestJobSubmitPollComplete(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	const query = `USE German HOWTOUPDATE Status LIMIT UPDATES <= 1 TOMAXIMIZE COUNT(Credit = 1)`
	var sync HowToResponse
	if code := do(t, "POST", ts.URL+"/v1/howto", QueryRequest{Session: "g", Query: query}, &sync); code != http.StatusOK {
		t.Fatalf("sync howto: status %d", code)
	}

	var submitted JobInfo
	code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "g", Kind: "howto", Query: query, Priority: 3,
	}, &submitted)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d (%+v)", code, submitted)
	}
	if submitted.ID == "" || submitted.Session != "g" || submitted.Kind != "howto" || submitted.Priority != 3 {
		t.Fatalf("submitted info = %+v", submitted)
	}
	if submitted.State != "queued" && submitted.State != "running" && submitted.State != "done" {
		t.Fatalf("fresh job state = %q", submitted.State)
	}

	done := pollJob(t, ts, submitted.ID, 30*time.Second, terminal)
	if done.State != "done" || done.Error != "" {
		t.Fatalf("job finished as %q (error %q)", done.State, done.Error)
	}
	res, ok := done.Result.(map[string]any)
	if !ok {
		t.Fatalf("job result has type %T", done.Result)
	}
	if obj, ok := res["objective"].(float64); !ok || obj != sync.Objective {
		t.Errorf("async objective = %v, sync = %v", res["objective"], sync.Objective)
	}
	if done.StartedAt == nil || done.FinishedAt == nil || done.RunMs <= 0 {
		t.Errorf("timing fields missing: %+v", done)
	}
	if done.Progress.Done == 0 {
		t.Errorf("completed job reported no progress: %+v", done.Progress)
	}

	// The job shows up in listings (without its result payload).
	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	do(t, "GET", ts.URL+"/v1/jobs?session=g&state=done", nil, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID {
		t.Fatalf("job listing = %+v", list.Jobs)
	}
	if list.Jobs[0].Result != nil {
		t.Error("listing should omit result payloads")
	}
}

// TestJobCancelMidSolve is the acceptance scenario: a long brute-force
// how-to job on a real session is cancelled mid-run via DELETE /v1/jobs/{id};
// the cancel is observed inside the solver, so the job goes terminal long
// before the remaining combinations could have been evaluated.
func TestJobCancelMidSolve(t *testing.T) {
	ts := newTestServer(t, Config{})
	createContSession(t, ts, "g")

	// ~5*5*4*9*9 = 8100 combinations, each a what-if evaluation: far more
	// work than can finish while we poll for the first progress report.
	var job JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "g", Kind: "howto", Method: "brute", Query: slowHowTo,
	}, &job); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}

	// Wait until the solver demonstrably made progress (it is mid-solve).
	running := pollJob(t, ts, job.ID, 30*time.Second, func(i JobInfo) bool {
		return i.State == "running" && i.Progress.Done >= 1
	})
	if running.Progress.Stage != "combos" {
		t.Errorf("progress stage = %q, want combos", running.Progress.Stage)
	}

	cancelAt := time.Now()
	var cancelled JobInfo
	if code := do(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	final := pollJob(t, ts, job.ID, 10*time.Second, terminal)
	promptness := time.Since(cancelAt)
	if final.State != "cancelled" {
		t.Fatalf("final state = %q, want cancelled", final.State)
	}
	// The cancel must be observed inside the solver: terminal well before
	// the full combination sweep (thousands of evaluations) could run.
	if promptness > 5*time.Second {
		t.Errorf("cancel took %s to be observed", promptness)
	}
	if final.Progress.Total > 0 && final.Progress.Done >= final.Progress.Total {
		t.Errorf("job claims full progress (%d/%d) despite cancellation",
			final.Progress.Done, final.Progress.Total)
	}

	// The session (and its artifact cache) stays consistent: the same
	// session answers the synchronous endpoint normally afterwards.
	var res WhatIfResponse
	if code := do(t, "POST", ts.URL+"/v1/whatif", QueryRequest{Session: "g", Query: germanCount}, &res); code != http.StatusOK {
		t.Fatalf("post-cancel whatif: status %d", code)
	}
	if res.Value <= 0 {
		t.Errorf("post-cancel whatif degenerate: %+v", res)
	}

	var stats StatsResponse
	do(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Jobs.Cancelled != 1 {
		t.Errorf("stats cancelled = %d, want 1", stats.Jobs.Cancelled)
	}
}

// TestJobQueueOverflow429 pins the admission-control acceptance criterion:
// overflowing the bounded queue returns HTTP 429 with a structured error
// body.
func TestJobQueueOverflow429(t *testing.T) {
	ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 2, JobsPerSession: -1})
	createContSession(t, ts, "g")

	// One long-running job occupies the single worker; two more fill the
	// queue. (The runner holds the worker long enough for the overflow
	// submission below; all are cancelled at the end.)
	var ids []string
	for i := 0; i < 3; i++ {
		var job JobInfo
		if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
			Session: "g", Kind: "howto", Method: "brute", Query: slowHowTo,
		}, &job); code != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids = append(ids, job.ID)
	}

	var errBody struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Query: germanCount}, &errBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", code)
	}
	if errBody.Code != "queue_full" || errBody.Error == "" {
		t.Fatalf("overflow body = %+v, want structured queue_full error", errBody)
	}

	var stats StatsResponse
	do(t, "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Jobs.Rejected != 1 {
		t.Errorf("stats rejected = %d, want 1", stats.Jobs.Rejected)
	}
	if stats.Jobs.Queued != 2 {
		t.Errorf("stats queued = %d, want 2", stats.Jobs.Queued)
	}

	for _, id := range ids {
		do(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil, nil)
	}
}

// TestJobPerSessionLimit429 pins the session fairness cap.
func TestJobPerSessionLimit429(t *testing.T) {
	ts := newTestServer(t, Config{JobWorkers: 1, JobsPerSession: 1})
	createContSession(t, ts, "g")

	var first JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "g", Kind: "howto", Method: "brute", Query: slowHowTo,
	}, &first); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	var errBody struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Query: germanCount}, &errBody)
	if code != http.StatusTooManyRequests || errBody.Code != "session_limit" {
		t.Fatalf("status %d body %+v, want 429/session_limit", code, errBody)
	}
	do(t, "DELETE", ts.URL+"/v1/jobs/"+first.ID, nil, nil)
}

// TestJobDeadlineExpires submits a heavy job with a tiny timeout and
// expects the expired state.
func TestJobDeadlineExpires(t *testing.T) {
	ts := newTestServer(t, Config{})
	createContSession(t, ts, "g")
	var job JobInfo
	if code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "g", Kind: "howto", Method: "brute", Query: slowHowTo, TimeoutMs: 50,
	}, &job); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if job.DeadlineAt == nil {
		t.Fatal("deadline not recorded")
	}
	final := pollJob(t, ts, job.ID, 30*time.Second, terminal)
	if final.State != "expired" {
		t.Fatalf("state = %q, want expired", final.State)
	}
}

// TestJobKinds exercises the whatif, explain and batch job kinds.
func TestJobKinds(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	var wj JobInfo
	do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Query: germanCount}, &wj)
	final := pollJob(t, ts, wj.ID, 30*time.Second, terminal)
	if final.State != "done" || final.Kind != "whatif" {
		t.Fatalf("whatif job: %+v", final)
	}
	res := final.Result.(map[string]any)
	if v, _ := res["value"].(float64); v <= 0 {
		t.Errorf("whatif job value = %v", res["value"])
	}

	var ej JobInfo
	do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Kind: "explain", Query: germanCount}, &ej)
	final = pollJob(t, ts, ej.ID, 30*time.Second, terminal)
	if final.State != "done" {
		t.Fatalf("explain job: %+v", final)
	}
	if plan, _ := final.Result.(map[string]any)["plan"].(string); plan == "" {
		t.Error("explain job returned empty plan")
	}

	var bj JobInfo
	do(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Session: "g", Kind: "batch",
		Queries: []BatchQuery{{Query: germanCount}, {Query: `not hyperql`}},
	}, &bj)
	final = pollJob(t, ts, bj.ID, 30*time.Second, terminal)
	if final.State != "done" {
		t.Fatalf("batch job: %+v", final)
	}
	bres := final.Result.(map[string]any)
	if errs, _ := bres["errors"].(float64); errs != 1 {
		t.Errorf("batch job errors = %v, want 1 (bad element)", bres["errors"])
	}
	if final.Progress.Stage != "queries" || final.Progress.Done != 2 {
		t.Errorf("batch progress = %+v, want queries 2/2", final.Progress)
	}
}

// TestDeleteSessionCancelsJobs pins that dropping a session cancels its
// live jobs.
func TestDeleteSessionCancelsJobs(t *testing.T) {
	ts := newTestServer(t, Config{JobWorkers: 1})
	createContSession(t, ts, "g")
	var job JobInfo
	do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Kind: "howto", Method: "brute", Query: slowHowTo}, &job)
	pollJob(t, ts, job.ID, 30*time.Second, func(i JobInfo) bool { return i.State == "running" })

	var del map[string]any
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/g", nil, &del); code != http.StatusOK {
		t.Fatalf("delete session: status %d", code)
	}
	if n, _ := del["jobs_cancelled"].(float64); n != 1 {
		t.Errorf("jobs_cancelled = %v, want 1", del["jobs_cancelled"])
	}
	final := pollJob(t, ts, job.ID, 10*time.Second, terminal)
	if final.State != "cancelled" {
		t.Errorf("job state after session delete = %q, want cancelled", final.State)
	}
}

// TestServerDrain pins the graceful-shutdown contract at the server layer:
// draining stops admission, cancels queued jobs, and waits for running ones.
func TestServerDrain(t *testing.T) {
	srv := New(Config{JobWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	createContSession(t, ts, "g")

	// A long brute job that will be running, plus one queued behind it.
	var running, queued JobInfo
	do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Kind: "howto", Method: "brute", Query: slowHowTo}, &running)
	pollJob(t, ts, running.ID, 30*time.Second, func(i JobInfo) bool { return i.State == "running" })
	do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Query: germanCount}, &queued)

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = srv.Drain(drainCtx) // deadline forces cancellation of the running brute job

	var final JobInfo
	do(t, "GET", ts.URL+"/v1/jobs/"+queued.ID, nil, &final)
	if final.State != "cancelled" {
		t.Errorf("queued job state = %q, want cancelled", final.State)
	}
	do(t, "GET", ts.URL+"/v1/jobs/"+running.ID, nil, &final)
	if final.State != "cancelled" {
		t.Errorf("running job state = %q, want cancelled after forced drain", final.State)
	}

	// Post-drain submissions get 503 with the draining code.
	var errBody struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	code := do(t, "POST", ts.URL+"/v1/jobs", JobRequest{Session: "g", Query: germanCount}, &errBody)
	if code != http.StatusServiceUnavailable || errBody.Code != "draining" {
		t.Errorf("post-drain submit: status %d body %+v, want 503/draining", code, errBody)
	}
	// Other endpoints keep serving (clients poll final states during drain).
	if code := do(t, "GET", ts.URL+"/v1/jobs/"+running.ID, nil, nil); code != http.StatusOK {
		t.Errorf("post-drain poll: status %d", code)
	}
}
