package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPanicRecovery: a panicking handler must answer a JSON 500 (code
// "panic"), bump hyper_server_panics_total, log the stack, and leave the
// server able to serve the next request.
func TestPanicRecovery(t *testing.T) {
	var logs []string
	s := New(Config{Logf: func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}})
	h := s.instrument("whatif", func(r *http.Request) (any, error) {
		panic("boom")
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/whatif", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response is not JSON: %q", rec.Body.String())
	}
	if body["code"] != "panic" || body["error"] != "internal server error" {
		t.Fatalf("panic body = %v", body)
	}
	if got := s.panics.Value(); got != 1 {
		t.Fatalf("hyper_server_panics_total = %d, want 1", got)
	}
	stackLogged := false
	for _, l := range logs {
		if strings.Contains(l, "panic in /v1/whatif handler") {
			stackLogged = true
		}
	}
	if !stackLogged {
		t.Fatalf("panic stack was not logged: %q", logs)
	}

	// The server keeps serving after a recovered panic.
	ok := s.instrument("whatif", func(r *http.Request) (any, error) {
		return map[string]int{"fine": 1}, nil
	})
	rec = httptest.NewRecorder()
	ok.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/whatif", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic request: status %d, want 200", rec.Code)
	}
}

// TestPanicRecoveryPassesAbortHandler: http.ErrAbortHandler is the net/http
// sentinel for deliberately severed connections and must keep propagating.
func TestPanicRecoveryPassesAbortHandler(t *testing.T) {
	s := New(Config{})
	h := s.instrument("stats", func(r *http.Request) (any, error) {
		panic(http.ErrAbortHandler)
	})
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", p)
		}
		if got := s.panics.Value(); got != 0 {
			t.Fatalf("abort sentinel counted as a panic: %d", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/stats", nil))
}
