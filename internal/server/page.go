package server

import (
	"net/http"
	"strconv"
)

// pageParams is the wire pagination contract shared by the list endpoints
// (GET /v1/sessions, /v1/jobs, /v1/usage): ?limit= caps the page size,
// ?after= resumes after an opaque cursor, and each paginated response
// reports the next cursor when more rows remain. Cursors are positions in a
// stable sort order (session name, numeric job id, usage composite key), so
// concurrent mutation can never repeat or skip a surviving row.
type pageParams struct {
	limit int    // 0 = unlimited
	after string // "" = from the start
}

func (p pageParams) active() bool { return p.limit > 0 || p.after != "" }

// parsePage extracts ?limit= and ?after=. A malformed limit is a 400 with
// code bad_request; cursor validation is endpoint-specific (the cursor
// grammar differs per sort key) and errors with code bad_cursor.
func parsePage(r *http.Request) (pageParams, error) {
	q := r.URL.Query()
	var p pageParams
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, errf(http.StatusBadRequest, "limit must be a non-negative integer, got %q", v)
		}
		p.limit = n
	}
	p.after = q.Get("after")
	return p, nil
}

// errBadCursor is the shared malformed-cursor error shape.
func errBadCursor(format string, args ...any) error {
	return errcf(http.StatusBadRequest, "bad_cursor", format, args...)
}

// paginate slices items (already sorted ascending by key) to the page after
// the cursor, returning the page and the next cursor ("" when the listing
// is exhausted).
func paginate[T any](items []T, key func(T) string, p pageParams) ([]T, string) {
	start := 0
	if p.after != "" {
		for start < len(items) && key(items[start]) <= p.after {
			start++
		}
	}
	items = items[start:]
	if p.limit > 0 && len(items) > p.limit {
		return items[:p.limit], key(items[p.limit-1])
	}
	return items, ""
}
