package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestErrorStatusTable drives every /v1/* endpoint through its error paths
// and pins the status mapping: unknown session/job/dataset resources are
// 404 (or 400 where the name arrives in the body of a creation request),
// malformed HyperQL and malformed request bodies are 400 — never 500 — and
// every error body carries a non-empty "error" field.
func TestErrorStatusTable(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	const badQL = `USE German UPDATE(`
	cases := []struct {
		name   string
		method string
		path   string
		body   string // raw JSON; "" means no body
		want   int
	}{
		// Unknown resources -> 404.
		{"whatif unknown session", "POST", "/v1/whatif", `{"session":"nope","query":"x"}`, 404},
		{"howto unknown session", "POST", "/v1/howto", `{"session":"nope","query":"x"}`, 404},
		{"explain unknown session", "POST", "/v1/explain", `{"session":"nope","query":"x"}`, 404},
		{"batch unknown session", "POST", "/v1/batch", `{"session":"nope","queries":[{"query":"x"}]}`, 404},
		{"jobs unknown session", "POST", "/v1/jobs", `{"session":"nope","query":"x"}`, 404},
		{"delete unknown session", "DELETE", "/v1/sessions/nope", "", 404},
		{"get unknown job", "GET", "/v1/jobs/nope", "", 404},
		{"cancel unknown job", "DELETE", "/v1/jobs/nope", "", 404},

		// Malformed HyperQL -> 400.
		{"whatif bad query", "POST", "/v1/whatif", `{"session":"g","query":"` + badQL + `"}`, 400},
		{"howto bad query", "POST", "/v1/howto", `{"session":"g","query":"` + badQL + `"}`, 400},
		{"explain bad query", "POST", "/v1/explain", `{"session":"g","query":"` + badQL + `"}`, 400},
		{"jobs bad query", "POST", "/v1/jobs", `{"session":"g","query":"` + badQL + `"}`, 400},
		{"jobs bad howto query", "POST", "/v1/jobs", `{"session":"g","kind":"howto","query":"` + badQL + `"}`, 400},
		// Kind/query mismatches are rejected at submission, not queued.
		{"jobs howto query as whatif", "POST", "/v1/jobs", `{"session":"g","kind":"whatif","query":"USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)"}`, 400},
		{"jobs whatif query as howto", "POST", "/v1/jobs", `{"session":"g","kind":"howto","query":"USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)"}`, 400},

		// Semantically invalid requests -> 400.
		{"howto bad method", "POST", "/v1/howto", `{"session":"g","query":"x","method":"annealing"}`, 400},
		{"jobs bad method", "POST", "/v1/jobs", `{"session":"g","kind":"howto","query":"USE German HOWTOUPDATE Status TOMAXIMIZE COUNT(Credit = 1)","method":"annealing"}`, 400},
		{"jobs bad kind", "POST", "/v1/jobs", `{"session":"g","kind":"teleport","query":"x"}`, 400},
		{"jobs empty batch", "POST", "/v1/jobs", `{"session":"g","kind":"batch"}`, 400},
		{"jobs bad state filter", "GET", "/v1/jobs?state=bogus", "", 400},
		{"batch empty", "POST", "/v1/batch", `{"session":"g","queries":[]}`, 400},
		{"session missing name", "POST", "/v1/sessions", `{"dataset":"german"}`, 400},
		{"session unknown dataset", "POST", "/v1/sessions", `{"name":"x","dataset":"nope"}`, 400},
		{"session no source", "POST", "/v1/sessions", `{"name":"x"}`, 400},
		{"session both sources", "POST", "/v1/sessions", `{"name":"x","dataset":"german","csv":{"tables":[]}}`, 400},
		{"session bad mode", "POST", "/v1/sessions", `{"name":"x","dataset":"german","options":{"mode":"psychic"}}`, 400},

		// Malformed JSON bodies -> 400 on every POST endpoint.
		{"whatif bad body", "POST", "/v1/whatif", `{"nope`, 400},
		{"howto bad body", "POST", "/v1/howto", `{"nope`, 400},
		{"explain bad body", "POST", "/v1/explain", `{"nope`, 400},
		{"batch bad body", "POST", "/v1/batch", `{"nope`, 400},
		{"jobs bad body", "POST", "/v1/jobs", `{"nope`, 400},
		{"sessions bad body", "POST", "/v1/sessions", `{"nope`, 400},
		{"sessions unknown field", "POST", "/v1/sessions", `{"surprise":1}`, 400},

		// Healthy GET endpoints stay 200 for contrast.
		{"datasets ok", "GET", "/v1/datasets", "", 200},
		{"sessions ok", "GET", "/v1/sessions", "", 200},
		{"jobs list ok", "GET", "/v1/jobs", "", 200},
		{"stats ok", "GET", "/v1/stats", "", 200},
		{"healthz ok", "GET", "/healthz", "", 200},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = bytes.NewReader([]byte(tc.body))
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.want, raw)
			}
			if tc.want >= 400 {
				if !looksLikeJSON(raw) {
					t.Fatalf("error body %q is not JSON", raw)
				}
				var body ErrorResponse
				if err := json.Unmarshal(raw, &body); err != nil || body.Error == "" {
					t.Errorf("error body %q is not structured JSON with an error field", raw)
				}
				if body.Code == "" {
					t.Errorf("error body %q has no machine-readable code", raw)
				}
				if strings.Contains(string(raw), "goroutine") {
					t.Errorf("error body leaks internals: %q", raw)
				}
			}
		})
	}
}

// TestErrorEnvelopeTable pins the full envelope — code and retryable, not
// just status — across the resource-oriented surface, including the two
// error pages net/http writes itself (unrouted path, wrong method), which
// envelopeErrors must convert to the same JSON shape.
func TestErrorEnvelopeTable(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")

	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		want      int
		code      string
		retryable bool
	}{
		{"mux unrouted path", "GET", "/v2/nope", "", 404, "not_found", false},
		{"mux wrong method", "DELETE", "/v1/whatif", "", 405, "method_not_allowed", false},
		{"get unknown session", "GET", "/v1/sessions/nope", "", 404, "not_found", false},
		{"scoped whatif unknown session", "POST", "/v1/sessions/nope/whatif", `{"query":"x"}`, 404, "not_found", false},
		{"session mismatch", "POST", "/v1/sessions/g/whatif", `{"session":"other","query":"x"}`, 400, "session_mismatch", false},
		{"unknown snapshot", "POST", "/v1/sessions/g/whatif", `{"query":"` + germanCount + `","snapshot":99}`, 404, "snapshot_not_found", false},
		{"unknown delta_vs", "POST", "/v1/sessions/g/whatif", `{"query":"` + germanCount + `","delta_vs":99}`, 404, "snapshot_not_found", false},
		{"delta_vs on explain", "POST", "/v1/sessions/g/explain", `{"query":"` + germanCount + `","delta_vs":1}`, 400, "bad_request", false},
		{"append unknown session", "POST", "/v1/sessions/nope/rows", `{"tables":[{"name":"T","data":"A\n1\n"}]}`, 404, "not_found", false},
		{"append no tables", "POST", "/v1/sessions/g/rows", `{}`, 400, "bad_request", false},
		{"append unknown relation", "POST", "/v1/sessions/g/rows", `{"tables":[{"name":"Nope","data":"A\n1\n"}]}`, 400, "bad_request", false},
		{"snapshots unknown session", "GET", "/v1/sessions/nope/snapshots", "", 404, "not_found", false},
		{"duplicate session name", "POST", "/v1/sessions", `{"name":"g","dataset":"german"}`, 409, "conflict", false},
		{"bad limit", "GET", "/v1/sessions?limit=abc", "", 400, "bad_request", false},
		{"negative limit", "GET", "/v1/jobs?limit=-1", "", 400, "bad_request", false},
		{"bad job cursor", "GET", "/v1/jobs?limit=2&after=bogus", "", 400, "bad_cursor", false},
		{"bad usage cursor", "GET", "/v1/usage?limit=2&after=%21%21", "", 400, "bad_cursor", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = bytes.NewReader([]byte(tc.body))
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.want, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if !looksLikeJSON(raw) {
				t.Fatalf("error body %q is not JSON", raw)
			}
			var body ErrorResponse
			if err := json.Unmarshal(raw, &body); err != nil {
				t.Fatalf("error body %q does not decode as the envelope: %v", raw, err)
			}
			if body.Error == "" || body.Code != tc.code || body.Retryable != tc.retryable {
				t.Errorf("envelope = %+v, want code %q retryable %v", body, tc.code, tc.retryable)
			}
		})
	}

	// Admission pressure is the one retryable client error on this surface.
	small := newTestServer(t, Config{MaxSessions: 1})
	createSession(t, small, "only")
	var envelope ErrorResponse
	if code := do(t, "POST", small.URL+"/v1/sessions", CreateSessionRequest{Name: "more", Dataset: "german", Scale: 0.1}, &envelope); code != http.StatusTooManyRequests {
		t.Fatalf("session over limit: status %d", code)
	}
	if envelope.Code != "session_limit" || !envelope.Retryable {
		t.Fatalf("session-limit envelope = %+v, want retryable session_limit", envelope)
	}
}

// TestDeprecatedAliases: the body-addressed query routes survive as thin
// aliases of the session-scoped resources and say so in their headers.
func TestDeprecatedAliases(t *testing.T) {
	ts := newTestServer(t, Config{})
	createSession(t, ts, "g")
	for _, kind := range []string{"whatif", "howto", "explain", "batch"} {
		body := `{"session":"g","query":"x"}`
		if kind == "batch" {
			body = `{"session":"g","queries":[{"query":"x"}]}`
		}
		resp, err := http.Post(ts.URL+"/v1/"+kind, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("POST /v1/%s: no Deprecation header", kind)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/sessions/{name}/"+kind) {
			t.Errorf("POST /v1/%s: Link = %q, want successor-version pointer", kind, link)
		}
		// The successor route must NOT be marked deprecated.
		succ, err := http.Post(ts.URL+"/v1/sessions/g/"+kind, "application/json", strings.NewReader(`{"query":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, succ.Body)
		succ.Body.Close()
		if succ.Header.Get("Deprecation") != "" {
			t.Errorf("POST /v1/sessions/g/%s: unexpectedly deprecated", kind)
		}
	}
}
