package experiments

import (
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/howto"
)

const fig12HowToQuery = `
USE German
HOWTOUPDATE Status, Savings, Housing, CreditAmount
TOMAXIMIZE COUNT(Credit = 1)`

// Fig12 reproduces Figure 12: running time versus dataset size on
// German-Syn, averaged over five what-if queries (a) and for the how-to
// query above (b). The paper's shape: HypeR and Indep grow linearly;
// HypeR-sampled flattens once the size passes the 100k sample cap;
// Opt-HowTo is orders of magnitude slower than the IP-based how-to.
func Fig12(cfg Config) error {
	cfg = cfg.defaults()
	sizes := []int{cfg.n(10000), cfg.n(100000), cfg.n(250000), cfg.n(500000), cfg.n(1000000)}

	whatIfQueries := []string{
		`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Savings) = 0 OUTPUT COUNT(Credit = 1)`,
		`USE German UPDATE(Housing) = 2 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 1`,
		`USE German UPDATE(CreditAmount) = 3 OUTPUT AVG(POST(Credit))`,
		`USE German UPDATE(Status) = 2 OUTPUT COUNT(*) FOR POST(Credit) = 1`,
	}

	cfg.printf("Figure 12a: what-if runtime vs dataset size (avg over %d queries)\n", len(whatIfQueries))
	cfg.printf("%-10s %12s %14s %12s\n", "Rows", "HypeR", "HypeR-sampled", "Indep")
	for _, size := range sizes {
		g := dataset.GermanSyn(size, cfg.Seed)
		var tFull, tSampled, tIndep time.Duration
		for qi, src := range whatIfQueries {
			q := mustParseWhatIf(src)
			seed := cfg.Seed + int64(qi)
			// The HypeR arms force the paper's forest estimator so training
			// cost scales with the x axis (and HypeR-sampled flattens past
			// its 100k cap); Indep keeps the default estimator.
			_, t1, err := timeEval(g.DB, g.Model, q,
				engine.Options{Mode: engine.ModeFull, Seed: seed, Estimator: engine.EstimatorForest})
			if err != nil {
				return err
			}
			_, t2, err := timeEval(g.DB, g.Model, q,
				engine.Options{Mode: engine.ModeFull, Seed: seed, SampleSize: 100000, Estimator: engine.EstimatorForest})
			if err != nil {
				return err
			}
			_, t3, err := timeEval(g.DB, g.Model, q, engine.Options{Mode: engine.ModeIndep, Seed: seed})
			if err != nil {
				return err
			}
			tFull += t1
			tSampled += t2
			tIndep += t3
		}
		k := time.Duration(len(whatIfQueries))
		cfg.printf("%-10d %12s %14s %12s\n", size,
			(tFull / k).Round(time.Millisecond), (tSampled / k).Round(time.Millisecond), (tIndep / k).Round(time.Millisecond))
	}

	cfg.printf("\nFigure 12b: how-to runtime vs dataset size\n")
	cfg.printf("%-10s %12s %14s %14s\n", "Rows", "HypeR", "HypeR-sampled", "Opt-HowTo")
	q := mustParseHowTo(fig12HowToQuery)
	for _, size := range sizes {
		g := dataset.GermanSyn(size, cfg.Seed)

		start := time.Now()
		if _, err := howto.Evaluate(g.DB, g.Model, q, howto.Options{Engine: engine.Options{Seed: cfg.Seed}}); err != nil {
			return err
		}
		tIP := time.Since(start)

		start = time.Now()
		if _, err := howto.Evaluate(g.DB, g.Model, q, howto.Options{
			Engine: engine.Options{Seed: cfg.Seed, SampleSize: 100000}}); err != nil {
			return err
		}
		tSampled := time.Since(start)

		bf := "skipped (exp.)"
		if size <= cfg.n(100000) {
			start = time.Now()
			if _, err := howto.BruteForce(g.DB, g.Model, q, howto.Options{Engine: engine.Options{Seed: cfg.Seed}}); err != nil {
				return err
			}
			bf = time.Since(start).Round(time.Millisecond).String()
		}
		cfg.printf("%-10d %12s %14s %14s\n", size,
			tIP.Round(time.Millisecond), tSampled.Round(time.Millisecond), bf)
	}
	return nil
}
