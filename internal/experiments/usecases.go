package experiments

import (
	"sort"

	"hyper/internal/dataset"
	"hyper/internal/engine"
)

// UseCases reproduces the real-world what-if case studies of Section 5.3
// (query templates of Figure 7): German credit drivers, the Adult
// marital-status effect on income, and Amazon price effects on ratings.
func UseCases(cfg Config) error {
	cfg = cfg.defaults()
	if err := germanUseCase(cfg); err != nil {
		return err
	}
	if err := adultUseCase(cfg); err != nil {
		return err
	}
	return amazonUseCase(cfg)
}

func germanUseCase(cfg Config) error {
	g := dataset.GermanLike(cfg.n(1000), cfg.Seed)
	n := float64(g.Rel().Len())
	run := func(src string) (float64, error) {
		res, _, err := timeEval(g.DB, g.Model, mustParseWhatIf(src), engine.Options{Seed: cfg.Seed})
		if err != nil {
			return 0, err
		}
		return res.Value / n, nil
	}
	cfg.printf("Use case (German, Figure 7a): fraction with good credit after update\n")
	for _, c := range []struct{ label, src string }{
		{"Status = max", `USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`},
		{"Status = min", `USE German UPDATE(Status) = 0 OUTPUT COUNT(Credit = 1)`},
		{"CreditHistory = max", `USE German UPDATE(CreditHistory) = 4 OUTPUT COUNT(Credit = 1)`},
		{"CreditHistory = min", `USE German UPDATE(CreditHistory) = 0 OUTPUT COUNT(Credit = 1)`},
		{"Housing = max", `USE German UPDATE(Housing) = 2 OUTPUT COUNT(Credit = 1)`},
		{"Investment = max", `USE German UPDATE(Investment) = 3 OUTPUT COUNT(Credit = 1)`},
		{"Status+CreditHistory = max", `USE German UPDATE(Status) = 3 AND UPDATE(CreditHistory) = 4 OUTPUT COUNT(Credit = 1)`},
	} {
		v, err := run(c.src)
		if err != nil {
			return err
		}
		cfg.printf("  %-28s %6.1f%%\n", c.label, 100*v)
	}
	base := fracGood(g.Rel(), "Credit", 1)
	cfg.printf("  %-28s %6.1f%%\n", "(no update)", 100*base)
	return nil
}

func adultUseCase(cfg Config) error {
	a := dataset.AdultSyn(cfg.n(32000), cfg.Seed+1)
	n := float64(a.Rel().Len())
	cfg.printf("\nUse case (Adult, Figure 7b): fraction with income > 50K after update\n")
	for _, c := range []struct {
		label string
		src   string
	}{
		{"everyone married", `USE Adult UPDATE(MaritalStatus) = 1 OUTPUT COUNT(*) FOR POST(Income) = 1`},
		{"everyone never-married", `USE Adult UPDATE(MaritalStatus) = 0 OUTPUT COUNT(*) FOR POST(Income) = 1`},
		{"everyone divorced", `USE Adult UPDATE(MaritalStatus) = 2 OUTPUT COUNT(*) FOR POST(Income) = 1`},
	} {
		res, _, err := timeEval(a.DB, a.Model, mustParseWhatIf(c.src), engine.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		cfg.printf("  %-28s %6.1f%%\n", c.label, 100*res.Value/n)
	}
	cfg.printf("  %-28s %6.1f%%\n", "(no update)", 100*fracGood(a.Rel(), "Income", 1))
	return nil
}

func amazonUseCase(cfg Config) error {
	am := dataset.AmazonSyn(cfg.n(3000), 18, cfg.Seed+2)
	cfg.printf("\nUse case (Amazon): price updates vs product ratings\n")

	// Fraction of products with average rating >= 4 as all prices move up or
	// down proportionally (the paper's 80th/60th/40th-percentile sweep:
	// cheaper products earn better ratings).
	for _, c := range []struct {
		label string
		f     float64
	}{
		{"prices raised 20%", 1.2},
		{"prices unchanged", 1.0},
		{"prices reduced 20%", 0.8},
		{"prices reduced 40%", 0.6},
	} {
		src := `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)
UPDATE(Price) = ` + fmtFloat(c.f) + ` * PRE(Price)
OUTPUT COUNT(POST(Rtng) >= 4)`
		res, _, err := timeEval(am.DB, am.Model, mustParseWhatIf(src), engine.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		_, gtFrac := am.CounterfactualAvgRating(nil, func(p float64) float64 { return c.f * p })
		cfg.printf("  %-24s HypeR frac(avg rating>=4) = %5.1f%%   ground truth (reviews>=4) = %5.1f%%\n",
			c.label, 100*res.Value/float64(res.ViewRows), 100*gtFrac)
	}

	// Per-brand rating lift from a 20% price cut, ranked.
	type lift struct {
		brand string
		delta float64
	}
	var lifts []lift
	for _, brand := range []string{"Apple", "Dell", "Toshiba", "Acer", "Asus"} {
		src := `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)
WHEN Brand = '` + brand + `'
UPDATE(Price) = 0.8 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Brand) = '` + brand + `'`
		res, _, err := timeEval(am.DB, am.Model, mustParseWhatIf(src), engine.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		baseSrc := `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)
WHEN Brand = '` + brand + `'
UPDATE(Price) = 1 * PRE(Price)
OUTPUT AVG(POST(Rtng))
FOR PRE(Brand) = '` + brand + `'`
		baseRes, _, err := timeEval(am.DB, am.Model, mustParseWhatIf(baseSrc), engine.Options{Seed: cfg.Seed})
		if err != nil {
			return err
		}
		lifts = append(lifts, lift{brand, res.Value - baseRes.Value})
	}
	sort.Slice(lifts, func(i, j int) bool { return lifts[i].delta > lifts[j].delta })
	cfg.printf("  rating lift from a 20%% price cut, by brand:\n")
	for _, l := range lifts {
		cfg.printf("    %-10s %+.3f\n", l.brand, l.delta)
	}
	return nil
}

func fmtFloat(f float64) string {
	// Two decimals are plenty for price constants in generated queries.
	i := int(f * 100)
	return fmtIntPart(i/100) + "." + fmtIntPart2(i%100)
}

func fmtIntPart2(n int) string {
	if n < 10 {
		return "0" + fmtIntPart(n)
	}
	return fmtIntPart(n)
}
