package experiments

import (
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/stats"
)

// Fig6 reproduces Figure 6: the effect of the HypeR-sampled training-sample
// size on (a) query-output quality (mean and standard deviation across
// seeds, against the full-data HypeR value) and (b) running time, on
// German-Syn (1M).
func Fig6(cfg Config) error {
	cfg = cfg.defaults()
	g := dataset.GermanSyn(cfg.n(1000000), cfg.Seed)
	n := float64(g.Rel().Len())
	q := mustParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)

	full, _, err := timeEval(g.DB, g.Model, q, engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	cfg.printf("Figure 6a: HypeR-sampled output vs sample size (HypeR full = %.4f)\n", full.Value/n)
	cfg.printf("%-12s %10s %10s %10s\n", "SampleSize", "mean", "stddev", "|err|")
	for _, size := range []int{1000, 50000, 100000, 200000} {
		if size > g.Rel().Len() {
			continue
		}
		var s stats.Summary
		for seed := int64(0); seed < 5; seed++ {
			res, _, err := timeEval(g.DB, g.Model, q,
				engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed + seed*101, SampleSize: size})
			if err != nil {
				return err
			}
			s.Add(res.Value / n)
		}
		cfg.printf("%-12d %10.4f %10.4f %10.4f\n", size, s.Mean(), s.StdDev(), abs(s.Mean()-full.Value/n))
	}

	cfg.printf("\nFigure 6b: running time vs sample size\n")
	cfg.printf("%-12s %12s %12s\n", "SampleSize", "HypeR", "HypeR-sampled")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		size := int(frac * float64(g.Rel().Len()))
		if size < 1000 {
			continue
		}
		// The figure's shape depends on regressor-training cost dominating,
		// so this experiment forces the paper's random-forest estimator
		// (the exact-frequency index would make training nearly free).
		// HypeR "at this sample size" trains on exactly size rows (the
		// figure's x axis); HypeR-sampled caps at 100k.
		_, tFull, err := timeEval(g.DB, g.Model, q,
			engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed, SampleSize: size, Estimator: engine.EstimatorForest})
		if err != nil {
			return err
		}
		cap100 := 100000
		if cap100 > size {
			cap100 = size
		}
		_, tSampled, err := timeEval(g.DB, g.Model, q,
			engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed, SampleSize: cap100, Estimator: engine.EstimatorForest})
		if err != nil {
			return err
		}
		cfg.printf("%-12d %12s %12s\n", size, tFull.Round(time.Millisecond), tSampled.Round(time.Millisecond))
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
