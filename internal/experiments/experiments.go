// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records how the measured shapes compare to
// the published ones. The cmd/hyperbench binary and the repository-root
// benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"hyper/internal/causal"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

// Config controls experiment scale and output.
type Config struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full size; the
	// benchmarks use smaller scales to stay interactive).
	Scale float64
	// Seed drives data generation and estimation.
	Seed int64
	// W receives the formatted experiment output.
	W io.Writer
}

func (c Config) defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.W == nil {
		c.W = io.Discard
	}
	return c
}

// n scales a paper dataset size, with a floor to keep estimates meaningful.
func (c Config) n(paper int) int {
	n := int(float64(paper) * c.Scale)
	if n < 500 {
		n = 500
	}
	return n
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.W, format, args...)
}

// mustParseWhatIf parses a query template, panicking on programmer error
// (all experiment queries are static).
func mustParseWhatIf(src string) *hyperql.WhatIf {
	q, err := hyperql.ParseWhatIf(src)
	if err != nil {
		panic(err)
	}
	return q
}

func mustParseHowTo(src string) *hyperql.HowTo {
	q, err := hyperql.ParseHowTo(src)
	if err != nil {
		panic(err)
	}
	return q
}

// timeEval evaluates a what-if query and returns (result, wall time).
func timeEval(db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts engine.Options) (*engine.Result, time.Duration, error) {
	start := time.Now()
	res, err := engine.Evaluate(db, model, q, opts)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start), nil
}

// fracGood returns the fraction of rows of rel satisfying col == val.
func fracGood(rel *relation.Relation, col string, val int64) float64 {
	ci := rel.Schema().MustIndex(col)
	n := 0
	for _, row := range rel.Rows() {
		if row[ci].AsInt() == val {
			n++
		}
	}
	return float64(n) / float64(rel.Len())
}
