package experiments

import (
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/prcm"
)

// Ablations quantifies the design choices DESIGN.md calls out, beyond what
// the paper measures directly:
//
//  1. Block-independent decomposition must not change any result
//     (Proposition 1) — we report the value delta (must be 0) and the time
//     with and without.
//  2. Estimator choice: the exact frequency index vs the boosted forest vs
//     the linear model, by ground-truth error and time, on the same query.
//  3. Estimator-cache reuse across how-to candidates: first vs second
//     evaluation time of an identical-structure query.
func Ablations(cfg Config) error {
	cfg = cfg.defaults()
	g := dataset.GermanSyn(cfg.n(100000), cfg.Seed)
	n := float64(g.Rel().Len())
	q := mustParseWhatIf(`USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1)`)
	post := g.World.Counterfactual(prcm.Intervention{Attr: "Status", Fn: func(float64) float64 { return 3 }})
	truth := fracGood(post, "Credit", 1)

	// 1. Blocks on/off.
	withB, tWith, err := timeEval(g.DB, g.Model, q, engine.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	withoutB, tWithout, err := timeEval(g.DB, g.Model, q, engine.Options{Seed: cfg.Seed, DisableBlocks: true})
	if err != nil {
		return err
	}
	cfg.printf("Ablation 1: block-independent decomposition (Proposition 1)\n")
	cfg.printf("  with blocks:    value=%.4f  time=%s  (%d blocks)\n", withB.Value/n, tWith.Round(time.Millisecond), withB.Blocks)
	cfg.printf("  without blocks: value=%.4f  time=%s\n", withoutB.Value/n, tWithout.Round(time.Millisecond))
	cfg.printf("  value delta: %g (must be 0)\n", withB.Value-withoutB.Value)

	// 2. Estimators.
	cfg.printf("\nAblation 2: estimator choice (truth = %.4f)\n", truth)
	cfg.printf("  %-8s %12s %12s\n", "kind", "|err|", "time")
	for _, e := range []struct {
		name string
		kind engine.EstimatorKind
	}{
		{"freq", engine.EstimatorFreq},
		{"forest", engine.EstimatorForest},
		{"linear", engine.EstimatorLinear},
	} {
		res, tm, err := timeEval(g.DB, g.Model, q, engine.Options{Seed: cfg.Seed, Estimator: e.kind})
		if err != nil {
			return err
		}
		cfg.printf("  %-8s %12.4f %12s\n", e.name, abs(res.Value/n-truth), tm.Round(time.Millisecond))
	}

	// 3. Cache reuse.
	cache := engine.NewCache()
	q1 := mustParseWhatIf(`USE German UPDATE(Status) = 1 OUTPUT COUNT(Credit = 1)`)
	q2 := mustParseWhatIf(`USE German UPDATE(Status) = 2 OUTPUT COUNT(Credit = 1)`)
	_, tCold, err := timeEval(g.DB, g.Model, q1, engine.Options{Seed: cfg.Seed, Cache: cache, Estimator: engine.EstimatorForest})
	if err != nil {
		return err
	}
	_, tWarm, err := timeEval(g.DB, g.Model, q2, engine.Options{Seed: cfg.Seed, Cache: cache, Estimator: engine.EstimatorForest})
	if err != nil {
		return err
	}
	cfg.printf("\nAblation 3: cross-candidate cache (forest estimator)\n")
	cfg.printf("  cold (train): %s\n  warm (reuse): %s\n", tCold.Round(time.Millisecond), tWarm.Round(time.Millisecond))
	return nil
}
