package experiments

import (
	"hyper/internal/causal"
	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/relation"
)

// Fig8 reproduces Figure 8: for the German and Adult datasets, each listed
// attribute is hypothetically set to its domain minimum and maximum and the
// query output (fraction of good-credit / high-income individuals) is
// reported; a larger min-max gap denotes higher attribute importance. The
// paper's shape: Status and CreditHistory dominate on German; MaritalStatus,
// Occupation and Education dominate on Adult while Workclass is weak.
func Fig8(cfg Config) error {
	cfg = cfg.defaults()

	german := dataset.GermanLike(cfg.n(1000), cfg.Seed)
	cfg.printf("Figure 8a: German — query output when each attribute is set to min/max\n")
	cfg.printf("%-15s %10s %10s %10s\n", "Attribute", "min", "max", "gap")
	gAttrs := []struct {
		name     string
		min, max int
	}{
		{"Status", 0, 3}, {"CreditHistory", 0, 4}, {"Housing", 0, 2}, {"Investment", 0, 3},
	}
	for _, a := range gAttrs {
		lo, hi, err := minMaxOutput(german.DB, german.Model, "German", a.name, a.min, a.max, "Credit", cfg.Seed)
		if err != nil {
			return err
		}
		cfg.printf("%-15s %10.3f %10.3f %10.3f\n", a.name, lo, hi, hi-lo)
	}

	adult := dataset.AdultSyn(cfg.n(32000), cfg.Seed+1)
	cfg.printf("\nFigure 8b: Adult — query output when each attribute is set to min/max\n")
	cfg.printf("%-15s %10s %10s %10s\n", "Attribute", "min", "max", "gap")
	aAttrs := []struct {
		name     string
		min, max int
	}{
		{"MaritalStatus", 0, 1}, {"Occupation", 0, 5}, {"Education", 0, 4}, {"Workclass", 0, 3},
	}
	for _, a := range aAttrs {
		lo, hi, err := minMaxOutput(adult.DB, adult.Model, "Adult", a.name, a.min, a.max, "Income", cfg.Seed)
		if err != nil {
			return err
		}
		cfg.printf("%-15s %10.3f %10.3f %10.3f\n", a.name, lo, hi, hi-lo)
	}
	return nil
}

// minMaxOutput runs the Figure 7 template: fraction of individuals with a
// positive outcome when attr is hypothetically set to minV / maxV.
func minMaxOutput(db *relation.Database, model *causal.Model, table, attr string, minV, maxV int, outcome string, seed int64) (lo, hi float64, err error) {
	run := func(v int) (float64, error) {
		q := mustParseWhatIf("USE " + table + " UPDATE(" + attr + ") = " + fmtIntPart(v) +
			" OUTPUT COUNT(" + outcome + " = 1)")
		res, _, err := timeEval(db, model, q, engine.Options{Mode: engine.ModeFull, Seed: seed})
		if err != nil {
			return 0, err
		}
		return res.Value / float64(db.Relation(table).Len()), nil
	}
	if lo, err = run(minV); err != nil {
		return 0, 0, err
	}
	if hi, err = run(maxV); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
