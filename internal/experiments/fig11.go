package experiments

import (
	"strings"
	"time"

	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/howto"
)

// Fig11 reproduces Figure 11: runtime versus query complexity on
// Student-Syn. (a) What-if runtime as attributes are added to the FOR
// operator (the regressor conditions on them, so training cost grows);
// Indep stays flat because it ignores the extra conditioning. (b) How-to
// runtime as attributes are added to HOWTOUPDATE: HypeR's IP grows linearly
// in the number of candidate variables while Opt-HowTo grows exponentially
// (it is only executed for small attribute counts here; the growth rate is
// already conclusive).
func Fig11(cfg Config) error {
	cfg = cfg.defaults()
	st := dataset.StudentSynWide(cfg.n(10000), 5, 6, cfg.Seed)

	// (a) FOR complexity. Base query updates Assignment over the
	// participation view; FOR adds always-true PRE conditions on distinct
	// attributes.
	forAttrs := []string{"Age", "Gender", "Country", "Attendance", "Discussion",
		"HandRaised", "Announcements", "Extra1", "Extra2", "Extra3"}
	baseView := `
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, P.Extra1, P.Extra2, P.Extra3,
            S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)
UPDATE(Assignment) = 95
OUTPUT COUNT(POST(Grade) >= 60)`
	cfg.printf("Figure 11a: what-if runtime vs #attributes in FOR\n")
	cfg.printf("%-8s %12s %12s\n", "Attrs", "HypeR", "Indep")
	for _, k := range []int{0, 5, 10} {
		src := baseView
		if k > 0 {
			var conds []string
			for _, a := range forAttrs[:k] {
				conds = append(conds, "PRE("+a+") >= 0")
			}
			src += " FOR " + strings.Join(conds, " AND ")
		}
		q := mustParseWhatIf(src)
		// Forced forest estimator: the runtime growth with FOR attributes
		// comes from training the regressor on the extra conditioning
		// features (Section 5.5), which the paper's random forest exposes.
		_, tFull, err := timeEval(st.DB, st.Model, q,
			engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed, Estimator: engine.EstimatorForest})
		if err != nil {
			return err
		}
		_, tIndep, err := timeEval(st.DB, st.Model, q, engine.Options{Mode: engine.ModeIndep, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		cfg.printf("%-8d %12s %12s\n", k, tFull.Round(time.Millisecond), tIndep.Round(time.Millisecond))
	}

	// (b) HOWTOUPDATE complexity. Candidates are limited to three values per
	// attribute via IN constraints so Opt-HowTo's exponent is the attribute
	// count, as in the paper.
	updAttrs := []string{"Discussion", "HandRaised", "Announcements",
		"Extra1", "Extra2", "Extra3", "Extra4", "Extra5", "Extra6"}
	st2 := dataset.StudentSynWide(cfg.n(2000), 5, 6, cfg.Seed+1)
	cfg.printf("\nFigure 11b: how-to runtime vs #attributes in HOWTOUPDATE\n")
	cfg.printf("%-8s %12s %14s\n", "Attrs", "HypeR (IP)", "Opt-HowTo")
	for _, k := range []int{2, 4, 6, 8} {
		if k > len(updAttrs) {
			break
		}
		var limits []string
		for _, a := range updAttrs[:k] {
			limits = append(limits, "POST("+a+") IN (0, 3, 5)")
		}
		src := `
USE (SELECT P.SID, P.Course, P.Discussion, P.HandRaised, P.Announcements,
            P.Assignment, P.Grade, P.Extra1, P.Extra2, P.Extra3, P.Extra4,
            P.Extra5, P.Extra6, S.Age, S.Gender, S.Country, S.Attendance
     FROM Participation AS P, Student AS S
     WHERE P.SID = S.SID)
HOWTOUPDATE ` + strings.Join(updAttrs[:k], ", ") + `
LIMIT ` + strings.Join(limits, " AND ") + `
TOMAXIMIZE AVG(POST(Grade))`
		q := mustParseHowTo(src)
		opts := howto.Options{Engine: engine.Options{Seed: cfg.Seed}}

		start := time.Now()
		if _, err := howto.Evaluate(st2.DB, st2.Model, q, opts); err != nil {
			return err
		}
		hTime := time.Since(start)

		bfTime := "skipped (exp.)"
		if k <= 4 {
			start = time.Now()
			if _, err := howto.BruteForce(st2.DB, st2.Model, q, opts); err != nil {
				return err
			}
			bfTime = time.Since(start).Round(time.Millisecond).String()
		}
		cfg.printf("%-8d %12s %14s\n", k, hTime.Round(time.Millisecond), bfTime)
	}
	return nil
}
