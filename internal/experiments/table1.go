package experiments

import (
	"time"

	"hyper/internal/causal"
	"hyper/internal/dataset"
	"hyper/internal/engine"
	"hyper/internal/hyperql"
	"hyper/internal/relation"
)

// amazonCountQuery is the Table 1 workload on the Amazon database: the
// effect of a hypothetical laptop price cut on the count of highly-rated
// products.
const amazonCountQuery = `
USE (SELECT T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality,
            AVG(T2.Rating) AS Rtng
     FROM Product AS T1, Review AS T2
     WHERE T1.PID = T2.PID
     GROUP BY T1.PID, T1.Category, T1.Price, T1.Brand, T1.Quality)
WHEN Category = 'Laptop'
UPDATE(Price) = 0.9 * PRE(Price)
OUTPUT COUNT(POST(Rtng) >= 4)`

// studentCountQuery is the Table 1 workload on Student-Syn: the effect of
// perfect attendance on the count of passing students.
const studentCountQuery = `
USE (SELECT S.SID, S.Age, S.Gender, S.Country, S.Attendance,
            AVG(P.Grade) AS Grade
     FROM Student AS S, Participation AS P
     WHERE S.SID = P.SID
     GROUP BY S.SID, S.Age, S.Gender, S.Country, S.Attendance)
UPDATE(Attendance) = 9
OUTPUT COUNT(POST(Grade) >= 60)`

const germanCountQuery = `
USE German UPDATE(Status) = 3 OUTPUT COUNT(Credit = 1) FOR PRE(Age) = 2`

const adultCountQuery = `
USE Adult UPDATE(MaritalStatus) = 1 OUTPUT COUNT(*) FOR POST(Income) = 1 AND PRE(Age) = 2`

// Table1 reproduces Table 1: average runtime of a Count what-if query per
// dataset for HypeR, HypeR-NB and Indep, plus the sampled variant on the
// largest dataset.
func Table1(cfg Config) error {
	cfg = cfg.defaults()
	type row struct {
		name  string
		attrs string
		rows  string
		db    *relation.Database
		model *causal.Model
		query string
	}

	adult := dataset.AdultSyn(cfg.n(32000), cfg.Seed)
	german := dataset.GermanLike(cfg.n(1000), cfg.Seed+1)
	amazon := dataset.AmazonSyn(cfg.n(3000), 18, cfg.Seed+2)
	student := dataset.StudentSyn(cfg.n(10000), 5, cfg.Seed+3)
	g20 := dataset.GermanSyn(cfg.n(20000), cfg.Seed+4)
	g1m := dataset.GermanSyn(cfg.n(1000000), cfg.Seed+5)

	rows := []row{
		{"Adult", "15", itoa(adult.Rel().Len()), adult.DB, adult.Model, adultCountQuery},
		{"German", "21", itoa(german.Rel().Len()), german.DB, german.Model, germanCountQuery},
		{"Amazon", "6,4", itoa2(amazon.DB.Relation("Product").Len(), amazon.DB.Relation("Review").Len()), amazon.DB, amazon.Model, amazonCountQuery},
		{"Student-Syn", "5,7", itoa2(student.DB.Relation("Student").Len(), student.DB.Relation("Participation").Len()), student.DB, student.Model, studentCountQuery},
		{"German-Syn (20k)", "7", itoa(g20.Rel().Len()), g20.DB, g20.Model, germanCountQuery},
		{"German-Syn (1M)", "7", itoa(g1m.Rel().Len()), g1m.DB, g1m.Model, germanCountQuery},
	}

	cfg.printf("Table 1: average runtime for a Count what-if query\n")
	cfg.printf("%-18s %-6s %-12s %12s %12s %12s %14s\n",
		"Dataset", "Att#", "Rows", "HypeR", "HypeR-NB", "Indep", "HypeR-sampled")
	for _, r := range rows {
		q := mustParseWhatIf(r.query)
		tFull, err := avgTime(r.db, r.model, q, engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		tNB, err := avgTime(r.db, r.model, q, engine.Options{Mode: engine.ModeNB, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		tIndep, err := avgTime(r.db, r.model, q, engine.Options{Mode: engine.ModeIndep, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		sampled := "-"
		if r.name == "German-Syn (1M)" {
			ts, err := avgTime(r.db, r.model, q, engine.Options{Mode: engine.ModeFull, Seed: cfg.Seed, SampleSize: 100000})
			if err != nil {
				return err
			}
			sampled = ts.Round(time.Millisecond).String()
		}
		cfg.printf("%-18s %-6s %-12s %12s %12s %12s %14s\n", r.name, r.attrs, r.rows,
			tFull.Round(time.Millisecond), tNB.Round(time.Millisecond),
			tIndep.Round(time.Millisecond), sampled)
	}
	return nil
}

func avgTime(db *relation.Database, model *causal.Model, q *hyperql.WhatIf, opts engine.Options) (time.Duration, error) {
	// One warm pass plus one timed pass keeps large datasets affordable
	// while smoothing allocator noise on small ones.
	if _, _, err := timeEval(db, model, q, opts); err != nil {
		return 0, err
	}
	_, t, err := timeEval(db, model, q, opts)
	return t, err
}

func itoa(n int) string { return fmtInt(n) }

func itoa2(a, b int) string { return fmtInt(a) + "," + fmtInt(b) }

func fmtInt(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmtIntPart(n/1000000) + "M"
	case n >= 1000:
		return fmtIntPart(n/1000) + "k"
	default:
		return fmtIntPart(n)
	}
}

func fmtIntPart(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
