package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runExp executes an experiment at tiny scale and returns its output.
func runExp(t *testing.T, fn func(Config) error) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{Scale: 0.002, Seed: 7, W: &buf}
	if err := fn(cfg); err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	return buf.String()
}

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, Table1)
	for _, want := range []string{"Adult", "German", "Amazon", "Student-Syn", "German-Syn (1M)", "HypeR-NB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, Fig6)
	if !strings.Contains(out, "Figure 6a") || !strings.Contains(out, "Figure 6b") {
		t.Errorf("Fig6 output incomplete:\n%s", out)
	}
}

func TestFig8Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(Config{Scale: 0.05, Seed: 7, W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Shape assertion: the Status row's gap must exceed the Investment
	// row's gap (the paper's attribute-importance finding).
	statusGap, investGap := lastFloat(t, out, "Status "), lastFloat(t, out, "Investment")
	if statusGap <= investGap {
		t.Errorf("Status gap %.3f should exceed Investment gap %.3f\n%s", statusGap, investGap, out)
	}
	// Adult: Workclass must be the weakest lever.
	work := lastFloat(t, out, "Workclass")
	marital := lastFloat(t, out, "MaritalStatus")
	if work >= marital {
		t.Errorf("Workclass gap %.3f should be below MaritalStatus gap %.3f", work, marital)
	}
}

// lastFloat extracts the last numeric field of the first line starting with
// prefix.
func lastFloat(t *testing.T, out, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			var v float64
			if _, err := fmtSscan(fields[len(fields)-1], &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no line starts with %q in:\n%s", prefix, out)
	return 0
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Fig10(Config{Scale: 0.02, Seed: 7, W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 10a") || !strings.Contains(out, "Figure 10b") {
		t.Fatalf("output incomplete:\n%s", out)
	}
}

func TestUseCasesRuns(t *testing.T) {
	out := runExp(t, UseCases)
	for _, want := range []string{"German", "Adult", "Amazon", "married"} {
		if !strings.Contains(out, want) {
			t.Errorf("UseCases missing %q", want)
		}
	}
}

func TestBackdoorSizeRuns(t *testing.T) {
	out := runExp(t, BackdoorSize)
	if !strings.Contains(out, "Age") {
		t.Errorf("backdoor output should mention the minimal set:\n%s", out)
	}
}

func TestHowToQualityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, HowToQuality)
	if !strings.Contains(out, "Opt-HowTo") || !strings.Contains(out, "budget 1") {
		t.Errorf("HowToQuality incomplete:\n%s", out)
	}
}

func TestAblationsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runExp(t, Ablations)
	if !strings.Contains(out, "value delta: 0 (must be 0)") {
		t.Errorf("block ablation should report a zero delta:\n%s", out)
	}
	for _, want := range []string{"freq", "forest", "linear", "cold", "warm"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.5}.defaults()
	if c.n(1000) != 500 {
		t.Errorf("n(1000) = %d", c.n(1000))
	}
	if c.n(10) != 500 {
		t.Errorf("floor: n(10) = %d", c.n(10))
	}
	d := Config{}.defaults()
	if d.Scale != 1.0 || d.W == nil {
		t.Error("defaults")
	}
}

func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}
